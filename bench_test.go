// Package tivaware's root benchmark harness: one benchmark per table
// and figure in the paper's evaluation, each regenerating the
// corresponding result via internal/experiments, plus micro-benchmarks
// of the core primitives.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Run one figure at paper-like scale:
//
//	go test -bench=BenchmarkFig24 -benchtime=1x -tivbench.n=4000
package tivaware_test

import (
	"context"
	"flag"
	"fmt"
	"io"
	"testing"

	"tivaware/internal/experiments"
	"tivaware/internal/nsim"
	"tivaware/internal/synth"
	"tivaware/internal/tivaware"
	"tivaware/internal/tivshard/testcluster"
	"tivaware/internal/vivaldi"
)

var benchN = flag.Int("tivbench.n", 300, "experiment scale (DS2-equivalent node count) for the figure benchmarks")

// benchConfig keeps every figure benchmark at a size where the whole
// harness finishes in minutes; raise -tivbench.n for fidelity runs.
func benchConfig() experiments.Config {
	return experiments.Config{N: *benchN, Runs: 2, Seed: 1}
}

// benchmarkSpec runs one experiment per iteration and reports a
// figure-specific metric alongside time/allocs.
func benchmarkSpec(b *testing.B, id string) {
	spec, err := experiments.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := spec.Run(cfg)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if i == 0 {
			// Render once so a regression in the output path fails
			// the bench rather than hiding.
			if err := res.WriteTable(io.Discard); err != nil {
				b.Fatalf("%s: render: %v", id, err)
			}
		}
	}
}

// One benchmark per figure/table of the paper's evaluation.

func BenchmarkFig2(b *testing.B)  { benchmarkSpec(b, "fig2") }
func BenchmarkFig3(b *testing.B)  { benchmarkSpec(b, "fig3") }
func BenchmarkFig4(b *testing.B)  { benchmarkSpec(b, "fig4") }
func BenchmarkFig5(b *testing.B)  { benchmarkSpec(b, "fig5") }
func BenchmarkFig6(b *testing.B)  { benchmarkSpec(b, "fig6") }
func BenchmarkFig7(b *testing.B)  { benchmarkSpec(b, "fig7") }
func BenchmarkFig8(b *testing.B)  { benchmarkSpec(b, "fig8") }
func BenchmarkFig9(b *testing.B)  { benchmarkSpec(b, "fig9") }
func BenchmarkFig10(b *testing.B) { benchmarkSpec(b, "fig10") }
func BenchmarkFig11(b *testing.B) { benchmarkSpec(b, "fig11") }
func BenchmarkFig13(b *testing.B) { benchmarkSpec(b, "fig13") }
func BenchmarkFig14(b *testing.B) { benchmarkSpec(b, "fig14") }
func BenchmarkFig15(b *testing.B) { benchmarkSpec(b, "fig15") }
func BenchmarkFig16(b *testing.B) { benchmarkSpec(b, "fig16") }
func BenchmarkFig17(b *testing.B) { benchmarkSpec(b, "fig17") }
func BenchmarkFig18(b *testing.B) { benchmarkSpec(b, "fig18") }
func BenchmarkFig19(b *testing.B) { benchmarkSpec(b, "fig19") }
func BenchmarkFig20(b *testing.B) { benchmarkSpec(b, "fig20") }
func BenchmarkFig21(b *testing.B) { benchmarkSpec(b, "fig21") }
func BenchmarkFig22(b *testing.B) { benchmarkSpec(b, "fig22") }
func BenchmarkFig23(b *testing.B) { benchmarkSpec(b, "fig23") }
func BenchmarkFig24(b *testing.B) { benchmarkSpec(b, "fig24") }
func BenchmarkFig25(b *testing.B) { benchmarkSpec(b, "fig25") }
func BenchmarkTab1(b *testing.B)  { benchmarkSpec(b, "tab1") }
func BenchmarkTab2(b *testing.B)  { benchmarkSpec(b, "tab2") }

// Ablation benches (design choices called out in DESIGN.md).

func BenchmarkAblateAware(b *testing.B)    { benchmarkSpec(b, "ablate-aware") }
func BenchmarkAblateTimestep(b *testing.B) { benchmarkSpec(b, "ablate-timestep") }
func BenchmarkAblateBeta(b *testing.B)     { benchmarkSpec(b, "ablate-beta") }
func BenchmarkAblateSampling(b *testing.B) { benchmarkSpec(b, "ablate-sampling") }
func BenchmarkAblateHeight(b *testing.B)   { benchmarkSpec(b, "ablate-height") }
func BenchmarkAblateRings(b *testing.B)    { benchmarkSpec(b, "ablate-rings") }
func BenchmarkAblateCoords(b *testing.B)   { benchmarkSpec(b, "ablate-coords") }
func BenchmarkAblateFilter(b *testing.B)   { benchmarkSpec(b, "ablate-filter") }
func BenchmarkAblateGen(b *testing.B)      { benchmarkSpec(b, "ablate-generator") }
func BenchmarkStreamDrift(b *testing.B)    { benchmarkSpec(b, "stream-drift") }
func BenchmarkDetourGain(b *testing.B)     { benchmarkSpec(b, "detour") }

// Micro-benchmarks of the primitives the experiments are built from.
// All of them go through the tivaware service layer — the only
// application-facing surface — with the matrix version bumped per
// iteration where needed so the service's cache never short-circuits
// the kernel being measured.

// benchService builds a DS2-like space and a batch service over it.
func benchService(b *testing.B, n int, opts tivaware.Options) (*tivaware.Service, *synth.Space) {
	b.Helper()
	sp, err := synth.Generate(synth.DS2Like(n, 1))
	if err != nil {
		b.Fatal(err)
	}
	svc, err := tivaware.NewFromMatrix(sp.Matrix, opts)
	if err != nil {
		b.Fatal(err)
	}
	return svc, sp
}

func BenchmarkSeverityAllEdges(b *testing.B) {
	for _, n := range []int{100, 200, 400} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			svc, sp := benchService(b, n, tivaware.Options{})
			e := sp.Matrix.Edges()[0]
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// A same-value Set bumps the matrix version without
				// changing the data: the service recomputes the full
				// severity pass (scratch reused, zero steady-state
				// allocations) on every iteration.
				sp.Matrix.Set(e.I, e.J, e.Delay)
				svc.Severities()
			}
		})
	}
}

func BenchmarkSeveritySampledB64(b *testing.B) {
	svc, sp := benchService(b, 400, tivaware.Options{SampleThirdNodes: 64, Seed: 1})
	e := sp.Matrix.Edges()[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.Matrix.Set(e.I, e.J, e.Delay)
		svc.Severities()
	}
}

// BenchmarkServiceAnalyze measures the combined pass behind
// Service.Analysis: severities, violation counts, and the exact
// violating-triangle total in one triple scan.
func BenchmarkServiceAnalyze(b *testing.B) {
	svc, sp := benchService(b, 400, tivaware.Options{})
	e := sp.Matrix.Edges()[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.Matrix.Set(e.I, e.J, e.Delay)
		if _, err := svc.Analysis(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServiceClosestNode measures one severity-penalized
// selection over all candidates on a warm service (the analysis is
// cached; the query pays ranking only).
func BenchmarkServiceClosestNode(b *testing.B) {
	svc, sp := benchService(b, 400, tivaware.Options{})
	ctx := context.Background()
	n := sp.Matrix.N()
	opts := tivaware.QueryOptions{SeverityPenalty: 2}
	if _, err := svc.ClosestNode(ctx, 0, opts); err != nil { // warm the analysis
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.ClosestNode(ctx, i%n, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServiceClosestNodeParallel runs the same warm selection
// from GOMAXPROCS goroutines at once. Queries read the service's
// published epoch lock-free, so throughput must scale with the
// processor count — compare ns/op against the serial
// BenchmarkServiceClosestNode: near-linear scaling means no lock on
// the query path.
func BenchmarkServiceClosestNodeParallel(b *testing.B) {
	svc, sp := benchService(b, 400, tivaware.Options{})
	ctx := context.Background()
	n := sp.Matrix.N()
	opts := tivaware.QueryOptions{SeverityPenalty: 2}
	if _, err := svc.ClosestNode(ctx, 0, opts); err != nil { // warm the epoch
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			if _, err := svc.ClosestNode(ctx, i%n, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDetourPath measures one best-one-hop-detour query: an O(N)
// scan over the delay source.
func BenchmarkDetourPath(b *testing.B) {
	svc, sp := benchService(b, 400, tivaware.Options{})
	ctx := context.Background()
	edges := sp.Matrix.Edges()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := edges[i%len(edges)]
		if _, err := svc.DetourPath(ctx, e.I, e.J); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonitorApplyUpdate measures one incremental O(N) delta of
// the live service's streaming monitor. Compare against
// BenchmarkMonitorRescanPerUpdate (or BenchmarkSeverityAllEdges) for
// the batch-rescan-per-update cost the monitor replaces — the
// acceptance bar is a ≥ 50× gap at n=400.
func BenchmarkMonitorApplyUpdate(b *testing.B) {
	for _, n := range []int{100, 400} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			svc, sp := benchService(b, n, tivaware.Options{Live: true, JournalSize: -1})
			edges := sp.Matrix.Edges()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := edges[i%len(edges)]
				// A value that genuinely differs on every visit, so the
				// same-value fast path never short-circuits the delta.
				rtt := e.Delay * (0.75 + float64(i%1009)/2018)
				if rtt == sp.Matrix.At(e.I, e.J) {
					rtt *= 1.0001
				}
				if _, err := svc.ApplyUpdate(e.I, e.J, rtt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMonitorRescanPerUpdate is the pre-monitor strategy: mutate
// one edge, then recompute every severity with a full batch pass.
func BenchmarkMonitorRescanPerUpdate(b *testing.B) {
	for _, n := range []int{400} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			svc, sp := benchService(b, n, tivaware.Options{})
			edges := sp.Matrix.Edges()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := edges[i%len(edges)]
				sp.Matrix.Set(e.I, e.J, e.Delay*(0.75+float64(i%1009)/2018))
				svc.Severities()
			}
		})
	}
}

func BenchmarkVivaldiTick(b *testing.B) {
	for _, n := range []int{100, 400, 800} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			sp, err := synth.Generate(synth.DS2Like(n, 1))
			if err != nil {
				b.Fatal(err)
			}
			sys, err := vivaldi.NewSystem(sp.Matrix, vivaldi.Config{Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sys.Tick()
			}
		})
	}
}

func BenchmarkMeridianQuery(b *testing.B) {
	sp, err := synth.Generate(synth.DS2Like(400, 1))
	if err != nil {
		b.Fatal(err)
	}
	prober, err := nsim.NewMatrixProber(sp.Matrix, 0, 1)
	if err != nil {
		b.Fatal(err)
	}
	ids := make([]int, 200)
	for i := range ids {
		ids[i] = i
	}
	// Import cycle avoidance: build directly.
	sys, err := buildMeridian(prober, ids)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		target := 200 + i%200
		if _, err := sys.ClosestTo(target, ids[i%len(ids)], queryOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGatewayClosestNode measures one severity-penalized
// selection through the sharded query plane: a tivshard gateway over
// a 3-shard loopback cluster (real tivd servers over TCP), so each op
// pays three concurrent HTTP round trips plus the k-way merge. Its
// ratio against BenchmarkServiceClosestNode is the wire+scatter tax
// of distributing the query plane.
func BenchmarkGatewayClosestNode(b *testing.B) {
	c, err := testcluster.Start(testcluster.Config{N: 200, Shards: 3})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	n := c.Matrix.N()
	opts := tivaware.QueryOptions{SeverityPenalty: 2}
	if _, err := c.Gateway.ClosestNode(ctx, 0, opts); err != nil { // warm every shard's epoch
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Gateway.ClosestNode(ctx, i%n, opts); err != nil {
			b.Fatal(err)
		}
	}
}
