// Command tivload is the traffic-plane load generator: it drives a
// mixed rank/closest/detour/top/update workload at a target request
// rate (or closed-loop, as fast as the daemon answers) against a tivd
// monolith or a tivshard gateway, and reports throughput plus a
// p50/p99/p999 latency trajectory from per-worker log-bucketed
// histograms. Runs persist as BENCH_load_*.json so CI can gate tail
// latency against a checked-in baseline.
//
// Drive an already-running daemon:
//
//	tivload -target http://127.0.0.1:7070 -duration 10s -conns 8
//
// Spin up an in-process 400-node monolith and compare the four wire
// configurations (single-shot JSON, single-shot binary, batched JSON,
// batched binary) on identical fixed-seed traffic:
//
//	tivload -synth 400 -compare -batch 32 -o BENCH_load_monolith.json
//
// Same, but against a 3-shard scatter-gather gateway:
//
//	tivload -synth 400 -shards 3 -compare -o BENCH_load_gateway.json
//
// The mix is weighted: -mix rank=4,closest=2,detour=2,top=1 (add
// update=N against a -live daemon to blend writes in). -qps paces
// requests per second across all connections; 0 means closed loop.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tivaware/internal/stats"
	"tivaware/internal/synth"
	"tivaware/internal/tivaware"
	"tivaware/internal/tivclient"
	"tivaware/internal/tivd"
	"tivaware/internal/tivframe"
	"tivaware/internal/tivshard/testcluster"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tivload:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("tivload", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		target   = fs.String("target", "", "base URL of a running daemon (mutually exclusive with -synth)")
		synthN   = fs.Int("synth", 0, "spin up an in-process DS2-like daemon of this many nodes")
		shardsK  = fs.Int("shards", 0, "with -synth: front the matrix with this many shards behind a gateway (0 = monolith)")
		live     = fs.Bool("live", false, "with -synth: run the daemon live so the mix may include update=N")
		seed     = fs.Int64("seed", 1, "seed for the synthetic matrix and the query stream")
		duration = fs.Duration("duration", 5*time.Second, "measured time per run")
		warmup   = fs.Duration("warmup", 500*time.Millisecond, "unmeasured warm-up per run (fills connection pools and the query cache)")
		qps      = fs.Float64("qps", 0, "target request rate across all connections (0 = closed loop)")
		conns    = fs.Int("conns", 4, "concurrent load connections (workers)")
		batch    = fs.Int("batch", 1, "queries per request; >1 uses POST /v1/batch")
		binary   = fs.Bool("binary", false, "use the compact binary wire framing")
		frame    = fs.Bool("frame", false, "drive the persistent framed transport (tivd -frame-listen) instead of HTTP; with -compare, adds framed runs after the HTTP ones")
		frameTgt = fs.String("frame-addr", "", "framed address of the -target daemon (tcp \"host:port\" or \"unix:///path.sock\"); required with -target -frame")
		mixSpec  = fs.String("mix", "rank=4,closest=2,detour=2,top=1", "weighted op mix: kind=weight[,kind=weight...]; kinds: rank closest detour top delay analysis update")
		compare  = fs.Bool("compare", false, "run single-json, single-binary, batch-json, batch-binary on identical traffic and report the batch+binary speedup")
		rankK    = fs.Int("rankk", 8, "k for rank queries in the mix")
		topK     = fs.Int("topk", 16, "k for top queries in the mix")
		out      = fs.String("o", "", "also persist the runs as a BENCH_load JSON file at this path")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*target == "") == (*synthN == 0) {
		fs.Usage()
		return fmt.Errorf("exactly one of -target or -synth required")
	}
	if *batch < 1 {
		return fmt.Errorf("-batch must be >= 1")
	}
	if *conns < 1 {
		return fmt.Errorf("-conns must be >= 1")
	}
	mix, err := parseMix(*mixSpec)
	if err != nil {
		return err
	}
	if mix.weightOf("update") > 0 && *target == "" && !*live {
		return fmt.Errorf("mix includes update but the in-process daemon is not -live")
	}

	url := *target
	fAddr := *frameTgt
	var cleanup func()
	switch {
	case url != "":
		if *frame && fAddr == "" {
			return fmt.Errorf("-frame against a -target daemon needs -frame-addr")
		}
	case *shardsK > 0:
		fmt.Fprintf(stdout, "tivload: starting in-process %d-node cluster over %d shards (seed %d)\n", *synthN, *shardsK, *seed)
		cl, err := testcluster.Start(testcluster.Config{
			N: *synthN, Shards: *shardsK, Seed: *seed, Live: *live,
			ServeGateway: true, Frames: *frame,
		})
		if err != nil {
			return err
		}
		cleanup, url, fAddr = cl.Close, cl.GatewayURL, cl.GatewayFrameAddr
	default:
		fmt.Fprintf(stdout, "tivload: starting in-process %d-node monolith (seed %d)\n", *synthN, *seed)
		url, fAddr, cleanup, err = serveMonolith(*synthN, *seed, *live, *frame)
		if err != nil {
			return err
		}
	}
	if cleanup != nil {
		defer cleanup()
	}

	probe := tivclient.New(url, tivclient.Options{})
	h, err := probe.Healthz(context.Background())
	if err != nil {
		return fmt.Errorf("target %s unreachable: %w", url, err)
	}
	n := h.N
	fmt.Fprintf(stdout, "tivload: target %s: %d nodes, live=%v\n", url, n, h.Live)

	cfgs := []runConfig{{name: runName(*batch, *binary, *frame), batch: *batch, binary: *binary, frame: *frame}}
	if *compare {
		b := *batch
		if b == 1 {
			b = 32
		}
		cfgs = []runConfig{
			{name: "single-json", batch: 1, binary: false},
			{name: "single-binary", batch: 1, binary: true},
			{name: "batch-json", batch: b, binary: false},
			{name: "batch-binary", batch: b, binary: true},
		}
		if *frame {
			cfgs = append(cfgs,
				runConfig{name: "single-frame", batch: 1, binary: true, frame: true},
				runConfig{name: "batch-frame", batch: b, binary: true, frame: true},
			)
		}
	}

	load := loadSpec{
		url: url, frameAddr: fAddr, n: n, mix: mix, seed: *seed,
		conns: *conns, qps: *qps,
		warmup: *warmup, duration: *duration,
		rankK: *rankK, topK: *topK,
	}
	report := benchReport{
		Benchmark:  "tivload",
		Target:     targetLabel(*target, *synthN, *shardsK),
		Nodes:      n,
		Shards:     *shardsK,
		Seed:       *seed,
		Mix:        *mixSpec,
		QPS:        *qps,
		Conns:      *conns,
		DurationS:  duration.Seconds(),
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		When:       time.Now().UTC().Format(time.RFC3339),
	}
	for _, rc := range cfgs {
		res, err := runLoad(load, rc, probe)
		if err != nil {
			return fmt.Errorf("run %s: %w", rc.name, err)
		}
		report.Runs = append(report.Runs, res)
		printRun(stdout, res)
	}
	if *compare {
		base, best := findRun(report.Runs, "single-json"), findRun(report.Runs, "batch-binary")
		if base != nil && best != nil && base.QueriesPerS > 0 {
			report.SpeedupBatchBinary = best.QueriesPerS / base.QueriesPerS
			fmt.Fprintf(stdout, "tivload: batch-binary vs single-json closed loop: %.2fx queries/s\n",
				report.SpeedupBatchBinary)
			// The tail-latency claim: pace batch-binary at 3x the query
			// throughput single-json just sustained and show its p99 does
			// not exceed the single-json closed-loop p99.
			paced := load
			paced.qps = 3 * base.QueriesPerS / float64(cfgs[len(cfgs)-1].batch)
			res, err := runLoad(paced, runConfig{
				name: "batch-binary-3x-paced", batch: cfgs[len(cfgs)-1].batch, binary: true,
			}, probe)
			if err != nil {
				return fmt.Errorf("run batch-binary-3x-paced: %w", err)
			}
			report.Runs = append(report.Runs, res)
			printRun(stdout, res)
			report.PacedP99Ms, report.BaseP99Ms = res.P99Ms, base.P99Ms
			fmt.Fprintf(stdout, "tivload: at 3x single-json throughput, batch-binary p99 %.3fms vs single-json p99 %.3fms\n",
				res.P99Ms, base.P99Ms)
		}
		// The framed-transport claim: batched frames sustain at least
		// HTTP batch-binary's throughput at equal or lower p99.
		if bb, bf := findRun(report.Runs, "batch-binary"), findRun(report.Runs, "batch-frame"); bb != nil && bf != nil && bb.QueriesPerS > 0 {
			report.SpeedupFrameVsHTTP = bf.QueriesPerS / bb.QueriesPerS
			fmt.Fprintf(stdout, "tivload: batch-frame vs batch-binary: %.2fx queries/s (p99 %.3fms vs %.3fms)\n",
				report.SpeedupFrameVsHTTP, bf.P99Ms, bb.P99Ms)
		}
	}
	if *out != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "tivload: wrote %s\n", *out)
	}
	return nil
}

// targetLabel names the target in the persisted report.
func targetLabel(target string, n, shards int) string {
	if target != "" {
		return target
	}
	if shards > 0 {
		return fmt.Sprintf("in-process gateway over %d shards (%d nodes)", shards, n)
	}
	return fmt.Sprintf("in-process monolith (%d nodes)", n)
}

func runName(batch int, binary, frame bool) string {
	mode, codec := "single", "json"
	if batch > 1 {
		mode = "batch"
	}
	if binary {
		codec = "binary"
	}
	if frame {
		codec = "frame"
	}
	return mode + "-" + codec
}

// serveMonolith boots one in-process tivd daemon over a synthetic
// matrix on a loopback listener; with frames, a framed listener too.
func serveMonolith(n int, seed int64, live, frames bool) (url, frameAddr string, cleanup func(), err error) {
	sp, err := synth.Generate(synth.DS2Like(n, seed))
	if err != nil {
		return "", "", nil, err
	}
	svc, err := tivaware.NewFromMatrix(sp.Matrix, tivaware.Options{Live: live})
	if err != nil {
		return "", "", nil, err
	}
	srv, err := tivd.New(svc, tivd.Options{})
	if err != nil {
		return "", "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", "", nil, err
	}
	var fsrv *tivframe.Server
	if frames {
		fln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			ln.Close()
			return "", "", nil, err
		}
		fsrv = tivframe.NewServer(srv.FrameHandler(), tivframe.Options{})
		go func() { _ = fsrv.Serve(fln) }()
		frameAddr = fln.Addr().String()
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	cleanup = func() {
		srv.Close()
		if fsrv != nil {
			_ = fsrv.Close()
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			_ = hs.Close()
		}
	}
	return "http://" + ln.Addr().String(), frameAddr, cleanup, nil
}

// mixEntry is one weighted op kind; mixTable picks by cumulative
// weight so the fixed-seed stream is reproducible across runs.
type mixEntry struct {
	kind   string
	weight int
	cum    int
}

type mixTable struct {
	entries []mixEntry
	total   int
}

var mixKinds = map[string]bool{
	"rank": true, "closest": true, "detour": true, "top": true,
	"delay": true, "analysis": true, "update": true,
}

func parseMix(spec string) (mixTable, error) {
	var t mixTable
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kind, val, ok := strings.Cut(part, "=")
		if !ok {
			return t, fmt.Errorf("mix entry %q: want kind=weight", part)
		}
		if !mixKinds[kind] {
			return t, fmt.Errorf("mix entry %q: unknown kind (want rank/closest/detour/top/delay/analysis/update)", part)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 0 {
			return t, fmt.Errorf("mix entry %q: bad weight", part)
		}
		if w == 0 {
			continue
		}
		t.total += w
		t.entries = append(t.entries, mixEntry{kind: kind, weight: w, cum: t.total})
	}
	if t.total == 0 {
		return t, fmt.Errorf("mix %q selects nothing", spec)
	}
	return t, nil
}

func (t mixTable) pick(rng *rand.Rand) string {
	r := rng.Intn(t.total)
	i := sort.Search(len(t.entries), func(i int) bool { return t.entries[i].cum > r })
	return t.entries[i].kind
}

func (t mixTable) weightOf(kind string) int {
	for _, e := range t.entries {
		if e.kind == kind {
			return e.weight
		}
	}
	return 0
}

// loadSpec is everything a run shares regardless of wire config.
type loadSpec struct {
	url       string
	frameAddr string
	n         int
	mix       mixTable
	seed      int64
	conns     int
	qps       float64
	warmup    time.Duration
	duration  time.Duration
	rankK     int
	topK      int
}

type runConfig struct {
	name   string
	batch  int
	binary bool
	frame  bool
}

// runResult is one run's persisted measurement.
type runResult struct {
	Name         string      `json:"name"`
	Batch        int         `json:"batch"`
	Binary       bool        `json:"binary"`
	Requests     uint64      `json:"requests"`
	Queries      uint64      `json:"queries"`
	Errors       uint64      `json:"errors"`
	DurationS    float64     `json:"duration_s"`
	RequestsPerS float64     `json:"requests_per_s"`
	QueriesPerS  float64     `json:"queries_per_s"`
	MeanMs       float64     `json:"mean_ms"`
	P50Ms        float64     `json:"p50_ms"`
	P99Ms        float64     `json:"p99_ms"`
	P999Ms       float64     `json:"p999_ms"`
	MaxMs        float64     `json:"max_ms"`
	Cache        *cacheDelta `json:"cache,omitempty"`
}

// cacheDelta is the daemon-side query-cache activity attributable to
// one run (healthz counter difference across it).
type cacheDelta struct {
	Hits    uint64  `json:"hits"`
	Misses  uint64  `json:"misses"`
	HitRate float64 `json:"hit_rate"`
}

type benchReport struct {
	Benchmark string  `json:"benchmark"`
	Target    string  `json:"target"`
	Nodes     int     `json:"nodes"`
	Shards    int     `json:"shards,omitempty"`
	Seed      int64   `json:"seed"`
	Mix       string  `json:"mix"`
	QPS       float64 `json:"qps"`
	Conns     int     `json:"conns"`
	DurationS float64 `json:"duration_s"`
	GoVersion string  `json:"go_version"`
	// GoMaxProcs and NumCPU pin the core budget a run was recorded
	// under: latency trajectories from different core counts are not
	// comparable, and the tivload-smoke guard refuses to gate across
	// a mismatch.
	GoMaxProcs         int         `json:"gomaxprocs"`
	NumCPU             int         `json:"num_cpu"`
	When               string      `json:"when"`
	Runs               []runResult `json:"runs"`
	SpeedupBatchBinary float64     `json:"speedup_batch_binary_vs_single_json,omitempty"`
	// SpeedupFrameVsHTTP compares batched framed-transport throughput
	// against HTTP batch-binary on identical traffic; the framed
	// transport's claim holds at >= 1.0 with no p99 regression.
	SpeedupFrameVsHTTP float64 `json:"speedup_batch_frame_vs_batch_binary,omitempty"`
	// PacedP99Ms is batch-binary's p99 while paced at 3x single-json's
	// measured query throughput; the traffic-plane claim holds when it
	// does not exceed BaseP99Ms (single-json's closed-loop p99).
	PacedP99Ms float64 `json:"batch_binary_3x_paced_p99_ms,omitempty"`
	BaseP99Ms  float64 `json:"single_json_p99_ms,omitempty"`
}

func findRun(runs []runResult, name string) *runResult {
	for i := range runs {
		if runs[i].Name == name {
			return &runs[i]
		}
	}
	return nil
}

// runLoad executes one measured run: warm-up (unmeasured), then
// conns workers each issuing requests — paced when qps > 0, closed
// loop otherwise — into per-worker histograms merged at the end.
func runLoad(ls loadSpec, rc runConfig, probe *tivclient.Client) (runResult, error) {
	copts := tivclient.Options{Binary: rc.binary}
	if rc.frame {
		if ls.frameAddr == "" {
			return runResult{}, fmt.Errorf("run %s needs a framed listener (none available)", rc.name)
		}
		copts.FrameAddr = ls.frameAddr
		copts.FrameConns = ls.conns
	}
	client := tivclient.New(ls.url, copts)
	defer client.Close()
	ctx := context.Background()

	if ls.warmup > 0 {
		warmCtx, cancel := context.WithTimeout(ctx, ls.warmup)
		runWorkers(warmCtx, client, ls, rc, ls.seed^0x5eed, nil)
		cancel()
	}
	before, errBefore := probe.Healthz(ctx)

	hists := make([]*stats.LogHist, ls.conns)
	for i := range hists {
		hists[i] = stats.NewLogHist(1e-6, 60)
	}
	runCtx, cancel := context.WithTimeout(ctx, ls.duration)
	start := time.Now()
	counts := runWorkers(runCtx, client, ls, rc, ls.seed, hists)
	elapsed := time.Since(start)
	cancel()

	merged := stats.NewLogHist(1e-6, 60)
	for _, h := range hists {
		merged.Merge(h)
	}
	res := runResult{
		Name:      rc.name,
		Batch:     rc.batch,
		Binary:    rc.binary,
		Requests:  counts.requests,
		Queries:   counts.queries,
		Errors:    counts.errors,
		DurationS: elapsed.Seconds(),
		MeanMs:    merged.Mean() * 1e3,
		P50Ms:     merged.Quantile(0.50) * 1e3,
		P99Ms:     merged.Quantile(0.99) * 1e3,
		P999Ms:    merged.Quantile(0.999) * 1e3,
		MaxMs:     merged.Max() * 1e3,
	}
	if s := elapsed.Seconds(); s > 0 {
		res.RequestsPerS = float64(counts.requests) / s
		res.QueriesPerS = float64(counts.queries) / s
	}
	if after, err := probe.Healthz(ctx); err == nil && errBefore == nil &&
		before.Cache != nil && after.Cache != nil {
		d := cacheDelta{
			Hits:   after.Cache.Hits - before.Cache.Hits,
			Misses: after.Cache.Misses - before.Cache.Misses,
		}
		if tot := d.Hits + d.Misses; tot > 0 {
			d.HitRate = float64(d.Hits) / float64(tot)
		}
		res.Cache = &d
	}
	if counts.requests == 0 {
		return res, fmt.Errorf("no requests completed (first error count: %d)", counts.errors)
	}
	if counts.errors*10 > counts.requests {
		return res, fmt.Errorf("error rate %.0f%% (%d/%d requests)",
			100*float64(counts.errors)/float64(counts.requests), counts.errors, counts.requests)
	}
	return res, nil
}

type loadCounts struct {
	requests uint64
	queries  uint64
	errors   uint64
}

// runWorkers fans the workload across ls.conns workers until ctx
// expires; hists[i] (when non-nil) receives worker i's latencies.
func runWorkers(ctx context.Context, client *tivclient.Client, ls loadSpec, rc runConfig, seed int64, hists []*stats.LogHist) loadCounts {
	var (
		wg       sync.WaitGroup
		requests atomic.Uint64
		queries  atomic.Uint64
		errs     atomic.Uint64
	)
	var interval time.Duration
	if ls.qps > 0 {
		interval = time.Duration(float64(time.Second) * float64(ls.conns) / ls.qps)
	}
	for w := 0; w < ls.conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)*1_000_003))
			var h *stats.LogHist
			if hists != nil {
				h = hists[w]
			}
			next := time.Now()
			for ctx.Err() == nil {
				if interval > 0 {
					// time.Sleep, not time.After: a timer channel per request
					// is measurable allocation pressure on small machines, and
					// the sleep is bounded by one pacing interval anyway.
					if d := time.Until(next); d > 0 {
						time.Sleep(d)
					}
					next = next.Add(interval)
					if ctx.Err() != nil {
						return
					}
				}
				t0 := time.Now()
				nq, err := issueOne(ctx, client, ls, rc, rng)
				lat := time.Since(t0)
				if ctx.Err() != nil {
					return // expiry mid-request is the harness, not the target
				}
				requests.Add(1)
				queries.Add(uint64(nq))
				if err != nil {
					// Errors are counted, not timed: a fast failure would
					// flatter the latency trajectory.
					errs.Add(1)
				} else if h != nil {
					h.Observe(lat.Seconds())
				}
			}
		}(w)
	}
	wg.Wait()
	return loadCounts{requests: requests.Load(), queries: queries.Load(), errors: errs.Load()}
}

// issueOne performs one request (a single-shot call or a batch) and
// returns how many queries it carried.
func issueOne(ctx context.Context, client *tivclient.Client, ls loadSpec, rc runConfig, rng *rand.Rand) (int, error) {
	if rc.batch > 1 {
		queries := make([]tivaware.Query, 0, rc.batch)
		for len(queries) < rc.batch {
			kind := ls.mix.pick(rng)
			if kind == "update" {
				// Writes are their own request even under batching: the
				// batch endpoint pins one read epoch.
				if err := issueUpdate(ctx, client, ls, rng); err != nil {
					return len(queries) + 1, err
				}
				continue
			}
			queries = append(queries, buildQuery(kind, ls, rng))
		}
		results, err := client.QueryBatch(ctx, queries)
		if err != nil {
			return len(queries), err
		}
		for _, r := range results {
			if r.Err != nil {
				return len(queries), r.Err
			}
		}
		return len(queries), nil
	}
	kind := ls.mix.pick(rng)
	if kind == "update" {
		return 1, issueUpdate(ctx, client, ls, rng)
	}
	return 1, issueSingle(ctx, client, buildQuery(kind, ls, rng))
}

func issueUpdate(ctx context.Context, client *tivclient.Client, ls loadSpec, rng *rand.Rand) error {
	i, j := pair(rng, ls.n)
	_, err := client.ApplyUpdate(ctx, i, j, 1+99*rng.Float64())
	return err
}

func buildQuery(kind string, ls loadSpec, rng *rand.Rand) tivaware.Query {
	switch kind {
	case "rank":
		return tivaware.Query{Kind: tivaware.KindRank, Target: rng.Intn(ls.n), K: ls.rankK}
	case "closest":
		return tivaware.Query{Kind: tivaware.KindClosest, Target: rng.Intn(ls.n)}
	case "detour":
		i, j := pair(rng, ls.n)
		return tivaware.Query{Kind: tivaware.KindDetour, I: i, J: j}
	case "top":
		return tivaware.Query{Kind: tivaware.KindTop, K: ls.topK}
	case "delay":
		i, j := pair(rng, ls.n)
		return tivaware.Query{Kind: tivaware.KindDelay, I: i, J: j}
	default: // analysis
		return tivaware.Query{Kind: tivaware.KindAnalysis}
	}
}

// issueSingle dispatches one query through the per-endpoint client
// surface (the pre-batch API), so single-shot runs measure exactly
// what existing clients pay today.
func issueSingle(ctx context.Context, client *tivclient.Client, q tivaware.Query) error {
	switch q.Kind {
	case tivaware.KindRank:
		_, err := client.KClosest(ctx, q.Target, q.K, tivaware.QueryOptions{})
		return err
	case tivaware.KindClosest:
		_, err := client.ClosestNode(ctx, q.Target, tivaware.QueryOptions{})
		return err
	case tivaware.KindDetour:
		_, err := client.DetourPath(ctx, q.I, q.J)
		return err
	case tivaware.KindTop:
		_, err := client.TopEdges(ctx, q.K)
		return err
	case tivaware.KindDelay:
		_, _, err := client.Delay(ctx, q.I, q.J)
		return err
	default:
		_, err := client.Analysis(ctx)
		return err
	}
}

func pair(rng *rand.Rand, n int) (int, int) {
	i := rng.Intn(n)
	j := rng.Intn(n - 1)
	if j >= i {
		j++
	}
	return i, j
}

func printRun(w io.Writer, r runResult) {
	line := fmt.Sprintf("tivload: %-14s %8.0f req/s %9.0f q/s  p50 %7.3fms  p99 %7.3fms  p999 %7.3fms",
		r.Name, r.RequestsPerS, r.QueriesPerS, r.P50Ms, r.P99Ms, r.P999Ms)
	if r.Errors > 0 {
		line += fmt.Sprintf("  errors %d", r.Errors)
	}
	if r.Cache != nil {
		line += fmt.Sprintf("  cache hit %.0f%%", 100*r.Cache.HitRate)
	}
	fmt.Fprintln(w, line)
}
