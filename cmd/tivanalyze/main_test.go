package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tivaware/internal/delayspace"
	"tivaware/internal/synth"
)

func writeMatrix(t *testing.T, binary bool) string {
	t.Helper()
	sp, err := synth.Generate(synth.DS2Like(50, 3))
	if err != nil {
		t.Fatal(err)
	}
	name := "m.csv"
	if binary {
		name = "m.bin"
	}
	path := filepath.Join(t.TempDir(), name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if binary {
		err = delayspace.WriteBinary(f, sp.Matrix)
	} else {
		err = delayspace.WriteCSV(f, sp.Matrix)
	}
	if err != nil {
		t.Fatal(err)
	}
	return path
}

func TestAnalyzeCSV(t *testing.T) {
	path := writeMatrix(t, false)
	var sb strings.Builder
	if err := run([]string{"-in", path}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"nodes: 50", "violating triangle fraction", "severity CDF", "worst"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%.300s", want, out)
		}
	}
}

func TestAnalyzeBinary(t *testing.T) {
	path := writeMatrix(t, true)
	var sb strings.Builder
	if err := run([]string{"-in", path, "-format", "binary", "-worst", "3", "-sample", "20"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "worst 3 edges") {
		t.Error("worst edges section missing")
	}
}

func TestAnalyzeErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err == nil {
		t.Error("missing -in should error")
	}
	if err := run([]string{"-in", "/nonexistent/file"}, &sb); err == nil {
		t.Error("missing file should error")
	}
	path := writeMatrix(t, false)
	if err := run([]string{"-in", path, "-format", "xml"}, &sb); err == nil {
		t.Error("unknown format should error")
	}
	if err := run([]string{"-in", path, "-format", "binary"}, &sb); err == nil {
		t.Error("format mismatch should error")
	}
}

func TestAnalyzeClusters(t *testing.T) {
	path := writeMatrix(t, false)
	var sb strings.Builder
	if err := run([]string{"-in", path, "-clusters", "3"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "cluster sizes") || !strings.Contains(out, "mean severity by cluster block") {
		t.Errorf("cluster report missing:\n%.400s", out)
	}
}
