// Command tivanalyze reports the triangle-inequality-violation profile
// of a delay matrix: the paper's §2 analysis for any matrix you hand
// it (measured or generated with tivgen).
//
// Usage:
//
//	tivanalyze -in ds2.csv
//	tivanalyze -in meridian.tivm -format binary -worst 20
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"tivaware/internal/cluster"
	"tivaware/internal/delayspace"
	"tivaware/internal/stats"
	"tivaware/internal/tiv"
	"tivaware/internal/tivaware"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tivanalyze:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("tivanalyze", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		in       = fs.String("in", "", "input matrix file (required)")
		format   = fs.String("format", "csv", "input format: csv or binary")
		worst    = fs.Int("worst", 10, "how many worst edges to list")
		sample   = fs.Int("sample", 0, "estimate severities from this many third nodes (0 = exact)")
		seed     = fs.Int64("seed", 1, "seed for sampled estimation")
		binsize  = fs.Float64("binsize", 10, "delay bin width in ms for the severity-vs-delay table")
		clusters = fs.Int("clusters", 0, "additionally cluster the nodes into this many major clusters and report per-block severity (0 = off)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		fs.Usage()
		return fmt.Errorf("missing -in")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()

	var m *delayspace.Matrix
	switch *format {
	case "csv":
		m, err = delayspace.ReadCSV(f)
	case "binary":
		m, err = delayspace.ReadBinary(f)
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "nodes: %d\n", m.N())
	fmt.Fprintf(stdout, "measured pairs: %d of %d\n", m.MeasuredPairs(), m.N()*(m.N()-1)/2)
	fmt.Fprintf(stdout, "max delay: %.1f ms\n", m.MaxDelay())

	// All analysis goes through the tivaware service layer: one
	// (cached) pass backs the fraction, severities, counts, and the
	// per-edge detour queries in the worst-edges table.
	svc, err := tivaware.NewFromMatrix(m, tivaware.Options{SampleThirdNodes: *sample, Seed: *seed})
	if err != nil {
		return err
	}
	var sev *tiv.EdgeSeverities
	var counts *tiv.EdgeCounts
	if *sample == 0 {
		// Exact mode: one triple-scan pass yields the severities, the
		// per-edge violation counts for the worst-edges table, and the
		// exact violating-triangle fraction.
		an, err := svc.Analysis()
		if err != nil {
			return err
		}
		sev, counts = an.Severities, an.Counts
		fmt.Fprintf(stdout, "violating triangle fraction: %.3f (exact: %d of %d)\n",
			an.ViolatingTriangleFraction(), an.ViolatingTriangles, an.Triangles)
	} else {
		frac := svc.ViolatingTriangleFraction(200000)
		fmt.Fprintf(stdout, "violating triangle fraction: %.3f\n", frac)
		sev = svc.Severities()
	}
	vals := sev.Values()
	fmt.Fprintf(stdout, "severity: %s\n\n", stats.Summarize(vals))

	fmt.Fprintln(stdout, "severity CDF:")
	if err := stats.WriteCDFTable(stdout, []string{"severity"},
		[]stats.CDF{stats.NewCDF(vals)}, stats.RenderOptions{Points: 11, Format: "%.4f"}); err != nil {
		return err
	}

	delays, sevs := tiv.DelaySeverityPairs(m, sev)
	fmt.Fprintln(stdout, "\nseverity vs delay:")
	if err := stats.WriteBinTable(stdout, "delay_ms", "severity",
		stats.BinSeries(delays, sevs, *binsize), stats.RenderOptions{Format: "%.4f"}); err != nil {
		return err
	}

	if *clusters > 0 {
		cl, err := cluster.Cluster(m, cluster.Options{K: *clusters, Seed: *seed})
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\ncluster sizes (largest first, noise last): %v\n", cl.Sizes())
		blocks := cl.Blocks(m, func(i, j int) float64 { return sev.At(i, j) })
		fmt.Fprintln(stdout, "mean severity by cluster block:")
		label := func(c int) string {
			if c == cl.K {
				return "noise"
			}
			return fmt.Sprintf("c%d", c)
		}
		fmt.Fprint(stdout, "block")
		for b := 0; b <= cl.K; b++ {
			fmt.Fprintf(stdout, "\t%s", label(b))
		}
		fmt.Fprintln(stdout)
		for a := 0; a <= cl.K; a++ {
			fmt.Fprint(stdout, label(a))
			for b := 0; b <= cl.K; b++ {
				fmt.Fprintf(stdout, "\t%.4f", blocks.Mean[a][b])
			}
			fmt.Fprintln(stdout)
		}
	}

	if *worst > 0 {
		fmt.Fprintf(stdout, "\nworst %d edges by severity:\n", *worst)
		fmt.Fprintln(stdout, "i\tj\tdelay_ms\tseverity\tviolations\tdetour_via\tdetour_ms\tgain_ms")
		ctx := context.Background()
		for _, e := range sev.TopEdges(*worst) {
			count := 0
			if counts != nil {
				count = counts.At(e.I, e.J)
			} else {
				count = tiv.ViolationCount(m, e.I, e.J)
			}
			det, err := svc.DetourPath(ctx, e.I, e.J)
			if err != nil {
				return err
			}
			via, detms, gain := "-", "-", "-"
			if det.Beneficial() {
				via = fmt.Sprintf("%d", det.Via)
				detms = fmt.Sprintf("%.1f", det.ViaDelay)
				gain = fmt.Sprintf("%.1f", det.Gain)
			}
			fmt.Fprintf(stdout, "%d\t%d\t%.1f\t%.4f\t%d\t%s\t%s\t%s\n",
				e.I, e.J, m.At(e.I, e.J), e.Delay, count, via, detms, gain)
		}
	}
	return nil
}
