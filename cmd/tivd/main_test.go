package main

import (
	"context"
	"errors"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"tivaware/internal/tivaware"
	"tivaware/internal/tivclient"
	"tivaware/internal/tivwire"
)

// notifyWriter captures output and signals once the serving line
// (carrying the bound address) has been written.
type notifyWriter struct {
	mu    sync.Mutex
	buf   strings.Builder
	ready chan struct{}
	once  sync.Once
}

var addrRe = regexp.MustCompile(`on http://(\S+)`)

func (w *notifyWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	w.buf.Write(p)
	s := w.buf.String()
	w.mu.Unlock()
	if addrRe.MatchString(s) {
		w.once.Do(func() { close(w.ready) })
	}
	return len(p), nil
}

func (w *notifyWriter) addr() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	m := addrRe.FindStringSubmatch(w.buf.String())
	if m == nil {
		return ""
	}
	return m[1]
}

// TestDaemonEndToEnd boots the real daemon on an ephemeral port with
// a synthetic matrix, runs one client query and one SSE subscribe
// round-trip over real TCP, and shuts it down cleanly — the same
// sequence the CI smoke job runs against the built binary.
func TestDaemonEndToEnd(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := &notifyWriter{ready: make(chan struct{})}
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-listen", "127.0.0.1:0", "-synth", "32", "-live"}, w, ctx)
	}()
	select {
	case <-w.ready:
	case err := <-done:
		t.Fatalf("daemon exited before serving: %v", err)
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not start serving")
	}
	client := tivclient.New("http://"+w.addr(), tivclient.Options{})

	h, err := client.Healthz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.N != 32 || !h.Live {
		t.Fatalf("healthz = %+v, want 32 live nodes", h)
	}

	best, err := client.ClosestNode(ctx, 0, tivaware.QueryOptions{SeverityPenalty: 2})
	if err != nil {
		t.Fatal(err)
	}
	if best.Node == 0 || best.Delay <= 0 {
		t.Fatalf("ClosestNode = %+v", best)
	}

	// SSE round-trip: subscribe, force a violation through the wire,
	// expect its change set.
	subCtx, subCancel := context.WithCancel(ctx)
	defer subCancel()
	ready := make(chan struct{})
	events := make(chan tivwire.ChangeSet, 16)
	subDone := make(chan error, 1)
	go func() {
		subDone <- client.Subscribe(subCtx, ready, func(cs tivwire.ChangeSet) { events <- cs })
	}()
	select {
	case <-ready:
	case <-time.After(10 * time.Second):
		t.Fatal("subscription handshake timed out")
	}
	// A huge RTT on (0,1) is guaranteed to create violations: any
	// third node measured to both endpoints witnesses one.
	if _, err := client.ApplyUpdate(ctx, 0, 1, 1e6); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-events:
		found := false
		for _, e := range ev.NewlyViolated {
			if e.I == 0 && e.J == 1 {
				found = true
			}
		}
		if !found {
			t.Errorf("subscription event %+v does not flag edge (0,1)", ev)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("subscription event did not arrive")
	}
	subCancel()
	if err := <-subDone; err != nil {
		t.Errorf("Subscribe after cancel: %v", err)
	}

	// Clean shutdown.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("daemon shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	if !strings.Contains(w.buf.String(), "shutting down") {
		t.Error("daemon did not log its shutdown")
	}
}

// startDaemon boots one daemon via run() and returns its bound
// address plus a channel carrying its exit error.
func startDaemon(t *testing.T, ctx context.Context, args []string) (addr string, w *notifyWriter, done chan error) {
	t.Helper()
	w = &notifyWriter{ready: make(chan struct{})}
	done = make(chan error, 1)
	go func() { done <- run(args, w, ctx) }()
	select {
	case <-w.ready:
	case err := <-done:
		t.Fatalf("daemon %v exited before serving: %v", args, err)
	case <-time.After(15 * time.Second):
		t.Fatalf("daemon %v did not start serving", args)
	}
	return w.addr(), w, done
}

// TestGatewayDaemonEndToEnd boots three real shard daemons plus a
// `tivd -shards` gateway daemon over them — four HTTP servers over
// real TCP inside this process — and runs the full client round trip
// against the gateway: health, a scatter-gathered query, an update
// replicated across the shards, and its change set arriving on the
// fanned-in SSE stream. The wire protocol is the single-daemon one
// throughout; the client cannot tell it is talking to a cluster.
func TestGatewayDaemonEndToEnd(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var shardURLs []string
	var shardDone []chan error
	for s := 0; s < 3; s++ {
		addr, _, done := startDaemon(t, ctx, []string{"-listen", "127.0.0.1:0", "-synth", "24", "-live"})
		shardURLs = append(shardURLs, "http://"+addr)
		shardDone = append(shardDone, done)
	}
	gwAddr, gwW, gwDone := startDaemon(t, ctx, []string{"-listen", "127.0.0.1:0", "-shards", strings.Join(shardURLs, ",")})
	client := tivclient.New("http://"+gwAddr, tivclient.Options{})

	h, err := client.Healthz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.N != 24 || !h.Live {
		t.Fatalf("gateway healthz = %+v, want 24 live nodes", h)
	}

	best, err := client.ClosestNode(ctx, 0, tivaware.QueryOptions{SeverityPenalty: 2})
	if err != nil {
		t.Fatal(err)
	}
	if best.Node == 0 || best.Delay <= 0 {
		t.Fatalf("gateway ClosestNode = %+v", best)
	}

	// Subscribe through the gateway, update through the gateway: the
	// delta must come back on the fanned-in stream.
	subCtx, subCancel := context.WithCancel(ctx)
	defer subCancel()
	ready := make(chan struct{})
	events := make(chan tivwire.ChangeSet, 64)
	subDone := make(chan error, 1)
	go func() {
		subDone <- client.Subscribe(subCtx, ready, func(cs tivwire.ChangeSet) { events <- cs })
	}()
	select {
	case <-ready:
	case <-time.After(10 * time.Second):
		t.Fatal("gateway subscription handshake timed out")
	}
	if _, err := client.ApplyUpdate(ctx, 0, 1, 1e6); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(10 * time.Second)
	for found := false; !found; {
		select {
		case ev := <-events:
			for _, e := range ev.NewlyViolated {
				if e.I == 0 && e.J == 1 {
					found = true
				}
			}
		case <-deadline:
			t.Fatal("violated-edge delta did not arrive through the gateway stream")
		}
	}
	subCancel()
	if err := <-subDone; err != nil {
		t.Errorf("Subscribe after cancel: %v", err)
	}

	// The update must have reached every shard replica.
	for s, u := range shardURLs {
		d, ok, err := tivclient.New(u, tivclient.Options{}).Delay(ctx, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !ok || d != 1e6 {
			t.Errorf("shard %d delay(0,1) = (%g,%v), want the replicated 1e6", s, d, ok)
		}
	}

	// Clean shutdown of the whole fleet.
	cancel()
	for _, done := range append(shardDone, gwDone) {
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("daemon shutdown: %v", err)
			}
		case <-time.After(15 * time.Second):
			t.Fatal("a daemon did not shut down")
		}
	}
	if !strings.Contains(gwW.buf.String(), "gateway over 3 shards") {
		t.Error("gateway daemon did not log its shard count")
	}
}

func TestFlagValidation(t *testing.T) {
	if err := run([]string{"-listen", "127.0.0.1:0"}, &strings.Builder{}, context.Background()); err == nil {
		t.Error("missing -in/-synth should error")
	}
	if err := run([]string{"-synth", "8", "-in", "x.csv"}, &strings.Builder{}, context.Background()); err == nil {
		t.Error("both -in and -synth should error")
	}
	if err := run([]string{"-synth", "8", "-live", "-sample", "4", "-listen", "127.0.0.1:0"}, &strings.Builder{}, context.Background()); err == nil {
		t.Error("live + sampled should error")
	}
	if err := run([]string{"-shards", "http://x", "-synth", "8"}, &strings.Builder{}, context.Background()); err == nil {
		t.Error("-shards + -synth should error")
	}
	if err := run([]string{"-shards", " , "}, &strings.Builder{}, context.Background()); err == nil {
		t.Error("-shards without URLs should error")
	}
}

// TestChaosFlag boots the daemon with -chaos err=1 (every request
// answers an injected 503 envelope) and verifies the injected error
// reaches a client as a typed retryable "unavailable" — the wiring CI's
// chaos-smoke job depends on. A malformed spec must fail startup.
func TestChaosFlag(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := &notifyWriter{ready: make(chan struct{})}
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-listen", "127.0.0.1:0", "-synth", "16", "-chaos", "err=1"}, w, ctx)
	}()
	select {
	case <-w.ready:
	case err := <-done:
		t.Fatalf("daemon exited before serving: %v", err)
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not start serving")
	}
	client := tivclient.New("http://"+w.addr(), tivclient.Options{})
	_, err := client.Healthz(ctx)
	if err == nil {
		t.Fatal("healthz through err=1 chaos succeeded")
	}
	var wire *tivclient.Error
	if !errors.As(err, &wire) {
		t.Fatalf("injected fault surfaced as %T (%v), want *tivclient.Error", err, err)
	}
	if wire.Code != tivwire.CodeUnavailable {
		t.Fatalf("injected fault code = %q, want %q", wire.Code, tivwire.CodeUnavailable)
	}
	if !wire.Retryable() {
		t.Fatal("injected fault is not retryable")
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("daemon shutdown: %v", err)
	}

	if err := run([]string{"-synth", "8", "-chaos", "bogus"}, &strings.Builder{}, context.Background()); err == nil {
		t.Error("malformed -chaos spec should error")
	}
}
