package main

import (
	"context"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"tivaware/internal/tivaware"
	"tivaware/internal/tivclient"
	"tivaware/internal/tivwire"
)

// notifyWriter captures output and signals once the serving line
// (carrying the bound address) has been written.
type notifyWriter struct {
	mu    sync.Mutex
	buf   strings.Builder
	ready chan struct{}
	once  sync.Once
}

var addrRe = regexp.MustCompile(`on http://(\S+)`)

func (w *notifyWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	w.buf.Write(p)
	s := w.buf.String()
	w.mu.Unlock()
	if addrRe.MatchString(s) {
		w.once.Do(func() { close(w.ready) })
	}
	return len(p), nil
}

func (w *notifyWriter) addr() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	m := addrRe.FindStringSubmatch(w.buf.String())
	if m == nil {
		return ""
	}
	return m[1]
}

// TestDaemonEndToEnd boots the real daemon on an ephemeral port with
// a synthetic matrix, runs one client query and one SSE subscribe
// round-trip over real TCP, and shuts it down cleanly — the same
// sequence the CI smoke job runs against the built binary.
func TestDaemonEndToEnd(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := &notifyWriter{ready: make(chan struct{})}
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-listen", "127.0.0.1:0", "-synth", "32", "-live"}, w, ctx)
	}()
	select {
	case <-w.ready:
	case err := <-done:
		t.Fatalf("daemon exited before serving: %v", err)
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not start serving")
	}
	client := tivclient.New("http://"+w.addr(), tivclient.Options{})

	h, err := client.Healthz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.N != 32 || !h.Live {
		t.Fatalf("healthz = %+v, want 32 live nodes", h)
	}

	best, err := client.ClosestNode(ctx, 0, tivaware.QueryOptions{SeverityPenalty: 2})
	if err != nil {
		t.Fatal(err)
	}
	if best.Node == 0 || best.Delay <= 0 {
		t.Fatalf("ClosestNode = %+v", best)
	}

	// SSE round-trip: subscribe, force a violation through the wire,
	// expect its change set.
	subCtx, subCancel := context.WithCancel(ctx)
	defer subCancel()
	ready := make(chan struct{})
	events := make(chan tivwire.ChangeSet, 16)
	subDone := make(chan error, 1)
	go func() {
		subDone <- client.Subscribe(subCtx, ready, func(cs tivwire.ChangeSet) { events <- cs })
	}()
	select {
	case <-ready:
	case <-time.After(10 * time.Second):
		t.Fatal("subscription handshake timed out")
	}
	// A huge RTT on (0,1) is guaranteed to create violations: any
	// third node measured to both endpoints witnesses one.
	if _, err := client.ApplyUpdate(ctx, 0, 1, 1e6); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-events:
		found := false
		for _, e := range ev.NewlyViolated {
			if e.I == 0 && e.J == 1 {
				found = true
			}
		}
		if !found {
			t.Errorf("subscription event %+v does not flag edge (0,1)", ev)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("subscription event did not arrive")
	}
	subCancel()
	if err := <-subDone; err != nil {
		t.Errorf("Subscribe after cancel: %v", err)
	}

	// Clean shutdown.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("daemon shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	if !strings.Contains(w.buf.String(), "shutting down") {
		t.Error("daemon did not log its shutdown")
	}
}

func TestFlagValidation(t *testing.T) {
	if err := run([]string{"-listen", "127.0.0.1:0"}, &strings.Builder{}, context.Background()); err == nil {
		t.Error("missing -in/-synth should error")
	}
	if err := run([]string{"-synth", "8", "-in", "x.csv"}, &strings.Builder{}, context.Background()); err == nil {
		t.Error("both -in and -synth should error")
	}
	if err := run([]string{"-synth", "8", "-live", "-sample", "4", "-listen", "127.0.0.1:0"}, &strings.Builder{}, context.Background()); err == nil {
		t.Error("live + sampled should error")
	}
}
