// Command tivd is the TIV query daemon: it loads (or synthesizes) a
// delay matrix, wraps it in a tivaware.Service, and serves the
// TIV-aware query API over HTTP/JSON — severity-penalized ranking,
// closest-node selection, one-hop detour discovery, worst-edge
// listing, live updates, and an SSE stream of violated-edge change
// sets. Remote consumers use internal/tivclient (or plain curl).
//
// Serve a measured matrix, read-only:
//
//	tivd -in ds2.csv -listen 0.0.0.0:7070
//
// Serve a live synthetic matrix accepting updates and subscriptions:
//
//	tivd -synth 200 -live -listen 127.0.0.1:7070
//
// Serve a scatter-gather gateway over three shard daemons (the wire
// protocol is identical, so clients cannot tell a gateway from a
// single daemon):
//
//	tivd -shards http://10.0.0.1:7070,http://10.0.0.2:7070,http://10.0.0.3:7070
//
// Rehearse failure handling against a daemon that misbehaves on
// purpose (injected latency, 503s, torn responses, hangs, or a hard
// crash on the Nth request — see internal/tivfault):
//
//	tivd -synth 200 -live -chaos err=0.05,latency=20ms,crash=5000
//
// Then:
//
//	curl 'http://127.0.0.1:7070/healthz'
//	curl 'http://127.0.0.1:7070/v1/closest?target=0&penalty=2'
//	curl -N 'http://127.0.0.1:7070/v1/subscribe'
//
// The daemon shuts down cleanly on SIGINT/SIGTERM: subscription
// streams are closed and in-flight requests drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"tivaware/internal/delayspace"
	"tivaware/internal/synth"
	"tivaware/internal/tivaware"
	"tivaware/internal/tivd"
	"tivaware/internal/tivfault"
	"tivaware/internal/tivframe"
	"tivaware/internal/tivshard"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "tivd:", err)
		os.Exit(1)
	}
}

// run starts the daemon and blocks until the context (nil means "on
// SIGINT/SIGTERM") is done. The bound address is printed to stdout so
// callers using -listen :0 can find it.
func run(args []string, stdout io.Writer, ctx context.Context) error {
	fs := flag.NewFlagSet("tivd", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		listen      = fs.String("listen", "127.0.0.1:7070", "HTTP listen address (use :0 for an ephemeral port)")
		in          = fs.String("in", "", "delay matrix file to serve")
		format      = fs.String("format", "csv", "input format: csv or binary")
		synthN      = fs.Int("synth", 0, "serve a DS2-like synthetic matrix of this many nodes instead of -in")
		seed        = fs.Int64("seed", 1, "seed for -synth")
		live        = fs.Bool("live", false, "maintain the analysis incrementally and accept POST /v1/update + /v1/subscribe")
		workers     = fs.Int("workers", 0, "analysis parallelism (0 = GOMAXPROCS)")
		sample      = fs.Int("sample", 0, "estimate severities from this many third nodes (0 = exact; incompatible with -live)")
		maxK        = fs.Int("maxk", 0, "cap on k for /v1/rank and /v1/top (0 = default 4096)")
		maxBatch    = fs.Int("maxbatch", 0, "cap on queries per POST /v1/batch request (0 = default 256)")
		cacheN      = fs.Int("cache", 0, "epoch-keyed query cache capacity in entries (0 = default 4096, negative disables)")
		shards      = fs.String("shards", "", "comma-separated shard daemon URLs: serve a scatter-gather gateway over them instead of a local matrix")
		chaos       = fs.String("chaos", "", "inject faults into every served request, e.g. latency=50ms,jitter=10ms,err=0.05,hang=0.01,tear=0.05,crash=500,seed=7 (crash=N exits the process hard on the Nth request)")
		frameListen = fs.String("frame-listen", "", "framed binary transport listen address — tcp \"host:port\" (use :0 for ephemeral) or \"unix:///path.sock\"; empty disables")
		shardFrames = fs.String("shard-frames", "", "comma-separated framed addresses for the -shards daemons, aligned by index (an empty entry keeps that shard on HTTP)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	mw, err := chaosMiddleware(*chaos, stdout)
	if err != nil {
		return err
	}
	if *shards != "" {
		if *in != "" || *synthN != 0 || *live || *sample != 0 || *workers != 0 || *format != "csv" {
			fs.Usage()
			return fmt.Errorf("-shards is a pure gateway: it takes no -in/-synth/-format/-live/-sample/-workers (liveness and analysis parallelism follow the shards)")
		}
		return runGateway(*shards, *shardFrames, *listen, *frameListen, tivd.Options{MaxRankK: *maxK, MaxBatch: *maxBatch, CacheEntries: *cacheN}, mw, stdout, ctx)
	}
	if *shardFrames != "" {
		fs.Usage()
		return fmt.Errorf("-shard-frames requires -shards")
	}
	if (*in == "") == (*synthN == 0) {
		fs.Usage()
		return fmt.Errorf("exactly one of -in, -synth, or -shards required")
	}

	var m *delayspace.Matrix
	switch {
	case *synthN > 0:
		sp, err := synth.Generate(synth.DS2Like(*synthN, *seed))
		if err != nil {
			return err
		}
		m = sp.Matrix
	default:
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		switch *format {
		case "csv":
			m, err = delayspace.ReadCSV(f)
		case "binary":
			m, err = delayspace.ReadBinary(f)
		default:
			return fmt.Errorf("unknown format %q", *format)
		}
		if err != nil {
			return err
		}
	}

	svc, err := tivaware.NewFromMatrix(m, tivaware.Options{
		Workers:          *workers,
		SampleThirdNodes: *sample,
		Seed:             *seed,
		Live:             *live,
	})
	if err != nil {
		return err
	}
	srv, err := tivd.New(svc, tivd.Options{MaxRankK: *maxK, MaxBatch: *maxBatch, CacheEntries: *cacheN})
	if err != nil {
		return err
	}
	banner := fmt.Sprintf("tivd: serving %d nodes (live=%v)", svc.N(), svc.Live())
	return serveLoop(srv, *listen, *frameListen, banner, mw, stdout, ctx, nil)
}

// chaosMiddleware builds the -chaos fault-injecting middleware (nil
// when the flag is empty). The crash fault exits the process hard —
// no drain, no cleanup — exactly like a SIGKILLed daemon, so chaos
// harnesses can rehearse real crash-recovery against a stock binary.
func chaosMiddleware(spec string, stdout io.Writer) (func(http.Handler) http.Handler, error) {
	if spec == "" {
		return nil, nil
	}
	parsed, err := tivfault.ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	inj := tivfault.New(parsed)
	inj.CrashFn = func() {
		fmt.Fprintln(os.Stderr, "tivd: -chaos crash fault: exiting hard")
		os.Exit(137)
	}
	fmt.Fprintf(stdout, "tivd: CHAOS MODE: injecting faults (%s)\n", spec)
	return inj.Handler, nil
}

// runGateway serves a tivshard gateway over the given shard daemons
// behind the identical wire surface. shardFrames, when non-empty,
// lists the shards' framed addresses (aligned by index) so the
// gateway dials them over persistent frames instead of HTTP.
func runGateway(shards, shardFrames, listen, frameListen string, opts tivd.Options, mw func(http.Handler) http.Handler, stdout io.Writer, ctx context.Context) error {
	var urls []string
	for _, u := range strings.Split(shards, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		return fmt.Errorf("-shards carries no URLs")
	}
	var frameAddrs []string
	if shardFrames != "" {
		for _, a := range strings.Split(shardFrames, ",") {
			frameAddrs = append(frameAddrs, strings.TrimSpace(a))
		}
		if len(frameAddrs) != len(urls) {
			return fmt.Errorf("-shard-frames carries %d addresses for %d shards", len(frameAddrs), len(urls))
		}
	}
	if ctx == nil {
		var stop context.CancelFunc
		ctx, stop = signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
	}
	// Bound the startup health probes: a hung shard must fail the
	// gateway (or yield to a signal), not wedge it before it serves.
	probeCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	gw, err := tivshard.New(probeCtx, urls, tivshard.Options{FrameAddrs: frameAddrs})
	if err != nil {
		return err
	}
	srv, err := tivd.NewBackend(gw.Backend(), opts)
	if err != nil {
		gw.Close()
		return err
	}
	banner := fmt.Sprintf("tivd: gateway over %d shards serving %d nodes (live=%v)", gw.K(), gw.N(), gw.Live())
	return serveLoop(srv, listen, frameListen, banner, mw, stdout, ctx, gw.Close)
}

// serveLoop binds the listeners (HTTP always; the framed transport
// when frameListen is set), serves until the context (nil means "on
// SIGINT/SIGTERM") is done, and shuts down cleanly: SSE streams and
// the framed drain first so both servers can empty their in-flight
// work, then onShutdown (a gateway's fan-in pumps), if any. mw, when
// non-nil, wraps the served HTTP handler (-chaos fault injection; the
// framed path carries no middleware).
func serveLoop(srv *tivd.Server, listen, frameListen, banner string, mw func(http.Handler) http.Handler, stdout io.Writer, ctx context.Context, onShutdown func()) error {
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%s on http://%s\n", banner, ln.Addr())

	var fsrv *tivframe.Server
	frameDone := make(chan error, 1)
	if frameListen != "" {
		network, address, err := tivframe.SplitAddr(frameListen)
		if err != nil {
			ln.Close()
			return err
		}
		fln, err := net.Listen(network, address)
		if err != nil {
			ln.Close()
			return err
		}
		fsrv = tivframe.NewServer(srv.FrameHandler(), tivframe.Options{})
		fmt.Fprintf(stdout, "tivd: frames on %s://%s\n", network, fln.Addr())
		go func() { frameDone <- fsrv.Serve(fln) }()
	}

	if ctx == nil {
		var stop context.CancelFunc
		ctx, stop = signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
	}
	h := http.Handler(srv.Handler())
	if mw != nil {
		h = mw(h)
	}
	hs := &http.Server{Handler: h}
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()

	select {
	case err := <-done:
		if fsrv != nil {
			fsrv.Abort()
		}
		return err
	case err := <-frameDone:
		// Only a real accept-loop failure lands here before shutdown
		// (Close sends ErrServerClosed, and only after ctx.Done()).
		hs.Close()
		<-done
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(stdout, "tivd: shutting down")
	srv.Close() // end SSE streams so Shutdown can drain
	if onShutdown != nil {
		defer onShutdown()
	}
	if fsrv != nil {
		// Graceful framed drain: stop accepting, let in-flight
		// envelopes answer, then close the connections.
		if err := fsrv.Close(); err != nil {
			return err
		}
		if err := <-frameDone; err != nil && !errors.Is(err, tivframe.ErrServerClosed) {
			return err
		}
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := <-done; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
