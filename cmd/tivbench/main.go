// Command tivbench regenerates the paper's evaluation figures.
//
// Usage:
//
//	tivbench -list
//	tivbench -run fig2                 # one figure, table output
//	tivbench -run all -n 800 -o out/   # whole suite into a directory
//	tivbench -run fig19 -csv           # CSV series for plotting
//
// Experiment IDs follow the paper's figure numbers (fig2 … fig25,
// tab1) plus the ablations (ablate-*); see DESIGN.md for the index.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"tivaware/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tivbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("tivbench", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		list    = fs.Bool("list", false, "list experiment IDs and exit")
		id      = fs.String("run", "", "experiment ID to run, or \"all\"")
		n       = fs.Int("n", 0, "node count of the DS2-scale space (0 = default 800; 4000 = paper scale)")
		runs    = fs.Int("runs", 0, "methodology repetitions (0 = default 3; paper uses 5)")
		seconds = fs.Int("seconds", 0, "Vivaldi convergence window in simulated seconds (0 = default 100)")
		seed    = fs.Int64("seed", 1, "random seed")
		workers = fs.Int("workers", 0, "severity-engine parallelism (0 = GOMAXPROCS)")
		csv     = fs.Bool("csv", false, "emit CSV instead of a table")
		outDir  = fs.String("o", "", "write per-experiment files into this directory instead of stdout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, s := range experiments.Specs {
			fmt.Fprintf(stdout, "%-18s %s\n", s.ID, s.Title)
		}
		return nil
	}
	if *id == "" {
		fs.Usage()
		return fmt.Errorf("missing -run (or -list)")
	}
	cfg := experiments.Config{N: *n, Runs: *runs, VivaldiSeconds: *seconds, Seed: *seed, Workers: *workers}

	var specs []experiments.Spec
	if *id == "all" {
		specs = experiments.Specs
	} else {
		s, err := experiments.Lookup(*id)
		if err != nil {
			return err
		}
		specs = []experiments.Spec{s}
	}

	for _, spec := range specs {
		start := time.Now()
		res, err := spec.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", spec.ID, err)
		}
		elapsed := time.Since(start).Round(time.Millisecond)

		var w io.Writer = stdout
		var closeFn func() error
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				return err
			}
			ext := ".txt"
			if *csv {
				ext = ".csv"
			}
			f, err := os.Create(filepath.Join(*outDir, spec.ID+ext))
			if err != nil {
				return err
			}
			w = f
			closeFn = f.Close
		}

		if *csv {
			err = res.WriteCSV(w)
		} else {
			err = res.WriteTable(w)
			if err == nil {
				_, err = fmt.Fprintf(w, "# elapsed: %v\n\n", elapsed)
			}
		}
		if closeFn != nil {
			if cerr := closeFn(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			return fmt.Errorf("%s: writing output: %w", spec.ID, err)
		}
		if *outDir != "" {
			fmt.Fprintf(stdout, "%-18s done in %v\n", spec.ID, elapsed)
		}
	}
	return nil
}
