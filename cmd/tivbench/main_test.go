package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-list"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, id := range []string{"fig2", "fig25", "tab1", "ablate-aware"} {
		if !strings.Contains(out, id) {
			t.Errorf("list output missing %s", id)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-run", "fig10", "-n", "60", "-runs", "1", "-seconds", "30"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "fig10") {
		t.Errorf("output missing figure header:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "elapsed") {
		t.Error("output missing elapsed time")
	}
}

func TestRunCSV(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-run", "fig10", "-n", "60", "-csv"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "series,") {
		t.Errorf("CSV output malformed:\n%.100s", sb.String())
	}
}

func TestRunIntoDirectory(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	if err := run([]string{"-run", "fig10", "-n", "60", "-o", dir}, &sb); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig10.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "fig10") {
		t.Error("file content missing header")
	}
	if !strings.Contains(sb.String(), "done in") {
		t.Error("progress line missing")
	}
}

func TestErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-run", "nope"}, &sb); err == nil {
		t.Error("unknown id should error")
	}
	if err := run(nil, &sb); err == nil {
		t.Error("missing -run should error")
	}
	if err := run([]string{"-badflag"}, &sb); err == nil {
		t.Error("bad flag should error")
	}
}
