// Command tivlint runs the tivlint analyzer suite — the machine-checked
// invariants of this codebase (see DESIGN.md) — over the module:
//
//	go run ./cmd/tivlint ./...
//
// It prints active findings to stderr and exits 1 when any exist.
// Findings silenced by a "//lint:tiv <analyzer> <justification>"
// directive do not fail the run but are counted, and appear in full in
// -json output so every suppression stays reviewable (CI uploads that
// JSON as an artifact).
//
// The ratcheting baseline: -baseline tivlint.baseline.json accepts the
// findings recorded there (keyed by structural hash, not line numbers)
// so a new analyzer can land over a tree with known debt. New findings
// still fail the run; stale entries — debt that no longer fires — are
// reported, and -baseline-prune rewrites the file without them, keeping
// the debt count monotonically non-increasing. -baseline-write creates
// or refreshes the file from the current active findings (the only way
// the count may grow, and it requires an explicit human-run flag).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"tivaware/internal/lint"
	"tivaware/internal/lint/analyzers"
)

func main() {
	jsonOut := flag.Bool("json", false, "write the full result (findings incl. suppressed, warnings) as JSON to stdout")
	outFile := flag.String("out", "", "also write the JSON result to this file (written even when findings fail the run)")
	baselinePath := flag.String("baseline", "", "accept findings recorded in this baseline file; only new findings fail the run")
	baselineWrite := flag.Bool("baseline-write", false, "rewrite the -baseline file accepting every currently-active finding")
	baselinePrune := flag.Bool("baseline-prune", false, "rewrite the -baseline file dropping stale entries (debt that no longer fires)")
	sarifFile := flag.String("sarif", "", "write the active findings as SARIF 2.1.0 to this file")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: tivlint [-json] [-out file] [-baseline file [-baseline-write|-baseline-prune]] [-sarif file] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Analyzers:\n")
		for _, a := range analyzers.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-18s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tivlint:", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	res, err := lint.Run(root, patterns, analyzers.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "tivlint:", err)
		os.Exit(2)
	}

	var stale []lint.BaselineEntry
	if *baselinePath != "" {
		bl, err := lint.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tivlint:", err)
			os.Exit(2)
		}
		if *baselineWrite {
			bl = lint.BaselineFrom(res)
			if err := bl.Write(*baselinePath); err != nil {
				fmt.Fprintln(os.Stderr, "tivlint: write -baseline:", err)
				os.Exit(2)
			}
			fmt.Fprintf(os.Stderr, "tivlint: wrote %s with %d entries\n", *baselinePath, len(bl.Entries))
			return
		}
		stale = bl.Apply(res)
		if *baselinePrune {
			bl.Prune(stale)
			if err := bl.Write(*baselinePath); err != nil {
				fmt.Fprintln(os.Stderr, "tivlint: write -baseline:", err)
				os.Exit(2)
			}
			if len(stale) > 0 {
				fmt.Fprintf(os.Stderr, "tivlint: pruned %d stale entries from %s (%d remain)\n", len(stale), *baselinePath, len(bl.Entries))
			}
			stale = nil
		}
	}

	if *sarifFile != "" {
		data, err := lint.SARIF(res, analyzers.All())
		if err == nil {
			err = os.WriteFile(*sarifFile, data, 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "tivlint: write -sarif:", err)
			os.Exit(2)
		}
	}

	if *outFile != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err == nil {
			err = os.WriteFile(*outFile, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "tivlint: write -out:", err)
			os.Exit(2)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(os.Stderr, "tivlint:", err)
			os.Exit(2)
		}
	}

	for _, w := range res.Warnings {
		fmt.Fprintln(os.Stderr, "tivlint: warning:", w)
	}
	active := res.Active()
	var suppressed, baselined int
	for _, f := range res.Findings {
		switch {
		case f.Suppressed:
			suppressed++
		case f.Baselined:
			baselined++
		}
	}
	if !*jsonOut {
		for _, f := range active {
			fmt.Fprintln(os.Stderr, f)
		}
	}
	if suppressed > 0 {
		fmt.Fprintf(os.Stderr, "tivlint: %d suppressed finding(s) with //lint:tiv justifications\n", suppressed)
	}
	if baselined > 0 {
		fmt.Fprintf(os.Stderr, "tivlint: %d baselined finding(s) accepted from %s\n", baselined, *baselinePath)
	}
	for _, e := range stale {
		fmt.Fprintf(os.Stderr, "tivlint: stale baseline entry (no longer fires, run -baseline-prune): %s %s %s\n", e.Analyzer, e.Package, e.Key)
	}
	if len(active) > 0 {
		fmt.Fprintf(os.Stderr, "tivlint: %d finding(s)\n", len(active))
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the enclosing
// go.mod, so tivlint runs correctly from any subdirectory.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
