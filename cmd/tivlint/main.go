// Command tivlint runs the tivlint analyzer suite — the machine-checked
// invariants of this codebase (see DESIGN.md) — over the module:
//
//	go run ./cmd/tivlint ./...
//
// It prints active findings to stderr and exits 1 when any exist.
// Findings silenced by a "//lint:tiv <analyzer> <justification>"
// directive do not fail the run but are counted, and appear in full in
// -json output so every suppression stays reviewable (CI uploads that
// JSON as an artifact).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"tivaware/internal/lint"
	"tivaware/internal/lint/analyzers"
)

func main() {
	jsonOut := flag.Bool("json", false, "write the full result (findings incl. suppressed, warnings) as JSON to stdout")
	outFile := flag.String("out", "", "also write the JSON result to this file (written even when findings fail the run)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: tivlint [-json] [-out file] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Analyzers:\n")
		for _, a := range analyzers.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-18s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tivlint:", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	res, err := lint.Run(root, patterns, analyzers.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "tivlint:", err)
		os.Exit(2)
	}

	if *outFile != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err == nil {
			err = os.WriteFile(*outFile, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "tivlint: write -out:", err)
			os.Exit(2)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(os.Stderr, "tivlint:", err)
			os.Exit(2)
		}
	}

	for _, w := range res.Warnings {
		fmt.Fprintln(os.Stderr, "tivlint: warning:", w)
	}
	active := res.Active()
	suppressed := len(res.Findings) - len(active)
	if !*jsonOut {
		for _, f := range active {
			fmt.Fprintln(os.Stderr, f)
		}
	}
	if suppressed > 0 {
		fmt.Fprintf(os.Stderr, "tivlint: %d suppressed finding(s) with //lint:tiv justifications\n", suppressed)
	}
	if len(active) > 0 {
		fmt.Fprintf(os.Stderr, "tivlint: %d finding(s)\n", len(active))
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the enclosing
// go.mod, so tivlint runs correctly from any subdirectory.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
