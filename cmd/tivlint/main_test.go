package main

import (
	"path/filepath"
	"testing"

	"tivaware/internal/lint"
	"tivaware/internal/lint/analyzers"
)

// TestTreeIsClean runs the full tivlint suite over the repository the
// same way CI does — baseline applied — and fails on any NEW finding:
// `go test ./...` alone enforces every machine-checked invariant, with
// or without the CI wiring. Accepted debt (tivlint.baseline.json) and
// //lint:tiv suppressions are logged, not failed, so the ratchet only
// bites on regressions.
func TestTreeIsClean(t *testing.T) {
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	res, err := lint.Run(root, nil, analyzers.All())
	if err != nil {
		t.Fatal(err)
	}
	bl, err := lint.LoadBaseline(filepath.Join(root, "tivlint.baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	stale := bl.Apply(res)
	for _, w := range res.Warnings {
		t.Logf("loader warning: %s", w)
	}
	for _, f := range res.Active() {
		t.Errorf("%s", f)
	}
	for _, e := range stale {
		t.Logf("stale baseline entry (run tivlint -baseline tivlint.baseline.json -baseline-prune): %s %s %s", e.Analyzer, e.Package, e.Key)
	}
	for _, f := range res.Findings {
		switch {
		case f.Suppressed:
			t.Logf("suppressed: %s — %s", f, f.Justification)
		case f.Baselined:
			t.Logf("baselined: %s", f)
		}
	}
}
