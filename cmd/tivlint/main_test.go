package main

import (
	"testing"

	"tivaware/internal/lint"
	"tivaware/internal/lint/analyzers"
)

// TestTreeIsClean runs the full tivlint suite over the repository the
// same way CI does and fails on any active finding: `go test ./...`
// alone enforces every machine-checked invariant, with or without the
// CI wiring.
func TestTreeIsClean(t *testing.T) {
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	res, err := lint.Run(root, nil, analyzers.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range res.Warnings {
		t.Logf("loader warning: %s", w)
	}
	for _, f := range res.Active() {
		t.Errorf("%s", f)
	}
	suppressed := 0
	for _, f := range res.Findings {
		if f.Suppressed {
			suppressed++
			t.Logf("suppressed: %s — %s", f, f.Justification)
		}
	}
}
