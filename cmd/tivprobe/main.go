// Command tivprobe is the deployment face of the measurement layer:
// UDP RTT agents that produce the delay matrices every analysis in
// this repository consumes.
//
// Run an agent on each host:
//
//	tivprobe -serve 0.0.0.0:7777
//
// Measure from this host to a set of agents:
//
//	tivprobe -probe host1:7777,host2:7777 -count 5
//
// Or demonstrate a full matrix measurement on loopback:
//
//	tivprobe -mesh 16 -out matrix.csv
//
// With -watch, the mesh keeps re-measuring and feeds every round of
// live probes into a live tivaware service (incremental monitoring),
// reporting the violating triangle fraction and the worst TIV edges
// as they move:
//
//	tivprobe -mesh 16 -watch 5 -top 3
//
// With -api, the watcher additionally serves the live service over
// the tivd HTTP API at the given address and routes its own per-round
// queries through a tivclient connected to it — a full client↔daemon
// round trip over the wire, with the API left up for external
// consumers (curl, tivclient) for the duration of the watch:
//
//	tivprobe -mesh 16 -watch 5 -api 127.0.0.1:7070
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"tivaware/internal/delayspace"
	"tivaware/internal/netprobe"
	"tivaware/internal/tiv"
	"tivaware/internal/tivaware"
	"tivaware/internal/tivclient"
	"tivaware/internal/tivd"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tivprobe:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("tivprobe", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		serve    = fs.String("serve", "", "run a probe agent on this UDP address until -duration elapses")
		duration = fs.Duration("duration", 0, "how long to serve (0 = forever)")
		probe    = fs.String("probe", "", "comma-separated agent addresses to measure from this host")
		count    = fs.Int("count", 3, "probes per target; the minimum RTT is reported")
		timeout  = fs.Duration("timeout", time.Second, "per-probe timeout")
		mesh     = fs.Int("mesh", 0, "run this many loopback agents and measure their full matrix")
		out      = fs.String("out", "", "matrix output file for -mesh (default stdout)")
		watch    = fs.Int("watch", 0, "re-measure the mesh this many rounds, feeding a live TIV monitor")
		top      = fs.Int("top", 5, "worst TIV edges to report per -watch round")
		api      = fs.String("api", "", "with -watch: serve the live service over the tivd HTTP API on this address and query it through tivclient")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	modes := 0
	for _, on := range []bool{*serve != "", *probe != "", *mesh > 0} {
		if on {
			modes++
		}
	}
	if modes != 1 {
		fs.Usage()
		return fmt.Errorf("exactly one of -serve, -probe, -mesh required")
	}

	switch {
	case *serve != "":
		return runServe(stdout, *serve, *duration)
	case *probe != "":
		return runProbe(stdout, *probe, *count, *timeout)
	default:
		if *watch < 0 || *top < 0 {
			return fmt.Errorf("-watch and -top must be >= 0")
		}
		if *api != "" && *watch == 0 {
			return fmt.Errorf("-api requires -watch")
		}
		return runMesh(stdout, *mesh, *out, *timeout, *watch, *top, *api)
	}
}

func runServe(stdout io.Writer, addr string, duration time.Duration) error {
	agent, err := netprobe.NewAgent(addr)
	if err != nil {
		return err
	}
	defer agent.Close()
	fmt.Fprintf(stdout, "serving on %s\n", agent.Addr())
	if duration > 0 {
		time.Sleep(duration)
		return nil
	}
	select {} // serve forever; the agent answers in the background
}

func runProbe(stdout io.Writer, targets string, count int, timeout time.Duration) error {
	if count < 1 {
		return fmt.Errorf("count %d must be >= 1", count)
	}
	agent, err := netprobe.NewAgent(":0")
	if err != nil {
		return err
	}
	defer agent.Close()
	fmt.Fprintln(stdout, "target\tmin_rtt_ms\tprobes_ok")
	for _, target := range strings.Split(targets, ",") {
		target = strings.TrimSpace(target)
		if target == "" {
			continue
		}
		addr, err := net.ResolveUDPAddr("udp", target)
		if err != nil {
			return fmt.Errorf("resolving %q: %w", target, err)
		}
		best, ok := 0.0, 0
		for p := 0; p < count; p++ {
			rtt, err := agent.Probe(addr, netprobe.ProbeOptions{Timeout: timeout})
			if err != nil {
				continue
			}
			if ok == 0 || rtt < best {
				best = rtt
			}
			ok++
		}
		if ok == 0 {
			fmt.Fprintf(stdout, "%s\t-\t0/%d\n", target, count)
			continue
		}
		fmt.Fprintf(stdout, "%s\t%.3f\t%d/%d\n", target, best, ok, count)
	}
	return nil
}

func runMesh(stdout io.Writer, n int, out string, timeout time.Duration, watch, top int, api string) error {
	cluster, err := netprobe.NewCluster(n, "127.0.0.1", netprobe.ProbeOptions{Timeout: timeout, Retries: 1})
	if err != nil {
		return err
	}
	defer cluster.Close()
	if err := cluster.WaitReady(5 * time.Second); err != nil {
		return err
	}
	m, err := cluster.MeasureMatrix(8)
	if err != nil {
		return err
	}
	var rtts []float64
	m.EachEdge(func(i, j int, d float64) bool {
		rtts = append(rtts, d)
		return true
	})
	sort.Float64s(rtts)
	if len(rtts) > 0 {
		fmt.Fprintf(stdout, "# mesh of %d agents: %d pairs, median RTT %.3f ms, max %.3f ms\n",
			n, len(rtts), rtts[len(rtts)/2], rtts[len(rtts)-1])
	}
	if watch > 0 {
		if err := runWatch(stdout, cluster, m, watch, top, api); err != nil {
			return err
		}
	}
	w := stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		return delayspace.WriteCSV(f, m)
	}
	return delayspace.WriteCSV(w, m)
}

// watchReporter answers the watch loop's per-round questions —
// violating triangle fraction and worst edges — either in-process
// from the live service or over the wire from a tivd daemon.
type watchReporter interface {
	fraction() (float64, error)
	topEdges(k int) ([]delayspace.Edge, error)
}

type localReporter struct{ svc *tivaware.Service }

func (r localReporter) fraction() (float64, error) { return r.svc.ViolatingTriangleFraction(0), nil }
func (r localReporter) topEdges(k int) ([]delayspace.Edge, error) {
	return r.svc.TopEdges(k), nil
}

type remoteReporter struct {
	ctx    context.Context
	client *tivclient.Client
}

func (r remoteReporter) fraction() (float64, error) {
	an, err := r.client.Analysis(r.ctx)
	if err != nil {
		return 0, err
	}
	return an.ViolatingTriangleFraction, nil
}
func (r remoteReporter) topEdges(k int) ([]delayspace.Edge, error) {
	return r.client.TopEdges(r.ctx, k)
}

// runWatch keeps re-measuring the mesh and streams each round of live
// probes into a live tivaware service (an incremental TIV monitor
// under the hood): the deployment-shaped version of the paper's pitch
// that systems should detect and react to violations at runtime, not
// analyze a frozen matrix offline. The final round's measurements stay
// in m, so the matrix the caller writes out reflects what the service
// last saw.
//
// With api non-empty, the live service is additionally served over
// the tivd HTTP API at that address for the duration of the watch,
// and the loop's own reporting queries go through a tivclient
// connected to it — every number printed then made a round trip over
// the wire.
func runWatch(stdout io.Writer, cluster *netprobe.Cluster, m *delayspace.Matrix, rounds, top int, api string) error {
	svc, err := tivaware.NewFromMatrix(m, tivaware.Options{Live: true})
	if err != nil {
		return err
	}
	var reporter watchReporter = localReporter{svc: svc}
	if api != "" {
		daemon, err := tivd.New(svc, tivd.Options{})
		if err != nil {
			return err
		}
		ln, err := net.Listen("tcp", api)
		if err != nil {
			return err
		}
		hs := &http.Server{Handler: daemon.Handler()}
		go func() { _ = hs.Serve(ln) }()
		defer func() {
			daemon.Close()
			_ = hs.Shutdown(context.Background())
		}()
		fmt.Fprintf(stdout, "# tivd API on http://%s (querying through tivclient)\n", ln.Addr())
		reporter = remoteReporter{ctx: context.Background(), client: tivclient.New("http://"+ln.Addr().String(), tivclient.Options{})}
	}
	frac, err := reporter.fraction()
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "# monitor baseline: violating triangle fraction %.4f\n", frac)
	if err := printTopEdges(stdout, reporter, m, top); err != nil {
		return err
	}
	var updates []tiv.Update
	for round := 1; round <= rounds; round++ {
		fresh, err := cluster.MeasureMatrix(8)
		if err != nil {
			return err
		}
		updates = updates[:0]
		fresh.EachEdge(func(i, j int, d float64) bool {
			updates = append(updates, tiv.Update{I: i, J: j, RTT: d})
			return true
		})
		cs, err := svc.ApplyBatch(updates)
		if err != nil {
			return err
		}
		if frac, err = reporter.fraction(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "# watch round %d: %d probes applied, violating fraction %.4f, violated edges +%d/-%d\n",
			round, len(updates), frac, len(cs.NewlyViolated), len(cs.Cleared))
		if err := printTopEdges(stdout, reporter, m, top); err != nil {
			return err
		}
	}
	return nil
}

func printTopEdges(stdout io.Writer, reporter watchReporter, m *delayspace.Matrix, top int) error {
	edges, err := reporter.topEdges(top)
	if err != nil {
		return err
	}
	for _, e := range edges {
		fmt.Fprintf(stdout, "#   top edge %d-%d: severity %.4f, rtt %.3f ms\n",
			e.I, e.J, e.Delay, m.At(e.I, e.J))
	}
	return nil
}
