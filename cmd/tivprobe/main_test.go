package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tivaware/internal/delayspace"
	"tivaware/internal/netprobe"
)

func TestModeValidation(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err == nil {
		t.Error("no mode should error")
	}
	if err := run([]string{"-serve", ":0", "-mesh", "3"}, &sb); err == nil {
		t.Error("two modes should error")
	}
	if err := run([]string{"-badflag"}, &sb); err == nil {
		t.Error("bad flag should error")
	}
}

func TestServeForDuration(t *testing.T) {
	var sb strings.Builder
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-serve", "127.0.0.1:0", "-duration", "300ms"}, &sb)
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not stop after duration")
	}
	if !strings.Contains(sb.String(), "serving on") {
		t.Errorf("missing banner: %q", sb.String())
	}
}

func TestProbeAgainstLiveAgent(t *testing.T) {
	agent, err := netprobe.NewAgent("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	var sb strings.Builder
	target := agent.Addr().String()
	if err := run([]string{"-probe", target, "-count", "2"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, target) || !strings.Contains(out, "2/2") {
		t.Errorf("probe output:\n%s", out)
	}
}

func TestProbeUnreachableTarget(t *testing.T) {
	var sb strings.Builder
	// Reserve a port with no agent behind it.
	dead, err := netprobe.NewAgent("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := dead.Addr().String()
	dead.Close()
	if err := run([]string{"-probe", addr, "-count", "1", "-timeout", "50ms"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "0/1") {
		t.Errorf("unreachable target not reported:\n%s", sb.String())
	}
}

func TestProbeValidation(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-probe", "x", "-count", "0"}, &sb); err == nil {
		t.Error("count 0 should error")
	}
	if err := run([]string{"-probe", "not a host:xx"}, &sb); err == nil {
		t.Error("unresolvable target should error")
	}
}

func TestMeshWritesMatrix(t *testing.T) {
	out := filepath.Join(t.TempDir(), "mesh.csv")
	var sb strings.Builder
	if err := run([]string{"-mesh", "4", "-out", out}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "mesh of 4 agents") {
		t.Errorf("summary missing:\n%s", sb.String())
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	m, err := delayspace.ReadCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 4 || m.MeasuredPairs() != 6 {
		t.Errorf("matrix %d nodes, %d pairs", m.N(), m.MeasuredPairs())
	}
}

// TestMeshWatchFeedsMonitor runs the live-monitor loop on a loopback
// mesh: every round must report the violating fraction and the worst
// edges, and the final matrix must still round-trip.
func TestMeshWatchFeedsMonitor(t *testing.T) {
	out := filepath.Join(t.TempDir(), "mesh.csv")
	var sb strings.Builder
	if err := run([]string{"-mesh", "4", "-watch", "2", "-top", "2", "-out", out}, &sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{
		"monitor baseline: violating triangle fraction",
		"watch round 1:",
		"watch round 2:",
		"probes applied",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("watch output missing %q:\n%s", want, got)
		}
	}
	// Two rounds over 6 edges each: both report top edges (possibly
	// severity 0 on a loopback mesh, but the lines must be there).
	if n := strings.Count(got, "top edge"); n != 6 { // baseline + 2 rounds, 2 edges each
		t.Errorf("expected 6 top-edge lines, got %d:\n%s", n, got)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	m, err := delayspace.ReadCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 4 {
		t.Errorf("final matrix has %d nodes, want 4", m.N())
	}
}

func TestWatchValidation(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-mesh", "3", "-watch", "-1"}, &sb); err == nil {
		t.Error("negative -watch should error")
	}
	if err := run([]string{"-mesh", "3", "-top", "-2"}, &sb); err == nil {
		t.Error("negative -top should error")
	}
}

func TestMeshToStdout(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-mesh", "3"}, &sb); err != nil {
		t.Fatal(err)
	}
	// The CSV body follows the summary comment.
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 4 { // 1 summary + 3 matrix rows
		t.Errorf("got %d lines:\n%s", len(lines), sb.String())
	}
	if fmt.Sprintf("%c", lines[0][0]) != "#" {
		t.Error("summary comment missing")
	}
}

// TestMeshWatchViaDaemon is the client↔daemon variant of the watch
// loop: the live service is served over the tivd HTTP API and the
// per-round fraction/top-edge reports travel through tivclient.
func TestMeshWatchViaDaemon(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-mesh", "4", "-watch", "1", "-top", "2", "-api", "127.0.0.1:0"}, &sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{
		"tivd API on http://127.0.0.1:",
		"monitor baseline: violating triangle fraction",
		"watch round 1:",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("daemon-watch output missing %q:\n%s", want, got)
		}
	}
	if n := strings.Count(got, "top edge"); n != 4 { // baseline + 1 round, 2 edges each
		t.Errorf("expected 4 top-edge lines, got %d:\n%s", n, got)
	}
}

func TestAPIRequiresWatch(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-mesh", "3", "-api", "127.0.0.1:0"}, &sb); err == nil {
		t.Error("-api without -watch should error")
	}
}
