// Command tivgen generates synthetic Internet delay matrices with
// realistic triangle inequality violations (the stand-ins for the
// paper's measured data sets) and writes them to disk.
//
// Usage:
//
//	tivgen -preset ds2 -n 800 -out ds2.csv
//	tivgen -preset meridian -n 2500 -format binary -out meridian.tivm
//	tivgen -euclidean -n 400 -out clean.csv     # violation-free matrix
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"tivaware/internal/delayspace"
	"tivaware/internal/synth"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tivgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("tivgen", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		preset    = fs.String("preset", "ds2", fmt.Sprintf("data set preset %v", synth.PresetNames))
		n         = fs.Int("n", 0, "node count (0 = the preset's original size, e.g. 4000 for ds2)")
		seed      = fs.Int64("seed", 1, "random seed")
		format    = fs.String("format", "csv", "output format: csv or binary")
		out       = fs.String("out", "", "output file (default stdout)")
		euclidean = fs.Bool("euclidean", false, "generate a violation-free Euclidean matrix instead of a preset")
		maxDelay  = fs.Float64("maxdelay", 800, "delay scale in ms for -euclidean")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var m *delayspace.Matrix
	switch {
	case *euclidean:
		if *n <= 0 {
			return fmt.Errorf("-euclidean requires -n")
		}
		m = synth.Euclidean(*n, *maxDelay, *seed)
	default:
		size := *n
		if size == 0 {
			var err error
			size, err = synth.DefaultSize(*preset)
			if err != nil {
				return err
			}
		}
		cfg, err := synth.FromName(*preset, size, *seed)
		if err != nil {
			return err
		}
		sp, err := synth.Generate(cfg)
		if err != nil {
			return err
		}
		m = sp.Matrix
		fmt.Fprintf(os.Stderr, "tivgen: %s space with %d nodes, %d inflated edges\n",
			*preset, m.N(), sp.InflatedCount())
	}

	var w io.Writer = stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "csv":
		return delayspace.WriteCSV(w, m)
	case "binary":
		return delayspace.WriteBinary(w, m)
	default:
		return fmt.Errorf("unknown format %q (want csv or binary)", *format)
	}
}
