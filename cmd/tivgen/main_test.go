package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tivaware/internal/delayspace"
)

func TestGenerateCSV(t *testing.T) {
	out := filepath.Join(t.TempDir(), "m.csv")
	var sb strings.Builder
	if err := run([]string{"-preset", "planetlab", "-n", "40", "-out", out}, &sb); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	m, err := delayspace.ReadCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 40 {
		t.Errorf("generated %d nodes", m.N())
	}
}

func TestGenerateBinary(t *testing.T) {
	out := filepath.Join(t.TempDir(), "m.bin")
	var sb strings.Builder
	if err := run([]string{"-preset", "p2psim", "-n", "30", "-format", "binary", "-out", out}, &sb); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	m, err := delayspace.ReadBinary(f)
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 30 {
		t.Errorf("generated %d nodes", m.N())
	}
}

func TestGenerateEuclidean(t *testing.T) {
	out := filepath.Join(t.TempDir(), "e.csv")
	var sb strings.Builder
	if err := run([]string{"-euclidean", "-n", "25", "-out", out}, &sb); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	m, err := delayspace.ReadCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 25 {
		t.Errorf("generated %d nodes", m.N())
	}
}

func TestGenerateErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-preset", "bogus", "-n", "10"}, &sb); err == nil {
		t.Error("unknown preset should error")
	}
	if err := run([]string{"-euclidean"}, &sb); err == nil {
		t.Error("euclidean without -n should error")
	}
	if err := run([]string{"-preset", "ds2", "-n", "10", "-format", "xml"}, &sb); err == nil {
		t.Error("unknown format should error")
	}
}

func TestDefaultSizeFromPreset(t *testing.T) {
	// -n 0 uses the preset's original size; use planetlab (229) to
	// keep the test fast.
	out := filepath.Join(t.TempDir(), "pl.csv")
	var sb strings.Builder
	if err := run([]string{"-preset", "planetlab", "-out", out}, &sb); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	m, err := delayspace.ReadCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 229 {
		t.Errorf("default planetlab size %d, want 229", m.N())
	}
}
