// Overlay multicast: the motivating workload from the paper's
// introduction — "in a tree-based overlay multicast system, a joining
// node needs to find an existing group member who is nearby to serve
// as its parent in the tree."
//
// This example builds the same multicast tree three ways over one
// TIV-rich delay space — oracle (true delays), original Vivaldi, and
// dynamic-neighbor (TIV-aware) Vivaldi — and compares link delays,
// root-path delays, and path stretch.
package main

import (
	"fmt"
	"log"

	"tivaware/internal/core"
	"tivaware/internal/delayspace"
	"tivaware/internal/overlay"
	"tivaware/internal/stats"
	"tivaware/internal/synth"
	"tivaware/internal/vivaldi"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("overlaymulticast: ")

	const n = 250
	space, err := synth.Generate(synth.DS2Like(n, 17))
	if err != nil {
		log.Fatal(err)
	}

	// Original Vivaldi parent selection.
	plain, err := vivaldi.NewSystem(space.Matrix, vivaldi.Config{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	plain.Run(100)

	// Dynamic-neighbor Vivaldi (the paper's §5.2 mechanism).
	snaps, _, err := core.RunDynamicNeighbor(space.Matrix,
		vivaldi.Config{Seed: 3},
		core.DynamicNeighborConfig{Iterations: 5, SnapshotIters: []int{5}})
	if err != nil {
		log.Fatal(err)
	}

	for _, v := range []struct {
		name    string
		predict overlay.Predictor
	}{
		{"oracle (true delays)   ", truePredictor{space.Matrix}},
		{"original Vivaldi       ", plain},
		{"dynamic-neighbor (it 5)", snaps[0].Predictor()},
	} {
		tree, err := overlay.NewTree(space.Matrix, v.predict, 0, overlay.WithFanout(8))
		if err != nil {
			log.Fatal(err)
		}
		for node := 1; node < n; node++ {
			if _, err := tree.Join(node); err != nil {
				log.Fatal(err)
			}
		}
		q, err := tree.Evaluate()
		if err != nil {
			log.Fatal(err)
		}
		ls, ps := stats.Summarize(q.Links), stats.Summarize(q.Paths)
		fmt.Printf("%s  link: median %5.1f ms p90 %6.1f ms   root-path: median %6.1f ms p90 %7.1f ms   stretch %.2f\n",
			v.name, ls.Median, ls.P90, ps.Median, ps.P90, q.Stretch)
	}
}

type truePredictor struct{ m *delayspace.Matrix }

func (p truePredictor) Predict(i, j int) float64 {
	if i == j {
		return 0
	}
	return p.m.At(i, j)
}
