// Overlay multicast: the motivating workload from the paper's
// introduction — "in a tree-based overlay multicast system, a joining
// node needs to find an existing group member who is nearby to serve
// as its parent in the tree."
//
// This example builds the same multicast tree three ways over one
// TIV-rich delay space — oracle (true delays), original Vivaldi, and
// dynamic-neighbor (TIV-aware) Vivaldi — and compares link delays,
// root-path delays, and path stretch.
package main

import (
	"context"
	"fmt"
	"log"

	"tivaware/internal/core"
	"tivaware/internal/overlay"
	"tivaware/internal/stats"
	"tivaware/internal/synth"
	"tivaware/internal/tivaware"
	"tivaware/internal/vivaldi"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("overlaymulticast: ")

	const n = 250
	space, err := synth.Generate(synth.DS2Like(n, 17))
	if err != nil {
		log.Fatal(err)
	}

	// Original Vivaldi parent selection.
	plain, err := vivaldi.NewSystem(space.Matrix, vivaldi.Config{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	plain.Run(100)

	// Dynamic-neighbor Vivaldi (the paper's §5.2 mechanism).
	snaps, _, err := core.RunDynamicNeighbor(space.Matrix,
		vivaldi.Config{Seed: 3},
		core.DynamicNeighborConfig{Iterations: 5, SnapshotIters: []int{5}})
	if err != nil {
		log.Fatal(err)
	}

	// Each variant supplies parent-selection delays through the
	// tivaware.DelaySource seam: the true matrix for the oracle, and
	// coordinate predictors adapted with tivaware.FromPredictor.
	for _, v := range []struct {
		name    string
		predict tivaware.DelaySource
	}{
		{"oracle (true delays)   ", tivaware.MatrixSource(space.Matrix)},
		{"original Vivaldi       ", tivaware.FromPredictor(plain, n)},
		{"dynamic-neighbor (it 5)", tivaware.FromPredictor(snaps[0].Predictor(), n)},
	} {
		tree, err := overlay.NewTree(space.Matrix, overlay.Options{Predict: v.predict, Fanout: 8})
		if err != nil {
			log.Fatal(err)
		}
		for node := 1; node < n; node++ {
			if _, err := tree.Join(node); err != nil {
				log.Fatal(err)
			}
		}
		q, err := tree.Evaluate()
		if err != nil {
			log.Fatal(err)
		}
		ls, ps := stats.Summarize(q.Links), stats.Summarize(q.Paths)
		fmt.Printf("%s  link: median %5.1f ms p90 %6.1f ms   root-path: median %6.1f ms p90 %7.1f ms   stretch %.2f\n",
			v.name, ls.Median, ls.P90, ps.Median, ps.P90, q.Stretch)
	}

	// The exploit side of TIV-awareness: the service's detour primitive
	// finds one-hop shortcuts under the worst violated edges — latency a
	// relay-capable overlay recovers that no parent choice can.
	svc, err := tivaware.NewFromMatrix(space.Matrix, tivaware.Options{})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	var gains []float64
	for _, e := range svc.TopEdges(20) {
		d, err := svc.DetourPath(ctx, e.I, e.J)
		if err != nil {
			log.Fatal(err)
		}
		if d.Beneficial() {
			gains = append(gains, d.Gain)
		}
	}
	if len(gains) > 0 {
		g := stats.Summarize(gains)
		fmt.Printf("one-hop detours beat the direct edge on %d/20 worst TIV edges: median gain %.1f ms, max %.1f ms\n",
			len(gains), g.Median, g.Max)
	}
}
