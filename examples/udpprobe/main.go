// UDP probing: the deployment path. Spins up a cluster of real UDP
// measurement agents on loopback, measures the live pairwise RTT
// matrix with the same prober interface the simulations use, and runs
// the TIV analysis plus a Vivaldi embedding on the measured data.
//
// On loopback every RTT is microseconds and the space is trivially
// metric; point the agents at real hosts to measure a real delay
// space.
package main

import (
	"fmt"
	"log"
	"time"

	"tivaware/internal/netprobe"
	"tivaware/internal/stats"
	"tivaware/internal/tivaware"
	"tivaware/internal/vivaldi"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("udpprobe: ")

	const agents = 12
	cluster, err := netprobe.NewCluster(agents, "127.0.0.1",
		netprobe.ProbeOptions{Timeout: time.Second, Retries: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	if err := cluster.WaitReady(5 * time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("started %d UDP agents on loopback\n", cluster.N())

	start := time.Now()
	m, err := cluster.MeasureMatrix(8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measured %d pairs in %v\n", m.MeasuredPairs(), time.Since(start).Round(time.Millisecond))

	// RTT profile of the measured matrix.
	var rtts []float64
	m.EachEdge(func(i, j int, d float64) bool {
		rtts = append(rtts, d)
		return true
	})
	fmt.Printf("loopback RTTs (ms): %s\n", stats.Summarize(rtts))

	// TIV analysis on live measurements, through the service layer.
	svc, err := tivaware.NewFromMatrix(m, tivaware.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	frac := svc.ViolatingTriangleFraction(0)
	fmt.Printf("violating triangle fraction: %.3f (loopback jitter can create small TIVs)\n", frac)

	// Embed the measured matrix.
	sys, err := vivaldi.NewSystem(m, vivaldi.Config{Seed: 1, Neighbors: agents - 1})
	if err != nil {
		log.Fatal(err)
	}
	sys.Run(200)
	errs := stats.Summarize(sys.AbsoluteErrors())
	fmt.Printf("vivaldi on measured matrix: median |err| %.4f ms, p90 %.4f ms\n", errs.Median, errs.P90)
}
