// Server selection: clients locate the closest server through a
// Meridian overlay, with and without the paper's TIV alert mechanism
// (§5.3: ring membership adjustment + query restart).
package main

import (
	"fmt"
	"log"

	"tivaware/internal/core"
	"tivaware/internal/meridian"
	"tivaware/internal/nsim"
	"tivaware/internal/stats"
	"tivaware/internal/synth"
	"tivaware/internal/vivaldi"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("serverselection: ")

	const n = 300
	space, err := synth.Generate(synth.DS2Like(n, 23))
	if err != nil {
		log.Fatal(err)
	}

	// Half the nodes run Meridian (the servers), the rest are clients.
	servers, clients := core.SplitNodes(n, n/2, 5)

	// A Vivaldi embedding supplies prediction ratios for the alerts.
	emb, err := vivaldi.NewSystem(space.Matrix, vivaldi.Config{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	emb.Run(100)
	predict := core.SnapshotPredict(emb.Snapshot())

	type variant struct {
		name  string
		build meridian.BuildOptions
		query meridian.QueryOptions
	}
	variants := []variant{
		{name: "Meridian original "},
		{
			name:  "Meridian TIV-aware",
			build: meridian.BuildOptions{Predict: predict, AlertLow: 0.6, AlertHigh: 2},
			query: meridian.QueryOptions{Restart: true, Predict: predict, AlertLow: 0.6},
		},
	}

	for _, v := range variants {
		prober, err := nsim.NewMatrixProber(space.Matrix, 0, 1)
		if err != nil {
			log.Fatal(err)
		}
		sys, err := meridian.Build(prober, servers, meridian.Config{Seed: 9}, v.build)
		if err != nil {
			log.Fatal(err)
		}
		prober.ResetProbes()
		run, err := core.MeridianPenalties(space.Matrix, sys, clients, v.query, 13)
		if err != nil {
			log.Fatal(err)
		}
		s := stats.Summarize(run.Penalties)
		optimal := 0
		for _, p := range run.Penalties {
			if p == 0 {
				optimal++
			}
		}
		fmt.Printf("%s  optimal %3d/%d  median penalty %5.1f%%  p90 %6.1f%%  probes %d\n",
			v.name, optimal, len(run.Penalties), s.Median, s.P90, run.QueryProbes)
	}
}
