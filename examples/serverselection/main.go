// Server selection: clients locate the closest server through a
// Meridian overlay, with and without the paper's TIV alert mechanism
// (§5.3: ring membership adjustment + query restart), and through the
// tivaware service's severity-penalized ranking — the same selection
// primitive without an overlay.
//
// The final sections run that ranking through the tivaware.Querier
// seam in three deployment shapes — in-process against the Service,
// over the wire against a tivd daemon via tivclient (batched, binary
// framing), and against a 3-shard loopback cluster via the tivshard
// gateway — same code, same answers, verified exactly in the sharded
// case. All clients resolve in one QueryBatch per run: one pinned
// epoch in-process, one /v1/batch round trip over the wire, one
// sub-batch per shard through the gateway.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"net"
	"net/http"

	"tivaware/internal/core"
	"tivaware/internal/delayspace"
	"tivaware/internal/meridian"
	"tivaware/internal/nsim"
	"tivaware/internal/stats"
	"tivaware/internal/synth"
	"tivaware/internal/tivaware"
	"tivaware/internal/tivclient"
	"tivaware/internal/tivd"
	"tivaware/internal/tivshard/testcluster"
	"tivaware/internal/vivaldi"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("serverselection: ")

	const n = 300
	space, err := synth.Generate(synth.DS2Like(n, 23))
	if err != nil {
		log.Fatal(err)
	}

	// Half the nodes run Meridian (the servers), the rest are clients.
	servers, clients := core.SplitNodes(n, n/2, 5)

	// A Vivaldi embedding supplies prediction ratios for the alerts.
	// Exposed once as a tivaware.DelaySource, it feeds both Meridian's
	// TIV-aware extensions (PredictFunc is the source's Delay method)
	// and the service-layer ranking below.
	emb, err := vivaldi.NewSystem(space.Matrix, vivaldi.Config{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	emb.Run(100)
	vsrc := tivaware.FromPredictor(emb, n)
	predict := meridian.PredictFunc(vsrc.Delay)

	type variant struct {
		name  string
		build meridian.BuildOptions
		query meridian.QueryOptions
	}
	variants := []variant{
		{name: "Meridian original "},
		{
			name:  "Meridian TIV-aware",
			build: meridian.BuildOptions{Predict: predict, AlertLow: 0.6, AlertHigh: 2},
			query: meridian.QueryOptions{Restart: true, Predict: predict, AlertLow: 0.6},
		},
	}

	for _, v := range variants {
		prober, err := nsim.NewMatrixProber(space.Matrix, 0, 1)
		if err != nil {
			log.Fatal(err)
		}
		sys, err := meridian.Build(prober, servers, meridian.Config{Seed: 9}, v.build)
		if err != nil {
			log.Fatal(err)
		}
		prober.ResetProbes()
		run, err := core.MeridianPenalties(space.Matrix, sys, clients, v.query, 13)
		if err != nil {
			log.Fatal(err)
		}
		s := stats.Summarize(run.Penalties)
		optimal := 0
		for _, p := range run.Penalties {
			if p == 0 {
				optimal++
			}
		}
		fmt.Printf("%s  optimal %3d/%d  median penalty %5.1f%%  p90 %6.1f%%  probes %d\n",
			v.name, optimal, len(run.Penalties), s.Median, s.P90, run.QueryProbes)
	}

	// The same selection primitive through the tivaware service: rank
	// the servers for each client on the Vivaldi-predicted delays while
	// the severity penalty — computed from the measured matrix via
	// AnalysisSource — demotes servers behind TIV-violated edges.
	svc, err := tivaware.New(vsrc, tivaware.Options{
		AnalysisSource: tivaware.MatrixSource(space.Matrix),
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	for _, penalty := range []float64{0, 2} {
		pens, err := servicePenalties(ctx, svc, space.Matrix, servers, clients, penalty)
		if err != nil {
			log.Fatal(err)
		}
		s := stats.Summarize(pens)
		fmt.Printf("tivaware.Rank penalty=%.0f    median penalty %5.1f%%  p90 %6.1f%%  (%d clients)\n",
			penalty, s.Median, s.P90, len(pens))
	}

	// Client↔daemon mode: serve the same Service from a tivd daemon on
	// loopback and rerun the penalized selection through tivclient.
	// servicePenalties takes a tivaware.Querier, so the only change is
	// which value it is handed — the networked answers must match the
	// in-process ones exactly.
	daemon, err := tivd.New(svc, tivd.Options{})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: daemon.Handler()}
	go func() { _ = hs.Serve(ln) }()
	defer func() {
		daemon.Close()
		_ = hs.Shutdown(context.Background())
	}()
	client := tivclient.New("http://"+ln.Addr().String(), tivclient.Options{Binary: true})
	h, err := client.Healthz(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tivd on %s: %d nodes, epoch %d\n", ln.Addr(), h.N, h.Epoch)
	for _, penalty := range []float64{0, 2} {
		pens, err := servicePenalties(ctx, client, space.Matrix, servers, clients, penalty)
		if err != nil {
			log.Fatal(err)
		}
		s := stats.Summarize(pens)
		fmt.Printf("tivclient.Rank penalty=%.0f   median penalty %5.1f%%  p90 %6.1f%%  (%d clients, via tivd)\n",
			penalty, s.Median, s.P90, len(pens))
	}

	// Sharded mode: the same selection through a 3-shard loopback
	// cluster — three real tivd shard servers, each holding a replica
	// of the measured matrix, scatter-gathered by a tivshard gateway.
	// The gateway implements the same Querier seam, and its answers
	// must match a monolithic matrix-backed service exactly (both run
	// Workers=1, which makes the severity sums bit-reproducible).
	cluster, err := testcluster.Start(testcluster.Config{Matrix: space.Matrix, Shards: 3, Workers: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	mono, err := cluster.NewMonolith()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tivshard cluster: %d shards x %d nodes on loopback\n", cluster.Gateway.K(), cluster.Gateway.N())
	for _, penalty := range []float64{0, 2} {
		monoPens, err := servicePenalties(ctx, mono, space.Matrix, servers, clients, penalty)
		if err != nil {
			log.Fatal(err)
		}
		gwPens, err := servicePenalties(ctx, cluster.Gateway, space.Matrix, servers, clients, penalty)
		if err != nil {
			log.Fatal(err)
		}
		if len(gwPens) != len(monoPens) {
			log.Fatalf("gateway selected for %d clients, monolith for %d", len(gwPens), len(monoPens))
		}
		for i := range gwPens {
			if gwPens[i] != monoPens[i] {
				log.Fatalf("client %d: gateway penalty %g, monolith %g", i, gwPens[i], monoPens[i])
			}
		}
		s := stats.Summarize(gwPens)
		fmt.Printf("tivshard.Rank penalty=%.0f    median penalty %5.1f%%  p90 %6.1f%%  (%d clients, 3 shards, ≡ monolith)\n",
			penalty, s.Median, s.P90, len(gwPens))
	}
}

// servicePenalties evaluates severity-penalized closest-server
// selection against the true delays: the percentage penalty of the
// selected server vs the optimal one, per client. All clients are
// resolved in ONE QueryBatch call against a single consistent state —
// in-process that is one pinned epoch; over the wire it is one
// /v1/batch round trip instead of a request per client; through the
// gateway it is one sub-batch per shard instead of a scatter per
// client. A per-client failure (no eligible server) lands in its
// Result.Err and just skips that client, exactly as the old
// one-call-per-client loop did.
func servicePenalties(ctx context.Context, q tivaware.Querier, m *delayspace.Matrix, servers, clients []int, penalty float64) ([]float64, error) {
	queries := make([]tivaware.Query, len(clients))
	for i, c := range clients {
		queries[i] = tivaware.Query{
			Kind:            tivaware.KindClosest,
			Target:          c,
			Candidates:      servers,
			SeverityPenalty: penalty,
		}
	}
	results, err := q.QueryBatch(ctx, queries)
	if err != nil {
		return nil, err
	}
	out := make([]float64, 0, len(clients))
	for i, c := range clients {
		r := results[i]
		if r.Err != nil || len(r.Selections) == 0 {
			continue // no eligible server for this client
		}
		optimal := math.Inf(1)
		for _, srv := range servers {
			if srv == c || !m.Has(c, srv) {
				continue
			}
			if d := m.At(c, srv); d < optimal {
				optimal = d
			}
		}
		actual := m.At(c, r.Selections[0].Node)
		if math.IsInf(optimal, 1) || optimal <= 0 || actual == delayspace.Missing {
			continue
		}
		out = append(out, (actual-optimal)*100/optimal)
	}
	return out, nil
}
