// Quickstart: generate a TIV-rich delay space, embed it with Vivaldi,
// raise TIV alerts from the embedding, and use them to pick better
// neighbors — the paper's pipeline end to end in one file.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"tivaware/internal/core"
	"tivaware/internal/stats"
	"tivaware/internal/synth"
	"tivaware/internal/tivaware"
	"tivaware/internal/vivaldi"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("quickstart: ")

	// 1. A synthetic Internet delay space standing in for the paper's
	//    DS2 measurements: 3 continental clusters plus routing
	//    inflation that violates the triangle inequality.
	const n = 300
	space, err := synth.Generate(synth.DS2Like(n, 42))
	if err != nil {
		log.Fatal(err)
	}
	// The tivaware service is the application API over the matrix: one
	// analysis pass (cached until the matrix changes) backs the
	// violating-triangle count, every edge's severity (§2.1's metric),
	// severity-aware selection, and detour queries below.
	svc, err := tivaware.NewFromMatrix(space.Matrix, tivaware.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("delay space: %d nodes, %.0f%% of triangles violate the triangle inequality\n",
		n, svc.ViolatingTriangleFraction(0)*100)

	// 2. Ground truth: the TIV severity of every edge.
	sev := svc.Severities()
	fmt.Printf("edge severity: %s\n", stats.Summarize(sev.Values()))

	// 2b. TIV-aware selection and detour exploitation, the service's
	// two headline queries: rank candidates with a severity penalty so
	// violated edges are demoted, and route around the worst edge via
	// its best one-hop detour.
	ctx := context.Background()
	best, err := svc.ClosestNode(ctx, 0, tivaware.QueryOptions{SeverityPenalty: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("closest node to 0 (severity-penalized): %d at %.1f ms (severity %.3f, violated=%v)\n",
		best.Node, best.Delay, best.Severity, best.Violated)
	if worst := svc.TopEdges(1); len(worst) > 0 {
		det, err := svc.DetourPath(ctx, worst[0].I, worst[0].J)
		if err != nil {
			log.Fatal(err)
		}
		if det.Beneficial() {
			fmt.Printf("worst TIV edge %d-%d: direct %.1f ms, detour via %d %.1f ms (gain %.1f ms)\n",
				det.I, det.J, det.Direct, det.Via, det.ViaDelay, det.Gain)
		}
	}

	// 3. Embed with Vivaldi (5-D Euclidean, 32 neighbors, the paper's
	//    §4.1 setup) and let it converge for 100 simulated seconds.
	sys, err := vivaldi.NewSystem(space.Matrix, vivaldi.Config{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	sys.Run(100)
	errs := stats.Summarize(sys.AbsoluteErrors())
	fmt.Printf("vivaldi: median |err| %.1f ms, p90 %.1f ms\n", errs.Median, errs.P90)

	// 4. The TIV alert mechanism (§5.1): edges shrunk in the embedding
	//    (prediction ratio below 0.6) are flagged as likely severe
	//    violators. Check the flags against the ground truth.
	ratios := core.PredictionRatios(space.Matrix, sys)
	for _, worst := range []float64{0.01, 0.05, 0.20} {
		q, err := core.EvaluateAlert(sev, ratios, 0.6, worst)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("alert@0.6 vs worst %2.0f%% edges: accuracy %.2f, recall %.2f (%d alerts)\n",
			worst*100, q.Accuracy, q.Recall, q.Alerts)
	}

	// 5. Dynamic-neighbor Vivaldi (§5.2): iteratively drop the
	//    flagged (shrunk) neighbor edges and re-converge, then compare
	//    closest-neighbor selection penalties.
	snaps, _, err := core.RunDynamicNeighbor(space.Matrix,
		vivaldi.Config{Seed: 7},
		core.DynamicNeighborConfig{Iterations: 5, SnapshotIters: []int{0, 5}})
	if err != nil {
		log.Fatal(err)
	}
	cands, clients := core.SplitNodes(n, 30, 99)
	for _, snap := range snaps {
		pen, err := core.PercentagePenalties(space.Matrix, snap.Predictor(), cands, clients)
		if err != nil {
			log.Fatal(err)
		}
		label := "original Vivaldi   "
		if snap.Iteration > 0 {
			label = fmt.Sprintf("dynamic (iter %d)   ", snap.Iteration)
		}
		s := stats.Summarize(pen)
		fmt.Printf("%s neighbor-selection penalty: median %.0f%%, p90 %.0f%%\n",
			label, s.Median, s.P90)
	}

	os.Exit(0)
}
