package tivaware_test

import (
	"tivaware/internal/meridian"
	"tivaware/internal/nsim"
)

// buildMeridian and queryOptions keep the Meridian micro-benchmark
// free of inline configuration noise.
func buildMeridian(prober nsim.Prober, ids []int) (*meridian.System, error) {
	return meridian.Build(prober, ids, meridian.Config{Seed: 1}, meridian.BuildOptions{})
}

func queryOptions() meridian.QueryOptions {
	return meridian.QueryOptions{}
}
