//go:build tools

// Package tools pins the repo's developer tooling, tools.go-style:
// the blank imports force the tools into this module's go.mod so
// their versions are reviewed like any other dependency change. The
// "tools" build tag keeps the file out of every real build.
package tools

import (
	_ "golang.org/x/vuln/cmd/govulncheck"
	_ "honnef.co/go/tools/cmd/staticcheck"
)
