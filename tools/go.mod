module tivaware/tools

go 1.22

// Pinned developer/CI tooling. This module is intentionally separate
// from the root module so the tools' dependency graphs never leak
// into the library build; CI reads the versions out of this file and
// `go install`s each tool at exactly that version (see the lint job).
//
// honnef.co/go/tools v0.4.7 is staticcheck release 2023.1.7.
require (
	golang.org/x/vuln v1.1.3
	honnef.co/go/tools v0.4.7
)
