package delayspace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV exercises the CSV parser with adversarial inputs: it
// must either return an error or a matrix that passes Validate —
// never panic, never return a corrupt matrix. The seed corpus runs as
// part of the normal test suite; `go test -fuzz=FuzzReadCSV` explores
// further.
func FuzzReadCSV(f *testing.F) {
	seeds := []string{
		"",
		"0",
		"0,5\n5,0\n",
		"0,5\n6,0\n",
		"# comment\n0,-\n-,0\n",
		"0,1,2\n1,0\n",       // ragged
		"0,abc\nabc,0\n",     // garbage field
		"0,1e300\n1e300,0\n", // huge values
		"0,-5\n-5,0\n",       // negative delay
		"0,NaN\nNaN,0\n",     // NaN
		"0,5,\n5,0,\n,,0\n",  // empty fields become Missing
		strings.Repeat("0\n", 3),
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadCSV(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("parser returned invalid matrix: %v", err)
		}
		// A successfully parsed matrix must round-trip.
		var buf bytes.Buffer
		if err := WriteCSV(&buf, m); err != nil {
			t.Fatalf("writing parsed matrix: %v", err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("re-reading written matrix: %v", err)
		}
		if back.N() != m.N() {
			t.Fatalf("round trip changed size %d -> %d", m.N(), back.N())
		}
	})
}

// FuzzReadBinary does the same for the binary codec.
func FuzzReadBinary(f *testing.F) {
	m := New(3)
	m.Set(0, 1, 5)
	m.Set(1, 2, 7.5)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, m); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("TIVM"))
	f.Add([]byte{})
	f.Add([]byte("XXXXAAAA"))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("binary parser returned invalid matrix: %v", err)
		}
	})
}
