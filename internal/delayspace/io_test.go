package delayspace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func randomMatrix(seed int64, n int) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Intn(10) == 0 {
				continue // leave some pairs missing
			}
			m.Set(i, j, float64(rng.Intn(100000))/100)
		}
	}
	return m
}

func equalMatrices(a, b *Matrix) bool {
	if a.N() != b.N() {
		return false
	}
	for i := 0; i < a.N(); i++ {
		for j := 0; j < a.N(); j++ {
			if a.At(i, j) != b.At(i, j) {
				return false
			}
		}
	}
	return true
}

func TestCSVRoundTrip(t *testing.T) {
	m := randomMatrix(7, 9)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !equalMatrices(m, got) {
		t.Error("CSV round trip lost data")
	}
}

func TestReadCSVTolerant(t *testing.T) {
	in := "# comment\n0, 5, -\n5, 0, 2\n-, 2, 0\n\n"
	m, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 3 || m.At(0, 1) != 5 || m.Has(0, 2) {
		t.Errorf("parsed wrong matrix: n=%d", m.N())
	}
}

func TestReadCSVBadField(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("0,x\nx,0\n")); err == nil {
		t.Error("expected parse error")
	}
}

func TestReadCSVAsymmetricAveraged(t *testing.T) {
	m, err := ReadCSV(strings.NewReader("0,10\n20,0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 15 {
		t.Errorf("At = %g, want averaged 15", m.At(0, 1))
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	m := randomMatrix(11, 17)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !equalMatrices(m, got) {
		t.Error("binary round trip lost data")
	}
}

func TestReadBinaryErrors(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("XXXX"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ReadBinary(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	// Truncated payload.
	m := randomMatrix(3, 4)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, m); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-4]
	if _, err := ReadBinary(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated input accepted")
	}
	// Oversized claimed dimension.
	huge := append([]byte("TIVM"), 0xFF, 0xFF, 0xFF, 0x7F)
	if _, err := ReadBinary(bytes.NewReader(huge)); err == nil {
		t.Error("oversized dimension accepted")
	}
}

func TestBinaryRejectsCorruptMatrix(t *testing.T) {
	m := randomMatrix(5, 4)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, m); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Flip one matrix entry to break symmetry: entry (0,1) starts at
	// offset 8 (magic+size) + 1*8.
	raw[8+8] ^= 0x01
	if _, err := ReadBinary(bytes.NewReader(raw)); err == nil {
		t.Error("corrupt matrix accepted")
	}
}

// Property: both codecs round-trip arbitrary random matrices.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		m := randomMatrix(seed, 1+int(uint(seed)%13))
		var b1, b2 bytes.Buffer
		if err := WriteCSV(&b1, m); err != nil {
			return false
		}
		if err := WriteBinary(&b2, m); err != nil {
			return false
		}
		fromCSV, err := ReadCSV(&b1)
		if err != nil {
			return false
		}
		fromBin, err := ReadBinary(&b2)
		if err != nil {
			return false
		}
		return equalMatrices(m, fromCSV) && equalMatrices(m, fromBin)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
