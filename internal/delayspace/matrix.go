// Package delayspace defines the delay matrix abstraction every other
// package in this repository builds on: a symmetric matrix of measured
// round-trip delays between N nodes, with explicit handling of missing
// measurements.
//
// The paper's data sets (DS2, Meridian, p2psim, PlanetLab) are all
// distributed as such matrices; the synthetic generators in
// internal/synth produce the same type. Storage is a single flat
// []float64 so that the O(N³) TIV analyses stay cache friendly.
package delayspace

import (
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"
)

// Missing marks an absent measurement. The measured data sets the
// paper uses have holes (Fig 3 draws them as black points); the
// analyses must skip them rather than treat them as zero delay.
const Missing = -1

// Matrix is a symmetric N×N round-trip delay matrix in milliseconds.
// The diagonal is zero. Entries equal to Missing denote pairs with no
// measurement. The zero value is an empty (0-node) matrix.
//
// Alongside the delays the matrix maintains one measured-bitset per
// row: bit b of row i is set exactly when b != i and the pair (i, b)
// has a measurement. The O(N³) TIV kernels in internal/tiv find
// witness candidates for an edge (i, j) by AND-ing the two rows'
// bitsets 64 nodes at a time, which both skips Missing entries without
// per-element branches and excludes b == i and b == j for free (each
// row's own diagonal bit is always clear).
type Matrix struct {
	n     int
	words int // uint64 words per mask row: (n+63)/64
	data  []float64
	mask  []uint64 // n*words bits; see MaskRow

	// version counts mutations; hooks observe them. See Version and
	// OnChange. Neither is copied by Clone/Submatrix/Reorder: a copy is
	// a fresh matrix with its own history (Snapshot, by contrast,
	// carries the source's version so consumers can key caches on it).
	// The counter is atomic so concurrent readers can poll Version
	// while one writer mutates; the data itself is not synchronized —
	// concurrent Set and At still require external coordination.
	version atomic.Uint64
	hooks   []func(i, j int, old, new float64)
}

func maskWords(n int) int { return (n + 63) / 64 }

// New returns an n×n matrix with all off-diagonal entries Missing and
// a zero diagonal. It panics if n is negative.
func New(n int) *Matrix {
	if n < 0 {
		panic(fmt.Sprintf("delayspace: negative size %d", n))
	}
	m := &Matrix{n: n, words: maskWords(n), data: make([]float64, n*n)}
	m.mask = make([]uint64, n*m.words)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				m.data[i*n+j] = Missing
			}
		}
	}
	return m
}

// FromRows builds a matrix from a square slice of rows, symmetrizing
// by averaging d(i,j) and d(j,i) when both are present and taking the
// present one when only one is. It returns an error if the input is
// ragged, has a non-zero diagonal, or contains negative non-Missing
// values.
func FromRows(rows [][]float64) (*Matrix, error) {
	n := len(rows)
	m := New(n)
	for i, r := range rows {
		if len(r) != n {
			return nil, fmt.Errorf("delayspace: row %d has %d entries, want %d", i, len(r), n)
		}
	}
	for i := 0; i < n; i++ {
		if rows[i][i] != 0 && rows[i][i] != Missing {
			return nil, fmt.Errorf("delayspace: non-zero diagonal %g at %d", rows[i][i], i)
		}
		for j := i + 1; j < n; j++ {
			a, b := rows[i][j], rows[j][i]
			v, err := symmetrize(a, b)
			if err != nil {
				return nil, fmt.Errorf("delayspace: entry (%d,%d): %w", i, j, err)
			}
			m.set(i, j, v)
		}
	}
	return m, nil
}

func symmetrize(a, b float64) (float64, error) {
	bad := func(x float64) bool {
		return math.IsNaN(x) || (x < 0 && x != Missing)
	}
	if bad(a) || bad(b) {
		return 0, fmt.Errorf("invalid delay pair (%g,%g)", a, b)
	}
	switch {
	case a == Missing && b == Missing:
		return Missing, nil
	case a == Missing:
		return b, nil
	case b == Missing:
		return a, nil
	default:
		return (a + b) / 2, nil
	}
}

// N returns the number of nodes.
func (m *Matrix) N() int { return m.n }

// At returns the delay between i and j (At(i,i) is always 0). The
// result is Missing when the pair was never measured.
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.n+j] }

// Has reports whether the pair (i, j) has a measurement.
func (m *Matrix) Has(i, j int) bool { return m.data[i*m.n+j] != Missing }

// Set stores a symmetric delay for the pair (i, j). It panics on
// negative delays (other than Missing), NaN, or i == j, because a
// corrupted matrix invalidates every downstream analysis.
func (m *Matrix) Set(i, j int, d float64) {
	if i == j {
		panic("delayspace: Set on diagonal")
	}
	if math.IsNaN(d) || (d < 0 && d != Missing) {
		panic(fmt.Sprintf("delayspace: invalid delay %g", d))
	}
	m.set(i, j, d)
}

func (m *Matrix) set(i, j int, d float64) {
	old := m.data[i*m.n+j]
	m.data[i*m.n+j] = d
	m.data[j*m.n+i] = d
	if d == Missing {
		m.mask[i*m.words+j>>6] &^= 1 << uint(j&63)
		m.mask[j*m.words+i>>6] &^= 1 << uint(i&63)
	} else {
		m.mask[i*m.words+j>>6] |= 1 << uint(j&63)
		m.mask[j*m.words+i>>6] |= 1 << uint(i&63)
	}
	m.version.Add(1)
	for _, fn := range m.hooks {
		//lint:tiv allocfree invoking a func value does not allocate; subscriber cost belongs to the subscriber
		fn(i, j, old, d)
	}
}

// Version returns a counter incremented on every mutation (each Set,
// and once per bulk rebuild by the binary loader). Incremental
// consumers such as tiv.Monitor record the version they last synced to
// and treat any other value as evidence of an out-of-band change.
// Version is safe to call concurrently with a mutator; the delays
// themselves are not.
func (m *Matrix) Version() uint64 { return m.version.Load() }

// OnChange registers fn to run after every mutation with the edge and
// its old and new delays (either may be Missing). Hooks run
// synchronously on the mutating goroutine and must not mutate the
// matrix. Hooks cannot be unregistered; register on a matrix you own.
func (m *Matrix) OnChange(fn func(i, j int, old, new float64)) {
	m.hooks = append(m.hooks, fn)
}

// rebuildMask recomputes the measured-bitsets from data, for
// constructors that fill data directly instead of going through set.
// It counts as one mutation for Version (hooks do not fire: there is
// no per-edge old/new to report for a bulk fill).
func (m *Matrix) rebuildMask() {
	m.version.Add(1)
	m.words = maskWords(m.n)
	m.mask = make([]uint64, m.n*m.words)
	for i := 0; i < m.n; i++ {
		row := m.data[i*m.n : (i+1)*m.n]
		mrow := m.mask[i*m.words : (i+1)*m.words]
		for j, d := range row {
			if j != i && d != Missing {
				mrow[j>>6] |= 1 << uint(j&63)
			}
		}
	}
}

// Row returns a read-only view of row i. Callers must not modify it.
func (m *Matrix) Row(i int) []float64 { return m.data[i*m.n : (i+1)*m.n] }

// MaskWords returns the number of uint64 words in each row's
// measured-bitset: ceil(N/64).
func (m *Matrix) MaskWords() int { return m.words }

// MaskRow returns a read-only view of row i's measured-bitset. Bit b
// (word b/64, bit b%64) is set exactly when b != i and the pair (i, b)
// has a measurement; bits at positions ≥ N are always zero. Callers
// must not modify the slice.
func (m *Matrix) MaskRow(i int) []uint64 { return m.mask[i*m.words : (i+1)*m.words] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := &Matrix{n: m.n, words: m.words, data: make([]float64, len(m.data)), mask: make([]uint64, len(m.mask))}
	copy(c.data, m.data)
	copy(c.mask, m.mask)
	return c
}

// Snapshot returns an immutable point-in-time copy for concurrent
// readers: a deep copy that, unlike Clone, carries the source's
// current Version, so consumers (the tivaware epoch machinery) can key
// caches on the version the snapshot was taken at. The copy has no
// hooks and must be treated as read-only — it is two memcpys, cheap
// relative to any O(N³) analysis of its contents. It must be taken
// while no concurrent mutator is running; once taken it is safe to
// read from any number of goroutines.
func (m *Matrix) Snapshot() *Matrix {
	c := m.Clone()
	c.version.Store(m.Version())
	return c
}

// Submatrix returns the matrix restricted to the given nodes, in the
// given order. Duplicate or out-of-range indices cause a panic.
func (m *Matrix) Submatrix(nodes []int) *Matrix {
	s := New(len(nodes))
	seen := make(map[int]bool, len(nodes))
	for _, v := range nodes {
		if v < 0 || v >= m.n {
			panic(fmt.Sprintf("delayspace: Submatrix index %d out of range [0,%d)", v, m.n))
		}
		if seen[v] {
			panic(fmt.Sprintf("delayspace: Submatrix duplicate index %d", v))
		}
		seen[v] = true
	}
	for a, i := range nodes {
		for b := a + 1; b < len(nodes); b++ {
			s.set(a, b, m.At(i, nodes[b]))
		}
	}
	return s
}

// Reorder returns a copy with nodes permuted by perm (new index a maps
// to old index perm[a]). perm must be a permutation of [0, N).
func (m *Matrix) Reorder(perm []int) *Matrix {
	if len(perm) != m.n {
		panic(fmt.Sprintf("delayspace: Reorder permutation has %d entries, want %d", len(perm), m.n))
	}
	return m.Submatrix(perm)
}

// MeasuredPairs returns the number of node pairs (i < j) that have a
// measurement.
func (m *Matrix) MeasuredPairs() int {
	count := 0
	for _, w := range m.mask {
		count += bits.OnesCount64(w)
	}
	// Every measured pair contributes one bit to each endpoint's row.
	return count / 2
}

// MaxDelay returns the largest measured delay, or 0 for an empty or
// fully missing matrix.
func (m *Matrix) MaxDelay() float64 {
	max := 0.0
	for i := 0; i < m.n; i++ {
		row := m.Row(i)
		for j := i + 1; j < m.n; j++ {
			if row[j] != Missing && row[j] > max {
				max = row[j]
			}
		}
	}
	return max
}

// Validate checks structural invariants: square storage, symmetric
// entries, zero diagonal, no negative or NaN delays, and consistent
// measured-bitsets. Generators and loaders call it before returning a
// matrix to callers.
func (m *Matrix) Validate() error {
	if len(m.data) != m.n*m.n {
		return fmt.Errorf("delayspace: storage %d for n=%d", len(m.data), m.n)
	}
	for i := 0; i < m.n; i++ {
		if d := m.At(i, i); d != 0 {
			return fmt.Errorf("delayspace: diagonal (%d,%d) = %g, want 0", i, i, d)
		}
		for j := i + 1; j < m.n; j++ {
			a, b := m.At(i, j), m.At(j, i)
			if a != b {
				return fmt.Errorf("delayspace: asymmetry at (%d,%d): %g vs %g", i, j, a, b)
			}
			if math.IsNaN(a) || (a < 0 && a != Missing) {
				return fmt.Errorf("delayspace: invalid delay %g at (%d,%d)", a, i, j)
			}
		}
	}
	return m.validateMask()
}

// validateMask checks that the measured-bitsets agree with data: bit b
// of row i is set iff b != i and (i, b) is measured, and no bits are
// set at positions ≥ N.
func (m *Matrix) validateMask() error {
	if m.words != maskWords(m.n) || len(m.mask) != m.n*m.words {
		return fmt.Errorf("delayspace: mask storage %d words/row, %d total for n=%d", m.words, len(m.mask), m.n)
	}
	for i := 0; i < m.n; i++ {
		mrow := m.MaskRow(i)
		for b := 0; b < m.n; b++ {
			want := b != i && m.data[i*m.n+b] != Missing
			got := mrow[b>>6]&(1<<uint(b&63)) != 0
			if got != want {
				return fmt.Errorf("delayspace: mask bit (%d,%d) = %v, want %v", i, b, got, want)
			}
		}
		// Tail bits beyond N must stay zero or the TIV kernels would
		// read out of range.
		if tail := m.n & 63; tail != 0 && m.words > 0 {
			if extra := mrow[m.words-1] &^ (1<<uint(tail) - 1); extra != 0 {
				return fmt.Errorf("delayspace: mask row %d has bits set beyond N", i)
			}
		}
	}
	return nil
}

// EachEdge calls fn for every measured pair i < j. Iteration stops if
// fn returns false.
func (m *Matrix) EachEdge(fn func(i, j int, d float64) bool) {
	for i := 0; i < m.n; i++ {
		row := m.Row(i)
		for j := i + 1; j < m.n; j++ {
			if row[j] == Missing {
				continue
			}
			if !fn(i, j, row[j]) {
				return
			}
		}
	}
}

// Edge identifies a node pair with its delay.
type Edge struct {
	I, J  int
	Delay float64
}

// Edges returns all measured edges (i < j).
func (m *Matrix) Edges() []Edge {
	out := make([]Edge, 0, m.MeasuredPairs())
	m.EachEdge(func(i, j int, d float64) bool {
		out = append(out, Edge{I: i, J: j, Delay: d})
		return true
	})
	return out
}

// NearestNeighbor returns the measured node closest to i and its
// delay. The second return is false when i has no measured edge.
func (m *Matrix) NearestNeighbor(i int) (j int, ok bool) {
	best := math.Inf(1)
	bestJ := -1
	row := m.Row(i)
	for k := 0; k < m.n; k++ {
		if k == i || row[k] == Missing {
			continue
		}
		if row[k] < best {
			best = row[k]
			bestJ = k
		}
	}
	return bestJ, bestJ >= 0
}
