package delayspace

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// maskBit reads bit b of row i's measured-bitset.
func maskBit(m *Matrix, i, b int) bool {
	return m.MaskRow(i)[b>>6]&(1<<uint(b&63)) != 0
}

func TestMaskSemantics(t *testing.T) {
	m := New(70) // spans two mask words
	if m.MaskWords() != 2 {
		t.Fatalf("MaskWords = %d, want 2", m.MaskWords())
	}
	m.Set(0, 1, 5)
	m.Set(0, 65, 7)
	if !maskBit(m, 0, 1) || !maskBit(m, 1, 0) || !maskBit(m, 0, 65) || !maskBit(m, 65, 0) {
		t.Error("Set did not raise mask bits on both rows")
	}
	if maskBit(m, 0, 0) {
		t.Error("diagonal bit must stay clear: the AND of two rows' masks excludes b==i and b==j for free")
	}
	if maskBit(m, 0, 2) {
		t.Error("unmeasured pair has its bit set")
	}
	// Re-setting to Missing clears both directions (synth generators
	// drop measurements this way).
	m.Set(0, 65, Missing)
	if maskBit(m, 0, 65) || maskBit(m, 65, 0) {
		t.Error("Set(..., Missing) did not clear mask bits")
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestMaskMaintainedByConstructors checks the mask invariant across
// every construction path via Validate (which verifies bit-for-bit
// agreement with the data).
func TestMaskMaintainedByConstructors(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(70)
		m := New(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				switch rng.Intn(3) {
				case 0:
					m.Set(i, j, rng.Float64()*500)
				case 1:
					m.Set(i, j, Missing)
				}
			}
		}
		if m.Validate() != nil {
			return false
		}
		if m.Clone().Validate() != nil {
			return false
		}
		perm := rng.Perm(n)
		if m.Reorder(perm).Validate() != nil {
			return false
		}
		sub := perm[:1+rng.Intn(n)]
		if m.Submatrix(sub).Validate() != nil {
			return false
		}
		rows := make([][]float64, n)
		for i := range rows {
			rows[i] = append([]float64(nil), m.Row(i)...)
		}
		fr, err := FromRows(rows)
		if err != nil || fr.Validate() != nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMeasuredPairsPopcount(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := New(130)
	want := 0
	for i := 0; i < 130; i++ {
		for j := i + 1; j < 130; j++ {
			if rng.Intn(2) == 0 {
				m.Set(i, j, 1+rng.Float64())
				want++
			}
		}
	}
	if got := m.MeasuredPairs(); got != want {
		t.Errorf("MeasuredPairs = %d, want %d", got, want)
	}
}

// FuzzMaskMaintenance drives a random Set/clear sequence (decoded from
// the fuzz input) and checks that the measured-bitsets never drift
// from the data. The mask is maintained incrementally on every Set, so
// a single missed clear or stale bit corrupts every TIV kernel.
func FuzzMaskMaintenance(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 10, 1, 0, 0, 2, 65, 200})
	f.Add([]byte{7, 7, 1, 3, 4, 0, 3, 4, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		const n = 67 // crosses a word boundary
		m := New(n)
		for len(data) >= 3 {
			i, j, v := int(data[0])%n, int(data[1])%n, data[2]
			data = data[3:]
			if i == j {
				continue
			}
			if v == 0 {
				m.Set(i, j, Missing)
			} else {
				m.Set(i, j, float64(v))
			}
			has := v != 0
			if m.Has(i, j) != has || maskBit(m, i, j) != has || maskBit(m, j, i) != has {
				t.Fatalf("after Set(%d,%d,%d): Has=%v maskIJ=%v maskJI=%v",
					i, j, v, m.Has(i, j), maskBit(m, i, j), maskBit(m, j, i))
			}
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("mask invariant broken: %v", err)
		}
	})
}
