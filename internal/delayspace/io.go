package delayspace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// The on-disk formats:
//
//   - CSV: one row per node, comma separated, "-" or empty for missing
//     entries. Human inspectable; what cmd/tivgen writes by default.
//   - Binary: "TIVM" magic, uint32 N, then N*N little-endian float64s.
//     Compact and fast for the 4000-node paper-scale matrices.

// WriteCSV writes m in CSV form.
func WriteCSV(w io.Writer, m *Matrix) error {
	bw := bufio.NewWriter(w)
	n := m.N()
	for i := 0; i < n; i++ {
		row := m.Row(i)
		for j := 0; j < n; j++ {
			if j > 0 {
				if err := bw.WriteByte(','); err != nil {
					return err
				}
			}
			var s string
			if row[j] == Missing {
				s = "-"
			} else {
				s = strconv.FormatFloat(row[j], 'g', -1, 64)
			}
			if _, err := bw.WriteString(s); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses a matrix written by WriteCSV. Asymmetric inputs are
// symmetrized by averaging (measured data sets report directional
// RTTs that differ slightly; the paper works on the symmetrized
// matrix).
func ReadCSV(r io.Reader) (*Matrix, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	var rows [][]float64
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Split(text, ",")
		row := make([]float64, len(fields))
		for i, f := range fields {
			f = strings.TrimSpace(f)
			if f == "" || f == "-" {
				row[i] = Missing
				continue
			}
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("delayspace: line %d field %d: %w", line, i+1, err)
			}
			row[i] = v
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("delayspace: reading CSV: %w", err)
	}
	return FromRows(rows)
}

var binaryMagic = [4]byte{'T', 'I', 'V', 'M'}

// WriteBinary writes m in the compact binary format.
func WriteBinary(w io.Writer, m *Matrix) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(m.N())); err != nil {
		return err
	}
	buf := make([]byte, 8)
	for _, v := range m.data {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses a matrix written by WriteBinary and validates it.
func ReadBinary(r io.Reader) (*Matrix, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("delayspace: reading magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("delayspace: bad magic %q", magic)
	}
	var n uint32
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("delayspace: reading size: %w", err)
	}
	const maxNodes = 1 << 14 // 16384 nodes = 2 GiB matrix, the sanity ceiling
	if n > maxNodes {
		return nil, fmt.Errorf("delayspace: size %d exceeds limit %d", n, maxNodes)
	}
	// Read row by row so memory tracks the bytes actually supplied: a
	// hostile header claiming a huge matrix fails on the first
	// truncated row instead of pre-allocating gigabytes (found by
	// FuzzReadBinary).
	size := int(n)
	rows := make([][]float64, 0, size)
	rowBytes := make([]byte, size*8)
	for i := 0; i < size; i++ {
		if _, err := io.ReadFull(br, rowBytes); err != nil {
			return nil, fmt.Errorf("delayspace: reading row %d: %w", i, err)
		}
		row := make([]float64, size)
		for j := range row {
			row[j] = math.Float64frombits(binary.LittleEndian.Uint64(rowBytes[j*8:]))
		}
		rows = append(rows, row)
	}
	m := &Matrix{n: size, data: make([]float64, size*size)}
	for i, row := range rows {
		copy(m.data[i*size:(i+1)*size], row)
	}
	m.rebuildMask()
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}
