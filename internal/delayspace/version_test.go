package delayspace

import "testing"

func TestVersionCountsMutations(t *testing.T) {
	m := New(4)
	v0 := m.Version()
	m.Set(0, 1, 5)
	if m.Version() != v0+1 {
		t.Errorf("Version after one Set: %d, want %d", m.Version(), v0+1)
	}
	m.Set(0, 1, Missing)
	m.Set(2, 3, 7)
	if m.Version() != v0+3 {
		t.Errorf("Version after three Sets: %d, want %d", m.Version(), v0+3)
	}
}

func TestVersionNotCopied(t *testing.T) {
	m := New(3)
	m.Set(0, 1, 5)
	if c := m.Clone(); c.Version() != 0 {
		t.Errorf("Clone carried version %d, want 0 (fresh history)", c.Version())
	}
	if s := m.Submatrix([]int{0, 1}); s.Version() == 0 {
		// Submatrix goes through set, so it has its own non-zero count;
		// the point is it is not tied to the source's counter.
		t.Error("Submatrix should have its own mutation history")
	}
}

func TestOnChangeObservesSets(t *testing.T) {
	m := New(5)
	type ev struct {
		i, j     int
		old, new float64
	}
	var got []ev
	m.OnChange(func(i, j int, old, new float64) {
		got = append(got, ev{i, j, old, new})
	})
	m.Set(1, 2, 10)
	m.Set(1, 2, 12)
	m.Set(1, 2, Missing)
	want := []ev{
		{1, 2, Missing, 10},
		{1, 2, 10, 12},
		{1, 2, 12, Missing},
	}
	if len(got) != len(want) {
		t.Fatalf("hook fired %d times, want %d", len(got), len(want))
	}
	for k := range want {
		if got[k] != want[k] {
			t.Errorf("event %d: %+v, want %+v", k, got[k], want[k])
		}
	}
	// A clone must not inherit the hook.
	c := m.Clone()
	c.Set(0, 1, 3)
	if len(got) != len(want) {
		t.Error("hook fired for a mutation of a clone")
	}
}

func TestOnChangeMultipleHooks(t *testing.T) {
	m := New(3)
	a, b := 0, 0
	m.OnChange(func(int, int, float64, float64) { a++ })
	m.OnChange(func(int, int, float64, float64) { b++ })
	m.Set(0, 2, 4)
	if a != 1 || b != 1 {
		t.Errorf("hooks fired (%d, %d) times, want (1, 1)", a, b)
	}
}

// TestOnChangeAppendsNotReplaces is the regression test for the
// last-writer-wins hazard: registering a second subscriber must never
// silence the first, every subscriber sees every mutation exactly
// once, and hooks run in registration order — the contract that lets a
// tivaware.Service and any other observer watch one matrix together.
func TestOnChangeAppendsNotReplaces(t *testing.T) {
	m := New(4)
	var order []string
	for _, name := range []string{"first", "second", "third"} {
		name := name
		m.OnChange(func(int, int, float64, float64) { order = append(order, name) })
	}
	m.Set(0, 1, 9)
	m.Set(2, 3, 4)
	want := []string{"first", "second", "third", "first", "second", "third"}
	if len(order) != len(want) {
		t.Fatalf("hooks fired %d times, want %d: %v", len(order), len(want), order)
	}
	for k := range want {
		if order[k] != want[k] {
			t.Fatalf("firing order %v, want %v", order, want)
		}
	}
}

func TestSnapshotCarriesVersionAndIsolates(t *testing.T) {
	m := New(4)
	m.Set(0, 1, 5)
	m.Set(1, 2, 7)
	snap := m.Snapshot()
	if snap.Version() != m.Version() {
		t.Errorf("snapshot version %d, want source version %d", snap.Version(), m.Version())
	}
	if err := snap.Validate(); err != nil {
		t.Fatalf("snapshot invalid: %v", err)
	}
	// Source mutations after the snapshot never reach it.
	m.Set(0, 1, 99)
	m.Set(2, 3, 11)
	if snap.At(0, 1) != 5 || snap.Has(2, 3) {
		t.Errorf("snapshot observed later mutations: At(0,1)=%g Has(2,3)=%v",
			snap.At(0, 1), snap.Has(2, 3))
	}
	if snap.Version() == m.Version() {
		t.Error("snapshot version moved with the source")
	}
	// And snapshot hooks were not inherited.
	hooked := false
	m.OnChange(func(i, j int, old, new float64) { hooked = true })
	snap2 := m.Snapshot()
	_ = snap2
	if hooked {
		t.Error("Snapshot fired mutation hooks")
	}
}
