package delayspace

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewMatrix(t *testing.T) {
	m := New(3)
	if m.N() != 3 {
		t.Fatalf("N = %d", m.N())
	}
	for i := 0; i < 3; i++ {
		if m.At(i, i) != 0 {
			t.Errorf("diagonal (%d,%d) = %g", i, i, m.At(i, i))
		}
		for j := 0; j < 3; j++ {
			if i != j && m.Has(i, j) {
				t.Errorf("(%d,%d) should be missing", i, j)
			}
		}
	}
	if err := m.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(-1)
}

func TestSetSymmetric(t *testing.T) {
	m := New(4)
	m.Set(1, 3, 42)
	if m.At(1, 3) != 42 || m.At(3, 1) != 42 {
		t.Errorf("asymmetric after Set: %g vs %g", m.At(1, 3), m.At(3, 1))
	}
	if !m.Has(1, 3) || !m.Has(3, 1) {
		t.Error("Has should be true both ways")
	}
}

func TestSetPanics(t *testing.T) {
	m := New(2)
	for name, fn := range map[string]func(){
		"diagonal": func() { m.Set(1, 1, 5) },
		"negative": func() { m.Set(0, 1, -3) },
		"nan":      func() { m.Set(0, 1, math.NaN()) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{
		{0, 10, Missing},
		{12, 0, 5},
		{Missing, 5, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.At(0, 1); got != 11 { // symmetrized average of 10 and 12
		t.Errorf("At(0,1) = %g, want 11", got)
	}
	if m.Has(0, 2) {
		t.Error("(0,2) should stay missing")
	}
	if got := m.At(1, 2); got != 5 {
		t.Errorf("At(1,2) = %g, want 5", got)
	}
}

func TestFromRowsOneSided(t *testing.T) {
	m, err := FromRows([][]float64{
		{0, 7},
		{Missing, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.At(1, 0); got != 7 {
		t.Errorf("one-sided measurement not adopted: %g", got)
	}
}

func TestFromRowsErrors(t *testing.T) {
	cases := map[string][][]float64{
		"ragged":   {{0, 1}, {1}},
		"diagonal": {{5, 1}, {1, 0}},
		"negative": {{0, -2}, {-2, 0}},
		"nan":      {{0, math.NaN()}, {1, 0}},
	}
	for name, rows := range cases {
		if _, err := FromRows(rows); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	m := New(2)
	m.Set(0, 1, 9)
	c := m.Clone()
	c.Set(0, 1, 1)
	if m.At(0, 1) != 9 {
		t.Error("Clone shares storage")
	}
}

func TestSubmatrix(t *testing.T) {
	m := New(4)
	m.Set(0, 2, 10)
	m.Set(2, 3, 20)
	s := m.Submatrix([]int{2, 3, 0})
	if s.N() != 3 {
		t.Fatalf("N = %d", s.N())
	}
	if got := s.At(0, 1); got != 20 {
		t.Errorf("At(0,1) = %g, want 20 (old pair 2-3)", got)
	}
	if got := s.At(0, 2); got != 10 {
		t.Errorf("At(0,2) = %g, want 10 (old pair 2-0)", got)
	}
	if s.Has(1, 2) {
		t.Error("old missing pair 3-0 should stay missing")
	}
}

func TestSubmatrixPanics(t *testing.T) {
	m := New(3)
	for name, idx := range map[string][]int{
		"range":     {0, 5},
		"duplicate": {1, 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			m.Submatrix(idx)
		}()
	}
}

func TestReorder(t *testing.T) {
	m := New(3)
	m.Set(0, 1, 5)
	m.Set(1, 2, 7)
	r := m.Reorder([]int{2, 1, 0})
	if got := r.At(0, 1); got != 7 {
		t.Errorf("reordered At(0,1) = %g, want 7", got)
	}
	if got := r.At(1, 2); got != 5 {
		t.Errorf("reordered At(1,2) = %g, want 5", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("short permutation should panic")
		}
	}()
	m.Reorder([]int{0})
}

func TestMeasuredPairsAndMax(t *testing.T) {
	m := New(3)
	if m.MeasuredPairs() != 0 || m.MaxDelay() != 0 {
		t.Error("empty matrix should have 0 pairs and 0 max")
	}
	m.Set(0, 1, 5)
	m.Set(1, 2, 50)
	if m.MeasuredPairs() != 2 {
		t.Errorf("MeasuredPairs = %d", m.MeasuredPairs())
	}
	if m.MaxDelay() != 50 {
		t.Errorf("MaxDelay = %g", m.MaxDelay())
	}
}

func TestEachEdgeStops(t *testing.T) {
	m := New(4)
	m.Set(0, 1, 1)
	m.Set(0, 2, 2)
	m.Set(0, 3, 3)
	count := 0
	m.EachEdge(func(i, j int, d float64) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("visited %d edges, want early stop at 2", count)
	}
}

func TestEdges(t *testing.T) {
	m := New(3)
	m.Set(0, 1, 4)
	m.Set(1, 2, 6)
	edges := m.Edges()
	if len(edges) != 2 {
		t.Fatalf("got %d edges", len(edges))
	}
	if edges[0] != (Edge{0, 1, 4}) || edges[1] != (Edge{1, 2, 6}) {
		t.Errorf("edges = %+v", edges)
	}
}

func TestNearestNeighbor(t *testing.T) {
	m := New(4)
	m.Set(0, 1, 30)
	m.Set(0, 2, 10)
	j, ok := m.NearestNeighbor(0)
	if !ok || j != 2 {
		t.Errorf("NearestNeighbor = %d,%v want 2,true", j, ok)
	}
	if _, ok := m.NearestNeighbor(3); ok {
		t.Error("isolated node should have no neighbor")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	m := New(3)
	m.Set(0, 1, 5)
	m.data[0*3+1] = 6 // break symmetry behind the API's back
	if err := m.Validate(); err == nil {
		t.Error("expected asymmetry error")
	}
	m2 := New(2)
	m2.data[0] = 3 // non-zero diagonal
	if err := m2.Validate(); err == nil {
		t.Error("expected diagonal error")
	}
	m3 := New(2)
	m3.data[1] = -7
	m3.data[2] = -7
	if err := m3.Validate(); err == nil {
		t.Error("expected negative-delay error")
	}
}

// Property: Set/At round-trip and preserve symmetry under random
// operation sequences.
func TestMatrixProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		m := New(n)
		for k := 0; k < 50; k++ {
			i := rng.Intn(n)
			j := rng.Intn(n)
			if i == j {
				continue
			}
			d := rng.Float64() * 1000
			m.Set(i, j, d)
			if m.At(i, j) != d || m.At(j, i) != d {
				return false
			}
		}
		return m.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Submatrix of the full index set preserves all entries.
func TestSubmatrixIdentityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		m := New(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(2) == 0 {
					m.Set(i, j, rng.Float64()*500)
				}
			}
		}
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		s := m.Submatrix(idx)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if s.At(i, j) != m.At(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
