// Package tivfault injects faults into the TIV query plane — the
// chaos layer behind the resilience tests and `tivd -chaos`. One
// Injector wraps any of the plane's three seams:
//
//   - Handler: an http.Handler middleware (server side) — added
//     latency, injected 503 envelopes, pre-header hangs, torn
//     responses (the connection dies mid-body, truncating JSON and
//     tearing SSE streams), and crash-on-Nth-request.
//   - Transport: an http.RoundTripper wrapper (client side) — the
//     same fault classes expressed as transport errors, hangs bounded
//     by the request context, and bodies that cut off early.
//   - Backend: a tivd.Backend wrapper — faults below the HTTP
//     surface, for in-process tests.
//
// Faults are sampled from a seeded PRNG, so a failing chaos run
// replays deterministically given the same seed and request arrival
// order. The Spec is hot-swappable (SetSpec), letting one test sweep
// every fault class over one cluster.
package tivfault

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Spec describes what to inject. The zero value injects nothing.
// Rates are probabilities in [0, 1], rolled independently per
// request in the order: crash, hang, error, tear; at most one
// non-latency fault fires per request. Latency (± jitter) applies to
// every request, faulted or not.
type Spec struct {
	// Latency is added to every request before it is served.
	Latency time.Duration
	// Jitter spreads the added latency uniformly over ±Jitter.
	Jitter time.Duration
	// ErrRate is the probability of an injected failure: a 503
	// envelope (Handler/Backend) or a transport error (Transport).
	ErrRate float64
	// HangRate is the probability the request blocks until its
	// context is cancelled or the connection dies — never answering.
	HangRate float64
	// TearRate is the probability the response is torn mid-body: the
	// client sees headers (HTTP 200) and a truncated payload.
	TearRate float64
	// CrashAfter, when > 0, invokes the Injector's CrashFn on the
	// Nth request (counting every request this injector sees).
	CrashAfter int64
	// Seed seeds the fault PRNG; zero means 1.
	Seed int64
}

// ParseSpec decodes the `tivd -chaos` flag syntax: comma-separated
// key=value pairs, e.g.
//
//	latency=50ms,jitter=10ms,err=0.05,hang=0.01,tear=0.05,crash=500,seed=7
//
// Unknown keys are an error; an empty string is the zero Spec.
func ParseSpec(s string) (Spec, error) {
	var spec Spec
	if s == "" {
		return spec, nil
	}
	for _, field := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return Spec{}, fmt.Errorf("tivfault: field %q: want key=value", field)
		}
		var err error
		switch k {
		case "latency":
			spec.Latency, err = time.ParseDuration(v)
		case "jitter":
			spec.Jitter, err = time.ParseDuration(v)
		case "err":
			spec.ErrRate, err = strconv.ParseFloat(v, 64)
		case "hang":
			spec.HangRate, err = strconv.ParseFloat(v, 64)
		case "tear":
			spec.TearRate, err = strconv.ParseFloat(v, 64)
		case "crash":
			spec.CrashAfter, err = strconv.ParseInt(v, 10, 64)
		case "seed":
			spec.Seed, err = strconv.ParseInt(v, 10, 64)
		default:
			return Spec{}, fmt.Errorf("tivfault: unknown key %q", k)
		}
		if err != nil {
			return Spec{}, fmt.Errorf("tivfault: field %q: %v", field, err)
		}
	}
	if err := spec.validate(); err != nil {
		return Spec{}, err
	}
	return spec, nil
}

func (s Spec) validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{{"err", s.ErrRate}, {"hang", s.HangRate}, {"tear", s.TearRate}} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("tivfault: rate %s=%g outside [0,1]", r.name, r.v)
		}
	}
	if s.Latency < 0 || s.Jitter < 0 {
		return fmt.Errorf("tivfault: negative latency/jitter")
	}
	if s.CrashAfter < 0 {
		return fmt.Errorf("tivfault: negative crash count")
	}
	return nil
}

// String renders the spec back in ParseSpec syntax (zero fields
// omitted).
func (s Spec) String() string {
	var parts []string
	if s.Latency > 0 {
		parts = append(parts, "latency="+s.Latency.String())
	}
	if s.Jitter > 0 {
		parts = append(parts, "jitter="+s.Jitter.String())
	}
	if s.ErrRate > 0 {
		parts = append(parts, fmt.Sprintf("err=%g", s.ErrRate))
	}
	if s.HangRate > 0 {
		parts = append(parts, fmt.Sprintf("hang=%g", s.HangRate))
	}
	if s.TearRate > 0 {
		parts = append(parts, fmt.Sprintf("tear=%g", s.TearRate))
	}
	if s.CrashAfter > 0 {
		parts = append(parts, fmt.Sprintf("crash=%d", s.CrashAfter))
	}
	if s.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", s.Seed))
	}
	return strings.Join(parts, ",")
}

// Empty reports whether the spec injects nothing.
func (s Spec) Empty() bool {
	return s == Spec{}
}

// fault is one rolled decision.
type fault int

const (
	faultNone fault = iota
	faultErr
	faultHang
	faultTear
	faultCrash
)

// Injector rolls faults from a Spec. Safe for concurrent use; one
// injector is typically shared by all of a server's (or client's)
// requests so CrashAfter counts globally.
type Injector struct {
	// Match, when non-nil, restricts injection to matching request
	// paths (Handler and Transport seams only; the Backend seam
	// ignores it). Health probes are a common exemption:
	//
	//	inj.Match = func(path string) bool { return path != "/healthz" }
	Match func(path string) bool
	// CrashFn runs when the CrashAfter-th request arrives. nil means
	// the crash fault is ignored. `tivd -chaos` installs os.Exit;
	// tests install listener teardown.
	CrashFn func()

	mu       sync.Mutex
	spec     Spec
	rng      *rand.Rand
	requests atomic.Int64
	crashed  atomic.Bool
}

// New builds an injector over spec.
func New(spec Spec) *Injector {
	i := &Injector{}
	i.SetSpec(spec)
	return i
}

// SetSpec swaps the active spec (and reseeds the PRNG), so one
// long-lived cluster can sweep fault classes.
func (i *Injector) SetSpec(spec Spec) {
	seed := spec.Seed
	if seed == 0 {
		seed = 1
	}
	i.mu.Lock()
	i.spec = spec
	i.rng = rand.New(rand.NewSource(seed))
	i.mu.Unlock()
}

// Spec returns the active spec.
func (i *Injector) Spec() Spec {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.spec
}

// Requests returns how many requests this injector has seen.
func (i *Injector) Requests() int64 { return i.requests.Load() }

// roll counts the request, applies latency, and decides the fault.
// done(ctx-like) channels are the caller's concern; roll never
// blocks beyond the injected latency.
func (i *Injector) roll(done <-chan struct{}) fault {
	n := i.requests.Add(1)

	i.mu.Lock()
	spec := i.spec
	var delay time.Duration
	var f fault
	switch {
	case spec.CrashAfter > 0 && n >= spec.CrashAfter && i.CrashFn != nil:
		f = faultCrash
	default:
		roll := i.rng.Float64()
		switch {
		case roll < spec.HangRate:
			f = faultHang
		case roll < spec.HangRate+spec.ErrRate:
			f = faultErr
		case roll < spec.HangRate+spec.ErrRate+spec.TearRate:
			f = faultTear
		}
		delay = spec.Latency
		if spec.Jitter > 0 {
			delay += time.Duration(i.rng.Int63n(int64(2*spec.Jitter))) - spec.Jitter
		}
	}
	i.mu.Unlock()

	if delay > 0 {
		t := time.NewTimer(delay)
		select {
		case <-t.C:
		case <-done:
			t.Stop()
		}
	}
	if f == faultCrash {
		// Fire CrashFn exactly once; subsequent requests fall through
		// un-faulted (the "server" is presumed gone anyway).
		if i.crashed.CompareAndSwap(false, true) {
			i.CrashFn()
		}
		return faultNone
	}
	return f
}

// matches applies the optional path filter.
func (i *Injector) matches(path string) bool {
	return i.Match == nil || i.Match(path)
}
