package tivfault

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tivaware/internal/tivwire"
)

func TestParseSpecRoundTrip(t *testing.T) {
	spec, err := ParseSpec("latency=50ms,jitter=10ms,err=0.25,hang=0.1,tear=0.05,crash=500,seed=7")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	want := Spec{Latency: 50 * time.Millisecond, Jitter: 10 * time.Millisecond,
		ErrRate: 0.25, HangRate: 0.1, TearRate: 0.05, CrashAfter: 500, Seed: 7}
	if spec != want {
		t.Fatalf("ParseSpec = %+v, want %+v", spec, want)
	}
	back, err := ParseSpec(spec.String())
	if err != nil {
		t.Fatalf("ParseSpec(String): %v", err)
	}
	if back != spec {
		t.Fatalf("round trip = %+v, want %+v", back, spec)
	}
	if s, err := ParseSpec(""); err != nil || !s.Empty() {
		t.Fatalf("ParseSpec(\"\") = %+v, %v; want zero, nil", s, err)
	}
}

func TestParseSpecRejects(t *testing.T) {
	for _, bad := range []string{"err=1.5", "latency=-1s", "crash=-2", "bogus=1", "latency"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted, want error", bad)
		}
	}
}

func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		// Large enough that every tear budget truncates it.
		resp := map[string]any{"ok": true, "pad": strings.Repeat("x", 4096)}
		_ = json.NewEncoder(w).Encode(resp)
	})
}

func TestHandlerErrFault(t *testing.T) {
	inj := New(Spec{ErrRate: 1})
	srv := httptest.NewServer(inj.Handler(okHandler()))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/rank")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	var we tivwire.Error
	if err := json.NewDecoder(resp.Body).Decode(&we); err != nil {
		t.Fatalf("decoding envelope: %v", err)
	}
	if we.Code != tivwire.CodeUnavailable || we.RetryAfter <= 0 {
		t.Fatalf("envelope = %+v, want unavailable with retry hint", we)
	}
}

func TestHandlerTearTruncatesBody(t *testing.T) {
	inj := New(Spec{TearRate: 1})
	srv := httptest.NewServer(inj.Handler(okHandler()))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/rank")
	if err != nil {
		t.Fatalf("GET: %v", err) // headers must arrive; the tear is mid-body
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err == nil {
		t.Fatalf("read %d bytes with no error, want torn body", len(body))
	}
	var v map[string]any
	if json.Unmarshal(body, &v) == nil {
		t.Fatalf("truncated body still parsed as JSON: %q", body)
	}
}

func TestHandlerHangRespectsContext(t *testing.T) {
	inj := New(Spec{HangRate: 1})
	srv := httptest.NewServer(inj.Handler(okHandler()))
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/v1/rank", nil)
	start := time.Now()
	_, err := http.DefaultClient.Do(req) //nolint:bodyclose — the request must fail
	if err == nil {
		t.Fatal("hung request succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("hang outlived its context: %v", elapsed)
	}
}

func TestHandlerMatchExemption(t *testing.T) {
	inj := New(Spec{ErrRate: 1})
	inj.Match = func(path string) bool { return path != "/healthz" }
	srv := httptest.NewServer(inj.Handler(okHandler()))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("exempt path status = %d, want 200", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/v1/rank")
	if err != nil {
		t.Fatalf("GET /v1/rank: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("matched path status = %d, want 503", resp.StatusCode)
	}
}

func TestHandlerCrashAfter(t *testing.T) {
	inj := New(Spec{CrashAfter: 3})
	crashed := make(chan struct{})
	inj.CrashFn = func() { close(crashed) }
	srv := httptest.NewServer(inj.Handler(okHandler()))
	defer srv.Close()

	for n := 1; n <= 3; n++ {
		resp, err := http.Get(srv.URL + "/v1/rank")
		if err != nil {
			t.Fatalf("GET %d: %v", n, err)
		}
		resp.Body.Close()
	}
	select {
	case <-crashed:
	default:
		t.Fatal("CrashFn not invoked by request 3")
	}
	if got := inj.Requests(); got != 3 {
		t.Fatalf("Requests() = %d, want 3", got)
	}
}

func TestTransportErrAndTear(t *testing.T) {
	srv := httptest.NewServer(okHandler())
	defer srv.Close()

	inj := New(Spec{ErrRate: 1})
	hc := &http.Client{Transport: inj.Transport(nil)}
	if _, err := hc.Get(srv.URL); err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("injected transport error = %v, want ErrInjected", err)
	}

	inj.SetSpec(Spec{TearRate: 1})
	resp, err := hc.Get(srv.URL)
	if err != nil {
		t.Fatalf("torn GET failed at transport: %v", err)
	}
	defer resp.Body.Close()
	if _, err := io.ReadAll(resp.Body); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("torn body error = %v, want ErrUnexpectedEOF", err)
	}
}

func TestSetSpecSweepsClasses(t *testing.T) {
	inj := New(Spec{ErrRate: 1})
	srv := httptest.NewServer(inj.Handler(okHandler()))
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}

	inj.SetSpec(Spec{}) // back to clean
	resp, err = http.Get(srv.URL)
	if err != nil {
		t.Fatalf("GET after SetSpec: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("clean status = %d, want 200", resp.StatusCode)
	}
}
