package tivfault

import (
	"context"
	"fmt"

	"tivaware/internal/delayspace"
	"tivaware/internal/tiv"
	"tivaware/internal/tivaware"
	"tivaware/internal/tivd"
)

// Backend wraps b with fault injection below the HTTP surface: each
// call rolls the injector's spec and either fails (ErrInjected),
// hangs until its context dies, or proceeds (with latency). The tear
// class has no sub-HTTP analogue and is treated as an error fault.
// N, Live, and Subscribe pass through un-faulted — they are local
// bookkeeping, not remote calls.
func (i *Injector) Backend(b tivd.Backend) tivd.Backend {
	return &faultBackend{i: i, b: b}
}

type faultBackend struct {
	i *Injector
	b tivd.Backend
}

// gate rolls one fault for a backend call.
func (f *faultBackend) gate(ctx context.Context) error {
	switch f.i.roll(ctx.Done()) {
	case faultErr, faultTear:
		return fmt.Errorf("tivfault: backend call: %w", ErrInjected)
	case faultHang:
		return hangContext(ctx)
	}
	return ctx.Err()
}

func (f *faultBackend) N() int     { return f.b.N() }
func (f *faultBackend) Live() bool { return f.b.Live() }

func (f *faultBackend) Health(ctx context.Context) (uint64, uint64, error) {
	if err := f.gate(ctx); err != nil {
		return 0, 0, err
	}
	return f.b.Health(ctx)
}

func (f *faultBackend) Rank(ctx context.Context, target int, candidates []int, opts tivaware.QueryOptions) ([]tivaware.Selection, uint64, error) {
	if err := f.gate(ctx); err != nil {
		return nil, 0, err
	}
	return f.b.Rank(ctx, target, candidates, opts)
}

func (f *faultBackend) ClosestNode(ctx context.Context, target int, opts tivaware.QueryOptions) (tivaware.Selection, uint64, error) {
	if err := f.gate(ctx); err != nil {
		return tivaware.Selection{}, 0, err
	}
	return f.b.ClosestNode(ctx, target, opts)
}

func (f *faultBackend) DetourPath(ctx context.Context, i, j, mod, rem int) (tivaware.Detour, uint64, error) {
	if err := f.gate(ctx); err != nil {
		return tivaware.Detour{}, 0, err
	}
	return f.b.DetourPath(ctx, i, j, mod, rem)
}

func (f *faultBackend) TopEdges(ctx context.Context, k, mod, rem int) ([]delayspace.Edge, uint64, error) {
	if err := f.gate(ctx); err != nil {
		return nil, 0, err
	}
	return f.b.TopEdges(ctx, k, mod, rem)
}

func (f *faultBackend) Delay(ctx context.Context, i, j int) (float64, bool, error) {
	if err := f.gate(ctx); err != nil {
		return 0, false, err
	}
	return f.b.Delay(ctx, i, j)
}

func (f *faultBackend) Analysis(ctx context.Context) (tiv.Analysis, uint64, uint64, error) {
	if err := f.gate(ctx); err != nil {
		return tiv.Analysis{}, 0, 0, err
	}
	return f.b.Analysis(ctx)
}

func (f *faultBackend) QueryBatch(ctx context.Context, queries []tivaware.Query) ([]tivaware.Result, uint64, error) {
	if err := f.gate(ctx); err != nil {
		return nil, 0, err
	}
	return f.b.QueryBatch(ctx, queries)
}

// CacheVersion passes through un-faulted: it is the coherence token
// of the server's query cache, and faulting it would only disable
// caching, not exercise a failure mode the HTTP surface can observe.
func (f *faultBackend) CacheVersion() (uint64, uint64) { return f.b.CacheVersion() }

func (f *faultBackend) ApplyBatch(ctx context.Context, updates []tiv.Update) (tiv.ChangeSet, error) {
	if err := f.gate(ctx); err != nil {
		return tiv.ChangeSet{}, err
	}
	return f.b.ApplyBatch(ctx, updates)
}

func (f *faultBackend) Subscribe(fn func(tiv.ChangeSet)) (func(), error) {
	return f.b.Subscribe(fn)
}
