package tivfault

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"

	"tivaware/internal/tivwire"
)

// Handler wraps h with server-side fault injection: per-request
// latency, injected 503 error envelopes (a well-formed retryable
// failure), pre-header hangs (the request never answers until the
// client gives up), torn responses (headers flush, then the
// connection dies mid-body — truncated JSON on query endpoints, torn
// streams on SSE), and crash-on-Nth-request via CrashFn.
func (i *Injector) Handler(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !i.matches(r.URL.Path) {
			h.ServeHTTP(w, r)
			return
		}
		switch i.roll(r.Context().Done()) {
		case faultErr:
			writeInjected(w)
			return
		case faultHang:
			<-r.Context().Done()
			return
		case faultTear:
			// Let the handler run against a writer that cuts the
			// connection after a small random byte budget.
			tw := &tearWriter{ResponseWriter: w, remaining: i.cutBudget()}
			h.ServeHTTP(tw, r)
			return
		}
		h.ServeHTTP(w, r)
	})
}

// writeInjected writes the injected failure as a structured envelope,
// indistinguishable from a genuine overloaded backend.
func writeInjected(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusServiceUnavailable)
	fmt.Fprintf(w, `{"error":"injected fault (tivfault)","code":%q,"retry_after":0.05}`,
		tivwire.CodeUnavailable)
}

// cutBudget picks how many response bytes survive a tear: at least
// one (headers and a sliver of body flush, so the client commits to
// parsing) and few enough that any realistic JSON payload truncates.
func (i *Injector) cutBudget() int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return 1 + i.rng.Intn(128)
}

// tearWriter forwards up to `remaining` bytes, then kills the
// connection by panicking with http.ErrAbortHandler — net/http's
// sanctioned way to abort a response without a graceful close, which
// is exactly what a crashing server looks like on the wire.
type tearWriter struct {
	http.ResponseWriter
	remaining int
}

func (t *tearWriter) Write(p []byte) (int, error) {
	if t.remaining <= 0 {
		panic(http.ErrAbortHandler)
	}
	n := len(p)
	if n > t.remaining {
		n = t.remaining
	}
	n, err := t.ResponseWriter.Write(p[:n])
	t.remaining -= n
	if t.remaining <= 0 {
		if f, ok := t.ResponseWriter.(http.Flusher); ok {
			f.Flush() // push the truncated prefix out before dying
		}
		panic(http.ErrAbortHandler)
	}
	return n, err
}

func (t *tearWriter) Flush() {
	if f, ok := t.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// ErrInjected is the root of every client-side injected transport
// failure (matched with errors.Is).
var ErrInjected = errors.New("injected transport fault (tivfault)")

// Transport wraps rt with client-side fault injection: added latency,
// injected transport errors, hangs bounded by the request context,
// and response bodies that cut off after a few bytes (io.ErrUnexpectedEOF
// to the reader). nil rt wraps http.DefaultTransport.
func (i *Injector) Transport(rt http.RoundTripper) http.RoundTripper {
	if rt == nil {
		rt = http.DefaultTransport
	}
	return &faultTransport{i: i, rt: rt}
}

type faultTransport struct {
	i  *Injector
	rt http.RoundTripper
}

func (t *faultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if !t.i.matches(req.URL.Path) {
		return t.rt.RoundTrip(req)
	}
	switch t.i.roll(req.Context().Done()) {
	case faultErr:
		return nil, fmt.Errorf("%s %s: %w", req.Method, req.URL.Path, ErrInjected)
	case faultHang:
		<-req.Context().Done()
		return nil, req.Context().Err()
	case faultTear:
		resp, err := t.rt.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		resp.Body = &tearBody{rc: resp.Body, remaining: t.i.cutBudget()}
		return resp, nil
	}
	return t.rt.RoundTrip(req)
}

// tearBody truncates a response body: after the byte budget it
// reports io.ErrUnexpectedEOF — what a torn TCP stream surfaces as —
// and closes the underlying body so the connection is not reused.
type tearBody struct {
	rc        io.ReadCloser
	remaining int
}

func (b *tearBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if len(p) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.rc.Read(p)
	b.remaining -= n
	if err == io.EOF {
		return n, err
	}
	if b.remaining <= 0 {
		_ = b.rc.Close()
		if err == nil {
			err = io.ErrUnexpectedEOF
		}
	}
	return n, err
}

func (b *tearBody) Close() error { return b.rc.Close() }

// hangContext is a helper for Backend-seam hangs: it blocks until the
// context dies and returns its error.
func hangContext(ctx context.Context) error {
	<-ctx.Done()
	return ctx.Err()
}
