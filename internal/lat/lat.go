// Package lat implements the Localized Adjustment Term of Lee et al.
// [11], the second strawman TIV accommodation the paper evaluates
// (§4.2, Fig 16).
//
// Each node x keeps its Euclidean Vivaldi coordinate cₓ plus a scalar
// adjustment eₓ set to half the average signed prediction error
// against a random sample S of nodes:
//
//	eₓ = Σ_{y∈S} (d_xy − d̂_xy) / (2·|S|)
//
// The adjusted prediction for a pair is then d̂(cₓ,c_y) + eₓ + e_y,
// which can model some non-Euclidean (TIV) effects that a pure metric
// embedding cannot.
package lat

import (
	"fmt"
	"math/rand"

	"tivaware/internal/delayspace"
	"tivaware/internal/vivaldi"
)

// Predictor augments a Vivaldi snapshot with per-node adjustment
// terms.
type Predictor struct {
	coords []vivaldi.Coord
	adjust []float64
}

// New computes adjustment terms from the current state of sys, using
// sampleSize random measured peers per node. sampleSize of zero means
// 32 (the node's neighbor-set size in the paper's methodology).
func New(sys *vivaldi.System, sampleSize int, seed int64) (*Predictor, error) {
	if sampleSize == 0 {
		sampleSize = 32
	}
	if sampleSize < 0 {
		return nil, fmt.Errorf("lat: negative sample size %d", sampleSize)
	}
	n := sys.N()
	m := sys.Matrix()
	rng := rand.New(rand.NewSource(seed))
	p := &Predictor{coords: sys.Snapshot(), adjust: make([]float64, n)}
	for x := 0; x < n; x++ {
		// Sample measured peers without replacement.
		perm := rng.Perm(n)
		var sum float64
		count := 0
		for _, y := range perm {
			if y == x {
				continue
			}
			d := m.At(x, y)
			if d == delayspace.Missing {
				continue
			}
			sum += d - vivaldi.Dist(p.coords[x], p.coords[y])
			count++
			if count == sampleSize {
				break
			}
		}
		if count > 0 {
			p.adjust[x] = sum / (2 * float64(count))
		}
	}
	return p, nil
}

// Adjustment returns node i's adjustment term eᵢ.
func (p *Predictor) Adjustment(i int) float64 { return p.adjust[i] }

// Predict returns the LAT-adjusted delay estimate for the pair (i, j),
// clamped at zero.
func (p *Predictor) Predict(i, j int) float64 {
	if i == j {
		return 0
	}
	if i > j {
		i, j = j, i // fix the summation order so Predict is exactly symmetric
	}
	d := vivaldi.Dist(p.coords[i], p.coords[j]) + p.adjust[i] + p.adjust[j]
	if d < 0 {
		return 0
	}
	return d
}
