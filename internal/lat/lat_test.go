package lat

import (
	"math"
	"testing"

	"tivaware/internal/stats"
	"tivaware/internal/synth"
	"tivaware/internal/vivaldi"
)

func converged(t *testing.T, n int, seed int64) *vivaldi.System {
	t.Helper()
	s, err := synth.Generate(synth.DS2Like(n, seed))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := vivaldi.NewSystem(s.Matrix, vivaldi.Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(100)
	return sys
}

func TestNewValidation(t *testing.T) {
	sys := converged(t, 20, 1)
	if _, err := New(sys, -1, 0); err == nil {
		t.Error("negative sample size should error")
	}
}

func TestAdjustmentIsHalfMeanError(t *testing.T) {
	// With sampleSize covering every peer the adjustment must equal
	// half the mean signed error exactly.
	sys := converged(t, 15, 2)
	p, err := New(sys, 14, 3)
	if err != nil {
		t.Fatal(err)
	}
	m := sys.Matrix()
	for x := 0; x < 15; x++ {
		var sum float64
		count := 0
		for y := 0; y < 15; y++ {
			if y == x {
				continue
			}
			sum += m.At(x, y) - sys.Predict(x, y)
			count++
		}
		want := sum / (2 * float64(count))
		if math.Abs(p.Adjustment(x)-want) > 1e-9 {
			t.Fatalf("adjust[%d] = %g, want %g", x, p.Adjustment(x), want)
		}
	}
}

func TestPredictClampsAndSelf(t *testing.T) {
	sys := converged(t, 30, 4)
	p, err := New(sys, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if p.Predict(3, 3) != 0 {
		t.Error("self prediction must be 0")
	}
	for i := 0; i < 30; i++ {
		for j := 0; j < 30; j++ {
			if v := p.Predict(i, j); v < 0 || math.IsNaN(v) {
				t.Fatalf("invalid prediction %g", v)
			}
			if p.Predict(i, j) != p.Predict(j, i) {
				t.Fatal("asymmetric prediction")
			}
		}
	}
}

func TestLATImprovesAggregateAccuracy(t *testing.T) {
	// The motivation for LAT [11]: adding the adjustment reduces
	// aggregate prediction error on TIV data (even though the paper
	// shows neighbor selection barely improves).
	sys := converged(t, 120, 6)
	p, err := New(sys, 32, 7)
	if err != nil {
		t.Fatal(err)
	}
	m := sys.Matrix()
	var base, adjusted []float64
	m.EachEdge(func(i, j int, d float64) bool {
		base = append(base, math.Abs(sys.Predict(i, j)-d))
		adjusted = append(adjusted, math.Abs(p.Predict(i, j)-d))
		return true
	})
	mb := stats.Summarize(base).Mean
	ma := stats.Summarize(adjusted).Mean
	if ma > mb*1.1 {
		t.Errorf("LAT mean error %.3f worse than Vivaldi %.3f", ma, mb)
	}
}

func TestDeterministic(t *testing.T) {
	sys := converged(t, 25, 8)
	a, err := New(sys, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(sys, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if a.Adjustment(i) != b.Adjustment(i) {
			t.Fatal("same seed, different adjustments")
		}
	}
}
