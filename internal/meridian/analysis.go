package meridian

import (
	"math/rand"

	"tivaware/internal/delayspace"
)

// MisplacementSample is one data point of the Fig 13 analysis: for a
// node pair (Ni, Nj) at delay Dij, Fraction is the share of nodes
// close to Nj (within β·Dij) whose delay to Ni falls outside
// [(1−β)·Dij, (1+β)·Dij] — nodes that TIVs would cause Ni to file in
// the wrong ring, hiding them from queries that pass near Nj.
type MisplacementSample struct {
	Dij      float64
	Fraction float64
}

// MisplacementSamples evaluates ring-placement errors over node pairs
// of m at acceptance threshold beta. maxPairs > 0 samples that many
// pairs uniformly; otherwise every ordered pair is evaluated (O(N³)).
func MisplacementSamples(m *delayspace.Matrix, beta float64, maxPairs int, seed int64) []MisplacementSample {
	n := m.N()
	if n < 3 {
		return nil
	}
	evaluate := func(i, j int) (MisplacementSample, bool) {
		dij := m.At(i, j)
		if dij == delayspace.Missing || dij <= 0 {
			return MisplacementSample{}, false
		}
		rowJ := m.Row(j)
		rowI := m.Row(i)
		nearJ, misplaced := 0, 0
		lo, hi := (1-beta)*dij, (1+beta)*dij
		for k := 0; k < n; k++ {
			if k == i || k == j {
				continue
			}
			djk := rowJ[k]
			if djk == delayspace.Missing || djk > beta*dij {
				continue
			}
			dik := rowI[k]
			if dik == delayspace.Missing {
				continue
			}
			nearJ++
			if dik < lo || dik > hi {
				misplaced++
			}
		}
		if nearJ == 0 {
			return MisplacementSample{}, false
		}
		return MisplacementSample{Dij: dij, Fraction: float64(misplaced) / float64(nearJ)}, true
	}

	var out []MisplacementSample
	if maxPairs <= 0 || maxPairs >= n*(n-1) {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				if s, ok := evaluate(i, j); ok {
					out = append(out, s)
				}
			}
		}
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	for len(out) < maxPairs {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		if s, ok := evaluate(i, j); ok {
			out = append(out, s)
		}
	}
	return out
}
