package meridian

// Diversity-based ring membership. The original Meridian system does
// not keep the first k members it discovers: it periodically swaps
// ring members to maximize the hypervolume of the polytope spanned by
// their pairwise latencies, so each ring covers its delay shell from
// many directions. This file implements the standard greedy
// approximation (farthest-point / max-min selection over measured
// member-to-member delays), enabled with BuildOptions.DiverseRings.
// The extra member-to-member probes are counted as construction cost.

// pruneRingDiverse reduces members to at most k, maximizing the
// minimum pairwise delay among the survivors. Delays between members
// are measured through the prober; members whose pairwise delay
// cannot be measured are treated as collocated (distance 0), which
// makes them unlikely to be kept together. Returns the pruned set and
// the number of probes spent.
func (s *System) pruneRingDiverse(members []int, k int) (kept []int, probes int) {
	if len(members) <= k {
		return members, 0
	}
	// Bound the O(candidates²) probing: consider at most 4k random
	// candidates. Beyond that the marginal diversity gain is noise,
	// while the probe cost grows quadratically.
	if cap := 4 * k; len(members) > cap {
		s.rng.Shuffle(len(members), func(a, b int) {
			members[a], members[b] = members[b], members[a]
		})
		members = members[:cap]
	}
	// Pairwise delay cache for this ring.
	delay := make(map[[2]int]float64, len(members)*(len(members)-1)/2)
	get := func(a, b int) float64 {
		key := [2]int{a, b}
		if a > b {
			key = [2]int{b, a}
		}
		if d, ok := delay[key]; ok {
			return d
		}
		d, ok := s.prober.RTT(a, b)
		if !ok {
			d = 0
		} else {
			probes++
		}
		delay[key] = d
		return d
	}

	// Seed with the farthest pair.
	bestA, bestB, bestD := 0, 1, -1.0
	for x := 0; x < len(members); x++ {
		for y := x + 1; y < len(members); y++ {
			if d := get(members[x], members[y]); d > bestD {
				bestA, bestB, bestD = x, y, d
			}
		}
	}
	selected := []int{members[bestA], members[bestB]}
	inSel := map[int]bool{members[bestA]: true, members[bestB]: true}

	// Greedy max-min additions.
	for len(selected) < k {
		bestCand, bestMin := -1, -1.0
		for _, cand := range members {
			if inSel[cand] {
				continue
			}
			minD := -1.0
			for _, sel := range selected {
				d := get(cand, sel)
				if minD < 0 || d < minD {
					minD = d
				}
			}
			if minD > bestMin {
				bestCand, bestMin = cand, minD
			}
		}
		if bestCand < 0 {
			break
		}
		selected = append(selected, bestCand)
		inSel[bestCand] = true
	}
	return selected, probes
}

// applyDiversity prunes every over-full ring of every node. Build
// calls it after candidate placement when DiverseRings is set.
func (s *System) applyDiversity(k int) int64 {
	var probes int64
	for _, id := range s.ids {
		nd := s.nodes[id]
		for r, members := range nd.rings {
			if len(members) <= k {
				continue
			}
			kept, p := s.pruneRingDiverse(members, k)
			probes += int64(p)
			nd.rings[r] = kept
		}
	}
	return probes
}
