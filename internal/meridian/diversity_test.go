package meridian

import (
	"testing"

	"tivaware/internal/delayspace"
	"tivaware/internal/synth"
)

func TestDiverseRingsRespectCap(t *testing.T) {
	m := synth.Euclidean(60, 100, 7) // tight space, crowded rings
	p := prober(t, m)
	sys, err := Build(p, allIDs(60), Config{K: 4, Seed: 1},
		BuildOptions{DiverseRings: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range sys.IDs() {
		for _, occ := range sys.RingOccupancy(id) {
			if occ > 4 {
				t.Fatalf("diverse ring holds %d members, cap 4", occ)
			}
		}
	}
}

func TestDiverseRingsPickSpreadMembers(t *testing.T) {
	// Hand-crafted shell: node 0 sees five members all at delay ~10
	// (same ring). Members 1,2,3 are mutually collocated (1 ms apart);
	// members 4,5 are far from everyone. With k=3, diversity must
	// keep at most one of the collocated triple.
	m := delayspace.New(6)
	for _, memb := range []int{1, 2, 3, 4, 5} {
		m.Set(0, memb, 10)
	}
	m.Set(1, 2, 1)
	m.Set(1, 3, 1)
	m.Set(2, 3, 1)
	for _, a := range []int{1, 2, 3} {
		m.Set(a, 4, 50)
		m.Set(a, 5, 60)
	}
	m.Set(4, 5, 55)
	p := prober(t, m)
	sys, err := Build(p, allIDs(6), Config{K: 3, Seed: 2},
		BuildOptions{DiverseRings: true})
	if err != nil {
		t.Fatal(err)
	}
	ring := sys.RingMembers(0, sys.RingIndex(10))
	if len(ring) != 3 {
		t.Fatalf("ring = %v, want 3 members", ring)
	}
	collocated := 0
	hasFar := map[int]bool{}
	for _, memb := range ring {
		switch memb {
		case 1, 2, 3:
			collocated++
		case 4, 5:
			hasFar[memb] = true
		}
	}
	if collocated > 1 {
		t.Errorf("kept %d collocated members %v; diversity failed", collocated, ring)
	}
	if len(hasFar) != 2 {
		t.Errorf("far members not both kept: %v", ring)
	}
}

func TestDiverseRingsCostProbes(t *testing.T) {
	m := synth.Euclidean(40, 100, 9)
	p1 := prober(t, m)
	plain, err := Build(p1, allIDs(40), Config{K: 3, Seed: 3}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p2 := prober(t, m)
	diverse, err := Build(p2, allIDs(40), Config{K: 3, Seed: 3},
		BuildOptions{DiverseRings: true})
	if err != nil {
		t.Fatal(err)
	}
	if diverse.ConstructionProbes() <= plain.ConstructionProbes() {
		t.Errorf("diversity should cost extra probes: %d vs %d",
			diverse.ConstructionProbes(), plain.ConstructionProbes())
	}
}

func TestDiverseRingsNoopWhenUnderCap(t *testing.T) {
	// With unlimited K nothing is pruned and membership matches the
	// plain build.
	m := synth.Euclidean(20, 200, 11)
	pa := prober(t, m)
	a, err := Build(pa, allIDs(20), Config{K: -1, Seed: 4}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pb := prober(t, m)
	b, err := Build(pb, allIDs(20), Config{K: -1, Seed: 4}, BuildOptions{DiverseRings: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range a.IDs() {
		occA, occB := a.RingOccupancy(id), b.RingOccupancy(id)
		for r := range occA {
			if occA[r] != occB[r] {
				t.Fatalf("node %d ring %d differs: %d vs %d", id, r, occA[r], occB[r])
			}
		}
	}
}

func TestDiverseQueriesStillWork(t *testing.T) {
	s, err := synth.Generate(synth.DS2Like(80, 13))
	if err != nil {
		t.Fatal(err)
	}
	p := prober(t, s.Matrix)
	sys, err := Build(p, allIDs(40), Config{K: 8, Seed: 5},
		BuildOptions{DiverseRings: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.ClosestTo(50, sys.RandomStart(), QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found < 0 || res.Probes <= 0 {
		t.Errorf("query broken: %+v", res)
	}
}
