package meridian

import (
	"fmt"
	"math"
	"sort"
)

// QueryOptions controls one closest-neighbor query.
type QueryOptions struct {
	// NoTermination disables the β acceptance threshold: the query
	// keeps forwarding as long as any eligible member strictly
	// improves on the current node's delay to the target. This is the
	// idealized upper-bound setting of §3.2.2 (Fig 14).
	NoTermination bool
	// Restart, with Predict and AlertLow, enables the TIV-aware query
	// restart of §5.3: when the query would terminate at a node whose
	// edge to the target raises a shrink alert (prediction ratio
	// below AlertLow), the node re-selects ring members around its
	// predicted delay to the target and continues.
	Restart  bool
	Predict  PredictFunc
	AlertLow float64
	// MaxHops bounds the recursion; zero means 64.
	MaxHops int
}

func (o QueryOptions) maxHops() int {
	if o.MaxHops > 0 {
		return o.MaxHops
	}
	return 64
}

// QueryResult reports the outcome of a closest-neighbor query.
type QueryResult struct {
	// Found is the Meridian node returned as closest to the target.
	Found int
	// Delay is Found's measured delay to the target.
	Delay float64
	// Probes counts the on-demand target probes issued (the overhead
	// currency of §5.3).
	Probes int
	// Hops is the number of query forwardings.
	Hops int
	// Restarts counts TIV-alert restarts taken.
	Restarts int
}

// Neighbor is one entry of a KClosest result.
type Neighbor struct {
	// ID is the Meridian node.
	ID int
	// Delay is its measured delay to the target.
	Delay float64
}

// KClosest runs a closest-neighbor query and returns up to k Meridian
// nodes ranked by their measured delay to the target, cheapest first.
// The ranking covers the nodes the recursive query probed, so it is
// concentrated around the target's vicinity: the first entry equals
// ClosestTo's answer, later entries are approximate k-nearest
// candidates (the original Meridian exposes the same multi-result
// discovery for replica selection).
func (s *System) KClosest(target, start, k int, opts QueryOptions) ([]Neighbor, QueryResult, error) {
	if k <= 0 {
		return nil, QueryResult{}, fmt.Errorf("meridian: k = %d, want positive", k)
	}
	log := make(map[int]float64)
	res, err := s.query(target, start, opts, log)
	if err != nil {
		return nil, QueryResult{}, err
	}
	out := make([]Neighbor, 0, len(log))
	for id, d := range log {
		out = append(out, Neighbor{ID: id, Delay: d})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Delay != out[b].Delay {
			return out[a].Delay < out[b].Delay
		}
		return out[a].ID < out[b].ID
	})
	if len(out) > k {
		out = out[:k]
	}
	return out, res, nil
}

// ClosestTo runs a recursive closest-neighbor query for target,
// starting at the given Meridian node. The target may be any node id
// the prober can measure; it does not need to be a Meridian node.
func (s *System) ClosestTo(target, start int, opts QueryOptions) (QueryResult, error) {
	return s.query(target, start, opts, nil)
}

// query implements the recursive search; probeLog, when non-nil,
// records the measured delay of every node probed against the target.
func (s *System) query(target, start int, opts QueryOptions, probeLog map[int]float64) (QueryResult, error) {
	if _, ok := s.nodes[start]; !ok {
		return QueryResult{}, fmt.Errorf("meridian: start node %d is not a Meridian node", start)
	}
	if opts.Restart && (opts.Predict == nil || opts.AlertLow <= 0) {
		return QueryResult{}, fmt.Errorf("meridian: Restart requires Predict and AlertLow")
	}
	beta := s.cfg.beta()

	res := QueryResult{Found: -1}
	cur := start
	dCur, ok := s.prober.RTT(cur, target)
	if !ok {
		return QueryResult{}, fmt.Errorf("meridian: start node %d cannot probe target %d", start, target)
	}
	res.Probes++
	res.Found = cur
	res.Delay = dCur
	if probeLog != nil {
		probeLog[cur] = dCur
	}

	visited := map[int]bool{cur: true}
	restarted := map[int]bool{}

	for hop := 0; hop < opts.maxHops(); hop++ {
		if dCur == 0 {
			break // exact hit; nothing closer exists
		}
		eligible := s.eligibleMembers(cur, dCur, beta)

		best, bestDelay := -1, math.Inf(1)
		for _, member := range eligible {
			if visited[member] {
				continue
			}
			d, ok := s.prober.RTT(member, target)
			if !ok {
				continue
			}
			res.Probes++
			visited[member] = true
			if probeLog != nil {
				probeLog[member] = d
			}
			if d < res.Delay {
				res.Found, res.Delay = member, d
			}
			if d < bestDelay {
				best, bestDelay = member, d
			}
		}

		advance := false
		switch {
		case best < 0:
			// No eligible member left.
		case bestDelay <= beta*dCur:
			advance = true
		case opts.NoTermination && bestDelay < dCur:
			advance = true
		}

		if advance {
			cur, dCur = best, bestDelay
			res.Hops++
			continue
		}

		// Normal termination. The TIV-aware restart (§5.3) second-
		// guesses it when the current node's edge to the target looks
		// shrunk in the embedding, i.e. likely involved in severe TIV.
		if opts.Restart && !restarted[cur] {
			if pred, ok := opts.Predict(cur, target); ok && dCur > 0 && pred/dCur < opts.AlertLow {
				restarted[cur] = true
				// Re-select ring members around the predicted delay
				// and keep searching from the best of them.
				rb, rd, probes := s.restartStep(cur, target, pred, beta, visited, probeLog)
				res.Probes += probes
				if rb >= 0 {
					if rd < res.Delay {
						res.Found, res.Delay = rb, rd
					}
					if rd < dCur {
						cur, dCur = rb, rd
						res.Hops++
						res.Restarts++
						continue
					}
				}
			}
		}
		break
	}
	return res, nil
}

// eligibleMembers returns cur's ring members whose construction-time
// delay from cur lies within [(1−β)·d, (1+β)·d]. Members double-placed
// by the TIV-aware adjustment also qualify when their predicted delay
// falls in range — that is the point of the second placement.
func (s *System) eligibleMembers(cur int, d, beta float64) []int {
	nd := s.nodes[cur]
	lo, hi := (1-beta)*d, (1+beta)*d
	var out []int
	seen := map[int]bool{}
	loRing := s.RingIndex(lo)
	hiRing := s.RingIndex(hi)
	for r := loRing; r <= hiRing; r++ {
		for _, member := range nd.rings[r] {
			if seen[member] {
				continue
			}
			md := nd.measured[member]
			ok := md >= lo && md <= hi
			if !ok {
				if ad, has := nd.alt[member]; has && ad >= lo && ad <= hi {
					ok = true
				}
			}
			if ok {
				seen[member] = true
				out = append(out, member)
			}
		}
	}
	return out
}

// restartStep probes the ring members that sit around the predicted
// delay to the target (rather than the measured one) and returns the
// best responder.
func (s *System) restartStep(cur, target int, predicted, beta float64, visited map[int]bool, probeLog map[int]float64) (best int, bestDelay float64, probes int) {
	best, bestDelay = -1, math.Inf(1)
	for _, member := range s.eligibleMembers(cur, predicted, beta) {
		if visited[member] {
			continue
		}
		d, ok := s.prober.RTT(member, target)
		if !ok {
			continue
		}
		probes++
		visited[member] = true
		if probeLog != nil {
			probeLog[member] = d
		}
		if d < bestDelay {
			best, bestDelay = member, d
		}
	}
	return best, bestDelay, probes
}

// RandomStart returns a random Meridian node id to originate a query,
// mirroring "a client sends its closest neighbor request to a random
// Meridian node".
func (s *System) RandomStart() int {
	return s.ids[s.rng.Intn(len(s.ids))]
}
