package meridian

import (
	"math"
	"sort"
	"testing"

	"tivaware/internal/synth"
)

func TestKClosestRankedAndConsistent(t *testing.T) {
	m := synth.Euclidean(80, 300, 17)
	p := prober(t, m)
	sys, err := Build(p, allIDs(40), Config{K: -1, Seed: 3}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	target := 60
	neighbors, res, err := sys.KClosest(target, sys.RandomStart(), 5, QueryOptions{NoTermination: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(neighbors) == 0 || len(neighbors) > 5 {
		t.Fatalf("got %d neighbors", len(neighbors))
	}
	// Sorted ascending by delay, first equals the single-result query.
	for k := 1; k < len(neighbors); k++ {
		if neighbors[k].Delay < neighbors[k-1].Delay {
			t.Fatal("neighbors not sorted")
		}
	}
	if neighbors[0].ID != res.Found || neighbors[0].Delay != res.Delay {
		t.Errorf("first neighbor %+v != query result %+v", neighbors[0], res)
	}
	// Every reported delay matches the matrix.
	for _, nb := range neighbors {
		if math.Abs(nb.Delay-m.At(nb.ID, target)) > 1e-9 {
			t.Fatalf("neighbor %d delay %g != matrix %g", nb.ID, nb.Delay, m.At(nb.ID, target))
		}
	}
	// With an ideal overlay the top entry should be the true nearest.
	ids := allIDs(40)
	sort.Slice(ids, func(a, b int) bool { return m.At(ids[a], target) < m.At(ids[b], target) })
	if neighbors[0].ID != ids[0] {
		t.Logf("top-1 %d differs from optimum %d (acceptable on occasion)", neighbors[0].ID, ids[0])
	}
}

func TestKClosestValidation(t *testing.T) {
	m := synth.Euclidean(10, 100, 19)
	sys, err := Build(prober(t, m), allIDs(5), Config{}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sys.KClosest(7, 0, 0, QueryOptions{}); err == nil {
		t.Error("k=0 should error")
	}
	if _, _, err := sys.KClosest(7, 99, 3, QueryOptions{}); err == nil {
		t.Error("bad start should error")
	}
}
