package meridian

import (
	"math/rand"
	"sync"
	"testing"

	"tivaware/internal/delayspace"
	"tivaware/internal/synth"
)

// lossyProber drops a fraction of probes, modeling probe loss and
// unreachable hosts during live queries.
type lossyProber struct {
	m    *delayspace.Matrix
	drop float64

	mu  sync.Mutex
	rng *rand.Rand
}

func (p *lossyProber) RTT(i, j int) (float64, bool) {
	p.mu.Lock()
	lost := p.rng.Float64() < p.drop
	p.mu.Unlock()
	if lost {
		return 0, false
	}
	if i == j {
		return 0, true
	}
	d := p.m.At(i, j)
	if d == delayspace.Missing {
		return 0, false
	}
	return d, true
}

func TestQuerySurvivesProbeLoss(t *testing.T) {
	s, err := synth.Generate(synth.DS2Like(100, 37))
	if err != nil {
		t.Fatal(err)
	}
	// Construction over a reliable prober, queries over a lossy one:
	// rings exist, but 30% of online probes fail.
	reliable := prober(t, s.Matrix)
	sys, err := Build(reliable, allIDs(50), Config{K: -1, Seed: 1}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sys.prober = &lossyProber{m: s.Matrix, drop: 0.3, rng: rand.New(rand.NewSource(2))}

	succeeded, failed := 0, 0
	for target := 50; target < 100; target++ {
		res, err := sys.ClosestTo(target, sys.RandomStart(), QueryOptions{})
		if err != nil {
			// Start node could not probe the target — the caller's
			// documented retry case.
			failed++
			continue
		}
		succeeded++
		if res.Found < 0 || res.Delay < 0 {
			t.Fatalf("lossy query returned junk: %+v", res)
		}
	}
	if succeeded == 0 {
		t.Fatal("no query survived 30% probe loss")
	}
	// With 30% loss the initial probe fails ~30% of the time; anything
	// above ~60% failures means the query path is fragile beyond that.
	if float64(failed)/float64(failed+succeeded) > 0.6 {
		t.Errorf("%d/%d queries failed under 30%% loss", failed, failed+succeeded)
	}
}

func TestBuildSurvivesProbeLoss(t *testing.T) {
	s, err := synth.Generate(synth.DS2Like(60, 41))
	if err != nil {
		t.Fatal(err)
	}
	lossy := &lossyProber{m: s.Matrix, drop: 0.4, rng: rand.New(rand.NewSource(3))}
	sys, err := Build(lossy, allIDs(30), Config{K: -1, Seed: 4}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Rings are sparser but present.
	total := 0
	for _, id := range sys.IDs() {
		for _, occ := range sys.RingOccupancy(id) {
			total += occ
		}
	}
	if total == 0 {
		t.Fatal("no ring members survived construction loss")
	}
	want := 30 * 29 // complete membership
	if total >= want {
		t.Errorf("membership %d not reduced by 40%% construction loss", total)
	}
}
