// Package meridian implements the Meridian overlay of Wong et al.
// [34], the recursive-probing neighbor selection mechanism the paper
// studies.
//
// Each Meridian node organizes the peers it knows about into
// concentric, non-overlapping rings of exponentially increasing radii:
// ring i spans delays [α·sⁱ⁻¹, α·sⁱ), with up to k members per ring.
// A "closest node to target T" query starts at an arbitrary Meridian
// node N: N measures its delay d to T, asks every ring member whose
// delay from N lies within [(1−β)·d, (1+β)·d] to probe T, and forwards
// the query to the member reporting the smallest delay, provided that
// delay beats β·d (the acceptance/termination threshold). TIVs corrupt
// the ring placement — two nearby nodes can land in distant rings —
// which is the failure mode the paper quantifies (Figs 13, 14) and the
// TIV-aware extensions in internal/core mitigate (Figs 24, 25).
package meridian

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"tivaware/internal/nsim"
)

// Config holds the ring and query parameters. The zero value is
// completed with the paper's settings: α = 1, s = 2, 11 rings,
// k = 16 members per ring, β = 0.5.
type Config struct {
	// Alpha is the innermost ring radius in ms.
	Alpha float64
	// S is the multiplicative ring growth factor.
	S float64
	// Rings is the number of rings; delays beyond the outermost
	// boundary fall into the last ring.
	Rings int
	// K caps members per ring. Negative means unlimited (the paper's
	// "use all other Meridian nodes as ring members" idealization);
	// zero means 16.
	K int
	// Beta is the acceptance threshold β ∈ (0, 1).
	Beta float64
	// Seed fixes member sampling and start-node choice.
	Seed int64
}

func (c Config) alpha() float64 {
	if c.Alpha > 0 {
		return c.Alpha
	}
	return 1
}

func (c Config) s() float64 {
	if c.S > 1 {
		return c.S
	}
	return 2
}

func (c Config) rings() int {
	if c.Rings > 0 {
		return c.Rings
	}
	return 11
}

func (c Config) k() int {
	if c.K < 0 {
		return math.MaxInt32
	}
	if c.K == 0 {
		return 16
	}
	return c.K
}

func (c Config) beta() float64 {
	if c.Beta > 0 {
		return c.Beta
	}
	return 0.5
}

// PredictFunc supplies predicted delays (for example from a Vivaldi
// embedding) to the TIV-aware extensions. ok=false means no
// prediction is available for the pair.
//
// The signature deliberately matches the Delay method of
// tivaware.DelaySource, so any source feeding the service layer plugs
// straight in: meridian.BuildOptions{Predict: src.Delay}.
type PredictFunc func(i, j int) (predicted float64, ok bool)

// BuildOptions controls ring construction beyond Config.
type BuildOptions struct {
	// MembersPerNode is how many candidate members each Meridian node
	// learns about (sampled uniformly from the other Meridian nodes).
	// Zero means all other Meridian nodes.
	MembersPerNode int
	// ExcludeEdge, when non-nil, drops candidate members whose edge to
	// the ring owner is excluded — the severity-filter strawman
	// (§4.3, Fig 18).
	ExcludeEdge func(i, j int) bool
	// Predict, with AlertLow/AlertHigh, enables TIV-aware ring
	// adjustment (§5.3): a member whose prediction ratio
	// predicted/measured falls below AlertLow or above AlertHigh is
	// additionally placed in the ring matching its predicted delay.
	Predict PredictFunc
	// AlertLow is the shrink-alert threshold ts (paper uses 0.6).
	AlertLow float64
	// AlertHigh is the stretch threshold tl (paper uses 2).
	AlertHigh float64
	// DiverseRings enables the original Meridian membership policy:
	// candidates are gathered without the per-ring cap, then each
	// over-full ring is pruned to Config.K members by greedy max-min
	// diversity over measured member-to-member delays (a standard
	// approximation of the paper's hypervolume maximization). The
	// extra member-to-member probes count as construction cost.
	DiverseRings bool
}

// node is one Meridian overlay participant.
type node struct {
	id    int
	rings [][]int // ring index -> member node ids (sorted, deduped)
	// measured holds the construction-time delay to each member.
	measured map[int]float64
	// alt holds the predicted delay for members that were double-
	// placed by the TIV-aware ring adjustment; such members are also
	// query-eligible at their predicted delay.
	alt map[int]float64
}

// System is a built Meridian overlay.
type System struct {
	cfg     Config
	opts    BuildOptions
	prober  nsim.Prober
	ids     []int // Meridian node ids (sorted)
	nodes   map[int]*node
	rng     *rand.Rand
	buildPr int64 // probes spent during construction
	// building disables the per-ring cap while candidates are being
	// gathered for diversity pruning.
	building bool
}

// Build constructs the overlay among the given Meridian node ids,
// measuring member delays through prober. Returns an error when fewer
// than two Meridian nodes are supplied or ids repeat.
func Build(prober nsim.Prober, meridianIDs []int, cfg Config, opts BuildOptions) (*System, error) {
	if len(meridianIDs) < 2 {
		return nil, fmt.Errorf("meridian: need at least 2 nodes, have %d", len(meridianIDs))
	}
	seen := make(map[int]bool, len(meridianIDs))
	for _, id := range meridianIDs {
		if seen[id] {
			return nil, fmt.Errorf("meridian: duplicate node id %d", id)
		}
		seen[id] = true
	}
	if opts.Predict != nil {
		if opts.AlertLow <= 0 || opts.AlertHigh <= opts.AlertLow {
			return nil, fmt.Errorf("meridian: alert thresholds (%g, %g) invalid", opts.AlertLow, opts.AlertHigh)
		}
	}
	ids := append([]int(nil), meridianIDs...)
	sort.Ints(ids)
	sys := &System{
		cfg:    cfg,
		opts:   opts,
		prober: prober,
		ids:    ids,
		nodes:  make(map[int]*node, len(ids)),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
	}

	sys.building = opts.DiverseRings
	var probes int64
	for _, id := range ids {
		nd := &node{
			id:       id,
			rings:    make([][]int, cfg.rings()),
			measured: make(map[int]float64),
			alt:      make(map[int]float64),
		}
		candidates := sys.sampleCandidates(id)
		for _, cand := range candidates {
			if opts.ExcludeEdge != nil && opts.ExcludeEdge(id, cand) {
				continue
			}
			d, ok := prober.RTT(id, cand)
			if !ok {
				continue
			}
			probes++
			nd.measured[cand] = d
			sys.place(nd, cand, d)
		}
		sys.nodes[id] = nd
	}
	if opts.DiverseRings {
		probes += sys.applyDiversity(cfg.k())
		sys.building = false
	}
	sys.buildPr = probes
	return sys, nil
}

// sampleCandidates returns the member candidates node id learns about.
func (s *System) sampleCandidates(id int) []int {
	others := make([]int, 0, len(s.ids)-1)
	for _, other := range s.ids {
		if other != id {
			others = append(others, other)
		}
	}
	k := s.opts.MembersPerNode
	if k <= 0 || k >= len(others) {
		return others
	}
	s.rng.Shuffle(len(others), func(a, b int) { others[a], others[b] = others[b], others[a] })
	sampled := append([]int(nil), others[:k]...)
	sort.Ints(sampled)
	return sampled
}

// place files member cand (at measured delay d) into the owner's
// rings, applying the TIV-aware double placement when configured.
func (s *System) place(nd *node, cand int, d float64) {
	s.addToRing(nd, s.RingIndex(d), cand)
	if s.opts.Predict == nil {
		return
	}
	pred, ok := s.opts.Predict(nd.id, cand)
	if !ok || d <= 0 {
		return
	}
	ratio := pred / d
	if ratio < s.opts.AlertLow || ratio > s.opts.AlertHigh {
		// Suspected TIV: also place by predicted delay so queries that
		// trust either value can reach the member (§5.3, "in the worst
		// case, a ring member will be placed into two rings").
		s.addToRing(nd, s.RingIndex(pred), cand)
		nd.alt[cand] = pred
	}
}

func (s *System) addToRing(nd *node, ring int, cand int) {
	members := nd.rings[ring]
	for _, m := range members {
		if m == cand {
			return
		}
	}
	if !s.building && len(members) >= s.cfg.k() {
		return
	}
	nd.rings[ring] = append(members, cand)
}

// RingIndex maps a delay to its ring number: ring 0 holds [0, α),
// ring i ≥ 1 holds [α·sⁱ⁻¹, α·sⁱ); delays beyond the outermost
// boundary land in the last ring.
func (s *System) RingIndex(d float64) int {
	alpha := s.cfg.alpha()
	if d < alpha || math.IsNaN(d) {
		return 0
	}
	if math.IsInf(d, 1) {
		return s.cfg.rings() - 1
	}
	idx := int(math.Floor(math.Log(d/alpha)/math.Log(s.cfg.s()))) + 1
	if idx >= s.cfg.rings() {
		idx = s.cfg.rings() - 1
	}
	if idx < 1 {
		idx = 1 // d >= alpha; guard against float underflow at the boundary
	}
	return idx
}

// IDs returns the Meridian node ids.
func (s *System) IDs() []int { return append([]int(nil), s.ids...) }

// ConstructionProbes returns the number of probes spent building the
// rings.
func (s *System) ConstructionProbes() int64 { return s.buildPr }

// RingMembers returns the members of the given ring of a Meridian
// node (a copy). It returns nil for unknown nodes or ring indices.
func (s *System) RingMembers(id, ring int) []int {
	nd, ok := s.nodes[id]
	if !ok || ring < 0 || ring >= len(nd.rings) {
		return nil
	}
	return append([]int(nil), nd.rings[ring]...)
}

// MemberDelay returns the construction-time measured delay between a
// Meridian node and one of its members.
func (s *System) MemberDelay(id, member int) (float64, bool) {
	nd, ok := s.nodes[id]
	if !ok {
		return 0, false
	}
	d, ok := nd.measured[member]
	return d, ok
}

// RingOccupancy returns the member count per ring of a node, used to
// diagnose the under-population the severity filter causes (§4.3).
func (s *System) RingOccupancy(id int) []int {
	nd, ok := s.nodes[id]
	if !ok {
		return nil
	}
	out := make([]int, len(nd.rings))
	for i, ring := range nd.rings {
		out[i] = len(ring)
	}
	return out
}
