package meridian_test

import (
	"fmt"

	"tivaware/internal/meridian"
	"tivaware/internal/nsim"
	"tivaware/internal/synth"
)

// Build a Meridian overlay over half the nodes of a delay space and
// resolve a closest-neighbor query for an outside target.
func ExampleSystem_ClosestTo() {
	m := synth.Euclidean(100, 300, 1)
	prober, _ := nsim.NewMatrixProber(m, 0, 1)

	ids := make([]int, 50)
	for i := range ids {
		ids[i] = i
	}
	sys, _ := meridian.Build(prober, ids, meridian.Config{Seed: 2}, meridian.BuildOptions{})

	target := 75
	res, _ := sys.ClosestTo(target, sys.RandomStart(), meridian.QueryOptions{})

	// Compare against the true nearest Meridian node.
	best, bestD := -1, 1e18
	for _, id := range ids {
		if d := m.At(id, target); d < bestD {
			best, bestD = id, d
		}
	}
	fmt.Printf("found a Meridian node: %v\n", res.Found >= 0 && res.Found < 50)
	fmt.Printf("within 2x of optimal: %v\n", res.Delay <= 2*m.At(best, target))
	fmt.Printf("used online probes: %v\n", res.Probes > 0)
	// Output:
	// found a Meridian node: true
	// within 2x of optimal: true
	// used online probes: true
}
