package meridian

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tivaware/internal/synth"
)

// Property: RingIndex is monotone non-decreasing in the delay, maps
// every non-negative delay into [0, Rings), and respects the ring
// boundary semantics: ring i >= 1 holds [α·sⁱ⁻¹, α·sⁱ).
func TestRingIndexProperties(t *testing.T) {
	m := synth.Euclidean(5, 100, 1)
	sys, err := Build(prober(t, m), allIDs(5), Config{Alpha: 1, S: 2, Rings: 11}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw float64) bool {
		d := math.Abs(raw)
		if math.IsInf(d, 0) || math.IsNaN(d) {
			return true
		}
		idx := sys.RingIndex(d)
		if idx < 0 || idx >= 11 {
			return false
		}
		// Boundary check for interior rings.
		if idx >= 1 && idx < 10 {
			lo := math.Pow(2, float64(idx-1))
			hi := math.Pow(2, float64(idx))
			if d < lo || d >= hi {
				return false
			}
		}
		// Monotonicity against a slightly larger delay.
		if sys.RingIndex(d*1.5+0.1) < idx {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: queries always return a Meridian node whose measured delay
// to the target is no better than the optimum, and never exceed the
// start node's delay (the query can only improve on its entry point).
func TestQueryNeverWorseThanStart(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s, err := synth.Generate(synth.DS2Like(40, seed))
		if err != nil {
			return false
		}
		p, err := newProber(s)
		if err != nil {
			return false
		}
		sys, err := Build(p, allIDs(20), Config{Seed: seed}, BuildOptions{})
		if err != nil {
			return false
		}
		for trial := 0; trial < 5; trial++ {
			target := 20 + rng.Intn(20)
			start := rng.Intn(20)
			res, err := sys.ClosestTo(target, start, QueryOptions{})
			if err != nil {
				return false
			}
			if res.Delay > s.Matrix.At(start, target)+1e-9 {
				return false // worse than where it started
			}
			optimal := math.Inf(1)
			for id := 0; id < 20; id++ {
				if d := s.Matrix.At(id, target); d < optimal {
					optimal = d
				}
			}
			if res.Delay < optimal-1e-9 {
				return false // better than physically possible
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func newProber(s *synth.Space) (*matrixProberShim, error) {
	return &matrixProberShim{s}, nil
}

// matrixProberShim avoids importing nsim in the property test (the
// matrix itself is the source of truth here).
type matrixProberShim struct{ s *synth.Space }

func (p *matrixProberShim) RTT(i, j int) (float64, bool) {
	if i == j {
		return 0, true
	}
	n := p.s.Matrix.N()
	if i < 0 || j < 0 || i >= n || j >= n {
		return 0, false
	}
	d := p.s.Matrix.At(i, j)
	if d < 0 {
		return 0, false
	}
	return d, true
}
