package meridian

import (
	"math"
	"testing"

	"tivaware/internal/delayspace"
	"tivaware/internal/nsim"
	"tivaware/internal/synth"
)

func prober(t testing.TB, m *delayspace.Matrix) *nsim.MatrixProber {
	t.Helper()
	p, err := nsim.NewMatrixProber(m, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func allIDs(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

func TestBuildValidation(t *testing.T) {
	m := synth.Euclidean(10, 200, 1)
	p := prober(t, m)
	if _, err := Build(p, []int{0}, Config{}, BuildOptions{}); err == nil {
		t.Error("single node should error")
	}
	if _, err := Build(p, []int{0, 0}, Config{}, BuildOptions{}); err == nil {
		t.Error("duplicate ids should error")
	}
	badOpts := BuildOptions{Predict: func(i, j int) (float64, bool) { return 0, false }}
	if _, err := Build(p, []int{0, 1}, Config{}, badOpts); err == nil {
		t.Error("alert thresholds required with Predict")
	}
}

func TestRingIndexBoundaries(t *testing.T) {
	m := synth.Euclidean(5, 100, 2)
	sys, err := Build(prober(t, m), allIDs(5), Config{Alpha: 1, S: 2, Rings: 11}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		d    float64
		want int
	}{
		{0, 0},
		{0.5, 0},
		{1, 1},     // [1,2)
		{1.99, 1},  // [1,2)
		{2, 2},     // [2,4)
		{3.99, 2},  // [2,4)
		{4, 3},     // [4,8)
		{512, 10},  // [512,1024)
		{5000, 10}, // clamped to outermost
	}
	for _, c := range cases {
		if got := sys.RingIndex(c.d); got != c.want {
			t.Errorf("RingIndex(%g) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestRingMembership(t *testing.T) {
	// 4 nodes with hand-built delays; node 0's rings must respect the
	// measured delays.
	m := delayspace.New(4)
	m.Set(0, 1, 1.5) // ring 1 of node 0
	m.Set(0, 2, 3)   // ring 2
	m.Set(0, 3, 10)  // ring 4 ([8,16))
	m.Set(1, 2, 2)
	m.Set(1, 3, 9)
	m.Set(2, 3, 8)
	sys, err := Build(prober(t, m), allIDs(4), Config{}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.RingMembers(0, 1); len(got) != 1 || got[0] != 1 {
		t.Errorf("ring 1 = %v, want [1]", got)
	}
	if got := sys.RingMembers(0, 2); len(got) != 1 || got[0] != 2 {
		t.Errorf("ring 2 = %v, want [2]", got)
	}
	if got := sys.RingMembers(0, 4); len(got) != 1 || got[0] != 3 {
		t.Errorf("ring 4 = %v, want [3]", got)
	}
	if got := sys.RingMembers(0, 99); got != nil {
		t.Error("invalid ring should give nil")
	}
	if got := sys.RingMembers(42, 0); got != nil {
		t.Error("unknown node should give nil")
	}
	if d, ok := sys.MemberDelay(0, 3); !ok || d != 10 {
		t.Errorf("MemberDelay = %g, %v", d, ok)
	}
	if _, ok := sys.MemberDelay(42, 0); ok {
		t.Error("unknown node should have no member delays")
	}
	occ := sys.RingOccupancy(0)
	if occ[1] != 1 || occ[2] != 1 || occ[4] != 1 {
		t.Errorf("occupancy = %v", occ)
	}
	if sys.ConstructionProbes() == 0 {
		t.Error("construction should consume probes")
	}
}

func TestKLimitsRingSize(t *testing.T) {
	m := synth.Euclidean(40, 50, 3) // tight space: most delays in few rings
	sys, err := Build(prober(t, m), allIDs(40), Config{K: 2}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range sys.IDs() {
		for _, occ := range sys.RingOccupancy(id) {
			if occ > 2 {
				t.Fatalf("ring holds %d members, cap 2", occ)
			}
		}
	}
}

func TestMembersPerNodeSampling(t *testing.T) {
	m := synth.Euclidean(30, 200, 4)
	sys, err := Build(prober(t, m), allIDs(30), Config{K: -1}, BuildOptions{MembersPerNode: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range sys.IDs() {
		total := 0
		for _, occ := range sys.RingOccupancy(id) {
			total += occ
		}
		if total != 5 {
			t.Fatalf("node %d knows %d members, want 5", id, total)
		}
	}
}

func TestExcludeEdge(t *testing.T) {
	m := synth.Euclidean(20, 200, 5)
	banned := func(i, j int) bool { return true }
	sys, err := Build(prober(t, m), allIDs(20), Config{}, BuildOptions{ExcludeEdge: banned})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range sys.IDs() {
		for _, occ := range sys.RingOccupancy(id) {
			if occ != 0 {
				t.Fatal("excluded edges still placed")
			}
		}
	}
}

func TestQueryFindsNearestOnEuclidean(t *testing.T) {
	// Idealized setting of §3.2.2: unlimited ring members, no
	// termination, metric space. Meridian should nearly always find
	// the true closest Meridian node to the target.
	m := synth.Euclidean(80, 300, 6)
	p := prober(t, m)
	meridianIDs := allIDs(40) // first 40 nodes form the overlay
	sys, err := Build(p, meridianIDs, Config{K: -1, Seed: 7}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wins, total := 0, 0
	for target := 40; target < 80; target++ {
		res, err := sys.ClosestTo(target, sys.RandomStart(), QueryOptions{NoTermination: true})
		if err != nil {
			t.Fatal(err)
		}
		// True nearest Meridian node.
		bestID, bestD := -1, math.Inf(1)
		for _, id := range meridianIDs {
			if d := m.At(id, target); d < bestD {
				bestID, bestD = id, d
			}
		}
		total++
		if res.Found == bestID {
			wins++
		}
		if res.Delay < bestD-1e-9 {
			t.Fatalf("query returned delay %g below optimum %g", res.Delay, bestD)
		}
		if res.Probes <= 0 {
			t.Fatal("no probes counted")
		}
	}
	if frac := float64(wins) / float64(total); frac < 0.9 {
		t.Errorf("found true nearest only %.0f%% of the time on metric data", frac*100)
	}
}

func TestQueryValidation(t *testing.T) {
	m := synth.Euclidean(10, 200, 8)
	sys, err := Build(prober(t, m), allIDs(5), Config{}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.ClosestTo(7, 99, QueryOptions{}); err == nil {
		t.Error("unknown start should error")
	}
	if _, err := sys.ClosestTo(7, 0, QueryOptions{Restart: true}); err == nil {
		t.Error("Restart without Predict should error")
	}
	// Unmeasurable target.
	holey := delayspace.New(4)
	holey.Set(0, 1, 5)
	holey.Set(0, 2, 7)
	holey.Set(1, 2, 6)
	sys2, err := Build(prober(t, holey), []int{0, 1, 2}, Config{}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys2.ClosestTo(3, 0, QueryOptions{}); err == nil {
		t.Error("unmeasurable target should error")
	}
}

func TestQueryTargetIsMeridianNode(t *testing.T) {
	m := synth.Euclidean(20, 200, 9)
	sys, err := Build(prober(t, m), allIDs(20), Config{K: -1}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.ClosestTo(5, 3, QueryOptions{NoTermination: true})
	if err != nil {
		t.Fatal(err)
	}
	// The target itself is in the overlay: its delay to itself is 0,
	// so the query should find node 5 (or stop very close).
	if res.Found == 5 && res.Delay != 0 {
		t.Errorf("found target with nonzero delay %g", res.Delay)
	}
}

func TestTIVBreaksMeridianAndDoublePlacementHelps(t *testing.T) {
	// Build a hand-crafted TIV scenario mirroring Fig 12: target T is
	// very close to N, but the edge N–A is wildly inflated, so A files
	// N in a far ring and the query from A returns B instead of N.
	//
	// ids: A=0, B=1, N=2, T=3 (delays from the Fig 12 example:
	// AB=11, AN=25, AT=12, BN=12, BT=4, NT=1 — triangles ATN, BTN and
	// ABN all violate the triangle inequality, ABT does not).
	m := delayspace.New(4)
	m.Set(0, 1, 11) // A-B
	m.Set(0, 2, 25) // A-N (inflated)
	m.Set(0, 3, 12) // A-T
	m.Set(1, 2, 12) // B-N
	m.Set(1, 3, 4)  // B-T
	m.Set(2, 3, 1)  // N-T
	p := prober(t, m)
	sys, err := Build(p, []int{0, 1, 2}, Config{K: -1, Beta: 0.5}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.ClosestTo(3, 0, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found != 1 {
		t.Fatalf("plain Meridian should fall into the trap and return B=1, got %d", res.Found)
	}

	// Now rebuild with a predictor playing the converged embedding:
	// the inflated A–N edge is shrunk to ≈13 (ratio 13/25 ≈ 0.52 <
	// ts = 0.6), which double-places N into A's [8,16) ring and makes
	// it query-eligible at its predicted delay.
	predict := func(i, j int) (float64, bool) {
		if (i == 0 && j == 2) || (i == 2 && j == 0) {
			return 13, true // embedding shrinks the 25ms edge
		}
		return m.At(i, j), true
	}
	aware, err := Build(p, []int{0, 1, 2}, Config{K: -1, Beta: 0.5},
		BuildOptions{Predict: predict, AlertLow: 0.6, AlertHigh: 2})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := aware.ClosestTo(3, 0, QueryOptions{Restart: true, Predict: predict, AlertLow: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Found != 2 {
		t.Errorf("TIV-aware Meridian found %d (delay %g), want N=2", res2.Found, res2.Delay)
	}
	if res2.Probes <= res.Probes {
		t.Errorf("awareness should cost extra probes: %d vs %d", res2.Probes, res.Probes)
	}
}

func TestMisplacementSamples(t *testing.T) {
	// Metric space: no misplacement is guaranteed only for beta <= 0.5
	// in the worst case by the triangle inequality; check the TIV
	// triangle instead where misplacement must appear.
	m := delayspace.New(4)
	m.Set(0, 1, 5)
	m.Set(1, 2, 5)
	m.Set(0, 2, 100)
	m.Set(0, 3, 5)
	m.Set(1, 3, 5)
	m.Set(2, 3, 5)
	samples := MisplacementSamples(m, 0.5, 0, 1)
	if len(samples) == 0 {
		t.Fatal("no samples")
	}
	sawMisplaced := false
	for _, s := range samples {
		if s.Fraction < 0 || s.Fraction > 1 {
			t.Fatalf("fraction %g outside [0,1]", s.Fraction)
		}
		if s.Fraction > 0 {
			sawMisplaced = true
		}
	}
	if !sawMisplaced {
		t.Error("TIV triangle produced no misplacement")
	}
	if got := MisplacementSamples(delayspace.New(2), 0.5, 0, 1); got != nil {
		t.Error("tiny matrix should give nil")
	}
}

func TestMisplacementSampledSubset(t *testing.T) {
	s, err := synth.Generate(synth.DS2Like(60, 10))
	if err != nil {
		t.Fatal(err)
	}
	samples := MisplacementSamples(s.Matrix, 0.5, 200, 11)
	if len(samples) != 200 {
		t.Fatalf("got %d samples, want 200", len(samples))
	}
}

func TestMisplacementBetaMonotone(t *testing.T) {
	// Larger beta tolerates more: mean misplaced fraction should not
	// increase with beta (Fig 13's ordering of the three curves).
	s, err := synth.Generate(synth.DS2Like(80, 12))
	if err != nil {
		t.Fatal(err)
	}
	mean := func(beta float64) float64 {
		var sum float64
		samples := MisplacementSamples(s.Matrix, beta, 400, 13)
		for _, x := range samples {
			sum += x.Fraction
		}
		return sum / float64(len(samples))
	}
	m01, m05, m09 := mean(0.1), mean(0.5), mean(0.9)
	if !(m01 >= m05 && m05 >= m09) {
		t.Errorf("misplacement not decreasing in beta: %.3f, %.3f, %.3f", m01, m05, m09)
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	if c.alpha() != 1 || c.s() != 2 || c.rings() != 11 || c.k() != 16 || c.beta() != 0.5 {
		t.Errorf("defaults: α=%g s=%g rings=%d k=%d β=%g", c.alpha(), c.s(), c.rings(), c.k(), c.beta())
	}
	unlimited := Config{K: -1}
	if unlimited.k() < 1<<30 {
		t.Error("K=-1 should mean unlimited")
	}
}
