package linalg

import (
	"math"
	"sort"
)

// SVDResult holds a thin singular value decomposition A = U·diag(S)·Vᵀ
// with singular values sorted descending.
type SVDResult struct {
	// U is rows(A)×k with orthonormal columns.
	U *Dense
	// S holds the k singular values, descending.
	S []float64
	// V is cols(A)×k with orthonormal columns.
	V *Dense
}

// SVD computes the thin singular value decomposition of a using the
// one-sided Jacobi method (Hestenes rotations on the columns). It is
// an exact O(min(r,c)·r·c) method appropriate for the small landmark
// matrices IDES factorizes; it is not intended for matrices with
// thousands of columns.
func SVD(a *Dense) SVDResult {
	// Work on W = A (copy); rotate columns of W until all pairs are
	// orthogonal. Then the column norms are singular values, the
	// normalized columns are U, and the accumulated rotations give V.
	rows, cols := a.Rows(), a.Cols()
	w := a.Clone()
	v := NewDense(cols, cols)
	for i := 0; i < cols; i++ {
		v.Set(i, i, 1)
	}

	const (
		maxSweeps = 60
		tol       = 1e-12
	)
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for p := 0; p < cols-1; p++ {
			for q := p + 1; q < cols; q++ {
				var alpha, beta, gamma float64 // ‖wp‖², ‖wq‖², wp·wq
				for i := 0; i < rows; i++ {
					wp := w.At(i, p)
					wq := w.At(i, q)
					alpha += wp * wp
					beta += wq * wq
					gamma += wp * wq
				}
				if math.Abs(gamma) <= tol*math.Sqrt(alpha*beta) || gamma == 0 {
					continue
				}
				off += math.Abs(gamma)
				// Jacobi rotation zeroing the (p,q) inner product.
				zeta := (beta - alpha) / (2 * gamma)
				t := math.Copysign(1, zeta) / (math.Abs(zeta) + math.Sqrt(1+zeta*zeta))
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				for i := 0; i < rows; i++ {
					wp := w.At(i, p)
					wq := w.At(i, q)
					w.Set(i, p, c*wp-s*wq)
					w.Set(i, q, s*wp+c*wq)
				}
				for i := 0; i < cols; i++ {
					vp := v.At(i, p)
					vq := v.At(i, q)
					v.Set(i, p, c*vp-s*vq)
					v.Set(i, q, s*vp+c*vq)
				}
			}
		}
		if off == 0 {
			break
		}
	}

	// Extract singular values and normalize U's columns.
	sv := make([]float64, cols)
	u := NewDense(rows, cols)
	for j := 0; j < cols; j++ {
		var norm float64
		for i := 0; i < rows; i++ {
			norm += w.At(i, j) * w.At(i, j)
		}
		norm = math.Sqrt(norm)
		sv[j] = norm
		if norm > 0 {
			for i := 0; i < rows; i++ {
				u.Set(i, j, w.At(i, j)/norm)
			}
		}
	}

	// Sort by singular value descending, permuting U and V columns.
	order := make([]int, cols)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool { return sv[order[x]] > sv[order[y]] })
	su := NewDense(rows, cols)
	sV := NewDense(cols, cols)
	ss := make([]float64, cols)
	for newJ, oldJ := range order {
		ss[newJ] = sv[oldJ]
		for i := 0; i < rows; i++ {
			su.Set(i, newJ, u.At(i, oldJ))
		}
		for i := 0; i < cols; i++ {
			sV.Set(i, newJ, v.At(i, oldJ))
		}
	}
	return SVDResult{U: su, S: ss, V: sV}
}

// Truncate keeps only the top-k singular triplets. k larger than the
// available rank is clamped.
func (r SVDResult) Truncate(k int) SVDResult {
	if k >= len(r.S) {
		return r
	}
	u := NewDense(r.U.Rows(), k)
	v := NewDense(r.V.Rows(), k)
	for i := 0; i < r.U.Rows(); i++ {
		for j := 0; j < k; j++ {
			u.Set(i, j, r.U.At(i, j))
		}
	}
	for i := 0; i < r.V.Rows(); i++ {
		for j := 0; j < k; j++ {
			v.Set(i, j, r.V.At(i, j))
		}
	}
	return SVDResult{U: u, S: append([]float64(nil), r.S[:k]...), V: v}
}

// Reconstruct returns U·diag(S)·Vᵀ.
func (r SVDResult) Reconstruct() *Dense {
	us := r.U.Clone()
	for j, s := range r.S {
		for i := 0; i < us.Rows(); i++ {
			us.Set(i, j, us.At(i, j)*s)
		}
	}
	return Mul(us, r.V.T())
}
