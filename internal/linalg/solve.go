package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular reports that a linear system had no usable solution.
var ErrSingular = errors.New("linalg: singular system")

// SolveLeastSquares returns x minimizing ‖A·x − b‖₂ via the normal
// equations (AᵀA)x = Aᵀb with a small ridge term for stability. A must
// have at least as many rows as columns. IDES uses this to fit each
// ordinary host's coordinate vector against the landmark factors.
func SolveLeastSquares(a *Dense, b []float64) ([]float64, error) {
	if a.Rows() != len(b) {
		return nil, fmt.Errorf("linalg: %d rows vs %d rhs entries", a.Rows(), len(b))
	}
	if a.Rows() < a.Cols() {
		return nil, fmt.Errorf("linalg: underdetermined system %dx%d", a.Rows(), a.Cols())
	}
	at := a.T()
	ata := Mul(at, a)
	// Tikhonov ridge keeps near-collinear landmark factors solvable;
	// the scale is tied to the matrix magnitude so well-conditioned
	// systems are essentially unaffected.
	var trace float64
	for i := 0; i < ata.Rows(); i++ {
		trace += ata.At(i, i)
	}
	ridge := 1e-10 * (trace/float64(ata.Rows()) + 1)
	for i := 0; i < ata.Rows(); i++ {
		ata.Set(i, i, ata.At(i, i)+ridge)
	}
	atb := at.MulVec(b)
	return SolveLinear(ata, atb)
}

// SolveLinear solves the square system A·x = b by Gaussian elimination
// with partial pivoting. A is not modified.
func SolveLinear(a *Dense, b []float64) ([]float64, error) {
	n := a.Rows()
	if a.Cols() != n {
		return nil, fmt.Errorf("linalg: SolveLinear on %dx%d matrix", n, a.Cols())
	}
	if len(b) != n {
		return nil, fmt.Errorf("linalg: rhs length %d, want %d", len(b), n)
	}
	m := a.Clone()
	x := append([]float64(nil), b...)
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m.At(r, col)); v > best {
				best = v
				pivot = r
			}
		}
		if best == 0 || math.IsNaN(best) {
			return nil, ErrSingular
		}
		if pivot != col {
			pr, cr := m.Row(pivot), m.Row(col)
			for k := range pr {
				pr[k], cr[k] = cr[k], pr[k]
			}
			x[pivot], x[col] = x[col], x[pivot]
		}
		inv := 1 / m.At(col, col)
		for r := col + 1; r < n; r++ {
			f := m.At(r, col) * inv
			if f == 0 {
				continue
			}
			rr, cr := m.Row(r), m.Row(col)
			for k := col; k < n; k++ {
				rr[k] -= f * cr[k]
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for col := n - 1; col >= 0; col-- {
		s := x[col]
		row := m.Row(col)
		for k := col + 1; k < n; k++ {
			s -= row[k] * x[k]
		}
		x[col] = s / row[col]
	}
	return x, nil
}

// SolveNonNegativeLS returns x ≥ 0 approximately minimizing ‖A·x − b‖₂
// using projected gradient descent. It is the fitting step for the NMF
// variant of IDES, where coordinates must stay non-negative.
func SolveNonNegativeLS(a *Dense, b []float64, iters int) ([]float64, error) {
	if a.Rows() != len(b) {
		return nil, fmt.Errorf("linalg: %d rows vs %d rhs entries", a.Rows(), len(b))
	}
	if iters <= 0 {
		iters = 200
	}
	// Start from the clamped unconstrained solution when available.
	x, err := SolveLeastSquares(a, b)
	if err != nil {
		x = make([]float64, a.Cols())
	}
	for i := range x {
		if x[i] < 0 || math.IsNaN(x[i]) {
			x[i] = 0
		}
	}
	at := a.T()
	// Lipschitz constant of the gradient is ‖AᵀA‖; the trace bounds it.
	ata := Mul(at, a)
	var lip float64
	for i := 0; i < ata.Rows(); i++ {
		lip += ata.At(i, i)
	}
	if lip == 0 {
		return x, nil
	}
	step := 1 / lip
	for it := 0; it < iters; it++ {
		r := a.MulVec(x)
		for i := range r {
			r[i] -= b[i]
		}
		g := at.MulVec(r)
		moved := 0.0
		for i := range x {
			nx := x[i] - step*g[i]
			if nx < 0 {
				nx = 0
			}
			moved += math.Abs(nx - x[i])
			x[i] = nx
		}
		if moved < 1e-12 {
			break
		}
	}
	return x, nil
}
