package linalg

import (
	"fmt"
	"math"
	"math/rand"
)

// NMFResult is a rank-k non-negative factorization A ≈ W·H with
// W (rows×k) and H (k×cols) element-wise non-negative.
type NMFResult struct {
	W *Dense
	H *Dense
}

// NMFOptions tunes the factorization.
type NMFOptions struct {
	// Rank is the factorization rank k. Must be positive.
	Rank int
	// MaxIters bounds the multiplicative-update iterations. Zero
	// means 500.
	MaxIters int
	// Tol stops iterating once the relative Frobenius improvement per
	// iteration drops below it. Zero means 1e-6.
	Tol float64
	// Seed makes the random initialization deterministic.
	Seed int64
}

// NMF factorizes a non-negative matrix with Lee–Seung multiplicative
// updates (the method the IDES paper names alongside SVD). Entries of
// a must be ≥ 0.
func NMF(a *Dense, opts NMFOptions) (NMFResult, error) {
	if opts.Rank <= 0 {
		return NMFResult{}, fmt.Errorf("linalg: NMF rank %d must be positive", opts.Rank)
	}
	maxIters := opts.MaxIters
	if maxIters <= 0 {
		maxIters = 500
	}
	tol := opts.Tol
	if tol <= 0 {
		tol = 1e-6
	}
	rows, cols := a.Rows(), a.Cols()
	var maxVal float64
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			v := a.At(i, j)
			if v < 0 || math.IsNaN(v) {
				return NMFResult{}, fmt.Errorf("linalg: NMF input has invalid entry %g at (%d,%d)", v, i, j)
			}
			if v > maxVal {
				maxVal = v
			}
		}
	}
	if maxVal == 0 {
		maxVal = 1
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	scale := math.Sqrt(maxVal / float64(opts.Rank))
	w := NewDense(rows, opts.Rank)
	h := NewDense(opts.Rank, cols)
	for i := range w.data {
		w.data[i] = rng.Float64()*scale + 1e-4
	}
	for i := range h.data {
		h.data[i] = rng.Float64()*scale + 1e-4
	}

	const eps = 1e-12
	prev := math.Inf(1)
	for it := 0; it < maxIters; it++ {
		// H <- H .* (WᵀA) ./ (WᵀWH)
		wt := w.T()
		wta := Mul(wt, a)
		wtwh := Mul(Mul(wt, w), h)
		for i := range h.data {
			h.data[i] *= wta.data[i] / (wtwh.data[i] + eps)
		}
		// W <- W .* (AHᵀ) ./ (WHHᵀ)
		ht := h.T()
		aht := Mul(a, ht)
		whht := Mul(w, Mul(h, ht))
		for i := range w.data {
			w.data[i] *= aht.data[i] / (whht.data[i] + eps)
		}
		if it%10 == 9 {
			err := FrobeniusDiff(a, Mul(w, h))
			if prev-err < tol*(prev+1) {
				break
			}
			prev = err
		}
	}
	return NMFResult{W: w, H: h}, nil
}

// Reconstruct returns W·H.
func (r NMFResult) Reconstruct() *Dense { return Mul(r.W, r.H) }
