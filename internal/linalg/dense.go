// Package linalg is the small dense linear-algebra kernel behind the
// IDES reproduction (internal/ides): matrices, one-sided Jacobi
// singular value decomposition, linear least squares, and non-negative
// matrix factorization. Everything is written from scratch on the
// standard library.
//
// IDES only ever factorizes a small L×L landmark matrix (L ≈ 15–30 in
// the original paper), so exact O(L³) methods are the right tool; no
// sparse or blocked machinery is needed.
package linalg

import (
	"fmt"
	"math"
)

// Dense is a row-major dense matrix. The zero value is an empty
// matrix; use NewDense to allocate.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense allocates an r×c zero matrix. It panics on negative sizes.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("linalg: negative dimensions %dx%d", r, c))
	}
	return &Dense{rows: r, cols: c, data: make([]float64, r*c)}
}

// DenseFromRows builds a matrix from row slices, which must be
// non-ragged.
func DenseFromRows(rows [][]float64) *Dense {
	r := len(rows)
	if r == 0 {
		return NewDense(0, 0)
	}
	c := len(rows[0])
	m := NewDense(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("linalg: ragged row %d: %d entries, want %d", i, len(row), c))
		}
		copy(m.data[i*c:(i+1)*c], row)
	}
	return m
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set stores element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Row returns a mutable view of row i.
func (m *Dense) Row(i int) []float64 { return m.data[i*m.cols : (i+1)*m.cols] }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// T returns the transpose as a new matrix.
func (m *Dense) T() *Dense {
	t := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns a×b. It panics when the inner dimensions disagree.
func Mul(a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(fmt.Sprintf("linalg: Mul dimension mismatch %dx%d × %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := NewDense(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k := 0; k < a.cols; k++ {
			aik := arow[k]
			if aik == 0 {
				continue
			}
			brow := b.Row(k)
			for j := range orow {
				orow[j] += aik * brow[j]
			}
		}
	}
	return out
}

// MulVec returns m×x as a new vector.
func (m *Dense) MulVec(x []float64) []float64 {
	if len(x) != m.cols {
		panic(fmt.Sprintf("linalg: MulVec length %d, want %d", len(x), m.cols))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// Dot returns the inner product of equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	return math.Sqrt(Dot(v, v))
}

// FrobeniusDiff returns ‖a−b‖_F, the root of the summed squared
// element-wise differences. Used by tests and by NMF convergence.
func FrobeniusDiff(a, b *Dense) float64 {
	if a.rows != b.rows || a.cols != b.cols {
		panic("linalg: FrobeniusDiff shape mismatch")
	}
	var s float64
	for i := range a.data {
		d := a.data[i] - b.data[i]
		s += d * d
	}
	return math.Sqrt(s)
}
