package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDenseBasics(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(1, 2, 5)
	if m.Rows() != 2 || m.Cols() != 3 || m.At(1, 2) != 5 {
		t.Fatalf("basic accessors broken: %dx%d at=%g", m.Rows(), m.Cols(), m.At(1, 2))
	}
	row := m.Row(1)
	row[0] = 7
	if m.At(1, 0) != 7 {
		t.Error("Row should be a mutable view")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 0 {
		t.Error("Clone shares storage")
	}
}

func TestDenseFromRowsAndT(t *testing.T) {
	m := DenseFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	tr := m.T()
	if tr.Rows() != 2 || tr.Cols() != 3 || tr.At(0, 2) != 5 || tr.At(1, 0) != 2 {
		t.Errorf("transpose wrong: %+v", tr)
	}
	if e := DenseFromRows(nil); e.Rows() != 0 {
		t.Error("empty FromRows should give 0x0")
	}
	defer func() {
		if recover() == nil {
			t.Error("ragged rows should panic")
		}
	}()
	DenseFromRows([][]float64{{1}, {1, 2}})
}

func TestMul(t *testing.T) {
	a := DenseFromRows([][]float64{{1, 2}, {3, 4}})
	b := DenseFromRows([][]float64{{5, 6}, {7, 8}})
	c := Mul(a, b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Errorf("Mul(%d,%d) = %g, want %g", i, j, c.At(i, j), want[i][j])
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("dimension mismatch should panic")
		}
	}()
	Mul(a, NewDense(3, 1))
}

func TestMulVecDotNorm(t *testing.T) {
	m := DenseFromRows([][]float64{{1, 2}, {3, 4}})
	got := m.MulVec([]float64{1, 1})
	if got[0] != 3 || got[1] != 7 {
		t.Errorf("MulVec = %v", got)
	}
	if Dot([]float64{1, 2}, []float64{3, 4}) != 11 {
		t.Error("Dot wrong")
	}
	if Norm2([]float64{3, 4}) != 5 {
		t.Error("Norm2 wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch should panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestSolveLinearKnown(t *testing.T) {
	a := DenseFromRows([][]float64{{2, 1}, {1, 3}})
	x, err := SolveLinear(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 1, 1e-12) || !almostEqual(x[1], 3, 1e-12) {
		t.Errorf("x = %v, want [1 3]", x)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := DenseFromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := SolveLinear(a, []float64{1, 2}); err == nil {
		t.Error("expected ErrSingular")
	}
	if _, err := SolveLinear(NewDense(2, 3), []float64{1, 2}); err == nil {
		t.Error("non-square should error")
	}
	if _, err := SolveLinear(NewDense(2, 2), []float64{1}); err == nil {
		t.Error("bad rhs length should error")
	}
}

// Property: SolveLinear solves random well-conditioned systems.
func TestSolveLinearProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			a.Set(i, i, a.At(i, i)+float64(n)) // diagonal dominance
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := a.MulVec(want)
		got, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		for i := range want {
			if !almostEqual(got[i], want[i], 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSolveLeastSquaresExact(t *testing.T) {
	// Overdetermined but consistent system recovers the generator.
	a := DenseFromRows([][]float64{{1, 0}, {0, 1}, {1, 1}})
	x, err := SolveLeastSquares(a, []float64{2, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 2, 1e-6) || !almostEqual(x[1], 3, 1e-6) {
		t.Errorf("x = %v", x)
	}
	if _, err := SolveLeastSquares(NewDense(1, 2), []float64{1}); err == nil {
		t.Error("underdetermined should error")
	}
	if _, err := SolveLeastSquares(NewDense(2, 2), []float64{1}); err == nil {
		t.Error("bad rhs should error")
	}
}

func TestSolveLeastSquaresResidualOptimality(t *testing.T) {
	// The LS residual must be orthogonal to the column space.
	rng := rand.New(rand.NewSource(3))
	a := NewDense(10, 3)
	for i := 0; i < 10; i++ {
		for j := 0; j < 3; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
	}
	b := make([]float64, 10)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x, err := SolveLeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	r := a.MulVec(x)
	for i := range r {
		r[i] -= b[i]
	}
	g := a.T().MulVec(r)
	for j, v := range g {
		if math.Abs(v) > 1e-6 {
			t.Errorf("gradient component %d = %g, want ~0", j, v)
		}
	}
}

func TestSolveNonNegativeLS(t *testing.T) {
	a := DenseFromRows([][]float64{{1, 0}, {0, 1}, {1, 1}})
	x, err := SolveNonNegativeLS(a, []float64{2, 3, 5}, 500)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 2, 1e-3) || !almostEqual(x[1], 3, 1e-3) {
		t.Errorf("x = %v, want [2 3]", x)
	}
	// A system whose unconstrained optimum is negative must clamp.
	a2 := DenseFromRows([][]float64{{1}, {1}})
	x2, err := SolveNonNegativeLS(a2, []float64{-1, -2}, 500)
	if err != nil {
		t.Fatal(err)
	}
	if x2[0] < 0 || x2[0] > 1e-9 {
		t.Errorf("x = %v, want 0 (clamped)", x2)
	}
	if _, err := SolveNonNegativeLS(NewDense(2, 1), []float64{1}, 0); err == nil {
		t.Error("bad rhs should error")
	}
}

func TestSVDKnown(t *testing.T) {
	// Diagonal matrix: singular values are |diagonal| sorted.
	a := DenseFromRows([][]float64{{3, 0}, {0, 4}})
	r := SVD(a)
	if !almostEqual(r.S[0], 4, 1e-9) || !almostEqual(r.S[1], 3, 1e-9) {
		t.Errorf("S = %v, want [4 3]", r.S)
	}
	rec := r.Reconstruct()
	if FrobeniusDiff(a, rec) > 1e-9 {
		t.Errorf("reconstruction error %g", FrobeniusDiff(a, rec))
	}
}

func TestSVDOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := NewDense(8, 5)
	for i := 0; i < 8; i++ {
		for j := 0; j < 5; j++ {
			a.Set(i, j, rng.NormFloat64()*10)
		}
	}
	r := SVD(a)
	utu := Mul(r.U.T(), r.U)
	vtv := Mul(r.V.T(), r.V)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if !almostEqual(utu.At(i, j), want, 1e-8) {
				t.Errorf("UᵀU(%d,%d) = %g", i, j, utu.At(i, j))
			}
			if !almostEqual(vtv.At(i, j), want, 1e-8) {
				t.Errorf("VᵀV(%d,%d) = %g", i, j, vtv.At(i, j))
			}
		}
	}
	if FrobeniusDiff(a, r.Reconstruct()) > 1e-8 {
		t.Error("SVD does not reconstruct")
	}
	for i := 1; i < len(r.S); i++ {
		if r.S[i] > r.S[i-1] {
			t.Error("singular values not descending")
		}
	}
}

// Property: SVD reconstructs arbitrary random matrices and all
// singular values are non-negative.
func TestSVDProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(10)
		cols := 1 + rng.Intn(6)
		if rows < cols {
			rows, cols = cols, rows
		}
		a := NewDense(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				a.Set(i, j, rng.NormFloat64()*5)
			}
		}
		r := SVD(a)
		for _, s := range r.S {
			if s < 0 {
				return false
			}
		}
		return FrobeniusDiff(a, r.Reconstruct()) < 1e-7*(1+float64(rows*cols))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSVDTruncate(t *testing.T) {
	a := DenseFromRows([][]float64{{1, 0, 0}, {0, 2, 0}, {0, 0, 3}})
	r := SVD(a).Truncate(2)
	if len(r.S) != 2 || r.U.Cols() != 2 || r.V.Cols() != 2 {
		t.Fatalf("truncate shape wrong: %d svs", len(r.S))
	}
	if !almostEqual(r.S[0], 3, 1e-9) || !almostEqual(r.S[1], 2, 1e-9) {
		t.Errorf("S = %v", r.S)
	}
	// Truncating beyond rank is a no-op.
	full := SVD(a)
	if got := full.Truncate(99); len(got.S) != 3 {
		t.Error("over-truncate should clamp")
	}
}

func TestNMFReconstructsLowRank(t *testing.T) {
	// Build an exactly rank-2 non-negative matrix.
	w := DenseFromRows([][]float64{{1, 2}, {3, 1}, {0, 2}, {2, 0}})
	h := DenseFromRows([][]float64{{1, 0, 2, 1}, {0, 1, 1, 3}})
	a := Mul(w, h)
	r, err := NMF(a, NMFOptions{Rank: 2, MaxIters: 3000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if d := FrobeniusDiff(a, r.Reconstruct()); d > 0.05 {
		t.Errorf("NMF reconstruction error %g", d)
	}
	// Factors must stay non-negative.
	for i := 0; i < r.W.Rows(); i++ {
		for j := 0; j < r.W.Cols(); j++ {
			if r.W.At(i, j) < 0 {
				t.Fatal("negative W entry")
			}
		}
	}
	for i := 0; i < r.H.Rows(); i++ {
		for j := 0; j < r.H.Cols(); j++ {
			if r.H.At(i, j) < 0 {
				t.Fatal("negative H entry")
			}
		}
	}
}

func TestNMFErrors(t *testing.T) {
	if _, err := NMF(NewDense(2, 2), NMFOptions{Rank: 0}); err == nil {
		t.Error("rank 0 should error")
	}
	bad := DenseFromRows([][]float64{{-1}})
	if _, err := NMF(bad, NMFOptions{Rank: 1}); err == nil {
		t.Error("negative input should error")
	}
}

func TestNMFDeterministic(t *testing.T) {
	a := DenseFromRows([][]float64{{1, 2}, {3, 4}})
	r1, err1 := NMF(a, NMFOptions{Rank: 2, Seed: 7, MaxIters: 50})
	r2, err2 := NMF(a, NMFOptions{Rank: 2, Seed: 7, MaxIters: 50})
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if FrobeniusDiff(r1.W, r2.W) != 0 || FrobeniusDiff(r1.H, r2.H) != 0 {
		t.Error("same seed should give identical factorization")
	}
}

func TestFrobeniusDiffMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("shape mismatch should panic")
		}
	}()
	FrobeniusDiff(NewDense(1, 2), NewDense(2, 1))
}
