package synth

import (
	"testing"

	"tivaware/internal/tiv"
)

// TestDS2TriangleFraction pins the headline calibration: the paper
// measures that "around 12% of [triangles] violate triangle
// inequality" on DS2. The DS2-like preset must stay in that
// neighborhood or every downstream experiment drifts.
func TestDS2TriangleFraction(t *testing.T) {
	s, err := Generate(DS2Like(300, 42))
	if err != nil {
		t.Fatal(err)
	}
	frac := tiv.ViolatingTriangleFraction(s.Matrix, 200000, 7)
	if frac < 0.06 || frac > 0.20 {
		t.Errorf("violating triangle fraction %.3f outside [0.06, 0.20] (paper: ~0.12)", frac)
	}
}

// TestSeverityCDFShape pins Figure 2's qualitative shape on the DS2
// preset: a substantial share of edges cause at least slight
// violations, the median severity is small, and the distribution has
// a long tail (max far above the median).
func TestSeverityCDFShape(t *testing.T) {
	s, err := Generate(DS2Like(250, 11))
	if err != nil {
		t.Fatal(err)
	}
	sev := tiv.AllSeverities(s.Matrix, tiv.Options{})
	vals := sev.Values()
	positive := 0
	var max float64
	for _, v := range vals {
		if v > 0 {
			positive++
		}
		if v > max {
			max = v
		}
	}
	posFrac := float64(positive) / float64(len(vals))
	if posFrac < 0.15 {
		t.Errorf("only %.0f%% of edges cause any violation; paper: most edges cause slight ones", posFrac*100)
	}
	if max < 0.5 {
		t.Errorf("max severity %.3f; the long tail is missing", max)
	}
}

// TestSeverityPeakMidRange pins Fig 4's hump: on the DS2-like space
// the per-delay-bin median severity must peak in the mid range
// (roughly 400–750 ms) and fall off at the far end, because the very
// longest delays are genuinely long paths (satellite access links)
// rather than inflated short ones.
func TestSeverityPeakMidRange(t *testing.T) {
	s, err := Generate(DS2Like(300, 5))
	if err != nil {
		t.Fatal(err)
	}
	sev := tiv.AllSeverities(s.Matrix, tiv.Options{})
	// 50 ms bins of median severity.
	bins := map[int][]float64{}
	s.Matrix.EachEdge(func(i, j int, d float64) bool {
		bins[int(d/50)] = append(bins[int(d/50)], sev.At(i, j))
		return true
	})
	peakBin, peakMed := 0, 0.0
	var lastBin int
	for b, xs := range bins {
		if len(xs) < 10 {
			continue
		}
		sortFloats(xs)
		med := xs[len(xs)/2]
		if med > peakMed {
			peakMed, peakBin = med, b
		}
		if b > lastBin {
			lastBin = b
		}
	}
	peakMs := float64(peakBin)*50 + 25
	if peakMs < 300 || peakMs > 800 {
		t.Errorf("severity peak at %.0f ms, want mid-range (paper: 500-600 ms)", peakMs)
	}
	if lastBin*50 < 700 {
		t.Errorf("delay space too short: max bin %d ms", lastBin*50)
	}
}

func sortFloats(xs []float64) {
	for a := 1; a < len(xs); a++ {
		for b := a; b > 0 && xs[b] < xs[b-1]; b-- {
			xs[b], xs[b-1] = xs[b-1], xs[b]
		}
	}
}

// TestHeavierTailOnMeridianPreset pins the cross-data-set ordering of
// Fig 2/Figs 4-7: the Meridian-like space has the heaviest severity
// tail, the p2psim-like the lightest.
func TestHeavierTailOnMeridianPreset(t *testing.T) {
	tail := func(name string) float64 {
		cfg, err := FromName(name, 250, 13)
		if err != nil {
			t.Fatal(err)
		}
		s, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sev := tiv.AllSeverities(s.Matrix, tiv.Options{})
		var max float64
		for _, v := range sev.Values() {
			if v > max {
				max = v
			}
		}
		return max
	}
	meridian := tail("meridian")
	p2psim := tail("p2psim")
	if meridian <= p2psim {
		t.Errorf("meridian tail %.2f not heavier than p2psim %.2f", meridian, p2psim)
	}
}
