package synth

import (
	"math"
	"testing"
	"testing/quick"

	"tivaware/internal/delayspace"
)

func TestGenerateValidates(t *testing.T) {
	cases := []Config{
		{N: 0, Clusters: []ClusterSpec{{Weight: 1, Center: make([]float64, 5)}}},
		{N: 10},
		{N: 10, Clusters: []ClusterSpec{{Weight: 0, Center: make([]float64, 5)}}},
		{N: 10, Clusters: []ClusterSpec{{Weight: 1, Center: make([]float64, 3)}}}, // wrong dim (default 5)
		{N: 10, NoiseFrac: 1.5, Clusters: []ClusterSpec{{Weight: 1, Center: make([]float64, 5)}}},
	}
	for i, cfg := range cases {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DS2Like(60, 42)
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		for j := 0; j < 60; j++ {
			if a.Matrix.At(i, j) != b.Matrix.At(i, j) {
				t.Fatalf("same seed, different matrices at (%d,%d)", i, j)
			}
		}
	}
	c, err := Generate(DS2Like(60, 43))
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 0; i < 60 && same; i++ {
		for j := i + 1; j < 60; j++ {
			if a.Matrix.At(i, j) != c.Matrix.At(i, j) {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds gave identical matrices")
	}
}

func TestBaseIsMetric(t *testing.T) {
	// The pre-inflation base space must satisfy the triangle
	// inequality exactly: geometric distance + per-node penalties.
	s, err := Generate(DS2Like(40, 7))
	if err != nil {
		t.Fatal(err)
	}
	m := s.Base
	n := m.N()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				if i == j || j == k || i == k {
					continue
				}
				if m.At(i, j) > m.At(i, k)+m.At(k, j)+1e-9 {
					t.Fatalf("base space violates TI at (%d,%d,%d)", i, j, k)
				}
			}
		}
	}
}

func TestInflationOnlyStretches(t *testing.T) {
	cfg := DS2Like(80, 11)
	cfg.NoiseSigma = 0 // isolate the inflation/deflation mechanisms
	s, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sawInflated, sawDeflated := false, false
	for i := 0; i < s.Matrix.N(); i++ {
		for j := i + 1; j < s.Matrix.N(); j++ {
			d, b := s.Matrix.At(i, j), s.Base.At(i, j)
			switch {
			case s.WasInflated(i, j):
				sawInflated = true
				if d <= b {
					t.Fatalf("inflated edge (%d,%d) not longer: %g <= %g", i, j, d, b)
				}
				if s.WasDeflated(i, j) {
					t.Fatalf("edge (%d,%d) both inflated and deflated", i, j)
				}
			case s.WasDeflated(i, j):
				sawDeflated = true
				if d >= b {
					t.Fatalf("deflated edge (%d,%d) not shorter: %g >= %g", i, j, d, b)
				}
			case d != b:
				t.Fatalf("untouched edge (%d,%d) changed: %g != %g", i, j, d, b)
			}
		}
	}
	if !sawInflated {
		t.Error("no edges inflated at DS2 defaults")
	}
	if !sawDeflated {
		t.Error("no edges deflated at DS2 defaults")
	}
	if s.InflatedCount() == 0 || s.DeflatedCount() == 0 {
		t.Error("counters zero")
	}
}

func TestLabelsMatchClusters(t *testing.T) {
	s, err := Generate(DS2Like(200, 3))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, l := range s.Labels {
		counts[l]++
	}
	if len(counts) < 3 {
		t.Fatalf("expected >=3 distinct labels, got %v", counts)
	}
	// Cluster 0 has the largest weight so should be the biggest.
	if counts[0] < counts[1] || counts[0] < counts[2] {
		t.Errorf("cluster sizes %v do not respect weights", counts)
	}
	// Intra-cluster base delays should usually be smaller than
	// cross-cluster ones.
	var intra, cross, nIntra, nCross float64
	for i := 0; i < s.Base.N(); i++ {
		for j := i + 1; j < s.Base.N(); j++ {
			if s.Labels[i] == -1 || s.Labels[j] == -1 {
				continue
			}
			if s.Labels[i] == s.Labels[j] {
				intra += s.Base.At(i, j)
				nIntra++
			} else {
				cross += s.Base.At(i, j)
				nCross++
			}
		}
	}
	if nIntra == 0 || nCross == 0 {
		t.Fatal("missing intra or cross edges")
	}
	if intra/nIntra >= cross/nCross {
		t.Errorf("mean intra %g >= mean cross %g", intra/nIntra, cross/nCross)
	}
}

func TestEuclideanIsMetric(t *testing.T) {
	m := Euclidean(30, 400, 5)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	n := m.N()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				if i == j || j == k || i == k {
					continue
				}
				if m.At(i, j) > m.At(i, k)+m.At(k, j)+1e-9 {
					t.Fatalf("Euclidean matrix violates TI")
				}
			}
		}
	}
	if m.MaxDelay() > 500 {
		t.Errorf("max delay %g exceeds requested scale", m.MaxDelay())
	}
}

func TestPresets(t *testing.T) {
	for _, name := range PresetNames {
		cfg, err := FromName(name, 50, 1)
		if err != nil {
			t.Fatal(err)
		}
		s, err := Generate(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Matrix.N() != 50 {
			t.Errorf("%s: N = %d", name, s.Matrix.N())
		}
		size, err := DefaultSize(name)
		if err != nil || size <= 0 {
			t.Errorf("%s: DefaultSize = %d, %v", name, size, err)
		}
	}
	if _, err := FromName("bogus", 10, 1); err == nil {
		t.Error("unknown preset should error")
	}
	if _, err := DefaultSize("bogus"); err == nil {
		t.Error("unknown preset should error")
	}
}

func TestParetoSample(t *testing.T) {
	if got := paretoSample(nil, 0); got != 1 {
		t.Errorf("alpha<=0 should return 1, got %g", got)
	}
}

// Property: generated matrices are valid, delays are finite and
// non-negative, and the matrix max stays within the clamp implied by
// the inflation model.
func TestGenerateProperty(t *testing.T) {
	f := func(seed int64) bool {
		cfg := DS2Like(30, seed)
		cfg.NoiseSigma = 0 // make the MaxFactor clamp exactly checkable
		s, err := Generate(cfg)
		if err != nil {
			return false
		}
		if s.Matrix.Validate() != nil {
			return false
		}
		maxBase := s.Base.MaxDelay()
		for i := 0; i < 30; i++ {
			for j := i + 1; j < 30; j++ {
				d := s.Matrix.At(i, j)
				if math.IsInf(d, 0) || d < 0 {
					return false
				}
				if d > maxBase*5+1e-9 { // MaxFactor = 5 in the DS2 preset
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestSpaceMatrixIsDelayspace(t *testing.T) {
	// Interface check: Space matrices interoperate with delayspace I/O.
	s, err := Generate(P2PSimLike(10, 2))
	if err != nil {
		t.Fatal(err)
	}
	var _ *delayspace.Matrix = s.Matrix
	if s.Matrix.MeasuredPairs() != 45 {
		t.Errorf("complete matrix should have all pairs, got %d", s.Matrix.MeasuredPairs())
	}
}
