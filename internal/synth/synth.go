// Package synth generates synthetic Internet delay spaces with
// realistic triangle inequality violations.
//
// The paper's experiments run on four measured data sets (DS2 4000
// nodes, Meridian 2500, p2psim 1740, PlanetLab 229) that are not
// redistributable. This package replaces them with a generative model
// that reproduces the properties the paper measures:
//
//   - Nodes live in a small number of major clusters ("continents")
//     plus a noise cluster, following the DS2 analysis [35].
//   - The base delay between two nodes is the Euclidean distance of
//     their cluster positions plus per-node access-link penalties.
//     This base space satisfies the triangle inequality exactly
//     (adding non-negative per-node penalties preserves it), so it is
//     violation-free by construction.
//   - Routing inefficiency then inflates a random subset of edges by
//     a heavy-tailed multiplicative factor. Inter-cluster edges are
//     inflated more often (intercontinental routing has many
//     alternative paths of varying quality), and a configurable
//     mid-range "bump" reproduces the irregular severity peak the
//     paper observes around 500–600 ms on DS2 (Fig 4).
//
// Every TIV in the output is therefore attributable to inflation —
// the same mechanism (policy/circuitous routing) the measurement
// literature identifies as the cause of real-world TIVs [39].
package synth

import (
	"fmt"
	"math"
	"math/rand"

	"tivaware/internal/delayspace"
)

// ClusterSpec describes one major cluster of the delay space.
type ClusterSpec struct {
	// Weight is the relative share of non-noise nodes placed in this
	// cluster. Weights are normalized over all clusters.
	Weight float64
	// Center is the cluster center in the latent geometric space, in
	// milliseconds.
	Center []float64
	// Radius scales the Gaussian spread of nodes around the center.
	Radius float64
}

// AccessSpec describes the per-node access link penalty added to both
// endpoints of every edge (log-normal, in milliseconds).
type AccessSpec struct {
	// Median is the median access penalty in ms.
	Median float64
	// Sigma is the log-space standard deviation.
	Sigma float64
	// SatelliteProb is the probability that a node sits behind a
	// high-latency access link (satellite, congested last mile). Such
	// nodes produce genuinely long delays whose alternative paths are
	// equally long — the far-right, low-severity region of the
	// paper's Fig 4/Fig 8 (shortest paths jump beyond ~550 ms).
	SatelliteProb float64
	// SatelliteMedian is the median extra penalty of such links, ms.
	SatelliteMedian float64
}

// InflationSpec describes the routing-inefficiency model that creates
// the TIVs.
type InflationSpec struct {
	// IntraProb is the probability that an intra-cluster edge is
	// inflated.
	IntraProb float64
	// CrossProb is the probability that an inter-cluster edge is
	// inflated.
	CrossProb float64
	// Alpha is the Pareto tail index of the inflation magnitude;
	// smaller alpha gives a heavier tail (more severe TIVs).
	Alpha float64
	// Scale multiplies the Pareto excess: factor = 1 + Scale·(X−1)
	// with X ~ Pareto(Alpha) on [1, ∞).
	Scale float64
	// MaxFactor clamps the inflation factor.
	MaxFactor float64
	// MaxExtraMs additionally clamps the *absolute* extra delay an
	// inflated route can add (0 = unlimited). Circuitous routing adds
	// bounded propagation delay, so the very longest measured delays
	// are genuinely long paths rather than inflated short ones — this
	// is what makes the paper's per-bin severity fall off again beyond
	// the mid-range peak (Figs 4 and 8).
	MaxExtraMs float64
	// BumpLo and BumpHi bound a base-delay band (ms) where inflation
	// is boosted, reproducing the paper's mid-range severity peak.
	// A zero-width band disables the bump.
	BumpLo, BumpHi float64
	// BumpBoost multiplies the inflation probability inside the band.
	BumpBoost float64
	// DeflateProb is the probability that an edge is *deflated* —
	// served by a route faster than the cluster geometry predicts
	// (private backbones, direct peering). Deflated edges do not
	// violate the triangle inequality themselves; they make *other*
	// edges violate, which is what spreads slight TIVs across the
	// whole delay space in measured data.
	DeflateProb float64
	// DeflateScale scales the Pareto excess of the deflation:
	// factor = 1 / (1 + DeflateScale·(X−1)).
	DeflateScale float64
	// MinFactor clamps the deflation factor from below (0 means 0.4).
	MinFactor float64
}

// Config fully determines a synthetic delay space.
type Config struct {
	// N is the number of nodes. Must be positive.
	N int
	// Dim is the latent space dimension. Zero means 5, matching the
	// 5-D embedding the paper uses for Vivaldi.
	Dim int
	// Clusters lists the major clusters. Must be non-empty.
	Clusters []ClusterSpec
	// NoiseFrac is the fraction of nodes not belonging to any major
	// cluster; they are scattered uniformly across the bounding box
	// of the cluster centers.
	NoiseFrac float64
	// Access is the access-link penalty model.
	Access AccessSpec
	// Inflation is the TIV model.
	Inflation InflationSpec
	// NoiseSigma is the log-space standard deviation of per-edge
	// multiplicative measurement noise applied to every delay. Real
	// matrices carry such noise on every pair, which is why the paper
	// finds that "most of the edges only cause slight violations" —
	// without it, un-inflated edges would be exactly metric and cause
	// none. Zero disables noise (useful for attribution tests).
	NoiseSigma float64
	// MissingFrac drops this fraction of measurements from the final
	// matrix (delayspace.Missing). The measured data sets have such
	// holes — Fig 3 draws them as black points — and every analysis
	// must skip them rather than treat them as zero delay.
	MissingFrac float64
	// Seed makes generation deterministic.
	Seed int64
}

// Space is a generated delay space together with its ground truth,
// which tests and experiments use to validate clustering and TIV
// attribution.
type Space struct {
	// Matrix is the final delay matrix (base + inflation).
	Matrix *delayspace.Matrix
	// Base is the violation-free metric base matrix.
	Base *delayspace.Matrix
	// Labels holds the planted cluster of each node; -1 marks noise.
	Labels []int
	// Positions are the latent coordinates, one per node.
	Positions [][]float64
	// Inflated[e] reports whether edge e (i*N+j, i<j) was inflated;
	// exposed via WasInflated.
	inflated map[[2]int]bool
	deflated map[[2]int]bool
}

// WasInflated reports whether the generator inflated the edge (i, j).
func (s *Space) WasInflated(i, j int) bool {
	if i > j {
		i, j = j, i
	}
	return s.inflated[[2]int{i, j}]
}

// InflatedCount returns the number of inflated edges.
func (s *Space) InflatedCount() int { return len(s.inflated) }

// WasDeflated reports whether the generator deflated the edge (i, j).
func (s *Space) WasDeflated(i, j int) bool {
	if i > j {
		i, j = j, i
	}
	return s.deflated[[2]int{i, j}]
}

// DeflatedCount returns the number of deflated edges.
func (s *Space) DeflatedCount() int { return len(s.deflated) }

// Generate builds a Space from cfg.
func Generate(cfg Config) (*Space, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("synth: N = %d, want positive", cfg.N)
	}
	if len(cfg.Clusters) == 0 {
		return nil, fmt.Errorf("synth: no clusters configured")
	}
	if cfg.NoiseFrac < 0 || cfg.NoiseFrac >= 1 {
		return nil, fmt.Errorf("synth: NoiseFrac %g outside [0,1)", cfg.NoiseFrac)
	}
	if cfg.MissingFrac < 0 || cfg.MissingFrac >= 1 {
		return nil, fmt.Errorf("synth: MissingFrac %g outside [0,1)", cfg.MissingFrac)
	}
	dim := cfg.Dim
	if dim == 0 {
		dim = 5
	}
	var totalWeight float64
	for i, c := range cfg.Clusters {
		if c.Weight <= 0 {
			return nil, fmt.Errorf("synth: cluster %d weight %g, want positive", i, c.Weight)
		}
		if len(c.Center) != dim {
			return nil, fmt.Errorf("synth: cluster %d center has %d dims, want %d", i, len(c.Center), dim)
		}
		totalWeight += c.Weight
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Assign nodes to clusters (or noise) and place them.
	labels := make([]int, cfg.N)
	positions := make([][]float64, cfg.N)
	lo, hi := boundingBox(cfg.Clusters, dim)
	for i := 0; i < cfg.N; i++ {
		if rng.Float64() < cfg.NoiseFrac {
			labels[i] = -1
			p := make([]float64, dim)
			for d := 0; d < dim; d++ {
				p[d] = lo[d] + rng.Float64()*(hi[d]-lo[d])
			}
			positions[i] = p
			continue
		}
		c := pickCluster(rng, cfg.Clusters, totalWeight)
		labels[i] = c
		spec := cfg.Clusters[c]
		p := make([]float64, dim)
		for d := 0; d < dim; d++ {
			p[d] = spec.Center[d] + rng.NormFloat64()*spec.Radius
		}
		positions[i] = p
	}

	// Per-node access penalties (log-normal), with an optional heavy
	// satellite tail.
	access := make([]float64, cfg.N)
	if cfg.Access.Median > 0 {
		mu := math.Log(cfg.Access.Median)
		for i := range access {
			access[i] = math.Exp(mu + rng.NormFloat64()*cfg.Access.Sigma)
		}
	}
	if cfg.Access.SatelliteProb > 0 && cfg.Access.SatelliteMedian > 0 {
		mu := math.Log(cfg.Access.SatelliteMedian)
		for i := range access {
			if rng.Float64() < cfg.Access.SatelliteProb {
				access[i] += math.Exp(mu + rng.NormFloat64()*0.3)
			}
		}
	}

	// Base metric matrix.
	base := delayspace.New(cfg.N)
	for i := 0; i < cfg.N; i++ {
		for j := i + 1; j < cfg.N; j++ {
			base.Set(i, j, euclid(positions[i], positions[j])+access[i]+access[j])
		}
	}

	// Inflate and deflate.
	final := base.Clone()
	inflated := make(map[[2]int]bool)
	deflated := make(map[[2]int]bool)
	inf := cfg.Inflation
	minFactor := inf.MinFactor
	if minFactor <= 0 {
		minFactor = 0.4
	}
	for i := 0; i < cfg.N; i++ {
		for j := i + 1; j < cfg.N; j++ {
			d0 := base.At(i, j)

			// Deflation first: a fast private route replaces the
			// geometric path outright; such an edge is never also
			// inflated.
			if inf.DeflateProb > 0 && rng.Float64() < inf.DeflateProb {
				factor := 1 / (1 + inf.DeflateScale*(paretoSample(rng, inf.Alpha)-1))
				if factor < minFactor {
					factor = minFactor
				}
				if factor < 1 {
					final.Set(i, j, d0*factor)
					deflated[[2]int{i, j}] = true
					continue
				}
			}

			p := inf.IntraProb
			if labels[i] != labels[j] || labels[i] == -1 {
				p = inf.CrossProb
			}
			if inf.BumpHi > inf.BumpLo && d0 >= inf.BumpLo && d0 < inf.BumpHi {
				p *= inf.BumpBoost
			}
			if p <= 0 || rng.Float64() >= p {
				continue
			}
			factor := 1 + inf.Scale*(paretoSample(rng, inf.Alpha)-1)
			if inf.MaxFactor > 1 && factor > inf.MaxFactor {
				factor = inf.MaxFactor
			}
			if inf.MaxExtraMs > 0 && d0*(factor-1) > inf.MaxExtraMs {
				factor = 1 + inf.MaxExtraMs/d0
			}
			if factor <= 1 {
				continue
			}
			final.Set(i, j, d0*factor)
			inflated[[2]int{i, j}] = true
		}
	}

	// Measurement noise: every edge wobbles a little, so nearly every
	// edge ends up in at least a few slight violations, matching the
	// gradual rise of the paper's severity CDFs (Fig 2).
	if cfg.NoiseSigma > 0 {
		for i := 0; i < cfg.N; i++ {
			for j := i + 1; j < cfg.N; j++ {
				final.Set(i, j, final.At(i, j)*math.Exp(rng.NormFloat64()*cfg.NoiseSigma))
			}
		}
	}

	// Measurement holes.
	if cfg.MissingFrac > 0 {
		for i := 0; i < cfg.N; i++ {
			for j := i + 1; j < cfg.N; j++ {
				if rng.Float64() < cfg.MissingFrac {
					final.Set(i, j, delayspace.Missing)
				}
			}
		}
	}

	s := &Space{
		Matrix:    final,
		Base:      base,
		Labels:    labels,
		Positions: positions,
		inflated:  inflated,
		deflated:  deflated,
	}
	if err := s.Matrix.Validate(); err != nil {
		return nil, fmt.Errorf("synth: generated invalid matrix: %w", err)
	}
	return s, nil
}

func boundingBox(clusters []ClusterSpec, dim int) (lo, hi []float64) {
	lo = make([]float64, dim)
	hi = make([]float64, dim)
	for d := 0; d < dim; d++ {
		lo[d] = math.Inf(1)
		hi[d] = math.Inf(-1)
	}
	for _, c := range clusters {
		for d := 0; d < dim; d++ {
			if c.Center[d]-2*c.Radius < lo[d] {
				lo[d] = c.Center[d] - 2*c.Radius
			}
			if c.Center[d]+2*c.Radius > hi[d] {
				hi[d] = c.Center[d] + 2*c.Radius
			}
		}
	}
	return lo, hi
}

func pickCluster(rng *rand.Rand, clusters []ClusterSpec, total float64) int {
	r := rng.Float64() * total
	for i, c := range clusters {
		r -= c.Weight
		if r < 0 {
			return i
		}
	}
	return len(clusters) - 1
}

// paretoSample draws from a Pareto distribution on [1, ∞) with tail
// index alpha (alpha <= 0 degenerates to the constant 1).
func paretoSample(rng *rand.Rand, alpha float64) float64 {
	if alpha <= 0 {
		return 1
	}
	u := rng.Float64()
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	return math.Pow(u, -1/alpha)
}

func euclid(a, b []float64) float64 {
	var s float64
	for d := range a {
		diff := a[d] - b[d]
		s += diff * diff
	}
	return math.Sqrt(s)
}
