package synth

import (
	"fmt"
	"math/rand"

	"tivaware/internal/delayspace"
)

// The presets below stand in for the paper's four measured data sets.
// Each tunes the cluster layout and inflation model so the resulting
// TIV severity CDF, severity-vs-delay profile, and cluster structure
// match the corresponding figures (Figs 2, 4–7, 9; see EXPERIMENTS.md
// for the measured comparison).

// deflateProb returns a deflation probability giving each node about
// k deflated ("private shortcut") partners regardless of matrix size.
// A constant probability would scale the shortcut count with N and at
// large N let shortcut edges dominate every 32-strong neighbor set,
// destabilizing the embedding; a constant per-node count matches how
// backbone shortcuts behave and keeps dynamic-neighbor Vivaldi's
// improvement monotone at every scale (Fig 23).
func deflateProb(k float64, n int) float64 {
	if n <= 0 {
		return 0
	}
	p := k / float64(n)
	if p > 0.04 {
		p = 0.04
	}
	return p
}

// DS2Like mimics the DS2 4000-node matrix [35]: three major clusters
// (the paper's "major continents"), a noise cluster, and a mid-band
// inflation bump around 500–600 ms producing the severity peak of
// Fig 4. n is the node count (the paper uses 4000; experiments here
// default to smaller sizes) and seed fixes the randomness.
func DS2Like(n int, seed int64) Config {
	return Config{
		N:   n,
		Dim: 5,
		Clusters: []ClusterSpec{
			{Weight: 0.50, Center: []float64{0, 0, 0, 0, 0}, Radius: 16},       // N. America
			{Weight: 0.32, Center: []float64{110, 20, 0, 0, 0}, Radius: 14},    // Europe
			{Weight: 0.18, Center: []float64{160, -130, 30, 0, 0}, Radius: 18}, // Asia
		},
		NoiseFrac: 0.08,
		Access: AccessSpec{
			Median: 6, Sigma: 0.6,
			SatelliteProb: 0.07, SatelliteMedian: 180,
		},
		Inflation: InflationSpec{
			IntraProb:    0.02,
			CrossProb:    0.07,
			Alpha:        2.2,
			Scale:        1.0,
			MaxFactor:    5,
			MaxExtraMs:   350,
			BumpLo:       180,
			BumpHi:       260,
			BumpBoost:    2.4,
			DeflateProb:  deflateProb(5, n),
			DeflateScale: 0.8,
		},
		// Calibrated so ~12% of triangles violate the TI (the paper's
		// measured DS2 number), ~2/3 of edges cause at least a slight
		// violation, and the per-bin median severity peaks around
		// 600 ms then falls off (see TestDS2TriangleFraction and
		// TestSeverityPeakMidRange).
		NoiseSigma: 0.05,
		Seed:       seed,
	}
}

// MeridianLike mimics the Meridian 2500-node data set [34], whose
// severity tail is the heaviest of the four (Fig 6 reaches severity
// ≈20): fewer, tighter clusters and a heavier inflation tail.
func MeridianLike(n int, seed int64) Config {
	return Config{
		N:   n,
		Dim: 5,
		Clusters: []ClusterSpec{
			{Weight: 0.55, Center: []float64{0, 0, 0, 0, 0}, Radius: 12},
			{Weight: 0.30, Center: []float64{100, 30, 0, 0, 0}, Radius: 12},
			{Weight: 0.15, Center: []float64{170, -120, 0, 0, 0}, Radius: 16},
		},
		NoiseFrac: 0.06,
		Access: AccessSpec{
			Median: 5, Sigma: 0.7,
			SatelliteProb: 0.05, SatelliteMedian: 150,
		},
		Inflation: InflationSpec{
			IntraProb:    0.025,
			CrossProb:    0.09,
			Alpha:        1.6, // heavier tail than DS2
			Scale:        1.2,
			MaxFactor:    8,
			MaxExtraMs:   500,
			BumpLo:       150,
			BumpHi:       240,
			BumpBoost:    2.0,
			DeflateProb:  deflateProb(6, n),
			DeflateScale: 1.0,
		},
		NoiseSigma: 0.06,
		Seed:       seed,
	}
}

// P2PSimLike mimics the p2psim 1740-node King data set [19]: King
// measurements are between DNS servers, giving smaller access
// penalties and a milder severity profile (Fig 5 tops out near 3).
func P2PSimLike(n int, seed int64) Config {
	return Config{
		N:   n,
		Dim: 5,
		Clusters: []ClusterSpec{
			{Weight: 0.48, Center: []float64{0, 0, 0, 0, 0}, Radius: 18},
			{Weight: 0.34, Center: []float64{95, 15, 0, 0, 0}, Radius: 16},
			{Weight: 0.18, Center: []float64{150, -110, 20, 0, 0}, Radius: 20},
		},
		NoiseFrac: 0.10,
		Access: AccessSpec{
			Median: 3, Sigma: 0.5,
			SatelliteProb: 0.04, SatelliteMedian: 120,
		},
		Inflation: InflationSpec{
			IntraProb:    0.015,
			CrossProb:    0.05,
			Alpha:        3.0, // light tail
			Scale:        0.8,
			MaxFactor:    3.5,
			MaxExtraMs:   250,
			DeflateProb:  deflateProb(3, n),
			DeflateScale: 0.6,
		},
		NoiseSigma: 0.04,
		Seed:       seed,
	}
}

// PlanetLabLike mimics the authors' 229-node PlanetLab matrix:
// research networks (GREN) with one dominant academic cluster, many
// satellites, and occasional pathological routes (Fig 7 shows severity
// up to ≈14 despite the small size).
func PlanetLabLike(n int, seed int64) Config {
	return Config{
		N:   n,
		Dim: 5,
		Clusters: []ClusterSpec{
			{Weight: 0.60, Center: []float64{0, 0, 0, 0, 0}, Radius: 20},
			{Weight: 0.25, Center: []float64{90, 25, 0, 0, 0}, Radius: 15},
			{Weight: 0.15, Center: []float64{150, -125, 25, 0, 0}, Radius: 22},
		},
		NoiseFrac: 0.12,
		Access: AccessSpec{
			Median: 2, Sigma: 0.8,
			SatelliteProb: 0.08, SatelliteMedian: 150,
		},
		Inflation: InflationSpec{
			IntraProb:    0.03,
			CrossProb:    0.08,
			Alpha:        1.8,
			Scale:        1.1,
			MaxFactor:    7,
			MaxExtraMs:   450,
			DeflateProb:  deflateProb(6, n),
			DeflateScale: 0.9,
		},
		NoiseSigma: 0.07,
		Seed:       seed,
	}
}

// Euclidean returns a violation-free delay matrix: n points uniform in
// a 5-D box scaled so delays fall in roughly [0, maxDelay] ms. This is
// the "artificial Euclidean matrix" baseline of Fig 14, where Meridian
// should almost always find the true nearest neighbor.
func Euclidean(n int, maxDelay float64, seed int64) *delayspace.Matrix {
	rng := rand.New(rand.NewSource(seed))
	const dim = 5
	side := maxDelay / 2 // box diagonal ≈ maxDelay at dim 5 with factor ~2.2; keep delays within range
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, dim)
		for d := range p {
			p[d] = rng.Float64() * side
		}
		pts[i] = p
	}
	m := delayspace.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.Set(i, j, euclid(pts[i], pts[j]))
		}
	}
	return m
}

// Preset names accepted by FromName, in the order the paper lists the
// data sets.
var PresetNames = []string{"ds2", "meridian", "p2psim", "planetlab"}

// DefaultSize returns the node count of the original data set behind a
// preset, for callers that want paper-scale runs.
func DefaultSize(name string) (int, error) {
	switch name {
	case "ds2":
		return 4000, nil
	case "meridian":
		return 2500, nil
	case "p2psim":
		return 1740, nil
	case "planetlab":
		return 229, nil
	default:
		return 0, fmt.Errorf("synth: unknown preset %q", name)
	}
}

// FromName returns the preset config for one of PresetNames.
func FromName(name string, n int, seed int64) (Config, error) {
	switch name {
	case "ds2":
		return DS2Like(n, seed), nil
	case "meridian":
		return MeridianLike(n, seed), nil
	case "p2psim":
		return P2PSimLike(n, seed), nil
	case "planetlab":
		return PlanetLabLike(n, seed), nil
	default:
		return Config{}, fmt.Errorf("synth: unknown preset %q (want one of %v)", name, PresetNames)
	}
}
