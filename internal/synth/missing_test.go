package synth

import (
	"testing"

	"tivaware/internal/cluster"
	"tivaware/internal/tiv"
	"tivaware/internal/vivaldi"
)

func TestMissingFracValidation(t *testing.T) {
	cfg := DS2Like(20, 1)
	cfg.MissingFrac = 1.5
	if _, err := Generate(cfg); err == nil {
		t.Error("MissingFrac > 1 should error")
	}
	cfg.MissingFrac = -0.1
	if _, err := Generate(cfg); err == nil {
		t.Error("negative MissingFrac should error")
	}
}

func TestMissingFracDropsPairs(t *testing.T) {
	cfg := DS2Like(100, 3)
	cfg.MissingFrac = 0.2
	s, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := 100 * 99 / 2
	measured := s.Matrix.MeasuredPairs()
	frac := 1 - float64(measured)/float64(total)
	if frac < 0.15 || frac > 0.25 {
		t.Errorf("dropped fraction %.3f, want ~0.2", frac)
	}
	if err := s.Matrix.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAnalysesCopeWithHoles(t *testing.T) {
	// Every analysis layer must skip Missing pairs rather than treat
	// them as zero delay: run the §2 severity analysis, clustering,
	// and a Vivaldi embedding end to end over a holey matrix.
	cfg := DS2Like(80, 7)
	cfg.MissingFrac = 0.3
	s, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sev := tiv.AllSeverities(s.Matrix, tiv.Options{})
	for _, v := range sev.Values() {
		if v < 0 {
			t.Fatal("negative severity over holey matrix")
		}
	}
	if _, err := cluster.Cluster(s.Matrix, cluster.Options{Seed: 1}); err != nil {
		t.Fatalf("clustering over holes: %v", err)
	}
	sys, err := vivaldi.NewSystem(s.Matrix, vivaldi.Config{Seed: 2, Neighbors: 16})
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(30)
	// Neighbors must only span measured pairs.
	for i := 0; i < sys.N(); i++ {
		for _, j := range sys.Neighbors(i) {
			if !s.Matrix.Has(i, j) {
				t.Fatalf("node %d probes unmeasured pair (%d,%d)", i, i, j)
			}
		}
	}
}
