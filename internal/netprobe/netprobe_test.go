package netprobe

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

func newAgent(t *testing.T) *Agent {
	t.Helper()
	a, err := NewAgent("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	return a
}

func TestProbeRoundTrip(t *testing.T) {
	a := newAgent(t)
	b := newAgent(t)
	rtt, err := a.Probe(b.Addr(), ProbeOptions{Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if rtt < 0 || rtt > 1000 {
		t.Errorf("loopback RTT %g ms out of range", rtt)
	}
}

func TestProbeBothDirections(t *testing.T) {
	a := newAgent(t)
	b := newAgent(t)
	if _, err := a.Probe(b.Addr(), ProbeOptions{}); err != nil {
		t.Fatalf("a->b: %v", err)
	}
	if _, err := b.Probe(a.Addr(), ProbeOptions{}); err != nil {
		t.Fatalf("b->a: %v", err)
	}
}

func TestProbeTimeout(t *testing.T) {
	a := newAgent(t)
	// A blackhole: bind a plain UDP socket that never answers.
	hole, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer hole.Close()
	start := time.Now()
	_, err = a.Probe(hole.LocalAddr().(*net.UDPAddr), ProbeOptions{Timeout: 50 * time.Millisecond})
	if err == nil {
		t.Fatal("expected timeout")
	}
	if !errors.Is(err, ErrTimeout) {
		t.Errorf("error %v is not ErrTimeout", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Error("timeout took far too long")
	}
}

func TestProbeRetries(t *testing.T) {
	a := newAgent(t)
	hole, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer hole.Close()
	start := time.Now()
	_, err = a.Probe(hole.LocalAddr().(*net.UDPAddr), ProbeOptions{Timeout: 30 * time.Millisecond, Retries: 2})
	if err == nil {
		t.Fatal("expected failure")
	}
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond {
		t.Errorf("3 attempts finished in %v; retries not attempted", elapsed)
	}
}

func TestProbeAfterClose(t *testing.T) {
	a := newAgent(t)
	b := newAgent(t)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Probe(b.Addr(), ProbeOptions{}); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v, want ErrClosed", err)
	}
	// Double close is fine.
	if err := a.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestIgnoresGarbagePackets(t *testing.T) {
	a := newAgent(t)
	b := newAgent(t)
	// Blast garbage at agent a; it must survive and still answer.
	garbage, err := net.DialUDP("udp", nil, a.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer garbage.Close()
	for i := 0; i < 10; i++ {
		if _, err := garbage.Write([]byte("not a tiv packet")); err != nil {
			t.Fatal(err)
		}
		if _, err := garbage.Write([]byte{0}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := b.Probe(a.Addr(), ProbeOptions{Timeout: time.Second}); err != nil {
		t.Errorf("agent broken after garbage: %v", err)
	}
}

func TestConcurrentProbes(t *testing.T) {
	a := newAgent(t)
	b := newAgent(t)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := a.Probe(b.Addr(), ProbeOptions{Timeout: time.Second}); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent probe: %v", err)
	}
}

func TestClusterMeasureMatrix(t *testing.T) {
	c, err := NewCluster(4, "127.0.0.1", ProbeOptions{Timeout: time.Second, Retries: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitReady(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	m, err := c.MeasureMatrix(4)
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 4 {
		t.Fatalf("matrix size %d", m.N())
	}
	if got := m.MeasuredPairs(); got != 6 {
		t.Errorf("measured %d of 6 pairs", got)
	}
	if m.MaxDelay() > 1000 {
		t.Errorf("implausible loopback delay %g ms", m.MaxDelay())
	}
}

func TestClusterRTTInterface(t *testing.T) {
	c, err := NewCluster(3, "127.0.0.1", ProbeOptions{Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if d, ok := c.RTT(1, 1); !ok || d != 0 {
		t.Errorf("self RTT = %g, %v", d, ok)
	}
	if _, ok := c.RTT(0, 9); ok {
		t.Error("out of range should fail")
	}
	if _, ok := c.RTT(0, 1); !ok {
		t.Error("valid probe failed")
	}
	if c.N() != 3 || c.Agent(0) == nil {
		t.Error("accessors broken")
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(1, "127.0.0.1", ProbeOptions{}); err == nil {
		t.Error("tiny cluster should error")
	}
}
