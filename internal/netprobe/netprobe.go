// Package netprobe measures round-trip times over real UDP sockets.
//
// It is the deployment-grade counterpart of internal/nsim: an Agent
// owns one UDP socket and both answers echo requests and issues
// probes, so a set of agents can measure the full pairwise delay
// matrix that the analysis and neighbor-selection machinery consume.
// The wire protocol is a 21-byte datagram:
//
//	bytes 0..3   magic "TIVP"
//	byte  4      type: 0 request, 1 reply
//	bytes 5..12  sequence number (big endian)
//	bytes 13..20 sender timestamp, ns (big endian, echoed verbatim)
//
// Replies echo the sequence and timestamp so the prober can match
// responses and compute the RTT from its own clock without any clock
// synchronization between hosts.
package netprobe

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

const (
	packetLen   = 21
	typeRequest = 0
	typeReply   = 1
)

var magic = [4]byte{'T', 'I', 'V', 'P'}

// ErrClosed is returned by probes issued after the agent shut down.
var ErrClosed = errors.New("netprobe: agent closed")

// ErrTimeout is returned when no reply arrived within the deadline
// (after retries).
var ErrTimeout = errors.New("netprobe: probe timed out")

// Agent is one probing endpoint: a UDP socket that answers incoming
// echo requests and measures RTTs to other agents. It is safe for
// concurrent use.
type Agent struct {
	conn *net.UDPConn

	mu      sync.Mutex
	pending map[uint64]chan time.Duration
	nextSeq uint64
	closed  bool

	wg sync.WaitGroup
}

// NewAgent opens an agent on the given UDP address ("127.0.0.1:0"
// picks an ephemeral loopback port).
func NewAgent(listenAddr string) (*Agent, error) {
	addr, err := net.ResolveUDPAddr("udp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("netprobe: resolving %q: %w", listenAddr, err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("netprobe: listening on %q: %w", listenAddr, err)
	}
	a := &Agent{
		conn:    conn,
		pending: make(map[uint64]chan time.Duration),
	}
	a.wg.Add(1)
	go a.readLoop()
	return a, nil
}

// Addr returns the agent's bound UDP address.
func (a *Agent) Addr() *net.UDPAddr { return a.conn.LocalAddr().(*net.UDPAddr) }

// Close shuts the agent down and releases the socket. Outstanding
// probes fail with ErrClosed.
func (a *Agent) Close() error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return nil
	}
	a.closed = true
	for seq, ch := range a.pending {
		close(ch)
		delete(a.pending, seq)
	}
	a.mu.Unlock()
	err := a.conn.Close()
	a.wg.Wait()
	return err
}

// readLoop dispatches incoming datagrams: requests are echoed back as
// replies, replies complete the matching pending probe.
func (a *Agent) readLoop() {
	defer a.wg.Done()
	buf := make([]byte, 64)
	for {
		n, peer, err := a.conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		if n < packetLen || [4]byte(buf[0:4]) != magic {
			continue // not ours
		}
		switch buf[4] {
		case typeRequest:
			reply := make([]byte, packetLen)
			copy(reply, buf[:packetLen])
			reply[4] = typeReply
			// Best effort: a lost reply shows up as a probe timeout on
			// the other side, exactly like a lost ping.
			_, _ = a.conn.WriteToUDP(reply, peer)
		case typeReply:
			seq := binary.BigEndian.Uint64(buf[5:13])
			sentNs := binary.BigEndian.Uint64(buf[13:21])
			rtt := time.Duration(time.Now().UnixNano() - int64(sentNs))
			if rtt < 0 {
				rtt = 0
			}
			a.mu.Lock()
			ch, ok := a.pending[seq]
			if ok {
				delete(a.pending, seq)
			}
			a.mu.Unlock()
			if ok {
				ch <- rtt
				close(ch)
			}
		}
	}
}

// ProbeOptions tunes a measurement.
type ProbeOptions struct {
	// Timeout per attempt. Zero means 500 ms.
	Timeout time.Duration
	// Retries is the number of additional attempts after a timeout.
	Retries int
}

func (o ProbeOptions) timeout() time.Duration {
	if o.Timeout > 0 {
		return o.Timeout
	}
	return 500 * time.Millisecond
}

// Probe measures the RTT to the peer agent at addr and returns it in
// milliseconds.
func (a *Agent) Probe(addr *net.UDPAddr, opts ProbeOptions) (float64, error) {
	attempts := opts.Retries + 1
	var lastErr error = ErrTimeout
	for try := 0; try < attempts; try++ {
		rtt, err := a.probeOnce(addr, opts.timeout())
		if err == nil {
			return float64(rtt) / float64(time.Millisecond), nil
		}
		if errors.Is(err, ErrClosed) {
			return 0, err
		}
		lastErr = err
	}
	return 0, fmt.Errorf("netprobe: probing %s: %w", addr, lastErr)
}

func (a *Agent) probeOnce(addr *net.UDPAddr, timeout time.Duration) (time.Duration, error) {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return 0, ErrClosed
	}
	a.nextSeq++
	seq := a.nextSeq
	ch := make(chan time.Duration, 1)
	a.pending[seq] = ch
	a.mu.Unlock()

	pkt := make([]byte, packetLen)
	copy(pkt[0:4], magic[:])
	pkt[4] = typeRequest
	binary.BigEndian.PutUint64(pkt[5:13], seq)
	binary.BigEndian.PutUint64(pkt[13:21], uint64(time.Now().UnixNano()))
	if _, err := a.conn.WriteToUDP(pkt, addr); err != nil {
		a.abandon(seq)
		return 0, fmt.Errorf("netprobe: send: %w", err)
	}

	select {
	case rtt, ok := <-ch:
		if !ok {
			return 0, ErrClosed
		}
		return rtt, nil
	case <-time.After(timeout):
		a.abandon(seq)
		return 0, ErrTimeout
	}
}

func (a *Agent) abandon(seq uint64) {
	a.mu.Lock()
	if ch, ok := a.pending[seq]; ok {
		delete(a.pending, seq)
		close(ch)
	}
	a.mu.Unlock()
}
