package netprobe

import (
	"fmt"
	"net"
	"sync"
	"time"

	"tivaware/internal/delayspace"
)

// Cluster runs several agents in one process (typically on loopback)
// and exposes them through the same RTT interface the simulated
// prober implements, so examples and tests can drive Vivaldi or
// Meridian over real sockets.
type Cluster struct {
	agents []*Agent
	addrs  []*net.UDPAddr
	opts   ProbeOptions
}

// NewCluster starts n agents on the given host (use "127.0.0.1" for
// loopback). On any failure it tears down the agents already started.
func NewCluster(n int, host string, opts ProbeOptions) (*Cluster, error) {
	if n < 2 {
		return nil, fmt.Errorf("netprobe: cluster needs at least 2 agents, got %d", n)
	}
	c := &Cluster{opts: opts}
	for i := 0; i < n; i++ {
		a, err := NewAgent(net.JoinHostPort(host, "0"))
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("netprobe: starting agent %d: %w", i, err)
		}
		c.agents = append(c.agents, a)
		c.addrs = append(c.addrs, a.Addr())
	}
	return c, nil
}

// N returns the number of agents.
func (c *Cluster) N() int { return len(c.agents) }

// Agent returns agent i.
func (c *Cluster) Agent(i int) *Agent { return c.agents[i] }

// RTT implements the prober interface over real sockets: agent i
// measures agent j. The boolean is false on probe failure.
func (c *Cluster) RTT(i, j int) (float64, bool) {
	if i < 0 || j < 0 || i >= len(c.agents) || j >= len(c.agents) {
		return 0, false
	}
	if i == j {
		return 0, true
	}
	rtt, err := c.agents[i].Probe(c.addrs[j], c.opts)
	if err != nil {
		return 0, false
	}
	return rtt, true
}

// MeasureMatrix probes every agent pair (both directions, averaged by
// the matrix's symmetrization) with bounded concurrency and returns
// the resulting delay matrix in milliseconds. Pairs whose probes all
// fail are left Missing.
func (c *Cluster) MeasureMatrix(parallel int) (*delayspace.Matrix, error) {
	if parallel <= 0 {
		parallel = 8
	}
	n := len(c.agents)
	m := delayspace.New(n)
	type pair struct{ i, j int }
	work := make(chan pair)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range work {
				if rtt, ok := c.RTT(p.i, p.j); ok {
					mu.Lock()
					m.Set(p.i, p.j, rtt)
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			work <- pair{i, j}
		}
	}
	close(work)
	wg.Wait()
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// Close shuts every agent down. The first error is returned but all
// agents are closed regardless.
func (c *Cluster) Close() error {
	var first error
	for _, a := range c.agents {
		if a == nil {
			continue
		}
		if err := a.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// WaitReady probes agent 0 from agent 1 until it responds or the
// deadline passes, giving tests a cheap readiness barrier.
func (c *Cluster) WaitReady(deadline time.Duration) error {
	if len(c.agents) < 2 {
		return fmt.Errorf("netprobe: cluster too small")
	}
	stop := time.Now().Add(deadline)
	for time.Now().Before(stop) {
		if _, err := c.agents[1].Probe(c.addrs[0], ProbeOptions{Timeout: 100 * time.Millisecond}); err == nil {
			return nil
		}
	}
	return ErrTimeout
}
