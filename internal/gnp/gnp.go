// Package gnp implements GNP (Global Network Positioning, Ng & Zhang
// [17]) — the centralized, landmark-based network coordinate system
// the paper's related work contrasts with Vivaldi. GNP is included as
// an additional baseline: like Vivaldi it embeds delays into a metric
// space and therefore inherits the same TIV blindness, which the
// ablate-gnp experiment quantifies.
//
// Construction has two phases, as in the original system:
//
//  1. The landmarks solve a joint embedding: their coordinates
//     minimize the squared error against the measured landmark-to-
//     landmark delays.
//  2. Every ordinary host independently minimizes the squared error
//     of its delays to the landmarks, holding landmark coordinates
//     fixed.
//
// The original paper uses Simplex Downhill for both minimizations;
// this implementation uses gradient descent with momentum, which
// reaches equivalent stress on these objectives and is simpler to
// verify.
package gnp

import (
	"fmt"
	"math"
	"math/rand"

	"tivaware/internal/delayspace"
)

// Config tunes a GNP build.
type Config struct {
	// Landmarks is the number of landmark nodes. Zero means 15, the
	// GNP paper's typical setting.
	Landmarks int
	// Dim is the embedding dimension. Zero means 5, matching the rest
	// of this repository.
	Dim int
	// Iters bounds the gradient-descent iterations per phase. Zero
	// means 2000.
	Iters int
	// Seed fixes landmark choice and initialization.
	Seed int64
}

func (c Config) landmarks() int {
	if c.Landmarks > 0 {
		return c.Landmarks
	}
	return 15
}

func (c Config) dim() int {
	if c.Dim > 0 {
		return c.Dim
	}
	return 5
}

func (c Config) iters() int {
	if c.Iters > 0 {
		return c.Iters
	}
	return 2000
}

// System holds the computed coordinates.
type System struct {
	coords [][]float64
	lm     []int
}

// Build computes GNP coordinates for every node of m. All landmark
// pairs must be measured; hosts with no measured landmark delays get
// the origin (predicting ~0 to everything).
func Build(m *delayspace.Matrix, cfg Config) (*System, error) {
	n := m.N()
	l := cfg.landmarks()
	dim := cfg.dim()
	if l > n {
		return nil, fmt.Errorf("gnp: %d landmarks for %d nodes", l, n)
	}
	if l < dim+1 {
		return nil, fmt.Errorf("gnp: %d landmarks cannot span %d dimensions", l, dim)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	lm := rng.Perm(n)[:l]

	// Phase 1: joint landmark embedding.
	lmDelay := make([][]float64, l)
	var scale float64
	for a := range lmDelay {
		lmDelay[a] = make([]float64, l)
		for b := 0; b < l; b++ {
			if a == b {
				continue
			}
			d := m.At(lm[a], lm[b])
			if d == delayspace.Missing {
				return nil, fmt.Errorf("gnp: landmarks %d,%d unmeasured", lm[a], lm[b])
			}
			lmDelay[a][b] = d
			if d > scale {
				scale = d
			}
		}
	}
	if scale == 0 {
		scale = 1
	}
	lmCoords := make([][]float64, l)
	for a := range lmCoords {
		lmCoords[a] = make([]float64, dim)
		for d := range lmCoords[a] {
			lmCoords[a][d] = (rng.Float64() - 0.5) * scale
		}
	}
	descendLandmarks(lmCoords, lmDelay, cfg.iters())

	sys := &System{coords: make([][]float64, n), lm: append([]int(nil), lm...)}
	isLandmark := make(map[int]int, l)
	for a, id := range lm {
		isLandmark[id] = a
	}
	for i := 0; i < n; i++ {
		if a, ok := isLandmark[i]; ok {
			sys.coords[i] = append([]float64(nil), lmCoords[a]...)
			continue
		}
		// Phase 2: fit this host against the landmarks it can measure.
		var targets [][]float64
		var dists []float64
		for a := 0; a < l; a++ {
			d := m.At(i, lm[a])
			if d == delayspace.Missing {
				continue
			}
			targets = append(targets, lmCoords[a])
			dists = append(dists, d)
		}
		if len(targets) < dim+1 {
			sys.coords[i] = make([]float64, dim)
			continue
		}
		// Start at the closest landmark's position, jittered.
		start := append([]float64(nil), targets[argMin(dists)]...)
		for d := range start {
			start[d] += rng.NormFloat64()
		}
		sys.coords[i] = descendHost(start, targets, dists, cfg.iters())
	}
	return sys, nil
}

func argMin(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}

// descendLandmarks minimizes Σ_{a<b} (‖xa−xb‖ − d_ab)² by gradient
// descent with momentum, updating all landmark coordinates jointly.
func descendLandmarks(coords [][]float64, delay [][]float64, iters int) {
	l := len(coords)
	if l == 0 {
		return
	}
	dim := len(coords[0])
	vel := make([][]float64, l)
	grad := make([][]float64, l)
	for a := range vel {
		vel[a] = make([]float64, dim)
		grad[a] = make([]float64, dim)
	}
	// Step size relative to the delay scale keeps descent stable
	// across input magnitudes.
	const (
		lr       = 0.02
		momentum = 0.8
	)
	for it := 0; it < iters; it++ {
		for a := range grad {
			for d := range grad[a] {
				grad[a][d] = 0
			}
		}
		for a := 0; a < l; a++ {
			for b := a + 1; b < l; b++ {
				dist, dir := distDir(coords[a], coords[b])
				err := dist - delay[a][b]
				for d := 0; d < dim; d++ {
					g := err * dir[d]
					grad[a][d] += g
					grad[b][d] -= g
				}
			}
		}
		var moved float64
		for a := 0; a < l; a++ {
			for d := 0; d < dim; d++ {
				vel[a][d] = momentum*vel[a][d] - lr*grad[a][d]
				coords[a][d] += vel[a][d]
				moved += math.Abs(vel[a][d])
			}
		}
		if moved < 1e-9 {
			break
		}
	}
}

// descendHost minimizes Σ_k (‖y−t_k‖ − d_k)² over y.
func descendHost(y []float64, targets [][]float64, dists []float64, iters int) []float64 {
	dim := len(y)
	vel := make([]float64, dim)
	const (
		lr       = 0.05
		momentum = 0.8
	)
	for it := 0; it < iters; it++ {
		grad := make([]float64, dim)
		for k, t := range targets {
			dist, dir := distDir(y, t)
			err := dist - dists[k]
			for d := 0; d < dim; d++ {
				grad[d] += err * dir[d]
			}
		}
		var moved float64
		for d := 0; d < dim; d++ {
			vel[d] = momentum*vel[d] - lr*grad[d]/float64(len(targets))
			y[d] += vel[d]
			moved += math.Abs(vel[d])
		}
		if moved < 1e-10 {
			break
		}
	}
	return y
}

// distDir returns ‖a−b‖ and the unit vector from b toward a (random
// direction would be needed at coincidence; a zero vector simply
// yields no force, which is fine inside the descent loops).
func distDir(a, b []float64) (float64, []float64) {
	dir := make([]float64, len(a))
	var s float64
	for d := range a {
		dir[d] = a[d] - b[d]
		s += dir[d] * dir[d]
	}
	dist := math.Sqrt(s)
	if dist > 0 {
		for d := range dir {
			dir[d] /= dist
		}
	}
	return dist, dir
}

// Landmarks returns the landmark node ids.
func (s *System) Landmarks() []int { return append([]int(nil), s.lm...) }

// Predict returns the embedded distance between nodes i and j.
func (s *System) Predict(i, j int) float64 {
	if i == j {
		return 0
	}
	if i > j {
		i, j = j, i
	}
	d, _ := distDir(s.coords[i], s.coords[j])
	return d
}
