package gnp

import (
	"math"
	"testing"

	"tivaware/internal/delayspace"
	"tivaware/internal/stats"
	"tivaware/internal/synth"
)

func TestBuildValidation(t *testing.T) {
	m := synth.Euclidean(10, 100, 1)
	if _, err := Build(m, Config{Landmarks: 20}); err == nil {
		t.Error("more landmarks than nodes should error")
	}
	if _, err := Build(m, Config{Landmarks: 4, Dim: 5}); err == nil {
		t.Error("landmarks below dim+1 should error")
	}
	holey := delayspace.New(8)
	holey.Set(0, 1, 10)
	if _, err := Build(holey, Config{Landmarks: 8, Dim: 2}); err == nil {
		t.Error("unmeasured landmark pairs should error")
	}
}

func TestGNPEmbedsEuclideanData(t *testing.T) {
	m := synth.Euclidean(80, 300, 3)
	sys, err := Build(m, Config{Landmarks: 15, Dim: 5, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var relErrs []float64
	m.EachEdge(func(i, j int, d float64) bool {
		if d > 5 {
			relErrs = append(relErrs, math.Abs(sys.Predict(i, j)-d)/d)
		}
		return true
	})
	med := stats.Summarize(relErrs).Median
	if med > 0.15 {
		t.Errorf("median relative error %.3f on clean Euclidean data", med)
	}
}

func TestGNPOnTIVData(t *testing.T) {
	s, err := synth.Generate(synth.DS2Like(100, 7))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := Build(s.Matrix, Config{Landmarks: 15, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if sys.Predict(i, i) != 0 {
			t.Fatal("self prediction must be 0")
		}
		for j := i + 1; j < 100; j++ {
			p := sys.Predict(i, j)
			if p < 0 || math.IsNaN(p) || math.IsInf(p, 0) {
				t.Fatalf("invalid prediction %g", p)
			}
			if p != sys.Predict(j, i) {
				t.Fatal("asymmetric prediction")
			}
		}
	}
	// The embedding should carry signal: mean error well below mean
	// delay.
	var errSum, dSum float64
	var count float64
	s.Matrix.EachEdge(func(i, j int, d float64) bool {
		errSum += math.Abs(sys.Predict(i, j) - d)
		dSum += d
		count++
		return true
	})
	if errSum/count > 0.6*dSum/count {
		t.Errorf("mean error %.1f vs mean delay %.1f; embedding carries no signal",
			errSum/count, dSum/count)
	}
}

func TestGNPDeterministic(t *testing.T) {
	m := synth.Euclidean(30, 200, 11)
	a, err := Build(m, Config{Landmarks: 10, Dim: 3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(m, Config{Landmarks: 10, Dim: 3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		for j := 0; j < 30; j++ {
			if a.Predict(i, j) != b.Predict(i, j) {
				t.Fatal("same seed, different coordinates")
			}
		}
	}
}

func TestLandmarksAccessor(t *testing.T) {
	m := synth.Euclidean(20, 200, 13)
	sys, err := Build(m, Config{Landmarks: 8, Dim: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	lm := sys.Landmarks()
	if len(lm) != 8 {
		t.Fatalf("got %d landmarks", len(lm))
	}
	lm[0] = -1
	if sys.Landmarks()[0] == -1 {
		t.Error("Landmarks returned internal storage")
	}
}

func TestDefaults(t *testing.T) {
	var c Config
	if c.landmarks() != 15 || c.dim() != 5 || c.iters() != 2000 {
		t.Errorf("defaults: l=%d dim=%d iters=%d", c.landmarks(), c.dim(), c.iters())
	}
}
