// The ratcheting baseline: tivlint.baseline.json records accepted
// pre-existing findings so the suite can turn on a new analyzer over a
// tree with known debt without a flag day. Entries are keyed by the
// finding's structural hash (see keyer), never by line numbers, so
// unrelated edits don't invalidate them. The contract is a one-way
// ratchet: CI fails on findings not in the baseline, and -baseline-prune
// deletes entries that no longer fire, so the debt count is
// monotonically non-increasing.
package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Baseline is the persisted set of accepted findings.
type Baseline struct {
	Version int             `json:"version"`
	Entries []BaselineEntry `json:"entries"`
}

// BaselineEntry accepts one finding. Analyzer and Package are
// redundant with the hash inputs but kept explicit so the file is
// reviewable and greppable; Message is a snapshot for the reader and
// does not participate in matching.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	Package  string `json:"package"`
	Key      string `json:"key"`
	Message  string `json:"message"`
}

// BaselineVersion is the current file format version.
const BaselineVersion = 1

// LoadBaseline reads a baseline file; a missing file is an empty
// baseline, not an error, so fresh checkouts and fixtures need no
// stub file.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{Version: BaselineVersion}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("lint: baseline: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lint: baseline %s: %w", path, err)
	}
	if b.Version != BaselineVersion {
		return nil, fmt.Errorf("lint: baseline %s: unsupported version %d", path, b.Version)
	}
	return &b, nil
}

// Apply marks every finding matched by a baseline entry as Baselined
// and returns the stale entries — accepted debt that no longer fires.
// Matching is by (analyzer, package, key); suppressed findings are
// never consumed by the baseline (the in-source directive already
// accounts for them, and letting them consume entries would mask a
// stale entry behind a suppression).
func (b *Baseline) Apply(res *Result) (stale []BaselineEntry) {
	if b == nil {
		return nil
	}
	matched := make([]bool, len(b.Entries))
	index := map[BaselineEntry]int{}
	for i, e := range b.Entries {
		e.Message = ""
		index[e] = i
	}
	for i := range res.Findings {
		f := &res.Findings[i]
		if f.Suppressed {
			continue
		}
		probe := BaselineEntry{Analyzer: f.Analyzer, Package: f.Package, Key: f.Key}
		if j, ok := index[probe]; ok {
			f.Baselined = true
			matched[j] = true
		}
	}
	for i, e := range b.Entries {
		if !matched[i] {
			stale = append(stale, e)
		}
	}
	return stale
}

// BaselineFrom builds a baseline accepting every finding that would
// currently fail the run (active findings; suppressed ones stay on
// their in-source directives).
func BaselineFrom(res *Result) *Baseline {
	b := &Baseline{Version: BaselineVersion}
	for _, f := range res.Findings {
		if f.Suppressed {
			continue
		}
		b.Entries = append(b.Entries, BaselineEntry{
			Analyzer: f.Analyzer,
			Package:  f.Package,
			Key:      f.Key,
			Message:  f.Message,
		})
	}
	b.sort()
	return b
}

// Prune removes the given stale entries, keeping the ratchet
// monotonic.
func (b *Baseline) Prune(stale []BaselineEntry) {
	dead := map[string]bool{}
	for _, e := range stale {
		dead[e.Analyzer+"\x00"+e.Package+"\x00"+e.Key] = true
	}
	kept := b.Entries[:0]
	for _, e := range b.Entries {
		if !dead[e.Analyzer+"\x00"+e.Package+"\x00"+e.Key] {
			kept = append(kept, e)
		}
	}
	b.Entries = kept
	b.sort()
}

func (b *Baseline) sort() {
	sort.Slice(b.Entries, func(i, j int) bool {
		a, c := b.Entries[i], b.Entries[j]
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		if a.Package != c.Package {
			return a.Package < c.Package
		}
		return a.Key < c.Key
	})
}

// Write persists the baseline with stable formatting (sorted entries,
// indented JSON, trailing newline) so diffs review cleanly.
func (b *Baseline) Write(path string) error {
	b.sort()
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
