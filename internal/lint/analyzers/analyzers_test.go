package analyzers_test

import (
	"testing"

	"tivaware/internal/lint/analyzers"
	"tivaware/internal/lint/linttest"
)

func TestEpochImmutability(t *testing.T) {
	linttest.Run(t, "testdata/epochimmutability", analyzers.EpochImmutability)
}

func TestLockOrder(t *testing.T) {
	linttest.Run(t, "testdata/lockorder", analyzers.LockOrder)
}

func TestCtxPoll(t *testing.T) {
	linttest.Run(t, "testdata/ctxpoll", analyzers.CtxPoll)
}

func TestWireParity(t *testing.T) {
	linttest.Run(t, "testdata/wireparity", analyzers.WireParity)
}

func TestLayerBoundary(t *testing.T) {
	linttest.Run(t, "testdata/layerboundary", analyzers.LayerBoundary)
}

func TestAllocFree(t *testing.T) {
	linttest.Run(t, "testdata/allocfree", analyzers.AllocFree)
}

func TestWireErr(t *testing.T) {
	linttest.Run(t, "testdata/wireerr", analyzers.WireErr)
}

func TestGoLeak(t *testing.T) {
	linttest.Run(t, "testdata/goleak", analyzers.GoLeak)
}

// TestRegistry pins the suite: eight analyzers, unique names (the
// names are the //lint:tiv suppression vocabulary and the DESIGN.md
// invariant table rows).
func TestRegistry(t *testing.T) {
	all := analyzers.All()
	if len(all) != 8 {
		t.Fatalf("expected 8 analyzers, got %d", len(all))
	}
	seen := map[string]bool{}
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q incomplete (needs Name, Doc, Run)", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}
