package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"tivaware/internal/lint/analysis"
)

// wireParityAnchors are the surfaces every registered tivwire message
// must appear on beyond the msgTypeOf registry itself. The JSON side
// needs no registration (encoding/json is reflective), so a message
// wired into only some of these silently drifts off the binary codec
// or the differential corpus — the exact drift PR 7's binary protocol
// work guarded against by hand.
var wireParityAnchors = []struct {
	fn   string // function (or method) whose body must reference the type
	what string
}{
	{"encodeMsg", "binary encode case (encodeMsg)"},
	{"UnmarshalBinary", "binary decode case (UnmarshalBinary)"},
	{"wireMessages", "fuzz/differential corpus entry (wireMessages in binary_test.go)"},
}

// WireParity checks JSON/binary codec parity in internal/tivwire.
// msgTypeOf's type switch is the authoritative frame registry; every
// type it lists must also be referenced by encodeMsg, UnmarshalBinary,
// and the wireMessages corpus the JSON/binary differential and fuzz
// harnesses iterate. Conversely, an exported json-tagged struct that
// no other tivwire struct embeds (i.e. not a payload fragment like
// Selection or Result) and that msgTypeOf does not list is an
// unregistered message: JSON-only, invisible to the binary protocol.
var WireParity = &analysis.Analyzer{
	Name: "wireparity",
	Doc: "every msgTypeOf-registered tivwire message must appear in encodeMsg, UnmarshalBinary, " +
		"and the wireMessages corpus; top-level json-tagged structs must be registered in msgTypeOf",
	Run: runWireParity,
}

func runWireParity(pass *analysis.Pass) error {
	if strings.HasSuffix(pass.Path, "_test") {
		return nil // anchors live in the package unit (incl. in-package tests)
	}
	if !analysis.PathHasSuffix(pass.Path, "internal/tivwire") {
		return nil
	}

	// Every named struct type in the package.
	scope := pass.Pkg.Scope()
	structOf := map[*types.TypeName]*types.Struct{}
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if st, ok := named.Underlying().(*types.Struct); ok {
			structOf[tn] = st
		}
	}

	// A struct referenced from another package struct's fields is a
	// payload fragment (Selection, Edge, Result, ...): encoded inline
	// by its parents, never framed on its own.
	referenced := map[*types.TypeName]bool{}
	for _, st := range structOf {
		for i := 0; i < st.NumFields(); i++ {
			if tn := fieldStructRef(st.Field(i).Type(), structOf); tn != nil {
				referenced[tn] = true
			}
		}
	}

	// Type names referenced by each anchor function's body.
	uses := map[string]map[*types.TypeName]bool{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := fd.Name.Name
			if name != "msgTypeOf" && name != "encodeMsg" && name != "UnmarshalBinary" && name != "wireMessages" {
				continue
			}
			m := uses[name]
			if m == nil {
				m = map[*types.TypeName]bool{}
				uses[name] = m
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					if tn, ok := pass.Info.Uses[id].(*types.TypeName); ok {
						m[tn] = true
					}
				}
				return true
			})
		}
	}

	registry, haveRegistry := uses["msgTypeOf"]
	if !haveRegistry {
		pass.Reportf(pass.Files[0].Pos(),
			"wireparity: no msgTypeOf function in this unit — the binary frame registry is the parity anchor")
		return nil
	}

	for tn := range structOf {
		if registry[tn] {
			// Registered message: must hold parity on every surface.
			for _, a := range wireParityAnchors {
				m, found := uses[a.fn]
				if !found {
					pass.Reportf(tn.Pos(),
						"wire message %s: cannot verify %s — no %s function in this unit",
						tn.Name(), a.what, a.fn)
					continue
				}
				if !m[tn] {
					pass.Reportf(tn.Pos(),
						"wire message %s is missing its %s; JSON and binary surfaces must stay in lockstep",
						tn.Name(), a.what)
				}
			}
			continue
		}
		if tn.Exported() && !referenced[tn] && jsonTagged(structOf[tn]) {
			pass.Reportf(tn.Pos(),
				"top-level JSON message %s is not registered in msgTypeOf; it would travel over JSON but not the binary protocol — register it (and its encode/decode/corpus entries) or embed it in an existing message",
				tn.Name())
		}
	}
	return nil
}

// fieldStructRef unwraps pointers, slices, arrays, and map values to
// the package-local named struct a field type refers to, if any.
func fieldStructRef(t types.Type, structOf map[*types.TypeName]*types.Struct) *types.TypeName {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		case *types.Map:
			t = u.Elem()
		case *types.Named:
			tn := u.Obj()
			if _, ok := structOf[tn]; ok {
				return tn
			}
			return nil
		default:
			return nil
		}
	}
}

// jsonTagged reports whether any field carries a json struct tag.
func jsonTagged(st *types.Struct) bool {
	for i := 0; i < st.NumFields(); i++ {
		if strings.Contains(st.Tag(i), `json:"`) {
			return true
		}
	}
	return false
}
