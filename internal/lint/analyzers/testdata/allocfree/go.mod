module fixture

go 1.21
