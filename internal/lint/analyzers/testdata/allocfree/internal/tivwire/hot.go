// Fixture for the allocfree analyzer: //tiv:hotpath roots must be
// transitively allocation-free, with the sanctioned exemptions
// (self-append, lazy init, error branches, //tiv:coldpath callees) and
// reference edges for codec-table function arguments.
package tivwire

import (
	"fmt"
	"os"
	"strings"
)

type msg struct {
	b []byte
	s []string
}

//tiv:hotpath encode fast path
func Encode(dst []byte, m *msg) []byte {
	dst = append(dst, 1, 2) // self-append: amortized, exempt
	buf := make([]byte, 8)  // want "hot path allocates: make"
	copy(dst, buf)
	return dst
}

//tiv:hotpath decode fast path
func Decode(m *msg) {
	helper(m)
}

func helper(m *msg) {
	m.s = append(m.s, "x") // self-append: exempt
	c := new(msg)          // want "hot path allocates: new.*reachable from"
	_ = c
}

//tiv:coldpath error latch allocates once per malformed frame
func coldLatch() error {
	return fmt.Errorf("boom")
}

//tiv:coldpath diagnostic formatting off the steady path
func coldArgs(args ...any) {
	_ = fmt.Sprint(args...)
}

//tiv:hotpath cold callees and their argument boxing are exempt
func Guarded(n int) error {
	if n < 0 {
		coldArgs(n) // boxing into a cold callee's parameter: exempt
		return coldLatch()
	}
	return nil
}

func sink(v any) { _ = v }

//tiv:hotpath implicit interface boxing is an allocation
func Boxes(n int) {
	sink(n) // want "argument n boxes into an interface parameter"
}

//tiv:hotpath string comparison conversions are free
func Cmp(b []byte, s string) bool {
	return string(b) == s
}

//tiv:hotpath materialized string conversions copy
func Conv(b []byte) string {
	return string(b) // want "string conversion copies the slice"
}

//tiv:hotpath terminal error branches may allocate their diagnostics
func Checked(n int) error {
	if n < 0 {
		return fmt.Errorf("negative %d", n) // error branch: exempt
	}
	return nil
}

type pool struct{ buf []byte }

//tiv:hotpath one-time lazy init guarded by the target is exempt
func (p *pool) get() []byte {
	if p.buf == nil {
		p.buf = make([]byte, 0, 64) // lazy init: exempt
	}
	return p.buf[:0]
}

type w struct{ b []byte }

func apply(x *w, fn func(*w)) {
	//lint:tiv allocfree fn is always one of the named codecs below, each scanned hot via its reference edge
	fn(x) // suppressed "dynamic call through a function value"
}

func encA(x *w) { x.b = append(x.b, 1) }

func encB(x *w) {
	x.b = []byte{1} // want "hot path allocates: slice literal.*reachable from"
}

//tiv:hotpath functions passed as codec-table arguments stay hot
func Table(x *w) {
	apply(x, encA)
	apply(x, encB)
}

//tiv:hotpath spawning is itself an allocation; the spawned body is not scanned
func Spawn() {
	go bg() // want "hot path allocates: goroutine spawn"
}

func bg() {
	x := make([]int, 1) // only reachable through a go edge: not scanned hot
	_ = x
}

//tiv:hotpath allowlisted externals are allocation-free
func External(s string) int {
	return strings.IndexByte(s, 'x')
}

//tiv:hotpath unsummarized externals are assumed to allocate
func Unsummarized() string {
	return os.Getenv("X") // want "call into unsummarized external function os.Getenv"
}
