// Package tivshard is the lockorder fixture for the gateway's
// declared hierarchy: ownerMu (indexed family) < journalMu < subMu.
package tivshard

import "sync"

type gateway struct {
	ownerMu   []sync.Mutex
	journalMu sync.Mutex
	subMu     sync.RWMutex
}

// orderedOK nests in the declared direction.
func (g *gateway) orderedOK() {
	g.journalMu.Lock()
	g.subMu.Lock()
	g.subMu.Unlock()
	g.journalMu.Unlock()
}

// inverted nests against the declared direction.
func (g *gateway) inverted() {
	g.subMu.Lock()
	g.journalMu.Lock() // want "lock order violation: journalMu acquired while holding subMu"
	g.journalMu.Unlock()
	g.subMu.Unlock()
}

// rlockCounts: read locks participate in deadlock cycles too.
func (g *gateway) rlockCounts() {
	g.subMu.RLock()
	g.journalMu.Lock() // want "lock order violation: journalMu acquired while holding subMu"
	g.journalMu.Unlock()
	g.subMu.RUnlock()
}

// selfDeadlock re-acquires a held non-reentrant mutex.
func (g *gateway) selfDeadlock() {
	g.journalMu.Lock()
	g.journalMu.Lock() // want "self-deadlock"
	g.journalMu.Unlock()
	g.journalMu.Unlock()
}

// viaCallee inverts the order through a same-package call: the callee
// summary carries its acquisitions to this call site.
func (g *gateway) viaCallee() {
	g.subMu.Lock()
	g.takeJournal() // want "call to takeJournal acquires journalMu while holding subMu"
	g.subMu.Unlock()
}

func (g *gateway) takeJournal() {
	g.journalMu.Lock()
	g.journalMu.Unlock()
}

// viaTransitiveCallee inverts through two hops: summaries close
// transitively.
func (g *gateway) viaTransitiveCallee() {
	g.subMu.Lock()
	g.hop() // want "call to hop acquires journalMu while holding subMu"
	g.subMu.Unlock()
}

func (g *gateway) hop() {
	g.takeJournal()
}

// reentrantCallee re-acquires a held mutex through a call.
func (g *gateway) reentrantCallee() {
	g.journalMu.Lock()
	g.takeJournal() // want "may re-acquire journalMu already held here"
	g.journalMu.Unlock()
}

// ascendingOK is the canonical family scan: indices strictly
// increase, so racing multi-lock holders cannot cycle.
func (g *gateway) ascendingOK() {
	for i := 0; i < len(g.ownerMu); i++ {
		g.ownerMu[i].Lock()
	}
	for i := 0; i < len(g.ownerMu); i++ {
		g.ownerMu[i].Unlock()
	}
}

// collectThenLockOK is the ApplyBatch idiom: indices are collected in
// ascending order, then locked by ranging over the collected slice.
func (g *gateway) collectThenLockOK(want map[int]bool) {
	var order []int
	for i := 0; i < len(g.ownerMu); i++ {
		if want[i] {
			order = append(order, i)
		}
	}
	for _, i := range order {
		g.ownerMu[i].Lock()
	}
	for _, i := range order {
		g.ownerMu[i].Unlock()
	}
}

// descending walks the family backwards: two racing calls deadlock
// against an ascending holder.
func (g *gateway) descending() {
	for i := len(g.ownerMu) - 1; i >= 0; i-- {
		g.ownerMu[i].Lock() // want "cannot prove ascending index order"
	}
	for i := 0; i < len(g.ownerMu); i++ {
		g.ownerMu[i].Unlock()
	}
}

// pairwise takes two family locks with no order relation between the
// indices.
func (g *gateway) pairwise(a, b int) {
	g.ownerMu[a].Lock()
	g.ownerMu[b].Lock() // want "multiple ownerMu"
	g.ownerMu[b].Unlock()
	g.ownerMu[a].Unlock()
}

// familyThenJournalOK follows the declared order: ownerMu before
// journalMu.
func (g *gateway) familyThenJournalOK(i int) {
	g.ownerMu[i].Lock()
	g.journalMu.Lock()
	g.journalMu.Unlock()
	g.ownerMu[i].Unlock()
}

// goroutineOK: a spawned goroutine does not run under the launcher's
// locks, so its journalMu acquisition is not nested under subMu.
func (g *gateway) goroutineOK() {
	g.subMu.Lock()
	go func() {
		g.journalMu.Lock()
		g.journalMu.Unlock()
	}()
	g.subMu.Unlock()
}

// earlyReturnOK: a lock taken in a branch that always returns is not
// held on the fall-through path (the deferred-Unlock fast path).
func (g *gateway) earlyReturnOK(fast bool) {
	if fast {
		g.subMu.Lock()
		defer g.subMu.Unlock()
		return
	}
	g.takeJournal() // subMu not held here: branch above terminated
}
