// Package tivaware pins the service-layer order mu < subMu: the
// epoch-build lock is released before subscriber fan-out takes the
// registry lock, never the other way around.
package tivaware

import "sync"

type service struct {
	mu    sync.Mutex
	subMu sync.Mutex
}

func (s *service) fanOutOK() {
	s.mu.Lock()
	s.mu.Unlock()
	s.subMu.Lock()
	s.subMu.Unlock()
}

func (s *service) nestedOK() {
	s.mu.Lock()
	s.subMu.Lock()
	s.subMu.Unlock()
	s.mu.Unlock()
}

func (s *service) inverted() {
	s.subMu.Lock()
	s.mu.Lock() // want "lock order violation: mu acquired while holding subMu"
	s.mu.Unlock()
	s.subMu.Unlock()
}
