// Package snap is the epochimmutability fixture: copy-on-write
// snapshots behind an atomic.Pointer, with the mutation shapes the
// analyzer must flag and the legal shapes it must not.
package snap

import "sync/atomic"

type epoch struct {
	counts []int
	labels map[string]int
	total  int
}

type store struct {
	cur atomic.Pointer[epoch]
}

// proberBug is the PR 6 prober bug shape: load the published snapshot
// and mutate it in place.
func (s *store) proberBug(i int) {
	e := s.cur.Load()
	e.counts[i]++ // want "mutates state loaded from an atomic pointer"
}

// directWrite mutates through the Load call itself, no intermediate
// variable.
func (s *store) directWrite() {
	s.cur.Load().total = 0 // want "mutates the published snapshot"
}

// aliasWrite mutates through an interior alias: a slice copied out of
// the snapshot still shares the snapshot's backing array.
func (s *store) aliasWrite(i int) {
	e := s.cur.Load()
	c := e.counts
	c[i] = 5 // want "mutates state loaded from an atomic pointer"
}

// mapAlias: maps are pointer-shaped too.
func (s *store) mapAlias(k string) {
	e := s.cur.Load()
	l := e.labels
	l[k] = 1 // want "mutates state loaded from an atomic pointer"
}

// copyOnWriteOK is the sanctioned pattern: build a fresh value,
// mutate the fresh value, publish it with Store.
func (s *store) copyOnWriteOK(i int) {
	old := s.cur.Load()
	next := &epoch{counts: append([]int(nil), old.counts...), total: old.total}
	next.counts[i]++ // fresh value: legal
	s.cur.Store(next)
}

// valueCopyOK: copying a scalar (or struct) out of the snapshot
// breaks aliasing; mutating the copy is legal.
func (s *store) valueCopyOK() int {
	e := s.cur.Load()
	t := e.total
	t++
	return t
}

// rebindOK: rebinding the snapshot variable itself is not a mutation
// of snapshot state.
func (s *store) rebindOK() {
	e := s.cur.Load()
	e = &epoch{}
	e.total = 1 // e no longer aliases the snapshot (mixed provenance)
	_ = e
}

// loadOrAllocate is the documented limitation: a variable with mixed
// provenance (sometimes the snapshot, sometimes fresh) is not
// tracked, so this stays silent even on the branch where e is the
// published snapshot. Single-origin flows — the bug shape that
// actually shipped — are always caught.
func (s *store) loadOrAllocate() {
	e := s.cur.Load()
	if e == nil {
		e = &epoch{}
	}
	e.total++ // mixed provenance: not flagged (documented opt-out)
}
