// Package tivwire is the wireparity fixture: a miniature protocol
// with one fully wired message (Ping), one message missing two of its
// binary surfaces (Pong), one JSON-only orphan (Orphan), and one
// payload fragment that is legitimately never framed (Fragment).
package tivwire

// Ping is fully registered: msgTypeOf, encodeMsg, UnmarshalBinary,
// and the wireMessages corpus all know it.
type Ping struct {
	Seq int       `json:"seq"`
	F   *Fragment `json:"f,omitempty"`
}

// Pong is registered in msgTypeOf and decodable, but was never added
// to the encoder or the differential corpus — the drift wireparity
// exists to catch.
type Pong struct { // want "missing its binary encode case" "missing its fuzz/differential corpus entry"
	Seq int `json:"seq"`
}

// Orphan is a top-level JSON message no struct embeds and msgTypeOf
// never learned about: it travels over JSON only.
type Orphan struct { // want "not registered in msgTypeOf"
	Name string `json:"name"`
}

// Fragment is embedded in Ping, so it is encoded inline by its parent
// and owes no frame registration.
type Fragment struct {
	X int `json:"x"`
}

// helper is unexported and untagged: out of scope entirely.
type helper struct {
	buf []byte
}

func msgTypeOf(msg any) (byte, bool) {
	switch msg.(type) {
	case *Ping:
		return 1, true
	case *Pong:
		return 2, true
	}
	return 0, false
}

func encodeMsg(msg any) []byte {
	switch m := msg.(type) {
	case *Ping:
		return []byte{1, byte(m.Seq)}
	}
	return nil
}

type frame struct {
	code byte
	data []byte
}

func (f *frame) UnmarshalBinary() any {
	switch f.code {
	case 1:
		return new(Ping)
	case 2:
		return new(Pong)
	}
	return nil
}

// wireMessages is the corpus the JSON/binary differential iterates.
func wireMessages() []any {
	return []any{
		&Ping{Seq: 1, F: &Fragment{X: 2}},
	}
}
