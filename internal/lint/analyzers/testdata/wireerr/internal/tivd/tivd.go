// Fixture for the wireerr analyzer: errors reaching the tivd.Backend
// surface or the response-envelope sinks must carry a WireCode.
package tivd

import (
	"errors"
	"fmt"

	"fixture/internal/tiv"
)

// Backend mirrors the production query surface.
type Backend interface {
	Rank(q string) (int, error)
	Close() error
}

type wireError struct{ code, msg string }

func (e *wireError) Error() string    { return e.msg }
func (e *wireError) WireCode() string { return e.code }

func badRequestf(format string, args ...any) error {
	return &wireError{code: "bad_request", msg: fmt.Sprintf(format, args...)}
}

type backend struct{ limit int }

func (b *backend) Rank(q string) (int, error) {
	if q == "" {
		return 0, badRequestf("empty query") // typed constructor: clean
	}
	if q == "wrap" {
		return 0, fmt.Errorf("rejected %q: %w", q, badRequestf("wrapped cause")) // wraps a typed cause: clean
	}
	if q == "legacy" {
		return 0, legacy()
	}
	if len(q) > b.limit {
		return 0, fmt.Errorf("query too long: %d bytes", len(q)) // want "bare fmt.Errorf"
	}
	return b.scan(q)
}

func (b *backend) Close() error { return nil }

func (b *backend) scan(q string) (int, error) {
	n, err := decode(q)
	if err != nil {
		return 0, err
	}
	return tiv.Compute(n)
}

func decode(q string) (int, error) {
	if q[0] == '#' {
		return 0, errors.New("comment query") // want "errors.New.*flows via"
	}
	return len(q), nil
}

func legacy() error {
	//lint:tiv wireerr inherited from the v0 probe protocol; tracked by the baseline migration
	return errors.New("legacy probe format") // suppressed "errors.New"
}

func serviceError(code int, err error) {
	_ = code
	_ = err
}

func handle(q string) {
	if q == "" {
		serviceError(400, errors.New("empty query")) // want "errors.New passed directly to a tivd response envelope"
	}
	if q == "#" {
		serviceError(400, badRequestf("comment query")) // typed constructor: clean
	}
}
