// Fixture for the wireerr analyzer's client-surface roots: exported
// error-returning declarations of internal/tivclient.
package tivclient

import (
	"errors"
	"os"
)

// Error is the client's typed taxonomy.
type Error struct{ Code string }

func (e *Error) Error() string    { return e.Code }
func (e *Error) WireCode() string { return e.Code }

// Client is the exported API surface.
type Client struct{ path string }

// Ping is an exported method: its errors reach callers raw.
func (c *Client) Ping() error {
	return errors.New("no transport configured") // want "errors.New"
}

// Fetch is an exported function on the client surface.
func Fetch(path string) error {
	if path == "" {
		return &Error{Code: "bad_request"} // typed: clean
	}
	_, err := os.ReadFile(path) // want "raw error from os.ReadFile escapes without a typed wrapper"
	return err
}

// probe is unexported and unreachable from the surface: not a root.
func probe() error {
	return errors.New("internal probe")
}
