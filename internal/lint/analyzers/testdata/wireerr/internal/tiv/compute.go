// Package tiv sits below the wire boundary: its plain errors are the
// serving plane's to classify, so wireerr never reports here.
package tiv

import "fmt"

func Compute(n int) (int, error) {
	if n == 0 {
		return 0, fmt.Errorf("empty selection") // below the boundary: not reported
	}
	return n, nil
}
