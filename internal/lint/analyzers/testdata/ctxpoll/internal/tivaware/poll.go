// Package tivaware is the ctxpoll fixture: query-path loops must stay
// responsive to cancellation within the 1024-iteration budget.
package tivaware

import "context"

const ctxPollMask = 1023

// polledOK uses the canonical k&ctxPollMask convention.
func polledOK(ctx context.Context, xs []int) (int, error) {
	total := 0
	for k, x := range xs {
		if k&ctxPollMask == 0 {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
		}
		total += x
	}
	return total, nil
}

// unpolledRange never observes ctx.
func unpolledRange(ctx context.Context, xs []int) int {
	total := 0
	for _, x := range xs { // want "never polls cancellation"
		total += x
	}
	return total
}

// unpolledFor has a runtime-dependent bound and no poll.
func unpolledFor(ctx context.Context, n int) int {
	total := 0
	for i := 0; i < n; i++ { // want "never polls cancellation"
		total += i
	}
	return total
}

// delegatedOK passes ctx to a callee every iteration; the callee owns
// the poll budget.
func delegatedOK(ctx context.Context, xs []int) (int, error) {
	total := 0
	for _, x := range xs {
		v, err := step(ctx, x)
		if err != nil {
			return 0, err
		}
		total += v
	}
	return total, nil
}

func step(ctx context.Context, x int) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return x * 2, nil
}

// boundedOK has a constant trip count within the budget.
func boundedOK(ctx context.Context) int {
	total := 0
	for i := 0; i < 512; i++ {
		total += i
	}
	return total
}

// overBudget has a constant trip count past the budget and no poll.
func overBudget(ctx context.Context) int {
	total := 0
	for i := 0; i < 4096; i++ { // want "never polls cancellation"
		total += i
	}
	return total
}

// arrayOK ranges a fixed-size array within the budget.
func arrayOK(ctx context.Context, a [64]int) int {
	total := 0
	for _, x := range a {
		total += x
	}
	return total
}

// selectOK drains a channel under a ctx.Done select — the idiomatic
// pump loop.
func selectOK(ctx context.Context, ch <-chan int) int {
	total := 0
	for {
		select {
		case <-ctx.Done():
			return total
		case v := <-ch:
			total += v
		}
	}
}

// noCtx is out of scope: the budget binds context-bearing functions.
func noCtx(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// suppressedLoop exercises the //lint:tiv directive: the finding is
// recorded but does not fail the run.
func suppressedLoop(ctx context.Context, xs []int) int {
	total := 0
	//lint:tiv ctxpoll fixture exercising the suppression directive
	for _, x := range xs { // suppressed "never polls cancellation"
		total += x
	}
	return total
}
