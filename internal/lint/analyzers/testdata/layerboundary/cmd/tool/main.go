// Command tool is a binary: binaries consume the service API, they do
// not construct the substrate or edit delay data.
package main

import (
	"fixture/internal/delayspace"
	"fixture/internal/tiv"
	"fixture/internal/tivaware"
)

func main() {
	svc := tivaware.NewService(8) // the sanctioned path
	_ = svc

	e := tiv.NewEngine(8) // want "tiv.NewEngine called outside"
	_ = e
	m := tiv.Monitor{} // want "tiv.Monitor composite literal outside"
	_ = m

	d := &delayspace.Matrix{}
	d.Set(0, 1, 1) // want "Matrix.Set in a serving-plane package"
}
