// Package tiv mirrors the detection substrate for the layerboundary
// fixture: inside the substrate, construction is blessed.
package tiv

type Engine struct {
	N int
}

type Monitor struct {
	E *Engine
}

func NewEngine(n int) *Engine {
	return &Engine{N: n}
}

func NewMonitor(e *Engine) *Monitor {
	return &Monitor{E: e}
}
