// Package tivaware is the blessed service layer: it constructs the
// substrate (that is its whole job) and, as measurement-side code,
// may build matrices.
package tivaware

import (
	"fixture/internal/delayspace"
	"fixture/internal/tiv"
)

type Service struct {
	Mon *tiv.Monitor
}

func NewService(n int) *Service {
	m := &delayspace.Matrix{}
	m.Set(0, 1, 2.5) // measurement side: legal
	e := tiv.NewEngine(n)
	return &Service{Mon: tiv.NewMonitor(e)}
}
