// Package tivd is serving-plane: it reads published snapshots and
// must neither construct the substrate nor edit delay data.
package tivd

import (
	"fixture/internal/delayspace"
	"fixture/internal/tiv"
	"fixture/internal/tivaware"
)

type Server struct {
	svc *tivaware.Service
}

// readOnlyOK: reading matrices and using the service is the sanctioned
// surface.
func (s *Server) readOnlyOK(m *delayspace.Matrix) (float64, bool) {
	return m.At(1, 2)
}

// poison mutates delay data on the serving plane.
func (s *Server) poison(m *delayspace.Matrix) {
	m.Set(1, 2, 3) // want "Matrix.Set in a serving-plane package"
}

// bypass constructs the substrate instead of going through
// tivaware.Service.
func (s *Server) bypass() *tiv.Monitor {
	e := tiv.NewEngine(4) // want "tiv.NewEngine called outside"
	_ = e
	mon := tiv.Monitor{} // want "tiv.Monitor composite literal outside"
	return &mon
}
