// Package delayspace mirrors the delay-matrix substrate for the
// layerboundary fixture.
package delayspace

type Matrix struct {
	d map[[2]int]float64
}

func (m *Matrix) Set(i, j int, v float64) {
	if m.d == nil {
		m.d = map[[2]int]float64{}
	}
	m.d[[2]int{i, j}] = v
}

func (m *Matrix) At(i, j int) (float64, bool) {
	v, ok := m.d[[2]int{i, j}]
	return v, ok
}
