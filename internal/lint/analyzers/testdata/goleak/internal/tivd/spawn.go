// Fixture for the goleak analyzer: every serving-plane go statement
// must spawn a provably terminating function.
package tivd

import (
	"context"
	"runtime"
	"sync/atomic"
)

func spin() {
	for {
	}
}

func outer() {
	spin()
}

func pingPong() { pong() }

func pong() { pingPong() }

func worker(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		}
	}
}

func count(n int) {
	for i := 0; i < n; i++ {
		_ = i
	}
}

func casLoop(v *atomic.Int64) {
	for {
		old := v.Load()
		if v.CompareAndSwap(old, old+1) {
			return
		}
	}
}

func Serve(ctx context.Context, fn func(), v *atomic.Int64) {
	go spin()     // want "goroutine may never terminate: tivd.spin has a loop at .* with no cancellation receive, break, or bound"
	go outer()    // want "goroutine may never terminate: tivd.outer calls tivd.spin, which has a loop at"
	go pingPong() // want "goroutine may never terminate: tivd.pingPong is mutually recursive"
	go worker(ctx)
	go count(10)
	go casLoop(v)
	go fn()              // want "goroutine spawns through a function value the callgraph cannot resolve"
	go runtime.Gosched() // want "goroutine spawns external function runtime.Gosched"
	go func() {          // want "goroutine may never terminate: .* has a loop at"
		for {
		}
	}()
	//lint:tiv goleak the scan loop exits when the transport closes the stream
	go spin() // suppressed "goroutine may never terminate"
}
