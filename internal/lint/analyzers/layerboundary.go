package analyzers

import (
	"go/ast"
	"strings"

	"tivaware/internal/lint/analysis"
)

// engineBlessed are the packages (by import-path suffix) allowed to
// construct the TIV detection substrate: the substrate itself and the
// service layer that wraps it. Everyone else goes through
// tivaware.Service, so TIV analysis has exactly one application-facing
// surface.
var engineBlessed = []string{"internal/tiv", "internal/tivaware"}

// servingPlane are the packages (by import-path suffix or path
// segment) that serve queries over published delay data and must
// never mutate a delayspace.Matrix: matrices reach the serving plane
// only as published epoch snapshots, and an in-place Set there is the
// same bug family epochimmutability catches on the atomic-pointer
// side. Generators and experiment drivers (synth, nsim, netprobe,
// experiments, and the substrate itself) stay free to build matrices.
var servingPlane = []string{
	"internal/tivd", "internal/tivshard", "internal/tivclient",
	"internal/tivfault", "internal/tivwire",
}

// servingPlaneSegments fences whole subtrees: binaries and examples
// consume the service API, they do not edit delay data.
var servingPlaneSegments = []string{"cmd", "examples"}

// LayerBoundary is the type-aware replacement for the old grep-based
// TestNoEngineConstructionOutsideServiceLayer: it resolves tiv.Engine
// and tiv.Monitor construction through go/types (no false hits on
// comments or same-named locals, no misses through aliased imports)
// and additionally fences delayspace.Matrix.Set out of the serving
// plane.
var LayerBoundary = &analysis.Analyzer{
	Name: "layerboundary",
	Doc: "tiv.NewEngine/tiv.NewMonitor calls and tiv.Engine/tiv.Monitor composite literals " +
		"only in internal/tiv and internal/tivaware; delayspace.Matrix.Set not in serving-plane packages",
	Run: runLayerBoundary,
}

func runLayerBoundary(pass *analysis.Pass) error {
	unitPath := strings.TrimSuffix(pass.Path, "_test")

	blessed := false
	for _, suffix := range engineBlessed {
		if analysis.PathHasSuffix(unitPath, suffix) {
			blessed = true
			break
		}
	}

	serving := false
	for _, suffix := range servingPlane {
		if analysis.PathHasSuffix(unitPath, suffix) {
			serving = true
			break
		}
	}
	if !serving {
		for _, seg := range servingPlaneSegments {
			if pathHasSegment(unitPath, seg) {
				serving = true
				break
			}
		}
	}

	if blessed && !serving {
		return nil
	}

	for _, f := range pass.Files {
		testFile := pass.TestFile(f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				// Engine construction binds every file, tests included
				// (the grep test it replaces had the same reach).
				if !blessed {
					if fn, ok := x.Fun.(*ast.SelectorExpr); ok {
						obj := pass.Info.Uses[fn.Sel]
						for _, ctor := range [2]string{"NewEngine", "NewMonitor"} {
							if analysis.FuncFrom(obj, "internal/tiv", ctor) {
								pass.Reportf(x.Pos(),
									"tiv.%s called outside internal/tiv and internal/tivaware; route through tivaware.Service so TIV analysis keeps one application-facing surface", ctor)
							}
						}
					}
				}
				// Matrix mutation binds serving-plane production code.
				if serving && !testFile {
					if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Set" {
						if s := pass.Info.Selections[sel]; s != nil &&
							analysis.NamedFrom(s.Recv(), "internal/delayspace", "Matrix") {
							pass.Reportf(x.Pos(),
								"delayspace.Matrix.Set in a serving-plane package; serving code reads published snapshots — build matrices in the measurement/generation layer")
						}
					}
				}
			case *ast.CompositeLit:
				if blessed {
					return true
				}
				t := pass.Info.Types[x].Type
				for _, name := range [2]string{"Engine", "Monitor"} {
					if analysis.NamedFrom(t, "internal/tiv", name) {
						pass.Reportf(x.Pos(),
							"tiv.%s composite literal outside internal/tiv and internal/tivaware; route through tivaware.Service so TIV analysis keeps one application-facing surface", name)
					}
				}
			}
			return true
		})
	}
	return nil
}

// pathHasSegment reports whether the slash-separated import path
// contains seg as a whole segment ("tivaware/cmd/tivd" has "cmd").
func pathHasSegment(path, seg string) bool {
	for _, s := range strings.Split(path, "/") {
		if s == seg {
			return true
		}
	}
	return false
}
