package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"tivaware/internal/lint/analysis"
	"tivaware/internal/lint/flow"
)

// AllocFree enforces the zero-allocation contract on annotated hot
// paths, interprocedurally: a function carrying //tiv:hotpath in its
// doc comment — the binary codec's encode/decode, the tiv kernel
// scans, Monitor.ApplyUpdate, the pooled client buffer path — must be
// transitively allocation-free. The AllocsPerRun pins in the test
// suite only prove the inputs a test happens to drive; this analyzer
// proves the whole static call tree.
var AllocFree = &analysis.Analyzer{
	Name: "allocfree",
	Doc: `//tiv:hotpath functions must be transitively allocation-free.

The analyzer walks the flow callgraph from every annotated root and
flags, in any reachable function: escaping composite literals (&T{...},
slice and map literals), make/new, interface conversions that box a
non-pointer-shaped value, appends that can grow a slice other than the
one being extended, map writes, string conversions and concatenation,
closure creation, goroutine spawns, fmt.* calls, dynamic calls the
graph cannot resolve, and calls into external functions outside a small
no-allocation allowlist.

Three idioms are exempt because they are how the hot paths earn
amortized-zero behavior rather than violations of it: self-appends
(x = append(x, ...) and x = append(x[:k], ...)), appends returned
directly to the caller (the AppendBinary dst idiom), and lazy
initialization guarded by the target's own nil/len/cap check.
Allocations on terminal error branches (a branch whose last statement
returns a non-nil error or panics) are also exempt: the contract is
zero allocations per steady-state frame, not on failure paths.

Fix by hoisting the allocation into reused scratch (see Monitor's
scratch buffers), pooling it, or moving it behind //tiv:coldpath with a
justification; suppress a single residual site with
//lint:tiv allocfree <why it is amortized>.`,
	Run: runAllocFree,
}

type allocOp struct {
	pos  token.Pos
	desc string
}

type hotReach struct {
	root *flow.Func
	via  *flow.Func // BFS predecessor, nil at roots
}

type allocFacts struct {
	reach map[*flow.Func]hotReach
	ops   map[*flow.Func][]allocOp
}

func runAllocFree(pass *analysis.Pass) error {
	g := flow.Of(pass)
	if g == nil {
		return nil // no interprocedural layer on this pass
	}
	facts := g.Memo("allocfree", func() any { return computeAllocFacts(g) }).(*allocFacts)
	for _, f := range g.UnitFuncs(pass.Path) {
		for _, pos := range f.InertAnnotations {
			pass.Reportf(pos, "//tiv:coldpath without a justification is inert — state why the path is exempt")
		}
		r, hot := facts.reach[f]
		if !hot || f.Cold != nil {
			continue
		}
		for _, op := range facts.ops[f] {
			pass.Reportf(op.pos, "hot path allocates: %s in %s (%s)", op.desc, f.Display, hotChain(facts, f, r))
		}
	}
	return nil
}

// hotChain renders the shortest annotated-root-to-f path for the
// diagnostic, so the reader sees why a function is on a hot path.
func hotChain(facts *allocFacts, f *flow.Func, r hotReach) string {
	if r.via == nil {
		return "//tiv:hotpath function"
	}
	var hops []string
	for cur := f; cur != nil && cur != r.root; {
		hops = append(hops, cur.Display)
		rr := facts.reach[cur]
		cur = rr.via
	}
	hops = append(hops, r.root.Display)
	for i, j := 0, len(hops)-1; i < j; i, j = i+1, j-1 {
		hops[i], hops[j] = hops[j], hops[i]
	}
	return "reachable from //tiv:hotpath " + strings.Join(hops, " → ")
}

func computeAllocFacts(g *flow.Graph) *allocFacts {
	facts := &allocFacts{reach: map[*flow.Func]hotReach{}, ops: map[*flow.Func][]allocOp{}}
	var queue []*flow.Func
	for _, sccs := range g.SCCs() {
		for _, f := range sccs {
			if f.Hot != nil && f.Cold == nil {
				facts.reach[f] = hotReach{root: f}
				queue = append(queue, f)
			}
		}
	}
	for len(queue) > 0 {
		f := queue[0]
		queue = queue[1:]
		root := facts.reach[f].root
		for _, c := range f.Calls {
			callee := c.Callee
			if callee == nil || callee.Cold != nil {
				continue
			}
			if c.Go {
				continue // the spawn itself is flagged; the goroutine body runs off-path
			}
			if _, seen := facts.reach[callee]; seen {
				continue
			}
			facts.reach[callee] = hotReach{root: root, via: f}
			queue = append(queue, callee)
		}
	}
	for f := range facts.reach {
		if f.Cold == nil {
			facts.ops[f] = scanAllocs(f)
		}
	}
	return facts
}

// scanAllocs collects the allocation operations in one function body,
// applying the exemptions described in the analyzer doc.
func scanAllocs(f *flow.Func) []allocOp {
	body := f.Body()
	if body == nil {
		return nil // bodyless assembly stub: allocation-free by construction
	}
	info := f.Unit.Info
	edges := map[*ast.CallExpr][]flow.Call{}
	for _, c := range f.Calls {
		edges[c.Site] = append(edges[c.Site], c)
	}
	var ops []allocOp
	flow.WalkStack(body, func(n ast.Node, stack []ast.Node) bool {
		add := func(pos token.Pos, desc string) {
			if errorBranchExempt(n, stack, info) {
				return
			}
			ops = append(ops, allocOp{pos: pos, desc: desc})
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			add(n.Pos(), "closure creation")
			return false
		case *ast.GoStmt:
			add(n.Pos(), "goroutine spawn")
			return false
		case *ast.CallExpr:
			scanCall(n, stack, info, edges, add)
			return true
		case *ast.CompositeLit:
			switch info.Types[n].Type.Underlying().(type) {
			case *types.Slice:
				if !lazyInitExempt(n, stack, info) {
					add(n.Pos(), "slice literal")
				}
			case *types.Map:
				if !lazyInitExempt(n, stack, info) {
					add(n.Pos(), "map literal")
				}
			}
			return true
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok && !lazyInitExempt(n, stack, info) {
					add(n.Pos(), "escaping composite literal (&T{...})")
				}
			}
			return true
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if idx, ok := lhs.(*ast.IndexExpr); ok {
					if _, isMap := info.Types[idx.X].Type.Underlying().(*types.Map); isMap {
						add(idx.Pos(), "map write")
					}
				}
			}
			return true
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if b, ok := info.Types[n.X].Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					add(n.Pos(), "string concatenation")
				}
			}
			return true
		}
		return true
	})
	return ops
}

// scanCall classifies one call expression: conversions, builtins,
// external calls against the allowlist, dynamic calls, and implicit
// interface boxing of arguments.
func scanCall(call *ast.CallExpr, stack []ast.Node, info *types.Info, edges map[*ast.CallExpr][]flow.Call, add func(token.Pos, string)) {
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		scanConversion(call, tv.Type, stack, info, add)
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			scanBuiltin(b.Name(), call, stack, info, add)
			return
		}
	}
	cs := edges[call]
	if len(cs) == 0 {
		return
	}
	for _, c := range cs {
		if !c.Ref && c.Callee != nil && c.Callee.Cold != nil {
			// The call heads off the hot path (//tiv:coldpath callee);
			// evaluating its arguments — boxing included — is part of
			// the cold branch.
			return
		}
	}
	flagged := false
	for _, c := range cs {
		if c.Ref {
			continue // referenced, not called: the body is scanned via reachability
		}
		switch {
		case c.Dynamic:
			add(call.Pos(), "dynamic call through a function value (cannot summarize)")
			flagged = true
		case c.External != nil:
			if desc, bad := externalAllocates(c.External); bad {
				add(call.Pos(), desc)
				flagged = true
			}
		}
	}
	if !flagged {
		scanArgBoxing(call, info, add)
	}
}

func scanConversion(call *ast.CallExpr, target types.Type, stack []ast.Node, info *types.Info, add func(token.Pos, string)) {
	if len(call.Args) != 1 {
		return
	}
	opT := info.Types[call.Args[0]].Type
	if opT == nil {
		return
	}
	tu, ou := target.Underlying(), opT.Underlying()
	tb, _ := tu.(*types.Basic)
	ob, _ := ou.(*types.Basic)
	switch {
	case tb != nil && tb.Info()&types.IsString != 0:
		if _, fromSlice := ou.(*types.Slice); fromSlice {
			if !comparisonOperand(call, stack) {
				add(call.Pos(), "string conversion copies the slice")
			}
		} else if ob != nil && ob.Info()&types.IsInteger != 0 {
			add(call.Pos(), "integer-to-string conversion")
		}
	case isSliceOfBytesOrRunes(tu):
		if ob != nil && ob.Info()&types.IsString != 0 {
			add(call.Pos(), "[]byte/[]rune conversion copies the string")
		}
	case types.IsInterface(tu):
		if !types.IsInterface(ou) && !pointerWordShaped(ou) && !isUntypedNil(opT) {
			add(call.Pos(), "interface conversion boxes a value")
		}
	}
}

// comparisonOperand reports whether call is (possibly parenthesized)
// a direct operand of an == or != comparison. The compiler does not
// materialize string([]byte) conversions used only for comparison.
func comparisonOperand(call *ast.CallExpr, stack []ast.Node) bool {
	var child ast.Node = call
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			child = p
			continue
		case *ast.BinaryExpr:
			if (p.Op == token.EQL || p.Op == token.NEQ) &&
				(ast.Node(p.X) == child || ast.Node(p.Y) == child) {
				return true
			}
		}
		return false
	}
	return false
}

func isSliceOfBytesOrRunes(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func scanBuiltin(name string, call *ast.CallExpr, stack []ast.Node, info *types.Info, add func(token.Pos, string)) {
	switch name {
	case "make":
		if !lazyInitExempt(call, stack, info) {
			add(call.Pos(), "make")
		}
	case "new":
		if !lazyInitExempt(call, stack, info) {
			add(call.Pos(), "new")
		}
	case "append":
		if !appendExempt(call, stack, info) {
			add(call.Pos(), "append to a slice other than the one being extended (may grow)")
		}
	}
}

// appendExempt recognizes the amortized append idioms: self-append
// (x = append(x, ...), including a re-slice base x = append(x[:k], ...))
// and append returned directly to the caller, which hands the caller
// the grown buffer exactly like tivwire's AppendBinary dst contract.
func appendExempt(call *ast.CallExpr, stack []ast.Node, info *types.Info) bool {
	if len(call.Args) == 0 {
		return false
	}
	base := ast.Unparen(call.Args[0])
	if sl, ok := base.(*ast.SliceExpr); ok {
		base = ast.Unparen(sl.X)
	}
	if len(stack) == 0 {
		return false
	}
	switch parent := stack[len(stack)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.AssignStmt:
		for i, rhs := range parent.Rhs {
			if ast.Unparen(rhs) != call || i >= len(parent.Lhs) {
				continue
			}
			return exprText(parent.Lhs[i]) == exprText(base)
		}
	}
	return false
}

func exprText(e ast.Expr) string { return types.ExprString(ast.Unparen(e)) }

// lazyInitExempt recognizes one-time initialization guarded by the
// target's own state: an allocation assigned to x inside an if whose
// condition tests x == nil or compares len(x)/cap(x). Steady-state
// frames never enter the branch.
func lazyInitExempt(n ast.Node, stack []ast.Node, info *types.Info) bool {
	var target string
	for i := len(stack) - 1; i >= 0; i-- {
		switch s := stack[i].(type) {
		case *ast.AssignStmt:
			if target == "" && len(s.Lhs) == 1 {
				target = exprText(s.Lhs[0])
			}
		case *ast.IfStmt:
			if target != "" && condGuards(s.Cond, target) {
				return true
			}
		case *ast.FuncLit:
			return false
		}
	}
	return false
}

// condGuards reports whether cond is a nil/len/cap guard on target.
func condGuards(cond ast.Expr, target string) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		b, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		for _, side := range [2]ast.Expr{b.X, b.Y} {
			side = ast.Unparen(side)
			if exprText(side) == target {
				found = true
			}
			if c, ok := side.(*ast.CallExpr); ok && len(c.Args) == 1 {
				if id, ok := ast.Unparen(c.Fun).(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") {
					if exprText(c.Args[0]) == target {
						found = true
					}
				}
			}
		}
		return true
	})
	return found
}

// errorBranchExempt reports whether n sits on a terminal error branch:
// an if/case/select-case body whose last statement returns a non-nil
// error or panics. The zero-allocation contract binds steady-state
// frames; failure paths may allocate their diagnostics.
func errorBranchExempt(n ast.Node, stack []ast.Node, info *types.Info) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		var bodyStmts []ast.Stmt
		var span ast.Node
		switch s := stack[i].(type) {
		case *ast.IfStmt:
			for _, blk := range [2]ast.Stmt{s.Body, s.Else} {
				b, ok := blk.(*ast.BlockStmt)
				if !ok {
					continue
				}
				if n.Pos() >= b.Pos() && n.End() <= b.End() && terminalErrorStmts(b.List, info) {
					return true
				}
			}
			continue
		case *ast.CaseClause:
			bodyStmts, span = s.Body, s
		case *ast.CommClause:
			bodyStmts, span = s.Body, s
		case *ast.FuncLit:
			return false
		default:
			continue
		}
		if n.Pos() >= span.Pos() && n.End() <= span.End() && terminalErrorStmts(bodyStmts, info) {
			return true
		}
	}
	return false
}

func terminalErrorStmts(stmts []ast.Stmt, info *types.Info) bool {
	if len(stmts) == 0 {
		return false
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt:
		for _, res := range last.Results {
			t := info.Types[res].Type
			if t == nil || isUntypedNil(t) {
				continue
			}
			if isErrorType(t) {
				if id, ok := ast.Unparen(res).(*ast.Ident); ok && id.Name == "nil" {
					continue
				}
				return true
			}
		}
	case *ast.ExprStmt:
		if c, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(c.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

func pointerWordShaped(t types.Type) bool {
	switch t.(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

// allocFreePkgs are external packages whose exported API is accepted
// as allocation-free wholesale (pure arithmetic, or append-into-dst
// APIs whose growth the self-append/return exemptions already model).
var allocFreePkgs = map[string]bool{
	"math":            true,
	"math/bits":       true,
	"sync/atomic":     true,
	"encoding/binary": true,
	"unicode/utf8":    true,
	"unsafe":          true,
}

// allocFreeFuncs are individually accepted external functions and
// methods, keyed "pkgpath.Name" / "pkgpath.(Recv).Name". sync.Pool
// Get/Put are the point of pooling: amortized-zero by discipline,
// pinned by the AllocsPerRun tests.
var allocFreeFuncs = map[string]bool{
	"errors.Is":                    true,
	"errors.As":                    true,
	"errors.Unwrap":                true,
	"sync.(Pool).Get":              true,
	"sync.(Pool).Put":              true,
	"sync.(Mutex).Lock":            true,
	"sync.(Mutex).Unlock":          true,
	"sync.(Mutex).TryLock":         true,
	"sync.(RWMutex).Lock":          true,
	"sync.(RWMutex).Unlock":        true,
	"sync.(RWMutex).RLock":         true,
	"sync.(RWMutex).RUnlock":       true,
	"sync.(Once).Do":               true,
	"sync.(WaitGroup).Add":         true,
	"sync.(WaitGroup).Done":        true,
	"time.Now":                     true,
	"time.Since":                   true,
	"time.(Time).Sub":              true,
	"time.(Time).UnixNano":         true,
	"time.(Duration).Seconds":      true,
	"time.(Duration).Nanoseconds":  true,
	"time.(Duration).Milliseconds": true,
	"runtime.KeepAlive":            true,
	"sort.Search":                  true,
	"strconv.AppendInt":            true,
	"strconv.AppendUint":           true,
	"strconv.AppendFloat":          true,
	"strconv.AppendBool":           true,
	"strconv.AppendQuote":          true,
	"bytes.Equal":                  true,
	"bytes.Compare":                true,
	"bytes.IndexByte":              true,
	"strings.IndexByte":            true,
	"strings.HasPrefix":            true,
	"strings.Compare":              true,
	"strings.EqualFold":            true,
}

func externalKey(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		for {
			p, ok := t.(*types.Pointer)
			if !ok {
				break
			}
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			return fmt.Sprintf("%s.(%s).%s", pkg, n.Origin().Obj().Name(), fn.Name())
		}
	}
	return pkg + "." + fn.Name()
}

// externalAllocates classifies a call into a non-module function.
func externalAllocates(fn *types.Func) (string, bool) {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	if pkg == "fmt" {
		return fmt.Sprintf("call into fmt.%s (formats and allocates)", fn.Name()), true
	}
	if allocFreePkgs[pkg] || allocFreeFuncs[externalKey(fn)] {
		return "", false
	}
	return fmt.Sprintf("call into unsummarized external function %s.%s", pkg, fn.Name()), true
}

// scanArgBoxing flags implicit interface conversions of arguments: a
// non-pointer-shaped concrete value passed to an interface parameter
// allocates its box. Constants are skipped (small-value interning
// makes them noise), and calls already flagged for other reasons are
// not double-reported.
func scanArgBoxing(call *ast.CallExpr, info *types.Info, add func(token.Pos, string)) {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	if call.Ellipsis != token.NoPos {
		return // s... re-passes an existing slice, no per-arg boxing
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			last := sig.Params().At(sig.Params().Len() - 1).Type()
			if sl, ok := last.(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < sig.Params().Len():
			pt = sig.Params().At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt.Underlying()) {
			continue
		}
		at := info.Types[arg].Type
		if at == nil || types.IsInterface(at.Underlying()) || pointerWordShaped(at.Underlying()) || isUntypedNil(at) {
			continue
		}
		if info.Types[arg].Value != nil {
			continue // constant
		}
		add(arg.Pos(), fmt.Sprintf("argument %s boxes into an interface parameter", exprText(arg)))
	}
}
