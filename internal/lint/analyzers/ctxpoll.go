package analyzers

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"tivaware/internal/lint/analysis"
)

// ctxPollBudget is the largest constant trip count a loop may have
// without polling cancellation — the same 1024-iteration budget the
// query path's ctxPollMask convention encodes (mask 1023, poll when
// k&mask == 0).
const ctxPollBudget = 1024

// ctxPollPackages are the query-path packages (matched by import-path
// suffix) where every loop must stay responsive to cancellation:
// these run inside request deadlines, and PR 7's batched wire protocol
// multiplies per-request work by the batch width.
var ctxPollPackages = []string{"internal/tiv", "internal/tivaware"}

// CtxPoll flags loops on the query path that can iterate more than
// ctxPollBudget times without observing context cancellation. A loop
// in a context-bearing function is compliant when its body polls the
// context (ctx.Err / ctx.Done, directly or via a helper like
// checkCtx), passes the context on to a callee (the callee owns the
// budget), or has a constant trip count within the budget.
var CtxPoll = &analysis.Analyzer{
	Name: "ctxpoll",
	Doc: "query-path loops (internal/tiv, internal/tivaware) must poll ctx.Err/ctx.Done, " +
		"delegate to a context-taking callee, or have a constant trip count <= 1024",
	Run: runCtxPoll,
}

func runCtxPoll(pass *analysis.Pass) error {
	unitPath := strings.TrimSuffix(pass.Path, "_test")
	scoped := false
	for _, suffix := range ctxPollPackages {
		if analysis.PathHasSuffix(unitPath, suffix) {
			scoped = true
			break
		}
	}
	if !scoped {
		return nil
	}
	for _, f := range pass.Files {
		if pass.TestFile(f) {
			continue // the budget binds serving code, not tests
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasCtxParam(pass, fd.Type) {
				continue
			}
			checkLoops(pass, fd.Body)
		}
	}
	return nil
}

func hasCtxParam(pass *analysis.Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if t := pass.Info.Types[field.Type].Type; isCtxType(t) {
			return true
		}
	}
	return false
}

func isCtxType(t types.Type) bool {
	return analysis.NamedFrom(t, "context", "Context")
}

// checkLoops flags every non-compliant loop in a context-bearing
// function body, closures included: the epoch build work regularly
// runs inside goroutine closures that capture ctx.
func checkLoops(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch l := n.(type) {
		case *ast.ForStmt:
			if l.Body != nil && !loopCompliant(pass, l.Body) && !tripWithinBudget(pass, l) {
				pass.Reportf(l.Pos(),
					"query-path loop never polls cancellation; poll ctx (e.g. `if k&ctxPollMask == 0 { if err := ctx.Err(); err != nil { ... } }`), pass ctx to a callee, or bound the trip count at %d", ctxPollBudget)
			}
		case *ast.RangeStmt:
			if l.Body != nil && !loopCompliant(pass, l.Body) && !rangeWithinBudget(pass, l) {
				pass.Reportf(l.Pos(),
					"query-path loop never polls cancellation; poll ctx (e.g. `if k&ctxPollMask == 0 { if err := ctx.Err(); err != nil { ... } }`), pass ctx to a callee, or bound the trip count at %d", ctxPollBudget)
			}
		}
		return true
	})
}

// loopCompliant reports whether the loop body observes cancellation:
// a ctx.Err()/ctx.Done() call on any context value, or any call that
// receives a context (the callee then owns the poll budget — this is
// what blesses `checkCtx(ctx)` and nested query calls).
func loopCompliant(pass *analysis.Pass, body *ast.BlockStmt) bool {
	ok := false
	ast.Inspect(body, func(n ast.Node) bool {
		if ok {
			return false
		}
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		if sel, isSel := call.Fun.(*ast.SelectorExpr); isSel {
			if (sel.Sel.Name == "Err" || sel.Sel.Name == "Done") &&
				isCtxType(pass.Info.Types[sel.X].Type) {
				ok = true
				return false
			}
		}
		for _, arg := range call.Args {
			if isCtxType(pass.Info.Types[arg].Type) {
				ok = true
				return false
			}
		}
		return true
	})
	return ok
}

// tripWithinBudget proves a three-clause loop `for i := lo; i < hi;
// i++` (or <=) runs at most ctxPollBudget iterations, with lo and hi
// compile-time constants.
func tripWithinBudget(pass *analysis.Pass, l *ast.ForStmt) bool {
	post, ok := l.Post.(*ast.IncDecStmt)
	if !ok || post.Tok != token.INC {
		return false
	}
	init, ok := l.Init.(*ast.AssignStmt)
	if !ok || len(init.Lhs) != 1 || len(init.Rhs) != 1 {
		return false
	}
	lo, ok := constInt(pass, init.Rhs[0])
	if !ok {
		return false
	}
	cond, ok := l.Cond.(*ast.BinaryExpr)
	if !ok || (cond.Op != token.LSS && cond.Op != token.LEQ) {
		return false
	}
	hi, ok := constInt(pass, cond.Y)
	if !ok {
		return false
	}
	trips := hi - lo
	if cond.Op == token.LEQ {
		trips++
	}
	return trips <= ctxPollBudget
}

// rangeWithinBudget proves a range loop iterates a fixed-size array
// of at most ctxPollBudget elements.
func rangeWithinBudget(pass *analysis.Pass, l *ast.RangeStmt) bool {
	t := pass.Info.Types[l.X].Type
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	arr, ok := t.Underlying().(*types.Array)
	return ok && arr.Len() <= ctxPollBudget
}

func constInt(pass *analysis.Pass, e ast.Expr) (int64, bool) {
	tv := pass.Info.Types[e]
	if tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}
