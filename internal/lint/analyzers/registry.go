package analyzers

import "tivaware/internal/lint/analysis"

// All returns the full tivlint suite in the order DESIGN.md's
// machine-checked invariants table lists it. cmd/tivlint and the
// in-tree self-checks both run exactly this set.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		EpochImmutability,
		LockOrder,
		CtxPoll,
		WireParity,
		LayerBoundary,
		AllocFree,
		WireErr,
		GoLeak,
	}
}
