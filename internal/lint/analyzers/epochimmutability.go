// Package analyzers holds the tivlint analyzer suite: five checkers,
// each encoding one invariant this codebase's concurrency and wire
// design rests on. See DESIGN.md "machine-checked invariants" for the
// invariant table and the sanctioned suppression mechanism.
package analyzers

import (
	"go/ast"
	"go/types"

	"tivaware/internal/lint/analysis"
)

// EpochImmutability flags writes to state reached through an
// atomic.Pointer Load: the copy-on-write epoch design (tivaware
// epochs, tivd cache entries) publishes immutable snapshots behind
// atomic pointers, and every lock-free reader depends on nobody
// mutating a published snapshot. The PR 6 prober bugs were exactly
// this shape — state loaded from an atomic pointer and then mutated
// in place.
var EpochImmutability = &analysis.Analyzer{
	Name: "epochimmutability",
	Doc: "flag mutation of state reached through atomic.Pointer.Load: " +
		"published copy-on-write snapshots are immutable; build a fresh value and Store it instead",
	Run: runEpochImmutability,
}

func runEpochImmutability(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkFuncImmutability(pass, fn.Body)
				}
				return false
			case *ast.FuncLit:
				// Reached only for package-level var initializers;
				// function-body literals are walked by their
				// enclosing declaration below.
				checkFuncImmutability(pass, fn.Body)
				return false
			}
			return true
		})
	}
	return nil
}

// checkFuncImmutability analyzes one function body (closures
// included: snapshot pointers regularly escape into goroutines).
//
// Tracking is by object, flow-insensitive: a variable is a snapshot
// alias when it is ever assigned from an atomic.Pointer Load — or
// from a pointer-shaped path (selector/index chain landing on a
// pointer, slice, or map) rooted at another snapshot alias — and
// never assigned from any other source. The mixed-provenance opt-out
// keeps the check sound against the load-or-allocate pattern
// (e := p.Load(); if e == nil { e = new(...) }) at the cost of
// missing mutations of such variables; single-origin flows, the
// PR 6 bug shape, are always caught.
func checkFuncImmutability(pass *analysis.Pass, body *ast.BlockStmt) {
	fromLoad := map[types.Object]bool{}  // ever assigned from Load / snapshot path
	fromOther := map[types.Object]bool{} // ever assigned from anything else
	var aliasEdges []aliasEdge

	classify := func(lhs, rhs ast.Expr) {
		obj := assignedObject(pass, lhs)
		if obj == nil {
			return
		}
		if isAtomicPointerLoad(pass, rhs) {
			fromLoad[obj] = true
			return
		}
		if root := pathRoot(rhs); root != nil && pointerShaped(obj.Type()) {
			// Alias of a (potential) snapshot interior pointer; the
			// root's classification decides, below, at fixpoint.
			aliasEdges = append(aliasEdges, aliasEdge{from: root, to: obj})
			return
		}
		fromOther[obj] = true
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) == len(s.Rhs) {
				for i := range s.Lhs {
					classify(s.Lhs[i], s.Rhs[i])
				}
			} else {
				for _, lhs := range s.Lhs {
					if obj := assignedObject(pass, lhs); obj != nil {
						fromOther[obj] = true
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range s.Names {
				if i < len(s.Values) {
					classify(name, s.Values[i])
				}
			}
		case *ast.RangeStmt:
			// for _, v := range snapshot.slice: v aliases elements of
			// snapshot state when they are pointer-shaped.
			if s.Value != nil {
				classify(s.Value, s.X)
			}
		}
		return true
	})

	// Propagate snapshot provenance across alias edges to fixpoint.
	for changed := true; changed; {
		changed = false
		for _, e := range aliasEdges {
			fromID, _ := e.from.(*ast.Ident)
			if fromID == nil {
				continue
			}
			obj := pass.Info.Uses[fromID]
			if obj == nil {
				continue
			}
			if fromLoad[obj] && !fromLoad[e.to] {
				fromLoad[e.to] = true
				changed = true
			}
		}
	}

	snapshot := func(obj types.Object) bool { return obj != nil && fromLoad[obj] && !fromOther[obj] }

	// A write is a violation when its left-hand side is a path with
	// at least one dereferencing step (selector, index, star) rooted
	// at a snapshot alias or directly at a Load call.
	flagWrite := func(lhs ast.Expr) {
		steps := 0
		e := lhs
	walk:
		for {
			switch x := e.(type) {
			case *ast.ParenExpr:
				e = x.X
			case *ast.SelectorExpr:
				steps++
				e = x.X
			case *ast.IndexExpr:
				steps++
				e = x.X
			case *ast.StarExpr:
				steps++
				e = x.X
			default:
				break walk
			}
		}
		if steps == 0 {
			return // rebinding the variable itself is fine
		}
		switch root := e.(type) {
		case *ast.Ident:
			if snapshot(pass.Info.Uses[root]) {
				pass.Reportf(lhs.Pos(),
					"write to %s mutates state loaded from an atomic pointer; published snapshots are immutable — copy, modify, and Store a fresh value",
					types.ExprString(lhs))
			}
		case *ast.CallExpr:
			if isAtomicPointerLoad(pass, root) {
				pass.Reportf(lhs.Pos(),
					"write through %s mutates the published snapshot in place; copy, modify, and Store a fresh value",
					types.ExprString(lhs))
			}
		}
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				flagWrite(lhs)
			}
		case *ast.IncDecStmt:
			flagWrite(s.X)
		}
		return true
	})
}

type aliasEdge struct {
	from ast.Expr // root identifier of the RHS path
	to   types.Object
}

// assignedObject resolves a plain-identifier assignment target.
func assignedObject(pass *analysis.Pass, lhs ast.Expr) types.Object {
	id, ok := lhs.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := pass.Info.Defs[id]; obj != nil {
		return obj
	}
	return pass.Info.Uses[id]
}

// isAtomicPointerLoad reports whether e is a call to
// (*sync/atomic.Pointer[T]).Load.
func isAtomicPointerLoad(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Load" {
		return false
	}
	s := pass.Info.Selections[sel]
	if s == nil {
		return false
	}
	return analysis.NamedFrom(s.Recv(), "sync/atomic", "Pointer")
}

// pathRoot returns the root identifier of a selector/index path, or
// nil when e is not such a path.
func pathRoot(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.Ident:
			return x
		default:
			return nil
		}
	}
}

// pointerShaped reports whether a value of type t shares memory when
// copied: pointers, slices, and maps. Copying a struct value breaks
// aliasing, so only these propagate snapshot provenance (this is also
// why ranging over a snapshot slice of structs stays legal: the loop
// variable is a copy).
func pointerShaped(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map:
		return true
	}
	return false
}
