package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"tivaware/internal/lint/analysis"
	"tivaware/internal/lint/flow"
)

// lockOrders declares the established lock hierarchy per package
// (matched by import-path suffix): a mutex may only be acquired while
// holding mutexes that appear EARLIER in its package's list. These
// are the orders the deadlock-freedom arguments in DESIGN.md rest on:
//
//   - tivshard: ApplyBatch holds per-owner ownerMu locks (ascending)
//     and journals under journalMu inside that critical section; the
//     subscription registry subMu is leaf-level (never held across a
//     callback or another acquisition).
//   - tivaware: the epoch-build mutex mu is released before fan-out
//     takes the registry lock subMu, so mu < subMu — subMu is a leaf.
//   - tivd: the query-cache mu and the SSE registry subMu are
//     independent today; declaring mu < subMu pins the direction any
//     future nesting must take.
var lockOrders = map[string][]string{
	"internal/tivshard": {"ownerMu", "journalMu", "subMu"},
	"internal/tivaware": {"mu", "subMu"},
	"internal/tivd":     {"mu", "subMu"},
}

// LockOrder enforces the two structural halves of the deadlock-
// freedom argument: (1) named mutexes nest only in the declared
// per-package order, and (2) any site acquiring multiple locks of one
// indexed mutex family (ownerMu[s]) does so in provably ascending
// index order. The analysis is per function, source order, with
// same-package call summaries: calling a function that (transitively)
// acquires a lock counts as acquiring it at the call site. Goroutine
// and deferred closures are analyzed with an empty held set — they do
// not run under the launcher's locks.
var LockOrder = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "enforce the declared mutex hierarchy (tivshard ownerMu < journalMu < subMu; " +
		"tivaware/tivd mu < subMu) and ascending acquisition of indexed lock families",
	Run: runLockOrder,
}

func runLockOrder(pass *analysis.Pass) error {
	var order []string
	for suffix, o := range lockOrders {
		if analysis.PathHasSuffix(strings.TrimSuffix(pass.Path, "_test"), suffix) {
			order = o
			break
		}
	}
	if order == nil {
		return nil
	}
	rank := map[string]int{}
	for i, name := range order {
		rank[name] = i
	}
	parents := buildParents(pass.Files)

	// Pass 1: per-function summaries — the set of declared locks a
	// function acquires anywhere in its body (closures included),
	// closed transitively over same-package calls.
	type funcInfo struct {
		decl     *ast.FuncDecl
		acquires map[string]bool
		calls    map[*types.Func]bool
	}
	infos := map[*types.Func]*funcInfo{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			fi := &funcInfo{decl: fd, acquires: map[string]bool{}, calls: map[*types.Func]bool{}}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if name, kind := lockCall(pass, call, rank); kind == lockAcquire {
						fi.acquires[name] = true
					} else if kind == lockNone {
						if callee := flow.StaticCallee(pass.Info, call); callee != nil && callee.Pkg() == pass.Pkg {
							fi.calls[callee] = true
						}
					}
				}
				return true
			})
			infos[obj] = fi
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range infos {
			for callee := range fi.calls {
				ci := infos[callee]
				if ci == nil {
					continue
				}
				for name := range ci.acquires {
					if !fi.acquires[name] {
						fi.acquires[name] = true
						changed = true
					}
				}
			}
		}
	}

	// Pass 2: walk each function in source order tracking the held
	// set, flagging order-inverting acquisitions (direct, or through
	// a summarized callee) and unprovable indexed-family multi-locks.
	w := &lockWalker{
		pass:    pass,
		rank:    rank,
		parents: parents,
		summary: func(fn *types.Func) map[string]bool {
			if fi := infos[fn]; fi != nil {
				return fi.acquires
			}
			return nil
		},
	}
	for _, fi := range infos {
		held := []heldLock{}
		w.walkStmts(fi.decl.Body.List, &held)
	}
	return nil
}

// buildParents records each node's syntactic parent, for climbing to
// enclosing loops and functions.
func buildParents(files []*ast.File) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	for _, f := range files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if len(stack) > 0 {
				parents[n] = stack[len(stack)-1]
			}
			stack = append(stack, n)
			return true
		})
	}
	return parents
}

type lockKind int

const (
	lockNone lockKind = iota
	lockAcquire
	lockRelease
)

// lockCall classifies a call as Lock/Unlock on a declared mutex and
// returns the mutex's declared name. RLock/RUnlock count: read locks
// participate in deadlock cycles the same way. Indexed acquisitions
// (fam[i].Lock) report the family's field name.
func lockCall(pass *analysis.Pass, call *ast.CallExpr, rank map[string]int) (string, lockKind) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", lockNone
	}
	var kind lockKind
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = lockAcquire
	case "Unlock", "RUnlock":
		kind = lockRelease
	default:
		return "", lockNone
	}
	if s := pass.Info.Selections[sel]; s == nil ||
		!(analysis.NamedFrom(s.Recv(), "sync", "Mutex") || analysis.NamedFrom(s.Recv(), "sync", "RWMutex")) {
		return "", lockNone
	}
	name := mutexName(sel.X)
	if _, declared := rank[name]; !declared {
		return "", lockNone
	}
	return name, kind
}

// mutexName names the mutex a Lock/Unlock receiver path refers to:
// the final selector field (s.mu → "mu", g.ownerMu[s] → "ownerMu"),
// or the identifier itself for locals.
func mutexName(e ast.Expr) string {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			return x.Sel.Name
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}

// exprObject resolves a plain identifier to its object.
func exprObject(pass *analysis.Pass, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := pass.Info.Uses[id]; obj != nil {
		return obj
	}
	return pass.Info.Defs[id]
}

// lockWalker tracks the held set through one function body in source
// order — the standard cheap linearization: a lock acquired in a
// branch is considered held from its source position until its
// source-order release.
type lockWalker struct {
	pass    *analysis.Pass
	rank    map[string]int
	parents map[ast.Node]ast.Node
	summary func(*types.Func) map[string]bool
}

type heldLock struct {
	name    string
	indexed bool
	pos     token.Pos
}

func (w *lockWalker) walkStmts(stmts []ast.Stmt, held *[]heldLock) {
	for _, s := range stmts {
		w.walkNode(s, held)
	}
}

func (w *lockWalker) walkNode(n ast.Node, held *[]heldLock) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch s := x.(type) {
		case *ast.GoStmt:
			// Runs on another goroutine: empty held set; summaries do
			// not apply across the spawn.
			if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
				fresh := []heldLock{}
				w.walkStmts(lit.Body.List, &fresh)
			}
			return false
		case *ast.DeferStmt:
			// Runs at return. A deferred Unlock keeps the lock held
			// for the remaining body (correct for nesting edges); a
			// deferred closure is analyzed with an empty held set.
			if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
				fresh := []heldLock{}
				w.walkStmts(lit.Body.List, &fresh)
			}
			return false
		case *ast.IfStmt:
			// A branch whose every exit is a return/panic cannot leak
			// locks past the statement: the deferred-Unlock-then-return
			// idiom (lock in a fast-path branch, return inside it) is
			// not "still holding" on the fall-through path. Diagnostics
			// inside the branch still see the branch-local held set.
			if s.Init != nil {
				w.walkNode(s.Init, held)
			}
			w.walkNode(s.Cond, held)
			w.walkBranch(s.Body, held)
			if s.Else != nil {
				if blk, ok := s.Else.(*ast.BlockStmt); ok {
					w.walkBranch(blk, held)
				} else {
					w.walkNode(s.Else, held) // else-if chain
				}
			}
			return false
		case *ast.CallExpr:
			w.handleCall(s, held)
			return false // handleCall walks arguments itself
		case *ast.FuncLit:
			// A closure not launched by go/defer may run immediately
			// (inline invocation) — analyze under the current held set.
			heldCopy := append([]heldLock(nil), *held...)
			w.walkStmts(s.Body.List, &heldCopy)
			return false
		}
		return true
	})
}

// walkBranch walks an if/else block; when the block terminates
// (return or panic as its final statement), held-set changes made
// inside stay inside.
func (w *lockWalker) walkBranch(blk *ast.BlockStmt, held *[]heldLock) {
	if terminates(blk) {
		branch := append([]heldLock(nil), *held...)
		w.walkStmts(blk.List, &branch)
		return
	}
	w.walkStmts(blk.List, held)
}

// terminates reports whether the block's final statement leaves the
// function (return, or an unconditional panic).
func terminates(blk *ast.BlockStmt) bool {
	if len(blk.List) == 0 {
		return false
	}
	switch last := blk.List[len(blk.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func (w *lockWalker) handleCall(call *ast.CallExpr, held *[]heldLock) {
	for _, arg := range call.Args {
		w.walkNode(arg, held) // nested calls in arguments evaluate first
	}
	name, kind := lockCall(w.pass, call, w.rank)
	switch kind {
	case lockAcquire:
		indexed := isIndexedRecv(call)
		for _, h := range *held {
			if h.name == name {
				if !(indexed && h.indexed) {
					w.pass.Reportf(call.Pos(), "%s acquired while already held (self-deadlock)", name)
				}
				continue
			}
			if w.rank[h.name] > w.rank[name] {
				w.pass.Reportf(call.Pos(),
					"lock order violation: %s acquired while holding %s — the declared order is %s before %s (see DESIGN.md machine-checked invariants)",
					name, h.name, name, h.name)
			}
		}
		if indexed {
			w.checkAscending(call, name, held)
		}
		*held = append(*held, heldLock{name: name, indexed: indexed, pos: call.Pos()})
	case lockRelease:
		for i := len(*held) - 1; i >= 0; i-- {
			if (*held)[i].name == name {
				*held = append((*held)[:i], (*held)[i+1:]...)
				break
			}
		}
	default:
		callee := flow.StaticCallee(w.pass.Info, call)
		if callee == nil || callee.Pkg() != w.pass.Pkg || len(*held) == 0 {
			return
		}
		for lockName := range w.summary(callee) {
			for _, h := range *held {
				if h.name == lockName {
					// Same-name re-entrancy through a callee is real
					// (self-deadlock) only for non-indexed locks; the
					// indexed family's discipline is the ascending
					// check's business.
					if !h.indexed {
						w.pass.Reportf(call.Pos(),
							"call to %s may re-acquire %s already held here (self-deadlock)", callee.Name(), lockName)
					}
					continue
				}
				if w.rank[h.name] > w.rank[lockName] {
					w.pass.Reportf(call.Pos(),
						"lock order violation: call to %s acquires %s while holding %s — the declared order is %s before %s",
						callee.Name(), lockName, h.name, lockName, h.name)
				}
			}
		}
	}
}

func isIndexedRecv(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	_, ok = ast.Unparen(sel.X).(*ast.IndexExpr)
	return ok
}

// checkAscending verifies that an indexed-family acquisition
// fam[idx].Lock() inside a loop provably walks ascending indices:
// either idx is the variable of an ascending three-clause for loop,
// or the site ranges over a slice whose every append in the function
// happens inside such a loop with the loop variable as the element
// (the "collect indices in order, then lock in order" idiom
// ApplyBatch uses). Everything else — including a second family
// acquisition while one is already held outside a provable loop — is
// flagged: ascending order is what prevents deadlock between racing
// multi-shard batches.
func (w *lockWalker) checkAscending(call *ast.CallExpr, name string, held *[]heldLock) {
	sel := call.Fun.(*ast.SelectorExpr)
	idx := ast.Unparen(sel.X).(*ast.IndexExpr).Index
	idxObj := exprObject(w.pass, idx)

	loop := w.enclosingLoop(call)
	if loop == nil {
		for _, h := range *held {
			if h.name == name && h.indexed {
				w.pass.Reportf(call.Pos(),
					"multiple %s[...] acquisitions outside a provably ascending loop; take all family locks in one ascending-index loop", name)
				return
			}
		}
		return // single acquisition: no order to violate
	}
	switch l := loop.(type) {
	case *ast.ForStmt:
		if v := ascendingForVar(w.pass, l); v != nil && v == idxObj {
			return
		}
	case *ast.RangeStmt:
		if l.Value != nil && idxObj != nil && exprObject(w.pass, l.Value) == idxObj {
			if sliceVar := exprObject(w.pass, l.X); sliceVar != nil && w.appendsAscending(call, sliceVar) {
				return
			}
		}
	}
	w.pass.Reportf(call.Pos(),
		"cannot prove ascending index order for %s[...] acquisition in this loop; iterate indices in increasing order (deadlock-freedom of racing multi-lock batches depends on it)", name)
}

// enclosingLoop climbs to the innermost for/range statement around n,
// stopping at function boundaries.
func (w *lockWalker) enclosingLoop(n ast.Node) ast.Stmt {
	for p := w.parents[n]; p != nil; p = w.parents[p] {
		switch s := p.(type) {
		case *ast.ForStmt:
			return s
		case *ast.RangeStmt:
			return s
		case *ast.FuncLit, *ast.FuncDecl:
			return nil
		}
	}
	return nil
}

// ascendingForVar returns the loop variable of `for i := lo; i < hi;
// i++` (or i <= hi), the canonical ascending scan.
func ascendingForVar(pass *analysis.Pass, l *ast.ForStmt) types.Object {
	post, ok := l.Post.(*ast.IncDecStmt)
	if !ok || post.Tok != token.INC {
		return nil
	}
	v := exprObject(pass, post.X)
	if v == nil {
		return nil
	}
	cond, ok := l.Cond.(*ast.BinaryExpr)
	if !ok || (cond.Op != token.LSS && cond.Op != token.LEQ) || exprObject(pass, cond.X) != v {
		return nil
	}
	return v
}

// appendsAscending reports whether every assignment to the slice
// object within its function is `s = append(s, v)` under an ascending
// for loop with v the loop variable.
func (w *lockWalker) appendsAscending(at ast.Node, sliceVar types.Object) bool {
	fn := w.enclosingFunc(at)
	if fn == nil {
		return false
	}
	ok := true
	seen := false
	ast.Inspect(fn, func(n ast.Node) bool {
		as, isAssign := n.(*ast.AssignStmt)
		if !isAssign {
			return true
		}
		for i, lhs := range as.Lhs {
			if exprObject(w.pass, lhs) != sliceVar || i >= len(as.Rhs) {
				continue
			}
			if as.Tok == token.DEFINE && !isAppendOf(w.pass, as.Rhs[i], sliceVar, nil) {
				// The declaration (locked := make(...)) is fine.
				continue
			}
			loop, _ := w.enclosingLoop(as).(*ast.ForStmt)
			var loopVar types.Object
			if loop != nil {
				loopVar = ascendingForVar(w.pass, loop)
			}
			if loopVar == nil || !isAppendOf(w.pass, as.Rhs[i], sliceVar, loopVar) {
				ok = false
			} else {
				seen = true
			}
		}
		return true
	})
	return ok && seen
}

// isAppendOf reports whether e is append(sliceVar, v) where v is
// elem (elem nil matches any element expression).
func isAppendOf(pass *analysis.Pass, e ast.Expr, sliceVar, elem types.Object) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 2 || call.Ellipsis.IsValid() {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	if exprObject(pass, call.Args[0]) != sliceVar {
		return false
	}
	return elem == nil || exprObject(pass, call.Args[1]) == elem
}

func (w *lockWalker) enclosingFunc(n ast.Node) ast.Node {
	for p := w.parents[n]; p != nil; p = w.parents[p] {
		switch p.(type) {
		case *ast.FuncLit, *ast.FuncDecl:
			return p
		}
	}
	return nil
}
