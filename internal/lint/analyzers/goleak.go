package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"tivaware/internal/lint/analysis"
	"tivaware/internal/lint/flow"
)

// GoLeak proves serving-plane goroutines terminate. The paper's
// deployment model is a TIV monitor running continuously inside the
// serving path; a goroutine leaked per request or per reconnect is
// exactly the slow-burn failure that model cannot tolerate, and it
// never shows up in a short test run.
var GoLeak = &analysis.Analyzer{
	Name: "goleak",
	Doc: `every serving-plane go statement must provably terminate.

For each go statement in internal/tivd, internal/tivshard,
internal/tivclient, internal/tivfault, and internal/tivframe
(production files only), the
spawned function and everything it transitively calls must be
summarized as terminating: every loop either is bounded (a monotone
induction variable against a bound neither of which the body
reassigns), ranges over a collection or channel, is a lock-free
sync/atomic CompareAndSwap retry loop, or contains a channel receive
(ctx.Done/quit/data channel) alongside a reachable return or break;
recursion and dynamic calls the callgraph cannot resolve are
unprovable and flagged. External (stdlib) calls are assumed to return
— blocking reads bounded by request-context cancellation are beyond
static proof, so a spawn relying on one carries a //lint:tiv goleak
suppression stating that reasoning. Interface-dispatch calls are
assumed to return for the same reason: the callgraph's
class-hierarchy resolution of a common method name (Close, Read)
reaches every implementation in the module, and treating those edges
as real would report spurious recursion through types that never
meet.

Fix by selecting on ctx.Done()/a close channel in the loop, bounding
it, or suppressing the spawn site with the termination argument.`,
	Run: runGoLeak,
}

// leakScopes are the serving-plane packages (exact package suffix, so
// internal/tivshard/testcluster — test scaffolding — is out of scope).
var leakScopes = []string{"internal/tivd", "internal/tivshard", "internal/tivclient", "internal/tivfault", "internal/tivframe"}

// termFact summarizes whether a function provably terminates; when it
// does not, why and where.
type termFact struct {
	ok  bool
	why string
	pos token.Pos
}

func runGoLeak(pass *analysis.Pass) error {
	g := flow.Of(pass)
	if g == nil {
		return nil
	}
	inScope := false
	for _, s := range leakScopes {
		if analysis.PathHasSuffix(pass.Path, s) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	facts := g.Memo("goleak", func() any { return computeTermFacts(g) }).(map[*flow.Func]termFact)
	for _, f := range g.UnitFuncs(pass.Path) {
		if f.Test {
			continue
		}
		for _, c := range f.Calls {
			if !c.Go {
				continue
			}
			switch {
			case c.Callee != nil:
				if t := facts[c.Callee]; !t.ok {
					pass.Reportf(c.Pos(), "goroutine may never terminate: %s %s", c.Callee.Display, t.why)
				}
			case c.External != nil:
				pass.Reportf(c.Pos(), "goroutine spawns external function %s.%s (termination not provable)",
					c.External.Pkg().Name(), c.External.Name())
			case c.Dynamic:
				pass.Reportf(c.Pos(), "goroutine spawns through a function value the callgraph cannot resolve")
			}
		}
	}
	return nil
}

// computeTermFacts summarizes termination bottom-up over the SCC
// order, so callees are always summarized before callers; members of a
// non-trivial SCC (recursion) are unprovable.
func computeTermFacts(g *flow.Graph) map[*flow.Func]termFact {
	facts := map[*flow.Func]termFact{}
	for _, scc := range termSCCs(g) {
		if len(scc) > 1 {
			for _, f := range scc {
				facts[f] = termFact{why: "is mutually recursive (termination not provable)", pos: f.Pos()}
			}
			continue
		}
		f := scc[0]
		facts[f] = summarizeTermination(g, f, facts)
	}
	return facts
}

// termEdge reports whether termination propagates along a call edge:
// static module calls only. Go edges do not block their spawner, and
// interface-dispatch edges are assumed to return (see the analyzer
// doc) — without this, every Close method in the module looks
// mutually recursive with every other through the shared interface.
func termEdge(c flow.Call) bool {
	return c.Callee != nil && !c.Go && !c.Interface && !c.Ref
}

// termSCCs condenses the callgraph over termination edges (Tarjan,
// deterministic root order), bottom-up: each SCC is emitted after
// everything it calls. The flow graph's own SCCs are not reusable
// here because they include the edges termEdge excludes.
func termSCCs(g *flow.Graph) [][]*flow.Func {
	keys := make([]string, 0, len(g.Funcs))
	for k := range g.Funcs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	index := map[*flow.Func]int{}
	low := map[*flow.Func]int{}
	onStack := map[*flow.Func]bool{}
	var stack []*flow.Func
	var out [][]*flow.Func
	next := 0
	var connect func(f *flow.Func)
	connect = func(f *flow.Func) {
		index[f] = next
		low[f] = next
		next++
		stack = append(stack, f)
		onStack[f] = true
		for _, c := range f.Calls {
			if !termEdge(c) {
				continue
			}
			w := c.Callee
			if _, seen := index[w]; !seen {
				connect(w)
				low[f] = min(low[f], low[w])
			} else if onStack[w] {
				low[f] = min(low[f], index[w])
			}
		}
		if low[f] == index[f] {
			var scc []*flow.Func
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == f {
					break
				}
			}
			out = append(out, scc)
		}
	}
	for _, k := range keys {
		if _, seen := index[g.Funcs[k]]; !seen {
			connect(g.Funcs[k])
		}
	}
	return out
}

func summarizeTermination(g *flow.Graph, f *flow.Func, facts map[*flow.Func]termFact) termFact {
	body := f.Body()
	if body == nil {
		return termFact{ok: true} // assembly stub: straight-line kernel
	}
	// Self-recursion.
	for _, c := range f.Calls {
		if termEdge(c) && c.Callee == f {
			return termFact{why: "is self-recursive (termination not provable)", pos: f.Pos()}
		}
	}
	// Every loop must be compliant.
	var bad *termFact
	info := f.Unit.Info
	flow.WalkStack(body, func(n ast.Node, stack []ast.Node) bool {
		if bad != nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false // separate node; its spawns/calls are its own
		}
		switch n := n.(type) {
		case *ast.RangeStmt:
			return true // finite collection, or channel-until-close
		case *ast.ForStmt:
			if !loopTerminates(n, info) {
				pos := g.Fset.Position(n.Pos())
				bad = &termFact{
					why: fmt.Sprintf("has a loop at %s:%d with no cancellation receive, break, or bound",
						shortBase(pos.Filename), pos.Line),
					pos: n.Pos(),
				}
				return false
			}
			return true
		}
		return true
	})
	if bad != nil {
		return *bad
	}
	// Every callee must terminate (go edges excluded: a spawned
	// goroutine does not block its parent, and its own go statement
	// gets its own finding when in scope).
	for _, c := range f.Calls {
		if !termEdge(c) {
			// External and interface calls are assumed to return;
			// dynamic calls in non-looping code cannot leak by
			// themselves; a spawned goroutine does not block its parent.
			continue
		}
		if t, ok := facts[c.Callee]; ok && !t.ok {
			return termFact{why: "calls " + c.Callee.Display + ", which " + t.why, pos: c.Pos()}
		}
	}
	return termFact{ok: true}
}

func shortBase(name string) string {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '/' {
			return name[i+1:]
		}
	}
	return name
}

// loopTerminates reports whether a for loop is provably bounded or
// cancellable: it has a bounded trip count (any bound — the loop ends
// — not ctxpoll's latency budget), or its body contains a channel
// receive (plain statement or select comm case) together with a
// return or break, so cancellation/close of the channel can exit it.
func loopTerminates(fs *ast.ForStmt, info *types.Info) bool {
	if fs.Body == nil {
		return false
	}
	if boundedFor(fs, info) {
		return true
	}
	hasReceive, hasExit := false, false
	ast.Inspect(fs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			// A nested loop's receives don't make the outer loop
			// cancellable, and a break inside it exits the inner loop;
			// the nested loop is checked on its own visit (this is
			// conservative: a return inside a nested loop is ignored).
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				hasReceive = true
			}
		case *ast.CommClause:
			// select case: a receive case counts; its body's
			// return/break exits the loop.
			if n.Comm != nil {
				hasReceive = true
			}
		case *ast.CallExpr:
			// A lock-free CAS retry loop (for { ...; if CAS { return } })
			// terminates under the usual progress guarantee: the CAS
			// fails only because another writer succeeded.
			if atomicCAS(n, info) {
				hasReceive = true
			}
		case *ast.ReturnStmt:
			hasExit = true
		case *ast.BranchStmt:
			if n.Tok == token.BREAK || n.Tok == token.GOTO {
				hasExit = true
			}
		}
		return true
	})
	// A terminating condition also counts as an exit: `for !done { <-ch }`.
	if fs.Cond != nil {
		hasExit = true
	}
	return hasReceive && hasExit
}

// atomicCAS matches CompareAndSwap calls on sync/atomic types.
func atomicCAS(call *ast.CallExpr, info *types.Info) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !strings.HasPrefix(sel.Sel.Name, "CompareAndSwap") {
		return false
	}
	m, ok := info.Uses[sel.Sel].(*types.Func)
	return ok && m.Pkg() != nil && m.Pkg().Path() == "sync/atomic"
}

// boundedFor proves a three-clause loop `for i := lo; i < hi; i++`
// (or the <=, >, >= variants) terminates: the induction variable
// moves monotonically toward a stable bound — a constant, a variable,
// a field, or len/cap of one — and the body reassigns neither the
// variable nor the bound. This covers the shard-fanout idiom
// `for s := 0; s < g.k; s++` without trusting arbitrary conditions.
func boundedFor(fs *ast.ForStmt, info *types.Info) bool {
	post, ok := fs.Post.(*ast.IncDecStmt)
	if !ok {
		return false
	}
	iv, ok := ast.Unparen(post.X).(*ast.Ident)
	if !ok || info.ObjectOf(iv) == nil {
		return false
	}
	cond, ok := fs.Cond.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	lhs, ok := ast.Unparen(cond.X).(*ast.Ident)
	if !ok || info.ObjectOf(lhs) != info.ObjectOf(iv) {
		return false
	}
	switch cond.Op {
	case token.LSS, token.LEQ:
		if post.Tok != token.INC {
			return false
		}
	case token.GTR, token.GEQ:
		if post.Tok != token.DEC {
			return false
		}
	default:
		return false
	}
	if !stableBound(cond.Y, info) {
		return false
	}
	// Collect the objects the proof depends on: the induction variable
	// and every variable the bound reads.
	pinned := map[types.Object]bool{info.ObjectOf(iv): true}
	ast.Inspect(cond.Y, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := info.ObjectOf(id).(*types.Var); ok {
				pinned[v] = true
			}
		}
		return true
	})
	// Any write (or address-take) of a pinned object in the body —
	// including inside closures — voids the proof.
	mutated := false
	ast.Inspect(fs.Body, func(n ast.Node) bool {
		touch := func(e ast.Expr) {
			ast.Inspect(e, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && pinned[info.ObjectOf(id)] {
					mutated = true
				}
				return !mutated
			})
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				touch(l)
			}
		case *ast.IncDecStmt:
			touch(n.X)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				touch(n.X)
			}
		}
		return !mutated
	})
	return !mutated
}

// stableBound accepts bound expressions whose value cannot change
// while the loop runs (given boundedFor's no-reassignment check):
// constants, plain variables, field selections, and len/cap of one.
func stableBound(e ast.Expr, info *types.Info) bool {
	e = ast.Unparen(e)
	if tv := info.Types[e]; tv.Value != nil {
		return true
	}
	switch e := e.(type) {
	case *ast.Ident:
		_, ok := info.ObjectOf(e).(*types.Var)
		return ok
	case *ast.SelectorExpr:
		switch x := ast.Unparen(e.X).(type) {
		case *ast.Ident:
			_, ok := info.ObjectOf(x).(*types.Var)
			return ok
		case *ast.SelectorExpr:
			return stableBound(x, info)
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && len(e.Args) == 1 {
			if b, ok := info.Uses[id].(*types.Builtin); ok && (b.Name() == "len" || b.Name() == "cap") {
				return stableBound(e.Args[0], info)
			}
		}
	}
	return false
}
