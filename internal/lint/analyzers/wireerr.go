package analyzers

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"tivaware/internal/lint/analysis"
	"tivaware/internal/lint/flow"
)

// WireErr enforces the wire error taxonomy interprocedurally: every
// error value that can flow to a tivd handler response, a gateway
// scatter reply, or the tivclient API surface must be (or wrap, via a
// typed constructor) a WireCode-carrying type, so clients dispatch on
// structured codes instead of string-matching messages.
var WireErr = &analysis.Analyzer{
	Name: "wireerr",
	Doc: `errors reaching the wire must carry a WireCode.

Roots are the wire surfaces: methods implementing the tivd.Backend
interface, exported functions and methods of internal/tivclient, and
the error arguments of tivd's serviceError/errorEnvelope/resultEnvelope
sinks. The analyzer classifies each root's returned errors and chases
them backward through the callgraph: a function whose error result a
wire surface returns is itself wire-reachable. Flagged origins are
bare fmt.Errorf (no %w wrapping of an already-typed cause) and
errors.New, plus raw errors from external (stdlib) calls escaping
without a typed wrapper — each reported at the origin with the flow
path to the surface it reaches. Only origins inside internal/tivd,
internal/tivshard, and internal/tivclient are reported: layers below
the wire boundary (tivaware, tiv) return plain errors by design and
the serving plane owns their classification.

Fix by constructing the typed taxonomy instead (tivwire.Error,
tivd serviceError/reqError, tivshard gwError, tivclient Error) or
wrapping the cause with a typed constructor; accept pre-existing debt
via tivlint.baseline.json, or suppress a deliberate site with
//lint:tiv wireerr <why>.`,
	Run: runWireErr,
}

// wireScopes are the packages whose untyped origins are reported.
var wireScopes = []string{"internal/tivd", "internal/tivshard", "internal/tivclient"}

type wireOrigin struct {
	pos  token.Pos
	desc string
}

// wireClass summarizes one function's (or sink argument's) error
// provenance: untyped origins plus the module functions whose error
// results flow through it.
type wireClass struct {
	origins []wireOrigin
	deps    []*flow.Func
}

// wireSink records why a function is wire-reachable, for diagnostics.
type wireSink struct {
	desc string     // root description, e.g. "the tivd.Backend surface (tivshard.(*Gateway).Rank)"
	via  *flow.Func // backward-BFS predecessor (the caller that returns our error), nil at roots
}

type wireFacts struct {
	reach   map[*flow.Func]wireSink
	classes map[*flow.Func]*wireClass
	// sinkArgs are origins classified directly from envelope-sink call
	// arguments, attributed to the function containing the call.
	sinkArgs map[*flow.Func][]wireOrigin
}

func runWireErr(pass *analysis.Pass) error {
	g := flow.Of(pass)
	if g == nil {
		return nil
	}
	facts := g.Memo("wireerr", func() any { return computeWireFacts(g) }).(*wireFacts)
	for _, f := range g.UnitFuncs(pass.Path) {
		if f.Test {
			continue
		}
		sink, ok := facts.reach[f]
		if ok && inWireScope(f.Unit.Path) {
			for _, o := range facts.classes[f].origins {
				pass.Reportf(o.pos, "untyped error reaches the wire: %s in %s (%s)", o.desc, f.Display, wireChain(facts, f, sink))
			}
		}
		for _, o := range facts.sinkArgs[f] {
			pass.Reportf(o.pos, "untyped error reaches the wire: %s passed directly to a tivd response envelope in %s", o.desc, f.Display)
		}
	}
	return nil
}

func inWireScope(path string) bool {
	for _, s := range wireScopes {
		if analysis.PathHasSuffix(path, s) {
			return true
		}
	}
	return false
}

// wireChain renders the origin-to-surface flow path.
func wireChain(facts *wireFacts, f *flow.Func, sink wireSink) string {
	var hops []string
	cur, s := f, sink
	for s.via != nil {
		hops = append(hops, s.via.Display)
		cur = s.via
		s = facts.reach[cur]
	}
	if len(hops) == 0 {
		return "returned by " + s.desc
	}
	return "flows via " + strings.Join(hops, " → ") + " to " + s.desc
}

func computeWireFacts(g *flow.Graph) *wireFacts {
	facts := &wireFacts{
		reach:    map[*flow.Func]wireSink{},
		classes:  map[*flow.Func]*wireClass{},
		sinkArgs: map[*flow.Func][]wireOrigin{},
	}
	var queue []*flow.Func
	enqueue := func(f *flow.Func, sink wireSink) {
		if f == nil || f.Test {
			return
		}
		if _, seen := facts.reach[f]; seen {
			return
		}
		facts.reach[f] = sink
		queue = append(queue, f)
	}
	// Root set 1: methods of module types implementing tivd.Backend.
	for _, m := range backendSurface(g) {
		enqueue(m.fn, wireSink{desc: m.desc})
	}
	// Root set 2: the exported API of internal/tivclient.
	for _, f := range clientSurface(g) {
		enqueue(f, wireSink{desc: "the tivclient API surface (" + f.Display + ")"})
	}
	// Root set 3: error arguments handed to tivd's envelope sinks.
	sinkArgs := envelopeSinkArgs(g)
	owners := make([]*flow.Func, 0, len(sinkArgs))
	for owner := range sinkArgs {
		owners = append(owners, owner)
	}
	sort.Slice(owners, func(i, j int) bool { return owners[i].Key < owners[j].Key })
	for _, owner := range owners {
		cls := sinkArgs[owner]
		dedupeOrigins(cls)
		facts.sinkArgs[owner] = append(facts.sinkArgs[owner], cls.origins...)
		for _, dep := range cls.deps {
			enqueue(dep, wireSink{desc: "a tivd response envelope (via " + owner.Display + ")"})
		}
	}
	// Backward closure: a function whose error a wire-reachable
	// function returns is itself wire-reachable.
	for len(queue) > 0 {
		f := queue[0]
		queue = queue[1:]
		cls := facts.classOf(f)
		for _, dep := range cls.deps {
			enqueue(dep, wireSink{desc: facts.reach[f].desc, via: f})
		}
	}
	return facts
}

func (facts *wireFacts) classOf(f *flow.Func) *wireClass {
	if cls, ok := facts.classes[f]; ok {
		return cls
	}
	cls := classifyFuncErrors(f)
	dedupeOrigins(cls)
	facts.classes[f] = cls
	return cls
}

// dedupeOrigins drops repeat classifications of one origin site — the
// same error variable returned at several return statements resolves
// to the same source expression each time.
func dedupeOrigins(cls *wireClass) {
	seen := map[token.Pos]bool{}
	kept := cls.origins[:0]
	for _, o := range cls.origins {
		if seen[o.pos] {
			continue
		}
		seen[o.pos] = true
		kept = append(kept, o)
	}
	cls.origins = kept
}

// sortedFuncs iterates the graph deterministically (diagnostic chains
// depend on BFS discovery order).
func sortedFuncs(g *flow.Graph) []*flow.Func {
	keys := make([]string, 0, len(g.Funcs))
	for k := range g.Funcs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*flow.Func, 0, len(keys))
	for _, k := range keys {
		out = append(out, g.Funcs[k])
	}
	return out
}

// backendMethod is one wire-surface method root.
type backendMethod struct {
	fn   *flow.Func
	desc string
}

// ifaceMethod identifies one interface method by name plus
// path-qualified signature.
type ifaceMethod struct{ name, sig string }

// backendSurface finds every module method implementing the Backend
// interface declared in a package ending internal/tivd. Implementation
// is decided by method-name + path-qualified-signature matching, never
// types.Implements, because the loader type-checks each unit in its
// own universe.
func backendSurface(g *flow.Graph) []backendMethod {
	var want []ifaceMethod
	seen := map[*types.Package]bool{}
	for _, f := range sortedFuncs(g) {
		p := f.Unit.Types
		if seen[p] || !analysis.PathHasSuffix(p.Path(), "internal/tivd") {
			continue
		}
		seen[p] = true
		obj, _ := p.Scope().Lookup("Backend").(*types.TypeName)
		if obj == nil {
			continue
		}
		iface, ok := obj.Type().Underlying().(*types.Interface)
		if !ok {
			continue
		}
		for i := 0; i < iface.NumMethods(); i++ {
			m := iface.Method(i)
			want = append(want, ifaceMethod{m.Name(), wireSigKey(m)})
		}
	}
	if len(want) == 0 {
		return nil
	}
	var out []backendMethod
	seenType := map[string]bool{}
	for _, f := range sortedFuncs(g) {
		if f.Obj == nil || f.Decl == nil || f.Decl.Recv == nil {
			continue
		}
		sig := f.Obj.Type().(*types.Signature)
		r := sig.Recv()
		if r == nil || types.IsInterface(r.Type()) {
			continue
		}
		named := namedOf(r.Type())
		if named == nil {
			continue
		}
		tkey := named.Obj().Pkg().Path() + "." + named.Obj().Name()
		if seenType[tkey] {
			continue
		}
		seenType[tkey] = true
		ms := types.NewMethodSet(types.NewPointer(named))
		if !coversIface(ms, want) {
			continue
		}
		// The type implements Backend: every matching method with an
		// error result is a wire surface.
		for _, w := range want {
			sel := ms.Lookup(nil, w.name)
			if sel == nil {
				continue
			}
			m, _ := sel.Obj().(*types.Func)
			if m == nil || !returnsError(m) {
				continue
			}
			node := g.ByKey(flow.KeyOf(m))
			if node == nil {
				continue
			}
			out = append(out, backendMethod{fn: node, desc: "the tivd.Backend surface (" + node.Display + ")"})
		}
	}
	return out
}

func coversIface(ms *types.MethodSet, want []ifaceMethod) bool {
	for _, w := range want {
		sel := ms.Lookup(nil, w.name)
		if sel == nil {
			return false
		}
		m, ok := sel.Obj().(*types.Func)
		if !ok || wireSigKey(m) != w.sig {
			return false
		}
	}
	return true
}

func namedOf(t types.Type) *types.Named {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	if n != nil {
		n = n.Origin()
	}
	return n
}

// wireSigKey renders a method signature without receiver, qualified by
// package path (stable across type-check universes).
func wireSigKey(m *types.Func) string {
	sig := m.Type().(*types.Signature)
	s := types.NewSignatureType(nil, nil, nil, sig.Params(), sig.Results(), sig.Variadic())
	return types.TypeString(s, func(p *types.Package) string { return p.Path() })
}

func returnsError(m *types.Func) bool {
	sig := m.Type().(*types.Signature)
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			return true
		}
	}
	return false
}

// clientSurface returns the exported error-returning functions and
// methods declared in internal/tivclient production files.
func clientSurface(g *flow.Graph) []*flow.Func {
	var out []*flow.Func
	for _, f := range sortedFuncs(g) {
		if f.Obj == nil || f.Test || f.Decl == nil {
			continue
		}
		if !analysis.PathHasSuffix(f.Unit.Path, "internal/tivclient") {
			continue
		}
		if !f.Obj.Exported() || !returnsError(f.Obj) {
			continue
		}
		out = append(out, f)
	}
	return out
}

// envelopeSinkArgs classifies the error arguments of every call to
// tivd's serviceError/errorEnvelope/resultEnvelope, keyed by the
// function containing the call. Callers that pass an explicit wire
// code (writeError) are not sinks: the code is already chosen there.
func envelopeSinkArgs(g *flow.Graph) map[*flow.Func]*wireClass {
	out := map[*flow.Func]*wireClass{}
	sinkNames := map[string]bool{"serviceError": true, "errorEnvelope": true, "resultEnvelope": true}
	for _, f := range sortedFuncs(g) {
		if f.Test || f.Body() == nil {
			continue
		}
		if !analysis.PathHasSuffix(f.Unit.Path, "internal/tivd") {
			continue
		}
		info := f.Unit.Info
		for _, c := range f.Calls {
			if c.Site == nil {
				continue
			}
			callee := flow.StaticCallee(info, c.Site)
			if callee == nil || !sinkNames[callee.Name()] || callee.Pkg() == nil {
				continue
			}
			if !analysis.PathHasSuffix(callee.Pkg().Path(), "internal/tivd") {
				continue
			}
			for _, arg := range c.Site.Args {
				t := info.Types[arg].Type
				if t == nil || !isErrorType(t) {
					continue
				}
				cls := out[f]
				if cls == nil {
					cls = &wireClass{}
					out[f] = cls
				}
				classifyErrExpr(f, arg, cls, map[ast.Node]bool{}, 0)
			}
		}
	}
	return out
}

// classifyFuncErrors classifies every error a function can return.
func classifyFuncErrors(f *flow.Func) *wireClass {
	cls := &wireClass{}
	body := f.Body()
	if body == nil || f.Decl == nil {
		return cls
	}
	info := f.Unit.Info
	sig, _ := info.Defs[f.Decl.Name].(*types.Func)
	if sig == nil {
		return cls
	}
	ftype := sig.Type().(*types.Signature)
	errIdx := map[int]bool{}
	for i := 0; i < ftype.Results().Len(); i++ {
		if isErrorType(ftype.Results().At(i).Type()) {
			errIdx[i] = true
		}
	}
	if len(errIdx) == 0 {
		return cls
	}
	// Named error results, for naked returns.
	var namedErr []*ast.Ident
	if f.Decl.Type.Results != nil {
		i := 0
		for _, fld := range f.Decl.Type.Results.List {
			n := max(1, len(fld.Names))
			for j := 0; j < n; j++ {
				if errIdx[i+j] && j < len(fld.Names) {
					namedErr = append(namedErr, fld.Names[j])
				}
			}
			i += n
		}
	}
	flow.WalkStack(body, func(n ast.Node, stack []ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		switch {
		case len(ret.Results) == 0:
			for _, id := range namedErr {
				classifyErrExpr(f, id, cls, map[ast.Node]bool{}, 0)
			}
		case len(ret.Results) == 1 && len(errIdx) >= 1:
			// Either the single error result or a tuple-returning call.
			classifyErrExpr(f, ret.Results[0], cls, map[ast.Node]bool{}, 0)
		default:
			for i, res := range ret.Results {
				if errIdx[i] {
					classifyErrExpr(f, res, cls, map[ast.Node]bool{}, 0)
				}
			}
		}
		return true
	})
	return cls
}

// classifyErrExpr resolves the provenance of one error-valued
// expression: typed (WireCode in the static type's method set), an
// untyped origin, or a dependency on a module callee's error result.
// Unrecognized shapes (struct fields, map loads) classify as unknown
// and are not flagged — the analyzer under-approximates rather than
// guessing.
func classifyErrExpr(f *flow.Func, e ast.Expr, cls *wireClass, visited map[ast.Node]bool, depth int) {
	if depth > 12 || e == nil || visited[e] {
		return
	}
	visited[e] = true
	info := f.Unit.Info
	e = ast.Unparen(e)
	if t := info.Types[e].Type; t != nil {
		if isUntypedNil(t) || hasWireCode(t) {
			return
		}
	}
	switch e := e.(type) {
	case *ast.Ident:
		if e.Name == "nil" {
			return
		}
		v, _ := info.Uses[e].(*types.Var)
		if v == nil {
			v, _ = info.Defs[e].(*types.Var)
		}
		if v == nil {
			return
		}
		for _, src := range varErrSources(f, v) {
			classifyErrExpr(f, src, cls, visited, depth+1)
		}
	case *ast.CallExpr:
		classifyErrCall(f, e, cls, visited, depth)
	}
}

func classifyErrCall(f *flow.Func, call *ast.CallExpr, cls *wireClass, visited map[ast.Node]bool, depth int) {
	info := f.Unit.Info
	callee := flow.StaticCallee(info, call)
	if callee != nil && callee.Pkg() != nil {
		pkg, name := callee.Pkg().Path(), callee.Name()
		switch {
		case pkg == "fmt" && name == "Errorf":
			if wrapped := errorfWrappedArgs(call, info); len(wrapped) > 0 {
				for _, w := range wrapped {
					classifyErrExpr(f, w, cls, visited, depth+1)
				}
				return
			}
			cls.origins = append(cls.origins, wireOrigin{pos: call.Pos(), desc: "bare fmt.Errorf (no typed cause wrapped with %w)"})
			return
		case pkg == "errors" && name == "New":
			cls.origins = append(cls.origins, wireOrigin{pos: call.Pos(), desc: "errors.New"})
			return
		case pkg == "errors" && (name == "Join" || name == "Unwrap"):
			for _, a := range call.Args {
				classifyErrExpr(f, a, cls, visited, depth+1)
			}
			return
		}
	}
	// Resolve through the graph: module callees become deps, external
	// callees are origins (their errors carry no WireCode), dynamic
	// calls stay unknown.
	for _, c := range f.Calls {
		if c.Site != call || c.Ref {
			continue // Ref edges share the Site but nothing returns through them
		}
		switch {
		case c.Callee != nil:
			if c.Callee.Body() != nil {
				cls.deps = append(cls.deps, c.Callee)
			}
		case c.External != nil:
			if retTypeHasWireCode(c.External) {
				continue
			}
			pkg := ""
			if c.External.Pkg() != nil {
				pkg = c.External.Pkg().Name()
			}
			cls.origins = append(cls.origins, wireOrigin{
				pos:  call.Pos(),
				desc: "raw error from " + pkg + "." + c.External.Name() + " escapes without a typed wrapper",
			})
		}
	}
}

func retTypeHasWireCode(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if hasWireCode(sig.Results().At(i).Type()) {
			return true
		}
	}
	return false
}

// errorfWrappedArgs returns the error-typed arguments covered by %w
// verbs in a constant fmt.Errorf format (nil when the call does not
// wrap).
func errorfWrappedArgs(call *ast.CallExpr, info *types.Info) []ast.Expr {
	if len(call.Args) < 2 {
		return nil
	}
	tv := info.Types[call.Args[0]]
	if tv.Value == nil || tv.Value.Kind() != constant.String {
		return nil
	}
	if !strings.Contains(constant.StringVal(tv.Value), "%w") {
		return nil
	}
	var out []ast.Expr
	for _, a := range call.Args[1:] {
		if t := info.Types[a].Type; t != nil && isErrorType(t) {
			out = append(out, a)
		}
	}
	return out
}

// varErrSources collects the expressions assigned to v anywhere in f's
// body (flow-insensitive: each is a possible provenance).
func varErrSources(f *flow.Func, v *types.Var) []ast.Expr {
	info := f.Unit.Info
	var out []ast.Expr
	record := func(id *ast.Ident, rhs ast.Expr) {
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == v && rhs != nil {
			out = append(out, rhs)
		}
	}
	flow.WalkStack(f.Body(), func(n ast.Node, stack []ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						record(id, n.Rhs[i])
					}
				}
			} else if len(n.Rhs) == 1 {
				// v1, err := call(): the call's error component.
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						record(id, n.Rhs[0])
					}
				}
			}
		case *ast.ValueSpec:
			for i, id := range n.Names {
				if i < len(n.Values) {
					record(id, n.Values[i])
				}
			}
		}
		return true
	})
	return out
}

// hasWireCode reports whether t (or *t) has a WireCode() string method.
func hasWireCode(t types.Type) bool {
	if t == nil {
		return false
	}
	check := func(tt types.Type) bool {
		ms := types.NewMethodSet(tt)
		for i := 0; i < ms.Len(); i++ {
			m := ms.At(i).Obj()
			if m.Name() != "WireCode" {
				continue
			}
			sig, ok := m.Type().(*types.Signature)
			if !ok || sig.Params().Len() != 0 || sig.Results().Len() != 1 {
				continue
			}
			if b, ok := sig.Results().At(0).Type().Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
				return true
			}
		}
		return false
	}
	if check(t) {
		return true
	}
	if _, isPtr := t.(*types.Pointer); !isPtr && !types.IsInterface(t) {
		return check(types.NewPointer(t))
	}
	return false
}
