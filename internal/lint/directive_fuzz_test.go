package lint_test

import (
	"strings"
	"testing"

	"tivaware/internal/lint"
)

// FuzzParseDirective hammers the suppression-directive parser with
// malformed, truncated, CRLF-ridden, and non-ASCII comment text. The
// invariants: never panic; ok implies a non-empty analyzer and
// justification and the exact prefix; a justification-free directive
// is always inert.
func FuzzParseDirective(f *testing.F) {
	f.Add("//lint:tiv wireerr inherited from the v0 protocol")
	f.Add("//lint:tiv goleak")
	f.Add("//lint:tiv")
	f.Add("//lint:tiv\twireerr\ttabbed reason")
	f.Add("// lint:tiv wireerr spaced prefix is not a directive")
	f.Add("//lint:tivwireerr glued")
	f.Add("//lint:tiv wireerr reason with \r\n embedded CRLF")
	f.Add("//lint:tiv аллокфри кириллица justification")
	f.Add("//lint:tiv allocfree \x00 NUL bytes")
	f.Add("//lint:tiv  allocfree   many   spaces  ")
	f.Fuzz(func(t *testing.T, text string) {
		analyzer, justification, ok := lint.ParseDirective(text)
		if !ok {
			if analyzer != "" || justification != "" {
				t.Fatalf("not-ok parse leaked values: %q %q", analyzer, justification)
			}
			return
		}
		if !strings.HasPrefix(text, lint.DirectivePrefix) {
			t.Fatalf("ok parse of %q without the %q prefix", text, lint.DirectivePrefix)
		}
		if analyzer == "" {
			t.Fatalf("ok parse of %q with empty analyzer", text)
		}
		if strings.TrimSpace(justification) == "" {
			t.Fatalf("ok parse of %q with blank justification — the reason is the point", text)
		}
		if strings.ContainsAny(analyzer, " \t\r\n") {
			t.Fatalf("analyzer %q contains whitespace", analyzer)
		}
	})
}
