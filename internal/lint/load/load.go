// Package load type-checks the module's packages for tivlint without
// golang.org/x/tools: module-internal imports resolve through a
// recursive source loader rooted at go.mod, and everything else
// (standard library) resolves through the stdlib source importer.
// The result is the same shape go/packages would hand an analyzer —
// parsed files with full go/types information — built hermetically
// from the toolchain alone.
//
// Each analysis unit is one package's compiled files plus its
// in-package test files; an external foo_test package forms its own
// unit. Imports always resolve to the compiled-files-only version of
// a package (memoized), which is exactly how the go tool layers test
// archives, so in-package test files that transitively re-import
// their own package do not cycle.
package load

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one fully type-checked analysis unit.
type Package struct {
	// Path is the unit's import path; external test packages carry
	// the go-style " [p.test]"-free spelling "path_test".
	Path string
	// Dir is the package directory.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// testFiles marks which of Files are _test.go files.
	testFiles map[*ast.File]bool
}

// IsTestFile reports whether f is one of the unit's _test.go files.
func (p *Package) IsTestFile(f *ast.File) bool { return p.testFiles[f] }

// Loader loads and type-checks packages under one module root.
// A Loader is not safe for concurrent use.
type Loader struct {
	Root   string // module root (directory containing go.mod)
	Module string // module path from go.mod

	fset  *token.FileSet
	ctxt  build.Context
	src   types.ImporterFrom
	cache map[string]*types.Package // import units: compiled files only
	// Warnings collects non-fatal degradations (an in-package test
	// unit that failed to type-check and fell back to compiled files
	// only). Callers surface them so skipped files are never silent.
	Warnings []string
}

// New builds a loader for the module rooted at root, reading the
// module path from go.mod.
func New(root string) (*Loader, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: module root: %w", err)
	}
	mod := modulePath(string(data))
	if mod == "" {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	ctxt := build.Default
	// The stdlib source importer type-checks dependencies from
	// GOROOT/src; cgo variants cannot be type-checked from source, so
	// select the pure-Go build of every dependency (net's netgo DNS,
	// etc.). Analysis results do not depend on it.
	ctxt.CgoEnabled = false
	build.Default.CgoEnabled = false
	srcImp, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer unavailable")
	}
	return &Loader{
		Root:   root,
		Module: mod,
		fset:   fset,
		ctxt:   ctxt,
		src:    srcImp,
		cache:  map[string]*types.Package{},
	}, nil
}

// modulePath extracts the module path from go.mod text.
func modulePath(gomod string) string {
	for _, line := range strings.Split(gomod, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			return strings.Trim(rest, `"`)
		}
	}
	return ""
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Load type-checks the packages matching the go-style patterns
// ("./...", "./internal/tivaware", "./internal/..."), returning one
// unit per package (plus one per external test package).
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs, err := l.matchDirs(patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		units, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, units...)
	}
	return pkgs, nil
}

// LoadImports closes a set of loaded units over their module-internal
// imports: every module package transitively imported by units but not
// among them is loaded as a compiled-files-only unit (no test files)
// and returned. A partial-pattern lint run uses this so the
// interprocedural layer still sees the bodies of callee packages; the
// extra units carry full ASTs and type info but are not themselves
// analyzed.
func (l *Loader) LoadImports(units []*Package) ([]*Package, error) {
	have := map[string]bool{}
	for _, u := range units {
		have[u.Path] = true
	}
	seen := map[string]bool{}
	var extra []*Package
	var visit func(p *types.Package) error
	visit = func(p *types.Package) error {
		path := p.Path()
		if seen[path] {
			return nil
		}
		seen[path] = true
		if path != l.Module && !strings.HasPrefix(path, l.Module+"/") {
			return nil
		}
		if !have[path] {
			rel := strings.TrimPrefix(strings.TrimPrefix(path, l.Module), "/")
			dir := filepath.Join(l.Root, filepath.FromSlash(rel))
			bp, err := l.ctxt.ImportDir(dir, 0)
			if err != nil {
				return fmt.Errorf("lint: expand %s: %w", path, err)
			}
			u, err := l.checkUnit(path, dir, bp.GoFiles, nil)
			if err != nil {
				return fmt.Errorf("lint: expand %s: %w", path, err)
			}
			if u == nil {
				return nil
			}
			have[path] = true
			extra = append(extra, u)
			for _, imp := range u.Types.Imports() {
				if err := visit(imp); err != nil {
					return err
				}
			}
			return nil
		}
		for _, imp := range p.Imports() {
			if err := visit(imp); err != nil {
				return err
			}
		}
		return nil
	}
	for _, u := range units {
		for _, imp := range u.Types.Imports() {
			if err := visit(imp); err != nil {
				return nil, err
			}
		}
	}
	sort.Slice(extra, func(i, j int) bool { return extra[i].Path < extra[j].Path })
	return extra, nil
}

// matchDirs expands patterns into package directories under Root.
func (l *Loader) matchDirs(patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		pat = strings.TrimPrefix(pat, "./")
		if pat == "" {
			pat = "."
		}
		if sub, ok := strings.CutSuffix(pat, "/..."); ok || pat == "..." {
			if pat == "..." {
				sub = "."
			}
			base := filepath.Join(l.Root, filepath.FromSlash(sub))
			err := filepath.WalkDir(base, func(path string, d fs.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
					return filepath.SkipDir
				}
				if path != l.Root {
					// A nested module (tools/) is not part of this one.
					if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
						return filepath.SkipDir
					}
				}
				if hasGoFiles(path) {
					add(path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		add(filepath.Join(l.Root, filepath.FromSlash(pat)))
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// importPathFor maps a directory under Root to its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil {
		return "", err
	}
	rel = filepath.ToSlash(rel)
	if rel == "." {
		return l.Module, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module root %s", dir, l.Root)
	}
	return l.Module + "/" + rel, nil
}

// loadDir type-checks the analysis units of one package directory:
// the package with its in-package test files, and, when present, the
// external test package.
func (l *Loader) loadDir(dir string) ([]*Package, error) {
	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		if _, ok := err.(*build.NoGoError); ok {
			return nil, nil
		}
		return nil, fmt.Errorf("lint: %s: %w", dir, err)
	}
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	var units []*Package
	unit, err := l.checkUnit(path, dir, bp.GoFiles, bp.TestGoFiles)
	if err != nil && len(bp.TestGoFiles) > 0 {
		// The combined unit can fail when in-package test files
		// transitively re-import their own package (the go tool
		// compiles a dedicated test variant of the whole subgraph;
		// this loader does not). Degrade to the compiled files and
		// say so — a silently skipped file is a lint hole.
		l.Warnings = append(l.Warnings,
			fmt.Sprintf("%s: in-package test files skipped (type-check with tests failed: %v)", path, err))
		unit, err = l.checkUnit(path, dir, bp.GoFiles, nil)
	}
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", path, err)
	}
	if unit != nil {
		units = append(units, unit)
	}
	if len(bp.XTestGoFiles) > 0 {
		xunit, err := l.checkUnit(path+"_test", dir, nil, bp.XTestGoFiles)
		if err != nil {
			return nil, fmt.Errorf("lint: %s_test: %w", path, err)
		}
		units = append(units, xunit)
	}
	return units, nil
}

// checkUnit parses and type-checks one unit.
func (l *Loader) checkUnit(path, dir string, goFiles, testGoFiles []string) (*Package, error) {
	if len(goFiles)+len(testGoFiles) == 0 {
		return nil, nil
	}
	var files []*ast.File
	testFiles := map[*ast.File]bool{}
	for _, group := range [2][]string{goFiles, testGoFiles} {
		for _, name := range group {
			f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
			if strings.HasSuffix(name, "_test.go") {
				testFiles[f] = true
			}
		}
	}
	info := newInfo()
	conf := types.Config{Importer: (*unitImporter)(l)}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{
		Path:      path,
		Dir:       dir,
		Fset:      l.fset,
		Files:     files,
		Types:     tpkg,
		Info:      info,
		testFiles: testFiles,
	}, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// unitImporter resolves imports while type-checking a unit:
// module-internal paths load (and memoize) compiled-files-only
// packages recursively; everything else defers to the stdlib source
// importer.
type unitImporter Loader

func (u *unitImporter) Import(path string) (*types.Package, error) {
	return u.ImportFrom(path, "", 0)
}

func (u *unitImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	l := (*Loader)(u)
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		return l.importModulePkg(path)
	}
	return l.src.ImportFrom(path, dir, mode)
}

func (l *Loader) importModulePkg(path string) (*types.Package, error) {
	if p, ok := l.cache[path]; ok {
		return p, nil
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.Module), "/")
	dir := filepath.Join(l.Root, filepath.FromSlash(rel))
	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("import %q: %w", path, err)
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	conf := types.Config{Importer: (*unitImporter)(l)}
	tpkg, err := conf.Check(path, l.fset, files, newInfo())
	if err != nil {
		return nil, fmt.Errorf("import %q: %w", path, err)
	}
	l.cache[path] = tpkg
	return tpkg, nil
}
