package lint_test

import (
	"os"
	"path/filepath"
	"testing"

	"tivaware/internal/lint"
	"tivaware/internal/lint/analyzers"
)

// writeModule materializes a one-package fixture module in dir.
func writeModule(t *testing.T, dir, source string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Join(dir, "internal", "tivclient"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module fixture\n\ngo 1.21\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "internal", "tivclient", "client.go"), []byte(source), 0o644); err != nil {
		t.Fatal(err)
	}
}

func runWireErr(t *testing.T, dir string) []lint.Finding {
	t.Helper()
	res, err := lint.Run(dir, nil, []*lint.Analyzer{analyzers.WireErr})
	if err != nil {
		t.Fatal(err)
	}
	return res.Findings
}

const baseSource = `package tivclient

import "errors"

func Ping() error {
	return errors.New("no transport")
}
`

// TestBaselineKeyStableUnderLineInsertion pins the ratchet's core
// property: a finding's structural key survives edits elsewhere in the
// file — inserted lines, new declarations — and changes only when the
// flagged line itself changes. Line numbers must move while keys hold.
func TestBaselineKeyStableUnderLineInsertion(t *testing.T) {
	dir := t.TempDir()
	writeModule(t, dir, baseSource)
	before := runWireErr(t, dir)
	if len(before) != 1 {
		t.Fatalf("want 1 finding from the base module, have %v", before)
	}

	cases := []struct {
		name   string
		source string
		moved  bool // the flagged line's number should have changed
		rekey  bool // the finding's key should have changed
	}{
		{
			name: "lines inserted above",
			source: `package tivclient

import "errors"

// Padding pushes every following declaration down.
type Padding struct {
	A int
	B int
}

func Ping() error {
	return errors.New("no transport")
}
`,
			moved: true,
		},
		{
			name: "flagged line edited",
			source: `package tivclient

import "errors"

func Ping() error {
	return errors.New("transport is not configured")
}
`,
			rekey: true,
		},
		{
			name: "reindented only",
			source: `package tivclient

import "errors"

func Ping() error {
		return errors.New("no transport")
}
`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			writeModule(t, dir, tc.source)
			after := runWireErr(t, dir)
			if len(after) != 1 {
				t.Fatalf("want 1 finding, have %v", after)
			}
			if moved := after[0].Line != before[0].Line; moved != tc.moved {
				t.Errorf("line moved=%v (line %d → %d), want moved=%v", moved, before[0].Line, after[0].Line, tc.moved)
			}
			if rekeyed := after[0].Key != before[0].Key; rekeyed != tc.rekey {
				t.Errorf("key changed=%v (%s → %s), want changed=%v", rekeyed, before[0].Key, after[0].Key, tc.rekey)
			}
			// The ratchet behavior itself: a baseline written before the
			// edit still accepts the finding exactly when the key held.
			bl := &lint.Baseline{Version: lint.BaselineVersion, Entries: []lint.BaselineEntry{{
				Analyzer: before[0].Analyzer,
				Package:  before[0].Package,
				Key:      before[0].Key,
			}}}
			res := &lint.Result{Findings: after}
			stale := bl.Apply(res)
			if accepted := len(res.Active()) == 0; accepted == tc.rekey {
				t.Errorf("baseline accepted=%v, want accepted=%v (stale=%v)", accepted, !tc.rekey, stale)
			}
		})
	}
}

// TestBaselinePruneMonotonic pins the one-way ratchet: pruning stale
// entries only ever shrinks the baseline.
func TestBaselinePruneMonotonic(t *testing.T) {
	bl := &lint.Baseline{Version: lint.BaselineVersion, Entries: []lint.BaselineEntry{
		{Analyzer: "wireerr", Package: "p", Key: "aaaa"},
		{Analyzer: "wireerr", Package: "p", Key: "bbbb"},
	}}
	res := &lint.Result{Findings: []lint.Finding{{Analyzer: "wireerr", Package: "p", Key: "bbbb"}}}
	stale := bl.Apply(res)
	if len(stale) != 1 || stale[0].Key != "aaaa" {
		t.Fatalf("want exactly entry aaaa stale, have %v", stale)
	}
	bl.Prune(stale)
	if len(bl.Entries) != 1 || bl.Entries[0].Key != "bbbb" {
		t.Fatalf("prune should keep only the live entry, have %v", bl.Entries)
	}
}
