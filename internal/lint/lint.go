// Package lint runs the tivlint analyzer suite over the module: it
// loads type-checked package units (internal/lint/load), applies each
// analyzer (internal/lint/analyzers), and resolves the sanctioned
// suppression mechanism — a "//lint:tiv <analyzer> <justification>"
// directive comment on the flagged line or the line above it. Both
// cmd/tivlint and the in-tree boundary test drive this package, so
// the command line and `go test` enforce the identical checks.
package lint

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"

	"tivaware/internal/lint/analysis"
	"tivaware/internal/lint/load"
)

// Analyzer aliases the framework's analyzer type so callers of Run
// need not import internal/lint/analysis separately.
type Analyzer = analysis.Analyzer

// Finding is one diagnostic, resolved against the suppression
// directives in its file.
type Finding struct {
	Analyzer string `json:"analyzer"`
	// File is the path relative to the module root (slash-separated).
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
	// Suppressed marks findings silenced by a //lint:tiv directive;
	// Justification carries the directive's stated reason. Suppressed
	// findings do not fail the run but are reported in -json output,
	// so every silenced invariant stays reviewable.
	Suppressed    bool   `json:"suppressed,omitempty"`
	Justification string `json:"justification,omitempty"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", f.File, f.Line, f.Col, f.Message, f.Analyzer)
}

// Result is one lint run: every finding (active first, then
// suppressed, both sorted by position) plus loader warnings.
type Result struct {
	Findings []Finding `json:"findings"`
	Warnings []string  `json:"warnings,omitempty"`
}

// Active returns the findings that fail the run.
func (r *Result) Active() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if !f.Suppressed {
			out = append(out, f)
		}
	}
	return out
}

// Run loads the packages matching patterns under the module rooted at
// root and applies the analyzers.
func Run(root string, patterns []string, analyzers []*analysis.Analyzer) (*Result, error) {
	l, err := load.New(root)
	if err != nil {
		return nil, err
	}
	pkgs, err := l.Load(patterns...)
	if err != nil {
		return nil, err
	}
	res := &Result{Warnings: l.Warnings}
	for _, pkg := range pkgs {
		fs, err := RunPackage(l.Root, pkg, analyzers)
		if err != nil {
			return nil, err
		}
		res.Findings = append(res.Findings, fs...)
	}
	sort.SliceStable(res.Findings, func(i, j int) bool {
		a, b := res.Findings[i], res.Findings[j]
		if a.Suppressed != b.Suppressed {
			return !a.Suppressed
		}
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return res, nil
}

// RunPackage applies the analyzers to one loaded unit, resolving
// suppressions. root anchors the relative file paths in findings.
func RunPackage(root string, pkg *load.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	supp := collectSuppressions(pkg)
	var out []Finding
	for _, a := range analyzers {
		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Path:     pkg.Path,
			TestFile: pkg.IsTestFile,
			Report:   func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			rel, err := filepath.Rel(root, pos.Filename)
			if err != nil {
				rel = pos.Filename
			}
			f := Finding{
				Analyzer: a.Name,
				File:     filepath.ToSlash(rel),
				Line:     pos.Line,
				Col:      pos.Column,
				Message:  d.Message,
			}
			if j, ok := supp.lookup(pos.Filename, pos.Line, a.Name); ok {
				f.Suppressed = true
				f.Justification = j
			}
			out = append(out, f)
		}
	}
	return out, nil
}

// suppressionKey addresses one directive: the analyzer it silences at
// one line of one file.
type suppressionKey struct {
	file     string
	line     int
	analyzer string
}

type suppressions map[suppressionKey]string

// lookup finds a directive covering (file, line) for analyzer: on the
// line itself, or on the line directly above (a comment-only line).
func (s suppressions) lookup(file string, line int, analyzer string) (string, bool) {
	for _, l := range [2]int{line, line - 1} {
		if j, ok := s[suppressionKey{file, l, analyzer}]; ok {
			return j, true
		}
	}
	return "", false
}

// DirectivePrefix is the sanctioned suppression comment:
// "//lint:tiv <analyzer> <justification>". A directive with no
// justification suppresses nothing — the reason is the point.
const DirectivePrefix = "//lint:tiv"

func collectSuppressions(pkg *load.Package) suppressions {
	out := suppressions{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, DirectivePrefix)
				if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					continue // no analyzer or no justification: inert
				}
				pos := pkg.Fset.Position(c.Pos())
				key := suppressionKey{pos.Filename, pos.Line, fields[0]}
				out[key] = strings.Join(fields[1:], " ")
			}
		}
	}
	return out
}
