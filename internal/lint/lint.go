// Package lint runs the tivlint analyzer suite over the module: it
// loads type-checked package units (internal/lint/load), applies each
// analyzer (internal/lint/analyzers), and resolves the sanctioned
// suppression mechanism — a "//lint:tiv <analyzer> <justification>"
// directive comment on the flagged line or the line above it. Both
// cmd/tivlint and the in-tree boundary test drive this package, so
// the command line and `go test` enforce the identical checks.
package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"tivaware/internal/lint/analysis"
	"tivaware/internal/lint/flow"
	"tivaware/internal/lint/load"
)

// Analyzer aliases the framework's analyzer type so callers of Run
// need not import internal/lint/analysis separately.
type Analyzer = analysis.Analyzer

// Finding is one diagnostic, resolved against the suppression
// directives in its file.
type Finding struct {
	Analyzer string `json:"analyzer"`
	// Package is the import path of the analysis unit that produced
	// the finding.
	Package string `json:"package"`
	// File is the path relative to the module root (slash-separated).
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
	// Key is the finding's structural identity for the ratcheting
	// baseline: a hash over the analyzer, unit, enclosing top-level
	// declaration, and the whitespace-normalized source text of the
	// flagged line (plus a same-line occurrence counter). Line numbers
	// deliberately do not participate, so edits elsewhere in the file
	// never invalidate a baseline entry.
	Key string `json:"key"`
	// Suppressed marks findings silenced by a //lint:tiv directive;
	// Justification carries the directive's stated reason. Suppressed
	// findings do not fail the run but are reported in -json output,
	// so every silenced invariant stays reviewable.
	Suppressed    bool   `json:"suppressed,omitempty"`
	Justification string `json:"justification,omitempty"`
	// Baselined marks findings matched by an entry in the accepted
	// baseline (tivlint.baseline.json): pre-existing debt that does
	// not fail the run but may never grow.
	Baselined bool `json:"baselined,omitempty"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", f.File, f.Line, f.Col, f.Message, f.Analyzer)
}

// Result is one lint run: every finding (active first, then
// suppressed, both sorted by position) plus loader warnings.
type Result struct {
	Findings []Finding `json:"findings"`
	Warnings []string  `json:"warnings,omitempty"`
}

// Active returns the findings that fail the run: neither suppressed
// in source nor accepted by the baseline.
func (r *Result) Active() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if !f.Suppressed && !f.Baselined {
			out = append(out, f)
		}
	}
	return out
}

// Run loads the packages matching patterns under the module rooted at
// root and applies the analyzers. Before the per-unit passes it closes
// the loaded set over module-internal imports and builds the
// interprocedural flow graph, so callgraph-walking analyzers see the
// bodies of callee packages even on a partial-pattern run (findings
// are still only reported for the requested packages).
func Run(root string, patterns []string, analyzers []*analysis.Analyzer) (*Result, error) {
	l, err := load.New(root)
	if err != nil {
		return nil, err
	}
	pkgs, err := l.Load(patterns...)
	if err != nil {
		return nil, err
	}
	extra, err := l.LoadImports(pkgs)
	if err != nil {
		return nil, err
	}
	g := flow.Build(append(append([]*load.Package{}, pkgs...), extra...))
	res := &Result{Warnings: l.Warnings}
	for _, pkg := range pkgs {
		fs, err := RunPackage(l.Root, pkg, g, analyzers)
		if err != nil {
			return nil, err
		}
		res.Findings = append(res.Findings, fs...)
	}
	sort.SliceStable(res.Findings, func(i, j int) bool {
		a, b := res.Findings[i], res.Findings[j]
		if a.Suppressed != b.Suppressed {
			return !a.Suppressed
		}
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return res, nil
}

// RunPackage applies the analyzers to one loaded unit, resolving
// suppressions and computing each finding's structural baseline key.
// root anchors the relative file paths in findings; g may be nil for
// runs without the interprocedural layer.
func RunPackage(root string, pkg *load.Package, g *flow.Graph, analyzers []*analysis.Analyzer) ([]Finding, error) {
	supp := collectSuppressions(pkg)
	keyer := newKeyer(pkg)
	var out []Finding
	for _, a := range analyzers {
		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Path:     pkg.Path,
			TestFile: pkg.IsTestFile,
			Flow:     nil,
			Report:   func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if g != nil {
			pass.Flow = g
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			rel, err := filepath.Rel(root, pos.Filename)
			if err != nil {
				rel = pos.Filename
			}
			f := Finding{
				Analyzer: a.Name,
				Package:  pkg.Path,
				File:     filepath.ToSlash(rel),
				Line:     pos.Line,
				Col:      pos.Column,
				Message:  d.Message,
				Key:      keyer.key(a.Name, d.Pos),
			}
			if j, ok := supp.lookup(pos.Filename, pos.Line, a.Name); ok {
				f.Suppressed = true
				f.Justification = j
			}
			out = append(out, f)
		}
	}
	return out, nil
}

// keyer computes structural finding keys for one unit: a truncated
// SHA-256 over (analyzer, unit path, enclosing top-level declaration
// name, whitespace-normalized flagged-line text, occurrence counter).
// The inputs deliberately exclude line numbers, so inserting or
// deleting lines elsewhere never invalidates a baseline entry; editing
// the flagged line itself does, which is the desired ratchet behavior
// (a changed line is a new claim to review).
type keyer struct {
	pkg   *load.Package
	lines map[string][]string // filename → content lines
	seen  map[string]int      // structural identity → occurrences so far
}

func newKeyer(pkg *load.Package) *keyer {
	return &keyer{pkg: pkg, lines: map[string][]string{}, seen: map[string]int{}}
}

func (k *keyer) key(analyzer string, pos token.Pos) string {
	p := k.pkg.Fset.Position(pos)
	lines, ok := k.lines[p.Filename]
	if !ok {
		data, err := os.ReadFile(p.Filename)
		if err == nil {
			lines = strings.Split(string(data), "\n")
		}
		k.lines[p.Filename] = lines
	}
	text := ""
	if p.Line-1 >= 0 && p.Line-1 < len(lines) {
		text = strings.Join(strings.Fields(lines[p.Line-1]), " ")
	}
	ident := analyzer + "\x00" + k.pkg.Path + "\x00" + k.declName(p.Filename, pos) + "\x00" + text
	n := k.seen[ident]
	k.seen[ident] = n + 1
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s\x00%d", ident, n)))
	return hex.EncodeToString(sum[:8])
}

// declName finds the top-level declaration enclosing pos in the unit's
// files ("" when pos sits between declarations).
func (k *keyer) declName(filename string, pos token.Pos) string {
	for _, f := range k.pkg.Files {
		if k.pkg.Fset.Position(f.Pos()).Filename != filename {
			continue
		}
		for _, d := range f.Decls {
			if pos < d.Pos() || pos > d.End() {
				continue
			}
			switch d := d.(type) {
			case *ast.FuncDecl:
				return d.Name.Name
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						return s.Name.Name
					case *ast.ValueSpec:
						if len(s.Names) > 0 {
							return s.Names[0].Name
						}
					}
				}
			}
		}
	}
	return ""
}

// suppressionKey addresses one directive: the analyzer it silences at
// one line of one file.
type suppressionKey struct {
	file     string
	line     int
	analyzer string
}

type suppressions map[suppressionKey]string

// lookup finds a directive covering (file, line) for analyzer: on the
// line itself, or on the line directly above (a comment-only line).
func (s suppressions) lookup(file string, line int, analyzer string) (string, bool) {
	for _, l := range [2]int{line, line - 1} {
		if j, ok := s[suppressionKey{file, l, analyzer}]; ok {
			return j, true
		}
	}
	return "", false
}

// DirectivePrefix is the sanctioned suppression comment:
// "//lint:tiv <analyzer> <justification>". A directive with no
// justification suppresses nothing — the reason is the point.
const DirectivePrefix = "//lint:tiv"

// ParseDirective parses one comment line as a suppression directive.
// ok reports a well-formed directive: the exact prefix followed by
// whitespace, an analyzer name, and a non-empty justification. A
// directive missing its justification is inert — the stated reason is
// the point — and parses as not-ok.
func ParseDirective(text string) (analyzer, justification string, ok bool) {
	rest, found := strings.CutPrefix(text, DirectivePrefix)
	if !found || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
		return "", "", false
	}
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return "", "", false
	}
	return fields[0], strings.Join(fields[1:], " "), true
}

func collectSuppressions(pkg *load.Package) suppressions {
	out := suppressions{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				analyzer, justification, ok := ParseDirective(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				out[suppressionKey{pos.Filename, pos.Line, analyzer}] = justification
			}
		}
	}
	return out
}
