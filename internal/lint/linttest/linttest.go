// Package linttest runs analyzers against fixture modules and checks
// their findings against expectation comments, in the spirit of
// golang.org/x/tools/go/analysis/analysistest:
//
//	bad := doSomething() // want "regex matching the message"
//
// A fixture is a directory containing its own go.mod (module
// "fixture") whose package layout mirrors the paths the analyzers
// scope themselves to (internal/tivaware, internal/tivwire, ...).
// Every active finding must be matched by a `// want "re"` comment on
// its line, and every finding suppressed by a //lint:tiv directive
// must be matched by a `// suppressed "re"` comment — both directions
// are strict, so fixtures pin false positives as hard as misses.
package linttest

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"tivaware/internal/lint"
	"tivaware/internal/lint/analysis"
)

var (
	markerRe = regexp.MustCompile(`//\s*(want|suppressed)\s+(.+)$`)
	quotedRe = regexp.MustCompile(`"([^"]*)"`)
)

type expectation struct {
	file       string // slash-separated, relative to the fixture root
	line       int
	re         *regexp.Regexp
	suppressed bool
	matched    bool
}

// Run applies the analyzers to the fixture module at dir and fails t
// on any mismatch between findings and expectation comments.
func Run(t *testing.T, dir string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	root, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	exps, err := collectExpectations(root)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	res, err := lint.Run(root, nil, analyzers)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	for _, w := range res.Warnings {
		t.Errorf("loader warning (fixture should load cleanly): %s", w)
	}
	for _, f := range res.Findings {
		if !consume(exps, f) {
			kind := "finding"
			if f.Suppressed {
				kind = "suppressed finding"
			}
			t.Errorf("unexpected %s: %s", kind, f)
		}
	}
	for _, e := range exps {
		if !e.matched {
			kind := "want"
			if e.suppressed {
				kind = "suppressed"
			}
			t.Errorf("%s:%d: no finding matched `// %s %q`", e.file, e.line, kind, e.re)
		}
	}
}

func consume(exps []*expectation, f lint.Finding) bool {
	for _, e := range exps {
		if e.matched || e.file != f.File || e.line != f.Line || e.suppressed != f.Suppressed {
			continue
		}
		if e.re.MatchString(f.Message) {
			e.matched = true
			return true
		}
	}
	return false
}

func collectExpectations(root string) ([]*expectation, error) {
	var exps []*expectation
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := markerRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			quoted := quotedRe.FindAllStringSubmatch(m[2], -1)
			if len(quoted) == 0 {
				return fmt.Errorf("%s:%d: `// %s` marker without a quoted regex", rel, i+1, m[1])
			}
			for _, q := range quoted {
				re, err := regexp.Compile(q[1])
				if err != nil {
					return fmt.Errorf("%s:%d: bad expectation regex %q: %v", rel, i+1, q[1], err)
				}
				exps = append(exps, &expectation{
					file:       rel,
					line:       i + 1,
					re:         re,
					suppressed: m[1] == "suppressed",
				})
			}
		}
		return nil
	})
	return exps, err
}
