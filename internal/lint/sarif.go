// Minimal SARIF 2.1.0 serialization of a lint run, for code-scanning
// UIs. Active findings are errors; baselined and suppressed findings
// are included with SARIF suppression records so the full picture
// survives in the artifact without failing the scan.
package lint

import (
	"encoding/json"
	"strings"

	"tivaware/internal/lint/analysis"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID       string             `json:"ruleId"`
	Level        string             `json:"level"`
	Message      sarifText          `json:"message"`
	Locations    []sarifLocation    `json:"locations"`
	Suppressions []sarifSuppression `json:"suppressions,omitempty"`
}

type sarifSuppression struct {
	Kind          string `json:"kind"`
	Justification string `json:"justification,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// SARIF renders the run as a SARIF 2.1.0 document. analyzers supplies
// the rule metadata (every analyzer that ran, fired or not).
func SARIF(res *Result, analyzers []*analysis.Analyzer) ([]byte, error) {
	run := sarifRun{
		Tool:    sarifTool{Driver: sarifDriver{Name: "tivlint"}},
		Results: []sarifResult{},
	}
	for _, a := range analyzers {
		summary, _, _ := strings.Cut(a.Doc, "\n")
		run.Tool.Driver.Rules = append(run.Tool.Driver.Rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifText{Text: summary},
		})
	}
	for _, f := range res.Findings {
		r := sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifText{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: f.File},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Col},
				},
			}},
		}
		switch {
		case f.Suppressed:
			r.Level = "note"
			r.Suppressions = []sarifSuppression{{Kind: "inSource", Justification: f.Justification}}
		case f.Baselined:
			r.Level = "note"
			r.Suppressions = []sarifSuppression{{Kind: "external", Justification: "accepted in tivlint.baseline.json"}}
		}
		run.Results = append(run.Results, r)
	}
	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{run},
	}
	data, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
