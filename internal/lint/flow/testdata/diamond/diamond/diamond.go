// Diamond callgraph fixture: Top reaches base along two paths (left
// via a closure argument, right directly), plus a named function
// passed as an argument (a Ref edge, the codec-table idiom).
package diamond

func Top(xs []int) int {
	total := 0
	each(xs, func(x int) {
		total += left(x)
	})
	return total + right(len(xs))
}

func Tabled(xs []int) {
	each2(xs, handler)
}

func handler(x int) { _ = x * 2 }

func left(x int) int  { return base(x) }
func right(x int) int { return base(x) }
func base(x int) int  { return x * x }

func each(xs []int, fn func(int)) {
	for _, x := range xs {
		fn(x)
	}
}

func each2(xs []int, fn func(int)) {
	for _, x := range xs {
		fn(x)
	}
}
