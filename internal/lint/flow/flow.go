// Package flow is tivlint's interprocedural layer: a static callgraph
// over every loaded analysis unit, with per-function nodes for both
// declared functions and function literals, bottom-up SCC ordering for
// summary propagation, and the //tiv:hotpath / //tiv:coldpath
// annotation vocabulary the interprocedural analyzers key off.
//
// The loader (internal/lint/load) type-checks each unit against
// memoized, types-only import universes, so the same source function
// is represented by *different* go/types objects in the unit that
// declares it and the units that import it. The graph therefore never
// relies on object identity across units: functions are keyed by a
// stable string (package path | receiver type name | function name),
// and interface dispatch resolves by method name plus a
// package-path-qualified signature string rather than
// types.Implements.
//
// Call edges cover: direct calls to declared functions and methods,
// immediately-invoked and variable-bound function literals (a local
// `f := func(){...}` assigned exactly once), go/defer targets, and
// interface method calls resolved to every module type carrying a
// method of the same name and signature (class-hierarchy
// over-approximation — sound for "is everything reachable clean"
// questions). Calls the graph cannot resolve are kept as Dynamic
// edges so analyzers can stay conservative instead of silently
// optimistic.
package flow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"tivaware/internal/lint/analysis"
	"tivaware/internal/lint/load"
)

// Graph is the module-wide callgraph for one lint run.
type Graph struct {
	Fset *token.FileSet
	// Funcs maps stable keys to nodes. Function literals use their
	// enclosing function's key plus a position-derived suffix.
	Funcs map[string]*Func

	byUnit map[string][]*Func
	byNode map[ast.Node]*Func // *ast.FuncDecl / *ast.FuncLit → node
	// methodIndex maps "name|signature-without-receiver" to every
	// concrete (non-interface-receiver) method in the module, for
	// class-hierarchy resolution of interface calls.
	methodIndex map[string][]*Func
	memo        map[string]any
	sccs        [][]*Func
}

// Func is one callgraph node.
type Func struct {
	// Key is the stable cross-unit identity:
	// "pkgpath|recvTypeName|name" for declared functions,
	// parent key + "|lit@file:line:col" for literals.
	Key string
	// Display is the human name used in diagnostics:
	// "tivwire.AppendBinary", "tiv.(*Monitor).ApplyUpdate",
	// "tivshard.(*Gateway).pump.func@gateway.go:881".
	Display string
	// Unit is the analysis unit the function was parsed in.
	Unit *load.Package
	Decl *ast.FuncDecl // nil for literals
	Lit  *ast.FuncLit  // nil for declared functions
	Obj  *types.Func   // nil for literals
	// Test marks functions declared in _test.go files.
	Test bool
	// Hot and Cold carry //tiv:hotpath / //tiv:coldpath annotations
	// from the function's doc comment (nil when absent).
	Hot  *Annotation
	Cold *Annotation
	// InertAnnotations are //tiv: comments that parse but are missing
	// their required justification; analyzers surface them so a typo
	// never silently weakens the contract.
	InertAnnotations []token.Pos
	// Calls are the function's outgoing edges in source order.
	Calls []Call

	// Tarjan scratch + result.
	index, lowlink int
	onStack        bool
	scc            int
}

// Body returns the function body (nil for bodyless assembly stubs).
func (f *Func) Body() *ast.BlockStmt {
	if f.Lit != nil {
		return f.Lit.Body
	}
	if f.Decl != nil {
		return f.Decl.Body
	}
	return nil
}

// Pos returns the declaration position.
func (f *Func) Pos() token.Pos {
	if f.Lit != nil {
		return f.Lit.Pos()
	}
	if f.Decl != nil {
		return f.Decl.Pos()
	}
	return token.NoPos
}

// Call is one outgoing edge from a function.
type Call struct {
	// Site is the call expression (also set for go/defer targets).
	Site *ast.CallExpr
	// Callee is the resolved module-internal target, nil when the
	// target is external, dynamic, or a builtin/conversion.
	Callee *Func
	// External is the resolved non-module target (stdlib), nil
	// otherwise.
	External *types.Func
	// Interface marks edges produced by class-hierarchy resolution of
	// an interface method call; one Call is emitted per candidate.
	Interface bool
	// Dynamic marks calls through function values the graph could not
	// bind (stored callbacks, multiply-assigned variables, func
	// fields). Analyzers must treat these conservatively.
	Dynamic bool
	// Go and Defer mark spawn and defer sites.
	Go    bool
	Defer bool
	// Ref marks a named function passed as an argument at Site (the
	// codec-table idiom: encSlice(w, s, encSelection)). The callee may
	// invoke it, so reachability analyses should traverse the edge,
	// but it carries no call semantics of its own — nothing is called
	// at Site through it.
	Ref bool
}

// Pos returns the call position.
func (c Call) Pos() token.Pos {
	if c.Site != nil {
		return c.Site.Pos()
	}
	return token.NoPos
}

// Of extracts the graph a lint run attached to the pass; nil when the
// pass runs without the interprocedural layer (unit tests driving an
// analyzer directly).
func Of(pass *analysis.Pass) *Graph {
	g, _ := pass.Flow.(*Graph)
	return g
}

// Build constructs the callgraph over the loaded units.
func Build(units []*load.Package) *Graph {
	g := &Graph{
		Funcs:       map[string]*Func{},
		byUnit:      map[string][]*Func{},
		byNode:      map[ast.Node]*Func{},
		methodIndex: map[string][]*Func{},
		memo:        map[string]any{},
	}
	if len(units) > 0 {
		g.Fset = units[0].Fset
	}
	// Pass 1: nodes for every declared function (bodyless assembly
	// stubs included, so calls to them resolve and summarize as clean)
	// and every function literal.
	for _, u := range units {
		for _, file := range u.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				g.addDecl(u, file, fd)
			}
		}
	}
	// Pass 2: call edges (literal nodes are created on the fly while
	// walking their parents, depth first).
	for _, u := range units {
		for _, f := range g.byUnit[u.Path] {
			if f.Decl != nil {
				g.collectCalls(f)
			}
		}
	}
	g.condense()
	return g
}

func (g *Graph) addDecl(u *load.Package, file *ast.File, fd *ast.FuncDecl) {
	obj, _ := u.Info.Defs[fd.Name].(*types.Func)
	if obj == nil {
		return
	}
	key := KeyOf(obj)
	// Multiple func init() decls share a key; uniquify — init is never
	// a call target, so resolution is unaffected.
	for i := 2; g.Funcs[key] != nil; i++ {
		key = fmt.Sprintf("%s#%d", KeyOf(obj), i)
	}
	f := &Func{
		Key:     key,
		Display: displayOf(obj),
		Unit:    u,
		Decl:    fd,
		Obj:     obj,
		Test:    u.IsTestFile(file),
	}
	parseFuncAnnotations(f, fd.Doc, u.Fset)
	g.Funcs[key] = f
	g.byUnit[u.Path] = append(g.byUnit[u.Path], f)
	g.byNode[fd] = f
	sig := obj.Type().(*types.Signature)
	if r := sig.Recv(); r != nil && !types.IsInterface(r.Type()) {
		mk := obj.Name() + "|" + sigKey(sig)
		g.methodIndex[mk] = append(g.methodIndex[mk], f)
	}
}

// addLit creates a node for a function literal inside parent.
func (g *Graph) addLit(parent *Func, lit *ast.FuncLit) *Func {
	if f, ok := g.byNode[lit]; ok {
		return f
	}
	pos := parent.Unit.Fset.Position(lit.Pos())
	suffix := fmt.Sprintf("lit@%s:%d:%d", shortFile(pos.Filename), pos.Line, pos.Column)
	f := &Func{
		Key:     parent.Key + "|" + suffix,
		Display: parent.Display + ".func@" + fmt.Sprintf("%s:%d", shortFile(pos.Filename), pos.Line),
		Unit:    parent.Unit,
		Lit:     lit,
		Test:    parent.Test,
	}
	g.Funcs[f.Key] = f
	g.byUnit[parent.Unit.Path] = append(g.byUnit[parent.Unit.Path], f)
	g.byNode[lit] = f
	g.collectCalls(f)
	return f
}

func shortFile(name string) string {
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		return name[i+1:]
	}
	return name
}

// collectCalls walks f's body, resolving every call expression to
// edges. Nested function literals become their own nodes: the walk
// does not descend into them (their calls belong to the literal), but
// direct invocations, single-assignment variable bindings, and
// go/defer targets produce edges to the literal's node.
func (g *Graph) collectCalls(f *Func) {
	body := f.Body()
	if body == nil {
		return
	}
	info := f.Unit.Info
	bound := litBindings(body, info)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			g.addLit(f, n)
			return false
		case *ast.GoStmt:
			f.resolveCall(g, bound, n.Call, true, false)
			// The call's Fun (if a literal) was handled by resolveCall;
			// continue into the arguments only.
			for _, a := range n.Call.Args {
				g.walkExprForLits(f, a)
			}
			g.walkCallFun(f, bound, n.Call)
			return false
		case *ast.DeferStmt:
			f.resolveCall(g, bound, n.Call, false, true)
			for _, a := range n.Call.Args {
				g.walkExprForLits(f, a)
			}
			g.walkCallFun(f, bound, n.Call)
			return false
		case *ast.CallExpr:
			f.resolveCall(g, bound, n, false, false)
			return true
		}
		return true
	})
}

// walkExprForLits registers literal nodes appearing in an expression
// subtree without re-walking call structure (used for go/defer args).
func (g *Graph) walkExprForLits(f *Func, e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			g.addLit(f, lit)
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			bound := map[*types.Var]*ast.FuncLit{}
			f.resolveCall(g, bound, call, false, false)
		}
		return true
	})
}

// walkCallFun registers literals in a go/defer call's Fun subtree when
// the Fun is not itself a literal (method values etc.).
func (g *Graph) walkCallFun(f *Func, bound map[*types.Var]*ast.FuncLit, call *ast.CallExpr) {
	if _, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return // already a node via resolveCall
	}
	g.walkExprForLits(f, call.Fun)
}

// litBindings finds local variables bound to a function literal by
// exactly one assignment in body; calls through them resolve to the
// literal. Multiply-assigned variables stay dynamic.
func litBindings(body ast.Node, info *types.Info) map[*types.Var]*ast.FuncLit {
	lits := map[*types.Var]*ast.FuncLit{}
	assigns := map[*types.Var]int{}
	record := func(id *ast.Ident, rhs ast.Expr) {
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return
		}
		assigns[v]++
		if lit, ok := rhs.(*ast.FuncLit); ok {
			lits[v] = lit
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						record(id, n.Rhs[i])
					}
				}
			}
		case *ast.ValueSpec:
			for i, id := range n.Names {
				var rhs ast.Expr
				if i < len(n.Values) {
					rhs = n.Values[i]
				}
				record(id, rhs)
			}
		}
		return true
	})
	for v, n := range assigns {
		if n != 1 {
			delete(lits, v)
		}
	}
	return lits
}

// resolveCall appends the edge(s) for one call expression.
func (f *Func) resolveCall(g *Graph, bound map[*types.Var]*ast.FuncLit, call *ast.CallExpr, isGo, isDefer bool) {
	info := f.Unit.Info
	add := func(c Call) {
		c.Site, c.Go, c.Defer = call, isGo, isDefer
		f.Calls = append(f.Calls, c)
	}
	// A named module function passed as an argument may be invoked by
	// the callee; record a Ref edge so reachability analyses scan the
	// referenced body. Method values are skipped: binding the receiver
	// is its own operation and the graph cannot pick one body anyway.
	for _, a := range call.Args {
		var fn *types.Func
		switch arg := ast.Unparen(a).(type) {
		case *ast.Ident:
			fn, _ = info.Uses[arg].(*types.Func)
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[arg]; !ok || sel.Kind() != types.MethodVal {
				fn, _ = info.Uses[arg.Sel].(*types.Func)
			}
		}
		if fn == nil {
			continue
		}
		if c := g.staticEdge(fn); c.Callee != nil {
			f.Calls = append(f.Calls, Call{Site: call, Callee: c.Callee, Ref: true})
		}
	}
	fun := ast.Unparen(call.Fun)
	// Generic instantiation: strip the index to the underlying name.
	switch idx := fun.(type) {
	case *ast.IndexExpr:
		if isFuncExpr(info, idx.X) {
			fun = ast.Unparen(idx.X)
		}
	case *ast.IndexListExpr:
		if isFuncExpr(info, idx.X) {
			fun = ast.Unparen(idx.X)
		}
	}
	switch fun := fun.(type) {
	case *ast.FuncLit:
		add(Call{Callee: g.addLit(f, fun)})
		return
	case *ast.Ident:
		switch obj := info.Uses[fun].(type) {
		case *types.Func:
			add(g.staticEdge(obj))
			return
		case *types.Builtin:
			return // builtins are handled by per-analyzer op scans
		case *types.TypeName:
			return // conversion
		case *types.Var:
			if lit, ok := bound[obj]; ok {
				add(Call{Callee: g.addLit(f, lit)})
				return
			}
			add(Call{Dynamic: true})
			return
		}
		if tv, ok := info.Types[fun]; ok && tv.IsType() {
			return // conversion
		}
		add(Call{Dynamic: true})
		return
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			m, _ := sel.Obj().(*types.Func)
			if m == nil {
				add(Call{Dynamic: true})
				return
			}
			if types.IsInterface(sel.Recv()) {
				cands := g.methodIndex[m.Name()+"|"+sigKey(m.Type().(*types.Signature))]
				if len(cands) == 0 {
					add(Call{Dynamic: true, Interface: true})
					return
				}
				for _, cand := range cands {
					add(Call{Callee: cand, Interface: true})
				}
				return
			}
			add(g.staticEdge(m))
			return
		}
		switch obj := info.Uses[fun.Sel].(type) {
		case *types.Func:
			add(g.staticEdge(obj))
			return
		case *types.TypeName:
			return // conversion to a named type
		case *types.Var:
			add(Call{Dynamic: true}) // func-typed field or package var
			return
		}
		if tv, ok := info.Types[fun]; ok && tv.IsType() {
			return
		}
		add(Call{Dynamic: true})
		return
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion through a composite type expression
	}
	add(Call{Dynamic: true})
}

func isFuncExpr(info *types.Info, e ast.Expr) bool {
	if tv, ok := info.Types[e]; ok {
		_, isSig := tv.Type.Underlying().(*types.Signature)
		return isSig
	}
	return false
}

// staticEdge resolves a *types.Func (possibly from a types-only import
// universe) to a module node by stable key, or records it as external.
func (g *Graph) staticEdge(obj *types.Func) Call {
	obj = obj.Origin()
	if f, ok := g.Funcs[KeyOf(obj)]; ok {
		return Call{Callee: f}
	}
	return Call{External: obj}
}

// KeyOf computes the stable cross-unit identity of a declared
// function: "pkgpath|recvTypeName|name". Generic instantiations
// resolve to their origin.
func KeyOf(fn *types.Func) string {
	fn = fn.Origin()
	pkgPath := ""
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}
	recv := ""
	if sig, ok := fn.Type().(*types.Signature); ok {
		if r := sig.Recv(); r != nil {
			recv = recvTypeName(r.Type())
		}
	}
	return pkgPath + "|" + recv + "|" + fn.Name()
}

func recvTypeName(t types.Type) string {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Origin().Obj().Name()
	}
	return types.TypeString(t, func(*types.Package) string { return "" })
}

func displayOf(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Name()
	}
	sig := fn.Type().(*types.Signature)
	if r := sig.Recv(); r != nil {
		star := ""
		if _, ok := r.Type().(*types.Pointer); ok {
			star = "*"
		}
		return fmt.Sprintf("%s.(%s%s).%s", pkg, star, recvTypeName(r.Type()), fn.Name())
	}
	return pkg + "." + fn.Name()
}

// sigKey renders a method signature without its receiver, qualified by
// package path, so signatures compare equal across the loader's
// separate type-check universes.
func sigKey(sig *types.Signature) string {
	s := types.NewSignatureType(nil, nil, nil, sig.Params(), sig.Results(), sig.Variadic())
	return types.TypeString(s, func(p *types.Package) string { return p.Path() })
}

// UnitFuncs returns the nodes declared in the unit with the given
// import path, in source order (literals follow their parent).
func (g *Graph) UnitFuncs(path string) []*Func { return g.byUnit[path] }

// FuncOf maps an *ast.FuncDecl or *ast.FuncLit back to its node.
func (g *Graph) FuncOf(n ast.Node) *Func { return g.byNode[n] }

// ByKey looks a node up by its stable key.
func (g *Graph) ByKey(k string) *Func { return g.Funcs[k] }

// Memo computes build() once per graph under key and caches the
// result, so an analyzer's module-wide summary work runs once even
// though the analyzer itself is invoked per unit.
func (g *Graph) Memo(key string, build func() any) any {
	if v, ok := g.memo[key]; ok {
		return v
	}
	v := build()
	g.memo[key] = v
	return v
}

// SCCs returns the strongly connected components of the callgraph in
// bottom-up (callee-first) order, for summary propagation.
func (g *Graph) SCCs() [][]*Func { return g.sccs }

// InCycle reports whether f is mutually (or self-) recursive.
func (g *Graph) InCycle(f *Func) bool {
	if f.scc < 0 || f.scc >= len(g.sccs) {
		return false
	}
	if len(g.sccs[f.scc]) > 1 {
		return true
	}
	for _, c := range f.Calls {
		if c.Callee == f {
			return true
		}
	}
	return false
}

// condense runs Tarjan's algorithm; the pop order is callee-first.
func (g *Graph) condense() {
	keys := make([]string, 0, len(g.Funcs))
	for k := range g.Funcs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	next := 1
	var stack []*Func
	var strongconnect func(f *Func)
	strongconnect = func(f *Func) {
		f.index, f.lowlink = next, next
		next++
		stack = append(stack, f)
		f.onStack = true
		for _, c := range f.Calls {
			w := c.Callee
			if w == nil {
				continue
			}
			if w.index == 0 {
				strongconnect(w)
				f.lowlink = min(f.lowlink, w.lowlink)
			} else if w.onStack {
				f.lowlink = min(f.lowlink, w.index)
			}
		}
		if f.lowlink == f.index {
			var comp []*Func
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				w.onStack = false
				w.scc = len(g.sccs)
				comp = append(comp, w)
				if w == f {
					break
				}
			}
			g.sccs = append(g.sccs, comp)
		}
	}
	for _, k := range keys {
		if f := g.Funcs[k]; f.index == 0 {
			strongconnect(f)
		}
	}
}

// WalkStack walks root in source order, passing each node and its
// ancestor stack (nearest last); returning false prunes the subtree.
func WalkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// StaticCallee resolves a call expression to its declared-function
// target via the type info alone: package functions, methods (through
// embedding), and generic instantiations. It returns nil for builtins,
// conversions, interface dispatch, and function values. Shared by the
// intra-procedural analyzers that predate the flow layer.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	switch idx := fun.(type) {
	case *ast.IndexExpr:
		if isFuncExpr(info, idx.X) {
			fun = ast.Unparen(idx.X)
		}
	case *ast.IndexListExpr:
		if isFuncExpr(info, idx.X) {
			fun = ast.Unparen(idx.X)
		}
	}
	switch fun := fun.(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn.Origin()
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			if types.IsInterface(sel.Recv()) {
				return nil
			}
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn.Origin()
			}
			return nil
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn.Origin()
		}
	}
	return nil
}
