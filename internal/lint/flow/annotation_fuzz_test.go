package flow_test

import (
	"strings"
	"testing"

	"tivaware/internal/lint/flow"
)

// FuzzParseAnnotation hammers the //tiv: annotation parser with
// malformed, truncated, CRLF-ridden, and non-ASCII comment text. The
// invariants: never panic; ok implies a recognized kind hugging the
// colon and a whitespace-normalized note.
func FuzzParseAnnotation(f *testing.F) {
	f.Add("//tiv:hotpath steady-state encode")
	f.Add("//tiv:hotpath")
	f.Add("//tiv:coldpath grows reused capacity once")
	f.Add("//tiv:coldpath")
	f.Add("//tiv: hotpath spaced kind is prose")
	f.Add("// tiv:hotpath spaced prefix is prose")
	f.Add("//tiv:hotpath\ttabbed\tnote")
	f.Add("//tiv:warmpath unrecognized kind")
	f.Add("//tiv:hotpath note with \r\n embedded CRLF")
	f.Add("//tiv:hotpath заметка не в ASCII")
	f.Add("//tiv:coldpath \x00 NUL bytes")
	f.Fuzz(func(t *testing.T, text string) {
		kind, note, ok := flow.ParseAnnotation(text)
		if !ok {
			if kind != "" || note != "" {
				t.Fatalf("not-ok parse leaked values: %q %q", kind, note)
			}
			return
		}
		if kind != flow.AnnotationHot && kind != flow.AnnotationCold {
			t.Fatalf("ok parse of %q with unrecognized kind %q", text, kind)
		}
		if !strings.HasPrefix(text, flow.AnnotationPrefix+kind) {
			t.Fatalf("ok parse of %q: kind %q does not hug the colon", text, kind)
		}
		if note != strings.Join(strings.Fields(note), " ") {
			t.Fatalf("note %q is not whitespace-normalized", note)
		}
	})
}
