// Annotation parsing for the //tiv: vocabulary the interprocedural
// analyzers consume. Annotations live in a function's doc comment:
//
//	//tiv:hotpath <optional note>
//	    marks a zero-allocation root: the function and everything it
//	    transitively calls must be allocation-free (analyzer
//	    allocfree).
//	//tiv:coldpath <required justification>
//	    exempts a function from a hot caller's transitive
//	    allocation-free requirement: error latches, growth/rebuild
//	    fallbacks, consumer callbacks. The justification is mandatory —
//	    a coldpath annotation without one is inert and reported.
package flow

import (
	"go/ast"
	"go/token"
	"strings"
)

// Annotation is one parsed //tiv: doc-comment directive.
type Annotation struct {
	Kind string // "hotpath" or "coldpath"
	Note string // optional for hotpath, required for coldpath
	Pos  token.Pos
}

// AnnotationPrefix introduces a flow annotation. The kind follows the
// colon with no space (mirroring //go: directives); the note follows
// the kind after whitespace.
const AnnotationPrefix = "//tiv:"

// AnnotationHot and AnnotationCold are the recognized kinds.
const (
	AnnotationHot  = "hotpath"
	AnnotationCold = "coldpath"
)

// ParseAnnotation parses one comment line. ok reports whether the line
// is a well-formed //tiv: directive with a recognized kind; the note
// may be empty. Unrecognized kinds, missing kinds, and prefix lookalikes
// ("//tiv :x", "// tiv:x") are not annotations.
func ParseAnnotation(text string) (kind, note string, ok bool) {
	rest, found := strings.CutPrefix(text, AnnotationPrefix)
	if !found {
		return "", "", false
	}
	// The kind must hug the colon: "//tiv: hotpath" is prose, not a
	// directive, exactly like //go: directives.
	if rest == "" || rest[0] == ' ' || rest[0] == '\t' {
		return "", "", false
	}
	kind, note, _ = strings.Cut(rest, " ")
	if k, n, tabbed := strings.Cut(kind, "\t"); tabbed {
		kind = k
		note = n + " " + note
	}
	if kind != AnnotationHot && kind != AnnotationCold {
		return "", "", false
	}
	return kind, strings.Join(strings.Fields(note), " "), true
}

// parseFuncAnnotations scans a declaration's doc comment and attaches
// hot/cold annotations to the node. A coldpath directive without a
// justification is recorded as inert rather than honored: the stated
// reason is the point, exactly as with //lint:tiv suppressions.
func parseFuncAnnotations(f *Func, doc *ast.CommentGroup, fset *token.FileSet) {
	if doc == nil {
		return
	}
	for _, c := range doc.List {
		kind, note, ok := ParseAnnotation(c.Text)
		if !ok {
			continue
		}
		a := &Annotation{Kind: kind, Note: note, Pos: c.Pos()}
		switch kind {
		case AnnotationHot:
			f.Hot = a
		case AnnotationCold:
			if note == "" {
				f.InertAnnotations = append(f.InertAnnotations, c.Pos())
				continue
			}
			f.Cold = a
		}
	}
}
