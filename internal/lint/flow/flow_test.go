package flow_test

import (
	"path/filepath"
	"strings"
	"testing"

	"tivaware/internal/lint/flow"
	"tivaware/internal/lint/load"
)

// buildFixture loads the fixture module at dir and builds its graph.
func buildFixture(t *testing.T, dir string) *flow.Graph {
	t.Helper()
	root, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	l, err := load.New(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range l.Warnings {
		t.Fatalf("fixture should load cleanly: %s", w)
	}
	return flow.Build(pkgs)
}

// TestDiamondCallgraph pins the graph shape for a diamond with a
// closure on one arm: Top → each → (closure) → left → base and
// Top → right → base, plus a Ref edge for a named function passed as
// a call argument.
func TestDiamondCallgraph(t *testing.T) {
	g := buildFixture(t, "testdata/diamond")
	const pkg = "fixture/diamond"
	byName := func(name string) *flow.Func {
		t.Helper()
		f := g.ByKey(pkg + "||" + name)
		if f == nil {
			t.Fatalf("no node for %s", name)
		}
		return f
	}

	top := byName("Top")
	var topCallees []string
	var lit *flow.Func
	for _, c := range top.Calls {
		if c.Callee != nil {
			topCallees = append(topCallees, c.Callee.Key)
		}
	}
	// The closure is a child node of Top, keyed under Top's key.
	for k, f := range g.Funcs {
		if strings.HasPrefix(k, top.Key+"|lit@") {
			lit = f
		}
	}
	if lit == nil {
		t.Fatalf("closure argument did not become a node; keys with Top prefix: %v", topCallees)
	}

	wantEdge := func(from *flow.Func, to string, check func(flow.Call) bool, desc string) {
		t.Helper()
		for _, c := range from.Calls {
			if c.Callee != nil && c.Callee.Key == pkg+"||"+to && check(c) {
				return
			}
		}
		t.Errorf("%s: no %s edge to %s (edges: %+v)", from.Display, desc, to, from.Calls)
	}
	plain := func(c flow.Call) bool { return !c.Ref && !c.Dynamic && !c.Go && !c.Defer }

	// Both arms of the diamond converge on base.
	wantEdge(top, "each", plain, "static")
	wantEdge(top, "right", plain, "static")
	wantEdge(lit, "left", plain, "closure-body static")
	wantEdge(byName("left"), "base", plain, "static")
	wantEdge(byName("right"), "base", plain, "static")

	// each calls through its parameter: a dynamic edge, not a callee.
	var dynamic bool
	for _, c := range byName("each").Calls {
		dynamic = dynamic || c.Dynamic
	}
	if !dynamic {
		t.Errorf("each's call through its parameter should be dynamic: %+v", byName("each").Calls)
	}

	// A named function passed as an argument becomes a Ref edge at the
	// call site: reachability traverses it, call semantics do not.
	wantEdge(byName("Tabled"), "handler", func(c flow.Call) bool { return c.Ref }, "ref")
	wantEdge(byName("Tabled"), "each2", plain, "static")
}
