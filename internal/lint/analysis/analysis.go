// Package analysis is the minimal analyzer framework tivlint is built
// on: a clean-room, stdlib-only subset of the golang.org/x/tools
// go/analysis vocabulary (Analyzer, Pass, Diagnostic). The repo builds
// hermetically — no module downloads — so the framework deliberately
// depends on nothing outside the standard library; an analyzer written
// against it is a few mechanical edits away from the x/tools shape if
// the dependency ever becomes available.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one invariant checker: a name (used in
// diagnostics and //lint:tiv suppression directives), documentation,
// and the per-package Run function.
type Analyzer struct {
	// Name identifies the analyzer. It must be a valid Go identifier,
	// because suppression directives reference it.
	Name string
	// Doc states the invariant the analyzer enforces, why it holds,
	// and what to do when it fires. The first line is the summary.
	Doc string
	// Run analyzes one package unit and reports findings through
	// pass.Report. It returns an error only for analyzer malfunction;
	// invariant violations are diagnostics, not errors.
	Run func(pass *Pass) error
}

// Pass carries one type-checked package unit through an analyzer.
// Units are loaded by internal/lint/load: a package's compiled files
// plus its in-package test files (external _test packages form their
// own unit), fully type-checked against the real module and standard
// library, so analyzers resolve names with go/types instead of
// pattern-matching source text.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the unit's parsed files, comments included.
	Files []*ast.File
	// Pkg and Info are the unit's type-check results.
	Pkg  *types.Package
	Info *types.Info
	// Path is the unit's import path ("tivaware/internal/tiv", with a
	// "_test" suffix for external test packages).
	Path string
	// TestFile reports whether f is a _test.go file. Analyzers whose
	// invariant only binds production code consult it.
	TestFile func(f *ast.File) bool
	// Flow carries the module-wide interprocedural layer
	// (*flow.Graph) when the runner built one. It is typed any so this
	// package stays dependency-free; analyzers retrieve it through
	// flow.Of(pass) and must tolerate nil (a pass run without the
	// layer).
	Flow any
	// Report delivers one finding.
	Report func(d Diagnostic)
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf formats and reports one finding.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// PathHasSuffix reports whether the slash-separated import path ends
// with the slash-separated suffix on a path-segment boundary:
// "tivaware/internal/tiv" matches "internal/tiv" but not "tiv2" or
// "al/tiv". Analyzers scope themselves with it so the same code binds
// the real module and the linttest fixture trees (whose module path
// differs but whose package layout mirrors the real one).
func PathHasSuffix(path, suffix string) bool {
	if path == suffix {
		return true
	}
	return strings.HasSuffix(path, "/"+suffix)
}

// PathWithin reports whether path is prefix itself or a package
// beneath it (segment-aware, like PathHasSuffix).
func PathWithin(path, prefix string) bool {
	if path == prefix {
		return true
	}
	return strings.HasPrefix(path, prefix+"/")
}

// NamedFrom reports whether t (possibly behind pointers) is the named
// type name declared in a package whose import path ends in pkgSuffix.
// Generic instantiations resolve to their origin type.
func NamedFrom(t types.Type, pkgSuffix, name string) bool {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	n = n.Origin()
	obj := n.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Name() == name && PathHasSuffix(obj.Pkg().Path(), pkgSuffix)
}

// FuncFrom reports whether obj is the package-level function name
// declared in a package whose import path ends in pkgSuffix.
func FuncFrom(obj types.Object, pkgSuffix, name string) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Name() == name && PathHasSuffix(fn.Pkg().Path(), pkgSuffix)
}
