package tivshard_test

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"tivaware/internal/tivaware"
	"tivaware/internal/tivd"
	"tivaware/internal/tivshard"
	"tivaware/internal/tivshard/testcluster"
)

type edgeKey struct{ i, j int }

func key(i, j int) edgeKey {
	if j < i {
		i, j = j, i
	}
	return edgeKey{i, j}
}

// violatedOwnedSet reads one shard's current violated-edge set,
// restricted to the edges that shard owns under the round-robin
// partition (edge (i,j), i<j, owned by shard i%K).
func violatedOwnedSet(t *testing.T, svc *tivaware.Service, shard, shards int) map[edgeKey]bool {
	t.Helper()
	an, err := svc.Analysis()
	if err != nil {
		t.Fatal(err)
	}
	n := svc.N()
	set := make(map[edgeKey]bool)
	for i := 0; i < n; i++ {
		if i%shards != shard {
			continue
		}
		for j := i + 1; j < n; j++ {
			if an.Counts.At(i, j) > 0 {
				set[edgeKey{i, j}] = true
			}
		}
	}
	return set
}

// TestConcurrentUpdatesFanInAccounting is the -race stress test of
// the update plane: goroutines hammer ApplyUpdate through the
// gateway — landing on edges owned by different shards concurrently —
// while a fan-in subscriber checks each shard stream's violated-edge
// deltas for exactness. Per shard stream, starting from the baseline
// violated set, every NewlyViolated edge must be absent from the
// running set (a present one would mean a duplicated or out-of-order
// delta) and every Cleared edge present (an absent one, a lost
// delta); after the cluster quiesces each replayed set must equal the
// shard's actual owned violated set.
func TestConcurrentUpdatesFanInAccounting(t *testing.T) {
	const (
		shards  = 3
		n       = 28
		writers = 8
		updates = 40
	)
	c, err := testcluster.Start(testcluster.Config{
		N:      n,
		Shards: shards,
		Live:   true,
		// The accounting requires a lossless stream: buffer far beyond
		// the worst-case event count so no subscriber is overflow-
		// disconnected mid-test.
		ServerOptions:  tivd.Options{SubscribeBuffer: 16384},
		GatewayOptions: tivshard.Options{ResubscribeDelay: 50 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Baseline violated sets, per shard, before any update flows.
	baseline := make([]map[edgeKey]bool, shards)
	for s := 0; s < shards; s++ {
		baseline[s] = violatedOwnedSet(t, c.Shards[s].Service, s, shards)
	}

	var mu sync.Mutex
	streams := make([][]tivshard.ShardChangeSet, shards)
	torn := false
	cancel, err := c.Gateway.Subscribe(func(ev tivshard.ShardChangeSet) {
		mu.Lock()
		defer mu.Unlock()
		if ev.Changes.Rescan {
			torn = true
			return
		}
		streams[ev.Shard] = append(streams[ev.Shard], ev)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for u := 0; u < updates; u++ {
				i := rng.Intn(n)
				j := rng.Intn(n)
				if i == j {
					j = (j + 1) % n
				}
				// Extreme swings so violation flips actually happen.
				rtt := 1 + rng.Float64()*4
				if rng.Intn(2) == 0 {
					rtt = 500 + rng.Float64()*2000
				}
				if _, err := c.Gateway.ApplyUpdate(ctx, i, j, rtt); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	// Concurrent readers keep the query path racing the update path.
	readCtx, stopReads := context.WithCancel(ctx)
	var readWG sync.WaitGroup
	readWG.Add(1)
	go func() {
		defer readWG.Done()
		for q := 0; readCtx.Err() == nil; q++ {
			_, _ = c.Gateway.ClosestNode(readCtx, q%n, tivaware.QueryOptions{SeverityPenalty: 2})
			_, _ = c.Gateway.TopEdges(readCtx, 5)
		}
	}()
	wg.Wait()
	stopReads()
	readWG.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Every ApplyUpdate returned only after all replicas applied it,
	// so the shard states are final; the fan-in may still be in
	// flight. Poll until each shard's replayed stream converges on
	// its actual violated set.
	finals := make([]map[edgeKey]bool, shards)
	for s := 0; s < shards; s++ {
		finals[s] = violatedOwnedSet(t, c.Shards[s].Service, s, shards)
	}
	deadline := time.Now().Add(15 * time.Second)
	var lastErr error
	for {
		lastErr = replayAndCompare(streams, baseline, finals, &mu, &torn)
		if lastErr == nil || time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if lastErr != nil {
		t.Fatal(lastErr)
	}

	mu.Lock()
	total := 0
	for _, evs := range streams {
		total += len(evs)
	}
	mu.Unlock()
	if total == 0 {
		t.Fatal("no violated-edge deltas arrived; the stress produced no flips")
	}
}

// replayAndCompare replays each shard's delta stream from its
// baseline and compares with the shard's final state, failing on any
// duplicated or lost delta. Events are replayed in monitor-version
// order: the version stamps totally order a shard's applies, while
// wire delivery of changesets from *racing* updates may interleave
// slightly out of apply order (the service fans out after releasing
// its apply lock — documented in tivaware.Service.Subscribe).
func replayAndCompare(streams [][]tivshard.ShardChangeSet, baseline, finals []map[edgeKey]bool, mu *sync.Mutex, torn *bool) error {
	mu.Lock()
	defer mu.Unlock()
	if *torn {
		return fmt.Errorf("a shard stream tore (overflow/disconnect); raise SubscribeBuffer")
	}
	for s := range streams {
		events := append([]tivshard.ShardChangeSet(nil), streams[s]...)
		sort.SliceStable(events, func(a, b int) bool {
			return events[a].Changes.Version < events[b].Changes.Version
		})
		for evIdx := 1; evIdx < len(events); evIdx++ {
			if events[evIdx].Changes.Version == events[evIdx-1].Changes.Version {
				return fmt.Errorf("shard %d: two events share monitor version %d (duplicated change set)", s, events[evIdx].Changes.Version)
			}
		}
		set := make(map[edgeKey]bool, len(baseline[s]))
		for e := range baseline[s] {
			set[e] = true
		}
		for evIdx, ev := range events {
			for _, e := range ev.Changes.NewlyViolated {
				k := key(e.I, e.J)
				if set[k] {
					return fmt.Errorf("shard %d event %d: duplicated NewlyViolated delta for edge (%d,%d)", s, evIdx, e.I, e.J)
				}
				set[k] = true
			}
			for _, e := range ev.Changes.Cleared {
				k := key(e.I, e.J)
				if !set[k] {
					return fmt.Errorf("shard %d event %d: Cleared delta for edge (%d,%d) that was not violated (lost or duplicated delta)", s, evIdx, e.I, e.J)
				}
				delete(set, k)
			}
		}
		if len(set) != len(finals[s]) {
			return fmt.Errorf("shard %d: replayed violated set has %d edges, shard state has %d", s, len(set), len(finals[s]))
		}
		for e := range finals[s] {
			if !set[e] {
				return fmt.Errorf("shard %d: replayed set is missing violated edge (%d,%d)", s, e.i, e.j)
			}
		}
	}
	return nil
}
