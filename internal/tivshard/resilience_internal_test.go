package tivshard

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"tivaware/internal/tivclient"
	"tivaware/internal/tivwire"
)

// Internal hedgedTry coverage. The bug these tests pin: a primary that
// failed *before* the hedge timer fired used to return its failure
// immediately — the hedge replica never raced at all, so a fast-failing
// shard defeated hedging exactly when failover mattered most.

// hedgeGateway builds the minimal Gateway hedgedTry needs: two shard
// slots, hedging armed, breaker and per-try timeout off. The clients
// are never dialed — the call closure dispatches on the client pointer.
func hedgeGateway(hedge time.Duration) *Gateway {
	return &Gateway{
		k: 2,
		opts: Options{
			HedgeDelay:       hedge,
			Retry:            RetryPolicy{PerTryTimeout: -1},
			BreakerThreshold: -1,
		},
		clients: []*tivclient.Client{
			tivclient.New("http://shard0.invalid", tivclient.Options{}),
			tivclient.New("http://shard1.invalid", tivclient.Options{}),
		},
		states: make([]shardState, 2),
	}
}

// shardCall builds a call that answers per shard index, counting
// invocations.
func shardCall(g *Gateway, calls *atomic.Int64, answer func(shard int) (string, error)) func(ctx context.Context, c *tivclient.Client) (string, error) {
	return func(ctx context.Context, c *tivclient.Client) (string, error) {
		calls.Add(1)
		for s, gc := range g.clients {
			if gc == c {
				return answer(s)
			}
		}
		panic("unknown client")
	}
}

func TestHedgedTryFastFailureRacesHedge(t *testing.T) {
	// Hedge delay far beyond the test budget: only the fast-failure
	// path can launch the second attempt in time.
	g := hedgeGateway(30 * time.Second)
	var calls atomic.Int64
	retryable := &tivclient.Error{Code: tivclient.CodeTransport, Message: "boom"}
	call := shardCall(g, &calls, func(shard int) (string, error) {
		if shard == 0 {
			return "", retryable
		}
		return "shard1", nil
	})
	start := time.Now()
	v, err := hedgedTry(g, context.Background(), 0, []int{0, 1}, call)
	if err != nil {
		t.Fatalf("hedgedTry surfaced the primary's fast failure without racing the hedge: %v", err)
	}
	if v != "shard1" {
		t.Fatalf("answer = %q, want the hedge replica's", v)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("hedgedTry took %v; it waited for the hedge timer instead of launching on the fast failure", elapsed)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("%d attempts launched, want 2", n)
	}
}

func TestHedgedTryTerminalFailureDoesNotHedge(t *testing.T) {
	g := hedgeGateway(30 * time.Second)
	var calls atomic.Int64
	terminal := &tivclient.Error{Code: tivwire.CodeBadRequest, Status: 400, Message: "bad"}
	call := shardCall(g, &calls, func(shard int) (string, error) {
		return "", terminal
	})
	start := time.Now()
	_, err := hedgedTry(g, context.Background(), 0, []int{0, 1}, call)
	if err == nil {
		t.Fatal("terminal failure did not surface")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("terminal failure took %v to surface", elapsed)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("%d attempts launched for a terminal failure, want 1 (every replica would reject identically)", n)
	}
}

func TestHedgedTryBothFailuresSurfacePrimary(t *testing.T) {
	g := hedgeGateway(30 * time.Second)
	var calls atomic.Int64
	primaryErr := &tivclient.Error{Code: tivclient.CodeTransport, Message: "primary down"}
	hedgeErr := &tivclient.Error{Code: tivclient.CodeTransport, Message: "hedge down"}
	call := shardCall(g, &calls, func(shard int) (string, error) {
		if shard == 0 {
			return "", primaryErr
		}
		return "", hedgeErr
	})
	_, err := hedgedTry(g, context.Background(), 0, []int{0, 1}, call)
	if err == nil {
		t.Fatal("hedgedTry succeeded with every replica failing")
	}
	var ce *tivclient.Error
	if !errors.As(err, &ce) || ce.Message != "primary down" {
		t.Fatalf("err = %v, want the primary's (first) failure", err)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("%d attempts launched, want 2", n)
	}
}

// TestHedgedTryNeverTripleLaunches covers the fix's own hazard: the
// fast-failure launch racing the already-armed timer must not launch a
// third attempt (which would overflow the 2-slot result channel and
// leak its sender).
func TestHedgedTryNeverTripleLaunches(t *testing.T) {
	for i := 0; i < 50; i++ {
		g := hedgeGateway(time.Millisecond)
		var calls atomic.Int64
		retryable := &tivclient.Error{Code: tivclient.CodeTransport, Message: "boom"}
		call := shardCall(g, &calls, func(shard int) (string, error) {
			if shard == 0 {
				// Straddle the hedge delay so both launch paths race.
				time.Sleep(time.Millisecond)
				return "", retryable
			}
			return "shard1", nil
		})
		v, err := hedgedTry(g, context.Background(), 0, []int{0, 1}, call)
		if err != nil || v != "shard1" {
			t.Fatalf("iteration %d: (%q, %v)", i, v, err)
		}
		time.Sleep(2 * time.Millisecond) // let any stray launch land
		if n := calls.Load(); n > 2 {
			t.Fatalf("iteration %d: %d attempts launched, want <= 2", i, n)
		}
	}
}
