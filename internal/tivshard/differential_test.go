package tivshard_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"tivaware/internal/synth"
	"tivaware/internal/tivaware"
	"tivaware/internal/tivshard/testcluster"
	"tivaware/internal/tivwire"
)

// The acceptance bar of the sharded query plane: a gateway over K
// real shard servers must agree with a monolithic tivaware.Service
// over the identical matrix — exactly. Rank orders, scores, detour
// gains, top-edge rankings, and the integer triangle totals are all
// compared with ==, not tolerances: the cluster runs every replica
// with Workers=1, which makes the severity witness sums
// bit-reproducible (see testcluster.Config.Workers).

var shardCounts = []int{1, 2, 3, 7}

// diffMatrixConfig builds the shared synthetic space: DS2-like with
// missing measurements, so the holes paths (skipped candidates,
// unmeasured direct edges) are differentially exercised too.
func diffCluster(t *testing.T, shards int, live bool) (*testcluster.Cluster, *tivaware.Service) {
	t.Helper()
	cfg := synth.DS2Like(45, 5)
	cfg.MissingFrac = 0.08
	sp, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := testcluster.Start(testcluster.Config{
		Matrix:  sp.Matrix,
		Shards:  shards,
		Live:    live,
		Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	mono, err := c.NewMonolith()
	if err != nil {
		t.Fatal(err)
	}
	return c, mono
}

// assertAgreement runs the full query surface against both sides and
// requires exact equality.
func assertAgreement(t *testing.T, mono *tivaware.Service, c *testcluster.Cluster) {
	t.Helper()
	ctx := context.Background()
	gw := c.Gateway
	n := c.Matrix.N()

	targets := []int{0, 3, n - 1}
	optVariants := []tivaware.QueryOptions{
		{},
		{SeverityPenalty: 2.5},
		{SeverityPenalty: 1, ExcludeViolated: true},
	}
	for _, target := range targets {
		for oi, opts := range optVariants {
			want, err := mono.Rank(ctx, target, nil, opts)
			if err != nil {
				t.Fatal(err)
			}
			got, err := gw.Rank(ctx, target, nil, opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("Rank(%d, opts %d): gateway %d selections, monolith %d", target, oi, len(got), len(want))
			}
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("Rank(%d, opts %d) selection %d: gateway %+v, monolith %+v", target, oi, k, got[k], want[k])
				}
			}
		}
	}

	// Explicit (unordered) candidate lists, and the explicit empty set.
	cands := []int{n - 1, 3, 17, 8, 21}
	want, err := mono.Rank(ctx, 0, cands, tivaware.QueryOptions{SeverityPenalty: 2})
	if err != nil {
		t.Fatal(err)
	}
	got, err := gw.Rank(ctx, 0, cands, tivaware.QueryOptions{SeverityPenalty: 2})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("Rank with candidates: gateway %v, monolith %v", got, want)
	}
	gotEmpty, err := gw.Rank(ctx, 0, []int{}, tivaware.QueryOptions{})
	if err != nil || len(gotEmpty) != 0 {
		t.Fatalf("Rank with empty candidates = (%v, %v), want empty", gotEmpty, err)
	}

	for _, k := range []int{1, 4, n + 10} {
		want, err := mono.KClosest(ctx, 2, k, tivaware.QueryOptions{SeverityPenalty: 1.5})
		if err != nil {
			t.Fatal(err)
		}
		got, err := gw.KClosest(ctx, 2, k, tivaware.QueryOptions{SeverityPenalty: 1.5})
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("KClosest(k=%d): gateway %v, monolith %v", k, got, want)
		}
	}

	for _, target := range targets {
		want, err := mono.ClosestNode(ctx, target, tivaware.QueryOptions{SeverityPenalty: 2})
		if err != nil {
			t.Fatal(err)
		}
		got, err := gw.ClosestNode(ctx, target, tivaware.QueryOptions{SeverityPenalty: 2})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("ClosestNode(%d): gateway %+v, monolith %+v", target, got, want)
		}
	}

	// Detours, including a pair with a missing direct edge if any.
	pairs := [][2]int{{0, 1}, {1, n - 1}, {10, 20}, {5, 6}, {7, 31}}
	for i := 0; i < n && len(pairs) < 8; i++ {
		for j := i + 1; j < n; j++ {
			if !c.Matrix.Has(i, j) {
				pairs = append(pairs, [2]int{i, j})
				break
			}
		}
	}
	for _, p := range pairs {
		want, err := mono.DetourPath(ctx, p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		got, err := gw.DetourPath(ctx, p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("DetourPath(%d,%d): gateway %+v, monolith %+v", p[0], p[1], got, want)
		}
	}

	wantTop := mono.TopEdges(25)
	gotTop, err := gw.TopEdges(ctx, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotTop) != len(wantTop) {
		t.Fatalf("TopEdges: gateway %d edges, monolith %d", len(gotTop), len(wantTop))
	}
	for k := range wantTop {
		if gotTop[k] != wantTop[k] {
			t.Fatalf("TopEdges[%d]: gateway %+v, monolith %+v", k, gotTop[k], wantTop[k])
		}
	}

	wantAn, err := mono.Analysis()
	if err != nil {
		t.Fatal(err)
	}
	gotAn, err := gw.Analysis(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if gotAn.ViolatingTriangles != wantAn.ViolatingTriangles || gotAn.Triangles != wantAn.Triangles {
		t.Fatalf("Analysis: gateway %d/%d, monolith %d/%d",
			gotAn.ViolatingTriangles, gotAn.Triangles, wantAn.ViolatingTriangles, wantAn.Triangles)
	}
	if gotAn.ViolatingTriangleFraction != wantAn.ViolatingTriangleFraction() {
		t.Fatalf("Analysis fraction: gateway %g, monolith %g",
			gotAn.ViolatingTriangleFraction, wantAn.ViolatingTriangleFraction())
	}

	// Error parity on a bad target and on hostile residue classes
	// (a negative rem once panicked the gateway's single-class
	// routing before it could validate).
	if _, err := gw.Rank(ctx, n+5, nil, tivaware.QueryOptions{}); err == nil {
		t.Error("gateway Rank with out-of-range target should error")
	}
	if _, err := gw.DetourPath(ctx, 4, 4); err == nil {
		t.Error("gateway DetourPath on the diagonal should error")
	}
	if _, err := gw.Rank(ctx, 0, nil, tivaware.QueryOptions{Mod: 2, Rem: -1}); err == nil {
		t.Error("gateway Rank with negative Rem should error, not panic")
	}
	if _, err := gw.Rank(ctx, 0, nil, tivaware.QueryOptions{Mod: -2, Rem: 0}); err == nil {
		t.Error("gateway Rank with negative Mod should error")
	}
	if _, err := gw.DetourPathMod(ctx, 0, 1, 3, -2); err == nil {
		t.Error("gateway DetourPathMod with negative rem should error, not panic")
	}
	if _, err := gw.TopEdgesMod(ctx, 5, 4, -1); err == nil {
		t.Error("gateway TopEdgesMod with negative rem should error, not panic")
	}
	if _, err := gw.KClosest(ctx, 0, 3, tivaware.QueryOptions{Mod: 5, Rem: 9}); err == nil {
		t.Error("gateway KClosest with Rem >= Mod should error")
	}
}

func TestGatewayMatchesMonolith(t *testing.T) {
	for _, k := range shardCounts {
		k := k
		t.Run(fmt.Sprintf("shards=%d", k), func(t *testing.T) {
			t.Parallel()
			c, mono := diffCluster(t, k, false)
			assertAgreement(t, mono, c)
		})
	}
}

// TestGatewayMatchesMonolithLive re-proves the agreement on live
// clusters while the matrix moves: the identical update sequence is
// applied to the gateway (which replicates it across the shards) and
// to the monolith, and every per-update change set plus the full
// query surface must agree exactly.
func TestGatewayMatchesMonolithLive(t *testing.T) {
	for _, k := range shardCounts {
		k := k
		t.Run(fmt.Sprintf("shards=%d", k), func(t *testing.T) {
			t.Parallel()
			c, mono := diffCluster(t, k, true)
			ctx := context.Background()
			rng := rand.New(rand.NewSource(11))
			n := c.Matrix.N()
			for step := 0; step < 40; step++ {
				i := rng.Intn(n)
				j := rng.Intn(n)
				if i == j {
					continue
				}
				rtt := 5 + rng.Float64()*400
				if step%9 == 8 {
					rtt = -1 // remove the measurement
				}
				wantCS, err := mono.ApplyUpdate(i, j, rtt)
				if err != nil {
					t.Fatal(err)
				}
				gotCS, err := c.Gateway.ApplyUpdate(ctx, i, j, rtt)
				if err != nil {
					t.Fatal(err)
				}
				if gotCS.Version != wantCS.Version || gotCS.Rescan != wantCS.Rescan {
					t.Fatalf("step %d: gateway change set (v%d rescan=%v), monolith (v%d rescan=%v)",
						step, gotCS.Version, gotCS.Rescan, wantCS.Version, wantCS.Rescan)
				}
				if fmt.Sprint(gotCS.NewlyViolated) != fmt.Sprint(tivwire.FromEdges(wantCS.NewlyViolated)) ||
					fmt.Sprint(gotCS.Cleared) != fmt.Sprint(tivwire.FromEdges(wantCS.Cleared)) {
					t.Fatalf("step %d: gateway deltas %+v, monolith %+v", step, gotCS, wantCS)
				}
			}
			assertAgreement(t, mono, c)
		})
	}
}
