package tivshard_test

import (
	"context"
	"errors"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"tivaware/internal/synth"
	"tivaware/internal/tivaware"
	"tivaware/internal/tivfault"
	"tivaware/internal/tivshard"
	"tivaware/internal/tivshard/testcluster"
	"tivaware/internal/tivwire"
)

// The fault suite: a gateway whose shard misbehaves at the HTTP layer
// — 500 envelopes, truncated JSON bodies, mid-body hangs — must keep
// answering the full query surface exactly (failover to the replicas,
// which hold the same full matrix), surface "degraded" while the
// breaker excludes the shard, and return to "ok" once the prober
// readmits it.

// chaosGatewayOptions tightens every resilience knob so fault tests
// converge in milliseconds instead of the production-scale defaults.
func chaosGatewayOptions() tivshard.Options {
	return tivshard.Options{
		Retry: tivshard.RetryPolicy{
			MaxAttempts:   4,
			BaseBackoff:   2 * time.Millisecond,
			MaxBackoff:    20 * time.Millisecond,
			PerTryTimeout: 400 * time.Millisecond,
		},
		BreakerThreshold: 3,
		ProbeInterval:    20 * time.Millisecond,
		ProbeTimeout:     250 * time.Millisecond,
		ResubscribeDelay: 20 * time.Millisecond,
	}
}

// faultyCluster boots a 3-shard cluster whose shard handlers are
// wrapped by one (initially clean) injector: shard 0 only, or every
// shard when faultAll is set. Returns the differential monolith twin.
func faultyCluster(t *testing.T, faultAll, live bool) (*testcluster.Cluster, *tivaware.Service, *tivfault.Injector) {
	t.Helper()
	inj := tivfault.New(tivfault.Spec{})
	cfg := synth.DS2Like(40, 9)
	cfg.MissingFrac = 0.08
	sp, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := testcluster.Start(testcluster.Config{
		Matrix:         sp.Matrix,
		Shards:         3,
		Live:           live,
		Workers:        1,
		GatewayOptions: chaosGatewayOptions(),
		ShardMiddleware: func(s int, h http.Handler) http.Handler {
			if !faultAll && s != 0 {
				return h
			}
			return inj.Handler(h)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	mono, err := c.NewMonolith()
	if err != nil {
		t.Fatal(err)
	}
	return c, mono, inj
}

// waitStatus polls the gateway until Status() == want.
func waitStatus(t *testing.T, gw *tivshard.Gateway, want string, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for gw.Status() != want {
		if time.Now().After(deadline) {
			t.Fatalf("gateway status = %q, want %q after %v (down shards: %v)",
				gw.Status(), want, within, gw.DownShards())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestGatewayExactUnderSingleShardFaults sweeps the three HTTP-layer
// fault classes over shard 0 — always-500, always-torn-JSON,
// always-hang-mid-request — and requires the full query surface to
// stay bit-for-bit equal to the monolith through each one, the
// breaker to trip ("degraded"), and a clean recovery ("ok", exact
// again) after the faults clear.
func TestGatewayExactUnderSingleShardFaults(t *testing.T) {
	c, mono, inj := faultyCluster(t, false, false)
	classes := []struct {
		name string
		spec tivfault.Spec
	}{
		{"http500", tivfault.Spec{ErrRate: 1}},
		{"torn-json", tivfault.Spec{TearRate: 1}},
		{"midbody-hang", tivfault.Spec{HangRate: 1}},
	}
	for _, fc := range classes {
		t.Run(fc.name, func(t *testing.T) {
			inj.SetSpec(fc.spec)
			assertAgreement(t, mono, c)
			waitStatus(t, c.Gateway, "degraded", 10*time.Second)
			if down := c.Gateway.DownShards(); len(down) != 1 || down[0] != 0 {
				t.Fatalf("DownShards = %v, want [0]", down)
			}
			assertAgreement(t, mono, c) // exact while degraded, too

			inj.SetSpec(tivfault.Spec{})
			waitStatus(t, c.Gateway, "ok", 10*time.Second)
			assertAgreement(t, mono, c)
		})
	}
}

// TestGatewayExactUnderBare500 covers the envelope-less failure mode:
// a shard answering plain-text HTTP 500s (no tivwire error JSON at
// all). The client classifies that by status as retryable, so the
// gateway fails over and stays exact.
func TestGatewayExactUnderBare500(t *testing.T) {
	var failing atomic.Bool
	cfg := synth.DS2Like(36, 17)
	sp, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := testcluster.Start(testcluster.Config{
		Matrix:         sp.Matrix,
		Shards:         3,
		Workers:        1,
		GatewayOptions: chaosGatewayOptions(),
		ShardMiddleware: func(s int, h http.Handler) http.Handler {
			if s != 0 {
				return h
			}
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if failing.Load() {
					http.Error(w, "boom", http.StatusInternalServerError)
					return
				}
				h.ServeHTTP(w, r)
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	mono, err := c.NewMonolith()
	if err != nil {
		t.Fatal(err)
	}
	failing.Store(true)
	assertAgreement(t, mono, c)
	waitStatus(t, c.Gateway, "degraded", 10*time.Second)
	failing.Store(false)
	waitStatus(t, c.Gateway, "ok", 10*time.Second)
	assertAgreement(t, mono, c)
}

// TestGatewayTypedErrorWhenAllShardsFault verifies the failure
// taxonomy end to end: with every shard returning 500s, a read
// exhausts its bounded retries and surfaces a typed, retryable
// "unavailable" — not a hang, not a panic, not a bare string.
func TestGatewayTypedErrorWhenAllShardsFault(t *testing.T) {
	c, _, inj := faultyCluster(t, true, false)
	inj.SetSpec(tivfault.Spec{ErrRate: 1})

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	start := time.Now()
	_, err := c.Gateway.Rank(ctx, 0, nil, tivaware.QueryOptions{})
	if err == nil {
		t.Fatal("Rank with every shard failing succeeded")
	}
	if elapsed := time.Since(start); elapsed > 15*time.Second {
		t.Fatalf("Rank took %v to fail; retries are not bounded", elapsed)
	}
	var wc interface{ WireCode() string }
	if !errors.As(err, &wc) {
		t.Fatalf("error %v carries no wire code", err)
	}
	if wc.WireCode() != tivwire.CodeUnavailable {
		t.Fatalf("wire code = %q, want %q", wc.WireCode(), tivwire.CodeUnavailable)
	}
	if !tivwire.RetryableCode(wc.WireCode()) {
		t.Fatal("all-shards-down error is not marked retryable")
	}

	inj.SetSpec(tivfault.Spec{})
	waitStatus(t, c.Gateway, "ok", 10*time.Second)
	if _, err := c.Gateway.Rank(ctx, 0, nil, tivaware.QueryOptions{}); err != nil {
		t.Fatalf("Rank after recovery: %v", err)
	}
}

// TestGatewayHedgedReadsUnderLatency exercises the hedge path: with
// shard 0 adding latency far beyond the hedge delay, single-class
// reads must still answer correctly (the hedge races a replica) and
// the answers stay exact.
func TestGatewayHedgedReadsUnderLatency(t *testing.T) {
	inj := tivfault.New(tivfault.Spec{})
	cfg := synth.DS2Like(36, 13)
	sp, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opts := chaosGatewayOptions()
	opts.HedgeDelay = 10 * time.Millisecond
	c, err := testcluster.Start(testcluster.Config{
		Matrix:         sp.Matrix,
		Shards:         3,
		Workers:        1,
		GatewayOptions: opts,
		ShardMiddleware: func(s int, h http.Handler) http.Handler {
			if s != 0 {
				return h
			}
			return inj.Handler(h)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	mono, err := c.NewMonolith()
	if err != nil {
		t.Fatal(err)
	}
	inj.SetSpec(tivfault.Spec{Latency: 300 * time.Millisecond})
	inj.Match = func(path string) bool { return path != "/healthz" }

	ctx := context.Background()
	// Edge (0,3) is owned by shard 0 (the slow one): Delay routes to
	// the owner and the hedge must beat the injected latency.
	start := time.Now()
	got, gotOK, err := c.Gateway.Delay(ctx, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	want, wantOK := mono.Delay(0, 3)
	if got != want || gotOK != wantOK {
		t.Fatalf("Delay(0,3) = (%v,%v), monolith (%v,%v)", got, gotOK, want, wantOK)
	}
	if elapsed > 250*time.Millisecond {
		t.Fatalf("hedged Delay took %v; hedge did not race the slow shard", elapsed)
	}
}
