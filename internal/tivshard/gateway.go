// Package tivshard is the sharded TIV query plane: a Gateway that
// fronts K backend tivd shard daemons and answers the full TIV-aware
// query surface by scatter-gathering over internal/tivclient.
//
// # Partitioning scheme
//
// Node ids are partitioned round-robin: shard s owns the residue
// class {v : v mod K == s}, and edge (i, j), i < j, is owned by
// owner(i) — every edge has exactly one owner, so the owned-edge sets
// partition the edge set. Every shard holds a full replica of the
// delay matrix: per-edge TIV severity is a global property (any third
// node can witness a violation of any edge), so a shard that held
// only its own rows could not compute exact severities without
// per-query cross-shard traffic — the communication bottleneck the
// distributed triangle-detection literature (CONGEST triangle
// finding, expander-decomposition detection) works around. This plane
// therefore replicates the data and partitions the *work* and the
// *authority*: each shard scans only its residue class per query, and
// each delta stream is authoritative only for the edges its shard
// owns.
//
// # Merge semantics
//
// Rank/KClosest/ClosestNode scatter the query with one residue class
// per shard (tivaware.QueryOptions.Mod/Rem) and k-way merge the
// per-shard rankings by (Score, Node) — the exact comparator the
// monolithic service sorts with, so the merged ranking is identical
// to the monolithic one. DetourPath scans each shard's relay class
// remotely and reduces to the smallest via delay (ties to the lowest
// relay id), which reproduces the monolithic first-strict-minimum
// scan exactly. TopEdges merges the per-shard owned-edge rankings by
// (severity desc, edge asc). Analysis queries every shard and
// requires the integer triangle totals to agree exactly — a built-in
// replica-divergence detector. The differential suite in this package
// pins gateway ≡ monolithic tivaware.Service over the same matrix.
//
// # Updates and subscriptions
//
// ApplyUpdate/ApplyBatch replicate each batch to every shard so the
// replicas stay in sync, serialized per owning shard (batches whose
// edges are owned by disjoint shards proceed concurrently; batches
// sharing an owner are totally ordered, so every replica applies
// same-edge updates in the same order). The owning shard of the first
// edge is applied first and its change set is the one returned.
// Subscribe fans the K shard SSE streams into one stream of
// ShardChangeSets, each filtered to the edges its shard owns: because
// the owned-edge sets partition the edge set and every shard applies
// every update, each violated-edge transition is delivered exactly
// once, on its owner's stream.
package tivshard

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"tivaware/internal/delayspace"
	"tivaware/internal/tiv"
	"tivaware/internal/tivaware"
	"tivaware/internal/tivclient"
	"tivaware/internal/tivwire"
)

// Options configures a Gateway. The zero value is valid.
type Options struct {
	// HTTPClient overrides the transport for all shard clients; nil
	// means http.DefaultClient. It must not carry a global timeout if
	// Subscribe is used (shard streams are long-lived).
	HTTPClient *http.Client
	// ResubscribeDelay is the pause before re-attaching a dropped
	// shard event stream; zero means 500ms.
	ResubscribeDelay time.Duration
}

func (o Options) resubscribeDelay() time.Duration {
	if o.ResubscribeDelay > 0 {
		return o.ResubscribeDelay
	}
	return 500 * time.Millisecond
}

// Gateway scatter-gathers TIV queries over K shard daemons. It
// implements tivaware.Querier (consumers written against the seam run
// unchanged against one service, one daemon, or a sharded cluster)
// and, structurally, the tivd Backend — so cmd/tivd -shards serves a
// gateway over the identical wire protocol shard daemons speak.
//
// A Gateway is safe for concurrent use.
type Gateway struct {
	clients []*tivclient.Client
	k       int
	n       int
	live    bool
	opts    Options

	// gen counts update batches routed through this gateway; it is
	// the epoch stamp of gateway responses (cross-shard queries have
	// no shared service epoch to report).
	gen atomic.Uint64

	// ownerMu[s] serializes update batches touching edges owned by
	// shard s, keeping the replicas' same-edge apply order identical.
	ownerMu []sync.Mutex

	// Subscription fan-in state.
	subMu      sync.Mutex
	subs       []gwSubscriber
	nextSub    int
	pumpCtx    context.Context
	pumpCancel context.CancelFunc
	pumpWG     sync.WaitGroup
	// pumpAttach is the in-flight or completed pump startup; nil when
	// pumps are down (never started, or torn down after a failed
	// attach). Every Subscribe call waits on it, so concurrent
	// subscribers all get the attach result instead of one racing
	// ahead on an attach that then fails.
	pumpAttach *pumpAttach
	closed     bool
}

// pumpAttach carries one pump-startup attempt: done closes when the
// attach resolved, err is its result.
type pumpAttach struct {
	done chan struct{}
	err  error
}

type gwSubscriber struct {
	id int
	fn func(ShardChangeSet)
}

// ShardChangeSet is one element of the gateway's fan-in stream: a
// shard's violated-edge change set filtered down to the edges that
// shard owns. Changes.Version is the shard's own monitor version
// (version counters are per shard, not global).
type ShardChangeSet struct {
	// Shard is the index of the authoritative shard.
	Shard int
	// Changes carries the owned-edge deltas. A Rescan change set with
	// no deltas marks a torn shard stream: one is delivered when the
	// stream tears (events may be missing from here on) and another
	// once it re-attached — a resync (TopEdges) triggered by that
	// second marker is gap-free, because the re-attach handshake
	// precedes it.
	Changes tivwire.ChangeSet
}

var _ tivaware.Querier = (*Gateway)(nil)

// New builds a gateway over the shard daemons at shardURLs, probing
// each shard's health: the shards must all serve the same node count.
// The shard order defines the partition (shard s owns node ids ≡ s
// mod K), so every gateway over the same cluster must list the shards
// in the same order.
func New(ctx context.Context, shardURLs []string, opts Options) (*Gateway, error) {
	if len(shardURLs) == 0 {
		return nil, fmt.Errorf("tivshard: no shard URLs")
	}
	g := &Gateway{
		k:       len(shardURLs),
		opts:    opts,
		ownerMu: make([]sync.Mutex, len(shardURLs)),
	}
	for _, u := range shardURLs {
		g.clients = append(g.clients, tivclient.New(u, tivclient.Options{HTTPClient: opts.HTTPClient}))
	}
	healths := make([]tivwire.Health, g.k)
	err := g.scatter(ctx, func(ctx context.Context, s int, c *tivclient.Client) error {
		h, err := c.Healthz(ctx)
		healths[s] = h
		return err
	})
	if err != nil {
		return nil, err
	}
	g.n = healths[0].N
	g.live = true
	for s, h := range healths {
		if h.N != g.n {
			return nil, fmt.Errorf("tivshard: shard %d serves %d nodes, shard 0 serves %d", s, h.N, g.n)
		}
		if !h.Live {
			g.live = false
		}
	}
	g.pumpCtx, g.pumpCancel = context.WithCancel(context.Background())
	return g, nil
}

// K returns the shard count.
func (g *Gateway) K() int { return g.k }

// N returns the node count.
func (g *Gateway) N() int { return g.n }

// Live reports whether every shard accepts updates and subscriptions.
func (g *Gateway) Live() bool { return g.live }

// Generation returns the number of update batches routed through this
// gateway (the epoch stamp of its responses).
func (g *Gateway) Generation() uint64 { return g.gen.Load() }

// Close stops the subscription fan-in pumps. It does not touch the
// shard daemons.
func (g *Gateway) Close() {
	g.subMu.Lock()
	g.closed = true
	g.subs = nil
	cancel := g.pumpCancel
	g.subMu.Unlock()
	cancel()
	g.pumpWG.Wait()
}

// owner returns the shard owning node id v.
func (g *Gateway) owner(v int) int { return v % g.k }

// edgeOwner returns the shard owning edge (i, j): the owner of the
// lower endpoint.
func (g *Gateway) edgeOwner(i, j int) int {
	if j < i {
		i = j
	}
	return g.owner(i)
}

// scatter runs fn once per shard concurrently and waits for all of
// them; shard errors are annotated with the shard index and joined.
func (g *Gateway) scatter(ctx context.Context, fn func(ctx context.Context, shard int, c *tivclient.Client) error) error {
	errs := make([]error, g.k)
	var wg sync.WaitGroup
	for s, c := range g.clients {
		wg.Add(1)
		go func(s int, c *tivclient.Client) {
			defer wg.Done()
			if err := fn(ctx, s, c); err != nil {
				errs[s] = fmt.Errorf("tivshard: shard %d (%s): %w", s, c.BaseURL(), err)
			}
		}(s, c)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// mergeSorted k-way merges per-shard result lists (each sorted by
// less) into one list sorted by less, stopping at limit elements
// (< 0 means all). With the monolithic comparator and per-class
// inputs, the merged order is exactly the monolithic order.
func mergeSorted[T any](lists [][]T, less func(a, b T) bool, limit int) []T {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	if limit < 0 || limit > total {
		limit = total
	}
	out := make([]T, 0, limit)
	idx := make([]int, len(lists))
	for len(out) < limit {
		best := -1
		for s, l := range lists {
			if idx[s] >= len(l) {
				continue
			}
			if best < 0 || less(l[idx[s]], lists[best][idx[best]]) {
				best = s
			}
		}
		if best < 0 {
			break
		}
		out = append(out, lists[best][idx[best]])
		idx[best]++
	}
	return out
}

// withClass returns opts restricted to shard s's residue class.
func (g *Gateway) withClass(opts tivaware.QueryOptions, s int) tivaware.QueryOptions {
	opts.Mod, opts.Rem = g.k, s
	return opts
}

// classShard validates a caller-supplied residue class and picks the
// replica that answers it. Validation must happen here, before the
// class indexes a shard: a monolithic daemon rejects a bad residue
// with an error from the query layer, and the gateway must be
// wire-compatible (and not let a remote caller panic it).
func (g *Gateway) classShard(mod, rem int) (int, error) {
	if mod < 0 {
		return 0, fmt.Errorf("tivshard: negative residue modulus %d", mod)
	}
	if rem < 0 || rem >= mod {
		return 0, fmt.Errorf("tivshard: residue %d outside [0,%d)", rem, mod)
	}
	return rem % g.k, nil
}

// Rank scores the candidates for the target, best first, by
// scattering one residue class to each shard and k-way merging the
// per-shard rankings; see tivaware.Service.Rank. A query already
// carrying a residue restriction is routed to a single shard (every
// shard holds the full replica, so any shard answers any class).
func (g *Gateway) Rank(ctx context.Context, target int, candidates []int, opts tivaware.QueryOptions) ([]tivaware.Selection, error) {
	if opts.Mod != 0 {
		s, err := g.classShard(opts.Mod, opts.Rem)
		if err != nil {
			return nil, err
		}
		return g.clients[s].Rank(ctx, target, candidates, opts)
	}
	lists := make([][]tivaware.Selection, g.k)
	err := g.scatter(ctx, func(ctx context.Context, s int, c *tivclient.Client) error {
		part, err := c.Rank(ctx, target, candidates, g.withClass(opts, s))
		lists[s] = part
		return err
	})
	if err != nil {
		return nil, err
	}
	return mergeSorted(lists, tivaware.SelectionLess, -1), nil
}

// KClosest returns the k best-ranked candidates for the target: each
// shard returns the k best of its class, and the merge keeps the
// global k best.
func (g *Gateway) KClosest(ctx context.Context, target, k int, opts tivaware.QueryOptions) ([]tivaware.Selection, error) {
	if k <= 0 {
		return nil, fmt.Errorf("tivshard: KClosest k = %d, want > 0", k)
	}
	if opts.Mod != 0 {
		s, err := g.classShard(opts.Mod, opts.Rem)
		if err != nil {
			return nil, err
		}
		return g.clients[s].KClosest(ctx, target, k, opts)
	}
	lists := make([][]tivaware.Selection, g.k)
	err := g.scatter(ctx, func(ctx context.Context, s int, c *tivclient.Client) error {
		part, err := c.KClosest(ctx, target, k, g.withClass(opts, s))
		lists[s] = part
		return err
	})
	if err != nil {
		return nil, err
	}
	return mergeSorted(lists, tivaware.SelectionLess, k), nil
}

// ClosestNode returns the best-ranked candidate for the target. It
// errors when no shard has an eligible candidate.
func (g *Gateway) ClosestNode(ctx context.Context, target int, opts tivaware.QueryOptions) (tivaware.Selection, error) {
	ranked, err := g.KClosest(ctx, target, 1, opts)
	if err != nil {
		return tivaware.Selection{}, err
	}
	if len(ranked) == 0 {
		return tivaware.Selection{}, fmt.Errorf("tivshard: no eligible candidate for node %d", target)
	}
	return ranked[0], nil
}

// DetourPath finds the best one-hop detour for (i, j): each shard
// scans its relay class, and the per-class bests reduce to the
// smallest via delay, ties to the lowest relay id — exactly the
// monolithic scan's first strict minimum.
func (g *Gateway) DetourPath(ctx context.Context, i, j int) (tivaware.Detour, error) {
	return g.DetourPathMod(ctx, i, j, 0, 0)
}

// DetourPathMod restricts the relay scan to the residue class
// (mod, rem); mod 0 scans everything (scattered across the shards),
// any other class is routed to a single replica.
func (g *Gateway) DetourPathMod(ctx context.Context, i, j, mod, rem int) (tivaware.Detour, error) {
	if mod != 0 {
		s, err := g.classShard(mod, rem)
		if err != nil {
			return tivaware.Detour{}, err
		}
		return g.clients[s].DetourPathMod(ctx, i, j, mod, rem)
	}
	parts := make([]tivaware.Detour, g.k)
	err := g.scatter(ctx, func(ctx context.Context, s int, c *tivclient.Client) error {
		d, err := c.DetourPathMod(ctx, i, j, g.k, s)
		parts[s] = d
		return err
	})
	if err != nil {
		return tivaware.Detour{}, err
	}
	best := tivaware.Detour{I: i, J: j, Via: -1, Direct: parts[0].Direct}
	for _, d := range parts {
		if d.Via < 0 {
			continue
		}
		if best.Via < 0 || d.ViaDelay < best.ViaDelay ||
			(d.ViaDelay == best.ViaDelay && d.Via < best.Via) {
			best = d
		}
	}
	return best, nil
}

// TopEdges returns the k globally worst edges by severity: each shard
// ranks the edges it owns, and the disjoint per-shard rankings merge
// into the exact global ranking.
func (g *Gateway) TopEdges(ctx context.Context, k int) ([]delayspace.Edge, error) {
	return g.TopEdgesMod(ctx, k, 0, 0)
}

// TopEdgesMod restricts the ranking to the residue class (mod, rem);
// mod 0 covers every edge via the owned-class scatter.
func (g *Gateway) TopEdgesMod(ctx context.Context, k, mod, rem int) ([]delayspace.Edge, error) {
	if mod != 0 {
		s, err := g.classShard(mod, rem)
		if err != nil {
			return nil, err
		}
		return g.clients[s].TopEdgesMod(ctx, k, mod, rem)
	}
	lists := make([][]delayspace.Edge, g.k)
	err := g.scatter(ctx, func(ctx context.Context, s int, c *tivclient.Client) error {
		part, err := c.TopEdgesMod(ctx, k, g.k, s)
		lists[s] = part
		return err
	})
	if err != nil {
		return nil, err
	}
	return mergeSorted(lists, tiv.EdgeLess, k), nil
}

// Delay returns the delay estimate for (i, j), answered by the edge's
// owning shard.
func (g *Gateway) Delay(ctx context.Context, i, j int) (float64, bool, error) {
	return g.clients[g.edgeOwner(i, j)].Delay(ctx, i, j)
}

// Analysis returns the aggregate triangle statistics. Every shard is
// queried and the integer totals must agree exactly — a disagreement
// means the replicas diverged (e.g. an update reached only part of
// the cluster) and is returned as an error rather than papered over.
func (g *Gateway) Analysis(ctx context.Context) (tivwire.AnalysisResponse, error) {
	parts := make([]tivwire.AnalysisResponse, g.k)
	err := g.scatter(ctx, func(ctx context.Context, s int, c *tivclient.Client) error {
		a, err := c.Analysis(ctx)
		parts[s] = a
		return err
	})
	if err != nil {
		return tivwire.AnalysisResponse{}, err
	}
	out := parts[0]
	for s := 1; s < g.k; s++ {
		if parts[s].ViolatingTriangles != out.ViolatingTriangles ||
			parts[s].Triangles != out.Triangles || parts[s].N != out.N {
			return tivwire.AnalysisResponse{}, fmt.Errorf(
				"tivshard: replicas diverged: shard %d reports %d/%d violating triangles over %d nodes, shard 0 %d/%d over %d",
				s, parts[s].ViolatingTriangles, parts[s].Triangles, parts[s].N,
				out.ViolatingTriangles, out.Triangles, out.N)
		}
	}
	out.Epoch = g.gen.Load()
	return out, nil
}

// ApplyUpdate streams one edge measurement into the cluster; see
// ApplyBatch.
func (g *Gateway) ApplyUpdate(ctx context.Context, i, j int, rtt float64) (tivwire.ChangeSet, error) {
	return g.ApplyBatch(ctx, []tivwire.Update{{I: i, J: j, RTT: rtt}})
}

// ApplyBatch replicates one update batch to every shard, owner first,
// holding the owner locks of every touched edge so replicas apply
// same-edge updates in one global order. The returned change set is
// the one the owning shard of the first edge computed. A transport
// failure mid-broadcast leaves the replicas inconsistent (the error
// says so); Analysis detects divergence after the fact.
func (g *Gateway) ApplyBatch(ctx context.Context, updates []tivwire.Update) (tivwire.ChangeSet, error) {
	if len(updates) == 0 {
		return tivwire.ChangeSet{}, fmt.Errorf("tivshard: empty update batch")
	}
	// Validate locally before any shard sees the batch, so a bad
	// update cannot be applied by some replicas and rejected by
	// others (shard-side validation is deterministic, but failing
	// fast here keeps the whole batch all-or-nothing).
	for _, u := range updates {
		if u.I < 0 || u.J < 0 || u.I >= g.n || u.J >= g.n {
			return tivwire.ChangeSet{}, fmt.Errorf("tivshard: update (%d,%d) out of range [0,%d)", u.I, u.J, g.n)
		}
		if u.I == u.J {
			return tivwire.ChangeSet{}, fmt.Errorf("tivshard: update on diagonal (%d,%d)", u.I, u.J)
		}
	}
	primary := g.edgeOwner(updates[0].I, updates[0].J)
	owners := make([]bool, g.k)
	for _, u := range updates {
		owners[g.edgeOwner(u.I, u.J)] = true
	}
	locked := make([]int, 0, g.k)
	for s := 0; s < g.k; s++ {
		if owners[s] {
			locked = append(locked, s)
		}
	}
	// Ascending lock order prevents deadlock between racing batches.
	for _, s := range locked {
		g.ownerMu[s].Lock()
	}
	defer func() {
		for i := len(locked) - 1; i >= 0; i-- {
			g.ownerMu[locked[i]].Unlock()
		}
	}()

	cs, err := g.clients[primary].ApplyBatch(ctx, updates)
	if err != nil {
		return tivwire.ChangeSet{}, fmt.Errorf("tivshard: shard %d (%s): %w", primary, g.clients[primary].BaseURL(), err)
	}
	err = g.scatter(ctx, func(ctx context.Context, s int, c *tivclient.Client) error {
		if s == primary {
			return nil
		}
		_, err := c.ApplyBatch(ctx, updates)
		return err
	})
	if err != nil {
		return tivwire.ChangeSet{}, fmt.Errorf("replicas may have diverged: %w", err)
	}
	g.gen.Add(1)
	return cs, nil
}

// Subscribe registers fn for the merged fan-in stream: every shard's
// violated-edge change sets, filtered to the edges that shard owns.
// Per shard, no delta is lost or duplicated, and each change set
// carries its shard monitor version, which totally orders that
// shard's applies — change sets of updates that *raced* on one shard
// may be delivered slightly out of apply order (the service fans out
// after releasing its apply lock), so exact consumers order by
// version, as the stress-test accounting does. Across shards the
// interleaving is unspecified. The first subscriber attaches the
// K shard streams, and every Subscribe call — including ones racing
// that first attach — returns success only once all stream
// handshakes completed, so fn observes every owned-edge delta applied
// after Subscribe returns. A torn shard stream (overflow or
// disconnect) surfaces as Rescan-marked empty change sets for that
// shard — one at tear time, one after the stream re-attached (see
// ShardChangeSet); re-attaches retry every Options.ResubscribeDelay.
func (g *Gateway) Subscribe(fn func(ShardChangeSet)) (cancel func(), err error) {
	if fn == nil {
		return nil, fmt.Errorf("tivshard: nil subscriber")
	}
	if !g.live {
		return nil, fmt.Errorf("tivshard: Subscribe requires every shard to run live (tivd -live)")
	}
	g.subMu.Lock()
	if g.closed {
		g.subMu.Unlock()
		return nil, fmt.Errorf("tivshard: gateway closed")
	}
	id := g.nextSub
	g.nextSub++
	g.subs = append(g.subs, gwSubscriber{id: id, fn: fn})
	att := g.pumpAttach
	starter := att == nil
	if starter {
		att = &pumpAttach{done: make(chan struct{})}
		g.pumpAttach = att
	}
	g.subMu.Unlock()

	if starter {
		att.err = g.startPumps()
		if att.err != nil {
			// Reset so a later Subscribe retries the attach (the
			// failed attempt cancelled pumpCtx and joined every pump).
			g.subMu.Lock()
			g.pumpAttach = nil
			if !g.closed {
				g.pumpCtx, g.pumpCancel = context.WithCancel(context.Background())
			}
			g.subMu.Unlock()
		}
		close(att.done)
	} else {
		// Wait for the in-flight (or completed) attach, so every
		// subscriber — not just the first — returns success only once
		// all shard handshakes completed.
		<-att.done
	}
	if att.err != nil {
		g.removeSub(id)
		return nil, att.err
	}
	return func() { g.removeSub(id) }, nil
}

func (g *Gateway) removeSub(id int) {
	g.subMu.Lock()
	for k, sub := range g.subs {
		if sub.id == id {
			g.subs = append(g.subs[:k], g.subs[k+1:]...)
			break
		}
	}
	g.subMu.Unlock()
}

// startPumps attaches one SSE pump per shard and waits for every
// handshake. A failed attach tears the whole fan-in down (and joins
// every pump, so the caller may safely replace the pump context).
func (g *Gateway) startPumps() error {
	g.subMu.Lock()
	ctx, cancel := g.pumpCtx, g.pumpCancel
	g.subMu.Unlock()
	attach := make(chan error, g.k)
	for s := range g.clients {
		g.pumpWG.Add(1)
		go g.pump(ctx, s, attach)
	}
	var errs []error
	for i := 0; i < g.k; i++ {
		if err := <-attach; err != nil {
			errs = append(errs, err)
		}
	}
	if len(errs) > 0 {
		cancel()
		g.pumpWG.Wait()
		return errors.Join(errs...)
	}
	return nil
}

// pump drives one shard's subscription stream for the life of the
// gateway, re-attaching (with a tear marker to the subscribers) when
// the daemon drops it.
func (g *Gateway) pump(ctx context.Context, shard int, attach chan<- error) {
	defer g.pumpWG.Done()
	var reportOnce sync.Once
	report := func(err error) { reportOnce.Do(func() { attach <- err }) }
	first := true
	for {
		ready := make(chan struct{})
		if first {
			// Report the attach as soon as the handshake lands (the
			// client closes ready) — or a cancellation, so startPumps
			// never blocks when Close races the first Subscribe.
			go func() {
				select {
				case <-ready:
					report(nil)
				case <-ctx.Done():
					report(ctx.Err())
				}
			}()
		} else {
			// Re-attach after a tear: the Rescan marker goes out only
			// once the new handshake lands, so a subscriber that
			// resyncs on the marker does it against a stream that is
			// already delivering again — every delta applied after the
			// resync is observed. A marker at tear time would invite a
			// resync *before* the re-attach, silently missing the
			// deltas applied in between.
			go func() {
				select {
				case <-ready:
					g.deliver(shard, tivwire.ChangeSet{Rescan: true})
				case <-ctx.Done():
				}
			}()
		}
		err := g.clients[shard].Subscribe(ctx, ready, func(cs tivwire.ChangeSet) {
			g.deliver(shard, cs)
		})
		if ctx.Err() != nil {
			report(ctx.Err())
			return
		}
		attached := false
		select {
		case <-ready: // the client closes ready on a completed handshake
			attached = true
		default:
		}
		if first && !attached {
			// The stream failed before its handshake: report the
			// attach error and let startPumps tear everything down.
			report(fmt.Errorf("tivshard: shard %d (%s): %w", shard, g.clients[shard].BaseURL(), err))
			return
		}
		first = false
		// Tear-time marker: subscribers learn promptly that the shard
		// stream is unreliable (the re-attach marker above is the one
		// whose resync is guaranteed gap-free).
		g.deliver(shard, tivwire.ChangeSet{Rescan: true})
		select {
		case <-ctx.Done():
			return
		case <-time.After(g.opts.resubscribeDelay()):
		}
	}
}

// deliver filters one shard change set to the shard's owned edges and
// fans it out. The subscriber lock is never held across callbacks.
func (g *Gateway) deliver(shard int, cs tivwire.ChangeSet) {
	filtered := tivwire.ChangeSet{Version: cs.Version, Rescan: cs.Rescan}
	for _, e := range cs.NewlyViolated {
		if g.edgeOwner(e.I, e.J) == shard {
			filtered.NewlyViolated = append(filtered.NewlyViolated, e)
		}
	}
	for _, e := range cs.Cleared {
		if g.edgeOwner(e.I, e.J) == shard {
			filtered.Cleared = append(filtered.Cleared, e)
		}
	}
	if filtered.Empty() && !filtered.Rescan {
		return
	}
	g.subMu.Lock()
	fns := make([]func(ShardChangeSet), len(g.subs))
	for k := range g.subs {
		fns[k] = g.subs[k].fn
	}
	g.subMu.Unlock()
	ev := ShardChangeSet{Shard: shard, Changes: filtered}
	for _, fn := range fns {
		fn(ev)
	}
}

// Healthz aggregates the shard healths: the node count all shards
// agreed on at construction, liveness as their conjunction, the
// gateway generation as the epoch, and the highest shard source
// version.
func (g *Gateway) Healthz(ctx context.Context) (tivwire.Health, error) {
	var mu sync.Mutex
	out := tivwire.Health{Status: "ok", N: g.n, Live: g.live, Epoch: g.gen.Load()}
	err := g.scatter(ctx, func(ctx context.Context, s int, c *tivclient.Client) error {
		h, err := c.Healthz(ctx)
		if err != nil {
			return err
		}
		mu.Lock()
		if h.Version > out.Version {
			out.Version = h.Version
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		return tivwire.Health{}, err
	}
	return out, nil
}
