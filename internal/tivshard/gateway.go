// Package tivshard is the sharded TIV query plane: a Gateway that
// fronts K backend tivd shard daemons and answers the full TIV-aware
// query surface by scatter-gathering over internal/tivclient.
//
// # Partitioning scheme
//
// Node ids are partitioned round-robin: shard s owns the residue
// class {v : v mod K == s}, and edge (i, j), i < j, is owned by
// owner(i) — every edge has exactly one owner, so the owned-edge sets
// partition the edge set. Every shard holds a full replica of the
// delay matrix: per-edge TIV severity is a global property (any third
// node can witness a violation of any edge), so a shard that held
// only its own rows could not compute exact severities without
// per-query cross-shard traffic — the communication bottleneck the
// distributed triangle-detection literature (CONGEST triangle
// finding, expander-decomposition detection) works around. This plane
// therefore replicates the data and partitions the *work* and the
// *authority*: each shard scans only its residue class per query, and
// each delta stream is authoritative only for the edges its shard
// owns.
//
// # Merge semantics
//
// Rank/KClosest/ClosestNode scatter the query with one residue class
// per shard (tivaware.QueryOptions.Mod/Rem) and k-way merge the
// per-shard rankings by (Score, Node) — the exact comparator the
// monolithic service sorts with, so the merged ranking is identical
// to the monolithic one. DetourPath scans each shard's relay class
// remotely and reduces to the smallest via delay (ties to the lowest
// relay id), which reproduces the monolithic first-strict-minimum
// scan exactly. TopEdges merges the per-shard owned-edge rankings by
// (severity desc, edge asc). Analysis queries every shard and
// requires the integer triangle totals to agree exactly — a built-in
// replica-divergence detector. The differential suite in this package
// pins gateway ≡ monolithic tivaware.Service over the same matrix.
//
// # Updates and subscriptions
//
// ApplyUpdate/ApplyBatch replicate each batch to every shard so the
// replicas stay in sync, serialized per owning shard (batches whose
// edges are owned by disjoint shards proceed concurrently; batches
// sharing an owner are totally ordered, so every replica applies
// same-edge updates in the same order). The owning shard of the first
// edge is applied first and its change set is the one returned.
// Subscribe fans the K shard SSE streams into one stream of
// ShardChangeSets, each filtered to the edges its shard owns: because
// the owned-edge sets partition the edge set and every shard applies
// every update, each violated-edge transition is delivered exactly
// once, on its owner's stream.
package tivshard

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"tivaware/internal/delayspace"
	"tivaware/internal/tiv"
	"tivaware/internal/tivaware"
	"tivaware/internal/tivclient"
	"tivaware/internal/tivwire"
)

// Options configures a Gateway. The zero value is valid.
type Options struct {
	// HTTPClient overrides the transport for all shard clients; nil
	// means the tivclient default (bounded connection phases, no
	// whole-request timeout). It must not carry a global timeout if
	// Subscribe is used (shard streams are long-lived).
	HTTPClient *http.Client
	// ResubscribeDelay is the pause before re-attaching a dropped
	// shard event stream; zero means 500ms.
	ResubscribeDelay time.Duration
	// Retry bounds the per-query retry/failover loop; see RetryPolicy.
	Retry RetryPolicy
	// HedgeDelay, when positive, hedges slow reads: if a per-shard
	// attempt has not answered after this long, a second attempt races
	// on another live replica and the first success wins. Exactness is
	// unaffected (replicas answer identically); only tail latency is.
	// Zero disables hedging.
	HedgeDelay time.Duration
	// BreakerThreshold is the number of consecutive failures that trip
	// a shard's circuit breaker (no reads, updates journal for
	// replay); zero means 3, negative disables the breaker.
	BreakerThreshold int
	// ProbeInterval is the background health-probe cadence — the only
	// path that readmits a down shard (after journal replay); zero
	// means 250ms, negative disables probing (down shards then stay
	// down, and restarts go undetected; tests drive recovery manually).
	ProbeInterval time.Duration
	// ProbeTimeout bounds each health probe and each replayed batch;
	// zero means 2s.
	ProbeTimeout time.Duration
	// JournalLimit bounds the update journal (batches kept for
	// replaying to down shards); older entries are evicted, and a down
	// shard needing an evicted entry becomes stale (see Status). Zero
	// means 8192.
	JournalLimit int
	// FrameAddrs, when non-empty, dials each shard's framed transport
	// (tivd -frame-listen) for queries, updates, and health probes —
	// persistent multiplexed raw connections instead of per-request
	// HTTP. Aligned by index with the shard URL list; an empty entry
	// keeps that shard on HTTP. SSE subscriptions always stay on the
	// HTTP URLs. Must be empty or match the shard count.
	FrameAddrs []string
	// FrameConns is the per-shard framed pool size; zero means 2.
	FrameConns int
}

func (o Options) resubscribeDelay() time.Duration {
	if o.ResubscribeDelay > 0 {
		return o.ResubscribeDelay
	}
	return 500 * time.Millisecond
}

func (o Options) breakerThreshold() int {
	switch {
	case o.BreakerThreshold > 0:
		return o.BreakerThreshold
	case o.BreakerThreshold < 0:
		return 0
	}
	return 3
}

func (o Options) probeInterval() time.Duration {
	switch {
	case o.ProbeInterval > 0:
		return o.ProbeInterval
	case o.ProbeInterval < 0:
		return 0
	}
	return 250 * time.Millisecond
}

func (o Options) probeTimeout() time.Duration {
	if o.ProbeTimeout > 0 {
		return o.ProbeTimeout
	}
	return 2 * time.Second
}

func (o Options) journalLimit() int {
	if o.JournalLimit > 0 {
		return o.JournalLimit
	}
	return 8192
}

// Gateway scatter-gathers TIV queries over K shard daemons. It
// implements tivaware.Querier (consumers written against the seam run
// unchanged against one service, one daemon, or a sharded cluster)
// and, structurally, the tivd Backend — so cmd/tivd -shards serves a
// gateway over the identical wire protocol shard daemons speak.
//
// A Gateway is safe for concurrent use.
type Gateway struct {
	clients []*tivclient.Client
	k       int
	n       int
	live    bool
	opts    Options

	// gen counts update batches routed through this gateway; it is
	// the epoch stamp of gateway responses (cross-shard queries have
	// no shared service epoch to report).
	gen atomic.Uint64

	// ownerMu[s] serializes update batches touching edges owned by
	// shard s, keeping the replicas' same-edge apply order identical.
	ownerMu []sync.Mutex

	// Resilience state (see resilience.go): per-shard breaker and
	// replay cursors, the skipped-update journal, and the background
	// health prober.
	states       []shardState
	journalMu    sync.Mutex
	journal      []journalEntry
	journalBase  int64
	proberCancel context.CancelFunc
	proberWG     sync.WaitGroup

	// Subscription fan-in state.
	subMu      sync.Mutex
	subs       []gwSubscriber
	nextSub    int
	pumpCtx    context.Context
	pumpCancel context.CancelFunc
	pumpWG     sync.WaitGroup
	// pumpAttach is the in-flight or completed pump startup; nil when
	// pumps are down (never started, or torn down after a failed
	// attach). Every Subscribe call waits on it, so concurrent
	// subscribers all get the attach result instead of one racing
	// ahead on an attach that then fails.
	pumpAttach *pumpAttach
	closed     bool
}

// pumpAttach carries one pump-startup attempt: done closes when the
// attach resolved, err is its result.
type pumpAttach struct {
	done chan struct{}
	err  error
}

type gwSubscriber struct {
	id int
	fn func(ShardChangeSet)
}

// ShardChangeSet is one element of the gateway's fan-in stream: a
// shard's violated-edge change set filtered down to the edges that
// shard owns. Changes.Version is the shard's own monitor version
// (version counters are per shard, not global).
type ShardChangeSet struct {
	// Shard is the index of the authoritative shard.
	Shard int
	// Changes carries the owned-edge deltas. A Rescan change set with
	// no deltas marks a torn shard stream: one is delivered when the
	// stream tears (events may be missing from here on) and another
	// once it re-attached — unless the re-attach handshake proves the
	// gap empty (hello version unchanged, see pump), in which case the
	// second marker is skipped. A resync (TopEdges) triggered by a
	// post-re-attach marker is gap-free, because the re-attach
	// handshake precedes it.
	Changes tivwire.ChangeSet
}

var _ tivaware.Querier = (*Gateway)(nil)

// New builds a gateway over the shard daemons at shardURLs, probing
// each shard's health: the shards must all serve the same node count.
// The shard order defines the partition (shard s owns node ids ≡ s
// mod K), so every gateway over the same cluster must list the shards
// in the same order.
func New(ctx context.Context, shardURLs []string, opts Options) (*Gateway, error) {
	if len(shardURLs) == 0 {
		return nil, fmt.Errorf("tivshard: no shard URLs")
	}
	if len(opts.FrameAddrs) != 0 && len(opts.FrameAddrs) != len(shardURLs) {
		return nil, fmt.Errorf("tivshard: %d frame addresses for %d shards", len(opts.FrameAddrs), len(shardURLs))
	}
	g := &Gateway{
		k:       len(shardURLs),
		opts:    opts,
		ownerMu: make([]sync.Mutex, len(shardURLs)),
		states:  make([]shardState, len(shardURLs)),
	}
	for i, u := range shardURLs {
		copts := tivclient.Options{HTTPClient: opts.HTTPClient}
		if i < len(opts.FrameAddrs) && opts.FrameAddrs[i] != "" {
			copts.FrameAddr = opts.FrameAddrs[i]
			copts.FrameConns = opts.FrameConns
		}
		g.clients = append(g.clients, tivclient.New(u, copts))
	}
	// On any construction failure, release the framed pools the
	// health probes may have dialed.
	closeClients := func() {
		for _, c := range g.clients {
			c.Close()
		}
	}
	healths := make([]tivwire.Health, g.k)
	err := g.scatter(ctx, func(ctx context.Context, s int, c *tivclient.Client) error {
		h, err := c.Healthz(ctx)
		healths[s] = h
		return err
	})
	if err != nil {
		closeClients()
		return nil, err
	}
	g.n = healths[0].N
	g.live = true
	for s, h := range healths {
		if h.N != g.n {
			closeClients()
			return nil, fmt.Errorf("tivshard: shard %d serves %d nodes, shard 0 serves %d", s, h.N, g.n)
		}
		if !h.Live {
			g.live = false
		}
	}
	for s, h := range healths {
		g.states[s].lastVersion.Store(h.Version)
	}
	g.pumpCtx, g.pumpCancel = context.WithCancel(context.Background())
	g.startProber()
	return g, nil
}

// K returns the shard count.
func (g *Gateway) K() int { return g.k }

// N returns the node count.
func (g *Gateway) N() int { return g.n }

// Live reports whether every shard accepts updates and subscriptions.
func (g *Gateway) Live() bool { return g.live }

// Generation returns the number of update batches routed through this
// gateway (the epoch stamp of its responses).
func (g *Gateway) Generation() uint64 { return g.gen.Load() }

// Close stops the subscription fan-in pumps and the health prober.
// It does not touch the shard daemons.
func (g *Gateway) Close() {
	g.subMu.Lock()
	g.closed = true
	g.subs = nil
	cancel := g.pumpCancel
	g.subMu.Unlock()
	cancel()
	g.pumpWG.Wait()
	if g.proberCancel != nil {
		g.proberCancel()
	}
	g.proberWG.Wait()
	for _, c := range g.clients {
		c.Close()
	}
}

// owner returns the shard owning node id v.
func (g *Gateway) owner(v int) int { return v % g.k }

// edgeOwner returns the shard owning edge (i, j): the owner of the
// lower endpoint.
func (g *Gateway) edgeOwner(i, j int) int {
	if j < i {
		i = j
	}
	return g.owner(i)
}

// scatter runs fn once per shard concurrently and waits for all of
// them; shard errors are annotated with the shard index and joined.
// It has no failover — construction-time probes and whole-cluster
// sweeps use it; query paths scatter by residue class instead.
func (g *Gateway) scatter(ctx context.Context, fn func(ctx context.Context, shard int, c *tivclient.Client) error) error {
	errs := make([]error, g.k)
	var wg sync.WaitGroup
	for s, c := range g.clients {
		wg.Add(1)
		go func(s int, c *tivclient.Client) {
			defer wg.Done()
			if err := fn(ctx, s, c); err != nil {
				errs[s] = fmt.Errorf("tivshard: shard %d (%s): %w", s, c.BaseURL(), err)
			}
		}(s, c)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// scatterClasses runs fn once per residue class concurrently. The
// class, not the shard, is the unit of work: fn resolves its class
// against the class's own shard when that shard is live and fails
// over to another replica otherwise (any replica answers any class
// exactly — the full-replication invariant).
func (g *Gateway) scatterClasses(ctx context.Context, fn func(ctx context.Context, class int) error) error {
	errs := make([]error, g.k)
	var wg sync.WaitGroup
	for class := 0; class < g.k; class++ {
		wg.Add(1)
		go func(class int) {
			defer wg.Done()
			errs[class] = fn(ctx, class)
		}(class)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// mergeSorted k-way merges per-shard result lists (each sorted by
// less) into one list sorted by less, stopping at limit elements
// (< 0 means all). With the monolithic comparator and per-class
// inputs, the merged order is exactly the monolithic order.
func mergeSorted[T any](lists [][]T, less func(a, b T) bool, limit int) []T {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	if limit < 0 || limit > total {
		limit = total
	}
	out := make([]T, 0, limit)
	idx := make([]int, len(lists))
	for len(out) < limit {
		best := -1
		for s, l := range lists {
			if idx[s] >= len(l) {
				continue
			}
			if best < 0 || less(l[idx[s]], lists[best][idx[best]]) {
				best = s
			}
		}
		if best < 0 {
			break
		}
		out = append(out, lists[best][idx[best]])
		idx[best]++
	}
	return out
}

// withClass returns opts restricted to shard s's residue class.
func (g *Gateway) withClass(opts tivaware.QueryOptions, s int) tivaware.QueryOptions {
	opts.Scatter = tivaware.Scatter{Mod: g.k, Rem: s}
	opts.Mod, opts.Rem = 0, 0
	return opts
}

// classShard validates a caller-supplied residue class and picks the
// replica that answers it. Validation must happen here, before the
// class indexes a shard: a monolithic daemon rejects a bad residue
// with an error from the query layer, and the gateway must be
// wire-compatible (and not let a remote caller panic it).
func (g *Gateway) classShard(mod, rem int) (int, error) {
	if mod < 0 {
		return 0, fmt.Errorf("tivshard: negative residue modulus %d", mod)
	}
	if rem < 0 || rem >= mod {
		return 0, fmt.Errorf("tivshard: residue %d outside [0,%d)", rem, mod)
	}
	return rem % g.k, nil
}

// Rank scores the candidates for the target, best first, by
// scattering one residue class to each shard and k-way merging the
// per-shard rankings; see tivaware.Service.Rank. A query already
// carrying a residue restriction is routed to a single shard (every
// shard holds the full replica, so any shard answers any class).
func (g *Gateway) Rank(ctx context.Context, target int, candidates []int, opts tivaware.QueryOptions) ([]tivaware.Selection, error) {
	if sc := opts.Residue(); sc.Mod != 0 {
		s, err := g.classShard(sc.Mod, sc.Rem)
		if err != nil {
			return nil, err
		}
		return callClass(g, ctx, s, func(ctx context.Context, c *tivclient.Client) ([]tivaware.Selection, error) {
			return c.Rank(ctx, target, candidates, opts)
		})
	}
	lists := make([][]tivaware.Selection, g.k)
	err := g.scatterClasses(ctx, func(ctx context.Context, class int) error {
		part, err := callClass(g, ctx, class, func(ctx context.Context, c *tivclient.Client) ([]tivaware.Selection, error) {
			return c.Rank(ctx, target, candidates, g.withClass(opts, class))
		})
		lists[class] = part
		return err
	})
	if err != nil {
		return nil, err
	}
	return mergeSorted(lists, tivaware.SelectionLess, -1), nil
}

// KClosest returns the k best-ranked candidates for the target: each
// shard returns the k best of its class, and the merge keeps the
// global k best.
func (g *Gateway) KClosest(ctx context.Context, target, k int, opts tivaware.QueryOptions) ([]tivaware.Selection, error) {
	if k <= 0 {
		return nil, fmt.Errorf("tivshard: KClosest k = %d, want > 0", k)
	}
	if sc := opts.Residue(); sc.Mod != 0 {
		s, err := g.classShard(sc.Mod, sc.Rem)
		if err != nil {
			return nil, err
		}
		return callClass(g, ctx, s, func(ctx context.Context, c *tivclient.Client) ([]tivaware.Selection, error) {
			return c.KClosest(ctx, target, k, opts)
		})
	}
	lists := make([][]tivaware.Selection, g.k)
	err := g.scatterClasses(ctx, func(ctx context.Context, class int) error {
		part, err := callClass(g, ctx, class, func(ctx context.Context, c *tivclient.Client) ([]tivaware.Selection, error) {
			return c.KClosest(ctx, target, k, g.withClass(opts, class))
		})
		lists[class] = part
		return err
	})
	if err != nil {
		return nil, err
	}
	return mergeSorted(lists, tivaware.SelectionLess, k), nil
}

// ClosestNode returns the best-ranked candidate for the target. It
// errors when no shard has an eligible candidate.
func (g *Gateway) ClosestNode(ctx context.Context, target int, opts tivaware.QueryOptions) (tivaware.Selection, error) {
	ranked, err := g.KClosest(ctx, target, 1, opts)
	if err != nil {
		return tivaware.Selection{}, err
	}
	if len(ranked) == 0 {
		return tivaware.Selection{}, fmt.Errorf("tivshard: no eligible candidate for node %d", target)
	}
	return ranked[0], nil
}

// DetourPath finds the best one-hop detour for (i, j): each shard
// scans its relay class, and the per-class bests reduce to the
// smallest via delay, ties to the lowest relay id — exactly the
// monolithic scan's first strict minimum.
func (g *Gateway) DetourPath(ctx context.Context, i, j int) (tivaware.Detour, error) {
	return g.DetourPathMod(ctx, i, j, 0, 0)
}

// DetourPathMod restricts the relay scan to the residue class
// (mod, rem); mod 0 scans everything (scattered across the shards),
// any other class is routed to a single replica.
func (g *Gateway) DetourPathMod(ctx context.Context, i, j, mod, rem int) (tivaware.Detour, error) {
	if mod != 0 {
		s, err := g.classShard(mod, rem)
		if err != nil {
			return tivaware.Detour{}, err
		}
		return callClass(g, ctx, s, func(ctx context.Context, c *tivclient.Client) (tivaware.Detour, error) {
			return c.DetourPathMod(ctx, i, j, mod, rem)
		})
	}
	parts := make([]tivaware.Detour, g.k)
	err := g.scatterClasses(ctx, func(ctx context.Context, class int) error {
		d, err := callClass(g, ctx, class, func(ctx context.Context, c *tivclient.Client) (tivaware.Detour, error) {
			return c.DetourPathMod(ctx, i, j, g.k, class)
		})
		parts[class] = d
		return err
	})
	if err != nil {
		return tivaware.Detour{}, err
	}
	best := tivaware.Detour{I: i, J: j, Via: -1, Direct: parts[0].Direct}
	for _, d := range parts {
		if d.Via < 0 {
			continue
		}
		if best.Via < 0 || d.ViaDelay < best.ViaDelay ||
			(d.ViaDelay == best.ViaDelay && d.Via < best.Via) {
			best = d
		}
	}
	return best, nil
}

// TopEdges returns the k globally worst edges by severity: each shard
// ranks the edges it owns, and the disjoint per-shard rankings merge
// into the exact global ranking.
func (g *Gateway) TopEdges(ctx context.Context, k int) ([]delayspace.Edge, error) {
	return g.TopEdgesMod(ctx, k, 0, 0)
}

// TopEdgesMod restricts the ranking to the residue class (mod, rem);
// mod 0 covers every edge via the owned-class scatter.
func (g *Gateway) TopEdgesMod(ctx context.Context, k, mod, rem int) ([]delayspace.Edge, error) {
	if mod != 0 {
		s, err := g.classShard(mod, rem)
		if err != nil {
			return nil, err
		}
		return callClass(g, ctx, s, func(ctx context.Context, c *tivclient.Client) ([]delayspace.Edge, error) {
			return c.TopEdgesMod(ctx, k, mod, rem)
		})
	}
	lists := make([][]delayspace.Edge, g.k)
	err := g.scatterClasses(ctx, func(ctx context.Context, class int) error {
		part, err := callClass(g, ctx, class, func(ctx context.Context, c *tivclient.Client) ([]delayspace.Edge, error) {
			return c.TopEdgesMod(ctx, k, g.k, class)
		})
		lists[class] = part
		return err
	})
	if err != nil {
		return nil, err
	}
	return mergeSorted(lists, tiv.EdgeLess, k), nil
}

// Delay returns the delay estimate for (i, j), answered by the edge's
// owning shard when live, any other replica otherwise.
func (g *Gateway) Delay(ctx context.Context, i, j int) (float64, bool, error) {
	type delayResult struct {
		d  float64
		ok bool
	}
	r, err := callClass(g, ctx, g.edgeOwner(i, j), func(ctx context.Context, c *tivclient.Client) (delayResult, error) {
		d, ok, err := c.Delay(ctx, i, j)
		return delayResult{d, ok}, err
	})
	return r.d, r.ok, err
}

// Analysis returns the aggregate triangle statistics. Every live
// shard is queried and the integer totals must agree exactly — a
// disagreement means the replicas diverged (e.g. an update reached
// only part of the cluster) and is returned as an error rather than
// papered over. Down shards are excluded (their replicas are behind
// by construction, pending journal replay); a shard that fails
// mid-sweep is skipped the same way, counted against its breaker. At
// least one shard must answer.
func (g *Gateway) Analysis(ctx context.Context) (tivwire.AnalysisResponse, error) {
	parts := make([]tivwire.AnalysisResponse, g.k)
	answered := make([]bool, g.k)
	terminal := make([]error, g.k)
	var lastErr error
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, s := range g.upShards(0) {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			a, err := tryOnce(g, ctx, s, func(ctx context.Context, c *tivclient.Client) (tivwire.AnalysisResponse, error) {
				return c.Analysis(ctx)
			})
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				parts[s], answered[s] = a, true
			case !tivclient.IsRetryable(err):
				terminal[s] = fmt.Errorf("tivshard: shard %d (%s): %w", s, g.clients[s].BaseURL(), err)
			default:
				lastErr = err
			}
		}(s)
	}
	wg.Wait()
	for _, err := range terminal {
		if err != nil {
			return tivwire.AnalysisResponse{}, err
		}
	}
	first := -1
	for s := 0; s < g.k; s++ {
		if !answered[s] {
			continue
		}
		if first < 0 {
			first = s
			continue
		}
		if parts[s].ViolatingTriangles != parts[first].ViolatingTriangles ||
			parts[s].Triangles != parts[first].Triangles || parts[s].N != parts[first].N {
			return tivwire.AnalysisResponse{}, errDiverged(fmt.Sprintf(
				"replicas diverged: shard %d reports %d/%d violating triangles over %d nodes, shard %d %d/%d over %d",
				s, parts[s].ViolatingTriangles, parts[s].Triangles, parts[s].N,
				first, parts[first].ViolatingTriangles, parts[first].Triangles, parts[first].N), nil)
		}
	}
	if first < 0 {
		return tivwire.AnalysisResponse{}, errUnavailable("no shard could answer the analysis sweep", lastErr)
	}
	out := parts[first]
	out.Epoch = g.gen.Load()
	return out, nil
}

// ApplyUpdate streams one edge measurement into the cluster; see
// ApplyBatch.
func (g *Gateway) ApplyUpdate(ctx context.Context, i, j int, rtt float64) (tivwire.ChangeSet, error) {
	return g.ApplyBatch(ctx, []tivwire.Update{{I: i, J: j, RTT: rtt}})
}

// ApplyBatch replicates one update batch to every live shard, owner
// first, holding the owner locks of every touched edge so replicas
// apply same-edge updates in one global order. The returned change
// set is the one the authority — the first live shard starting at the
// owning shard of the first edge — computed; every replica computes
// the identical change set for the same batch at the same point in
// the apply order, so owner failover does not change the answer.
//
// Failure handling (the failover contract; see DESIGN.md):
//
//   - Down shards skip the batch. It is journaled first, and the
//     prober replays it to them in order before readmitting them.
//   - A live shard whose apply fails ambiguously (transport error,
//     timeout — it may or may not have applied) is tripped with its
//     replay cursor at this batch. Replaying an already-applied batch
//     is idempotent (same (i,j,rtt) twice yields an empty change
//     set), so the ambiguity resolves itself.
//   - The apply never retries on the same shard: if the first attempt
//     landed, a retry would return the empty change set and corrupt
//     the authority answer. Failover to the next replica — which
//     provably has not applied — is the retry.
//   - The call fails only on a terminal validation error or when no
//     live shard could act as authority (typed retryable
//     unavailable).
func (g *Gateway) ApplyBatch(ctx context.Context, updates []tivwire.Update) (tivwire.ChangeSet, error) {
	if len(updates) == 0 {
		return tivwire.ChangeSet{}, errBadRequestf("empty update batch")
	}
	// Validate locally before any shard sees the batch, so a bad
	// update cannot be applied by some replicas and rejected by
	// others (shard-side validation is deterministic, but failing
	// fast here keeps the whole batch all-or-nothing).
	for _, u := range updates {
		if u.I < 0 || u.J < 0 || u.I >= g.n || u.J >= g.n {
			return tivwire.ChangeSet{}, errBadRequestf("update (%d,%d) out of range [0,%d)", u.I, u.J, g.n)
		}
		if u.I == u.J {
			return tivwire.ChangeSet{}, errBadRequestf("update on diagonal (%d,%d)", u.I, u.J)
		}
	}
	primary := g.edgeOwner(updates[0].I, updates[0].J)
	owners := make([]bool, g.k)
	for _, u := range updates {
		owners[g.edgeOwner(u.I, u.J)] = true
	}
	locked := make([]int, 0, g.k)
	for s := 0; s < g.k; s++ {
		if owners[s] {
			locked = append(locked, s)
		}
	}
	// Ascending lock order prevents deadlock between racing batches.
	for _, s := range locked {
		g.ownerMu[s].Lock()
	}
	defer func() {
		for i := len(locked) - 1; i >= 0; i-- {
			g.ownerMu[locked[i]].Unlock()
		}
	}()

	// Journal the batch and snapshot the down set in one critical
	// section: every shard is either in the snapshot as down (it skips
	// now and replays this entry later — its replay cursor is ≤ idx by
	// construction) or as up (it gets the batch directly; if that
	// fails, ensureReplayFrom pulls its cursor back to idx). Recovery
	// readmissions serialize on the same lock, so a batch can never
	// fall between "skipped" and "not replayed".
	g.journalMu.Lock()
	idx := g.appendJournalLocked(updates)
	skip := make([]bool, g.k)
	for s := range g.states {
		skip[s] = g.states[s].down.Load()
	}
	g.journalMu.Unlock()

	// Authority pass: first live shard starting at the owner,
	// sequentially.
	authority := -1
	var cs tivwire.ChangeSet
	var lastErr error
	for d := 0; d < g.k; d++ {
		s := (primary + d) % g.k
		if skip[s] {
			continue
		}
		c, err := g.applyTo(ctx, s, updates)
		if err == nil {
			authority, cs = s, c
			break
		}
		lastErr = fmt.Errorf("tivshard: shard %d (%s): %w", s, g.clients[s].BaseURL(), err)
		if ctx.Err() != nil {
			return tivwire.ChangeSet{}, errUnavailable("update aborted", ctx.Err())
		}
		if !tivclient.IsRetryable(err) {
			// Terminal: the shard rejected the batch outright (so it
			// did not apply it), and every replica would say the same.
			return tivwire.ChangeSet{}, lastErr
		}
		g.ensureReplayFrom(s, idx)
	}
	if authority < 0 {
		return tivwire.ChangeSet{}, errUnavailable("no live shard could apply the batch", lastErr)
	}

	// Broadcast pass: the remaining live shards, concurrently. A
	// failed replica is quarantined (down + replay from this batch) —
	// the call still succeeds: the authority answered, and the breaker
	// keeps the straggler out of reads until replay catches it up.
	var wg sync.WaitGroup
	for s := 0; s < g.k; s++ {
		if s == authority || skip[s] {
			continue
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			if _, err := g.applyTo(ctx, s, updates); err != nil {
				g.ensureReplayFrom(s, idx)
			}
		}(s)
	}
	wg.Wait()
	g.gen.Add(1)
	return cs, nil
}

// applyTo applies one batch to one shard under the per-try timeout,
// resetting the shard's breaker on success. The response's monitor
// version is deliberately NOT fed into lastVersion: that watermark
// tracks the healthz-reported source version, a different counter
// (the monitor version also counts value-identical no-op re-applies,
// which never touch the source), and mixing the two makes the prober
// see phantom version regressions.
func (g *Gateway) applyTo(ctx context.Context, s int, updates []tivwire.Update) (tivwire.ChangeSet, error) {
	actx := ctx
	if to := g.opts.Retry.perTryTimeout(); to > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, to)
		defer cancel()
	}
	cs, err := g.clients[s].ApplyBatch(actx, updates)
	if err != nil {
		return tivwire.ChangeSet{}, err
	}
	g.states[s].fails.Store(0)
	return cs, nil
}

// Subscribe registers fn for the merged fan-in stream: every shard's
// violated-edge change sets, filtered to the edges that shard owns.
// Per shard, no delta is lost or duplicated, and each change set
// carries its shard monitor version, which totally orders that
// shard's applies — change sets of updates that *raced* on one shard
// may be delivered slightly out of apply order (the service fans out
// after releasing its apply lock), so exact consumers order by
// version, as the stress-test accounting does. Across shards the
// interleaving is unspecified. The first subscriber attaches the
// K shard streams, and every Subscribe call — including ones racing
// that first attach — returns success only once all stream
// handshakes completed, so fn observes every owned-edge delta applied
// after Subscribe returns. A torn shard stream (overflow or
// disconnect) surfaces as Rescan-marked empty change sets for that
// shard — one at tear time, one after the stream re-attached (see
// ShardChangeSet); re-attaches retry every Options.ResubscribeDelay.
func (g *Gateway) Subscribe(fn func(ShardChangeSet)) (cancel func(), err error) {
	if fn == nil {
		return nil, fmt.Errorf("tivshard: nil subscriber")
	}
	if !g.live {
		return nil, fmt.Errorf("tivshard: Subscribe requires every shard to run live (tivd -live)")
	}
	g.subMu.Lock()
	if g.closed {
		g.subMu.Unlock()
		return nil, fmt.Errorf("tivshard: gateway closed")
	}
	id := g.nextSub
	g.nextSub++
	g.subs = append(g.subs, gwSubscriber{id: id, fn: fn})
	att := g.pumpAttach
	starter := att == nil
	if starter {
		att = &pumpAttach{done: make(chan struct{})}
		g.pumpAttach = att
	}
	g.subMu.Unlock()

	if starter {
		att.err = g.startPumps()
		if att.err != nil {
			// Reset so a later Subscribe retries the attach (the
			// failed attempt cancelled pumpCtx and joined every pump).
			g.subMu.Lock()
			g.pumpAttach = nil
			if !g.closed {
				g.pumpCtx, g.pumpCancel = context.WithCancel(context.Background())
			}
			g.subMu.Unlock()
		}
		close(att.done)
	} else {
		// Wait for the in-flight (or completed) attach, so every
		// subscriber — not just the first — returns success only once
		// all shard handshakes completed.
		<-att.done
	}
	if att.err != nil {
		g.removeSub(id)
		return nil, att.err
	}
	return func() { g.removeSub(id) }, nil
}

func (g *Gateway) removeSub(id int) {
	g.subMu.Lock()
	for k, sub := range g.subs {
		if sub.id == id {
			g.subs = append(g.subs[:k], g.subs[k+1:]...)
			break
		}
	}
	g.subMu.Unlock()
}

// startPumps attaches one SSE pump per shard and waits for every
// handshake. A failed attach tears the whole fan-in down (and joins
// every pump, so the caller may safely replace the pump context).
func (g *Gateway) startPumps() error {
	g.subMu.Lock()
	ctx, cancel := g.pumpCtx, g.pumpCancel
	g.subMu.Unlock()
	attach := make(chan error, g.k)
	for s := range g.clients {
		g.pumpWG.Add(1)
		// SubscribeOpts' event loop blocks reading the HTTP response
		// body; cancelling ctx (stopPumps, failed attach) closes the
		// body through the transport, which ends the scan with an error
		// and returns — cancellation the static proof cannot see.
		//lint:tiv goleak the SSE scan loop exits when pumpCancel closes the stream through the HTTP transport
		go g.pump(ctx, s, attach)
	}
	var errs []error
	for i := 0; i < g.k; i++ {
		if err := <-attach; err != nil {
			errs = append(errs, err)
		}
	}
	if len(errs) > 0 {
		cancel()
		g.pumpWG.Wait()
		return errors.Join(errs...)
	}
	return nil
}

// pump drives one shard's subscription stream for the life of the
// gateway, re-attaching when the daemon drops it. Subscribers see a
// Rescan marker at tear time (the stream is unreliable from here) —
// and, after re-attach, a second marker only when the gap could hide
// deltas: the re-attach handshake's hello version is compared with
// the last change-set version this pump delivered, and equality
// proves the shard applied nothing while the pump was detached (its
// monitor version advances on every apply), so the gap is provably
// empty and the marker — and the resync it would trigger — is
// skipped. Any inequality, a restarted shard (version reset), or a
// hello-less legacy daemon emits the marker: only once the new
// handshake has landed, so a resync it triggers is gap-free — every
// delta applied after the resync is observed on the new stream.
func (g *Gateway) pump(ctx context.Context, shard int, attach chan<- error) {
	defer g.pumpWG.Done()
	var reportOnce sync.Once
	report := func(err error) { reportOnce.Do(func() { attach <- err }) }
	first := true
	// lastVer/haveVer track the shard's stream position across
	// attaches. Only the pump goroutine touches them: the client
	// invokes OnHello and the change-set callback synchronously from
	// its read loop, which runs in this goroutine.
	var lastVer uint64
	var haveVer bool
	for {
		ready := make(chan struct{})
		isFirst := first
		if isFirst {
			// Report the attach as soon as the handshake lands (the
			// client closes ready) — or a cancellation, so startPumps
			// never blocks when Close races the first Subscribe.
			go func() {
				select {
				case <-ready:
					report(nil)
				case <-ctx.Done():
					report(ctx.Err())
				}
			}()
		}
		// markerDecided: this attach has settled whether a re-attach
		// marker is needed (via hello, or conservatively before the
		// first forwarded change set when the daemon sent none).
		markerDecided := isFirst
		err := g.clients[shard].SubscribeOpts(ctx, tivclient.SubscribeOptions{
			Ready: ready,
			OnHello: func(h tivwire.Hello) {
				if !markerDecided && !(haveVer && h.Version == lastVer) {
					g.deliver(shard, tivwire.ChangeSet{Rescan: true})
				}
				markerDecided = true
				lastVer, haveVer = h.Version, true
			},
		}, func(cs tivwire.ChangeSet) {
			if !markerDecided {
				// No hello preceded the data (legacy daemon): assume
				// the worst about the gap.
				g.deliver(shard, tivwire.ChangeSet{Rescan: true})
				markerDecided = true
			}
			lastVer, haveVer = cs.Version, true
			g.deliver(shard, cs)
		})
		if ctx.Err() != nil {
			report(ctx.Err())
			return
		}
		attached := false
		select {
		case <-ready: // the client closes ready on a completed handshake
			attached = true
		default:
		}
		if isFirst && !attached {
			// The stream failed before its handshake: report the
			// attach error and let startPumps tear everything down.
			report(fmt.Errorf("tivshard: shard %d (%s): %w", shard, g.clients[shard].BaseURL(), err))
			return
		}
		first = false
		if attached {
			// Tear-time marker: subscribers learn promptly that the
			// shard stream is unreliable (the conditional re-attach
			// marker above is the one whose resync is guaranteed
			// gap-free). An attach that never completed its handshake
			// delivered nothing and needs no tear marker — the
			// previous tear already emitted one.
			g.deliver(shard, tivwire.ChangeSet{Rescan: true})
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(g.opts.resubscribeDelay()):
		}
	}
}

// deliver filters one shard change set to the shard's owned edges and
// fans it out. The subscriber lock is never held across callbacks.
func (g *Gateway) deliver(shard int, cs tivwire.ChangeSet) {
	filtered := tivwire.ChangeSet{Version: cs.Version, Rescan: cs.Rescan}
	for _, e := range cs.NewlyViolated {
		if g.edgeOwner(e.I, e.J) == shard {
			filtered.NewlyViolated = append(filtered.NewlyViolated, e)
		}
	}
	for _, e := range cs.Cleared {
		if g.edgeOwner(e.I, e.J) == shard {
			filtered.Cleared = append(filtered.Cleared, e)
		}
	}
	if filtered.Empty() && !filtered.Rescan {
		return
	}
	g.subMu.Lock()
	fns := make([]func(ShardChangeSet), len(g.subs))
	for k := range g.subs {
		fns[k] = g.subs[k].fn
	}
	g.subMu.Unlock()
	ev := ShardChangeSet{Shard: shard, Changes: filtered}
	for _, fn := range fns {
		fn(ev)
	}
}

// Healthz aggregates the shard healths: the node count all shards
// agreed on at construction, liveness as their conjunction, the
// gateway generation as the epoch, and the highest live-shard source
// version. Down shards are skipped — the gateway still answers while
// degraded, and Status says so ("degraded", or "stale" when a down
// shard is beyond journal recovery). It errors only when no shard
// answers at all.
func (g *Gateway) Healthz(ctx context.Context) (tivwire.Health, error) {
	var mu sync.Mutex
	answered := 0
	var lastErr error
	out := tivwire.Health{Status: g.Status(), N: g.n, Live: g.live, Epoch: g.gen.Load()}
	var wg sync.WaitGroup
	for _, s := range g.upShards(0) {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			h, err := tryOnce(g, ctx, s, func(ctx context.Context, c *tivclient.Client) (tivwire.Health, error) {
				return c.Healthz(ctx)
			})
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				lastErr = fmt.Errorf("tivshard: shard %d (%s): %w", s, g.clients[s].BaseURL(), err)
				return
			}
			answered++
			if h.Version > out.Version {
				out.Version = h.Version
			}
		}(s)
	}
	wg.Wait()
	if answered == 0 {
		return tivwire.Health{}, errUnavailable("no shard answered the health sweep", lastErr)
	}
	if lastErr != nil && out.Status == "ok" {
		out.Status = "degraded"
	}
	return out, nil
}
