package tivshard_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"testing"
	"time"

	"tivaware/internal/synth"
	"tivaware/internal/tivaware"
	"tivaware/internal/tivd"
	"tivaware/internal/tivfault"
	"tivaware/internal/tivshard"
	"tivaware/internal/tivshard/testcluster"
	"tivaware/internal/tivwire"
)

// The chaos-differential suite: the PR 5 exactness bar re-proved with
// faults flowing. The contract under test is the one DESIGN.md's
// failure model states — the gateway may refuse to answer (typed,
// retryable), but whenever it answers, the answer is the monolith's,
// bit for bit; a batch admitted to the journal is applied to every
// replica exactly once (at-least-once delivery made exact by
// idempotent replay); and after the faults clear, the cluster
// converges back to "ok" with no lost or duplicated updates.

// TestChaosDifferentialSweep drives identical update sequences into a
// live faulted cluster and its monolith twin, sweeping every injected
// fault class over all three shards. An update that fails at the
// gateway has still been journaled (admission is the commit point —
// the replay path guarantees it lands), so the monolith applies it
// too; on success the change sets must match exactly. After each
// class the faults clear, recovery is awaited, and the full query
// surface is compared.
func TestChaosDifferentialSweep(t *testing.T) {
	inj := tivfault.New(tivfault.Spec{})
	// assertAgreement probes fixed node ids up to 31, so ≥32 nodes.
	cfg := synth.DS2Like(36, 21)
	cfg.MissingFrac = 0.08
	sp, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := testcluster.Start(testcluster.Config{
		Matrix:         sp.Matrix,
		Shards:         3,
		Live:           true,
		Workers:        1,
		GatewayOptions: chaosGatewayOptions(),
		ShardMiddleware: func(s int, h http.Handler) http.Handler {
			return inj.Handler(h)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	mono, err := c.NewMonolith()
	if err != nil {
		t.Fatal(err)
	}

	classes := []struct {
		name string
		spec tivfault.Spec
	}{
		{"latency", tivfault.Spec{Latency: 2 * time.Millisecond, Jitter: 2 * time.Millisecond, Seed: 2}},
		{"errors", tivfault.Spec{ErrRate: 0.3, Seed: 3}},
		{"tears", tivfault.Spec{TearRate: 0.3, Seed: 4}},
		{"hangs", tivfault.Spec{HangRate: 0.15, Seed: 5}},
		{"mixed", tivfault.Spec{Latency: time.Millisecond, Jitter: time.Millisecond,
			ErrRate: 0.15, HangRate: 0.05, TearRate: 0.15, Seed: 6}},
	}
	ctx := context.Background()
	rng := rand.New(rand.NewSource(77))
	n := c.Matrix.N()
	applied, refused := 0, 0
	for _, fc := range classes {
		t.Run(fc.name, func(t *testing.T) {
			inj.SetSpec(fc.spec)
			for step := 0; step < 25; step++ {
				i := rng.Intn(n)
				j := rng.Intn(n)
				if i == j {
					j = (j + 1) % n
				}
				rtt := 5 + rng.Float64()*400
				if step%9 == 8 {
					rtt = -1
				}
				gotCS, gerr := c.Gateway.ApplyUpdate(ctx, i, j, rtt)
				// Valid updates fail only via the retryable unavailable
				// path, after journal admission: the replay path owes
				// them to every shard, so the monolith gets them too.
				wantCS, merr := mono.ApplyUpdate(i, j, rtt)
				if merr != nil {
					t.Fatalf("step %d: monolith rejected (%d,%d,%g): %v", step, i, j, rtt, merr)
				}
				if gerr != nil {
					var wc interface{ WireCode() string }
					if !errors.As(gerr, &wc) || !tivwire.RetryableCode(wc.WireCode()) {
						t.Fatalf("step %d: gateway failed terminally on a valid update: %v", step, gerr)
					}
					refused++
					continue
				}
				applied++
				// Deltas and Rescan must be bit-exact. Versions are NOT
				// compared here: a shard's monitor version counts applies
				// (including the no-op re-apply that resolves an ambiguous
				// fault during journal replay), so under fault injection it
				// may legitimately run ahead of the monolith's while every
				// answer stays identical. The kill/restart test — where no
				// ambiguity arises — pins versions exactly.
				if gotCS.Rescan != wantCS.Rescan ||
					fmt.Sprint(gotCS.NewlyViolated) != fmt.Sprint(tivwire.FromEdges(wantCS.NewlyViolated)) ||
					fmt.Sprint(gotCS.Cleared) != fmt.Sprint(tivwire.FromEdges(wantCS.Cleared)) {
					t.Fatalf("step %d: gateway change set %+v, monolith %+v", step, gotCS, wantCS)
				}
				// Reads between updates: exact whenever any caught-up
				// replica is live (only the all-breakers-open desperation
				// pass may serve a behind replica, so skip then).
				if step%5 == 4 && len(c.Gateway.DownShards()) < c.Gateway.K() {
					target := rng.Intn(n)
					want, err := mono.ClosestNode(ctx, target, tivaware.QueryOptions{SeverityPenalty: 2})
					if err != nil {
						t.Fatal(err)
					}
					got, err := c.Gateway.ClosestNode(ctx, target, tivaware.QueryOptions{SeverityPenalty: 2})
					if err == nil && got != want {
						t.Fatalf("step %d: ClosestNode(%d) = %+v under faults, monolith %+v", step, target, got, want)
					}
				}
			}
			// Clear the faults; every refused update must be delivered by
			// journal replay before the prober reports "ok".
			inj.SetSpec(tivfault.Spec{})
			waitStatus(t, c.Gateway, "ok", 20*time.Second)
			assertAgreement(t, mono, c)
		})
	}
	t.Logf("chaos sweep: %d updates applied directly, %d refused (journal-replayed)", applied, refused)
	if applied == 0 {
		t.Fatal("every update was refused; the sweep proved nothing")
	}
}

// streamRecorder captures the gateway fan-in per shard, keeping
// Rescan markers inline so tests can segment streams at resync
// points.
type streamRecorder struct {
	mu      sync.Mutex
	streams [][]tivshard.ShardChangeSet
}

func newStreamRecorder(shards int) *streamRecorder {
	return &streamRecorder{streams: make([][]tivshard.ShardChangeSet, shards)}
}

func (r *streamRecorder) record(ev tivshard.ShardChangeSet) {
	r.mu.Lock()
	r.streams[ev.Shard] = append(r.streams[ev.Shard], ev)
	r.mu.Unlock()
}

// snapshot copies shard s's stream.
func (r *streamRecorder) snapshot(s int) []tivshard.ShardChangeSet {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]tivshard.ShardChangeSet(nil), r.streams[s]...)
}

// waitQuiet blocks until no stream has grown for the given window.
func (r *streamRecorder) waitQuiet(window, within time.Duration) error {
	deadline := time.Now().Add(within)
	last := r.total()
	quietSince := time.Now()
	for {
		time.Sleep(window / 4)
		cur := r.total()
		if cur != last {
			last, quietSince = cur, time.Now()
		} else if time.Since(quietSince) >= window {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("streams never went quiet within %v", within)
		}
	}
}

func (r *streamRecorder) total() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, s := range r.streams {
		n += len(s)
	}
	return n
}

// replaySegment replays one shard's delta events (markers must be
// pre-stripped) from a baseline violated set and returns the result,
// failing on any duplicated or lost delta. Events are ordered by
// shard monitor version, which totally orders one shard's applies.
func replaySegment(shard int, events []tivshard.ShardChangeSet, baseline map[edgeKey]bool) (map[edgeKey]bool, error) {
	events = append([]tivshard.ShardChangeSet(nil), events...)
	sort.SliceStable(events, func(a, b int) bool {
		return events[a].Changes.Version < events[b].Changes.Version
	})
	set := make(map[edgeKey]bool, len(baseline))
	for e := range baseline {
		set[e] = true
	}
	for idx, ev := range events {
		if idx > 0 && ev.Changes.Version == events[idx-1].Changes.Version {
			return nil, fmt.Errorf("shard %d: two events share monitor version %d (duplicated change set)", shard, ev.Changes.Version)
		}
		for _, e := range ev.Changes.NewlyViolated {
			k := key(e.I, e.J)
			if set[k] {
				return nil, fmt.Errorf("shard %d event %d: duplicated NewlyViolated delta for edge (%d,%d)", shard, idx, e.I, e.J)
			}
			set[k] = true
		}
		for _, e := range ev.Changes.Cleared {
			k := key(e.I, e.J)
			if !set[k] {
				return nil, fmt.Errorf("shard %d event %d: Cleared delta for edge (%d,%d) that was not violated (lost or duplicated delta)", shard, idx, e.I, e.J)
			}
			delete(set, k)
		}
	}
	return set, nil
}

// compareSets errors unless the replayed violated set equals the
// shard's actual owned violated set.
func compareSets(shard int, got, want map[edgeKey]bool) error {
	if len(got) != len(want) {
		return fmt.Errorf("shard %d: replayed violated set has %d edges, shard state has %d", shard, len(got), len(want))
	}
	for e := range want {
		if !got[e] {
			return fmt.Errorf("shard %d: replayed set is missing violated edge (%d,%d)", shard, e.i, e.j)
		}
	}
	return nil
}

// splitMarkers partitions a recorded stream into delta events and the
// indices (into the returned deltas slice) where Rescan markers cut
// it: segAfterLastMarker is the delta suffix following the final
// marker, prefix the deltas before the first marker.
func splitMarkers(events []tivshard.ShardChangeSet) (prefix, suffix []tivshard.ShardChangeSet, markers int) {
	var deltas []tivshard.ShardChangeSet
	firstMarker, lastMarker := -1, -1
	for _, ev := range events {
		if ev.Changes.Rescan {
			markers++
			if firstMarker < 0 {
				firstMarker = len(deltas)
			}
			lastMarker = len(deltas)
			continue
		}
		deltas = append(deltas, ev)
	}
	if firstMarker < 0 {
		return deltas, deltas, 0
	}
	return deltas[:firstMarker], deltas[lastMarker:], markers
}

// TestKillRestartConvergence is the acceptance-bar stress test, run
// under -race by the suite: a live K=3 cluster serving lockstep
// updates (gateway and monolith twin get the identical sequence, and
// every answered change set must match exactly) with concurrent
// readers, while shard 1 is SIGKILL-equivalently killed mid-traffic,
// left dead under load, then restarted from its pristine seed. The
// gateway must keep answering updates and queries exactly throughout
// (owner failover), detect the restart by version regression, replay
// the full journal, readmit the shard, and converge: the reborn
// shard's state equals the monolith's, and the fan-in streams carry
// no lost or duplicated violated-edge delta — with the killed shard's
// stream segmented at its Rescan resync markers, exactly as a
// consuming application must do.
func TestKillRestartConvergence(t *testing.T) {
	const (
		shards = 3
		n      = 36 // assertAgreement probes fixed node ids up to 31
		victim = 1
	)
	gwOpts := chaosGatewayOptions()
	gwOpts.Retry.PerTryTimeout = time.Second
	c, err := testcluster.Start(testcluster.Config{
		N:              n,
		Shards:         shards,
		Seed:           31,
		Live:           true,
		Workers:        1,
		ServerOptions:  tivd.Options{SubscribeBuffer: 16384},
		GatewayOptions: gwOpts,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	mono, err := c.NewMonolith()
	if err != nil {
		t.Fatal(err)
	}

	baseline := make([]map[edgeKey]bool, shards)
	for s := 0; s < shards; s++ {
		baseline[s] = violatedOwnedSet(t, c.Shards[s].Service, s, shards)
	}
	rec := newStreamRecorder(shards)
	cancel, err := c.Gateway.Subscribe(rec.record)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	// Concurrent readers race the whole scenario; every read must
	// succeed (modulo shutdown) — the acceptance criterion is that
	// queries keep answering across the kill.
	ctx := context.Background()
	readCtx, stopReads := context.WithCancel(ctx)
	readErrs := make(chan error, 1)
	var readWG sync.WaitGroup
	readWG.Add(1)
	go func() {
		defer readWG.Done()
		for q := 0; readCtx.Err() == nil; q++ {
			if _, err := c.Gateway.ClosestNode(readCtx, q%n, tivaware.QueryOptions{SeverityPenalty: 2}); err != nil && readCtx.Err() == nil {
				select {
				case readErrs <- fmt.Errorf("ClosestNode during chaos: %w", err):
				default:
				}
				return
			}
			if _, err := c.Gateway.TopEdges(readCtx, 5); err != nil && readCtx.Err() == nil {
				select {
				case readErrs <- fmt.Errorf("TopEdges during chaos: %w", err):
				default:
				}
				return
			}
		}
	}()

	rng := rand.New(rand.NewSource(53))
	lockstep := func(phase string, steps int) {
		t.Helper()
		for step := 0; step < steps; step++ {
			i := rng.Intn(n)
			j := rng.Intn(n)
			if i == j {
				j = (j + 1) % n
			}
			rtt := 1 + rng.Float64()*4
			if rng.Intn(2) == 0 {
				rtt = 500 + rng.Float64()*2000
			}
			gotCS, err := c.Gateway.ApplyUpdate(ctx, i, j, rtt)
			if err != nil {
				t.Fatalf("%s step %d: gateway refused update: %v", phase, step, err)
			}
			wantCS, err := mono.ApplyUpdate(i, j, rtt)
			if err != nil {
				t.Fatal(err)
			}
			if gotCS.Version != wantCS.Version || gotCS.Rescan != wantCS.Rescan ||
				fmt.Sprint(gotCS.NewlyViolated) != fmt.Sprint(tivwire.FromEdges(wantCS.NewlyViolated)) ||
				fmt.Sprint(gotCS.Cleared) != fmt.Sprint(tivwire.FromEdges(wantCS.Cleared)) {
				t.Fatalf("%s step %d: gateway change set %+v, monolith %+v", phase, step, gotCS, wantCS)
			}
		}
	}

	// Phase A: healthy traffic.
	lockstep("healthy", 25)

	// Kill shard 1 mid-traffic. Updates must keep flowing (owner
	// failover picks the next live replica as authority) and change
	// sets must stay exact.
	c.KillShard(victim)
	lockstep("degraded", 40)
	waitStatus(t, c.Gateway, "degraded", 10*time.Second)
	if down := c.Gateway.DownShards(); len(down) != 1 || down[0] != victim {
		t.Fatalf("DownShards = %v, want [%d]", down, victim)
	}
	// The acceptance criterion: rank/detour/top answered exactly while
	// the shard is dead.
	assertAgreement(t, mono, c)

	// Restart from the pristine seed: the prober must detect the
	// version regression, replay the whole journal, and readmit.
	if err := c.RestartShard(victim); err != nil {
		t.Fatal(err)
	}
	waitStatus(t, c.Gateway, "ok", 30*time.Second)

	// Convergence: the reborn shard holds exactly the monolith's state.
	wantAn, err := mono.Analysis()
	if err != nil {
		t.Fatal(err)
	}
	gotAn, err := c.Shards[victim].Service.Analysis()
	if err != nil {
		t.Fatal(err)
	}
	if gotAn.ViolatingTriangles != wantAn.ViolatingTriangles || gotAn.Triangles != wantAn.Triangles {
		t.Fatalf("restarted shard analysis %d/%d, monolith %d/%d",
			gotAn.ViolatingTriangles, gotAn.Triangles, wantAn.ViolatingTriangles, wantAn.Triangles)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if gotAn.Counts.At(i, j) != wantAn.Counts.At(i, j) {
				t.Fatalf("restarted shard: edge (%d,%d) witness count %d, monolith %d",
					i, j, gotAn.Counts.At(i, j), wantAn.Counts.At(i, j))
			}
		}
	}

	// Phase C: post-recovery traffic, with the stream accounting
	// re-baselined after the resync markers have landed.
	if err := rec.waitQuiet(300*time.Millisecond, 15*time.Second); err != nil {
		t.Fatal(err)
	}
	cut := make([]int, shards)
	baseline2 := make([]map[edgeKey]bool, shards)
	for s := 0; s < shards; s++ {
		cut[s] = len(rec.snapshot(s))
		baseline2[s] = violatedOwnedSet(t, c.Shards[s].Service, s, shards)
	}
	lockstep("recovered", 25)
	assertAgreement(t, mono, c)
	stopReads()
	readWG.Wait()
	select {
	case err := <-readErrs:
		t.Fatal(err)
	default:
	}

	// Fan-in accounting. The never-killed shards must deliver one
	// unbroken, marker-free stream replaying exactly from baseline to
	// final state; the killed shard's stream must carry at least one
	// Rescan marker (the resync points), a clean pre-kill prefix, and
	// a post-cut segment replaying exactly from the re-baseline.
	deadline := time.Now().Add(15 * time.Second)
	for {
		err = accountStreams(t, c, rec, baseline, baseline2, cut, shards, victim)
		if err == nil || time.Now().After(deadline) {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	if err != nil {
		t.Fatal(err)
	}
}

// accountStreams runs the full per-shard delta accounting once;
// callers poll it until the in-flight fan-in quiesces.
func accountStreams(t *testing.T, c *testcluster.Cluster, rec *streamRecorder, baseline, baseline2 []map[edgeKey]bool, cut []int, shards, victim int) error {
	t.Helper()
	for s := 0; s < shards; s++ {
		events := rec.snapshot(s)
		final := violatedOwnedSet(t, c.Shards[s].Service, s, shards)
		prefix, _, markers := splitMarkers(events)
		if s != victim {
			if markers != 0 {
				return fmt.Errorf("shard %d stream tore (%d Rescan markers) though it was never killed", s, markers)
			}
			set, err := replaySegment(s, events, baseline[s])
			if err != nil {
				return err
			}
			if err := compareSets(s, set, final); err != nil {
				return err
			}
			continue
		}
		if markers == 0 {
			return fmt.Errorf("killed shard %d delivered no Rescan marker; subscribers were never told to resync", s)
		}
		// Pre-kill prefix: internally consistent from the baseline (no
		// duplicated or lost delta before the first tear).
		if _, err := replaySegment(s, prefix, baseline[s]); err != nil {
			return fmt.Errorf("pre-kill prefix: %w", err)
		}
		// Post-recovery segment: every event after the quiesced cut
		// replays the re-baselined set exactly into the final state.
		if len(events) < cut[s] {
			return fmt.Errorf("shard %d stream shrank (%d events, cut %d)", s, len(events), cut[s])
		}
		tail := events[cut[s]:]
		for _, ev := range tail {
			if ev.Changes.Rescan {
				return fmt.Errorf("shard %d delivered a Rescan marker after recovery quiesced", s)
			}
		}
		set, err := replaySegment(s, tail, baseline2[s])
		if err != nil {
			return fmt.Errorf("post-recovery segment: %w", err)
		}
		if err := compareSets(s, set, final); err != nil {
			return fmt.Errorf("post-recovery segment: %w", err)
		}
	}
	return nil
}
