package tivshard

import (
	"context"
	"sync/atomic"

	"tivaware/internal/delayspace"
	"tivaware/internal/tiv"
	"tivaware/internal/tivaware"
	"tivaware/internal/tivwire"
)

// Backend adapts a Gateway to the shape the tivd HTTP server serves
// (it satisfies tivd.Backend structurally — this package never
// imports tivd), so `tivd -shards` re-exports a whole cluster behind
// the exact wire protocol a single daemon speaks. Epoch stamps are
// the gateway generation; subscription event versions are a
// gateway-local counter (shard monitor versions interleave and are
// preserved inside each ShardChangeSet, not here).
type Backend struct {
	g *Gateway
	// eventSeq numbers the fan-in events delivered through this
	// backend, standing in for the per-shard monitor versions that do
	// not totally order across shards.
	eventSeq atomic.Uint64
}

// Backend returns the tivd-servable adapter.
func (g *Gateway) Backend() *Backend { return &Backend{g: g} }

// N returns the node count.
func (b *Backend) N() int { return b.g.N() }

// Status surfaces the gateway's degradation state ("ok", "degraded",
// "stale" — see Gateway.Status) through the /healthz status field of
// a tivd server fronting this backend.
func (b *Backend) Status() string { return b.g.Status() }

// Live reports whether every shard accepts updates.
func (b *Backend) Live() bool { return b.g.Live() }

// Health returns the gateway generation and the highest shard source
// version.
func (b *Backend) Health(ctx context.Context) (uint64, uint64, error) {
	h, err := b.g.Healthz(ctx)
	if err != nil {
		return 0, 0, err
	}
	return h.Epoch, h.Version, nil
}

// Rank scatter-gathers the ranking; see Gateway.Rank.
func (b *Backend) Rank(ctx context.Context, target int, candidates []int, opts tivaware.QueryOptions) ([]tivaware.Selection, uint64, error) {
	sels, err := b.g.Rank(ctx, target, candidates, opts)
	return sels, b.g.Generation(), err
}

// ClosestNode returns the globally best-ranked candidate.
func (b *Backend) ClosestNode(ctx context.Context, target int, opts tivaware.QueryOptions) (tivaware.Selection, uint64, error) {
	sel, err := b.g.ClosestNode(ctx, target, opts)
	return sel, b.g.Generation(), err
}

// DetourPath reduces the per-shard relay scans; see
// Gateway.DetourPathMod.
func (b *Backend) DetourPath(ctx context.Context, i, j, mod, rem int) (tivaware.Detour, uint64, error) {
	d, err := b.g.DetourPathMod(ctx, i, j, mod, rem)
	return d, b.g.Generation(), err
}

// TopEdges merges the per-shard owned-edge rankings; see
// Gateway.TopEdgesMod.
func (b *Backend) TopEdges(ctx context.Context, k, mod, rem int) ([]delayspace.Edge, uint64, error) {
	edges, err := b.g.TopEdgesMod(ctx, k, mod, rem)
	return edges, b.g.Generation(), err
}

// Delay is answered by the edge's owning shard.
func (b *Backend) Delay(ctx context.Context, i, j int) (float64, bool, error) {
	return b.g.Delay(ctx, i, j)
}

// Analysis returns the agreement-checked triangle totals of the
// cluster (severity and count fields stay nil: edge-level data is
// served by rank/top, as on a monolithic daemon).
func (b *Backend) Analysis(ctx context.Context) (tiv.Analysis, uint64, uint64, error) {
	a, err := b.g.Analysis(ctx)
	if err != nil {
		return tiv.Analysis{}, 0, 0, err
	}
	return tiv.Analysis{
		ViolatingTriangles: a.ViolatingTriangles,
		Triangles:          a.Triangles,
	}, a.Epoch, a.Version, nil
}

// ApplyBatch replicates the batch across the cluster; see
// Gateway.ApplyBatch.
func (b *Backend) ApplyBatch(ctx context.Context, updates []tiv.Update) (tiv.ChangeSet, error) {
	wire := make([]tivwire.Update, len(updates))
	for k, u := range updates {
		wire[k] = tivwire.Update{I: u.I, J: u.J, RTT: u.RTT}
	}
	cs, err := b.g.ApplyBatch(ctx, wire)
	if err != nil {
		return tiv.ChangeSet{}, err
	}
	return tiv.ChangeSet{
		Version:       cs.Version,
		Rescan:        cs.Rescan,
		NewlyViolated: tivwire.ToEdges(cs.NewlyViolated),
		Cleared:       tivwire.ToEdges(cs.Cleared),
	}, nil
}

// Subscribe flattens the fan-in stream to plain change sets for the
// SSE handler, renumbering versions with the backend event counter.
func (b *Backend) Subscribe(fn func(tiv.ChangeSet)) (func(), error) {
	return b.g.Subscribe(func(ev ShardChangeSet) {
		fn(tiv.ChangeSet{
			Version:       b.eventSeq.Add(1),
			Rescan:        ev.Changes.Rescan,
			NewlyViolated: tivwire.ToEdges(ev.Changes.NewlyViolated),
			Cleared:       tivwire.ToEdges(ev.Changes.Cleared),
		})
	})
}
