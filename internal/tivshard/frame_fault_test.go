package tivshard_test

import (
	"net/http"
	"testing"
	"time"

	"tivaware/internal/synth"
	"tivaware/internal/tivaware"
	"tivaware/internal/tivfault"
	"tivaware/internal/tivshard/testcluster"
)

// Framed-transport and batch-hedging fault coverage: the gateway must
// stay exact when its shard dialing runs over persistent frames, when
// a framed shard is killed outright (redial + failover), and when one
// shard answers batches slowly (sub-batch hedging races a replica).

// TestGatewayBatchHedgesSlowSubBatch pins satellite coverage for the
// batch path: with shard 0 adding latency far beyond the hedge delay,
// a heterogeneous QueryBatch — whose class-0 sub-batch lands on the
// slow shard — must answer exactly and fast, because each sub-batch
// rides callClass and hedges against the next live replica.
func TestGatewayBatchHedgesSlowSubBatch(t *testing.T) {
	inj := tivfault.New(tivfault.Spec{})
	cfg := synth.DS2Like(36, 13)
	cfg.MissingFrac = 0.08
	sp, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opts := chaosGatewayOptions()
	opts.HedgeDelay = 10 * time.Millisecond
	c, err := testcluster.Start(testcluster.Config{
		Matrix:         sp.Matrix,
		Shards:         3,
		Workers:        1,
		GatewayOptions: opts,
		ShardMiddleware: func(s int, h http.Handler) http.Handler {
			if s != 0 {
				return h
			}
			return inj.Handler(h)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	mono, err := c.NewMonolith()
	if err != nil {
		t.Fatal(err)
	}
	inj.SetSpec(tivfault.Spec{Latency: 500 * time.Millisecond})
	inj.Match = func(path string) bool { return path != "/healthz" }

	start := time.Now()
	assertBatchAgreement(t, mono, c.Gateway)
	elapsed := time.Since(start)
	// The batch fans one sub-batch per class; class 0's lands on the
	// slow shard every time. Unhedged, each of the three batch calls in
	// assertBatchAgreement would eat the injected 500ms.
	if elapsed > 450*time.Millisecond {
		t.Fatalf("hedged batches took %v; sub-batches did not race the slow shard", elapsed)
	}
}

// framedCluster boots a 3-shard cluster whose gateway dials the shards
// over the framed transport.
func framedCluster(t *testing.T, seed int64) (*testcluster.Cluster, *tivaware.Service) {
	t.Helper()
	cfg := synth.DS2Like(36, seed)
	cfg.MissingFrac = 0.08
	sp, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := testcluster.Start(testcluster.Config{
		Matrix:         sp.Matrix,
		Shards:         3,
		Workers:        1,
		Frames:         true,
		GatewayOptions: chaosGatewayOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	mono, err := c.NewMonolith()
	if err != nil {
		t.Fatal(err)
	}
	return c, mono
}

// TestFramedGatewayExact re-proves the PR 5 exactness bar with every
// shard call riding persistent frames instead of HTTP.
func TestFramedGatewayExact(t *testing.T) {
	c, mono := framedCluster(t, 19)
	assertAgreement(t, mono, c)
	assertBatchAgreement(t, mono, c.Gateway)
}

// TestFramedGatewayKilledShardRedial is the redial-after-SIGKILL case
// over frames: killing a shard aborts its framed connections mid-use,
// the gateway's retry taxonomy fails the class over to live replicas
// (exactly), and after a restart the redialed frames serve it again.
func TestFramedGatewayKilledShardRedial(t *testing.T) {
	c, mono := framedCluster(t, 23)
	assertAgreement(t, mono, c)

	c.KillShard(0)
	// Every query must stay exact while shard 0's framed conns die
	// and the breaker learns the shard is gone.
	assertAgreement(t, mono, c)
	assertBatchAgreement(t, mono, c.Gateway)
	waitStatus(t, c.Gateway, "degraded", 10*time.Second)

	if err := c.RestartShard(0); err != nil {
		t.Fatal(err)
	}
	waitStatus(t, c.Gateway, "ok", 10*time.Second)
	assertAgreement(t, mono, c)
	assertBatchAgreement(t, mono, c.Gateway)
}
