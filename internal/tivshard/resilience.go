package tivshard

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"tivaware/internal/tivclient"
	"tivaware/internal/tivwire"
)

// This file is the gateway's resilience layer. PR 5's partitioning
// replicates the full delay matrix on every shard and partitions only
// the per-query *work* (residue classes) and the delta-stream
// *authority* (owned edges) — which makes exact failover possible:
// any live replica can answer any residue class bit-for-bit. The
// layer makes it real:
//
//   - Reads run through a try chain (owner first, then the other live
//     replicas) with bounded, jitter-backed retries, per-try
//     timeouts, and optional hedging. A query fails only when every
//     replica is unreachable — and then with a typed retryable error.
//   - A per-shard circuit breaker (consecutive-failure threshold)
//     marks a shard down: down shards get no reads (their replica may
//     be behind) and no direct updates (they skip, see below).
//   - Updates that a down shard skips are journaled. A background
//     prober watches /healthz; when a down shard answers again, the
//     prober replays the journal from the shard's cursor — owner-path
//     updates first, in the exact global apply order — and only then
//     readmits the shard. Replays are idempotent (re-applying an
//     (i,j,rtt) the shard already has yields an empty change set), so
//     an ambiguous mid-broadcast failure cannot double-apply.
//   - The prober also detects restarts: a shard whose monitor version
//     went backwards was reseeded and must replay from journal index
//     0. If the bounded journal no longer reaches that far back, the
//     shard is stale — surfaced via Status, never silently readmitted.
type shardState struct {
	// down gates reads and direct updates; flipped under journalMu so
	// the skip/replay decision and the journal contents stay mutually
	// consistent, read lock-free on the query path.
	down atomic.Bool
	// fails counts consecutive failed calls (the breaker input).
	fails atomic.Int64
	// lastVersion is the highest source version this shard has
	// reported through /healthz. A probe reporting a LOWER version
	// means the shard restarted from its seed. Only healthz responses
	// feed it: apply responses carry the shard's *monitor* version, a
	// different counter that also counts value-identical no-op
	// re-applies (which never advance the source) — mixing the two
	// would make every post-replay probe look like a regression.
	lastVersion atomic.Uint64

	// replayFrom is the absolute journal index of the first entry the
	// shard may have missed; meaningful only while down. Guarded by
	// journalMu.
	replayFrom int64
	// stale: the journal no longer reaches replayFrom (entries were
	// evicted); the shard cannot be caught up by replay. Guarded by
	// journalMu.
	stale bool
}

// journalEntry is one update batch a down shard skipped (or may
// have missed).
type journalEntry struct {
	updates []tivwire.Update
}

// gwError is a gateway failure that knows its wire-taxonomy code, so
// tivd serves it as a structured envelope (serviceError dispatches on
// WireCode) and retry layers above classify it without string
// matching.
type gwError struct {
	code string
	msg  string
	err  error
}

func (e *gwError) Error() string {
	if e.err != nil {
		return fmt.Sprintf("tivshard: %s: %v", e.msg, e.err)
	}
	return "tivshard: " + e.msg
}

func (e *gwError) Unwrap() error    { return e.err }
func (e *gwError) WireCode() string { return e.code }

func errUnavailable(msg string, err error) *gwError {
	return &gwError{code: tivwire.CodeUnavailable, msg: msg, err: err}
}

func errDiverged(msg string, err error) *gwError {
	return &gwError{code: tivwire.CodeDiverged, msg: msg, err: err}
}

// errBadRequestf builds the terminal client-fault error for input that
// fails gateway-side validation — never retried and never failed over,
// because every replica would reject it identically.
func errBadRequestf(format string, args ...any) *gwError {
	return &gwError{code: tivwire.CodeBadRequest, msg: fmt.Sprintf(format, args...)}
}

// RetryPolicy bounds the gateway's per-query retry loop.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per logical call
	// across all replicas; zero means 3, negative means 1 (no retry).
	MaxAttempts int
	// BaseBackoff is the pause before the second attempt, doubling
	// each further attempt (±25% jitter); zero means 25ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the pause; zero means 1s.
	MaxBackoff time.Duration
	// PerTryTimeout bounds each attempt, so a mid-body hang costs one
	// bounded try instead of wedging the scatter; zero means 15s,
	// negative disables.
	PerTryTimeout time.Duration
}

func (p RetryPolicy) maxAttempts() int {
	switch {
	case p.MaxAttempts > 0:
		return p.MaxAttempts
	case p.MaxAttempts < 0:
		return 1
	}
	return 3
}

func (p RetryPolicy) baseBackoff() time.Duration {
	if p.BaseBackoff > 0 {
		return p.BaseBackoff
	}
	return 25 * time.Millisecond
}

func (p RetryPolicy) maxBackoff() time.Duration {
	if p.MaxBackoff > 0 {
		return p.MaxBackoff
	}
	return time.Second
}

func (p RetryPolicy) perTryTimeout() time.Duration {
	switch {
	case p.PerTryTimeout > 0:
		return p.PerTryTimeout
	case p.PerTryTimeout < 0:
		return 0
	}
	return 15 * time.Second
}

// backoffFor returns the jittered pause before attempt n (n ≥ 1 is
// the first retry).
func (p RetryPolicy) backoffFor(n int) time.Duration {
	d := p.baseBackoff()
	for i := 1; i < n && d < p.maxBackoff(); i++ {
		d *= 2
	}
	if d > p.maxBackoff() {
		d = p.maxBackoff()
	}
	return d + time.Duration(rand.Int63n(int64(d)/2+1)) - d/4
}

// ---- breaker -------------------------------------------------------

// recordFailure counts a failed call against the shard's breaker and
// trips it (marks the shard down) at the threshold. Only retryable
// failures reach here — terminal failures are the request's fault,
// not the shard's.
func (g *Gateway) recordFailure(s int) {
	if g.opts.breakerThreshold() <= 0 {
		return // breaker disabled
	}
	if g.states[s].fails.Add(1) >= int64(g.opts.breakerThreshold()) {
		g.markDown(s)
	}
}

// recordSuccess resets the shard's breaker and raises its healthz
// version watermark. It never readmits a down shard — only the
// prober's replay path does that, because a down shard's replica may
// be missing updates and must not serve reads until caught up.
// version must come from a /healthz response (see shardState).
func (g *Gateway) recordSuccess(s int, version uint64) {
	g.states[s].fails.Store(0)
	maxVersion(&g.states[s].lastVersion, version)
}

// maxVersion raises v to at least version.
func maxVersion(v *atomic.Uint64, version uint64) {
	for {
		cur := v.Load()
		if version <= cur || v.CompareAndSwap(cur, version) {
			return
		}
	}
}

// markDown trips shard s: no reads, updates skip-and-journal. The
// replay cursor is set to the journal's current end — every batch
// journaled from here on is one the shard skipped. Failed direct
// applies lower the cursor afterwards via ensureReplayFrom (their
// entry predates the trip).
func (g *Gateway) markDown(s int) {
	g.journalMu.Lock()
	if !g.states[s].down.Load() {
		g.states[s].replayFrom = g.journalBase + int64(len(g.journal))
		g.states[s].stale = false
		g.states[s].down.Store(true)
	}
	g.journalMu.Unlock()
}

// ensureReplayFrom lowers shard s's replay cursor to idx (an absolute
// journal index the shard may have missed). Called by apply paths
// whose direct apply to s failed: the batch is journaled at idx, and
// whether or not the shard actually applied it, replaying from idx is
// safe (idempotent) and sufficient.
func (g *Gateway) ensureReplayFrom(s int, idx int64) {
	g.journalMu.Lock()
	if !g.states[s].down.Load() {
		g.states[s].replayFrom = idx
		g.states[s].stale = false
		g.states[s].down.Store(true)
	} else if idx < g.states[s].replayFrom {
		g.states[s].replayFrom = idx
	}
	g.journalMu.Unlock()
}

// isDown reports whether the breaker currently excludes shard s.
func (g *Gateway) isDown(s int) bool { return g.states[s].down.Load() }

// upShards returns the live shard indices, preferred first, then the
// rest in ring order. With no live shard it returns nil.
func (g *Gateway) upShards(preferred int) []int {
	out := make([]int, 0, g.k)
	for d := 0; d < g.k; d++ {
		s := (preferred + d) % g.k
		if !g.isDown(s) {
			out = append(out, s)
		}
	}
	return out
}

// Status summarizes the gateway's health: "ok" with every shard
// live, "degraded" while any shard is down (queries still answer
// exactly from the remaining replicas), "stale" when a down shard can
// no longer be caught up by journal replay (operator action needed:
// restart it from a fresh replica and the prober will readmit it, or
// widen Options.JournalLimit).
func (g *Gateway) Status() string {
	g.journalMu.Lock()
	defer g.journalMu.Unlock()
	status := "ok"
	for s := range g.states {
		if !g.states[s].down.Load() {
			continue
		}
		if g.states[s].stale {
			return "stale"
		}
		status = "degraded"
	}
	return status
}

// DownShards returns the indices of shards the breaker currently
// excludes (diagnostics; the set changes concurrently).
func (g *Gateway) DownShards() []int {
	var out []int
	for s := 0; s < g.k; s++ {
		if g.isDown(s) {
			out = append(out, s)
		}
	}
	return out
}

// ---- read path: try chain, retries, hedging ------------------------

// tryOnce runs one attempt against shard s under the per-try timeout.
func tryOnce[T any](g *Gateway, ctx context.Context, s int, call func(ctx context.Context, c *tivclient.Client) (T, error)) (T, error) {
	tctx := ctx
	if to := g.opts.Retry.perTryTimeout(); to > 0 {
		var cancel context.CancelFunc
		tctx, cancel = context.WithTimeout(ctx, to)
		defer cancel()
	}
	v, err := call(tctx, g.clients[s])
	if err == nil {
		g.states[s].fails.Store(0)
		return v, nil
	}
	if ctx.Err() == nil && tivclient.IsRetryable(err) {
		g.recordFailure(s)
	}
	var zero T
	return zero, err
}

// callClass resolves one logical read: it walks the live replicas
// (preferred shard first — for class queries that is the class's own
// shard, keeping the healthy path identical to PR 5's routing), with
// bounded jittered retries and optional hedging. Terminal errors
// (bad requests) surface immediately: every replica would reject them
// identically. It fails only when the caller's context dies or every
// attempt on every live replica failed — then with a typed retryable
// error so clients above know to come back.
func callClass[T any](g *Gateway, ctx context.Context, preferred int, call func(ctx context.Context, c *tivclient.Client) (T, error)) (T, error) {
	var zero T
	var lastErr error
	for attempt := 0; attempt < g.opts.Retry.maxAttempts(); attempt++ {
		if attempt > 0 {
			t := time.NewTimer(g.opts.Retry.backoffFor(attempt))
			select {
			case <-ctx.Done():
				t.Stop()
				return zero, errUnavailable("query aborted", ctx.Err())
			case <-t.C:
			}
		}
		candidates := g.upShards(preferred)
		if len(candidates) == 0 {
			// Desperation pass: with every breaker open there is
			// nothing to lose by asking anyway (a probe may simply not
			// have readmitted a recovered shard yet — but a *down*
			// shard's replica may be behind, so this pass only runs
			// when the alternative is failing the query).
			for d := 0; d < g.k; d++ {
				candidates = append(candidates, (preferred+d)%g.k)
			}
		}
		for _, s := range candidates {
			v, err := hedgedTry(g, ctx, s, candidates, call)
			if err == nil {
				return v, nil
			}
			lastErr = err
			if ctx.Err() != nil {
				return zero, errUnavailable("query aborted", ctx.Err())
			}
			if !tivclient.IsRetryable(err) {
				return zero, err // terminal: every replica would say the same
			}
		}
	}
	return zero, errUnavailable(fmt.Sprintf("no shard could answer after %d attempts", g.opts.Retry.maxAttempts()), lastErr)
}

// hedgedTry runs one attempt on shard s and, when hedging is enabled
// and the attempt is slow, races a second attempt on the next live
// replica; the first success wins (both attempts carry the per-try
// timeout, so the loser's goroutine is bounded).
func hedgedTry[T any](g *Gateway, ctx context.Context, s int, candidates []int, call func(ctx context.Context, c *tivclient.Client) (T, error)) (T, error) {
	hedge := g.opts.HedgeDelay
	var other int
	hasOther := false
	if hedge > 0 {
		for _, c := range candidates {
			if c != s {
				other, hasOther = c, true
				break
			}
		}
	}
	if hedge <= 0 || !hasOther {
		return tryOnce(g, ctx, s, call)
	}

	type result struct {
		v   T
		err error
	}
	results := make(chan result, 2)
	launch := func(shard int) {
		go func() {
			v, err := tryOnce(g, ctx, shard, call)
			results <- result{v, err}
		}()
	}
	launch(s)
	t := time.NewTimer(hedge)
	defer t.Stop()
	launched, failed := 1, 0
	var firstErr error
	var zero T
	for {
		select {
		case r := <-results:
			if r.err == nil {
				return r.v, nil // first success wins
			}
			failed++
			if firstErr == nil {
				firstErr = r.err
			}
			if failed >= launched {
				if launched == 1 && ctx.Err() == nil && tivclient.IsRetryable(r.err) {
					// The primary failed *before* the hedge timer
					// fired. The hedge replica is still an unspent
					// chance at this attempt — launch it immediately
					// instead of surfacing the fast failure. (Without
					// this, fast failures returned here and the hedge
					// candidate never raced at all.) Terminal errors
					// and dead contexts still return: every replica
					// would answer those identically.
					t.Stop()
					launch(other)
					launched = 2
					continue
				}
				// Every launched attempt failed.
				return zero, firstErr
			}
			// One of two failed; the other may yet succeed.
		case <-t.C:
			if launched == 2 {
				// The fast-failure path already launched the hedge
				// before Stop could win the race; nothing left to
				// launch.
				continue
			}
			// Primary is slow: race a second attempt on the next live
			// replica.
			launch(other)
			launched = 2
		}
	}
}

// ---- prober --------------------------------------------------------

// startProber launches the background health prober; no-op when
// probing is disabled.
func (g *Gateway) startProber() {
	if g.opts.probeInterval() <= 0 {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	g.proberCancel = cancel
	g.proberWG.Add(1)
	go func() {
		defer g.proberWG.Done()
		t := time.NewTicker(g.opts.probeInterval())
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				g.probeAll(ctx)
			}
		}
	}()
}

// probeAll probes every shard once, concurrently.
func (g *Gateway) probeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for s := 0; s < g.k; s++ {
		wg.Add(1)
		// The recover replay inside probe advances a monotone cursor
		// toward the bounded journal's end and every blocking call it
		// makes carries probeTimeout, so each probe tick's goroutines
		// finish — a progress argument the static proof cannot see.
		//lint:tiv goleak probe/recover bound every call with probeTimeout and the replay cursor only advances
		go func(s int) {
			defer wg.Done()
			g.probe(ctx, s)
		}(s)
	}
	wg.Wait()
}

// probe health-checks one shard. For a live shard it feeds the
// breaker (probe failures trip it even when no query traffic is
// flowing) and watches for a restart — a monitor version running
// BACKWARDS means the shard was reseeded and silently lost every
// update it had, so it is tripped with a full-history replay cursor.
// For a down shard, a successful probe starts recovery.
func (g *Gateway) probe(ctx context.Context, s int) {
	// Sample the version watermark BEFORE the probe goes out. A
	// shard's monitor version is monotone (absent a restart), so the
	// health response — read at the shard strictly after this sample
	// was recorded — can never legitimately come back below it.
	// Comparing against a post-response load instead would race
	// concurrent applies (they advance lastVersion while the probe is
	// in flight) and misread a perfectly live shard as restarted.
	pre := g.states[s].lastVersion.Load()
	pctx, cancel := context.WithTimeout(ctx, g.opts.probeTimeout())
	defer cancel()
	h, err := g.clients[s].Healthz(pctx)
	if err != nil {
		if ctx.Err() == nil && tivclient.IsRetryable(err) {
			g.recordFailure(s)
		}
		return
	}
	if !g.isDown(s) {
		if h.Version < pre {
			// Restarted under us: everything it ever applied is gone.
			g.ensureReplayFrom(s, 0)
			return
		}
		g.recordSuccess(s, h.Version)
		return
	}
	// Down shard answered. A version regression means restart-from-
	// seed: pull the cursor back to the beginning of history before
	// replaying.
	if h.Version < pre {
		g.ensureReplayFrom(s, 0)
	}
	g.recover(ctx, s)
}

// recover replays the journal to a down-but-answering shard and
// readmits it. The loop copies one entry at a time under journalMu
// and applies it outside the lock; readmission happens under
// journalMu in the same critical section that confirms the cursor
// reached the journal's end, so a concurrent ApplyBatch either saw
// the shard down (and journaled its batch beyond the cursor — the
// loop picks it up) or sees it up (and applies directly). No batch
// can fall between.
func (g *Gateway) recover(ctx context.Context, s int) {
	for {
		g.journalMu.Lock()
		if !g.states[s].down.Load() {
			g.journalMu.Unlock()
			return // someone else readmitted it
		}
		cursor := g.states[s].replayFrom
		if cursor < g.journalBase {
			// The bounded journal evicted entries the shard needs:
			// replay cannot catch it up. Flag and leave it down.
			g.states[s].stale = true
			g.journalMu.Unlock()
			return
		}
		if cursor >= g.journalBase+int64(len(g.journal)) {
			// Caught up: readmit.
			g.states[s].down.Store(false)
			g.states[s].stale = false
			g.states[s].fails.Store(0)
			g.journalMu.Unlock()
			return
		}
		entry := g.journal[cursor-g.journalBase]
		g.journalMu.Unlock()

		actx, cancel := context.WithTimeout(ctx, g.opts.probeTimeout())
		// The response changeset is dropped: its Version is the shard's
		// monitor counter, not the healthz source version lastVersion
		// tracks (see shardState).
		_, err := g.clients[s].ApplyBatch(actx, entry.updates)
		cancel()
		if err != nil {
			if !tivclient.IsRetryable(err) {
				// Terminal rejection is deterministic: every replica
				// rejected (or would reject) this batch the same way, so
				// skipping it preserves replica agreement — retrying
				// would wedge recovery on it forever.
				g.journalMu.Lock()
				if g.states[s].replayFrom == cursor {
					g.states[s].replayFrom = cursor + 1
				}
				g.journalMu.Unlock()
				continue
			}
			// Ambiguous: replay resumes from the same cursor on the
			// next probe tick (re-applying is idempotent even if this
			// apply landed).
			return
		}
		g.journalMu.Lock()
		if g.states[s].replayFrom == cursor {
			g.states[s].replayFrom = cursor + 1
		}
		g.journalMu.Unlock()
	}
}

// appendJournal records one batch and returns its absolute index,
// evicting the oldest entries beyond the journal bound (any down
// shard whose cursor falls off the evicted end becomes stale —
// detected by recover). Callers hold journalMu.
func (g *Gateway) appendJournalLocked(updates []tivwire.Update) int64 {
	idx := g.journalBase + int64(len(g.journal))
	g.journal = append(g.journal, journalEntry{updates: updates})
	if limit := g.opts.journalLimit(); limit > 0 && len(g.journal) > limit {
		evict := len(g.journal) - limit
		g.journal = append([]journalEntry(nil), g.journal[evict:]...)
		g.journalBase += int64(evict)
	}
	return idx
}
