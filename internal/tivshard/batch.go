package tivshard

import (
	"context"
	"fmt"
	"sync"

	"tivaware/internal/delayspace"
	"tivaware/internal/tiv"
	"tivaware/internal/tivaware"
	"tivaware/internal/tivclient"
)

// The gateway's batch path. A batch of M heterogeneous queries costs
// at most one /v1/batch round trip per shard: every query is either
// routed to one class (explicit residue restrictions, delay reads) or
// expanded into K class sub-queries (unrestricted rank/closest/top/
// detour), the per-class sub-batches scatter concurrently, and the
// class answers merge with the same comparators the single-shot paths
// use — so the batch path is exactly as precise as issuing the
// queries one by one, while amortizing the per-request overhead the
// single-shot scatter pays K times per query.

// gwPart is one class-routed sub-query of a batch.
type gwPart struct {
	orig int // index into the caller's batch
	q    tivaware.Query
}

// gwAccum collects one scattered query's per-class answers.
type gwAccum struct {
	sels      [][]tivaware.Selection
	edges     [][]delayspace.Edge
	detours   []tivaware.Detour
	answered  []bool
	truncated bool
	err       error
}

// QueryBatch answers a vector of typed queries with one sub-batch per
// shard; see the package comment for the merge semantics. Per-query
// failures (bad parameters, a class whose every replica is down) land
// in Result.Err; the call-level error is reserved for context expiry.
// Cross-query consistency is per shard epoch: each shard answers its
// sub-batch against one pinned epoch, and the merged answers are
// exact whenever no update races the batch.
func (g *Gateway) QueryBatch(ctx context.Context, queries []tivaware.Query) ([]tivaware.Result, error) {
	out := make([]tivaware.Result, len(queries))
	classParts := make([][]gwPart, g.k)
	acc := make([]*gwAccum, len(queries))
	var analysisIdx []int

	route := func(i int, q tivaware.Query, class int) {
		classParts[class] = append(classParts[class], gwPart{orig: i, q: q})
	}
	expand := func(i int, q tivaware.Query) {
		acc[i] = &gwAccum{
			sels:     make([][]tivaware.Selection, g.k),
			edges:    make([][]delayspace.Edge, g.k),
			detours:  make([]tivaware.Detour, g.k),
			answered: make([]bool, g.k),
		}
		for class := 0; class < g.k; class++ {
			sub := q
			sub.Scatter = tivaware.Scatter{Mod: g.k, Rem: class}
			route(i, sub, class)
		}
	}

	for i, q := range queries {
		out[i].Kind = q.Kind
		switch q.Kind {
		case tivaware.KindRank, tivaware.KindClosest, tivaware.KindDetour, tivaware.KindTop:
			if sc := q.Scatter; sc.Mod != 0 {
				s, err := g.classShard(sc.Mod, sc.Rem)
				if err != nil {
					out[i].Err = err
					continue
				}
				route(i, q, s)
				continue
			}
			if q.Kind == tivaware.KindClosest {
				// Resolved as a per-class rank of 1 so an empty class
				// cannot fail the query (mirrors Gateway.ClosestNode).
				q.Kind = tivaware.KindRank
				q.K = 1
			}
			expand(i, q)
		case tivaware.KindDelay:
			class := 0
			if q.I >= 0 && q.J >= 0 && q.I < g.n && q.J < g.n {
				class = g.edgeOwner(q.I, q.J)
			}
			// Out-of-range pairs still travel: any shard produces the
			// same deterministic validation error a monolith would.
			route(i, q, class)
		case tivaware.KindAnalysis:
			analysisIdx = append(analysisIdx, i)
		default:
			out[i].Err = fmt.Errorf("%w: %q", tivaware.ErrUnsupportedQuery, q.Kind)
		}
	}

	// One sub-batch per class, scattered concurrently; a class that
	// fails after retry/failover marks its queries, never the batch.
	var mu sync.Mutex
	_ = g.scatterClasses(ctx, func(ctx context.Context, class int) error {
		ps := classParts[class]
		if len(ps) == 0 {
			return nil
		}
		sub := make([]tivaware.Query, len(ps))
		for k, p := range ps {
			sub[k] = p.q
		}
		res, err := callClass(g, ctx, class, func(ctx context.Context, c *tivclient.Client) ([]tivaware.Result, error) {
			return c.QueryBatch(ctx, sub)
		})
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			cerr := errUnavailable(fmt.Sprintf("class %d sub-batch failed", class), err)
			for _, p := range ps {
				if a := acc[p.orig]; a != nil {
					if a.err == nil {
						a.err = cerr
					}
				} else if out[p.orig].Err == nil {
					out[p.orig].Err = cerr
				}
			}
			return nil
		}
		for k, p := range ps {
			a := acc[p.orig]
			if a == nil {
				out[p.orig] = res[k]
				out[p.orig].Kind = p.q.Kind
				continue
			}
			if res[k].Err != nil {
				// A failed class part breaks the merge's exactness; the
				// query fails rather than answering approximately.
				if a.err == nil {
					a.err = res[k].Err
				}
				continue
			}
			a.answered[class] = true
			a.sels[class] = res[k].Selections
			a.edges[class] = res[k].Edges
			a.detours[class] = res[k].Detour
			a.truncated = a.truncated || res[k].Truncated
		}
		return nil
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Merge the scattered queries with the monolithic comparators.
	for i, q := range queries {
		a := acc[i]
		if a == nil {
			continue
		}
		if a.err != nil {
			out[i] = tivaware.Result{Kind: q.Kind, Err: a.err}
			continue
		}
		switch q.Kind {
		case tivaware.KindRank:
			out[i].Selections, out[i].Truncated = g.mergeRank(a, q.K)
		case tivaware.KindClosest:
			merged, _ := g.mergeRank(a, 1)
			if len(merged) == 0 {
				out[i].Err = fmt.Errorf("tivshard: no eligible candidate for node %d", q.Target)
				continue
			}
			out[i].Selections = merged[:1]
		case tivaware.KindTop:
			out[i].Edges = mergeSorted(a.edges, tiv.EdgeLess, q.K)
		case tivaware.KindDetour:
			out[i].Detour = g.mergeDetour(a, q.I, q.J)
		}
	}

	// Analysis sweeps the whole cluster with agreement checking; one
	// sweep answers every analysis query in the batch.
	if len(analysisIdx) > 0 {
		aresp, err := g.Analysis(ctx)
		for _, i := range analysisIdx {
			if err != nil {
				out[i].Err = err
				continue
			}
			out[i].Analysis = tivaware.AnalysisSummary{
				N:                  aresp.N,
				ViolatingTriangles: aresp.ViolatingTriangles,
				Triangles:          aresp.Triangles,
				Version:            aresp.Version,
			}
		}
	}
	return out, nil
}

// mergeRank k-way merges per-class rankings exactly as Gateway.Rank
// and KClosest do; limit ≤ 0 keeps everything. Truncated reports a
// shard-side cut or a merge-side one.
func (g *Gateway) mergeRank(a *gwAccum, limit int) ([]tivaware.Selection, bool) {
	total := 0
	for _, l := range a.sels {
		total += len(l)
	}
	if limit <= 0 {
		return mergeSorted(a.sels, tivaware.SelectionLess, -1), a.truncated
	}
	return mergeSorted(a.sels, tivaware.SelectionLess, limit), a.truncated || total > limit
}

// mergeDetour reduces per-class detour scans to the smallest via
// delay, ties to the lowest relay id — the monolithic scan's first
// strict minimum (mirrors DetourPathMod).
func (g *Gateway) mergeDetour(a *gwAccum, i, j int) tivaware.Detour {
	best := tivaware.Detour{I: i, J: j, Via: -1}
	for class, ok := range a.answered {
		if ok {
			best.Direct = a.detours[class].Direct
			break
		}
	}
	for class, ok := range a.answered {
		if !ok {
			continue
		}
		d := a.detours[class]
		if d.Via < 0 {
			continue
		}
		if best.Via < 0 || d.ViaDelay < best.ViaDelay ||
			(d.ViaDelay == best.ViaDelay && d.Via < best.Via) {
			best = d
		}
	}
	return best
}

// QueryBatch serves the tivd batch surface: gateway answers stamped
// with the generation counter.
func (b *Backend) QueryBatch(ctx context.Context, queries []tivaware.Query) ([]tivaware.Result, uint64, error) {
	res, err := b.g.QueryBatch(ctx, queries)
	return res, b.g.Generation(), err
}

// CacheVersion returns (generation, 0). The generation advances on
// every update batch routed through this gateway, so equal
// generations imply identical answers under the sharded plane's
// deployment contract: all writes flow through the gateway (out-of-
// band writes directly to a shard daemon are invisible here — see the
// traffic-plane section of DESIGN.md). The generation is bumped after
// replication completes, so a query racing an in-flight batch may be
// cached under the pre-batch generation for the remainder of that
// apply; the entry stops being served the moment the generation
// advances.
func (b *Backend) CacheVersion() (uint64, uint64) { return b.g.Generation(), 0 }
