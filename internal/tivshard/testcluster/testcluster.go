// Package testcluster spins up an in-process multi-shard TIV cluster:
// K real tivd shard servers on loopback TCP listeners, each holding
// its own replica of one delay matrix, fronted by a tivshard.Gateway
// (optionally itself served over HTTP). Everything runs inside the
// calling process — no external binaries — so the differential and
// race suites in internal/tivshard drive a genuinely networked
// cluster under plain `go test -race`, and examples reuse the same
// harness for multi-shard demos (the package deliberately has no
// testing dependency; every failure is an error).
package testcluster

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"tivaware/internal/delayspace"
	"tivaware/internal/synth"
	"tivaware/internal/tivaware"
	"tivaware/internal/tivd"
	"tivaware/internal/tivframe"
	"tivaware/internal/tivshard"
)

// Config configures a cluster. The zero value serves a 32-node
// DS2-like matrix from 3 shards.
type Config struct {
	// N is the synthetic matrix's node count (ignored when Matrix is
	// set); zero means 32.
	N int
	// Shards is the shard count K; zero means 3.
	Shards int
	// Seed drives the synthetic matrix; zero means 1.
	Seed int64
	// Matrix, when non-nil, is the source matrix. Each shard gets its
	// own clone; the cluster never mutates the original.
	Matrix *delayspace.Matrix
	// Live runs every shard with an incremental monitor, accepting
	// updates and subscriptions.
	Live bool
	// Workers bounds each shard's analysis parallelism. Differential
	// tests pin 1: per-edge severity is a witness sum, so one worker
	// makes the accumulation order — and hence every float — bit-equal
	// across replicas and against the monolithic twin.
	Workers int
	// ServerOptions configures every shard's HTTP server.
	ServerOptions tivd.Options
	// GatewayOptions configures the gateway.
	GatewayOptions tivshard.Options
	// ServeGateway additionally serves the gateway itself over HTTP
	// (GatewayURL), re-exporting the cluster behind the single-daemon
	// wire protocol.
	ServeGateway bool
	// ShardMiddleware, when non-nil, wraps each shard's HTTP handler
	// (chaos suites install tivfault injectors here). It is re-applied
	// on RestartShard, receiving the shard id both times.
	ShardMiddleware func(shard int, h http.Handler) http.Handler
	// Frames additionally serves every shard over the framed binary
	// transport (Shard.FrameAddr) and makes the gateway dial the
	// shards over frames instead of HTTP. With ServeGateway, the
	// gateway itself also gets a framed listener (GatewayFrameAddr).
	// KillShard kills the framed plane too; RestartShard revives it
	// behind the same address.
	Frames bool
}

func (c Config) n() int {
	if c.N > 0 {
		return c.N
	}
	return 32
}

func (c Config) shards() int {
	if c.Shards > 0 {
		return c.Shards
	}
	return 3
}

func (c Config) seed() int64 {
	if c.Seed != 0 {
		return c.Seed
	}
	return 1
}

// Shard is one running shard server.
type Shard struct {
	// URL is the shard's base URL on loopback.
	URL string
	// FrameAddr is the shard's framed-transport address ("host:port"),
	// set when Config.Frames is true. Stable across KillShard and
	// RestartShard, exactly like URL.
	FrameAddr string
	// Service is the shard's in-process service (its matrix is the
	// shard's private replica). Replaced by RestartShard.
	Service *tivaware.Service

	id     int
	mu     sync.Mutex // guards Service/srv swaps against Close
	srv    *tivd.Server
	hs     *http.Server
	proxy  *swapHandler
	fsrv   *tivframe.Server
	fproxy *frameSwap
}

// swapHandler routes requests to a swappable inner handler, so a
// shard's "process" can die and restart without its listener (and
// hence its URL, which the gateway holds) ever changing.
type swapHandler struct {
	h atomic.Value // handlerBox
}

// handlerBox gives atomic.Value the single concrete type it requires
// whatever handler implementation is stored.
type handlerBox struct{ h http.Handler }

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.h.Load().(handlerBox).h.ServeHTTP(w, r)
}

func (s *swapHandler) store(h http.Handler) { s.h.Store(handlerBox{h}) }

// deadHandler aborts every connection without writing a response —
// the closest in-process stand-in for a SIGKILLed shard: clients see
// the connection reset, not an HTTP error.
type deadHandler struct{}

func (deadHandler) ServeHTTP(http.ResponseWriter, *http.Request) {
	panic(http.ErrAbortHandler)
}

// frameSwap is swapHandler's framed twin: it routes frames to a
// swappable inner handler, so the framed plane dies and restarts
// behind one stable listener address.
type frameSwap struct {
	h atomic.Value // frameBox
}

type frameBox struct{ h tivframe.Handler }

func (f *frameSwap) ServeFrame(ctx context.Context, msg any) any {
	return f.h.Load().(frameBox).h.ServeFrame(ctx, msg)
}

func (f *frameSwap) store(h tivframe.Handler) { f.h.Store(frameBox{h}) }

// deadFrameHandler is deadHandler's framed twin: a nil return makes
// the frame server abort the connection without answering — clients
// see a reset, exactly like a SIGKILLed daemon's socket.
type deadFrameHandler struct{}

func (deadFrameHandler) ServeFrame(context.Context, any) any { return nil }

// Cluster is a running multi-shard cluster.
type Cluster struct {
	// Matrix is the pristine source matrix (differential twins are
	// built over clones of it; the shards never touch it).
	Matrix *delayspace.Matrix
	// Shards are the running shard servers, index == shard id.
	Shards []*Shard
	// Gateway scatter-gathers over the shards.
	Gateway *tivshard.Gateway
	// GatewayURL is set when Config.ServeGateway is true.
	GatewayURL string
	// GatewayFrameAddr is the served gateway's framed-transport
	// address, set when both ServeGateway and Frames are true.
	GatewayFrameAddr string

	cfg  Config
	gwHS *http.Server
	gwS  *tivd.Server
	gwFS *tivframe.Server
}

// Start builds the matrix, boots one tivd server per shard on a
// loopback listener, and fronts them with a gateway. Call Close when
// done.
func Start(cfg Config) (*Cluster, error) {
	m := cfg.Matrix
	if m == nil {
		sp, err := synth.Generate(synth.DS2Like(cfg.n(), cfg.seed()))
		if err != nil {
			return nil, err
		}
		m = sp.Matrix
	}
	c := &Cluster{Matrix: m, cfg: cfg}
	urls := make([]string, 0, cfg.shards())
	for s := 0; s < cfg.shards(); s++ {
		svc, srv, err := c.newShardServer()
		if err != nil {
			c.Close()
			return nil, err
		}
		proxy := &swapHandler{}
		proxy.store(c.shardHandler(s, srv))
		url, hs, err := serve(proxy)
		if err != nil {
			c.Close()
			return nil, err
		}
		sh := &Shard{URL: url, Service: svc, id: s, srv: srv, hs: hs, proxy: proxy}
		if cfg.Frames {
			fproxy := &frameSwap{}
			fproxy.store(srv.FrameHandler())
			addr, fsrv, err := serveFrames(fproxy)
			if err != nil {
				c.Shards = append(c.Shards, sh)
				c.Close()
				return nil, err
			}
			sh.FrameAddr, sh.fsrv, sh.fproxy = addr, fsrv, fproxy
		}
		c.Shards = append(c.Shards, sh)
		urls = append(urls, url)
	}
	gwOpts := cfg.GatewayOptions
	if cfg.Frames {
		frameAddrs := make([]string, len(c.Shards))
		for s, sh := range c.Shards {
			frameAddrs[s] = sh.FrameAddr
		}
		gwOpts.FrameAddrs = frameAddrs
	}
	gw, err := tivshard.New(context.Background(), urls, gwOpts)
	if err != nil {
		c.Close()
		return nil, err
	}
	c.Gateway = gw
	if cfg.ServeGateway {
		gwS, err := tivd.NewBackend(gw.Backend(), cfg.ServerOptions)
		if err != nil {
			c.Close()
			return nil, err
		}
		url, hs, err := serve(gwS.Handler())
		if err != nil {
			c.gwS = gwS
			c.Close()
			return nil, err
		}
		c.gwS, c.gwHS, c.GatewayURL = gwS, hs, url
		if cfg.Frames {
			addr, fsrv, err := serveFrames(gwS.FrameHandler())
			if err != nil {
				c.Close()
				return nil, err
			}
			c.GatewayFrameAddr, c.gwFS = addr, fsrv
		}
	}
	return c, nil
}

// serveFrames binds an ephemeral loopback listener and serves the
// framed transport on it.
func serveFrames(h tivframe.Handler) (addr string, fsrv *tivframe.Server, err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	fsrv = tivframe.NewServer(h, tivframe.Options{})
	go func() { _ = fsrv.Serve(ln) }()
	return ln.Addr().String(), fsrv, nil
}

// newShardServer builds one shard's service (a fresh replica of the
// source matrix) and its tivd server.
func (c *Cluster) newShardServer() (*tivaware.Service, *tivd.Server, error) {
	svc, err := tivaware.NewFromMatrix(c.Matrix.Clone(), tivaware.Options{Live: c.cfg.Live, Workers: c.cfg.Workers})
	if err != nil {
		return nil, nil, err
	}
	srv, err := tivd.New(svc, c.cfg.ServerOptions)
	if err != nil {
		return nil, nil, err
	}
	return svc, srv, nil
}

// shardHandler applies the configured middleware to a shard server.
func (c *Cluster) shardHandler(shard int, srv *tivd.Server) http.Handler {
	h := http.Handler(srv.Handler())
	if c.cfg.ShardMiddleware != nil {
		h = c.cfg.ShardMiddleware(shard, h)
	}
	return h
}

// KillShard simulates a shard process dying hard: every subsequent
// connection to its URL is reset without a response, and its live SSE
// streams are torn down. The listener stays bound (the gateway keeps
// probing the same URL), so RestartShard can bring the shard back.
// Idempotent; safe while traffic is in flight.
func (c *Cluster) KillShard(s int) {
	sh := c.Shards[s]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.proxy.store(deadHandler{})
	if sh.fproxy != nil {
		// The framed plane dies with the process: every subsequent
		// frame on an existing connection aborts it (a reset, not an
		// error envelope), and fresh dials meet the same fate.
		sh.fproxy.store(deadFrameHandler{})
	}
	sh.srv.Close() // tear down the dead process's streams
}

// RestartShard boots a fresh shard process behind the same URL: a new
// service over a pristine clone of the source matrix (its monitor
// version restarts from scratch, exactly like a rebooted daemon
// reloading its seed measurements) served by a new tivd server. The
// gateway's prober detects the version regression and replays the
// full update journal before readmitting the shard.
func (c *Cluster) RestartShard(s int) error {
	sh := c.Shards[s]
	svc, srv, err := c.newShardServer()
	if err != nil {
		return err
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	old := sh.srv
	sh.Service, sh.srv = svc, srv
	sh.proxy.store(c.shardHandler(sh.id, srv))
	if sh.fproxy != nil {
		sh.fproxy.store(srv.FrameHandler())
	}
	if old != srv {
		old.Close()
	}
	return nil
}

// serve binds an ephemeral loopback listener and serves h on it.
func serve(h http.Handler) (url string, hs *http.Server, err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	hs = &http.Server{Handler: h}
	go func() { _ = hs.Serve(ln) }()
	return "http://" + ln.Addr().String(), hs, nil
}

// ShardURLs returns the shard base URLs in shard order (the order
// that defines the partition).
func (c *Cluster) ShardURLs() []string {
	urls := make([]string, len(c.Shards))
	for s, sh := range c.Shards {
		urls[s] = sh.URL
	}
	return urls
}

// NewMonolith builds the differential twin: one in-process service
// over a fresh clone of the cluster's source matrix with the same
// liveness and worker options every shard runs with. Queries against
// it must agree with the gateway exactly (identical update sequences
// applied to both included).
func (c *Cluster) NewMonolith() (*tivaware.Service, error) {
	return tivaware.NewFromMatrix(c.Matrix.Clone(), tivaware.Options{Live: c.cfg.Live, Workers: c.cfg.Workers})
}

// Close tears the cluster down: the gateway's fan-in pumps first,
// then every server's SSE streams, then the listeners.
func (c *Cluster) Close() {
	if c.Gateway != nil {
		c.Gateway.Close()
	}
	if c.gwS != nil {
		c.gwS.Close()
	}
	if c.gwFS != nil {
		c.gwFS.Abort()
	}
	if c.gwHS != nil {
		shutdown(c.gwHS)
	}
	for _, sh := range c.Shards {
		sh.mu.Lock()
		sh.srv.Close()
		sh.mu.Unlock()
		if sh.fsrv != nil {
			sh.fsrv.Abort()
		}
		shutdown(sh.hs)
	}
}

func shutdown(hs *http.Server) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		_ = hs.Close()
	}
}

// Validate is a convenience for harness users: it errors unless the
// gateway sees the expected shard and node counts.
func (c *Cluster) Validate() error {
	if got, want := c.Gateway.K(), len(c.Shards); got != want {
		return fmt.Errorf("testcluster: gateway over %d shards, cluster has %d", got, want)
	}
	if got, want := c.Gateway.N(), c.Matrix.N(); got != want {
		return fmt.Errorf("testcluster: gateway sees %d nodes, matrix has %d", got, want)
	}
	return nil
}
