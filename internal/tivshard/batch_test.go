package tivshard_test

import (
	"context"
	"fmt"
	"reflect"
	"testing"
	"time"

	"tivaware/internal/synth"
	"tivaware/internal/tivaware"
	"tivaware/internal/tivclient"
	"tivaware/internal/tivshard"
	"tivaware/internal/tivshard/testcluster"
)

// The batch-path acceptance bar: Gateway.QueryBatch must agree with
// the monolith's QueryBatch exactly — same merge comparators, same
// per-query error surface — for every query kind, with and without
// explicit residue restrictions, at every shard count, and the
// agreement must survive a killed shard (replica failover) without
// widening any tolerance.

// batchQueries is the mixed batch the differential runs: every kind,
// scattered and explicitly-routed variants, plus two per-query error
// cases (out-of-range target, unsupported kind).
func batchQueries(n int) []tivaware.Query {
	return []tivaware.Query{
		{Kind: tivaware.KindRank, Target: 0},
		{Kind: tivaware.KindRank, Target: 3, K: 5, SeverityPenalty: 2.5},
		{Kind: tivaware.KindRank, Target: n - 1, SeverityPenalty: 1, ExcludeViolated: true},
		{Kind: tivaware.KindRank, Target: 0, K: 4, Candidates: []int{n - 1, 3, 17, 8, 21}, SeverityPenalty: 2},
		{Kind: tivaware.KindRank, Target: 2, Scatter: tivaware.Scatter{Mod: 2, Rem: 1}},
		{Kind: tivaware.KindClosest, Target: 7, SeverityPenalty: 1.5},
		{Kind: tivaware.KindClosest, Target: n - 1},
		{Kind: tivaware.KindDetour, I: 1, J: n - 1},
		{Kind: tivaware.KindDetour, I: 10, J: 20, Scatter: tivaware.Scatter{Mod: 3, Rem: 0}},
		{Kind: tivaware.KindTop, K: 10},
		{Kind: tivaware.KindTop, K: 6, Scatter: tivaware.Scatter{Mod: 2, Rem: 0}},
		{Kind: tivaware.KindDelay, I: 4, J: 9},
		{Kind: tivaware.KindDelay, I: 9, J: 4},
		{Kind: tivaware.KindAnalysis},
		{Kind: tivaware.KindRank, Target: n + 50}, // per-query error
		{Kind: "bogus"}, // per-query error
	}
}

// assertBatchAgreement issues the mixed batch against both planes and
// requires exact equality: payloads with ==-level DeepEqual, failures
// by presence on both sides (the monolith speaks tivaware validation
// errors, the gateway may wrap them in wire envelopes — the contract
// is that they fail the same queries, not that they spell the same
// message).
func assertBatchAgreement(t *testing.T, mono *tivaware.Service, gw *tivshard.Gateway) {
	t.Helper()
	ctx := context.Background()
	queries := batchQueries(mono.N())

	want, err := mono.QueryBatch(ctx, queries)
	if err != nil {
		t.Fatal(err)
	}
	got, err := gw.QueryBatch(ctx, queries)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("gateway batch returned %d results, monolith %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if g.Kind != w.Kind {
			t.Errorf("query %d: gateway kind %q, monolith kind %q", i, g.Kind, w.Kind)
		}
		if (w.Err != nil) != (g.Err != nil) {
			t.Errorf("query %d (%s): gateway err %v, monolith err %v", i, queries[i].Kind, g.Err, w.Err)
			continue
		}
		if w.Err != nil {
			continue
		}
		if w.Kind == tivaware.KindAnalysis {
			// Version counters differ by plane (primary source vs
			// cluster-agreed monitor version); the triangle census is
			// the exactness witness.
			if g.Analysis.N != w.Analysis.N ||
				g.Analysis.ViolatingTriangles != w.Analysis.ViolatingTriangles ||
				g.Analysis.Triangles != w.Analysis.Triangles {
				t.Errorf("analysis: gateway %+v, monolith %+v", g.Analysis, w.Analysis)
			}
			continue
		}
		w.Err, g.Err = nil, nil
		if !reflect.DeepEqual(g, w) {
			t.Errorf("query %d (%s): gateway %+v, monolith %+v", i, queries[i].Kind, g, w)
		}
	}
}

// TestGatewayBatchMatchesMonolith is the batch-path twin of
// TestGatewayMatchesMonolith: one scatter-gather /v1/batch round per
// shard must land on exactly the answers of issuing the queries
// against a monolithic service.
func TestGatewayBatchMatchesMonolith(t *testing.T) {
	for _, k := range shardCounts {
		k := k
		t.Run(fmt.Sprintf("shards=%d", k), func(t *testing.T) {
			t.Parallel()
			c, mono := diffCluster(t, k, false)
			assertBatchAgreement(t, mono, c.Gateway)
		})
	}
}

// TestGatewayBatchMatchesSingles pins the amortization claim: the
// batch path is a transport optimization, not a different query
// engine, so each batch answer must equal the gateway's own
// single-shot answer for the same query.
func TestGatewayBatchMatchesSingles(t *testing.T) {
	c, _ := diffCluster(t, 3, false)
	ctx := context.Background()
	gw := c.Gateway
	n := c.Matrix.N()

	queries := []tivaware.Query{
		{Kind: tivaware.KindRank, Target: 3, K: 5, SeverityPenalty: 2.5},
		{Kind: tivaware.KindClosest, Target: 7, SeverityPenalty: 1.5},
		{Kind: tivaware.KindDetour, I: 1, J: n - 1},
		{Kind: tivaware.KindTop, K: 10},
	}
	batch, err := gw.QueryBatch(ctx, queries)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range batch {
		if r.Err != nil {
			t.Fatalf("batch query %s failed: %v", r.Kind, r.Err)
		}
	}

	sels, err := gw.KClosest(ctx, 3, 5, tivaware.QueryOptions{SeverityPenalty: 2.5})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(batch[0].Selections, sels) {
		t.Errorf("rank: batch %+v, single %+v", batch[0].Selections, sels)
	}
	closest, err := gw.ClosestNode(ctx, 7, tivaware.QueryOptions{SeverityPenalty: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch[1].Selections) != 1 || batch[1].Selections[0] != closest {
		t.Errorf("closest: batch %+v, single %+v", batch[1].Selections, closest)
	}
	det, err := gw.DetourPath(ctx, 1, n-1)
	if err != nil {
		t.Fatal(err)
	}
	if batch[2].Detour != det {
		t.Errorf("detour: batch %+v, single %+v", batch[2].Detour, det)
	}
	top, err := gw.TopEdges(ctx, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(batch[3].Edges, top) {
		t.Errorf("top: batch %+v, single %+v", batch[3].Edges, top)
	}
}

// TestGatewayBatchSurvivesKilledShard: every shard is a full replica,
// so one dead shard must not change a single batch answer — the
// class sub-batch fails over — and when every replica is dead, each
// query fails individually with a retryable unavailable envelope
// while the batch call itself still returns.
func TestGatewayBatchSurvivesKilledShard(t *testing.T) {
	cfg := synth.DS2Like(45, 5)
	cfg.MissingFrac = 0.08
	sp, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := testcluster.Start(testcluster.Config{
		Matrix:  sp.Matrix,
		Shards:  3,
		Workers: 1,
		GatewayOptions: tivshard.Options{
			Retry:         tivshard.RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond},
			ProbeInterval: 20 * time.Millisecond,
			ProbeTimeout:  time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	mono, err := c.NewMonolith()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	c.KillShard(1)
	assertBatchAgreement(t, mono, c.Gateway)

	c.KillShard(0)
	c.KillShard(2)
	res, err := c.Gateway.QueryBatch(ctx, batchQueries(c.Matrix.N())[:6])
	if err != nil {
		t.Fatalf("batch call against a dead cluster should degrade per query, got call error %v", err)
	}
	for i, r := range res {
		if r.Err == nil {
			t.Errorf("query %d answered with every replica dead: %+v", i, r)
			continue
		}
		if !tivclient.IsRetryable(r.Err) {
			t.Errorf("query %d: dead-cluster error %v is not retryable", i, r.Err)
		}
	}

	// Restart everything and let the prober readmit the reborn
	// shards; no updates ran, so the pristine replicas are
	// bit-identical to the monolith and agreement must return whole.
	for s := 0; s < 3; s++ {
		if err := c.RestartShard(s); err != nil {
			t.Fatal(err)
		}
	}
	waitStatus(t, c.Gateway, "ok", 10*time.Second)
	assertBatchAgreement(t, mono, c.Gateway)
}
