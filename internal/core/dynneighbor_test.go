package core

import (
	"testing"

	"tivaware/internal/stats"
	"tivaware/internal/synth"
	"tivaware/internal/tiv"
	"tivaware/internal/vivaldi"
)

func TestRunDynamicNeighborValidation(t *testing.T) {
	sp, err := synth.Generate(synth.DS2Like(20, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := RunDynamicNeighbor(sp.Matrix, vivaldi.Config{}, DynamicNeighborConfig{Iterations: -1}); err == nil {
		t.Error("negative iterations should error")
	}
	if _, _, err := RunDynamicNeighbor(sp.Matrix, vivaldi.Config{}, DynamicNeighborConfig{PeriodSeconds: -5}); err == nil {
		t.Error("negative period should error")
	}
	if _, _, err := RunDynamicNeighbor(sp.Matrix, vivaldi.Config{},
		DynamicNeighborConfig{Iterations: 2, SnapshotIters: []int{5}}); err == nil {
		t.Error("snapshot beyond iterations should error")
	}
}

func TestRunDynamicNeighborSnapshots(t *testing.T) {
	sp, err := synth.Generate(synth.DS2Like(60, 2))
	if err != nil {
		t.Fatal(err)
	}
	snaps, sys, err := RunDynamicNeighbor(sp.Matrix,
		vivaldi.Config{Seed: 3, Neighbors: 8},
		DynamicNeighborConfig{Iterations: 2, PeriodSeconds: 40, SampleSize: 8, SnapshotIters: []int{0, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if sys == nil {
		t.Fatal("nil system")
	}
	if len(snaps) != 3 {
		t.Fatalf("got %d snapshots", len(snaps))
	}
	for k, s := range snaps {
		if s.Iteration != k {
			t.Errorf("snapshot %d has iteration %d", k, s.Iteration)
		}
		if len(s.Neighbors) != 60 || len(s.Coords) != 60 {
			t.Fatalf("snapshot %d shape wrong", k)
		}
		// Neighbor set size stays at the configured count.
		for i, nb := range s.Neighbors {
			if len(nb) != 8 {
				t.Fatalf("snapshot %d node %d has %d neighbors", k, i, len(nb))
			}
		}
		p := s.Predictor()
		if p.Predict(0, 0) != 0 || p.Predict(0, 1) <= 0 {
			t.Error("snapshot predictor broken")
		}
		if p.Predict(0, 1) != p.Predict(1, 0) {
			t.Error("snapshot predictor asymmetric")
		}
	}
}

func TestDynamicNeighborReducesNeighborSeverity(t *testing.T) {
	// Fig 22's claim: iterating the neighbor update drives down the
	// TIV severity of the edges Vivaldi probes.
	sp, err := synth.Generate(synth.DS2Like(150, 4))
	if err != nil {
		t.Fatal(err)
	}
	sev := tiv.AllSeverities(sp.Matrix, tiv.Options{})
	snaps, _, err := RunDynamicNeighbor(sp.Matrix,
		vivaldi.Config{Seed: 5, Neighbors: 16},
		DynamicNeighborConfig{Iterations: 5, PeriodSeconds: 60, SampleSize: 16, SnapshotIters: []int{0, 5}})
	if err != nil {
		t.Fatal(err)
	}
	sevOf := func(snap DynamicNeighborSnapshot) float64 {
		vals := NeighborEdgeValues(snap.Neighbors, func(i, j int) float64 { return sev.At(i, j) })
		return stats.Summarize(vals).Mean
	}
	before, after := sevOf(snaps[0]), sevOf(snaps[1])
	if after >= before {
		t.Errorf("neighbor severity did not drop: %.4f -> %.4f", before, after)
	}
}

func TestNeighborEdgeValues(t *testing.T) {
	vals := NeighborEdgeValues([][]int{{1, 2}, {0}}, func(i, j int) float64 {
		return float64(i*10 + j)
	})
	want := []float64{1, 2, 10}
	if len(vals) != 3 {
		t.Fatalf("got %v", vals)
	}
	for k := range want {
		if vals[k] != want[k] {
			t.Fatalf("vals = %v, want %v", vals, want)
		}
	}
}
