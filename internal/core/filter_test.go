package core

import (
	"testing"

	"tivaware/internal/meridian"
	"tivaware/internal/nsim"
	"tivaware/internal/synth"
	"tivaware/internal/tiv"
	"tivaware/internal/vivaldi"
)

func TestNewSeverityFilter(t *testing.T) {
	sp, err := synth.Generate(synth.DS2Like(40, 1))
	if err != nil {
		t.Fatal(err)
	}
	sev := tiv.AllSeverities(sp.Matrix, tiv.Options{})
	f, err := NewSeverityFilter(sev, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	// The filter takes up to 20% of edges but never zero-severity
	// ones.
	maxLen := int(float64(40*39/2) * 0.2)
	positive := 0
	for _, v := range sev.Values() {
		if v > 0 {
			positive++
		}
	}
	wantLen := maxLen
	if positive < wantLen {
		wantLen = positive
	}
	if f.Len() != wantLen {
		t.Errorf("Len = %d, want %d (cap %d, positive %d)", f.Len(), wantLen, maxLen, positive)
	}
	// Excluded must be symmetric.
	count := 0
	sp.Matrix.EachEdge(func(i, j int, d float64) bool {
		if f.Excluded(i, j) {
			count++
			if !f.Excluded(j, i) {
				t.Fatal("Excluded not symmetric")
			}
		}
		return true
	})
	if count != f.Len() {
		t.Errorf("counted %d excluded edges, want %d", count, f.Len())
	}
	if _, err := NewSeverityFilter(sev, 0); err == nil {
		t.Error("zero fraction should error")
	}
	if _, err := NewSeverityFilter(sev, 1.5); err == nil {
		t.Error("fraction > 1 should error")
	}
}

func TestFilterSelectsMostSevere(t *testing.T) {
	sp, err := synth.Generate(synth.DS2Like(60, 2))
	if err != nil {
		t.Fatal(err)
	}
	sev := tiv.AllSeverities(sp.Matrix, tiv.Options{})
	f, err := NewSeverityFilter(sev, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// Every excluded edge must have severity >= every kept edge.
	var minExcluded, maxKept float64
	minExcluded = 1e18
	sp.Matrix.EachEdge(func(i, j int, d float64) bool {
		s := sev.At(i, j)
		if f.Excluded(i, j) {
			if s < minExcluded {
				minExcluded = s
			}
		} else if s > maxKept {
			maxKept = s
		}
		return true
	})
	if minExcluded < maxKept {
		t.Errorf("filter kept an edge (sev %.4f) worse than an excluded one (sev %.4f)", maxKept, minExcluded)
	}
}

func TestFilteredNeighbors(t *testing.T) {
	sp, err := synth.Generate(synth.DS2Like(50, 3))
	if err != nil {
		t.Fatal(err)
	}
	sev := tiv.AllSeverities(sp.Matrix, tiv.Options{})
	f, err := NewSeverityFilter(sev, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	nb, err := FilteredNeighbors(sp.Matrix, f, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(nb) != 50 {
		t.Fatalf("got %d lists", len(nb))
	}
	for i, list := range nb {
		if len(list) != 8 {
			t.Fatalf("node %d has %d neighbors", i, len(list))
		}
		for _, j := range list {
			if f.Excluded(i, j) {
				t.Fatalf("excluded edge (%d,%d) used as neighbor", i, j)
			}
			if j == i {
				t.Fatal("self neighbor")
			}
		}
	}
	if _, err := FilteredNeighbors(sp.Matrix, f, 0, 1); err == nil {
		t.Error("k=0 should error")
	}
}

func TestFilteredNeighborsFeedVivaldi(t *testing.T) {
	sp, err := synth.Generate(synth.DS2Like(40, 5))
	if err != nil {
		t.Fatal(err)
	}
	sev := tiv.AllSeverities(sp.Matrix, tiv.Options{})
	f, err := NewSeverityFilter(sev, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	nb, err := FilteredNeighbors(sp.Matrix, f, 8, 6)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := vivaldi.NewSystemWithNeighbors(sp.Matrix, vivaldi.Config{Seed: 7}, nb)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(30)
	if sys.Ticks() != 30 {
		t.Error("filtered system did not run")
	}
}

func TestExcludeEdgeFuncUnderpopulatesRings(t *testing.T) {
	// §4.3's observation: filtering severe edges starves Meridian
	// rings. Total ring membership must strictly shrink.
	sp, err := synth.Generate(synth.DS2Like(60, 8))
	if err != nil {
		t.Fatal(err)
	}
	sev := tiv.AllSeverities(sp.Matrix, tiv.Options{})
	f, err := NewSeverityFilter(sev, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	prober, err := nsim.NewMatrixProber(sp.Matrix, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]int, 30)
	for i := range ids {
		ids[i] = i
	}
	plain, err := meridian.Build(prober, ids, meridian.Config{K: -1, Seed: 10}, meridian.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	filtered, err := meridian.Build(prober, ids, meridian.Config{K: -1, Seed: 10},
		meridian.BuildOptions{ExcludeEdge: f.ExcludeEdgeFunc()})
	if err != nil {
		t.Fatal(err)
	}
	total := func(s *meridian.System) int {
		sum := 0
		for _, id := range s.IDs() {
			for _, occ := range s.RingOccupancy(id) {
				sum += occ
			}
		}
		return sum
	}
	tp, tf := total(plain), total(filtered)
	if tf >= tp {
		t.Errorf("filtered rings not smaller: %d vs %d", tf, tp)
	}
}

func TestVivaldiPredictAndSnapshotPredict(t *testing.T) {
	sp, err := synth.Generate(synth.DS2Like(30, 11))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := vivaldi.NewSystem(sp.Matrix, vivaldi.Config{Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(50)
	live := VivaldiPredict(sys)
	if d, ok := live(3, 3); !ok || d != 0 {
		t.Errorf("self predict = %g, %v", d, ok)
	}
	d1, ok := live(0, 1)
	if !ok || d1 <= 0 {
		t.Errorf("predict = %g, %v", d1, ok)
	}
	snap := SnapshotPredict(sys.Snapshot())
	d2, ok := snap(0, 1)
	if !ok || d2 != d1 {
		t.Errorf("snapshot predict %g != live %g", d2, d1)
	}
}
