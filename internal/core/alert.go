// Package core implements the paper's contribution: the TIV alert
// mechanism (§5.1) and its applications — dynamic-neighbor Vivaldi
// (§5.2), TIV-aware Meridian (§5.3) — plus the severity-filter
// strawman (§4.3) and the percentage-penalty evaluation methodology
// (§4.1) shared by every neighbor-selection experiment.
//
// The alert mechanism rests on one observation: when a delay space
// with TIVs is embedded into a metric space, edges that cause severe
// violations get shrunk — their prediction ratio predicted/measured
// falls well below 1, because the optimizer sacrifices them to
// preserve the many shorter alternative paths. The ratio therefore
// serves as a cheap, fully decentralized alarm for "this edge is
// probably involved in severe TIVs", without ever computing severities
// globally.
package core

import (
	"fmt"
	"math"
	"sort"

	"tivaware/internal/delayspace"
	"tivaware/internal/tiv"
)

// Predictor estimates the delay between two nodes; vivaldi.System,
// lat.Predictor and ides.System all satisfy it.
type Predictor interface {
	Predict(i, j int) float64
}

// EdgeRatio pairs an edge with its prediction ratio
// predicted/measured.
type EdgeRatio struct {
	I, J  int
	Ratio float64
}

// PredictionRatios computes the prediction ratio of every measured
// edge of m under the given predictor. Edges with zero measured delay
// are skipped.
func PredictionRatios(m *delayspace.Matrix, p Predictor) []EdgeRatio {
	out := make([]EdgeRatio, 0, m.N()*(m.N()-1)/2)
	m.EachEdge(func(i, j int, d float64) bool {
		if d > 0 {
			out = append(out, EdgeRatio{I: i, J: j, Ratio: p.Predict(i, j) / d})
		}
		return true
	})
	return out
}

// Alerted returns the edges whose prediction ratio is at or below the
// alert threshold — the edges the mechanism flags as likely severe
// TIV causers.
func Alerted(ratios []EdgeRatio, threshold float64) []EdgeRatio {
	var out []EdgeRatio
	for _, r := range ratios {
		if r.Ratio <= threshold {
			out = append(out, r)
		}
	}
	return out
}

// AlertQuality is the accuracy/recall pair of Figures 20 and 21 for
// one (threshold, worst-fraction) setting.
type AlertQuality struct {
	Threshold float64
	WorstFrac float64
	// Alerts is the number of edges flagged.
	Alerts int
	// Accuracy is the fraction of flagged edges that truly belong to
	// the worst WorstFrac of edges by TIV severity.
	Accuracy float64
	// Recall is the fraction of the worst edges that were flagged.
	Recall float64
}

// EvaluateAlert measures how well the ratio threshold identifies the
// worst worstFrac edges by true severity. It returns an error when
// inputs are empty or the fraction is out of range.
func EvaluateAlert(sev *tiv.EdgeSeverities, ratios []EdgeRatio, threshold, worstFrac float64) (AlertQuality, error) {
	if len(ratios) == 0 {
		return AlertQuality{}, fmt.Errorf("core: no ratios to evaluate")
	}
	if worstFrac <= 0 || worstFrac > 1 {
		return AlertQuality{}, fmt.Errorf("core: worst fraction %g outside (0,1]", worstFrac)
	}
	worst := sev.WorstEdges(worstFrac)
	isWorst := make(map[[2]int]bool, len(worst))
	for _, e := range worst {
		isWorst[[2]int{e.I, e.J}] = true
	}
	q := AlertQuality{Threshold: threshold, WorstFrac: worstFrac}
	hits := 0
	for _, r := range ratios {
		if r.Ratio > threshold {
			continue
		}
		q.Alerts++
		key := [2]int{r.I, r.J}
		if r.I > r.J {
			key = [2]int{r.J, r.I}
		}
		if isWorst[key] {
			hits++
		}
	}
	if q.Alerts > 0 {
		q.Accuracy = float64(hits) / float64(q.Alerts)
	}
	if len(worst) > 0 {
		q.Recall = float64(hits) / float64(len(worst))
	}
	return q, nil
}

// RatioSeverityBins groups edges into prediction-ratio bins of the
// given width and returns, per bin, the severity distribution — the
// data behind Figure 19. Bins are returned in ascending ratio order.
func RatioSeverityBins(sev *tiv.EdgeSeverities, ratios []EdgeRatio, width, maxRatio float64) ([]RatioBin, error) {
	if width <= 0 || maxRatio <= 0 {
		return nil, fmt.Errorf("core: invalid bin width %g or max %g", width, maxRatio)
	}
	nBins := int(math.Ceil(maxRatio / width))
	bins := make([][]float64, nBins)
	for _, r := range ratios {
		idx := int(r.Ratio / width)
		if idx < 0 {
			continue
		}
		if idx >= nBins {
			idx = nBins - 1
		}
		bins[idx] = append(bins[idx], sev.At(r.I, r.J))
	}
	out := make([]RatioBin, 0, nBins)
	for k, vals := range bins {
		if len(vals) == 0 {
			continue
		}
		sort.Float64s(vals)
		out = append(out, RatioBin{
			Lo:     float64(k) * width,
			Hi:     float64(k+1) * width,
			N:      len(vals),
			P10:    percentile(vals, 0.10),
			Median: percentile(vals, 0.50),
			P90:    percentile(vals, 0.90),
		})
	}
	return out, nil
}

// RatioBin summarizes TIV severity within one prediction-ratio bin.
type RatioBin struct {
	Lo, Hi           float64
	N                int
	P10, Median, P90 float64
}

// percentile duplicates stats.Percentile for sorted input; core avoids
// importing stats to keep the dependency graph acyclic with the
// experiment layer.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
