package core

import (
	"math"
	"testing"

	"tivaware/internal/synth"
	"tivaware/internal/tiv"
	"tivaware/internal/vivaldi"
)

// convergedSpace builds a DS2-like space with a converged Vivaldi
// embedding and exact severities — the shared fixture for alert tests.
func convergedSpace(t testing.TB, n int, seed int64) (*synth.Space, *vivaldi.System, *tiv.EdgeSeverities) {
	t.Helper()
	sp, err := synth.Generate(synth.DS2Like(n, seed))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := vivaldi.NewSystem(sp.Matrix, vivaldi.Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(120)
	sev := tiv.AllSeverities(sp.Matrix, tiv.Options{})
	return sp, sys, sev
}

func TestPredictionRatios(t *testing.T) {
	sp, sys, _ := convergedSpace(t, 40, 1)
	ratios := PredictionRatios(sp.Matrix, sys)
	if len(ratios) != 40*39/2 {
		t.Fatalf("got %d ratios", len(ratios))
	}
	for _, r := range ratios {
		if r.Ratio < 0 || math.IsNaN(r.Ratio) || math.IsInf(r.Ratio, 0) {
			t.Fatalf("bad ratio %+v", r)
		}
	}
}

func TestAlerted(t *testing.T) {
	ratios := []EdgeRatio{{0, 1, 0.3}, {0, 2, 0.9}, {1, 2, 0.6}}
	got := Alerted(ratios, 0.6)
	if len(got) != 2 {
		t.Fatalf("Alerted = %v", got)
	}
}

func TestEvaluateAlertExact(t *testing.T) {
	// Hand-built: 3-node severities with edge (0,2) the worst, and
	// ratios flagging exactly that edge.
	sp, _, _ := convergedSpace(t, 30, 2)
	sev := tiv.AllSeverities(sp.Matrix, tiv.Options{})
	worst := sev.WorstEdges(0.1)
	// Flag exactly the worst edges: accuracy and recall must be 1.
	var ratios []EdgeRatio
	flagged := map[[2]int]bool{}
	for _, e := range worst {
		ratios = append(ratios, EdgeRatio{I: e.I, J: e.J, Ratio: 0.1})
		flagged[[2]int{e.I, e.J}] = true
	}
	sp.Matrix.EachEdge(func(i, j int, d float64) bool {
		if !flagged[[2]int{i, j}] {
			ratios = append(ratios, EdgeRatio{I: i, J: j, Ratio: 1.0})
		}
		return true
	})
	q, err := EvaluateAlert(sev, ratios, 0.5, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if q.Accuracy != 1 || q.Recall != 1 {
		t.Errorf("perfect alert scored accuracy=%g recall=%g", q.Accuracy, q.Recall)
	}
	if q.Alerts != len(worst) {
		t.Errorf("Alerts = %d, want %d", q.Alerts, len(worst))
	}
}

func TestEvaluateAlertErrors(t *testing.T) {
	_, _, sev := convergedSpace(t, 20, 3)
	if _, err := EvaluateAlert(sev, nil, 0.5, 0.1); err == nil {
		t.Error("empty ratios should error")
	}
	if _, err := EvaluateAlert(sev, []EdgeRatio{{0, 1, 1}}, 0.5, 0); err == nil {
		t.Error("zero fraction should error")
	}
	if _, err := EvaluateAlert(sev, []EdgeRatio{{0, 1, 1}}, 0.5, 1.1); err == nil {
		t.Error("fraction > 1 should error")
	}
}

func TestAlertRecallMonotoneInThreshold(t *testing.T) {
	// Fig 21's essential shape: relaxing the threshold can only flag
	// more edges, so recall is non-decreasing.
	sp, sys, sev := convergedSpace(t, 80, 4)
	ratios := PredictionRatios(sp.Matrix, sys)
	prev := -1.0
	for _, th := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		q, err := EvaluateAlert(sev, ratios, th, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		if q.Recall < prev {
			t.Fatalf("recall decreased at threshold %g", th)
		}
		prev = q.Recall
	}
}

func TestAlertAccuracyHighAtTightThreshold(t *testing.T) {
	// Fig 20's headline: a tight threshold flags few edges but almost
	// all of them are truly severe.
	sp, sys, sev := convergedSpace(t, 150, 5)
	ratios := PredictionRatios(sp.Matrix, sys)
	tight, err := EvaluateAlert(sev, ratios, 0.3, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if tight.Alerts == 0 {
		t.Skip("no alerts at tight threshold for this seed")
	}
	if tight.Accuracy < 0.6 {
		t.Errorf("tight-threshold accuracy %.2f; expected high", tight.Accuracy)
	}
	loose, err := EvaluateAlert(sev, ratios, 0.9, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if loose.Recall <= tight.Recall {
		t.Errorf("loose recall %.2f not above tight recall %.2f", loose.Recall, tight.Recall)
	}
}

func TestRatioSeverityBins(t *testing.T) {
	sp, sys, sev := convergedSpace(t, 100, 6)
	ratios := PredictionRatios(sp.Matrix, sys)
	bins, err := RatioSeverityBins(sev, ratios, 0.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) == 0 {
		t.Fatal("no bins")
	}
	total := 0
	for _, b := range bins {
		total += b.N
		if b.P10 > b.Median || b.Median > b.P90 {
			t.Fatalf("bin percentiles out of order: %+v", b)
		}
		if b.Lo >= b.Hi {
			t.Fatalf("bin bounds: %+v", b)
		}
	}
	if total != len(ratios) {
		t.Errorf("binned %d of %d ratios", total, len(ratios))
	}
	// Fig 19's shape: the lowest-ratio bins should carry higher median
	// severity than the bins around ratio 1.
	var lowSev, midSev float64
	var haveLow, haveMid bool
	for _, b := range bins {
		if !haveLow && b.Hi <= 0.7 && b.N >= 3 {
			lowSev, haveLow = b.Median, true
		}
		if !haveMid && b.Lo >= 0.9 && b.Hi <= 1.1 && b.N >= 3 {
			midSev, haveMid = b.Median, true
		}
	}
	if haveLow && haveMid && lowSev <= midSev {
		t.Errorf("shrunk edges (sev %.3f) not more severe than ratio≈1 edges (sev %.3f)", lowSev, midSev)
	}
}

func TestRatioSeverityBinsErrors(t *testing.T) {
	_, _, sev := convergedSpace(t, 20, 7)
	if _, err := RatioSeverityBins(sev, nil, 0, 5); err == nil {
		t.Error("zero width should error")
	}
	if _, err := RatioSeverityBins(sev, nil, 0.1, 0); err == nil {
		t.Error("zero max should error")
	}
}
