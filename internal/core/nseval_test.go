package core

import (
	"testing"

	"tivaware/internal/delayspace"
	"tivaware/internal/meridian"
	"tivaware/internal/nsim"
	"tivaware/internal/synth"
)

// perfectPredictor predicts the true delay.
type perfectPredictor struct{ m *delayspace.Matrix }

func (p perfectPredictor) Predict(i, j int) float64 {
	if i == j {
		return 0
	}
	return p.m.At(i, j)
}

// worstPredictor inverts distances, always picking badly.
type worstPredictor struct{ m *delayspace.Matrix }

func (p worstPredictor) Predict(i, j int) float64 {
	if i == j {
		return 0
	}
	return -p.m.At(i, j)
}

func TestPercentagePenaltiesPerfect(t *testing.T) {
	m := synth.Euclidean(50, 300, 1)
	cands, clients := SplitNodes(50, 10, 2)
	pen, err := PercentagePenalties(m, perfectPredictor{m}, cands, clients)
	if err != nil {
		t.Fatal(err)
	}
	if len(pen) != len(clients) {
		t.Fatalf("got %d penalties for %d clients", len(pen), len(clients))
	}
	for _, p := range pen {
		if p != 0 {
			t.Fatalf("perfect predictor incurred penalty %g", p)
		}
	}
}

func TestPercentagePenaltiesWorst(t *testing.T) {
	m := synth.Euclidean(50, 300, 3)
	cands, clients := SplitNodes(50, 10, 4)
	pen, err := PercentagePenalties(m, worstPredictor{m}, cands, clients)
	if err != nil {
		t.Fatal(err)
	}
	var positive int
	for _, p := range pen {
		if p < 0 {
			t.Fatalf("negative penalty %g", p)
		}
		if p > 0 {
			positive++
		}
	}
	if positive < len(pen)/2 {
		t.Errorf("worst predictor rarely penalized: %d of %d", positive, len(pen))
	}
}

func TestPercentagePenaltiesErrors(t *testing.T) {
	m := synth.Euclidean(10, 200, 5)
	if _, err := PercentagePenalties(m, perfectPredictor{m}, nil, []int{1}); err == nil {
		t.Error("no candidates should error")
	}
	if _, err := PercentagePenalties(m, perfectPredictor{m}, []int{0}, nil); err == nil {
		t.Error("no clients should error")
	}
}

func TestPercentagePenaltiesSkipsClientInCandidates(t *testing.T) {
	m := synth.Euclidean(10, 200, 6)
	// Client 3 also appears among candidates; it must not select
	// itself (delay 0 would be a degenerate optimum).
	pen, err := PercentagePenalties(m, perfectPredictor{m}, []int{3, 4, 5}, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	if len(pen) != 1 || pen[0] != 0 {
		t.Errorf("penalties = %v", pen)
	}
}

func TestSplitNodes(t *testing.T) {
	subset, rest := SplitNodes(20, 5, 7)
	if len(subset) != 5 || len(rest) != 15 {
		t.Fatalf("sizes %d/%d", len(subset), len(rest))
	}
	seen := map[int]bool{}
	for _, v := range append(append([]int{}, subset...), rest...) {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("bad partition")
		}
		seen[v] = true
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for bad size")
		}
	}()
	SplitNodes(5, 5, 1)
}

func TestMeridianPenalties(t *testing.T) {
	m := synth.Euclidean(60, 300, 8)
	prober, err := nsim.NewMatrixProber(m, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	mIDs, clients := SplitNodes(60, 30, 10)
	sys, err := meridian.Build(prober, mIDs, meridian.Config{K: -1, Seed: 11}, meridian.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	prober.ResetProbes()
	run, err := MeridianPenalties(m, sys, clients, meridian.QueryOptions{NoTermination: true}, 12)
	if err != nil {
		t.Fatal(err)
	}
	if run.Failures > 0 {
		t.Errorf("%d failures on a complete matrix", run.Failures)
	}
	if len(run.Penalties) != len(clients) {
		t.Fatalf("%d penalties for %d clients", len(run.Penalties), len(clients))
	}
	if run.QueryProbes <= 0 {
		t.Error("no probes counted")
	}
	// On metric data with ideal settings nearly all penalties are 0.
	zero := 0
	for _, p := range run.Penalties {
		if p < 0 {
			t.Fatalf("negative penalty %g", p)
		}
		if p == 0 {
			zero++
		}
	}
	if float64(zero)/float64(len(run.Penalties)) < 0.85 {
		t.Errorf("only %d/%d optimal selections on metric data", zero, len(run.Penalties))
	}
}

func TestMeridianPenaltiesNoClients(t *testing.T) {
	m := synth.Euclidean(10, 200, 13)
	prober, err := nsim.NewMatrixProber(m, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := meridian.Build(prober, []int{0, 1, 2}, meridian.Config{}, meridian.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MeridianPenalties(m, sys, nil, meridian.QueryOptions{}, 1); err == nil {
		t.Error("expected error")
	}
}

func TestMeridianPenaltiesTargetIsMeridianNode(t *testing.T) {
	// When a client is itself a Meridian node the optimum is 0;
	// penalties must stay finite.
	m := synth.Euclidean(20, 200, 14)
	prober, err := nsim.NewMatrixProber(m, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	ids := []int{0, 1, 2, 3, 4, 5, 6, 7}
	sys, err := meridian.Build(prober, ids, meridian.Config{K: -1, Seed: 3}, meridian.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	run, err := MeridianPenalties(m, sys, []int{3}, meridian.QueryOptions{NoTermination: true}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range run.Penalties {
		if p < 0 {
			t.Fatalf("negative penalty %g", p)
		}
	}
}
