package core

import (
	"fmt"

	"tivaware/internal/delayspace"
	"tivaware/internal/vivaldi"
)

// DynamicNeighborConfig tunes dynamic-neighbor Vivaldi (§5.2), the
// paper's first application of the TIV alert mechanism.
type DynamicNeighborConfig struct {
	// Iterations is how many neighbor-update rounds to run.
	Iterations int
	// PeriodSeconds is the simulated time T between updates; the
	// paper uses 100 s so coordinates converge each round. Zero means
	// 100.
	PeriodSeconds int
	// SampleSize is how many fresh random candidates each node adds
	// before re-ranking; the paper samples 32 (doubling the 32-strong
	// neighbor set to 64 candidates). Zero means the system's
	// configured neighbor count.
	SampleSize int
	// SnapshotIters lists iteration numbers (0 = the initial random
	// neighbors) whose state should be captured for evaluation; the
	// paper reports iterations 0, 1, 2, 5 and 10.
	SnapshotIters []int
}

// DynamicNeighborSnapshot captures the system state after a given
// iteration.
type DynamicNeighborSnapshot struct {
	// Iteration is 0 for the initial random-neighbor state.
	Iteration int
	// Neighbors is each node's probing neighbor set at that point.
	Neighbors [][]int
	// Coords is the coordinate snapshot (used to build predictors).
	Coords []vivaldi.Coord
}

// Predictor returns a delay predictor backed by the snapshot's
// coordinates.
func (s *DynamicNeighborSnapshot) Predictor() Predictor {
	return snapshotPredictor(s.Coords)
}

type snapshotPredictor []vivaldi.Coord

func (p snapshotPredictor) Predict(i, j int) float64 {
	if i == j {
		return 0
	}
	if i > j {
		i, j = j, i
	}
	return vivaldi.Dist(p[i], p[j])
}

// RunDynamicNeighbor runs dynamic-neighbor Vivaldi over m:
//
//  1. run plain Vivaldi for one period with random neighbors,
//  2. each iteration, every node samples SampleSize fresh candidates,
//     ranks its combined candidate set by prediction ratio
//     (predicted/measured) under the current coordinates, drops the
//     half with the smallest ratios (the shrunk, TIV-suspect edges),
//     keeps the rest as its new neighbor set, and
//  3. runs Vivaldi for another period to re-converge.
//
// Snapshots are captured after the initial period (iteration 0) and
// after each requested iteration.
func RunDynamicNeighbor(m *delayspace.Matrix, vcfg vivaldi.Config, dcfg DynamicNeighborConfig) ([]DynamicNeighborSnapshot, *vivaldi.System, error) {
	if dcfg.Iterations < 0 {
		return nil, nil, fmt.Errorf("core: negative iterations %d", dcfg.Iterations)
	}
	period := dcfg.PeriodSeconds
	if period == 0 {
		period = 100
	}
	if period < 0 {
		return nil, nil, fmt.Errorf("core: negative period %d", period)
	}
	sys, err := vivaldi.NewSystem(m, vcfg)
	if err != nil {
		return nil, nil, err
	}
	want := make(map[int]bool, len(dcfg.SnapshotIters))
	for _, it := range dcfg.SnapshotIters {
		if it < 0 || it > dcfg.Iterations {
			return nil, nil, fmt.Errorf("core: snapshot iteration %d outside [0,%d]", it, dcfg.Iterations)
		}
		want[it] = true
	}

	var snaps []DynamicNeighborSnapshot
	capture := func(iter int) {
		if !want[iter] {
			return
		}
		nb := make([][]int, sys.N())
		for i := range nb {
			nb[i] = sys.Neighbors(i)
		}
		snaps = append(snaps, DynamicNeighborSnapshot{
			Iteration: iter,
			Neighbors: nb,
			Coords:    sys.Snapshot(),
		})
	}

	sys.Run(period)
	capture(0)

	sample := dcfg.SampleSize
	if sample == 0 {
		sample = vcfg.Neighbors
	}
	if sample == 0 {
		sample = 32
	}

	for iter := 1; iter <= dcfg.Iterations; iter++ {
		for i := 0; i < sys.N(); i++ {
			current := sys.Neighbors(i)
			fresh := sys.SampleAdditionalNeighbors(i, sample)
			candidates := append(current, fresh...)
			keep := len(candidates) / 2
			if keep == 0 {
				continue
			}
			ranked := rankByRatioDesc(sys, i, candidates)
			if err := sys.SetNeighbors(i, ranked[:keep]); err != nil {
				return nil, nil, fmt.Errorf("core: iteration %d: %w", iter, err)
			}
		}
		sys.Run(period)
		capture(iter)
	}
	return snaps, sys, nil
}

// rankByRatioDesc orders candidate neighbors of node i by prediction
// ratio, largest first, so truncating keeps the least-shrunk (least
// TIV-suspect) edges.
func rankByRatioDesc(sys *vivaldi.System, i int, candidates []int) []int {
	type cand struct {
		id    int
		ratio float64
	}
	cs := make([]cand, 0, len(candidates))
	for _, j := range candidates {
		r, ok := sys.PredictionRatio(i, j)
		if !ok {
			continue
		}
		cs = append(cs, cand{id: j, ratio: r})
	}
	// Insertion sort by descending ratio with id tiebreak: candidate
	// lists are ~64 long, and determinism matters more than big-O.
	for a := 1; a < len(cs); a++ {
		for b := a; b > 0; b-- {
			if cs[b].ratio > cs[b-1].ratio ||
				(cs[b].ratio == cs[b-1].ratio && cs[b].id < cs[b-1].id) {
				cs[b], cs[b-1] = cs[b-1], cs[b]
			} else {
				break
			}
		}
	}
	out := make([]int, len(cs))
	for k, c := range cs {
		out[k] = c.id
	}
	return out
}

// NeighborEdgeValues applies fn to every (node, neighbor) edge in a
// neighbor assignment and collects the results — used to build the
// Fig 22 CDFs of neighbor-edge TIV severity per iteration.
func NeighborEdgeValues(neighbors [][]int, fn func(i, j int) float64) []float64 {
	var out []float64
	for i, nb := range neighbors {
		for _, j := range nb {
			out = append(out, fn(i, j))
		}
	}
	return out
}
