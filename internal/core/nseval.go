package core

import (
	"fmt"
	"math"
	"math/rand"

	"tivaware/internal/delayspace"
	"tivaware/internal/meridian"
)

// PercentagePenalties runs the paper's closest-neighbor-selection
// evaluation (§4.1) for a prediction-based mechanism: every client
// picks, among the candidates, the one its predictor says is closest,
// and the penalty is
//
//	(delay_to_selected − delay_to_optimal) × 100 / delay_to_optimal
//
// measured on the true delays. Clients without a measured candidate
// are skipped. The returned slice holds one penalty per evaluated
// client.
func PercentagePenalties(m *delayspace.Matrix, p Predictor, candidates, clients []int) ([]float64, error) {
	if len(candidates) == 0 || len(clients) == 0 {
		return nil, fmt.Errorf("core: %d candidates, %d clients", len(candidates), len(clients))
	}
	out := make([]float64, 0, len(clients))
	for _, c := range clients {
		selected, optimal := -1, -1
		selPred := math.Inf(1)
		optDelay := math.Inf(1)
		for _, cand := range candidates {
			if cand == c || !m.Has(c, cand) {
				continue
			}
			if pd := p.Predict(c, cand); pd < selPred {
				selPred = pd
				selected = cand
			}
			if d := m.At(c, cand); d < optDelay {
				optDelay = d
				optimal = cand
			}
		}
		if selected < 0 || optimal < 0 || optDelay <= 0 {
			continue
		}
		out = append(out, (m.At(c, selected)-optDelay)*100/optDelay)
	}
	return out, nil
}

// MeridianRun is the outcome of evaluating Meridian-based selection
// over a set of clients.
type MeridianRun struct {
	// Penalties holds one percentage penalty per evaluated client.
	Penalties []float64
	// QueryProbes is the total number of on-demand probes spent.
	QueryProbes int
	// Failures counts clients whose query errored (e.g. unmeasurable
	// start-target pair).
	Failures int
}

// MeridianPenalties evaluates closest-neighbor selection through a
// built Meridian overlay: each client is a query target starting at a
// random Meridian node; the penalty compares the returned node's true
// delay against the best Meridian node for that client.
func MeridianPenalties(m *delayspace.Matrix, sys *meridian.System, clients []int, opts meridian.QueryOptions, seed int64) (MeridianRun, error) {
	if len(clients) == 0 {
		return MeridianRun{}, fmt.Errorf("core: no clients")
	}
	rng := rand.New(rand.NewSource(seed))
	ids := sys.IDs()
	var run MeridianRun
	for _, c := range clients {
		start := ids[rng.Intn(len(ids))]
		res, err := sys.ClosestTo(c, start, opts)
		if err != nil {
			run.Failures++
			continue
		}
		run.QueryProbes += res.Probes
		optimal := math.Inf(1)
		for _, id := range ids {
			if id == c {
				optimal = 0
				break
			}
			if d := m.At(id, c); d != delayspace.Missing && d < optimal {
				optimal = d
			}
		}
		actual := m.At(res.Found, c)
		if res.Found == c {
			actual = 0
		}
		if math.IsInf(optimal, 1) || actual == delayspace.Missing {
			run.Failures++
			continue
		}
		if optimal <= 0 {
			// The optimum is the target itself (it is a Meridian
			// node); any non-zero answer is an infinite relative
			// penalty — record it as actual×100 against a 1 ms floor
			// to keep the CDF finite, matching how log-scale penalty
			// plots treat exact hits.
			if actual == 0 {
				run.Penalties = append(run.Penalties, 0)
			} else {
				run.Penalties = append(run.Penalties, actual*100)
			}
			continue
		}
		run.Penalties = append(run.Penalties, (actual-optimal)*100/optimal)
	}
	return run, nil
}

// SplitNodes partitions [0, n) into a random subset of the given size
// and the rest, the way the methodology splits candidates/Meridian
// nodes from clients. It panics when size is out of range.
func SplitNodes(n, size int, seed int64) (subset, rest []int) {
	if size <= 0 || size >= n {
		panic(fmt.Sprintf("core: SplitNodes size %d outside (0,%d)", size, n))
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	subset = append([]int(nil), perm[:size]...)
	rest = append([]int(nil), perm[size:]...)
	return subset, rest
}
