package core

import (
	"fmt"
	"math/rand"

	"tivaware/internal/delayspace"
	"tivaware/internal/meridian"
	"tivaware/internal/tiv"
	"tivaware/internal/vivaldi"
)

// SeverityFilter is the naive strawman of §4.3: given global severity
// knowledge, exclude the worst fraction of edges from neighbor
// probing (Vivaldi) and ring construction (Meridian).
type SeverityFilter struct {
	excluded map[[2]int]bool
}

// NewSeverityFilter marks the worst frac of edges by TIV severity.
// Edges with severity exactly zero are never excluded even when the
// fraction reaches them — they cause no violations, so removing them
// would only starve the mechanisms for no reason (on the measured
// data sets essentially every edge causes some TIV, so this guard is
// a no-op there).
func NewSeverityFilter(sev *tiv.EdgeSeverities, frac float64) (*SeverityFilter, error) {
	if frac <= 0 || frac > 1 {
		return nil, fmt.Errorf("core: filter fraction %g outside (0,1]", frac)
	}
	worst := sev.WorstEdges(frac)
	f := &SeverityFilter{excluded: make(map[[2]int]bool, len(worst))}
	for _, e := range worst {
		if e.Delay == 0 { // WorstEdges carries the severity in Delay
			break
		}
		f.excluded[[2]int{e.I, e.J}] = true
	}
	return f, nil
}

// Excluded reports whether the edge (i, j) is filtered out.
func (f *SeverityFilter) Excluded(i, j int) bool {
	if i > j {
		i, j = j, i
	}
	return f.excluded[[2]int{i, j}]
}

// Len returns the number of excluded edges.
func (f *SeverityFilter) Len() int { return len(f.excluded) }

// ExcludeEdgeFunc adapts the filter to meridian.BuildOptions.
func (f *SeverityFilter) ExcludeEdgeFunc() func(i, j int) bool {
	return f.Excluded
}

// FilteredNeighbors draws k random measured neighbors per node while
// avoiding excluded edges — the Vivaldi half of the strawman ("these
// edges are simply not used by Vivaldi probing neighbors").
func FilteredNeighbors(m *delayspace.Matrix, f *SeverityFilter, k int, seed int64) ([][]int, error) {
	if k <= 0 {
		return nil, fmt.Errorf("core: neighbor count %d must be positive", k)
	}
	n := m.N()
	rng := rand.New(rand.NewSource(seed))
	out := make([][]int, n)
	for i := 0; i < n; i++ {
		candidates := make([]int, 0, n-1)
		for j := 0; j < n; j++ {
			if j == i || !m.Has(i, j) || f.Excluded(i, j) {
				continue
			}
			candidates = append(candidates, j)
		}
		rng.Shuffle(len(candidates), func(a, b int) {
			candidates[a], candidates[b] = candidates[b], candidates[a]
		})
		kk := k
		if kk > len(candidates) {
			kk = len(candidates)
		}
		out[i] = append([]int(nil), candidates[:kk]...)
	}
	return out, nil
}

// VivaldiPredict adapts a Vivaldi system to meridian.PredictFunc so
// the overlay's TIV-aware hooks can consult the embedding, as §5.3
// assumes ("an independent network embedding mechanism, say, Vivaldi,
// provides the prediction ratios for the TIV alerts").
func VivaldiPredict(sys *vivaldi.System) meridian.PredictFunc {
	return func(i, j int) (float64, bool) {
		if i == j {
			return 0, true
		}
		return sys.Predict(i, j), true
	}
}

// SnapshotPredict adapts a coordinate snapshot to meridian.PredictFunc
// (queries should not race with a live embedding's updates).
func SnapshotPredict(coords []vivaldi.Coord) meridian.PredictFunc {
	p := snapshotPredictor(coords)
	return func(i, j int) (float64, bool) {
		return p.Predict(i, j), true
	}
}
