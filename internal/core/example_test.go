package core_test

import (
	"fmt"

	"tivaware/internal/core"
	"tivaware/internal/synth"
	"tivaware/internal/tiv"
	"tivaware/internal/vivaldi"
)

// The TIV alert pipeline (§5.1): embed a TIV-rich space, compute
// prediction ratios, and check the flagged edges against ground-truth
// severities.
func ExampleEvaluateAlert() {
	space, _ := synth.Generate(synth.DS2Like(150, 42))
	sev := tiv.AllSeverities(space.Matrix, tiv.Options{Workers: 1})

	sys, _ := vivaldi.NewSystem(space.Matrix, vivaldi.Config{Seed: 7})
	sys.Run(100)

	ratios := core.PredictionRatios(space.Matrix, sys)
	q, _ := core.EvaluateAlert(sev, ratios, 0.6, 0.05)
	fmt.Printf("alerts flagged: %v\n", q.Alerts > 0)
	fmt.Printf("accuracy and recall in range: %v\n",
		q.Accuracy >= 0 && q.Accuracy <= 1 && q.Recall >= 0 && q.Recall <= 1)
	// Output:
	// alerts flagged: true
	// accuracy and recall in range: true
}

// Dynamic-neighbor Vivaldi (§5.2): each iteration drops the
// most-shrunk (TIV-suspect) neighbor edges and re-converges.
func ExampleRunDynamicNeighbor() {
	space, _ := synth.Generate(synth.DS2Like(120, 9))
	sev := tiv.AllSeverities(space.Matrix, tiv.Options{Workers: 1})

	snaps, _, _ := core.RunDynamicNeighbor(space.Matrix,
		vivaldi.Config{Seed: 3, Neighbors: 16},
		core.DynamicNeighborConfig{Iterations: 3, SnapshotIters: []int{0, 3}})

	meanSev := func(neighbors [][]int) float64 {
		vals := core.NeighborEdgeValues(neighbors, func(i, j int) float64 {
			return sev.At(i, j)
		})
		var s float64
		for _, v := range vals {
			s += v
		}
		return s / float64(len(vals))
	}
	before := meanSev(snaps[0].Neighbors)
	after := meanSev(snaps[1].Neighbors)
	fmt.Printf("neighbor severity dropped: %v\n", after < before)
	// Output:
	// neighbor severity dropped: true
}
