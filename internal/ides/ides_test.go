package ides

import (
	"math"
	"testing"

	"tivaware/internal/delayspace"
	"tivaware/internal/stats"
	"tivaware/internal/synth"
)

func TestBuildErrors(t *testing.T) {
	m := synth.Euclidean(10, 100, 1)
	if _, err := Build(m, Config{Landmarks: 20}); err == nil {
		t.Error("more landmarks than nodes should error")
	}
	if _, err := Build(m, Config{Landmarks: 5, Dim: 9}); err == nil {
		t.Error("rank above landmark count should error")
	}
	if _, err := Build(m, Config{Method: Method(9), Landmarks: 5, Dim: 2}); err == nil {
		t.Error("unknown method should error")
	}
	// Missing landmark measurement.
	holey := delayspace.New(5)
	holey.Set(0, 1, 10) // everything else missing
	if _, err := Build(holey, Config{Landmarks: 5, Dim: 2}); err == nil {
		t.Error("unmeasured landmark pair should error")
	}
}

func TestSVDPredictsEuclidean(t *testing.T) {
	m := synth.Euclidean(80, 300, 2)
	sys, err := Build(m, Config{Landmarks: 25, Dim: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var relErrs []float64
	m.EachEdge(func(i, j int, d float64) bool {
		if d > 1 {
			relErrs = append(relErrs, math.Abs(sys.Predict(i, j)-d)/d)
		}
		return true
	})
	med := stats.Summarize(relErrs).Median
	if med > 0.25 {
		t.Errorf("median relative error %.3f on clean Euclidean data", med)
	}
}

func TestNMFPredicts(t *testing.T) {
	m := synth.Euclidean(60, 300, 4)
	sys, err := Build(m, Config{Landmarks: 20, Dim: 6, Method: NMF, Seed: 5, NMFIters: 800})
	if err != nil {
		t.Fatal(err)
	}
	var relErrs []float64
	m.EachEdge(func(i, j int, d float64) bool {
		if d > 1 {
			relErrs = append(relErrs, math.Abs(sys.Predict(i, j)-d)/d)
		}
		return true
	})
	med := stats.Summarize(relErrs).Median
	if med > 0.5 {
		t.Errorf("NMF median relative error %.3f", med)
	}
	// NMF predictions must be non-negative by construction.
	m.EachEdge(func(i, j int, d float64) bool {
		if sys.Predict(i, j) < 0 {
			t.Fatal("negative NMF prediction")
		}
		return true
	})
}

func TestPredictProperties(t *testing.T) {
	s, err := synth.Generate(synth.DS2Like(60, 6))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := Build(s.Matrix, Config{Landmarks: 20, Dim: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		if sys.Predict(i, i) != 0 {
			t.Fatal("self prediction must be 0")
		}
		for j := i + 1; j < 60; j++ {
			a, b := sys.Predict(i, j), sys.Predict(j, i)
			if a != b {
				t.Fatalf("asymmetric prediction (%d,%d): %g vs %g", i, j, a, b)
			}
			if a < 0 || math.IsNaN(a) {
				t.Fatalf("invalid prediction %g", a)
			}
		}
	}
}

func TestLandmarks(t *testing.T) {
	m := synth.Euclidean(30, 200, 8)
	sys, err := Build(m, Config{Landmarks: 10, Dim: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	lm := sys.Landmarks()
	if len(lm) != 10 {
		t.Fatalf("got %d landmarks", len(lm))
	}
	seen := map[int]bool{}
	for _, id := range lm {
		if id < 0 || id >= 30 || seen[id] {
			t.Fatalf("bad landmark set %v", lm)
		}
		seen[id] = true
	}
	// Mutating the returned slice must not corrupt the system.
	lm[0] = -1
	if sys.Landmarks()[0] == -1 {
		t.Error("Landmarks returned internal storage")
	}
}

func TestDefaults(t *testing.T) {
	var c Config
	if c.landmarks() != 20 || c.dim() != 10 {
		t.Errorf("defaults: landmarks=%d dim=%d", c.landmarks(), c.dim())
	}
	if SVD.String() != "svd" || NMF.String() != "nmf" || Method(7).String() == "" {
		t.Error("Method.String broken")
	}
}

func TestIDESCanExpressAsymmetricStructure(t *testing.T) {
	// The selling point of IDES: a delay matrix with TIVs is still
	// approximated without metric constraints. Just verify the build
	// succeeds and predictions are finite on a TIV-heavy space.
	s, err := synth.Generate(synth.MeridianLike(50, 10))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := Build(s.Matrix, Config{Landmarks: 16, Dim: 8, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	s.Matrix.EachEdge(func(i, j int, d float64) bool {
		p := sys.Predict(i, j)
		if math.IsInf(p, 0) || math.IsNaN(p) {
			t.Fatal("non-finite prediction")
		}
		if p > worst {
			worst = p
		}
		return true
	})
	if worst == 0 {
		t.Error("all predictions zero; fit failed")
	}
}
