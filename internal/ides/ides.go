// Package ides implements IDES (Internet Distance Estimation Service,
// Mao & Saul [16]), the matrix-factorization coordinate system the
// paper evaluates as a strawman TIV accommodation (§4.2, Fig 15).
//
// IDES assigns every node an outgoing and an incoming vector and
// predicts d(i, j) as the inner product xᵢ·yⱼ. Because inner products
// are not a metric, IDES is not constrained by the triangle
// inequality — yet the paper shows this does not translate into better
// neighbor selection.
//
// The construction is landmark-based, as in the original system:
//
//  1. choose L landmarks and factorize their L×L delay matrix with
//     SVD (default) or NMF,
//  2. fit every ordinary host's outgoing/incoming vectors by (non-
//     negative) least squares against its measured delays to the
//     landmarks.
package ides

import (
	"fmt"
	"math"
	"math/rand"

	"tivaware/internal/delayspace"
	"tivaware/internal/linalg"
)

// Method selects the landmark factorization algorithm.
type Method int

const (
	// SVD uses singular value decomposition (the IDES default).
	SVD Method = iota
	// NMF uses non-negative matrix factorization.
	NMF
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case SVD:
		return "svd"
	case NMF:
		return "nmf"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// Config tunes an IDES build.
type Config struct {
	// Landmarks is the number of landmark nodes. Zero means 20.
	Landmarks int
	// Dim is the factorization rank. Zero means 10, the IDES paper's
	// choice.
	Dim int
	// Method is SVD or NMF.
	Method Method
	// Seed fixes landmark choice and NMF initialization.
	Seed int64
	// NMFIters bounds NMF iterations (zero means the linalg default).
	NMFIters int
}

func (c Config) landmarks() int {
	if c.Landmarks > 0 {
		return c.Landmarks
	}
	return 20
}

func (c Config) dim() int {
	if c.Dim > 0 {
		return c.Dim
	}
	return 10
}

// System predicts pairwise delays from factorized coordinates.
type System struct {
	out [][]float64 // outgoing vectors, one per node
	in  [][]float64 // incoming vectors, one per node
	lm  []int       // landmark node ids
}

// Build constructs an IDES system over the delay matrix m. Every node
// must have measurements to all chosen landmarks; nodes with missing
// landmark delays get zero vectors (predicting 0, i.e. they are
// effectively excluded — measured data sets are nearly complete).
func Build(m *delayspace.Matrix, cfg Config) (*System, error) {
	n := m.N()
	l := cfg.landmarks()
	dim := cfg.dim()
	if l > n {
		return nil, fmt.Errorf("ides: %d landmarks for %d nodes", l, n)
	}
	if dim > l {
		return nil, fmt.Errorf("ides: rank %d exceeds landmark count %d", dim, l)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	lm := rng.Perm(n)[:l]

	// Landmark delay matrix.
	d := linalg.NewDense(l, l)
	for a := 0; a < l; a++ {
		for b := 0; b < l; b++ {
			if a == b {
				continue
			}
			v := m.At(lm[a], lm[b])
			if v == delayspace.Missing {
				return nil, fmt.Errorf("ides: landmarks %d,%d unmeasured", lm[a], lm[b])
			}
			d.Set(a, b, v)
		}
	}

	// Factorize D ≈ X·Yᵀ with X = landmark outgoing, Y = landmark
	// incoming vectors.
	var xl, yl *linalg.Dense
	switch cfg.Method {
	case SVD:
		f := linalg.SVD(d).Truncate(dim)
		// X = U·diag(S), Y = V.
		xl = f.U.Clone()
		for j, s := range f.S {
			for i := 0; i < xl.Rows(); i++ {
				xl.Set(i, j, xl.At(i, j)*s)
			}
		}
		yl = f.V
	case NMF:
		f, err := linalg.NMF(d, linalg.NMFOptions{Rank: dim, Seed: cfg.Seed, MaxIters: cfg.NMFIters})
		if err != nil {
			return nil, fmt.Errorf("ides: %w", err)
		}
		xl = f.W
		yl = f.H.T()
	default:
		return nil, fmt.Errorf("ides: unknown method %v", cfg.Method)
	}

	sys := &System{
		out: make([][]float64, n),
		in:  make([][]float64, n),
		lm:  append([]int(nil), lm...),
	}
	isLandmark := make(map[int]int, l)
	for a, id := range lm {
		isLandmark[id] = a
	}

	fit := func(design *linalg.Dense, rhs []float64) []float64 {
		var v []float64
		var err error
		if cfg.Method == NMF {
			v, err = linalg.SolveNonNegativeLS(design, rhs, cfg.NMFIters)
		} else {
			v, err = linalg.SolveLeastSquares(design, rhs)
		}
		if err != nil {
			return make([]float64, dim)
		}
		return v
	}

	for i := 0; i < n; i++ {
		if a, ok := isLandmark[i]; ok {
			sys.out[i] = append([]float64(nil), xl.Row(a)...)
			sys.in[i] = append([]float64(nil), yl.Row(a)...)
			continue
		}
		rhs := make([]float64, 0, l)
		rowsOut := make([][]float64, 0, l) // design rows = incoming landmark vectors
		rowsIn := make([][]float64, 0, l)  // design rows = outgoing landmark vectors
		for a := 0; a < l; a++ {
			v := m.At(i, lm[a])
			if v == delayspace.Missing {
				continue
			}
			rhs = append(rhs, v)
			rowsOut = append(rowsOut, yl.Row(a))
			rowsIn = append(rowsIn, xl.Row(a))
		}
		if len(rhs) < dim {
			sys.out[i] = make([]float64, dim)
			sys.in[i] = make([]float64, dim)
			continue
		}
		sys.out[i] = fit(linalg.DenseFromRows(rowsOut), rhs)
		sys.in[i] = fit(linalg.DenseFromRows(rowsIn), rhs)
	}
	return sys, nil
}

// Landmarks returns the landmark node ids.
func (s *System) Landmarks() []int { return append([]int(nil), s.lm...) }

// Predict returns the estimated delay xᵢ·yⱼ, symmetrized over both
// directions and clamped at zero (inner products can go negative; a
// negative delay estimate carries no meaning for neighbor selection).
// It satisfies tivaware.Predictor, so an IDES system plugs into the
// service layer through tivaware.FromPredictor.
func (s *System) Predict(i, j int) float64 {
	if i == j {
		return 0
	}
	p := (linalg.Dot(s.out[i], s.in[j]) + linalg.Dot(s.out[j], s.in[i])) / 2
	if p < 0 || math.IsNaN(p) {
		return 0
	}
	return p
}
