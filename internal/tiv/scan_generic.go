//go:build !amd64 || purego

package tiv

import "math"

// denseViolMask returns the violation bitmask of a block of up to 64
// contiguous witness candidates for an edge of delay dab. Violation ⟺
// s < dab or |dac-dbc| > dab; all operands are finite and
// non-negative, so the comparisons run on the raw IEEE-754 bits as
// integers — one sign-bit OR per candidate, no data-dependent
// branches. amd64 builds replace this with an AVX2 kernel when the CPU
// supports it (scan_amd64.go).
//
//tiv:hotpath innermost tile kernel of the triangle scan
func denseViolMask(ra, rb []float64, dab float64) uint64 {
	qab := int64(math.Float64bits(dab))
	var vm uint64
	for k := range ra {
		dac, dbc := ra[k], rb[k]
		sb := int64(math.Float64bits(dac + dbc))
		db := int64(math.Float64bits(math.Abs(dac - dbc)))
		vm |= uint64((sb-qab)|(qab-db)) >> 63 << uint(k)
	}
	return vm
}
