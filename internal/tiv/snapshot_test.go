package tiv

import (
	"testing"

	"tivaware/internal/delayspace"
)

// snapshotTriangle is a 3-node matrix whose edge (0,1) violates.
func snapshotTriangle() *delayspace.Matrix {
	m := delayspace.New(3)
	m.Set(0, 1, 100)
	m.Set(0, 2, 10)
	m.Set(1, 2, 20)
	return m
}

func TestMonitorSnapshotAnalysisSurvivesMutation(t *testing.T) {
	m := snapshotTriangle()
	mon := NewMonitor(m, MonitorOptions{Workers: 1})
	snap := mon.SnapshotAnalysis()
	if snap.ViolatingTriangles != 1 {
		t.Fatalf("snapshot triangles = %d, want 1", snap.ViolatingTriangles)
	}
	sev01 := snap.Severities.At(0, 1)
	if sev01 <= 0 || snap.Counts.At(0, 1) != 1 {
		t.Fatalf("snapshot edge (0,1): severity %g count %d, want violated",
			sev01, snap.Counts.At(0, 1))
	}
	// Clear the violation; the snapshot must not move.
	if _, err := mon.ApplyUpdate(0, 1, 25); err != nil {
		t.Fatal(err)
	}
	if mon.Analysis().ViolatingTriangles != 0 {
		t.Fatal("monitor did not clear the violation")
	}
	if snap.ViolatingTriangles != 1 || snap.Severities.At(0, 1) != sev01 || snap.Counts.At(0, 1) != 1 {
		t.Errorf("snapshot mutated with the monitor: %d triangles, severity %g, count %d",
			snap.ViolatingTriangles, snap.Severities.At(0, 1), snap.Counts.At(0, 1))
	}
}

func TestCloneNilReceivers(t *testing.T) {
	var sev *EdgeSeverities
	var cnt *EdgeCounts
	if sev.Clone() != nil || cnt.Clone() != nil {
		t.Error("nil clones should stay nil")
	}
	a := Analysis{Triangles: 7, ViolatingTriangles: 3}
	c := a.Clone()
	if c.Severities != nil || c.Counts != nil || c.Triangles != 7 || c.ViolatingTriangles != 3 {
		t.Errorf("zero-view Analysis clone = %+v", c)
	}
}
