package tiv

import (
	"math"
	"math/rand"
	"testing"
)

// TestQueueSchedulingCoversAllChunks pins the atomic-queue path (used
// by integer-only scans) against the reference with worker counts that
// exceed the seed chunks, at a size large enough to need the queue.
func TestQueueSchedulingCoversAllChunks(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randomMatrix(t, rng, 400, 0.05, 0)
	want := referenceViolatingTriangleFraction(m)
	for _, workers := range []int{2, 3, 5, 8} {
		eng := NewEngine(Options{Workers: workers})
		if got := eng.ViolatingTriangleFraction(m, 0); math.Abs(got-want) > 1e-12 {
			t.Fatalf("workers=%d: fraction %g, reference %g (chunk lost by the work queue?)", workers, got, want)
		}
		cnt := eng.AllViolationCounts(m)
		for i := 0; i < 20; i++ { // spot-check rows across chunk boundaries
			j := (i*17 + 31) % 400
			if got, w := cnt.At(i, j), referenceViolationCount(m, i, j); got != w {
				t.Fatalf("workers=%d: count(%d,%d) = %d, reference %d", workers, i, j, got, w)
			}
		}
	}
}

// TestDeterministicAcrossRuns pins run-to-run bitwise determinism of
// multi-worker severity sums (static strided chunk assignment).
func TestDeterministicAcrossRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := randomMatrix(t, rng, 300, 0.1, 0)
	first := NewEngine(Options{Workers: 4}).AllSeverities(m)
	for run := 0; run < 3; run++ {
		again := NewEngine(Options{Workers: 4}).AllSeverities(m)
		for i := 0; i < 300; i++ {
			for j := 0; j < 300; j++ {
				if first.At(i, j) != again.At(i, j) {
					t.Fatalf("run %d: severity(%d,%d) differs bitwise: %g vs %g",
						run, i, j, again.At(i, j), first.At(i, j))
				}
			}
		}
	}
}
