package tiv

import (
	"fmt"
	"math"
	"math/bits"

	"tivaware/internal/delayspace"
)

// Monitor maintains a live TIV analysis of a delay matrix under edge
// updates. Where Engine.Analyze recomputes everything from scratch in
// O(N³/6), the Monitor exploits the fact that changing edge (i, j)
// only affects the ≤ N−2 triangles through (i, j): one ApplyUpdate is
// an O(N) pass over the AND of the two rows' measured-bitsets, keeping
// every edge's severity, every edge's violation count, and the exact
// violating-triangle total equal to what a fresh batch rescan of the
// mutated matrix would produce.
//
// The incremental pass evaluates each affected triple in the same
// orientation the batch engine scans it (at its lowest-index pair), so
// the integer aggregates — violation counts and the violating-triangle
// total — match Engine.Analyze exactly, not just approximately; the
// floating-point severity sums agree up to accumulation-order noise
// (the differential tests bound it at 1e-9).
//
// Batches past MonitorOptions.DirtyFraction of the edges fall back to
// one batch rescan — at that point O(N³/6) beats k·O(N). The Monitor
// owns all mutations of its matrix; an out-of-band mutation (detected
// through the delayspace version seam) forces a rescan before the next
// update is applied.
//
// A Monitor is not safe for concurrent use.
type Monitor struct {
	m    *delayspace.Matrix
	eng  *Engine
	opts MonitorOptions
	n    int

	rawSev []float64 // upper-triangle raw ratio sums, indexed i*n+j, i<j
	cnt    []int32   // upper-triangle violation counts
	bad    int64     // exact violating-triangle total

	version    uint64 // bumped once per applied update or rescan
	matVersion uint64 // matrix version the state is synced to

	sevCache *EdgeSeverities
	cntCache *EdgeCounts
	cacheOK  bool

	// Flip tracking for ChangeSets: edges touched by the current apply,
	// with their pre-apply violated status, recorded once per edge via
	// an epoch stamp.
	epoch   uint32
	touched []uint32
	flipIdx []int
	flipWas []bool

	// hooks are OnChange subscribers registered after construction, in
	// addition to (and notified after) MonitorOptions.OnChange.
	hooks []func(ChangeSet)

	// Update journal: a ring of the most recent mutations.
	journal []JournalEntry
	jStart  int
	jLen    int

	oldCnt []int32 // scratch for rescan flip diffing
}

// Update is one streamed edge mutation; RTT equal to delayspace.Missing
// removes the measurement.
type Update struct {
	I, J int
	RTT  float64
}

// JournalEntry records one applied mutation.
type JournalEntry struct {
	// Version is the monitor version at which the mutation became
	// visible.
	Version uint64
	I, J    int
	// Old and New are the edge's delay before and after (either may be
	// delayspace.Missing).
	Old, New float64
	// Rescan marks mutations absorbed by a full batch rescan (dirty
	// fallback) rather than an incremental delta.
	Rescan bool
}

// ChangeSet describes how the violated-edge set moved under one
// ApplyUpdate, ApplyBatch, or Rescan: the edges that started violating
// the triangle inequality and the edges that stopped. The Delay field
// of each edge carries its current severity. Callers reacting to TIVs
// at runtime — rerouting, neighbor re-selection, alerting — key off
// exactly these deltas.
type ChangeSet struct {
	// Version is the monitor version after the mutation.
	Version uint64
	// Rescan reports that the state was rebuilt by a full batch scan.
	Rescan bool
	// NewlyViolated lists edges whose violation count became non-zero.
	NewlyViolated []delayspace.Edge
	// Cleared lists edges whose violation count dropped to zero.
	Cleared []delayspace.Edge
}

// Empty reports whether the change set carries no set deltas.
func (c ChangeSet) Empty() bool {
	return len(c.NewlyViolated) == 0 && len(c.Cleared) == 0
}

// MonitorOptions configures a Monitor.
type MonitorOptions struct {
	// Workers bounds the parallelism of baseline and fallback rescans
	// (incremental updates are single-threaded O(N) passes); zero means
	// GOMAXPROCS.
	Workers int
	// DirtyFraction is the batch-size threshold, as a fraction of the
	// N·(N−1)/2 edges, above which ApplyBatch rebuilds by one batch
	// rescan instead of per-update deltas. Zero means 1/3 — roughly
	// where k·O(N) delta work overtakes the O(N³/6) scan. Negative
	// disables the fallback.
	DirtyFraction float64
	// JournalSize is how many recent updates the journal retains. Zero
	// means 256; negative disables the journal.
	JournalSize int
	// OnChange, when non-nil, runs synchronously after every mutation
	// whose ChangeSet is non-empty (and after every rescan). It must
	// not mutate the monitor or its matrix.
	OnChange func(ChangeSet)
}

func (o MonitorOptions) dirtyFraction() float64 {
	if o.DirtyFraction == 0 {
		return 1.0 / 3
	}
	return o.DirtyFraction
}

func (o MonitorOptions) journalSize() int {
	if o.JournalSize == 0 {
		return 256
	}
	if o.JournalSize < 0 {
		return 0
	}
	return o.JournalSize
}

// NewMonitor wraps m with an incrementally maintained TIV analysis,
// running one baseline batch scan to initialize it. The monitor owns
// subsequent mutations of m: apply them through ApplyUpdate/ApplyBatch
// (mutating m directly is detected via the version seam and answered
// with a full rescan on the next update).
func NewMonitor(m *delayspace.Matrix, opts MonitorOptions) *Monitor {
	n := m.N()
	mon := &Monitor{
		m:       m,
		eng:     NewEngine(Options{Workers: opts.Workers}),
		opts:    opts,
		n:       n,
		rawSev:  make([]float64, n*n),
		cnt:     make([]int32, n*n),
		touched: make([]uint32, n*n),
	}
	if size := opts.journalSize(); size > 0 {
		mon.journal = make([]JournalEntry, size)
	}
	mon.rescan()
	return mon
}

// N returns the node count.
func (mon *Monitor) N() int { return mon.n }

// Matrix returns the underlying matrix. Treat it as read-only; route
// mutations through ApplyUpdate so the analysis stays incremental.
func (mon *Monitor) Matrix() *delayspace.Matrix { return mon.m }

// Version returns the monitor's mutation counter: one increment per
// applied update or rescan.
func (mon *Monitor) Version() uint64 { return mon.version }

// ViolatingTriangles returns the exact number of violating triples.
func (mon *Monitor) ViolatingTriangles() int64 { return mon.bad }

// Triangles returns the total number of node triples, C(N,3).
func (mon *Monitor) Triangles() int64 { return totalTriples(mon.n) }

// ViolatingTriangleFraction returns ViolatingTriangles/Triangles.
func (mon *Monitor) ViolatingTriangleFraction() float64 {
	if t := mon.Triangles(); t > 0 {
		return float64(mon.bad) / float64(t)
	}
	return 0
}

// checkUpdate validates one mutation without applying anything, so a
// rejected batch leaves the state untouched.
func (mon *Monitor) checkUpdate(i, j int, rtt float64) error {
	if i == j {
		return fmt.Errorf("tiv: Monitor update on diagonal (%d,%d)", i, j)
	}
	if i < 0 || j < 0 || i >= mon.n || j >= mon.n {
		return fmt.Errorf("tiv: Monitor update (%d,%d) out of range [0,%d)", i, j, mon.n)
	}
	if math.IsNaN(rtt) || (rtt < 0 && rtt != delayspace.Missing) {
		return fmt.Errorf("tiv: Monitor update (%d,%d) invalid delay %g", i, j, rtt)
	}
	return nil
}

// ApplyUpdate sets edge (i, j) to rtt (delayspace.Missing removes the
// measurement) and incrementally re-establishes the full analysis in
// O(N), returning how the violated-edge set moved.
//
//tiv:hotpath per-measurement O(N) incremental update
func (mon *Monitor) ApplyUpdate(i, j int, rtt float64) (ChangeSet, error) {
	if err := mon.checkUpdate(i, j, rtt); err != nil {
		return ChangeSet{}, err
	}
	if cs, stale := mon.resyncIfStale(); stale {
		mon.notify(cs)
	}
	mon.beginApply()
	mon.applyOne(i, j, rtt)
	cs := mon.finishApply(false)
	mon.notify(cs)
	return cs, nil
}

// ApplyBatch applies the updates in order. Small batches run as
// per-update O(N) deltas; batches touching more than DirtyFraction of
// the edges fall back to setting every value and running one batch
// rescan. The returned ChangeSet is the net movement of the
// violated-edge set over the whole batch, and the hook (if any) fires
// once.
func (mon *Monitor) ApplyBatch(updates []Update) (ChangeSet, error) {
	for _, u := range updates {
		if err := mon.checkUpdate(u.I, u.J, u.RTT); err != nil {
			return ChangeSet{}, err
		}
	}
	if len(updates) == 0 {
		return ChangeSet{Version: mon.version}, nil
	}
	if cs, stale := mon.resyncIfStale(); stale {
		mon.notify(cs)
	}
	if frac := mon.opts.dirtyFraction(); frac > 0 {
		edges := mon.n * (mon.n - 1) / 2
		if float64(len(updates)) >= frac*float64(edges) {
			cs := mon.applyByRescan(updates)
			mon.notify(cs)
			return cs, nil
		}
	}
	mon.beginApply()
	for _, u := range updates {
		mon.applyOne(u.I, u.J, u.RTT)
	}
	cs := mon.finishApply(false)
	mon.notify(cs)
	return cs, nil
}

// Rescan discards the incremental state and rebuilds it with one batch
// scan, returning the (normally empty) net movement of the
// violated-edge set. Useful after mutating the matrix out-of-band.
func (mon *Monitor) Rescan() ChangeSet {
	copy(mon.oldCntScratch(), mon.cnt)
	mon.rescan()
	mon.version++
	cs := mon.diffChangeSet(true)
	mon.notify(cs)
	return cs
}

// resyncIfStale rebuilds the state when the matrix was mutated behind
// the monitor's back (its version moved without us).
func (mon *Monitor) resyncIfStale() (ChangeSet, bool) {
	if mon.m.Version() == mon.matVersion {
		return ChangeSet{}, false
	}
	copy(mon.oldCntScratch(), mon.cnt)
	mon.rescan()
	mon.version++
	return mon.diffChangeSet(true), true
}

// applyByRescan is the dirty-fraction fallback: write all values, then
// one batch scan.
func (mon *Monitor) applyByRescan(updates []Update) ChangeSet {
	copy(mon.oldCntScratch(), mon.cnt)
	for _, u := range updates {
		old := mon.m.At(u.I, u.J)
		mon.m.Set(u.I, u.J, u.RTT)
		mon.journalAdd(JournalEntry{Version: mon.version + 1, I: u.I, J: u.J, Old: old, New: u.RTT, Rescan: true})
	}
	mon.rescan()
	mon.version++
	return mon.diffChangeSet(true)
}

// rescan rebuilds rawSev/cnt/bad from the matrix with the batch engine
// (raw, upper-triangle — the same layout the deltas maintain).
//
//tiv:coldpath O(N^3) batch rebuild, amortized over the resync interval
func (mon *Monitor) rescan() {
	clear(mon.rawSev)
	clear(mon.cnt)
	mon.bad = 0
	if mon.n >= 3 {
		mon.bad = mon.eng.scanAll(mon.m, mon.rawSev, mon.cnt, nil)
	}
	mon.matVersion = mon.m.Version()
	mon.cacheOK = false
}

func (mon *Monitor) oldCntScratch() []int32 {
	if mon.oldCnt == nil {
		mon.oldCnt = make([]int32, mon.n*mon.n)
	}
	return mon.oldCnt
}

// diffChangeSet compares oldCnt against cnt over the upper triangle.
func (mon *Monitor) diffChangeSet(rescan bool) ChangeSet {
	cs := ChangeSet{Version: mon.version, Rescan: rescan}
	n := mon.n
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			e := i*n + j
			was, now := mon.oldCnt[e] > 0, mon.cnt[e] > 0
			if was == now {
				continue
			}
			edge := delayspace.Edge{I: i, J: j, Delay: mon.rawSev[e] / float64(n)}
			if now {
				cs.NewlyViolated = append(cs.NewlyViolated, edge)
			} else {
				cs.Cleared = append(cs.Cleared, edge)
			}
		}
	}
	return cs
}

//tiv:coldpath runs user callbacks; only entered when the change set is non-empty
func (mon *Monitor) notify(cs ChangeSet) {
	if cs.Empty() && !cs.Rescan {
		return
	}
	if mon.opts.OnChange != nil {
		mon.opts.OnChange(cs)
	}
	for _, fn := range mon.hooks {
		fn(cs)
	}
}

// OnChange registers an additional change subscriber alongside any
// MonitorOptions.OnChange hook: every registered function runs
// synchronously after each mutation whose ChangeSet is non-empty (and
// after every rescan). Subscribers must not mutate the monitor or its
// matrix. Hooks cannot be unregistered; callers multiplexing dynamic
// subscriber sets (e.g. tivaware.Service.Subscribe) register one hook
// that fans out.
func (mon *Monitor) OnChange(fn func(ChangeSet)) {
	mon.hooks = append(mon.hooks, fn)
}

// beginApply opens a flip-tracking window: edges touched by the coming
// deltas record their pre-apply violated status once, via epoch
// stamps, so finishApply can report net flips without scanning N².
func (mon *Monitor) beginApply() {
	mon.epoch++
	if mon.epoch == 0 { // wrapped: invalidate all stale stamps
		clear(mon.touched)
		mon.epoch = 1
	}
	mon.flipIdx = mon.flipIdx[:0]
	mon.flipWas = mon.flipWas[:0]
}

func (mon *Monitor) touch(e int) {
	if mon.touched[e] != mon.epoch {
		mon.touched[e] = mon.epoch
		mon.flipIdx = append(mon.flipIdx, e)
		mon.flipWas = append(mon.flipWas, mon.cnt[e] > 0)
	}
}

// finishApply closes the window: bumps caches, assembles the ChangeSet
// from the touched edges whose violated status net-flipped.
func (mon *Monitor) finishApply(rescan bool) ChangeSet {
	cs := ChangeSet{Version: mon.version, Rescan: rescan}
	n := mon.n
	for k, e := range mon.flipIdx {
		was, now := mon.flipWas[k], mon.cnt[e] > 0
		if was == now {
			continue
		}
		edge := delayspace.Edge{I: e / n, J: e % n, Delay: mon.rawSev[e] / float64(n)}
		if now {
			cs.NewlyViolated = append(cs.NewlyViolated, edge)
		} else {
			cs.Cleared = append(cs.Cleared, edge)
		}
	}
	mon.cacheOK = false
	return cs
}

// applyOne performs the O(N) delta for one validated mutation. Only
// triangles through (a, b) are affected: for each third node c
// measured to both endpoints (one AND over the rows' bitsets), the old
// contribution of triple {a, b, c} is retired and the new one added.
// Contributions to edge (a, b) itself are rebuilt from scratch rather
// than delta-adjusted — the pass visits all of its witnesses anyway,
// and an exact rebuild stops floating-point drift from accumulating on
// the one edge every update touches.
func (mon *Monitor) applyOne(i, j int, rtt float64) {
	a, b := i, j
	if a > b {
		a, b = b, a
	}
	old := mon.m.At(a, b)
	mon.version++
	mon.journalAdd(JournalEntry{Version: mon.version, I: i, J: j, Old: old, New: rtt})
	if old == rtt {
		return
	}
	n := mon.n
	abFlat := a*n + b
	mon.touch(abFlat)
	rowA, rowB := mon.m.Row(a), mon.m.Row(b)
	maskA, maskB := mon.m.MaskRow(a), mon.m.MaskRow(b)
	oldMeasured := old != delayspace.Missing
	newMeasured := rtt != delayspace.Missing
	var sumAB float64
	var cntAB int32
	var badDelta int64
	for w, mw := range maskA {
		and := mw & maskB[w] // excludes c == a and c == b for free
		base := w << 6
		for and != 0 {
			c := base + bits.TrailingZeros64(and)
			and &= and - 1
			dac, dbc := rowA[c], rowB[c]
			if oldMeasured {
				if edge, isAB, ratio, viol := evalTriple(a, b, c, old, dac, dbc, n); viol {
					badDelta--
					if !isAB { // (a,b)'s own old contributions are dropped by the rebuild
						mon.touch(edge)
						mon.cnt[edge]--
						mon.rawSev[edge] -= ratio
					}
				}
			}
			if newMeasured {
				if edge, isAB, ratio, viol := evalTriple(a, b, c, rtt, dac, dbc, n); viol {
					badDelta++
					if isAB {
						cntAB++
						sumAB += ratio
					} else {
						mon.touch(edge)
						mon.cnt[edge]++
						mon.rawSev[edge] += ratio
					}
				}
			}
		}
	}
	mon.cnt[abFlat] = cntAB
	mon.rawSev[abFlat] = sumAB
	mon.bad += badDelta
	mon.m.Set(a, b, rtt)
	mon.matVersion = mon.m.Version()
}

// evalTriple evaluates the triple {a, b, c} — where (a, b), a < b, is
// the updated edge carrying delay v — in the orientation the batch
// engine scans it: at its lowest-index pair. It returns the flat
// upper-triangle index of the violated edge, whether that edge is
// (a, b) itself, and the ratio contributed to its raw severity sum.
// Matching the engine's orientation matters: the violation test
// compares rounded float expressions, so an algebraically equivalent
// test with a different base edge could disagree at boundary cases and
// let integer counts drift from what a batch rescan reports.
func evalTriple(a, b, c int, v, dac, dbc float64, n int) (edge int, isAB bool, ratio float64, viol bool) {
	var side int
	switch {
	case c > b: // triple (a, b, c): base d(a,b) = v
		side, ratio = tripleEval(v, dac, dbc)
		switch side {
		case 0:
			return a*n + b, true, ratio, true
		case 1:
			return a*n + c, false, ratio, true
		case 2:
			return b*n + c, false, ratio, true
		}
	case c > a: // triple (a, c, b): base d(a,c)
		side, ratio = tripleEval(dac, v, dbc)
		switch side {
		case 0:
			return a*n + c, false, ratio, true
		case 1:
			return a*n + b, true, ratio, true
		case 2:
			return c*n + b, false, ratio, true
		}
	default: // c < a: triple (c, a, b): base d(c,a)
		side, ratio = tripleEval(dac, dbc, v)
		switch side {
		case 0:
			return c*n + a, false, ratio, true
		case 1:
			return c*n + b, false, ratio, true
		case 2:
			return a*n + b, true, ratio, true
		}
	}
	return 0, false, 0, false
}

// tripleEval applies the engine's per-triple violation test and
// attribution to the triple {p < q < r}, given base = d(p,q) and legs
// dpr = d(p,r), dqr = d(q,r), exactly as Engine.scanPair evaluates it:
// the same sign-bit product test, the same strict comparisons, the
// same tie-break (dpr == dqr attributes to side qr). It returns which
// side is violated (0 = pq, 1 = pr, 2 = qr; -1 = no violation) and the
// ratio added to that side's raw severity sum (zero when the detour is
// non-positive — the violation still counts).
func tripleEval(dpq, dpr, dqr float64) (side int, ratio float64) {
	s := dpr + dqr
	if math.Float64bits((dpq-math.Abs(dpr-dqr))*(s-dpq))>>63 == 0 {
		return -1, 0
	}
	if s < dpq { // base edge is the strictly longest side
		if s > 0 {
			return 0, dpq / s
		}
		return 0, 0
	}
	if dpr > dqr { // a leg is longest; ties go to qr like the engine's bit-blend
		if alt := dpq + dqr; alt > 0 {
			return 1, dpr / alt
		}
		return 1, 0
	}
	if alt := dpq + dpr; alt > 0 {
		return 2, dqr / alt
	}
	return 2, 0
}

func (mon *Monitor) journalAdd(e JournalEntry) {
	if len(mon.journal) == 0 {
		return
	}
	size := len(mon.journal)
	if mon.jLen < size {
		mon.journal[(mon.jStart+mon.jLen)%size] = e
		mon.jLen++
		return
	}
	mon.journal[mon.jStart] = e
	mon.jStart = (mon.jStart + 1) % size
}

// Journal returns the retained update history, oldest first.
func (mon *Monitor) Journal() []JournalEntry {
	out := make([]JournalEntry, mon.jLen)
	size := len(mon.journal)
	for k := 0; k < mon.jLen; k++ {
		out[k] = mon.journal[(mon.jStart+k)%size]
	}
	return out
}

// refreshCaches materializes the normalized, mirrored views.
func (mon *Monitor) refreshCaches() {
	n := mon.n
	if mon.sevCache == nil {
		mon.sevCache = &EdgeSeverities{n: n, data: make([]float64, n*n)}
		mon.cntCache = &EdgeCounts{n: n, data: make([]int32, n*n)}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := mon.rawSev[i*n+j] / float64(n)
			mon.sevCache.data[i*n+j] = v
			mon.sevCache.data[j*n+i] = v
			c := mon.cnt[i*n+j]
			mon.cntCache.data[i*n+j] = c
			mon.cntCache.data[j*n+i] = c
		}
	}
	mon.cacheOK = true
}

// Severities returns the current per-edge severities (normalized and
// mirrored like Engine results). The returned value is a cached view,
// valid until the next mutation or rescan.
func (mon *Monitor) Severities() *EdgeSeverities {
	if !mon.cacheOK {
		mon.refreshCaches()
	}
	return mon.sevCache
}

// Counts returns the current per-edge violation counts. The returned
// value is a cached view, valid until the next mutation or rescan.
func (mon *Monitor) Counts() *EdgeCounts {
	if !mon.cacheOK {
		mon.refreshCaches()
	}
	return mon.cntCache
}

// Analysis bundles the current state in the same shape Engine.Analyze
// returns, sharing the monitor's cached views.
func (mon *Monitor) Analysis() Analysis {
	return Analysis{
		Severities:         mon.Severities(),
		Counts:             mon.Counts(),
		ViolatingTriangles: mon.bad,
		Triangles:          mon.Triangles(),
	}
}

// TopEdges returns the k edges with the highest current severity, most
// severe first (fewer when the matrix has fewer edges).
func (mon *Monitor) TopEdges(k int) []delayspace.Edge {
	if k <= 0 {
		return nil
	}
	n := mon.n
	edges := make([]delayspace.Edge, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, delayspace.Edge{I: i, J: j, Delay: mon.rawSev[i*n+j] / float64(n)})
		}
	}
	if k > len(edges) {
		k = len(edges)
	}
	if k == 0 {
		return nil
	}
	return selectTopEdges(edges, k)
}
