package tiv_test

import (
	"fmt"

	"tivaware/internal/delayspace"
	"tivaware/internal/tiv"
)

// The paper's canonical example (§3.2.1): A and B are 5 ms apart, B
// and C are 5 ms apart, yet A and C measure 100 ms. The long edge
// violates the triangle inequality through B with ratio 100/10 = 10.
func ExampleSeverity() {
	m := delayspace.New(3)
	m.Set(0, 1, 5)   // A-B
	m.Set(1, 2, 5)   // B-C
	m.Set(2, 0, 100) // C-A: the TIV edge

	fmt.Printf("severity(A,B) = %.2f\n", tiv.Severity(m, 0, 1))
	fmt.Printf("severity(C,A) = %.2f\n", tiv.Severity(m, 2, 0))
	fmt.Printf("ratios(C,A)   = %v\n", tiv.TriangulationRatios(m, 2, 0))
	// Output:
	// severity(A,B) = 0.00
	// severity(C,A) = 3.33
	// ratios(C,A)   = [10]
}

func ExampleAllSeverities() {
	m := delayspace.New(4)
	m.Set(0, 1, 5)
	m.Set(1, 2, 5)
	m.Set(0, 2, 100)
	m.Set(0, 3, 7)
	m.Set(1, 3, 7)
	m.Set(2, 3, 7)

	sev := tiv.AllSeverities(m, tiv.Options{Workers: 1})
	worst := sev.WorstEdges(0.2)[0]
	fmt.Printf("worst edge: %d-%d severity %.2f\n", worst.I, worst.J, worst.Delay)
	// Output:
	// worst edge: 0-2 severity 4.29
}
