//go:build amd64 && !purego

#include "textflag.h"

// func cpuHasAVX2() bool
//
// AVX2 requires the CPU feature bit (CPUID.(7,0).EBX[5]), the AVX and
// OSXSAVE bits (CPUID.1.ECX[28,27]), and the OS having enabled SSE and
// AVX state saving (XCR0[2:1] == 11).
TEXT ·cpuHasAVX2(SB), NOSPLIT, $0-1
	MOVL $1, AX
	XORL CX, CX
	CPUID
	MOVL CX, R8
	MOVL $(1<<27 | 1<<28), R9
	ANDL R9, R8
	CMPL R8, R9
	JNE  no

	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  no

	MOVL $7, AX
	XORL CX, CX
	CPUID
	ANDL $(1<<5), BX
	JZ   no

	MOVB $1, ret+0(FP)
	RET

no:
	MOVB $0, ret+0(FP)
	RET

// func violMaskAVX2(ra, rb *float64, n int, dab float64) uint64
//
// Bit k of the result is set when dab lies outside
// [|ra[k]-rb[k]|, ra[k]+rb[k]] — i.e. the triple with side delays
// (dab, ra[k], rb[k]) violates the triangle inequality. n must be a
// positive multiple of 4, n <= 64. The VCMPPD ordered comparisons on
// finite inputs match the scalar kernel's exactly.
TEXT ·violMaskAVX2(SB), NOSPLIT, $0-40
	MOVQ ra+0(FP), SI
	MOVQ rb+8(FP), DI
	MOVQ n+16(FP), R11
	VBROADCASTSD dab+24(FP), Y0

	// Y5 = 0x7fffffffffffffff lanes (abs mask).
	VPCMPEQD Y5, Y5, Y5
	VPSRLQ   $1, Y5, Y5

	XORQ R9, R9 // accumulated mask
	XORQ DX, DX // k

loop:
	VMOVUPD (SI)(DX*8), Y1 // dac lanes
	VMOVUPD (DI)(DX*8), Y2 // dbc lanes
	VADDPD  Y2, Y1, Y3     // s  = dac + dbc
	VSUBPD  Y2, Y1, Y4     // dac - dbc
	VANDPD  Y5, Y4, Y4     // df = |dac - dbc|
	VCMPPD  $0x01, Y0, Y3, Y3 // s < dab   (LT_OS)
	VCMPPD  $0x0e, Y0, Y4, Y4 // df > dab  (GT_OS)
	VORPD   Y4, Y3, Y3
	VMOVMSKPD Y3, AX
	MOVQ    DX, CX
	SHLQ    CX, AX
	ORQ     AX, R9
	ADDQ    $4, DX
	CMPQ    DX, R11
	JLT     loop

	VZEROUPPER
	MOVQ R9, ret+32(FP)
	RET
