package tiv

// Snapshot/clone support: the tivaware service publishes analysis
// results as immutable epochs read lock-free by any number of
// goroutines, so it needs deep copies of the monitor's cached views
// (which are rewritten in place on the next mutation) and of engine
// results whose storage is reused across refreshes.

// Clone returns a deep copy, safe to read after the source is
// recomputed or mutated. A nil receiver clones to nil.
func (e *EdgeSeverities) Clone() *EdgeSeverities {
	if e == nil {
		return nil
	}
	c := &EdgeSeverities{n: e.n, data: make([]float64, len(e.data))}
	copy(c.data, e.data)
	return c
}

// Clone returns a deep copy, safe to read after the source is
// recomputed or mutated. A nil receiver clones to nil.
func (c *EdgeCounts) Clone() *EdgeCounts {
	if c == nil {
		return nil
	}
	d := &EdgeCounts{n: c.n, data: make([]int32, len(c.data))}
	copy(d.data, c.data)
	return d
}

// Clone returns an Analysis whose Severities and Counts are deep
// copies, decoupled from any provider-owned storage.
func (a Analysis) Clone() Analysis {
	a.Severities = a.Severities.Clone()
	a.Counts = a.Counts.Clone()
	return a
}

// SnapshotAnalysis returns a deep copy of the current analysis: where
// Analysis returns cached views rewritten in place by the next
// mutation, the snapshot stays valid — and safe to read from other
// goroutines — forever. Take it on the goroutine that owns the
// monitor.
func (mon *Monitor) SnapshotAnalysis() Analysis {
	return mon.Analysis().Clone()
}
