// The purego tag forces the portable Go scan path on amd64, so CI can
// exercise both implementations on the same machine.

//go:build amd64 && !purego

package tiv

import (
	"math"
	"math/bits"
)

// cpuHasAVX2 reports AVX2 support (CPU feature plus OS-enabled AVX
// state), implemented in scan_amd64.s.
func cpuHasAVX2() bool

// violMaskAVX2 computes the violation bitmask for n contiguous
// candidates: bit k is set when dab lies outside [|ra[k]-rb[k]|,
// ra[k]+rb[k]]. n must be a positive multiple of 4, n <= 64.
// Implemented in scan_amd64.s; the comparisons are IEEE-identical to
// the scalar path.
//
//go:noescape
func violMaskAVX2(ra, rb *float64, n int, dab float64) uint64

var useAVX2 = cpuHasAVX2()

// denseViolMask returns the violation bitmask of a block of up to 64
// contiguous witness candidates for an edge of delay dab: four lanes
// at a time under AVX2, with a branch-free scalar loop finishing the
// tail (and standing in entirely on CPUs without AVX2).
//
//tiv:hotpath innermost tile kernel of the triangle scan
func denseViolMask(ra, rb []float64, dab float64) uint64 {
	n := len(ra)
	var vm uint64
	k := 0
	if useAVX2 && n >= 4 {
		q := n &^ 3
		vm = violMaskAVX2(&ra[0], &rb[0], q, dab)
		k = q
	}
	qab := int64(math.Float64bits(dab))
	for ; k < n; k++ {
		dac, dbc := ra[k], rb[k]
		sb := int64(math.Float64bits(dac + dbc))
		db := int64(math.Float64bits(math.Abs(dac - dbc)))
		vm |= uint64((sb-qab)|(qab-db)) >> 63 << uint(k)
	}
	return vm
}

var _ = bits.TrailingZeros64 // keep import sets identical across arch files
