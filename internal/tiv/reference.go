package tiv

import (
	"tivaware/internal/delayspace"
)

// This file keeps the straightforward O(N) per-edge scans that the
// package shipped with before the bitset/triple-scan engine replaced
// them on the hot paths. They branch on delayspace.Missing for every
// third node, exactly as the definitions in the package comment read,
// which makes them slow but obviously correct — the differential tests
// pin the engine kernels against them on random matrices. They are not
// used outside of tests.

// referenceSeverity is the naive per-third-node severity scan.
func referenceSeverity(m *delayspace.Matrix, i, j int) float64 {
	if i == j {
		return 0
	}
	d := m.At(i, j)
	if d == delayspace.Missing {
		return 0
	}
	n := m.N()
	rowI := m.Row(i)
	rowJ := m.Row(j)
	var sum float64
	for b := 0; b < n; b++ {
		if b == i || b == j {
			continue
		}
		db1 := rowI[b]
		db2 := rowJ[b]
		if db1 == delayspace.Missing || db2 == delayspace.Missing {
			continue
		}
		if alt := db1 + db2; alt < d && alt > 0 {
			sum += d / alt
		}
	}
	return sum / float64(n)
}

// referenceAllSeverities computes every edge severity with the naive
// scan, serially.
func referenceAllSeverities(m *delayspace.Matrix) *EdgeSeverities {
	n := m.N()
	out := &EdgeSeverities{n: n, data: make([]float64, n*n)}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sev := referenceSeverity(m, i, j)
			out.data[i*n+j] = sev
			out.data[j*n+i] = sev
		}
	}
	return out
}

// referenceSampledSeverity estimates the severity of edge (i, j) from
// the given sample of third nodes, on the same |S| = N scale as the
// exact severity (see sampledSeverity).
func referenceSampledSeverity(m *delayspace.Matrix, i, j int, sample []int) float64 {
	d := m.At(i, j)
	if i == j || d == delayspace.Missing {
		return 0
	}
	rowI := m.Row(i)
	rowJ := m.Row(j)
	var sum float64
	used := 0
	for _, b := range sample {
		if b == i || b == j {
			continue
		}
		used++
		db1, db2 := rowI[b], rowJ[b]
		if db1 == delayspace.Missing || db2 == delayspace.Missing {
			continue
		}
		if alt := db1 + db2; alt < d && alt > 0 {
			sum += d / alt
		}
	}
	n := m.N()
	if used == 0 || n == 0 {
		return 0
	}
	return sum / float64(used) * float64(n-2) / float64(n)
}

// referenceViolationCount is the naive per-third-node violation count.
func referenceViolationCount(m *delayspace.Matrix, i, j int) int {
	d := m.At(i, j)
	if i == j || d == delayspace.Missing {
		return 0
	}
	rowI := m.Row(i)
	rowJ := m.Row(j)
	count := 0
	for b := 0; b < m.N(); b++ {
		if b == i || b == j {
			continue
		}
		db1, db2 := rowI[b], rowJ[b]
		if db1 == delayspace.Missing || db2 == delayspace.Missing {
			continue
		}
		if db1+db2 < d {
			count++
		}
	}
	return count
}

// referenceTriangulationRatios is the naive ratio scan.
func referenceTriangulationRatios(m *delayspace.Matrix, i, j int) []float64 {
	d := m.At(i, j)
	if i == j || d == delayspace.Missing {
		return nil
	}
	rowI := m.Row(i)
	rowJ := m.Row(j)
	var out []float64
	for b := 0; b < m.N(); b++ {
		if b == i || b == j {
			continue
		}
		db1, db2 := rowI[b], rowJ[b]
		if db1 == delayspace.Missing || db2 == delayspace.Missing {
			continue
		}
		if alt := db1 + db2; alt < d && alt > 0 {
			out = append(out, d/alt)
		}
	}
	return out
}

// referenceFractionTIV is the naive fraction-of-violating-triangles
// metric.
func referenceFractionTIV(m *delayspace.Matrix, i, j int) float64 {
	d := m.At(i, j)
	if i == j || d == delayspace.Missing {
		return 0
	}
	rowI := m.Row(i)
	rowJ := m.Row(j)
	count, witnesses := 0, 0
	for b := 0; b < m.N(); b++ {
		if b == i || b == j {
			continue
		}
		db1, db2 := rowI[b], rowJ[b]
		if db1 == delayspace.Missing || db2 == delayspace.Missing {
			continue
		}
		witnesses++
		if db1+db2 < d {
			count++
		}
	}
	if witnesses == 0 {
		return 0
	}
	return float64(count) / float64(witnesses)
}

// referenceViolatingTriangleFraction counts violating triples with the
// naive triple loop over the full matrix.
func referenceViolatingTriangleFraction(m *delayspace.Matrix) float64 {
	n := m.N()
	if n < 3 {
		return 0
	}
	count, bad := 0, 0
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			for c := b + 1; c < n; c++ {
				count++
				ab, bc, ca := m.At(a, b), m.At(b, c), m.At(c, a)
				if ab == delayspace.Missing || bc == delayspace.Missing || ca == delayspace.Missing {
					continue
				}
				if ab+bc < ca || bc+ca < ab || ca+ab < bc {
					bad++
				}
			}
		}
	}
	return float64(bad) / float64(count)
}
