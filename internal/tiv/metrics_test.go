package tiv

import (
	"math"
	"testing"

	"tivaware/internal/delayspace"
	"tivaware/internal/synth"
)

func TestFractionTIV(t *testing.T) {
	m := paperTriangle()
	// Edge (0,2): one witness (node 1), one violation.
	if got := FractionTIV(m, 0, 2); got != 1 {
		t.Errorf("FractionTIV(0,2) = %g, want 1", got)
	}
	if got := FractionTIV(m, 0, 1); got != 0 {
		t.Errorf("FractionTIV(0,1) = %g, want 0", got)
	}
	if FractionTIV(m, 1, 1) != 0 {
		t.Error("self edge must be 0")
	}
	holey := delayspace.New(3)
	holey.Set(0, 1, 5)
	if FractionTIV(holey, 0, 2) != 0 {
		t.Error("unmeasured edge must be 0")
	}
	// Two-node case: measured edge, no witnesses at all.
	two := delayspace.New(2)
	two.Set(0, 1, 5)
	if FractionTIV(two, 0, 1) != 0 {
		t.Error("no witnesses must give 0")
	}
}

func TestAvgTriangulationRatio(t *testing.T) {
	m := paperTriangle()
	if got := AvgTriangulationRatio(m, 0, 2); got != 10 {
		t.Errorf("AvgTriangulationRatio = %g, want 10", got)
	}
	if got := AvgTriangulationRatio(m, 0, 1); got != 0 {
		t.Errorf("non-violating edge ratio = %g, want 0", got)
	}
}

func TestTopEdgesBy(t *testing.T) {
	m := paperTriangle()
	top := TopEdgesBy(m, FractionTIV, 0.34)
	if len(top) != 1 || top[0].I != 0 || top[0].J != 2 {
		t.Errorf("top = %+v", top)
	}
	// Tiny fraction floor.
	if got := TopEdgesBy(m, FractionTIV, 1e-9); len(got) != 1 {
		t.Errorf("minimum-one rule broken: %d", len(got))
	}
	defer func() {
		if recover() == nil {
			t.Error("bad fraction should panic")
		}
	}()
	TopEdgesBy(m, FractionTIV, 0)
}

func TestCompareMetricsReproducesCritique(t *testing.T) {
	// The §2.1 critique: the two naive metrics disagree — a
	// substantial share of "worst by fraction" edges have low average
	// ratios, and a substantial share of "worst by ratio" edges cause
	// very few violations. Paper numbers on DS2: 16% and 64% at
	// frac = 0.1, threshold 3 violations.
	s, err := synth.Generate(synth.DS2Like(250, 19))
	if err != nil {
		t.Fatal(err)
	}
	d := CompareMetrics(s.Matrix, 0.1, 3)
	if d.FracTopButLowRatio < 0 || d.FracTopButLowRatio > 1 ||
		d.RatioTopButFewViolations < 0 || d.RatioTopButFewViolations > 1 {
		t.Fatalf("disagreement out of range: %+v", d)
	}
	// Both defects must be present (non-trivial disagreement).
	if d.FracTopButLowRatio == 0 {
		t.Error("fraction metric never disagreed with ratio metric")
	}
	if d.RatioTopButFewViolations == 0 {
		t.Error("no high-ratio edge with few violations found")
	}
}

func TestCompareMetricsDegenerate(t *testing.T) {
	// A metric space has no violating edges at all; both rates are 0.
	m := synth.Euclidean(20, 200, 3)
	d := CompareMetrics(m, 0.1, 3)
	if d.FracTopButLowRatio != 0 || d.RatioTopButFewViolations != 0 {
		t.Errorf("metric space disagreement = %+v", d)
	}
}

func TestMetricsConsistentWithSeverity(t *testing.T) {
	// severity = FractionTIV·witnesses·avgRatio / N, so for complete
	// matrices: severity = fraction·(N-2)·avgRatio/N.
	s, err := synth.Generate(synth.DS2Like(60, 21))
	if err != nil {
		t.Fatal(err)
	}
	m := s.Matrix
	n := float64(m.N())
	m.EachEdge(func(i, j int, d float64) bool {
		frac := FractionTIV(m, i, j)
		avg := AvgTriangulationRatio(m, i, j)
		want := frac * (n - 2) * avg / n
		if got := Severity(m, i, j); math.Abs(got-want) > 1e-9 {
			t.Fatalf("severity(%d,%d) = %g, want %g from components", i, j, got, want)
		}
		return true
	})
}
