package tiv

import (
	"math"
	"math/rand"
	"testing"

	"tivaware/internal/delayspace"
	"tivaware/internal/synth"
)

// monitorMatrix builds an n-node matrix with a missing fraction and
// occasional zero delays, the adversarial shapes the engine tests use.
func monitorMatrix(n int, missing float64, seed int64) *delayspace.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := delayspace.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			switch {
			case rng.Float64() < missing:
				// leave Missing
			case rng.Float64() < 0.02:
				m.Set(i, j, 0)
			default:
				m.Set(i, j, 1+rng.Float64()*200)
			}
		}
	}
	return m
}

// assertMatchesRescan pins the monitor's full state against a fresh
// batch analysis of its (mutated) matrix: counts and triangle totals
// exactly, severities to 1e-9.
func assertMatchesRescan(t *testing.T, mon *Monitor) {
	t.Helper()
	an := NewEngine(Options{}).Analyze(mon.m)
	if mon.ViolatingTriangles() != an.ViolatingTriangles {
		t.Fatalf("violating triangles: monitor %d, rescan %d", mon.ViolatingTriangles(), an.ViolatingTriangles)
	}
	if mon.Triangles() != an.Triangles {
		t.Fatalf("triangles: monitor %d, rescan %d", mon.Triangles(), an.Triangles)
	}
	sev, cnt := mon.Severities(), mon.Counts()
	n := mon.N()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if got, want := cnt.At(i, j), an.Counts.At(i, j); got != want {
				t.Fatalf("count(%d,%d): monitor %d, rescan %d", i, j, got, want)
			}
			if got, want := sev.At(i, j), an.Severities.At(i, j); math.Abs(got-want) > 1e-9 {
				t.Fatalf("severity(%d,%d): monitor %g, rescan %g (|Δ|=%g)", i, j, got, want, math.Abs(got-want))
			}
		}
	}
}

// randomUpdate draws one mutation: mostly fresh delays, sometimes a
// removal, sometimes a zero.
func randomUpdate(rng *rand.Rand, n int) (int, int, float64) {
	i := rng.Intn(n)
	j := rng.Intn(n)
	for j == i {
		j = rng.Intn(n)
	}
	switch rng.Intn(10) {
	case 0:
		return i, j, delayspace.Missing
	case 1:
		return i, j, 0
	default:
		return i, j, 1 + rng.Float64()*200
	}
}

// TestMonitorDifferential applies randomized sequences of more than
// 1000 ApplyUpdate/ApplyBatch calls — including the word-boundary
// sizes 63/64/65 — and requires the incremental state to match a fresh
// Engine.Analyze of the mutated matrix.
func TestMonitorDifferential(t *testing.T) {
	for _, tc := range []struct {
		n       int
		missing float64
	}{
		{12, 0.3},
		{40, 0.15},
		{63, 0},
		{64, 0.05},
		{65, 0.4},
	} {
		m := monitorMatrix(tc.n, tc.missing, int64(tc.n))
		mon := NewMonitor(m, MonitorOptions{})
		assertMatchesRescan(t, mon)
		rng := rand.New(rand.NewSource(int64(tc.n) * 7))
		applied := 0
		for applied < 1100 {
			if rng.Intn(4) == 0 { // batch of 2..9
				k := 2 + rng.Intn(8)
				ups := make([]Update, k)
				for x := range ups {
					i, j, rtt := randomUpdate(rng, tc.n)
					ups[x] = Update{I: i, J: j, RTT: rtt}
				}
				if _, err := mon.ApplyBatch(ups); err != nil {
					t.Fatal(err)
				}
				applied += k
			} else {
				i, j, rtt := randomUpdate(rng, tc.n)
				if _, err := mon.ApplyUpdate(i, j, rtt); err != nil {
					t.Fatal(err)
				}
				applied++
			}
			// Spot-check along the way, fully verify at the end.
			if applied%251 < 2 {
				assertMatchesRescan(t, mon)
			}
		}
		assertMatchesRescan(t, mon)
		if mon.Version() == 0 {
			t.Error("version never advanced")
		}
	}
}

// TestMonitorEdgeCases covers the single-update corner cases as a
// table: measuring an unmeasured edge (mask bit flips on), removing a
// measurement, re-measuring an edge to the same value, and zero
// delays.
func TestMonitorEdgeCases(t *testing.T) {
	for _, tc := range []struct {
		name  string
		setup func(m *delayspace.Matrix)
		i, j  int
		rtt   float64
	}{
		{"measure unmeasured edge", func(m *delayspace.Matrix) { m.Set(0, 5, delayspace.Missing) }, 0, 5, 42},
		{"remove measurement", nil, 0, 5, delayspace.Missing},
		{"same value no-op", nil, 1, 2, -2}, // rtt patched below from the current value
		{"set to zero", nil, 3, 4, 0},
		{"reverse index order", nil, 6, 2, 17.5},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := monitorMatrix(10, 0.2, 99)
			if tc.setup != nil {
				tc.setup(m)
			}
			rtt := tc.rtt
			if rtt == -2 {
				rtt = m.At(tc.i, tc.j)
				if rtt == delayspace.Missing {
					m.Set(tc.i, tc.j, 30)
					rtt = 30
				}
			}
			mon := NewMonitor(m, MonitorOptions{})
			if _, err := mon.ApplyUpdate(tc.i, tc.j, rtt); err != nil {
				t.Fatal(err)
			}
			if got := m.At(tc.i, tc.j); got != rtt {
				t.Fatalf("matrix not updated: At(%d,%d) = %g, want %g", tc.i, tc.j, got, rtt)
			}
			if rtt == delayspace.Missing && m.Has(tc.i, tc.j) {
				t.Fatal("mask bit still set after removal")
			}
			if rtt != delayspace.Missing && !m.Has(tc.i, tc.j) {
				t.Fatal("mask bit not set after measurement")
			}
			assertMatchesRescan(t, mon)
		})
	}
}

func TestMonitorRejectsInvalidUpdates(t *testing.T) {
	m := monitorMatrix(8, 0, 3)
	mon := NewMonitor(m, MonitorOptions{})
	v := mon.Version()
	for _, tc := range []struct {
		name string
		i, j int
		rtt  float64
	}{
		{"diagonal", 3, 3, 5},
		{"negative i", -1, 2, 5},
		{"out of range j", 0, 8, 5},
		{"NaN", 0, 1, math.NaN()},
		{"negative delay", 0, 1, -7},
	} {
		if _, err := mon.ApplyUpdate(tc.i, tc.j, tc.rtt); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
		// A rejected batch must leave the state untouched even when
		// valid updates precede the bad one.
		if _, err := mon.ApplyBatch([]Update{{0, 1, 9}, {tc.i, tc.j, tc.rtt}}); err == nil {
			t.Errorf("%s: batch not rejected", tc.name)
		}
	}
	if mon.Version() != v {
		t.Error("rejected updates advanced the version")
	}
	if got := m.At(0, 1); got == 9 {
		t.Error("rejected batch partially applied")
	}
	assertMatchesRescan(t, mon)
}

// TestMonitorChangeSets uses the paper's canonical triangle to pin the
// violated-edge set deltas and the OnChange hook.
func TestMonitorChangeSets(t *testing.T) {
	m := delayspace.New(3)
	m.Set(0, 1, 5)
	m.Set(1, 2, 5)
	m.Set(2, 0, 100) // edge (0,2) is violated: 5+5 < 100
	var hooked []ChangeSet
	mon := NewMonitor(m, MonitorOptions{OnChange: func(cs ChangeSet) { hooked = append(hooked, cs) }})
	if mon.ViolatingTriangles() != 1 {
		t.Fatalf("baseline violating triangles = %d, want 1", mon.ViolatingTriangles())
	}

	// Shrinking (0,2) below the detour clears the violation.
	cs, err := mon.ApplyUpdate(2, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.Cleared) != 1 || cs.Cleared[0].I != 0 || cs.Cleared[0].J != 2 || len(cs.NewlyViolated) != 0 {
		t.Fatalf("clear ChangeSet = %+v", cs)
	}
	// Growing it back re-violates, and the severity rides along.
	cs, err = mon.ApplyUpdate(2, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.NewlyViolated) != 1 || cs.NewlyViolated[0].I != 0 || cs.NewlyViolated[0].J != 2 {
		t.Fatalf("violate ChangeSet = %+v", cs)
	}
	if want := 100.0 / 10.0 / 3.0; math.Abs(cs.NewlyViolated[0].Delay-want) > 1e-12 {
		t.Errorf("severity in ChangeSet = %g, want %g", cs.NewlyViolated[0].Delay, want)
	}
	// A no-flip update does not fire the hook.
	if _, err := mon.ApplyUpdate(2, 0, 110); err != nil {
		t.Fatal(err)
	}
	if len(hooked) != 2 {
		t.Fatalf("hook fired %d times, want 2 (clear + violate)", len(hooked))
	}
	if len(hooked[0].Cleared) != 1 || len(hooked[1].NewlyViolated) != 1 {
		t.Errorf("hook payloads: %+v", hooked)
	}
}

// TestMonitorOnChangeSubscribers pins the multi-subscriber contract:
// OnChange registrations append alongside MonitorOptions.OnChange
// (options hook first, then registration order), so a second observer
// never silences the first.
func TestMonitorOnChangeSubscribers(t *testing.T) {
	m := delayspace.New(3)
	m.Set(0, 1, 5)
	m.Set(1, 2, 5)
	m.Set(2, 0, 100)
	var order []string
	mon := NewMonitor(m, MonitorOptions{OnChange: func(ChangeSet) { order = append(order, "opts") }})
	mon.OnChange(func(ChangeSet) { order = append(order, "subA") })
	mon.OnChange(func(ChangeSet) { order = append(order, "subB") })
	if _, err := mon.ApplyUpdate(2, 0, 9); err != nil { // clears the violation
		t.Fatal(err)
	}
	want := []string{"opts", "subA", "subB"}
	if len(order) != len(want) {
		t.Fatalf("subscribers fired %d times, want %d: %v", len(order), len(want), order)
	}
	for k := range want {
		if order[k] != want[k] {
			t.Fatalf("firing order %v, want %v", order, want)
		}
	}
	// No-flip updates stay silent for every subscriber.
	if _, err := mon.ApplyUpdate(2, 0, 8); err != nil {
		t.Fatal(err)
	}
	if len(order) != len(want) {
		t.Errorf("no-flip update notified subscribers: %v", order)
	}
}

// TestMonitorBatchFallback forces the dirty-fraction rescan path and
// checks it produces the same state and journals the fallback.
func TestMonitorBatchFallback(t *testing.T) {
	m := monitorMatrix(30, 0.1, 17)
	mon := NewMonitor(m, MonitorOptions{DirtyFraction: 0.01, JournalSize: 64})
	rng := rand.New(rand.NewSource(4))
	ups := make([]Update, 20) // 20 >= 0.01 * 435 edges → rescan path
	for x := range ups {
		i, j, rtt := randomUpdate(rng, 30)
		ups[x] = Update{I: i, J: j, RTT: rtt}
	}
	cs, err := mon.ApplyBatch(ups)
	if err != nil {
		t.Fatal(err)
	}
	if !cs.Rescan {
		t.Error("large batch did not take the rescan fallback")
	}
	jr := mon.Journal()
	if len(jr) != 20 {
		t.Fatalf("journal has %d entries, want 20", len(jr))
	}
	for _, e := range jr {
		if !e.Rescan {
			t.Fatalf("journal entry not marked Rescan: %+v", e)
		}
	}
	assertMatchesRescan(t, mon)

	// A DirtyFraction < 0 disables the fallback even for huge batches.
	mon2 := NewMonitor(monitorMatrix(30, 0.1, 18), MonitorOptions{DirtyFraction: -1})
	cs, err = mon2.ApplyBatch(ups)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Rescan {
		t.Error("disabled fallback still rescanned")
	}
	assertMatchesRescan(t, mon2)
}

// TestMonitorOutOfBandMutation mutates the matrix directly; the
// version seam must make the monitor rebuild before the next delta.
func TestMonitorOutOfBandMutation(t *testing.T) {
	m := monitorMatrix(24, 0.1, 23)
	var rescans int
	mon := NewMonitor(m, MonitorOptions{OnChange: func(cs ChangeSet) {
		if cs.Rescan {
			rescans++
		}
	}})
	m.Set(0, 1, 500) // behind the monitor's back
	if _, err := mon.ApplyUpdate(2, 3, 75); err != nil {
		t.Fatal(err)
	}
	assertMatchesRescan(t, mon)
	if rescans != 1 {
		t.Errorf("out-of-band mutation triggered %d rescans, want 1", rescans)
	}
	// Explicit Rescan is always available and leaves the state exact.
	mon.Rescan()
	assertMatchesRescan(t, mon)
}

func TestMonitorJournalRing(t *testing.T) {
	m := monitorMatrix(10, 0, 31)
	mon := NewMonitor(m, MonitorOptions{JournalSize: 4})
	for k := 0; k < 7; k++ {
		if _, err := mon.ApplyUpdate(0, 1+k%5, float64(10+k)); err != nil {
			t.Fatal(err)
		}
	}
	jr := mon.Journal()
	if len(jr) != 4 {
		t.Fatalf("journal retained %d entries, want 4", len(jr))
	}
	for k := 1; k < len(jr); k++ {
		if jr[k].Version <= jr[k-1].Version {
			t.Fatalf("journal not in version order: %+v", jr)
		}
	}
	if jr[3].New != 16 {
		t.Errorf("latest journal entry New = %g, want 16", jr[3].New)
	}
	// Disabled journal stays empty.
	mon2 := NewMonitor(monitorMatrix(6, 0, 1), MonitorOptions{JournalSize: -1})
	if _, err := mon2.ApplyUpdate(0, 1, 5); err != nil {
		t.Fatal(err)
	}
	if len(mon2.Journal()) != 0 {
		t.Error("disabled journal retained entries")
	}
}

func TestMonitorTopEdges(t *testing.T) {
	s, err := synth.Generate(synth.DS2Like(60, 9))
	if err != nil {
		t.Fatal(err)
	}
	mon := NewMonitor(s.Matrix, MonitorOptions{})
	top := mon.TopEdges(5)
	if len(top) != 5 {
		t.Fatalf("TopEdges(5) returned %d edges", len(top))
	}
	want := mon.Severities().WorstEdges(5.0 / float64(60*59/2))
	for k := range top {
		if top[k] != want[k] {
			t.Fatalf("TopEdges[%d] = %+v, want %+v", k, top[k], want[k])
		}
	}
	if mon.TopEdges(0) != nil {
		t.Error("TopEdges(0) should be nil")
	}
}

// TestMonitorStreamingSteadyState drives a long randomized stream and
// confirms the exported aggregates stay self-consistent (fraction in
// range, Analysis shares state).
func TestMonitorStreamingSteadyState(t *testing.T) {
	m := monitorMatrix(33, 0.2, 77)
	mon := NewMonitor(m, MonitorOptions{})
	rng := rand.New(rand.NewSource(6))
	for k := 0; k < 300; k++ {
		i, j, rtt := randomUpdate(rng, 33)
		if _, err := mon.ApplyUpdate(i, j, rtt); err != nil {
			t.Fatal(err)
		}
		if f := mon.ViolatingTriangleFraction(); f < 0 || f > 1 {
			t.Fatalf("fraction %g out of range after %d updates", f, k+1)
		}
	}
	an := mon.Analysis()
	if an.ViolatingTriangles != mon.ViolatingTriangles() || an.Triangles != mon.Triangles() {
		t.Error("Analysis does not reflect monitor state")
	}
	assertMatchesRescan(t, mon)
}
