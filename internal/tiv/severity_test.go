package tiv

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tivaware/internal/delayspace"
	"tivaware/internal/synth"
)

// paperTriangle is the canonical example from §3.2.1: d(A,B)=5,
// d(B,C)=5, d(C,A)=100.
func paperTriangle() *delayspace.Matrix {
	m := delayspace.New(3)
	m.Set(0, 1, 5)
	m.Set(1, 2, 5)
	m.Set(2, 0, 100)
	return m
}

func TestSeverityPaperTriangle(t *testing.T) {
	m := paperTriangle()
	// Edge (0,2) has one violation with ratio 100/10 = 10, divided by
	// |S| = 3 nodes.
	want := 10.0 / 3.0
	if got := Severity(m, 0, 2); math.Abs(got-want) > 1e-12 {
		t.Errorf("Severity(0,2) = %g, want %g", got, want)
	}
	// The short edges cause no violation.
	if got := Severity(m, 0, 1); got != 0 {
		t.Errorf("Severity(0,1) = %g, want 0", got)
	}
	if got := Severity(m, 1, 2); got != 0 {
		t.Errorf("Severity(1,2) = %g, want 0", got)
	}
}

func TestSeverityEdgeCases(t *testing.T) {
	m := paperTriangle()
	if Severity(m, 1, 1) != 0 {
		t.Error("self edge severity must be 0")
	}
	m2 := delayspace.New(3)
	m2.Set(0, 1, 5) // pair (0,2) unmeasured
	if Severity(m2, 0, 2) != 0 {
		t.Error("missing edge severity must be 0")
	}
}

func TestTriangulationRatios(t *testing.T) {
	m := paperTriangle()
	r := TriangulationRatios(m, 0, 2)
	if len(r) != 1 || r[0] != 10 {
		t.Errorf("ratios = %v, want [10]", r)
	}
	if r := TriangulationRatios(m, 0, 1); len(r) != 0 {
		t.Errorf("non-violating edge has ratios %v", r)
	}
	if r := TriangulationRatios(m, 1, 1); r != nil {
		t.Error("self edge should give nil")
	}
}

func TestViolationCount(t *testing.T) {
	m := paperTriangle()
	if got := ViolationCount(m, 0, 2); got != 1 {
		t.Errorf("ViolationCount = %d, want 1", got)
	}
	if got := ViolationCount(m, 0, 1); got != 0 {
		t.Errorf("ViolationCount = %d, want 0", got)
	}
	if ViolationCount(m, 2, 2) != 0 {
		t.Error("self edge count must be 0")
	}
}

func TestAllSeveritiesMatchesSingle(t *testing.T) {
	s, err := synth.Generate(synth.DS2Like(40, 9))
	if err != nil {
		t.Fatal(err)
	}
	all := AllSeverities(s.Matrix, Options{Workers: 2})
	for i := 0; i < 40; i++ {
		for j := 0; j < 40; j++ {
			want := Severity(s.Matrix, i, j)
			if got := all.At(i, j); math.Abs(got-want) > 1e-12 {
				t.Fatalf("AllSeverities(%d,%d) = %g, want %g", i, j, got, want)
			}
		}
	}
	if all.N() != 40 {
		t.Errorf("N = %d", all.N())
	}
}

func TestAllSeveritiesTiny(t *testing.T) {
	all := AllSeverities(delayspace.New(2), Options{})
	if all.At(0, 1) != 0 {
		t.Error("2-node matrix cannot have violations")
	}
}

func TestMetricSpaceHasZeroSeverity(t *testing.T) {
	m := synth.Euclidean(50, 300, 4)
	all := AllSeverities(m, Options{})
	for _, v := range all.Values() {
		if v != 0 {
			t.Fatalf("metric space produced severity %g", v)
		}
	}
}

func TestValuesLength(t *testing.T) {
	s, err := synth.Generate(synth.DS2Like(20, 1))
	if err != nil {
		t.Fatal(err)
	}
	all := AllSeverities(s.Matrix, Options{})
	if got := len(all.Values()); got != 20*19/2 {
		t.Errorf("Values length = %d, want %d", got, 20*19/2)
	}
}

func TestSampledSeverityApproximatesExact(t *testing.T) {
	s, err := synth.Generate(synth.DS2Like(120, 5))
	if err != nil {
		t.Fatal(err)
	}
	exact := AllSeverities(s.Matrix, Options{})
	sampled := AllSeverities(s.Matrix, Options{SampleThirdNodes: 60, Seed: 99})
	// Compare the population means: the sampled estimator is unbiased,
	// so the aggregate should be close.
	var meanE, meanS float64
	ve, vs := exact.Values(), sampled.Values()
	for i := range ve {
		meanE += ve[i]
		meanS += vs[i]
	}
	meanE /= float64(len(ve))
	meanS /= float64(len(vs))
	if meanE == 0 {
		t.Fatal("degenerate test: zero exact severity")
	}
	if rel := math.Abs(meanE-meanS) / meanE; rel > 0.35 {
		t.Errorf("sampled mean off by %.0f%% (exact %g, sampled %g)", rel*100, meanE, meanS)
	}
}

func TestWorstEdges(t *testing.T) {
	m := paperTriangle()
	all := AllSeverities(m, Options{})
	worst := all.WorstEdges(0.34) // 1 of 3 edges
	if len(worst) != 1 {
		t.Fatalf("got %d edges", len(worst))
	}
	if worst[0].I != 0 || worst[0].J != 2 {
		t.Errorf("worst edge = (%d,%d), want (0,2)", worst[0].I, worst[0].J)
	}
	// Tiny fraction still returns at least one edge.
	if got := all.WorstEdges(1e-9); len(got) != 1 {
		t.Errorf("minimum-one rule broken: %d", len(got))
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid fraction should panic")
		}
	}()
	all.WorstEdges(0)
}

func TestWorstEdgesOrdering(t *testing.T) {
	s, err := synth.Generate(synth.DS2Like(30, 2))
	if err != nil {
		t.Fatal(err)
	}
	all := AllSeverities(s.Matrix, Options{})
	worst := all.WorstEdges(1.0)
	for k := 1; k < len(worst); k++ {
		if worst[k].Delay > worst[k-1].Delay {
			t.Fatal("WorstEdges not sorted descending")
		}
	}
}

func TestViolatingTriangleFraction(t *testing.T) {
	m := paperTriangle()
	// The single triangle violates.
	if got := ViolatingTriangleFraction(m, 0, 0); got != 1 {
		t.Errorf("fraction = %g, want 1", got)
	}
	if got := ViolatingTriangleFraction(synth.Euclidean(15, 200, 3), 0, 0); got != 0 {
		t.Errorf("metric space fraction = %g, want 0", got)
	}
	if got := ViolatingTriangleFraction(delayspace.New(2), 0, 0); got != 0 {
		t.Errorf("2 nodes: fraction = %g", got)
	}
}

// TestInjectableRand pins the two RNG regimes of the sampled paths:
// Seed-only engines re-seed per call (each call reproduces itself),
// while an injected Options.Rand advances across calls, so a whole
// multi-call sequence replays exactly from one seeded source.
func TestInjectableRand(t *testing.T) {
	s, err := synth.Generate(synth.DS2Like(90, 6))
	if err != nil {
		t.Fatal(err)
	}
	// Seed-only: repeated sampled calls are identical.
	eng := NewEngine(Options{Seed: 3})
	a := eng.ViolatingTriangleFraction(s.Matrix, 5000)
	b := eng.ViolatingTriangleFraction(s.Matrix, 5000)
	if a != b {
		t.Errorf("Seed-only engine not reproducible per call: %g vs %g", a, b)
	}

	// Injected RNG: the sequence of results replays exactly.
	run := func() []float64 {
		e := NewEngine(Options{Rand: rand.New(rand.NewSource(9))})
		var out []float64
		for k := 0; k < 3; k++ {
			out = append(out, e.ViolatingTriangleFraction(s.Matrix, 5000))
		}
		return out
	}
	r1, r2 := run(), run()
	for k := range r1 {
		if r1[k] != r2[k] {
			t.Errorf("injected-RNG sequence diverged at call %d: %g vs %g", k, r1[k], r2[k])
		}
	}
	// ... and the RNG really advances: with violations present but not
	// universal, consecutive sampled estimates almost surely differ.
	if r1[0] == r1[1] && r1[1] == r1[2] {
		exact := NewEngine(Options{}).ViolatingTriangleFraction(s.Matrix, 0)
		if exact != 0 && exact != 1 {
			t.Errorf("injected RNG did not advance: all calls returned %g", r1[0])
		}
	}

	// Sampled severities draw from the injected source too.
	e1 := NewEngine(Options{SampleThirdNodes: 16, Rand: rand.New(rand.NewSource(4))})
	e2 := NewEngine(Options{SampleThirdNodes: 16, Rand: rand.New(rand.NewSource(4))})
	s1 := e1.AllSeverities(s.Matrix)
	s2 := e2.AllSeverities(s.Matrix)
	for i := 0; i < s1.N(); i++ {
		for j := 0; j < s1.N(); j++ {
			if s1.At(i, j) != s2.At(i, j) {
				t.Fatalf("sampled severities diverged at (%d,%d)", i, j)
			}
		}
	}
}

func TestViolatingTriangleFractionSampled(t *testing.T) {
	s, err := synth.Generate(synth.DS2Like(80, 6))
	if err != nil {
		t.Fatal(err)
	}
	exact := ViolatingTriangleFraction(s.Matrix, 0, 0)
	est := ViolatingTriangleFraction(s.Matrix, 20000, 7)
	if exact == 0 {
		t.Skip("degenerate: no violations at this seed")
	}
	if math.Abs(exact-est) > 0.05 {
		t.Errorf("sampled fraction %g too far from exact %g", est, exact)
	}
}

func TestPairDifferences(t *testing.T) {
	s, err := synth.Generate(synth.DS2Like(100, 8))
	if err != nil {
		t.Fatal(err)
	}
	sev := AllSeverities(s.Matrix, Options{})
	near, random := PairDifferences(s.Matrix, sev, 500, 11)
	if len(near) == 0 || len(random) == 0 {
		t.Fatal("no pair differences produced")
	}
	if len(near) != len(random) {
		t.Errorf("asymmetric outputs: %d vs %d", len(near), len(random))
	}
	for _, v := range append(append([]float64{}, near...), random...) {
		if v < 0 {
			t.Fatal("negative severity difference")
		}
	}
}

func TestPairDifferencesDegenerate(t *testing.T) {
	if n, r := PairDifferences(delayspace.New(3), nil, 10, 1); n != nil || r != nil {
		t.Error("tiny matrix should produce nil")
	}
}

func TestDelaySeverityPairs(t *testing.T) {
	m := paperTriangle()
	sev := AllSeverities(m, Options{})
	d, s := DelaySeverityPairs(m, sev)
	if len(d) != 3 || len(s) != 3 {
		t.Fatalf("lengths %d,%d", len(d), len(s))
	}
	// Find the 100ms edge and check its severity.
	found := false
	for k := range d {
		if d[k] == 100 {
			found = true
			if math.Abs(s[k]-10.0/3.0) > 1e-12 {
				t.Errorf("severity for 100ms edge = %g", s[k])
			}
		}
	}
	if !found {
		t.Error("100ms edge missing")
	}
}

// Property: severity is non-negative, zero on metric spaces, and
// scale-invariant (multiplying all delays by a constant preserves it).
func TestSeverityProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(12)
		m := delayspace.New(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				m.Set(i, j, 1+rng.Float64()*200)
			}
		}
		scaled := delayspace.New(n)
		const c = 3.7
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				scaled.Set(i, j, m.At(i, j)*c)
			}
		}
		for trial := 0; trial < 5; trial++ {
			i, j := rng.Intn(n), rng.Intn(n)
			s1 := Severity(m, i, j)
			if s1 < 0 {
				return false
			}
			s2 := Severity(scaled, i, j)
			if math.Abs(s1-s2) > 1e-9*(1+s1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: the inflated edges of a synthetic space carry the
// violations — an edge with positive severity must be either inflated
// itself or longer than some two-hop path built from inflation-free
// geometry (which cannot happen), so every positive-severity edge is
// inflated.
func TestSeverityAttributionProperty(t *testing.T) {
	// Attribution is exact only with measurement noise and deflation
	// switched off: then every violated edge must be an inflated one.
	cfg := synth.DS2Like(60, 13)
	cfg.NoiseSigma = 0
	cfg.Inflation.DeflateProb = 0
	s, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	all := AllSeverities(s.Matrix, Options{})
	for i := 0; i < 60; i++ {
		for j := i + 1; j < 60; j++ {
			if all.At(i, j) > 0 && !s.WasInflated(i, j) {
				t.Fatalf("uninflated edge (%d,%d) has severity %g", i, j, all.At(i, j))
			}
		}
	}
}

func TestDeflationSpreadsViolations(t *testing.T) {
	// With deflation on (and noise off), ordinary un-inflated edges
	// can violate because a deflated edge offers a shortcut; that is
	// the mechanism that makes slight TIVs pervasive.
	cfg := synth.DS2Like(60, 13)
	cfg.NoiseSigma = 0
	s, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	all := AllSeverities(s.Matrix, Options{})
	spread := false
	for i := 0; i < 60 && !spread; i++ {
		for j := i + 1; j < 60; j++ {
			if all.At(i, j) > 0 && !s.WasInflated(i, j) && !s.WasDeflated(i, j) {
				spread = true
				break
			}
		}
	}
	if !spread {
		t.Error("deflation did not spread violations to ordinary edges")
	}
}

func BenchmarkSeverityExact(b *testing.B) {
	s, err := synth.Generate(synth.DS2Like(200, 1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AllSeverities(s.Matrix, Options{})
	}
}

func BenchmarkSeveritySampled(b *testing.B) {
	s, err := synth.Generate(synth.DS2Like(200, 1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AllSeverities(s.Matrix, Options{SampleThirdNodes: 32, Seed: 7})
	}
}
