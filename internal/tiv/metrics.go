package tiv

import (
	"math/bits"

	"tivaware/internal/delayspace"
)

// This file implements the two per-edge TIV metrics the paper
// *rejects* in §2.1 before defining severity, so their shortcomings
// can be reproduced quantitatively (experiment "tab2"):
//
//   - FractionTIV: the fraction of triangles through the edge that
//     violate the triangle inequality. Ignores how bad the violations
//     are: on DS2, 16% of the top-10% edges by fraction sit in the
//     *lowest* 10% by average ratio.
//   - AvgTriangulationRatio: the mean ratio over the edge's
//     violations. Ignores how many violations there are: on DS2, 64%
//     of the top-10% edges by average ratio cause fewer than 3
//     violations in total.
//
// Severity = (sum of ratios)/|S| repairs both defects by combining
// count and magnitude.

// FractionTIV returns the fraction of third nodes that witness a
// violation of edge (i, j), over the third nodes with measurements to
// both endpoints. It returns 0 when the edge is unmeasured or no
// third node qualifies.
func FractionTIV(m *delayspace.Matrix, i, j int) float64 {
	d := m.At(i, j)
	if i == j || d == delayspace.Missing {
		return 0
	}
	rowI, rowJ := m.Row(i), m.Row(j)
	maskI, maskJ := m.MaskRow(i), m.MaskRow(j)
	count, witnesses := 0, 0
	for w, mi := range maskI {
		and := mi & maskJ[w]
		witnesses += bits.OnesCount64(and)
		base := w << 6
		for and != 0 {
			b := base + bits.TrailingZeros64(and)
			and &= and - 1
			if rowI[b]+rowJ[b] < d {
				count++
			}
		}
	}
	if witnesses == 0 {
		return 0
	}
	return float64(count) / float64(witnesses)
}

// AvgTriangulationRatio returns the mean triangulation ratio
// d(i,j)/(d(i,b)+d(b,j)) over the third nodes b that witness a
// violation of edge (i, j), or 0 when the edge causes none.
func AvgTriangulationRatio(m *delayspace.Matrix, i, j int) float64 {
	ratios := TriangulationRatios(m, i, j)
	if len(ratios) == 0 {
		return 0
	}
	var sum float64
	for _, r := range ratios {
		sum += r
	}
	return sum / float64(len(ratios))
}

// EdgeMetric is a per-edge scalar metric over a delay matrix.
type EdgeMetric func(m *delayspace.Matrix, i, j int) float64

// TopEdgesBy returns the frac·numEdges measured edges with the
// highest metric value (ties broken by edge index for determinism).
func TopEdgesBy(m *delayspace.Matrix, metric EdgeMetric, frac float64) []delayspace.Edge {
	if frac <= 0 || frac > 1 {
		panic("tiv: TopEdgesBy fraction outside (0,1]")
	}
	edges := make([]delayspace.Edge, 0, m.N()*(m.N()-1)/2)
	m.EachEdge(func(i, j int, d float64) bool {
		edges = append(edges, delayspace.Edge{I: i, J: j, Delay: metric(m, i, j)})
		return true
	})
	k := int(float64(len(edges)) * frac)
	if k == 0 && len(edges) > 0 {
		k = 1
	}
	return selectTopEdges(edges, k)
}

// MetricDisagreement reproduces the paper's §2.1 critique numbers.
type MetricDisagreement struct {
	// FracTopButLowRatio is the share of the top-frac edges by
	// FractionTIV whose AvgTriangulationRatio falls in the *bottom*
	// frac of edges with violations (paper: 16% on DS2 at frac=0.1).
	FracTopButLowRatio float64
	// RatioTopButFewViolations is the share of the top-frac edges by
	// AvgTriangulationRatio that cause fewer than minViolations
	// violations (paper: 64% on DS2 at frac=0.1, minViolations=3).
	RatioTopButFewViolations float64
}

// CompareMetrics computes MetricDisagreement at the given top/bottom
// fraction and violation-count threshold. One engine pass yields every
// edge's raw ratio sum, violation count, and positive-detour count, so
// both metrics (and the counts the critique needs) come out of
// O(N³/6) work instead of three naive O(N³/2) sweeps.
func CompareMetrics(m *delayspace.Matrix, frac float64, minViolations int) MetricDisagreement {
	n := m.N()
	eng := NewEngine(Options{})
	ratioSum := make([]float64, n*n) // raw upper-triangle Σ d/alt
	count := make([]int32, n*n)      // violation counts
	ratioCnt := make([]int32, n*n)   // violations with positive detour
	if n >= 3 {
		eng.scanAll(m, ratioSum, count, ratioCnt)
	}

	// Top-frac edges by fraction-of-violating-triangles.
	var byFraction []delayspace.Edge
	m.EachEdge(func(i, j int, d float64) bool {
		f := 0.0
		if wc := witnessCount(m, i, j); wc > 0 {
			f = float64(count[i*n+j]) / float64(wc)
		}
		byFraction = append(byFraction, delayspace.Edge{I: i, J: j, Delay: f})
		return true
	})
	k := int(float64(len(byFraction)) * frac)
	if k == 0 && len(byFraction) > 0 {
		k = 1
	}
	topByFraction := selectTopEdges(byFraction, k)

	// Edges with at least one positive-detour violation, ranked by
	// average triangulation ratio (edges with no violations have no
	// ratio at all).
	var violating []delayspace.Edge
	m.EachEdge(func(i, j int, d float64) bool {
		if rc := ratioCnt[i*n+j]; rc > 0 {
			violating = append(violating, delayspace.Edge{
				I: i, J: j, Delay: ratioSum[i*n+j] / float64(rc),
			})
		}
		return true
	})
	sortEdgesBySeverityDesc(violating)
	cutoff := int(float64(len(violating)) * frac)
	if cutoff == 0 && len(violating) > 0 {
		cutoff = 1
	}
	lowRatio := make(map[[2]int]bool)
	for _, e := range violating[len(violating)-cutoff:] {
		lowRatio[[2]int{e.I, e.J}] = true
	}

	var d MetricDisagreement
	if len(topByFraction) > 0 {
		hits := 0
		for _, e := range topByFraction {
			if lowRatio[[2]int{e.I, e.J}] {
				hits++
			}
		}
		d.FracTopButLowRatio = float64(hits) / float64(len(topByFraction))
	}

	topByRatio := violating[:cutoff]
	if len(topByRatio) > 0 {
		few := 0
		for _, e := range topByRatio {
			if int(count[e.I*n+e.J]) < minViolations {
				few++
			}
		}
		d.RatioTopButFewViolations = float64(few) / float64(len(topByRatio))
	}
	return d
}
