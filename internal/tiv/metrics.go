package tiv

import (
	"tivaware/internal/delayspace"
)

// This file implements the two per-edge TIV metrics the paper
// *rejects* in §2.1 before defining severity, so their shortcomings
// can be reproduced quantitatively (experiment "tab2"):
//
//   - FractionTIV: the fraction of triangles through the edge that
//     violate the triangle inequality. Ignores how bad the violations
//     are: on DS2, 16% of the top-10% edges by fraction sit in the
//     *lowest* 10% by average ratio.
//   - AvgTriangulationRatio: the mean ratio over the edge's
//     violations. Ignores how many violations there are: on DS2, 64%
//     of the top-10% edges by average ratio cause fewer than 3
//     violations in total.
//
// Severity = (sum of ratios)/|S| repairs both defects by combining
// count and magnitude.

// FractionTIV returns the fraction of third nodes that witness a
// violation of edge (i, j), over the third nodes with measurements to
// both endpoints. It returns 0 when the edge is unmeasured or no
// third node qualifies.
func FractionTIV(m *delayspace.Matrix, i, j int) float64 {
	d := m.At(i, j)
	if i == j || d == delayspace.Missing {
		return 0
	}
	rowI := m.Row(i)
	rowJ := m.Row(j)
	count, witnesses := 0, 0
	for b := 0; b < m.N(); b++ {
		if b == i || b == j {
			continue
		}
		db1, db2 := rowI[b], rowJ[b]
		if db1 == delayspace.Missing || db2 == delayspace.Missing {
			continue
		}
		witnesses++
		if db1+db2 < d {
			count++
		}
	}
	if witnesses == 0 {
		return 0
	}
	return float64(count) / float64(witnesses)
}

// AvgTriangulationRatio returns the mean triangulation ratio
// d(i,j)/(d(i,b)+d(b,j)) over the third nodes b that witness a
// violation of edge (i, j), or 0 when the edge causes none.
func AvgTriangulationRatio(m *delayspace.Matrix, i, j int) float64 {
	ratios := TriangulationRatios(m, i, j)
	if len(ratios) == 0 {
		return 0
	}
	var sum float64
	for _, r := range ratios {
		sum += r
	}
	return sum / float64(len(ratios))
}

// EdgeMetric is a per-edge scalar metric over a delay matrix.
type EdgeMetric func(m *delayspace.Matrix, i, j int) float64

// TopEdgesBy returns the frac·numEdges measured edges with the
// highest metric value (ties broken by edge index for determinism).
func TopEdgesBy(m *delayspace.Matrix, metric EdgeMetric, frac float64) []delayspace.Edge {
	if frac <= 0 || frac > 1 {
		panic("tiv: TopEdgesBy fraction outside (0,1]")
	}
	edges := make([]delayspace.Edge, 0, m.N()*(m.N()-1)/2)
	m.EachEdge(func(i, j int, d float64) bool {
		edges = append(edges, delayspace.Edge{I: i, J: j, Delay: metric(m, i, j)})
		return true
	})
	sortEdgesBySeverityDesc(edges)
	k := int(float64(len(edges)) * frac)
	if k == 0 && len(edges) > 0 {
		k = 1
	}
	return edges[:k]
}

// MetricDisagreement reproduces the paper's §2.1 critique numbers.
type MetricDisagreement struct {
	// FracTopButLowRatio is the share of the top-frac edges by
	// FractionTIV whose AvgTriangulationRatio falls in the *bottom*
	// frac of edges with violations (paper: 16% on DS2 at frac=0.1).
	FracTopButLowRatio float64
	// RatioTopButFewViolations is the share of the top-frac edges by
	// AvgTriangulationRatio that cause fewer than minViolations
	// violations (paper: 64% on DS2 at frac=0.1, minViolations=3).
	RatioTopButFewViolations float64
}

// CompareMetrics computes MetricDisagreement at the given top/bottom
// fraction and violation-count threshold.
func CompareMetrics(m *delayspace.Matrix, frac float64, minViolations int) MetricDisagreement {
	topByFraction := TopEdgesBy(m, FractionTIV, frac)

	// Bottom-frac by average ratio, among edges that cause at least
	// one violation (edges with no violations have no ratio at all).
	var violating []delayspace.Edge
	m.EachEdge(func(i, j int, d float64) bool {
		if r := AvgTriangulationRatio(m, i, j); r > 0 {
			violating = append(violating, delayspace.Edge{I: i, J: j, Delay: r})
		}
		return true
	})
	sortEdgesBySeverityDesc(violating)
	cutoff := int(float64(len(violating)) * frac)
	if cutoff == 0 && len(violating) > 0 {
		cutoff = 1
	}
	lowRatio := make(map[[2]int]bool)
	for _, e := range violating[len(violating)-cutoff:] {
		lowRatio[[2]int{e.I, e.J}] = true
	}

	var d MetricDisagreement
	if len(topByFraction) > 0 {
		hits := 0
		for _, e := range topByFraction {
			if lowRatio[[2]int{e.I, e.J}] {
				hits++
			}
		}
		d.FracTopButLowRatio = float64(hits) / float64(len(topByFraction))
	}

	topByRatio := violating[:cutoff]
	if len(topByRatio) > 0 {
		few := 0
		for _, e := range topByRatio {
			if ViolationCount(m, e.I, e.J) < minViolations {
				few++
			}
		}
		d.RatioTopButFewViolations = float64(few) / float64(len(topByRatio))
	}
	return d
}
