// Package tiv implements the paper's triangle inequality violation
// analysis (§2): the per-edge TIV severity metric, triangulation
// ratios, violating-triangle counting, and the proximity experiment of
// Figure 9.
//
// Definitions (paper §2.1). Edge AC causes a violation in triangle ABC
// when d(A,B) + d(B,C) < d(A,C). The triangulation ratio of that
// violation is d(A,C)/(d(A,B)+d(B,C)) > 1. The TIV severity of edge AC
// over node set S is
//
//	severity(AC) = Σ_B  d(A,C)/(d(A,B)+d(B,C))  /  |S|
//
// summed over the B ∈ S that witness a violation. Severity 0 means the
// edge causes no violation; larger severity means more and/or worse
// violations.
package tiv

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"tivaware/internal/delayspace"
)

// Severity computes the TIV severity of the single edge (i, j) exactly
// by scanning every third node. Missing measurements are skipped (they
// cannot witness a violation).
func Severity(m *delayspace.Matrix, i, j int) float64 {
	if i == j {
		return 0
	}
	d := m.At(i, j)
	if d == delayspace.Missing {
		return 0
	}
	n := m.N()
	rowI := m.Row(i)
	rowJ := m.Row(j)
	var sum float64
	for b := 0; b < n; b++ {
		if b == i || b == j {
			continue
		}
		db1 := rowI[b]
		db2 := rowJ[b]
		if db1 == delayspace.Missing || db2 == delayspace.Missing {
			continue
		}
		if alt := db1 + db2; alt < d && alt > 0 {
			sum += d / alt
		}
	}
	return sum / float64(n)
}

// TriangulationRatios returns the ratios d(i,j)/(d(i,b)+d(b,j)) for
// every third node b that witnesses a violation of edge (i, j). The
// paper's Figure 1 illustrates the distribution of these ratios.
func TriangulationRatios(m *delayspace.Matrix, i, j int) []float64 {
	d := m.At(i, j)
	if i == j || d == delayspace.Missing {
		return nil
	}
	rowI := m.Row(i)
	rowJ := m.Row(j)
	var out []float64
	for b := 0; b < m.N(); b++ {
		if b == i || b == j {
			continue
		}
		db1, db2 := rowI[b], rowJ[b]
		if db1 == delayspace.Missing || db2 == delayspace.Missing {
			continue
		}
		if alt := db1 + db2; alt < d && alt > 0 {
			out = append(out, d/alt)
		}
	}
	return out
}

// ViolationCount returns the number of third nodes witnessing a
// violation of edge (i, j). The paper reports e.g. "the average number
// of TIVs caused by edges within the same cluster is 80" on DS2.
func ViolationCount(m *delayspace.Matrix, i, j int) int {
	d := m.At(i, j)
	if i == j || d == delayspace.Missing {
		return 0
	}
	rowI := m.Row(i)
	rowJ := m.Row(j)
	count := 0
	for b := 0; b < m.N(); b++ {
		if b == i || b == j {
			continue
		}
		db1, db2 := rowI[b], rowJ[b]
		if db1 == delayspace.Missing || db2 == delayspace.Missing {
			continue
		}
		if db1+db2 < d {
			count++
		}
	}
	return count
}

// EdgeSeverities stores the severity of every edge of a matrix,
// indexed like the matrix itself.
type EdgeSeverities struct {
	n    int
	data []float64
}

// N returns the node count.
func (e *EdgeSeverities) N() int { return e.n }

// At returns the severity of edge (i, j); At(i,i) is 0.
func (e *EdgeSeverities) At(i, j int) float64 { return e.data[i*e.n+j] }

// Values returns the severities of all edges i < j as a flat slice
// (length N·(N−1)/2), the sample Figures 2 and 9 build CDFs over.
func (e *EdgeSeverities) Values() []float64 {
	out := make([]float64, 0, e.n*(e.n-1)/2)
	for i := 0; i < e.n; i++ {
		for j := i + 1; j < e.n; j++ {
			out = append(out, e.At(i, j))
		}
	}
	return out
}

// WorstEdges returns the frac·numEdges edges with the highest
// severity, most severe first. frac must lie in (0, 1].
func (e *EdgeSeverities) WorstEdges(frac float64) []delayspace.Edge {
	if frac <= 0 || frac > 1 {
		panic(fmt.Sprintf("tiv: WorstEdges fraction %g outside (0,1]", frac))
	}
	edges := make([]delayspace.Edge, 0, e.n*(e.n-1)/2)
	for i := 0; i < e.n; i++ {
		for j := i + 1; j < e.n; j++ {
			edges = append(edges, delayspace.Edge{I: i, J: j, Delay: e.At(i, j)})
		}
	}
	// Partial selection would do, but a full sort keeps the output
	// deterministic and the edge counts here are modest.
	sortEdgesBySeverityDesc(edges)
	k := int(float64(len(edges)) * frac)
	if k == 0 && len(edges) > 0 {
		k = 1
	}
	return edges[:k]
}

func sortEdgesBySeverityDesc(edges []delayspace.Edge) {
	// Severity ties are broken by (I, J) so results are stable across
	// runs regardless of sort internals.
	lessFn := func(a, b delayspace.Edge) bool {
		if a.Delay != b.Delay {
			return a.Delay > b.Delay
		}
		if a.I != b.I {
			return a.I < b.I
		}
		return a.J < b.J
	}
	sortSlice(edges, lessFn)
}

// Options configures severity computation.
type Options struct {
	// Workers is the parallelism; zero means GOMAXPROCS.
	Workers int
	// SampleThirdNodes, when positive, estimates each edge's severity
	// from that many randomly chosen third nodes instead of all N.
	// The estimate is unbiased (the sum is rescaled by N/sample).
	SampleThirdNodes int
	// Seed drives sampling.
	Seed int64
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// AllSeverities computes the severity of every edge. Exact mode is
// O(N³); sampled mode (Options.SampleThirdNodes) is O(N²·B). Rows are
// distributed over Options.Workers goroutines.
func AllSeverities(m *delayspace.Matrix, opts Options) *EdgeSeverities {
	n := m.N()
	out := &EdgeSeverities{n: n, data: make([]float64, n*n)}
	if n < 3 {
		return out
	}

	var sample []int
	if opts.SampleThirdNodes > 0 && opts.SampleThirdNodes < n {
		rng := rand.New(rand.NewSource(opts.Seed))
		sample = rng.Perm(n)[:opts.SampleThirdNodes]
	}

	rows := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < opts.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range rows {
				rowI := m.Row(i)
				for j := i + 1; j < n; j++ {
					d := rowI[j]
					if d == delayspace.Missing {
						continue
					}
					var sev float64
					if sample != nil {
						sev = sampledSeverity(m, i, j, d, sample)
					} else {
						sev = severityScan(m, i, j, d)
					}
					out.data[i*n+j] = sev
					out.data[j*n+i] = sev
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		rows <- i
	}
	close(rows)
	wg.Wait()
	return out
}

func severityScan(m *delayspace.Matrix, i, j int, d float64) float64 {
	rowI := m.Row(i)
	rowJ := m.Row(j)
	var sum float64
	for b := range rowI {
		if b == i || b == j {
			continue
		}
		db1, db2 := rowI[b], rowJ[b]
		if db1 == delayspace.Missing || db2 == delayspace.Missing {
			continue
		}
		if alt := db1 + db2; alt < d && alt > 0 {
			sum += d / alt
		}
	}
	return sum / float64(m.N())
}

func sampledSeverity(m *delayspace.Matrix, i, j int, d float64, sample []int) float64 {
	rowI := m.Row(i)
	rowJ := m.Row(j)
	var sum float64
	used := 0
	for _, b := range sample {
		if b == i || b == j {
			continue
		}
		used++
		db1, db2 := rowI[b], rowJ[b]
		if db1 == delayspace.Missing || db2 == delayspace.Missing {
			continue
		}
		if alt := db1 + db2; alt < d && alt > 0 {
			sum += d / alt
		}
	}
	if used == 0 {
		return 0
	}
	// Rescale the sampled sum to the full population so sampled and
	// exact severities are directly comparable.
	return sum / float64(used)
}

// ViolatingTriangleFraction estimates the fraction of node triples
// that violate the triangle inequality (the paper: "around 12% of
// them violate triangle inequality" on DS2). When the number of
// triples exceeds maxTriples it samples that many uniformly.
func ViolatingTriangleFraction(m *delayspace.Matrix, maxTriples int, seed int64) float64 {
	n := m.N()
	if n < 3 {
		return 0
	}
	total := n * (n - 1) * (n - 2) / 6
	violates := func(a, b, c int) bool {
		ab, bc, ca := m.At(a, b), m.At(b, c), m.At(c, a)
		if ab == delayspace.Missing || bc == delayspace.Missing || ca == delayspace.Missing {
			return false
		}
		return ab+bc < ca || bc+ca < ab || ca+ab < bc
	}
	if maxTriples <= 0 || total <= maxTriples {
		count, bad := 0, 0
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				for c := b + 1; c < n; c++ {
					count++
					if violates(a, b, c) {
						bad++
					}
				}
			}
		}
		return float64(bad) / float64(count)
	}
	rng := rand.New(rand.NewSource(seed))
	bad := 0
	for t := 0; t < maxTriples; t++ {
		a := rng.Intn(n)
		b := rng.Intn(n)
		c := rng.Intn(n)
		if a == b || b == c || a == c {
			t--
			continue
		}
		if violates(a, b, c) {
			bad++
		}
	}
	return float64(bad) / float64(maxTriples)
}
