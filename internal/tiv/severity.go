// Package tiv implements the paper's triangle inequality violation
// analysis (§2): the per-edge TIV severity metric, triangulation
// ratios, violating-triangle counting, and the proximity experiment of
// Figure 9.
//
// Definitions (paper §2.1). Edge AC causes a violation in triangle ABC
// when d(A,B) + d(B,C) < d(A,C). The triangulation ratio of that
// violation is d(A,C)/(d(A,B)+d(B,C)) > 1. The TIV severity of edge AC
// over node set S is
//
//	severity(AC) = Σ_B  d(A,C)/(d(A,B)+d(B,C))  /  |S|
//
// summed over the B ∈ S that witness a violation. Severity 0 means the
// edge causes no violation; larger severity means more and/or worse
// violations. Both the exact and the sampled estimators divide by
// |S| = N, so their results are directly comparable.
//
// The O(N³) computations run on the shared Engine (see engine.go),
// which finds witness candidates through the delay matrix's
// measured-bitsets and scans each node triple exactly once; the naive
// per-third-node reference scans are retained in reference.go and
// pinned against the engine by the differential tests.
package tiv

import (
	"fmt"
	"math/bits"
	"math/rand"
	"runtime"

	"tivaware/internal/delayspace"
)

// Severity computes the TIV severity of the single edge (i, j) exactly
// by scanning every third node. Missing measurements are skipped (they
// cannot witness a violation).
func Severity(m *delayspace.Matrix, i, j int) float64 {
	if i == j {
		return 0
	}
	d := m.At(i, j)
	if d == delayspace.Missing {
		return 0
	}
	rowI, rowJ := m.Row(i), m.Row(j)
	maskI, maskJ := m.MaskRow(i), m.MaskRow(j)
	var sum float64
	for w, mi := range maskI {
		and := mi & maskJ[w]
		base := w << 6
		for and != 0 {
			b := base + bits.TrailingZeros64(and)
			and &= and - 1
			if alt := rowI[b] + rowJ[b]; alt < d && alt > 0 {
				sum += d / alt
			}
		}
	}
	return sum / float64(m.N())
}

// TriangulationRatios returns the ratios d(i,j)/(d(i,b)+d(b,j)) for
// every third node b that witnesses a violation of edge (i, j). The
// paper's Figure 1 illustrates the distribution of these ratios.
func TriangulationRatios(m *delayspace.Matrix, i, j int) []float64 {
	d := m.At(i, j)
	if i == j || d == delayspace.Missing {
		return nil
	}
	rowI, rowJ := m.Row(i), m.Row(j)
	maskI, maskJ := m.MaskRow(i), m.MaskRow(j)
	var out []float64
	for w, mi := range maskI {
		and := mi & maskJ[w]
		base := w << 6
		for and != 0 {
			b := base + bits.TrailingZeros64(and)
			and &= and - 1
			if alt := rowI[b] + rowJ[b]; alt < d && alt > 0 {
				out = append(out, d/alt)
			}
		}
	}
	return out
}

// ViolationCount returns the number of third nodes witnessing a
// violation of edge (i, j). The paper reports e.g. "the average number
// of TIVs caused by edges within the same cluster is 80" on DS2.
// Engine.AllViolationCounts computes every edge's count in one pass.
func ViolationCount(m *delayspace.Matrix, i, j int) int {
	d := m.At(i, j)
	if i == j || d == delayspace.Missing {
		return 0
	}
	rowI, rowJ := m.Row(i), m.Row(j)
	maskI, maskJ := m.MaskRow(i), m.MaskRow(j)
	count := 0
	for w, mi := range maskI {
		and := mi & maskJ[w]
		base := w << 6
		for and != 0 {
			b := base + bits.TrailingZeros64(and)
			and &= and - 1
			if rowI[b]+rowJ[b] < d {
				count++
			}
		}
	}
	return count
}

// witnessCount returns the number of third nodes with measurements to
// both endpoints of edge (i, j) — the denominator of FractionTIV —
// via popcounts over the AND-ed measured-bitsets.
func witnessCount(m *delayspace.Matrix, i, j int) int {
	maskI, maskJ := m.MaskRow(i), m.MaskRow(j)
	count := 0
	for w, mi := range maskI {
		count += bits.OnesCount64(mi & maskJ[w])
	}
	return count
}

// EdgeSeverities stores the severity of every edge of a matrix,
// indexed like the matrix itself.
type EdgeSeverities struct {
	n    int
	data []float64
}

// N returns the node count.
func (e *EdgeSeverities) N() int { return e.n }

// At returns the severity of edge (i, j); At(i,i) is 0.
func (e *EdgeSeverities) At(i, j int) float64 { return e.data[i*e.n+j] }

// Values returns the severities of all edges i < j as a flat slice
// (length N·(N−1)/2), the sample Figures 2 and 9 build CDFs over.
func (e *EdgeSeverities) Values() []float64 {
	out := make([]float64, 0, e.n*(e.n-1)/2)
	for i := 0; i < e.n; i++ {
		for j := i + 1; j < e.n; j++ {
			out = append(out, e.At(i, j))
		}
	}
	return out
}

// WorstEdges returns the frac·numEdges edges with the highest
// severity, most severe first. frac must lie in (0, 1].
func (e *EdgeSeverities) WorstEdges(frac float64) []delayspace.Edge {
	if frac <= 0 || frac > 1 {
		panic(fmt.Sprintf("tiv: WorstEdges fraction %g outside (0,1]", frac))
	}
	numEdges := e.n * (e.n - 1) / 2
	k := int(float64(numEdges) * frac)
	if k == 0 && numEdges > 0 {
		k = 1
	}
	return e.TopEdges(k)
}

// TopEdges returns the k edges with the highest severity, most severe
// first (fewer when the matrix has fewer edges, nil when k <= 0).
func (e *EdgeSeverities) TopEdges(k int) []delayspace.Edge {
	return e.TopEdgesMod(k, 0, 0)
}

// TopEdgesMod returns the k highest-severity edges whose lower
// endpoint falls in the residue class (mod, rem): edges (i, j) with
// i < j and i % mod == rem, most severe first. mod ≤ 1 considers every
// edge (TopEdges). The residue classes of a fixed modulus partition
// the edge set, which is what lets a sharded gateway reassemble the
// exact global ranking from per-class ones.
func (e *EdgeSeverities) TopEdgesMod(k, mod, rem int) []delayspace.Edge {
	numEdges := e.n * (e.n - 1) / 2
	if k <= 0 || numEdges == 0 || mod < 0 || (mod > 0 && (rem < 0 || rem >= mod)) {
		return nil
	}
	capEdges := numEdges
	if mod > 1 {
		capEdges = 0
		for i := rem; i < e.n; i += mod {
			capEdges += e.n - 1 - i
		}
	}
	edges := make([]delayspace.Edge, 0, capEdges)
	for i := 0; i < e.n; i++ {
		if mod > 1 && i%mod != rem {
			continue
		}
		for j := i + 1; j < e.n; j++ {
			edges = append(edges, delayspace.Edge{I: i, J: j, Delay: e.At(i, j)})
		}
	}
	if k > len(edges) {
		k = len(edges)
	}
	if k == 0 {
		return nil
	}
	return selectTopEdges(edges, k)
}

// EdgeLess is the total order all edge rankings use — here, in the
// sharded gateway's k-way merge (internal/tivshard), and anywhere
// else edge rankings must agree byte-for-byte: higher severity
// (carried in Delay) first, ties broken by (I, J) so results are
// stable across runs regardless of sort or selection internals.
func EdgeLess(a, b delayspace.Edge) bool {
	if a.Delay != b.Delay {
		return a.Delay > b.Delay
	}
	if a.I != b.I {
		return a.I < b.I
	}
	return a.J < b.J
}

func sortEdgesBySeverityDesc(edges []delayspace.Edge) {
	sortSlice(edges, EdgeLess)
}

// selectTopEdges partially selects the k first edges under EdgeLess
// (quickselect with a median-of-three pivot), sorts just that prefix,
// and returns it — O(E + k log k) instead of a full O(E log E) sort.
// The output is deterministic because EdgeLess is a total order.
func selectTopEdges(edges []delayspace.Edge, k int) []delayspace.Edge {
	if k >= len(edges) {
		sortEdgesBySeverityDesc(edges)
		return edges
	}
	lo, hi := 0, len(edges)
	for hi-lo > 1 && lo < k {
		p := partitionEdges(edges, lo, hi)
		switch {
		case p < k:
			lo = p + 1
		case p > k:
			hi = p
		default:
			lo, hi = k, k
		}
	}
	top := edges[:k]
	sortEdgesBySeverityDesc(top)
	return top
}

// partitionEdges partitions edges[lo:hi] (hi exclusive, hi-lo ≥ 2)
// around a median-of-three pivot and returns the pivot's final index.
func partitionEdges(e []delayspace.Edge, lo, hi int) int {
	mid := lo + (hi-lo)/2
	if EdgeLess(e[mid], e[lo]) {
		e[mid], e[lo] = e[lo], e[mid]
	}
	if EdgeLess(e[hi-1], e[lo]) {
		e[hi-1], e[lo] = e[lo], e[hi-1]
	}
	if EdgeLess(e[hi-1], e[mid]) {
		e[hi-1], e[mid] = e[mid], e[hi-1]
	}
	e[mid], e[hi-1] = e[hi-1], e[mid]
	pivot := e[hi-1]
	store := lo
	for i := lo; i < hi-1; i++ {
		if EdgeLess(e[i], pivot) {
			e[i], e[store] = e[store], e[i]
			store++
		}
	}
	e[store], e[hi-1] = e[hi-1], e[store]
	return store
}

// Options configures severity computation.
type Options struct {
	// Workers is the parallelism; zero means GOMAXPROCS.
	Workers int
	// SampleThirdNodes, when positive, estimates each edge's severity
	// from that many randomly chosen third nodes instead of all N. The
	// estimate is unbiased and on the same |S| = N scale as the exact
	// severity: the sampled sum is rescaled to the N−2 possible
	// witnesses, then divided by N.
	SampleThirdNodes int
	// Seed drives sampling when Rand is nil: every sampled call
	// re-seeds from it, so repeating a call reproduces its result.
	Seed int64
	// Rand, when non-nil, is the RNG behind every sampled path (the
	// severity estimator's third-node draw and the sampled
	// violating-triangle estimator). It advances across calls, so a
	// sequence of sampled analyses — e.g. a streaming experiment — is
	// reproducible end-to-end from one seeded source. The engine is
	// not safe for concurrent use and neither is the RNG.
	Rand *rand.Rand
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// AllSeverities computes the severity of every edge. Exact mode scans
// each of the O(N³/6) node triples once; sampled mode
// (Options.SampleThirdNodes) is O(N²·B). Row chunks are distributed
// over Options.Workers goroutines. Callers computing severities
// repeatedly should hold an Engine and use AllSeveritiesInto to reuse
// its scratch.
func AllSeverities(m *delayspace.Matrix, opts Options) *EdgeSeverities {
	return NewEngine(opts).AllSeverities(m)
}

// ViolatingTriangleFraction returns the fraction of node triples that
// violate the triangle inequality (the paper: "around 12% of them
// violate triangle inequality" on DS2). The count is exact — via the
// engine's blocked triple scan — when the number of triples is within
// maxTriples (or maxTriples <= 0); otherwise that many triples are
// sampled uniformly.
func ViolatingTriangleFraction(m *delayspace.Matrix, maxTriples int, seed int64) float64 {
	return NewEngine(Options{Seed: seed}).ViolatingTriangleFraction(m, maxTriples)
}
