package tiv

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"tivaware/internal/delayspace"
	"tivaware/internal/synth"
)

// randomMatrix builds a random symmetric delay matrix: delays on a few
// scales (including exact zeros, which exercise the alt > 0 guard),
// a missingFrac share of unmeasured pairs, and optionally some rows
// with no measurements at all.
func randomMatrix(t *testing.T, rng *rand.Rand, n int, missingFrac float64, deadRows int) *delayspace.Matrix {
	t.Helper()
	m := delayspace.New(n)
	dead := map[int]bool{}
	for len(dead) < deadRows && len(dead) < n {
		dead[rng.Intn(n)] = true
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if dead[i] || dead[j] || rng.Float64() < missingFrac {
				continue
			}
			var d float64
			switch rng.Intn(10) {
			case 0:
				d = 0
			case 1, 2:
				d = rng.Float64() * 5
			default:
				d = 1 + rng.Float64()*800
			}
			m.Set(i, j, d)
		}
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	return m
}

type diffCase struct {
	n           int
	missingFrac float64
	deadRows    int
}

// diffCases covers word-boundary sizes (63/64/65), tiny matrices, the
// dense fast path (no missing), heavy sparsity, and fully missing
// rows.
var diffCases = []diffCase{
	{0, 0, 0}, {1, 0, 0}, {2, 0, 0}, {3, 0, 0}, {3, 0.5, 0},
	{5, 0, 0}, {16, 0.3, 1}, {37, 0, 0}, {63, 0.1, 0},
	{64, 0, 0}, {64, 0.4, 2}, {65, 0.05, 1}, {100, 0, 0},
	{130, 0.25, 3}, {150, 0.7, 0},
}

func TestEngineMatchesReferenceExact(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, tc := range diffCases {
		m := randomMatrix(t, rng, tc.n, tc.missingFrac, tc.deadRows)
		ref := referenceAllSeverities(m)
		for _, workers := range []int{1, 3} {
			eng := NewEngine(Options{Workers: workers})
			an := eng.Analyze(m)
			for i := 0; i < tc.n; i++ {
				for j := 0; j < tc.n; j++ {
					if diff := math.Abs(an.Severities.At(i, j) - ref.At(i, j)); diff > 1e-9 {
						t.Fatalf("case %+v workers=%d: severity(%d,%d) = %g, reference %g",
							tc, workers, i, j, an.Severities.At(i, j), ref.At(i, j))
					}
					if got, want := an.Counts.At(i, j), referenceViolationCount(m, i, j); got != want {
						t.Fatalf("case %+v workers=%d: count(%d,%d) = %d, reference %d",
							tc, workers, i, j, got, want)
					}
				}
			}
			wantFrac := 0.0
			if tc.n >= 3 {
				wantFrac = referenceViolatingTriangleFraction(m)
			}
			if got := an.ViolatingTriangleFraction(); math.Abs(got-wantFrac) > 1e-12 {
				t.Fatalf("case %+v workers=%d: violating fraction %g, reference %g", tc, workers, got, wantFrac)
			}
			if got := eng.ViolatingTriangleFraction(m, 0); math.Abs(got-wantFrac) > 1e-12 {
				t.Fatalf("case %+v workers=%d: exact blocked fraction %g, reference %g", tc, workers, got, wantFrac)
			}
		}
	}
}

func TestSingleEdgeKernelsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tc := range diffCases {
		m := randomMatrix(t, rng, tc.n, tc.missingFrac, tc.deadRows)
		for i := 0; i < tc.n; i++ {
			for j := 0; j < tc.n; j++ {
				if got, want := Severity(m, i, j), referenceSeverity(m, i, j); got != want {
					t.Fatalf("case %+v: Severity(%d,%d) = %g, reference %g", tc, i, j, got, want)
				}
				if got, want := ViolationCount(m, i, j), referenceViolationCount(m, i, j); got != want {
					t.Fatalf("case %+v: ViolationCount(%d,%d) = %d, reference %d", tc, i, j, got, want)
				}
				if got, want := FractionTIV(m, i, j), referenceFractionTIV(m, i, j); got != want {
					t.Fatalf("case %+v: FractionTIV(%d,%d) = %g, reference %g", tc, i, j, got, want)
				}
				gr, wr := TriangulationRatios(m, i, j), referenceTriangulationRatios(m, i, j)
				if len(gr) != len(wr) {
					t.Fatalf("case %+v: ratios(%d,%d) len %d, reference %d", tc, i, j, len(gr), len(wr))
				}
				for k := range gr {
					if gr[k] != wr[k] {
						t.Fatalf("case %+v: ratios(%d,%d)[%d] = %g, reference %g", tc, i, j, k, gr[k], wr[k])
					}
				}
			}
		}
	}
}

func TestSampledSeveritiesMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, tc := range []diffCase{{40, 0, 0}, {80, 0.3, 1}, {130, 0.1, 0}} {
		m := randomMatrix(t, rng, tc.n, tc.missingFrac, tc.deadRows)
		opts := Options{Workers: 2, SampleThirdNodes: tc.n / 3, Seed: 5}
		eng := NewEngine(opts)
		got := eng.AllSeverities(m)
		sample := NewEngine(opts).sampleThirdNodes(tc.n, opts.SampleThirdNodes)
		for i := 0; i < tc.n; i++ {
			for j := i + 1; j < tc.n; j++ {
				want := 0.0
				if m.Has(i, j) {
					want = referenceSampledSeverity(m, i, j, sample)
				}
				if math.Abs(got.At(i, j)-want) > 1e-12 || got.At(i, j) != got.At(j, i) {
					t.Fatalf("case %+v: sampled severity(%d,%d) = %g, reference %g", tc, i, j, got.At(i, j), want)
				}
			}
		}
	}
}

// TestSampledSeverityScale pins the |S| = N scale alignment of the
// sampled estimator: on a matrix where every third node witnesses the
// same triangulation ratio, the sampled severity must equal the exact
// one exactly, for any sample size.
func TestSampledSeverityScale(t *testing.T) {
	const n = 24
	m := delayspace.New(n)
	// Nodes 0 and 1 are 100 apart; every other pair is 25 apart: each
	// third node witnesses edge (0,1) with ratio 100/50 = 2, and no
	// other edge violates.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if i == 0 && j == 1 {
				m.Set(i, j, 100)
			} else {
				m.Set(i, j, 25)
			}
		}
	}
	exact := AllSeverities(m, Options{})
	want := 2 * float64(n-2) / float64(n)
	if diff := math.Abs(exact.At(0, 1) - want); diff > 1e-12 {
		t.Fatalf("exact severity(0,1) = %g, want %g", exact.At(0, 1), want)
	}
	for _, b := range []int{2, 5, n - 1} {
		sampled := AllSeverities(m, Options{SampleThirdNodes: b, Seed: 3})
		if diff := math.Abs(sampled.At(0, 1) - want); diff > 1e-12 {
			t.Fatalf("sampled (B=%d) severity(0,1) = %g, want %g (same |S|=N scale as exact)", b, sampled.At(0, 1), want)
		}
	}
}

// TestSelectTopEdges pins the quickselect-based partial selection
// against a full sort, including duplicate severities that exercise
// the deterministic (I, J) tie-break.
func TestSelectTopEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		numEdges := 1 + rng.Intn(200)
		edges := make([]delayspace.Edge, numEdges)
		for k := range edges {
			edges[k] = delayspace.Edge{I: rng.Intn(20), J: rng.Intn(20), Delay: float64(rng.Intn(5))}
		}
		k := 1 + rng.Intn(numEdges)
		want := append([]delayspace.Edge(nil), edges...)
		sortEdgesBySeverityDesc(want)
		want = want[:k]
		got := selectTopEdges(append([]delayspace.Edge(nil), edges...), k)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d edges, want %d", trial, len(got), len(want))
		}
		for x := range got {
			if got[x] != want[x] {
				t.Fatalf("trial %d: position %d: got %+v, want %+v", trial, x, got[x], want[x])
			}
		}
	}
}

// TestEngineReuse checks that one engine's scratch carries safely
// across matrices of different sizes and modes, and that the Into
// variants are allocation-free in steady state.
func TestEngineReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	eng := NewEngine(Options{Workers: 1})
	var sev EdgeSeverities
	var cnt EdgeCounts
	for _, n := range []int{80, 20, 130, 64} {
		m := randomMatrix(t, rng, n, 0.15, 0)
		eng.AllSeveritiesInto(&sev, m)
		eng.AllViolationCountsInto(&cnt, m)
		ref := referenceAllSeverities(m)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if diff := math.Abs(sev.At(i, j) - ref.At(i, j)); diff > 1e-9 {
					t.Fatalf("n=%d: reused severity(%d,%d) = %g, reference %g", n, i, j, sev.At(i, j), ref.At(i, j))
				}
				if got, want := cnt.At(i, j), referenceViolationCount(m, i, j); got != want {
					t.Fatalf("n=%d: reused count(%d,%d) = %d, reference %d", n, i, j, got, want)
				}
			}
		}
	}

	m := randomMatrix(t, rng, 100, 0, 0)
	eng.AllSeveritiesInto(&sev, m) // warm the scratch
	allocs := testing.AllocsPerRun(10, func() {
		eng.AllSeveritiesInto(&sev, m)
	})
	if allocs != 0 {
		t.Errorf("steady-state AllSeveritiesInto allocates %.1f objects/op, want 0", allocs)
	}
}

func TestDenseViolMaskMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(64)
		ra := make([]float64, n)
		rb := make([]float64, n)
		for k := range ra {
			ra[k] = float64(rng.Intn(40))
			rb[k] = float64(rng.Intn(40))
		}
		dab := float64(rng.Intn(60))
		got := denseViolMask(ra, rb, dab)
		var want uint64
		for k := range ra {
			s := ra[k] + rb[k]
			if s < dab || math.Abs(ra[k]-rb[k]) > dab {
				want |= 1 << uint(k)
			}
		}
		if got != want {
			t.Fatalf("trial %d (n=%d, dab=%v): mask %064b, want %064b", trial, n, dab, got^want, want)
		}
	}
}

// BenchmarkEngineVsReference measures the engine against the retained
// naive kernel back to back, so the speedup can be quoted from one
// session regardless of machine-load drift.
func BenchmarkEngineVsReference(b *testing.B) {
	for _, n := range []int{200, 400} {
		sp, err := synth.Generate(synth.DS2Like(n, 1))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("engine/n=%d", n), func(b *testing.B) {
			eng := NewEngine(Options{})
			var sev EdgeSeverities
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eng.AllSeveritiesInto(&sev, sp.Matrix)
			}
		})
		b.Run(fmt.Sprintf("reference/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				referenceAllSeverities(sp.Matrix)
			}
		})
	}
}
