package tiv

import (
	"math"
	"math/bits"
	"math/rand"
	"sync"
	"sync/atomic"

	"tivaware/internal/delayspace"
)

// Engine is the shared high-performance severity engine behind the
// package's O(N³) analyses. It reuses scratch buffers across calls
// (zero steady-state allocations with the *Into variants) and runs the
// triple-scan kernel described below over an atomic-counter chunked
// work queue.
//
// The kernel exploits two structural facts:
//
//   - Only fully measured triples matter: a triple with any unmeasured
//     side contributes to no severity, no violation count, and no
//     violating-triangle tally. Witness candidates for a pair (a, b)
//     are therefore found by AND-ing the two rows' measured-bitsets
//     (delayspace.Matrix.MaskRow) 64 nodes at a time instead of
//     branching on Missing per element.
//   - Only the strictly longest side of a triple can be violated, and
//     a triple violates iff dac+dbc < dab or |dac−dbc| > dab. Scanning
//     each unordered triple once — at its lowest-index pair — therefore
//     yields every edge's severity, every edge's violation count, and
//     the exact violating-triangle total in one N³/6 pass, where the
//     naive per-edge scans pay N³/2 for the severities alone.
//
// An Engine is not safe for concurrent use; give each goroutine its
// own (the constructor is cheap).
type Engine struct {
	opts Options

	// Per-extra-worker accumulators. A triple scanned at pair (a, b)
	// also updates edges (a, c) and (b, c), which live in rows other
	// workers may own, so each extra worker accumulates into private
	// scratch that is merged after the scan; worker 0 writes the
	// destination directly.
	accSev [][]float64
	accCnt [][]int32
	accRat [][]int32

	idx     []int  // partial Fisher–Yates scratch for third-node sampling
	rowFull []bool // per-row "fully measured" flags for the current scan
}

// NewEngine returns an engine computing with the given options.
func NewEngine(opts Options) *Engine { return &Engine{opts: opts} }

// rng returns the RNG behind the engine's sampled paths: the injected
// Options.Rand when present (advancing across calls, so multi-call
// experiments replay exactly from one source), else a fresh source
// seeded by Options.Seed (so an isolated call reproduces its result).
func (e *Engine) rng() *rand.Rand {
	if e.opts.Rand != nil {
		return e.opts.Rand
	}
	return rand.New(rand.NewSource(e.opts.Seed))
}

// EdgeCounts stores the violation count of every edge of a matrix,
// indexed like the matrix itself.
type EdgeCounts struct {
	n    int
	data []int32
}

// N returns the node count.
func (c *EdgeCounts) N() int { return c.n }

// At returns the number of third nodes witnessing a violation of edge
// (i, j); At(i,i) is 0.
func (c *EdgeCounts) At(i, j int) int { return int(c.data[i*c.n+j]) }

// Analysis bundles the results of one full triple-scan pass.
type Analysis struct {
	// Severities holds every edge's TIV severity (exact).
	Severities *EdgeSeverities
	// Counts holds every edge's violation count (exact).
	Counts *EdgeCounts
	// ViolatingTriangles is the exact number of node triples that
	// violate the triangle inequality.
	ViolatingTriangles int64
	// Triangles is the total number of node triples, C(N,3).
	Triangles int64
}

// ViolatingTriangleFraction returns ViolatingTriangles/Triangles, the
// paper's "around 12% of them violate triangle inequality" statistic.
func (a Analysis) ViolatingTriangleFraction() float64 {
	if a.Triangles == 0 {
		return 0
	}
	return float64(a.ViolatingTriangles) / float64(a.Triangles)
}

// AllSeverities computes the severity of every edge, exact or sampled
// per the engine's Options, into a freshly allocated result.
func (e *Engine) AllSeverities(m *delayspace.Matrix) *EdgeSeverities {
	return e.AllSeveritiesInto(&EdgeSeverities{}, m)
}

// AllSeveritiesInto is AllSeverities reusing dst's storage, for
// steady-state callers that want zero allocations. It returns dst.
func (e *Engine) AllSeveritiesInto(dst *EdgeSeverities, m *delayspace.Matrix) *EdgeSeverities {
	n := m.N()
	dst.n = n
	dst.data = ensureFloats(dst.data, n*n)
	if n < 3 {
		return dst
	}
	if b := e.opts.SampleThirdNodes; b > 0 && b < n {
		e.sampledSeverities(dst, m, b)
		return dst
	}
	e.scanAll(m, dst.data, nil, nil)
	finishSeverities(dst.data, n)
	return dst
}

// AllViolationCounts computes the violation count of every edge.
func (e *Engine) AllViolationCounts(m *delayspace.Matrix) *EdgeCounts {
	return e.AllViolationCountsInto(&EdgeCounts{}, m)
}

// AllViolationCountsInto is AllViolationCounts reusing dst's storage.
func (e *Engine) AllViolationCountsInto(dst *EdgeCounts, m *delayspace.Matrix) *EdgeCounts {
	n := m.N()
	dst.n = n
	dst.data = ensureInts(dst.data, n*n)
	if n < 3 {
		return dst
	}
	e.scanAll(m, nil, dst.data, nil)
	mirrorCounts(dst.data, n)
	return dst
}

// Analyze runs one triple-scan pass and returns exact severities,
// violation counts, and the violating-triangle total together. Callers
// that need more than one of these (e.g. Figure 3's per-block
// severities plus in-text violation counts) pay for a single pass.
func (e *Engine) Analyze(m *delayspace.Matrix) Analysis {
	n := m.N()
	sev := &EdgeSeverities{n: n, data: make([]float64, n*n)}
	cnt := &EdgeCounts{n: n, data: make([]int32, n*n)}
	var bad int64
	if n >= 3 {
		bad = e.scanAll(m, sev.data, cnt.data, nil)
		finishSeverities(sev.data, n)
		mirrorCounts(cnt.data, n)
	}
	return Analysis{
		Severities:         sev,
		Counts:             cnt,
		ViolatingTriangles: bad,
		Triangles:          totalTriples(n),
	}
}

// AnalyzeInto is Analyze reusing dst's result storage, for
// steady-state callers (e.g. the tivaware service layer) that
// re-analyze on data changes without reallocating O(N²) results. It
// returns the refreshed analysis; dst's Severities/Counts pointers are
// reused when present and correctly sized.
func (e *Engine) AnalyzeInto(dst Analysis, m *delayspace.Matrix) Analysis {
	n := m.N()
	if dst.Severities == nil {
		dst.Severities = &EdgeSeverities{}
	}
	if dst.Counts == nil {
		dst.Counts = &EdgeCounts{}
	}
	dst.Severities.n = n
	dst.Severities.data = ensureFloats(dst.Severities.data, n*n)
	dst.Counts.n = n
	dst.Counts.data = ensureInts(dst.Counts.data, n*n)
	dst.ViolatingTriangles = 0
	dst.Triangles = totalTriples(n)
	if n >= 3 {
		dst.ViolatingTriangles = e.scanAll(m, dst.Severities.data, dst.Counts.data, nil)
		finishSeverities(dst.Severities.data, n)
		mirrorCounts(dst.Counts.data, n)
	}
	return dst
}

// ViolatingTriangleFraction returns the fraction of node triples that
// violate the triangle inequality. When the number of triples is
// within maxTriples (or maxTriples <= 0) the count is exact, via the
// blocked triple-scan kernel; otherwise that many triples are sampled
// uniformly, drawn from the engine's RNG (Options.Rand, or a fresh
// source seeded by Options.Seed per call).
func (e *Engine) ViolatingTriangleFraction(m *delayspace.Matrix, maxTriples int) float64 {
	n := m.N()
	if n < 3 {
		return 0
	}
	total := totalTriples(n)
	if maxTriples <= 0 || total <= int64(maxTriples) {
		bad := e.scanAll(m, nil, nil, nil)
		return float64(bad) / float64(total)
	}
	rng := e.rng()
	bad := 0
	for t := 0; t < maxTriples; t++ {
		a := rng.Intn(n)
		b := rng.Intn(n)
		c := rng.Intn(n)
		if a == b || b == c || a == c {
			t--
			continue
		}
		ab, bc, ca := m.At(a, b), m.At(b, c), m.At(c, a)
		if ab == delayspace.Missing || bc == delayspace.Missing || ca == delayspace.Missing {
			continue
		}
		if ab+bc < ca || bc+ca < ab || ca+ab < bc {
			bad++
		}
	}
	return float64(bad) / float64(maxTriples)
}

// accumBudgetBytes bounds the total per-extra-worker accumulator
// scratch a single scan may allocate.
const accumBudgetBytes = 256 << 20

func bytesPerAccum(n int, needSev, needCnt, needRat bool) int {
	per := 0
	if needSev {
		per += 8
	}
	if needCnt {
		per += 4
	}
	if needRat {
		per += 4
	}
	return n * n * per
}

func totalTriples(n int) int64 {
	return int64(n) * int64(n-1) * int64(n-2) / 6
}

// scanAll runs the triple-scan kernel over the whole matrix with an
// atomic-counter chunked work queue, adding raw ratio sums into sev,
// violation counts into cnt, and positive-detour violation counts into
// rat (any may be nil; only upper-triangle entries are written, raw —
// callers normalize/mirror). Returns the violating-triangle total.
func (e *Engine) scanAll(m *delayspace.Matrix, sev []float64, cnt, rat []int32) int64 {
	n := m.N()
	if n < 3 {
		return 0
	}
	// Contiguous row blocks sized so the block's delays and masks
	// (~the only state reused across one worker's grabs) stay L2
	// resident, with enough blocks left over to load-balance the
	// shrinking per-row work.
	chunk := 1 + (1<<16)/(8*n+1)
	if chunk > 64 {
		chunk = 64
	}
	numChunks := (n + chunk - 1) / chunk
	w := e.opts.workers()
	if w > numChunks {
		w = numChunks
	}
	if n < 128 {
		w = 1 // goroutine + merge overhead dominates tiny matrices
	}
	// The per-extra-worker accumulators cost O(N²) each; cap the
	// worker count so the scratch stays within a fixed budget instead
	// of scaling with GOMAXPROCS on huge matrices.
	if bytesPer := bytesPerAccum(n, sev != nil, cnt != nil, rat != nil); bytesPer > 0 {
		if maxExtra := accumBudgetBytes / bytesPer; w > 1+maxExtra {
			w = 1 + maxExtra
		}
	}
	// Fully measured rows take a tiled full-range scan with no mask
	// iteration at all; flag them once up front.
	e.rowFull = ensureBools(e.rowFull, n)
	rowFull := e.rowFull
	for i := 0; i < n; i++ {
		rowFull[i] = maskPopcount(m.MaskRow(i)) == n-1
	}
	if w <= 1 {
		ctx := &scanCtx{n: n, words: m.MaskWords(), sev: sev, cnt: cnt, rat: rat, rowFull: rowFull}
		return scanRows(m, ctx, 0, n)
	}

	e.growScratch(w-1, n, sev != nil, cnt != nil, rat != nil)
	// Scheduling: integer accumulation is order-independent, so
	// count/triangle-only scans pull chunks off an atomic work queue.
	// Float severity sums are not associative, so those scans assign
	// chunks statically by stride instead — every run with the same
	// worker count then groups each edge's contributions identically,
	// keeping results run-to-run deterministic (the stride also
	// balances the shrinking per-row work).
	var next, bad atomic.Int64
	deterministic := sev != nil
	run := func(worker int, sv []float64, ct, rt []int32) {
		ctx := &scanCtx{n: n, words: m.MaskWords(), sev: sv, cnt: ct, rat: rt, rowFull: rowFull}
		var local int64
		for blk := worker; blk < numChunks; {
			lo := blk * chunk
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			local += scanRows(m, ctx, lo, hi)
			if deterministic {
				blk += w
			} else {
				blk = int(next.Add(1)) - 1
			}
		}
		bad.Add(local)
	}
	if !deterministic {
		next.Store(int64(w)) // queue position after the seed chunks
	}
	var wg sync.WaitGroup
	for k := 0; k < w-1; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			run(k+1, pickFloats(e.accSev, k, sev), pickInts(e.accCnt, k, cnt), pickInts(e.accRat, k, rat))
		}(k)
	}
	run(0, sev, cnt, rat) // worker 0 adds into the destination directly
	wg.Wait()
	for k := 0; k < w-1; k++ {
		for i := 0; i < n-1; i++ {
			lo, hi := i*n+i+1, (i+1)*n
			if sev != nil {
				dst, src := sev[lo:hi], e.accSev[k][lo:hi]
				for x := range dst {
					dst[x] += src[x]
				}
			}
			if cnt != nil {
				dst, src := cnt[lo:hi], e.accCnt[k][lo:hi]
				for x := range dst {
					dst[x] += src[x]
				}
			}
			if rat != nil {
				dst, src := rat[lo:hi], e.accRat[k][lo:hi]
				for x := range dst {
					dst[x] += src[x]
				}
			}
		}
	}
	return bad.Load()
}

// scanCtx carries one worker's kernel state: the destination
// accumulators, the per-row fullness flags, and the violation index
// buffer, so the per-pair call passes a single pointer instead of a
// dozen arguments.
type scanCtx struct {
	n, words int
	sev      []float64
	cnt, rat []int32
	rowFull  []bool
	vc       [violTile]int32
}

// scanRows scans every triple whose lowest index falls in [lo, hi).
//
//tiv:hotpath O(N³/6) kernel: every rescan worker runs here
func scanRows(m *delayspace.Matrix, ctx *scanCtx, lo, hi int) int64 {
	words := ctx.words
	rowFull := ctx.rowFull
	var bad int64
	for a := lo; a < hi; a++ {
		rowA := m.Row(a)
		maskA := m.MaskRow(a)
		fullA := rowFull[a]
		// Pairs (a, b), b > a, with d(a,b) measured.
		bw := (a + 1) >> 6
		for w := bw; w < words; w++ {
			mw := maskA[w]
			if w == bw {
				mw &= ^uint64(0) << uint((a+1)&63)
			}
			for mw != 0 {
				b := w<<6 + bits.TrailingZeros64(mw)
				mw &= mw - 1
				bad += scanPair(m, ctx, rowA, maskA, a, b, fullA && rowFull[b])
			}
		}
	}
	return bad
}

func maskPopcount(mask []uint64) int {
	c := 0
	for _, w := range mask {
		c += bits.OnesCount64(w)
	}
	return c
}

// violTile is the scan tile size: large enough to amortize tile setup,
// small enough that the index buffer stays cache-hot.
const violTile = 256

// scanPair scans the triples (a, b, c) with c > b. When both rows are
// fully measured (the common case on the paper's data sets) the
// candidate range [b+1, n) is scanned directly in violTile-node tiles;
// otherwise candidates come from AND-ing the two measured-bitsets in
// 64-node tiles, with contiguous runs (range-trimmed words of a dense
// region) taking the same plain slice scan and only words with
// interior missing entries paying for per-bit extraction.
//
// Each tile runs a branch-free scan that only tests for violations —
// the test is an OR of two sign bits: s-dab < 0 (edge (a,b) longest)
// or dab-|dac-dbc| < 0 (another edge longest) — stacking the indices
// of the (rare) violating witnesses into vcp; a second, inline loop
// then attributes them to the strictly longest edge of their triple.
// Keeping the scan free of data-dependent branches and down to a
// handful of live registers is what lets it retire one triple every
// few cycles. The violation count always increments; the ratio sum
// and ratio count only when the detour is positive, matching the
// severity definition. Violations of edge (a, b) itself accumulate
// into scalars and land in the arrays once per pair, avoiding a
// scattered store per violation.
//
//tiv:hotpath inner pair kernel of the triangle scan
func scanPair(m *delayspace.Matrix, ctx *scanCtx, rowA []float64, maskA []uint64, a, b int, full bool) int64 {
	n := ctx.n
	words := ctx.words
	sev := ctx.sev
	cnt := ctx.cnt
	rat := ctx.rat
	vcp := &ctx.vc
	rowB := m.Row(b)
	dab := rowA[b]
	aBase := a * n
	bBase := b * n
	var bad int64
	var sumAB float64
	var cntAB, ratAB int32

	if full {
		// Fully measured rows: scan the candidate range directly in
		// 64-node blocks. denseViolMask tests each triple for a
		// violation — dab outside [|dac-dbc|, dac+dbc] — with no
		// data-dependent branches (AVX2 four-lanes-at-a-time on amd64,
		// sign-bit integer arithmetic elsewhere); the rare set bits
		// are then attributed by the processing loop below.
		for start := b + 1; start < n; start += 64 {
			end := start + 64
			if end > n {
				end = n
			}
			ra := rowA[start:end]
			rb := rowB[start:end]
			vm := denseViolMask(ra, rb, dab)
			if vm == 0 {
				continue
			}
			bad += int64(bits.OnesCount64(vm))
			for x := vm; x != 0; x &= x - 1 {
				c := start + bits.TrailingZeros64(x)
				dac, dbc := rowA[c], rowB[c]
				s := dac + dbc
				if s < dab {
					// Edge (a, b) is the longest: witness c.
					cntAB++
					if s > 0 {
						sumAB += dab / s
						ratAB++
					}
				} else {
					// Edge (a, c) or (b, c) is the longest. Select it
					// without a data-dependent branch (a coin flip to
					// the predictor): g is the sign of dbc-dac, and the
					// longer/shorter delays come from bit-blending the
					// two IEEE representations.
					db1 := math.Float64bits(dac)
					db2 := math.Float64bits(dbc)
					g := uint64(int64(db2-db1) >> 63) // all-ones when dac > dbc
					mx := math.Float64frombits(db2 ^ ((db2 ^ db1) & g))
					mn := math.Float64frombits(db1 ^ ((db2 ^ db1) & g))
					e := bBase + c + ((aBase - bBase) & int(int64(g)))
					alt := dab + mn
					if cnt != nil {
						cnt[e]++
					}
					if alt > 0 {
						if sev != nil {
							sev[e] += mx / alt
						}
						if rat != nil {
							rat[e]++
						}
					}
				}
			}
		}
	} else {
		maskB := m.MaskRow(b)
		cw := (b + 1) >> 6
		first := ^uint64(0) << uint((b+1)&63)
		for w := cw; w < words; w++ {
			and := maskA[w] & maskB[w]
			if w == cw {
				and &= first
			}
			if and == 0 {
				continue
			}
			base := w << 6
			nv := 0
			lo := bits.TrailingZeros64(and)
			width := 64 - lo - bits.LeadingZeros64(and)
			if and>>uint(lo) == ^uint64(0)>>uint(64-width) {
				// Contiguous candidates [base+lo, base+lo+width).
				start := base + lo
				ra := rowA[start : start+width]
				rb := rowB[start : start+width]
				for k := range ra {
					dac, dbc := ra[k], rb[k]
					s := dac + dbc
					v := math.Float64bits((dab-math.Abs(dac-dbc))*(s-dab)) >> 63
					vcp[nv&(violTile-1)] = int32(lo + k)
					nv += int(v)
				}
			} else {
				for x := and; x != 0; x &= x - 1 {
					c := bits.TrailingZeros64(x)
					dac, dbc := rowA[base+c], rowB[base+c]
					s := dac + dbc
					v := math.Float64bits((dab-math.Abs(dac-dbc))*(s-dab)) >> 63
					vcp[nv&(violTile-1)] = int32(c)
					nv += int(v)
				}
			}
			if nv == 0 {
				continue
			}
			bad += int64(nv)
			for _, k32 := range vcp[:nv] {
				c := base + int(k32)
				dac, dbc := rowA[c], rowB[c]
				s := dac + dbc
				if s < dab {
					cntAB++
					if s > 0 {
						sumAB += dab / s
						ratAB++
					}
				} else {
					// Edge (a, c) or (b, c) is the longest. Select it
					// without a data-dependent branch (a coin flip to
					// the predictor): g is the sign of dbc-dac, and the
					// longer/shorter delays come from bit-blending the
					// two IEEE representations.
					db1 := math.Float64bits(dac)
					db2 := math.Float64bits(dbc)
					g := uint64(int64(db2-db1) >> 63) // all-ones when dac > dbc
					mx := math.Float64frombits(db2 ^ ((db2 ^ db1) & g))
					mn := math.Float64frombits(db1 ^ ((db2 ^ db1) & g))
					e := bBase + c + ((aBase - bBase) & int(int64(g)))
					alt := dab + mn
					if cnt != nil {
						cnt[e]++
					}
					if alt > 0 {
						if sev != nil {
							sev[e] += mx / alt
						}
						if rat != nil {
							rat[e]++
						}
					}
				}
			}
		}
	}
	eAB := aBase + b
	if cnt != nil {
		cnt[eAB] += cntAB
	}
	if sev != nil {
		sev[eAB] += sumAB
	}
	if rat != nil {
		rat[eAB] += ratAB
	}
	return bad
}

// sampledSeverities estimates every edge's severity from one shared
// random subset of third nodes, scheduling row chunks over an atomic
// counter. Each edge is written exactly once, so no per-worker
// accumulators are needed.
func (e *Engine) sampledSeverities(dst *EdgeSeverities, m *delayspace.Matrix, B int) {
	n := m.N()
	sample := e.sampleThirdNodes(n, B)
	const chunk = 16
	numChunks := (n + chunk - 1) / chunk
	w := e.opts.workers()
	if w > numChunks {
		w = numChunks
	}
	var next atomic.Int64
	run := func() {
		for {
			blk := int(next.Add(1)) - 1
			if blk >= numChunks {
				break
			}
			lo := blk * chunk
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			for a := lo; a < hi; a++ {
				rowA := m.Row(a)
				maskA := m.MaskRow(a)
				for b := a + 1; b < n; b++ {
					if rowA[b] == delayspace.Missing {
						continue
					}
					dst.data[a*n+b] = sampledSeverity(m, rowA, maskA, a, b, sample)
				}
			}
		}
	}
	if w <= 1 {
		run()
	} else {
		var wg sync.WaitGroup
		for k := 1; k < w; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				run()
			}()
		}
		run()
		wg.Wait()
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dst.data[j*n+i] = dst.data[i*n+j]
		}
	}
}

// sampledSeverity estimates the severity of edge (a, b) from the given
// sample of third nodes. The sampled sum over the used candidates is
// rescaled to the N−2 possible witnesses and divided by |S| = N, so
// sampled and exact severities are on the same scale.
func sampledSeverity(m *delayspace.Matrix, rowA []float64, maskA []uint64, a, b int, sample []int) float64 {
	rowB := m.Row(b)
	maskB := m.MaskRow(b)
	d := rowA[b]
	var sum float64
	used := 0
	for _, x := range sample {
		if x == a || x == b {
			continue
		}
		used++
		w := x >> 6
		if maskA[w]&maskB[w]&(1<<uint(x&63)) == 0 {
			continue
		}
		if alt := rowA[x] + rowB[x]; alt < d && alt > 0 {
			sum += d / alt
		}
	}
	if used == 0 {
		return 0
	}
	n := m.N()
	return sum / float64(used) * float64(n-2) / float64(n)
}

// sampleThirdNodes draws k distinct nodes uniformly via a partial
// Fisher–Yates shuffle — O(N) setup plus O(k) swaps, where a full
// rand.Perm pays O(N) swaps and random draws.
func (e *Engine) sampleThirdNodes(n, k int) []int {
	if cap(e.idx) < n {
		e.idx = make([]int, n)
	}
	idx := e.idx[:n]
	for i := range idx {
		idx[i] = i
	}
	rng := e.rng()
	for i := 0; i < k; i++ {
		j := i + rng.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx[:k]
}

// finishSeverities converts raw upper-triangle ratio sums into
// severities: divide by |S| = N and mirror.
func finishSeverities(data []float64, n int) {
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := data[i*n+j] / float64(n)
			data[i*n+j] = v
			data[j*n+i] = v
		}
	}
}

func mirrorCounts(data []int32, n int) {
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			data[j*n+i] = data[i*n+j]
		}
	}
}

func ensureFloats(buf []float64, size int) []float64 {
	if cap(buf) < size {
		return make([]float64, size)
	}
	buf = buf[:size]
	clear(buf)
	return buf
}

func ensureBools(buf []bool, size int) []bool {
	if cap(buf) < size {
		return make([]bool, size)
	}
	return buf[:size]
}

func ensureInts(buf []int32, size int) []int32 {
	if cap(buf) < size {
		return make([]int32, size)
	}
	buf = buf[:size]
	clear(buf)
	return buf
}

func pickFloats(acc [][]float64, k int, dst []float64) []float64 {
	if dst == nil {
		return nil
	}
	return acc[k]
}

func pickInts(acc [][]int32, k int, dst []int32) []int32 {
	if dst == nil {
		return nil
	}
	return acc[k]
}

// growScratch sizes (and zeroes) the per-extra-worker accumulators.
func (e *Engine) growScratch(k, n int, needSev, needCnt, needRat bool) {
	for len(e.accSev) < k {
		e.accSev = append(e.accSev, nil)
		e.accCnt = append(e.accCnt, nil)
		e.accRat = append(e.accRat, nil)
	}
	for i := 0; i < k; i++ {
		if needSev {
			e.accSev[i] = ensureFloats(e.accSev[i], n*n)
		}
		if needCnt {
			e.accCnt[i] = ensureInts(e.accCnt[i], n*n)
		}
		if needRat {
			e.accRat[i] = ensureInts(e.accRat[i], n*n)
		}
	}
}
