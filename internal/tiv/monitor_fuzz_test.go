package tiv

import (
	"math"
	"testing"

	"tivaware/internal/delayspace"
)

// FuzzMonitorVsRescan decodes the fuzz input into a mutation sequence
// (singles and batches, measurements, removals, and zero delays) over
// a word-boundary-sized matrix, drives a Monitor with it, and requires
// the incremental state to match a fresh batch Engine.Analyze — counts
// and the violating-triangle total exactly, severities to 1e-9. The
// seed corpus runs as part of the normal test suite;
// `go test -fuzz=FuzzMonitorVsRescan` explores further.
func FuzzMonitorVsRescan(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 100, 1, 2, 0, 2, 0, 255})
	f.Add([]byte{7, 3, 0, 7, 3, 90, 3, 7, 90, 200, 200, 200})
	f.Add([]byte{0, 65, 10, 64, 65, 20, 63, 64, 30, 1, 64, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		const n = 66 // crosses the 64-bit mask word boundary
		m := delayspace.New(n)
		// Pre-measure a deterministic sparse base so removals and the
		// batch fallback have something to chew on.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j += 1 + (i+j)%3 {
				m.Set(i, j, float64(1+(i*31+j*17)%97))
			}
		}
		mon := NewMonitor(m, MonitorOptions{DirtyFraction: 0.002, JournalSize: 16})
		var batch []Update
		for len(data) >= 3 {
			i, j, v := int(data[0])%n, int(data[1])%n, data[2]
			data = data[3:]
			var rtt float64
			switch {
			case v == 0:
				rtt = delayspace.Missing
			case v == 255:
				rtt = 0
			default:
				rtt = float64(v) * 1.5
			}
			if i == j {
				// Every third op flushes as a batch instead, so the
				// fallback and delta paths interleave.
				if len(batch) > 0 {
					if _, err := mon.ApplyBatch(batch); err != nil {
						t.Fatalf("ApplyBatch: %v", err)
					}
					batch = batch[:0]
				}
				continue
			}
			if len(batch) > 0 || v%3 == 0 {
				batch = append(batch, Update{I: i, J: j, RTT: rtt})
				if len(batch) >= 5 {
					if _, err := mon.ApplyBatch(batch); err != nil {
						t.Fatalf("ApplyBatch: %v", err)
					}
					batch = batch[:0]
				}
				continue
			}
			if _, err := mon.ApplyUpdate(i, j, rtt); err != nil {
				t.Fatalf("ApplyUpdate(%d,%d,%g): %v", i, j, rtt, err)
			}
		}
		if len(batch) > 0 {
			if _, err := mon.ApplyBatch(batch); err != nil {
				t.Fatalf("ApplyBatch: %v", err)
			}
		}

		an := NewEngine(Options{}).Analyze(m)
		if mon.ViolatingTriangles() != an.ViolatingTriangles {
			t.Fatalf("violating triangles: monitor %d, rescan %d", mon.ViolatingTriangles(), an.ViolatingTriangles)
		}
		sev, cnt := mon.Severities(), mon.Counts()
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if cnt.At(i, j) != an.Counts.At(i, j) {
					t.Fatalf("count(%d,%d): monitor %d, rescan %d", i, j, cnt.At(i, j), an.Counts.At(i, j))
				}
				if d := math.Abs(sev.At(i, j) - an.Severities.At(i, j)); d > 1e-9 {
					t.Fatalf("severity(%d,%d) drifted by %g", i, j, d)
				}
			}
		}
	})
}
