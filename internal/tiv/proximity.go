package tiv

import (
	"math/rand"
	"sort"

	"tivaware/internal/delayspace"
)

func sortSlice(edges []delayspace.Edge, less func(a, b delayspace.Edge) bool) {
	sort.Slice(edges, func(i, j int) bool { return less(edges[i], edges[j]) })
}

// PairDifferences runs the paper's proximity experiment (§2.2,
// Fig 9): sample numEdges random edges; for each edge AB find its
// "nearest pair edge" AnBn (An, Bn the nearest neighbors of A and B)
// and a random pair edge, then record |severity(AB) − severity(pair)|
// for both pairings. If nearest-pair differences were much smaller
// than random-pair differences, proximity would predict TIV severity —
// the paper (and this reproduction) finds it does not.
func PairDifferences(m *delayspace.Matrix, sev *EdgeSeverities, numEdges int, seed int64) (nearest, random []float64) {
	n := m.N()
	if n < 4 || numEdges <= 0 {
		return nil, nil
	}
	rng := rand.New(rand.NewSource(seed))

	// Precompute nearest neighbors once; O(N²).
	nn := make([]int, n)
	for i := range nn {
		j, ok := m.NearestNeighbor(i)
		if !ok {
			j = -1
		}
		nn[i] = j
	}

	nearest = make([]float64, 0, numEdges)
	random = make([]float64, 0, numEdges)
	for t := 0; t < numEdges; t++ {
		a := rng.Intn(n)
		b := rng.Intn(n)
		if a == b || !m.Has(a, b) {
			continue
		}
		an, bn := nn[a], nn[b]
		if an < 0 || bn < 0 || an == bn || !m.Has(an, bn) {
			continue
		}
		base := sev.At(a, b)
		nearest = append(nearest, abs(base-sev.At(an, bn)))

		// Random pair edge for the same base edge.
		for {
			ra, rb := rng.Intn(n), rng.Intn(n)
			if ra == rb || !m.Has(ra, rb) {
				continue
			}
			random = append(random, abs(base-sev.At(ra, rb)))
			break
		}
	}
	return nearest, random
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// DelaySeverityPairs returns parallel slices (delay, severity) for
// every measured edge, the raw input to the paper's severity-vs-delay
// figures (Figs 4–7, binned at 10 ms).
func DelaySeverityPairs(m *delayspace.Matrix, sev *EdgeSeverities) (delays, sevs []float64) {
	n := m.N()
	delays = make([]float64, 0, n*(n-1)/2)
	sevs = make([]float64, 0, n*(n-1)/2)
	m.EachEdge(func(i, j int, d float64) bool {
		delays = append(delays, d)
		sevs = append(sevs, sev.At(i, j))
		return true
	})
	return delays, sevs
}
