// Package graph computes shortest paths over a delay matrix, treating
// every measured pair as an edge. The paper uses this in Figure 8: for
// an edge AC, the length of the shortest alternative path through
// other nodes reveals whether AC can cause severe violations (a long
// direct delay with a short alternative path is exactly a TIV).
package graph

import (
	"container/heap"
	"fmt"
	"math"

	"tivaware/internal/delayspace"
)

// ShortestFrom runs Dijkstra from src over the measured edges of m and
// returns the distance to every node (math.Inf(1) for unreachable
// nodes). The direct edge src–j participates like any other edge, so
// dist[j] <= m.At(src, j) whenever that pair is measured.
func ShortestFrom(m *delayspace.Matrix, src int) []float64 {
	n := m.N()
	if src < 0 || src >= n {
		panic(fmt.Sprintf("graph: source %d out of range [0,%d)", src, n))
	}
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	done := make([]bool, n)
	pq := &nodeHeap{{node: src, dist: 0}}
	for pq.Len() > 0 {
		item := heap.Pop(pq).(nodeItem)
		u := item.node
		if done[u] {
			continue
		}
		done[u] = true
		row := m.Row(u)
		for v := 0; v < n; v++ {
			if v == u || done[v] || row[v] == delayspace.Missing {
				continue
			}
			if nd := item.dist + row[v]; nd < dist[v] {
				dist[v] = nd
				heap.Push(pq, nodeItem{node: v, dist: nd})
			}
		}
	}
	return dist
}

// AllPairs computes shortest paths between every node pair. It is
// O(N·(E log N)) and intended for the moderate matrix sizes the
// experiments use; Figure 8 samples sources instead of calling this on
// paper-scale inputs.
func AllPairs(m *delayspace.Matrix) [][]float64 {
	out := make([][]float64, m.N())
	for i := range out {
		out[i] = ShortestFrom(m, i)
	}
	return out
}

// Detour reports, for the measured edge (i, j), the shortest
// alternative path length that does not use the direct edge. If no
// alternative exists it returns math.Inf(1).
func Detour(m *delayspace.Matrix, i, j int) float64 {
	if !m.Has(i, j) {
		panic(fmt.Sprintf("graph: Detour on unmeasured pair (%d,%d)", i, j))
	}
	// Dijkstra from i with the direct edge masked: instead of mutating
	// the caller's matrix, run the search and skip the i→j relaxation
	// at the first hop only (any other use of a path through a third
	// node is allowed, which is exactly the TIV "alternative path").
	n := m.N()
	dist := make([]float64, n)
	for k := range dist {
		dist[k] = math.Inf(1)
	}
	dist[i] = 0
	done := make([]bool, n)
	pq := &nodeHeap{{node: i, dist: 0}}
	for pq.Len() > 0 {
		item := heap.Pop(pq).(nodeItem)
		u := item.node
		if done[u] {
			continue
		}
		done[u] = true
		if u == j {
			return item.dist
		}
		row := m.Row(u)
		for v := 0; v < n; v++ {
			if v == u || done[v] || row[v] == delayspace.Missing {
				continue
			}
			if u == i && v == j {
				continue // mask the direct edge
			}
			if nd := item.dist + row[v]; nd < dist[v] {
				dist[v] = nd
				heap.Push(pq, nodeItem{node: v, dist: nd})
			}
		}
	}
	return math.Inf(1)
}

type nodeItem struct {
	node int
	dist float64
}

type nodeHeap []nodeItem

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(nodeItem)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}
