package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tivaware/internal/delayspace"
)

// tivTriangle builds the paper's canonical 3-node TIV example:
// d(A,B)=5, d(B,C)=5, d(C,A)=100.
func tivTriangle() *delayspace.Matrix {
	m := delayspace.New(3)
	m.Set(0, 1, 5)
	m.Set(1, 2, 5)
	m.Set(2, 0, 100)
	return m
}

func TestShortestFromTIVTriangle(t *testing.T) {
	m := tivTriangle()
	dist := ShortestFrom(m, 0)
	if dist[0] != 0 {
		t.Errorf("dist to self = %g", dist[0])
	}
	if dist[1] != 5 {
		t.Errorf("dist A->B = %g, want 5", dist[1])
	}
	if dist[2] != 10 {
		t.Errorf("dist A->C = %g, want 10 (the alternative path, not 100)", dist[2])
	}
}

func TestShortestFromDisconnected(t *testing.T) {
	m := delayspace.New(3)
	m.Set(0, 1, 7)
	dist := ShortestFrom(m, 0)
	if !math.IsInf(dist[2], 1) {
		t.Errorf("unreachable node dist = %g, want +Inf", dist[2])
	}
}

func TestShortestFromPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	ShortestFrom(delayspace.New(2), 5)
}

func TestAllPairsSymmetric(t *testing.T) {
	m := tivTriangle()
	d := AllPairs(m)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if d[i][j] != d[j][i] {
				t.Errorf("asymmetric shortest paths (%d,%d)", i, j)
			}
		}
	}
	if d[0][2] != 10 {
		t.Errorf("AllPairs[0][2] = %g", d[0][2])
	}
}

func TestDetourMasksDirectEdge(t *testing.T) {
	m := tivTriangle()
	if got := Detour(m, 0, 2); got != 10 {
		t.Errorf("Detour(0,2) = %g, want 10", got)
	}
	// When the direct edge is the ONLY path, detour is infinite.
	m2 := delayspace.New(2)
	m2.Set(0, 1, 5)
	if got := Detour(m2, 0, 1); !math.IsInf(got, 1) {
		t.Errorf("Detour with no alternative = %g, want +Inf", got)
	}
}

func TestDetourPanicsOnMissing(t *testing.T) {
	m := delayspace.New(3)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Detour(m, 0, 1)
}

// Property: shortest path never exceeds the direct edge, and in a
// metric (triangle-inequality-respecting) space it equals it.
func TestShortestPathProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(12)
		// Metric space: nodes on a line, delay = |coordinate diff|.
		coords := make([]float64, n)
		for i := range coords {
			coords[i] = rng.Float64() * 1000
		}
		m := delayspace.New(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				m.Set(i, j, math.Abs(coords[i]-coords[j]))
			}
		}
		for src := 0; src < n; src++ {
			dist := ShortestFrom(m, src)
			for j := 0; j < n; j++ {
				if j == src {
					continue
				}
				direct := m.At(src, j)
				if dist[j] > direct+1e-9 {
					return false // must not exceed direct edge
				}
				if dist[j] < direct-1e-9 {
					return false // metric space: direct is optimal
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: in an arbitrary (possibly TIV) space, Detour >= shortest
// path and shortest path <= direct edge.
func TestDetourProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		m := delayspace.New(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				m.Set(i, j, 1+rng.Float64()*500)
			}
		}
		for trial := 0; trial < 5; trial++ {
			i := rng.Intn(n)
			j := rng.Intn(n)
			if i == j {
				continue
			}
			sp := ShortestFrom(m, i)[j]
			det := Detour(m, i, j)
			if det < sp-1e-9 {
				return false
			}
			if sp > m.At(i, j)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func BenchmarkShortestFrom(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 300
	m := delayspace.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.Set(i, j, 1+rng.Float64()*500)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ShortestFrom(m, i%n)
	}
}
