package tivwire

import (
	"encoding/json"
	"io"
	"strings"
	"testing"
)

// FuzzSSEScanner feeds arbitrary bytes through the event-stream
// parser the subscription client runs on: truncated frames, absurd
// field lines, interleaved comments — none of it may panic or loop,
// and every parsed event must be well-formed (single-line name/id).
func FuzzSSEScanner(f *testing.F) {
	f.Add(": subscribed n=8\n\nid: 3\nevent: changeset\ndata: {\"version\":3}\n\n")
	f.Add("event: overflow\ndata: {}\n\n")
	f.Add("data: a\ndata: b\n\n: comment\n\nevent:\n\n")
	f.Add("id: 9\nevent: changeset\ndata: {\"version\":9,\"newly_violated\":[{\"i\":0,\"j\":1,\"severity\":2}]}")
	f.Add("\n\n\n")
	f.Add("event: changeset\r\ndata: {}\r\n\r\n")
	f.Fuzz(func(t *testing.T, stream string) {
		sc := NewSSEScanner(strings.NewReader(stream))
		for i := 0; i < 1<<16; i++ {
			ev, err := sc.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				return // bounded-line or reader errors are fine; panics are not
			}
			// A bare mid-line CR is just a byte to bufio.ScanLines;
			// only a LF can never survive into a single-line field.
			if strings.Contains(ev.Name, "\n") || strings.Contains(ev.ID, "\n") {
				t.Fatalf("event field crosses a line: %+v", ev)
			}
		}
		t.Fatal("scanner did not terminate on a finite stream")
	})
}

// FuzzChangeSetDecode exercises the subscription payload path: any
// JSON the daemon could be coerced into emitting (or an attacker into
// injecting) must decode or error cleanly, and the decoded set must
// survive the wire round trip.
func FuzzChangeSetDecode(f *testing.F) {
	f.Add(`{"version":3,"newly_violated":[{"i":0,"j":1,"severity":1.5}],"cleared":[]}`)
	f.Add(`{"version":18446744073709551615,"rescan":true}`)
	f.Add(`{"newly_violated":[{"i":-7,"j":99999999,"severity":-1e308}]}`)
	f.Add(`[]`)
	f.Add(`{`)
	f.Fuzz(func(t *testing.T, payload string) {
		var cs ChangeSet
		if err := json.Unmarshal([]byte(payload), &cs); err != nil {
			return
		}
		_ = cs.Empty()
		// Wire → in-process → wire must preserve the deltas whatever
		// the (possibly hostile) coordinate values are.
		edges := ToEdges(cs.NewlyViolated)
		back := FromEdges(edges)
		if len(back) != len(cs.NewlyViolated) {
			t.Fatalf("edge round trip changed length: %d != %d", len(back), len(cs.NewlyViolated))
		}
		for k := range back {
			if back[k] != cs.NewlyViolated[k] {
				t.Fatalf("edge round trip changed edge %d: %+v != %+v", k, back[k], cs.NewlyViolated[k])
			}
		}
		if _, err := json.Marshal(cs); err != nil {
			t.Fatalf("re-encoding decoded change set: %v", err)
		}
	})
}

// FuzzUpdateRequestDecode exercises the POST /v1/update body path.
func FuzzUpdateRequestDecode(f *testing.F) {
	f.Add(`{"updates":[{"i":0,"j":1,"rtt":12.5}]}`)
	f.Add(`{"updates":[{"i":-1,"j":-1,"rtt":-1}]}`)
	f.Add(`{"updates":null}`)
	f.Add(`{"updates":[{}]}`)
	f.Fuzz(func(t *testing.T, payload string) {
		var req UpdateRequest
		if err := json.Unmarshal([]byte(payload), &req); err != nil {
			return
		}
		ups := req.ToUpdates()
		if len(ups) != len(req.Updates) {
			t.Fatalf("ToUpdates changed length: %d != %d", len(ups), len(req.Updates))
		}
		for k, u := range ups {
			w := req.Updates[k]
			if u.I != w.I || u.J != w.J || !(u.RTT == w.RTT || (u.RTT != u.RTT && w.RTT != w.RTT)) {
				t.Fatalf("ToUpdates changed update %d: %+v != %+v", k, u, w)
			}
		}
	})
}
