package tivwire

import (
	"fmt"

	"tivaware/internal/tivaware"
)

// The batch surface: POST /v1/batch carries a vector of heterogeneous
// queries (the same typed union the single-shot endpoints decode
// into) and answers all of them against one pinned epoch. One round
// trip amortizes the per-request overhead that dominates once the
// plane is distributed; a gateway reuses the same framing shard-ward,
// so a K-shard scatter costs one request per shard per batch.

// Scatter mirrors tivaware.Scatter: a residue class of node ids.
type Scatter struct {
	Mod int `json:"mod,omitempty"`
	Rem int `json:"rem,omitempty"`
}

// Query mirrors tivaware.Query: one typed query from the union. Kind
// is a tivaware.QueryKind string; unused fields are ignored. The
// Candidates distinction matters on the wire: absent/null means
// "every node except the target", [] means an empty candidate set.
type Query struct {
	Kind       string  `json:"kind"`
	Target     int     `json:"target,omitempty"`
	K          int     `json:"k,omitempty"`
	Candidates []int   `json:"candidates"`
	Penalty    float64 `json:"penalty,omitempty"`
	Exclude    bool    `json:"exclude,omitempty"`
	I          int     `json:"i,omitempty"`
	J          int     `json:"j,omitempty"`
	Scatter    Scatter `json:"scatter"`
}

// FromQuery converts the in-process type.
func FromQuery(q tivaware.Query) Query {
	return Query{
		Kind:       string(q.Kind),
		Target:     q.Target,
		K:          q.K,
		Candidates: q.Candidates,
		Penalty:    q.SeverityPenalty,
		Exclude:    q.ExcludeViolated,
		I:          q.I,
		J:          q.J,
		Scatter:    Scatter{Mod: q.Scatter.Mod, Rem: q.Scatter.Rem},
	}
}

// ToQuery converts back to the in-process type. Unknown kinds pass
// through; they resolve to a per-query error, not a batch failure.
func (q Query) ToQuery() tivaware.Query {
	return tivaware.Query{
		Kind:            tivaware.QueryKind(q.Kind),
		Target:          q.Target,
		K:               q.K,
		Candidates:      q.Candidates,
		SeverityPenalty: q.Penalty,
		ExcludeViolated: q.Exclude,
		I:               q.I,
		J:               q.J,
		Scatter:         tivaware.Scatter{Mod: q.Scatter.Mod, Rem: q.Scatter.Rem},
	}
}

// FromQueries converts a batch of in-process queries.
func FromQueries(queries []tivaware.Query) []Query {
	out := make([]Query, len(queries))
	for i, q := range queries {
		out[i] = FromQuery(q)
	}
	return out
}

// ToQueries converts a wire batch back to in-process queries.
func ToQueries(queries []Query) []tivaware.Query {
	out := make([]tivaware.Query, len(queries))
	for i, q := range queries {
		out[i] = q.ToQuery()
	}
	return out
}

// BatchRequest is the POST /v1/batch body.
type BatchRequest struct {
	Queries []Query `json:"queries"`
}

// Result answers one batch query: Err on a per-query failure,
// otherwise exactly the response the query's single-shot endpoint
// would have produced. Responses are reused verbatim so batch and
// single-shot paths cannot drift.
type Result struct {
	Kind     string            `json:"kind"`
	Err      *Error            `json:"error,omitempty"`
	Rank     *RankResponse     `json:"rank,omitempty"`
	Detour   *DetourResponse   `json:"detour,omitempty"`
	Top      *TopResponse      `json:"top,omitempty"`
	Delay    *DelayResponse    `json:"delay,omitempty"`
	Analysis *AnalysisResponse `json:"analysis,omitempty"`
}

// BatchResponse is the POST /v1/batch response. Results align with
// the request's queries by index. Epoch is the pinned epoch the
// uncached queries were answered against (cache hits may carry
// earlier epoch stamps from the same source version; see DESIGN.md).
type BatchResponse struct {
	Epoch   uint64   `json:"epoch"`
	Results []Result `json:"results"`
}

// FromResult converts one in-process batch result to its wire shape.
// q is the query the result answers (rank targets and delay pairs
// echo request fields); errTo maps a per-query error to its envelope
// (the server's failure-taxonomy mapping).
func FromResult(q tivaware.Query, res tivaware.Result, epoch uint64, errTo func(error) Error) Result {
	kind := res.Kind
	if kind == "" {
		kind = q.Kind
	}
	out := Result{Kind: string(kind)}
	if res.Err != nil {
		e := errTo(res.Err)
		out.Err = &e
		return out
	}
	switch kind {
	case tivaware.KindRank, tivaware.KindClosest:
		out.Rank = &RankResponse{
			Target:     q.Target,
			Epoch:      epoch,
			Truncated:  res.Truncated,
			Selections: fromSelections(res.Selections),
		}
	case tivaware.KindDetour:
		out.Detour = &DetourResponse{Epoch: epoch, Detour: FromDetour(res.Detour)}
	case tivaware.KindTop:
		out.Top = &TopResponse{Epoch: epoch, Edges: FromEdges(res.Edges)}
	case tivaware.KindDelay:
		out.Delay = &DelayResponse{I: q.I, J: q.J, Delay: res.Delay, OK: res.DelayOK}
	case tivaware.KindAnalysis:
		out.Analysis = &AnalysisResponse{
			Epoch:                     epoch,
			Version:                   res.Analysis.Version,
			N:                         res.Analysis.N,
			ViolatingTriangles:        res.Analysis.ViolatingTriangles,
			Triangles:                 res.Analysis.Triangles,
			ViolatingTriangleFraction: res.Analysis.ViolatingTriangleFraction(),
		}
	}
	return out
}

// ToResult converts a wire result back to the in-process shape.
// errFrom maps an error envelope to the caller's typed error.
func (r Result) ToResult(errFrom func(Error) error) (tivaware.Result, error) {
	res := tivaware.Result{Kind: tivaware.QueryKind(r.Kind)}
	switch {
	case r.Err != nil:
		res.Err = errFrom(*r.Err)
	case r.Rank != nil:
		res.Selections = toSelections(r.Rank.Selections)
		res.Truncated = r.Rank.Truncated
	case r.Detour != nil:
		res.Detour = r.Detour.Detour.ToDetour()
	case r.Top != nil:
		res.Edges = ToEdges(r.Top.Edges)
	case r.Delay != nil:
		res.Delay, res.DelayOK = r.Delay.Delay, r.Delay.OK
	case r.Analysis != nil:
		res.Analysis = tivaware.AnalysisSummary{
			N:                  r.Analysis.N,
			ViolatingTriangles: r.Analysis.ViolatingTriangles,
			Triangles:          r.Analysis.Triangles,
			Version:            r.Analysis.Version,
		}
	default:
		return res, fmt.Errorf("tivwire: batch result %q carries no payload", r.Kind)
	}
	return res, nil
}

// fromSelections converts a ranking, preserving nil-ness.
func fromSelections(sels []tivaware.Selection) []Selection {
	if sels == nil {
		return nil
	}
	out := make([]Selection, len(sels))
	for i, s := range sels {
		out[i] = FromSelection(s)
	}
	return out
}

// toSelections converts a wire ranking, preserving nil-ness.
func toSelections(sels []Selection) []tivaware.Selection {
	if sels == nil {
		return nil
	}
	out := make([]tivaware.Selection, len(sels))
	for i, s := range sels {
		out[i] = s.ToSelection()
	}
	return out
}
