package tivwire

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
)

// The binary framing: a compact length-prefixed encoding of the same
// wire messages the JSON codec carries, negotiated per request via
// Accept/Content-Type (BinaryContentType). The two codecs are
// interchangeable by construction — one struct definition, two
// encodings — and the differential suite asserts equality at the
// decoded-struct level for every message.
//
// Frame layout:
//
//	offset 0: magic "TB"
//	offset 2: framing version (1)
//	offset 3: message type (one of the mt* codes)
//	offset 4: payload length, uint32 little-endian
//	offset 8: payload
//
// Payload primitives: unsigned counters as uvarint, ints as zig-zag
// varint, float64 as 8 little-endian IEEE-754 bytes, bool as one
// byte, string as uvarint length + bytes, slice as one presence byte
// (absent ≡ JSON null / omitted) + uvarint count + elements. Slice
// counts are validated against the remaining payload before any
// allocation, so hostile frames cannot drive memory use (see
// FuzzBinaryFrameDecode).

// BinaryContentType is the MIME type of binary-framed messages;
// clients opt in per request with Accept (responses) and
// Content-Type (bodies).
const BinaryContentType = "application/x-tiv-binary"

const (
	binMagic0    = 'T'
	binMagic1    = 'B'
	binVersion   = 1
	binHeaderLen = 8
)

// Message type codes. Append-only: codes are wire surface.
const (
	mtHealth byte = 1 + iota
	mtRankResponse
	mtDetourResponse
	mtTopResponse
	mtDelayResponse
	mtAnalysisResponse
	mtChangeSet
	mtError
	mtHello
	mtUpdateRequest
	mtBatchRequest
	mtBatchResponse
)

// Minimum encoded element sizes, used to bound slice counts against
// the remaining payload before allocating.
const (
	minSelection = 27 // node ≥1 + delay 8 + severity 8 + violated 1 + violations ≥1 + score 8
	minEdge      = 10 // i ≥1 + j ≥1 + severity 8
	minUpdate    = 10 // i ≥1 + j ≥1 + rtt 8
	minInt       = 1
	minQuery     = 10
	minResult    = 3 // kind ≥2 + ≥1 presence byte
)

// MarshalBinary encodes one wire message as a binary frame.
func MarshalBinary(msg any) ([]byte, error) { return AppendBinary(nil, msg) }

// writerPool and readerPool recycle the cursor structs: the indirect
// calls through per-field enc/dec function values defeat escape
// analysis, so a stack cursor would heap-allocate on every frame —
// pooling keeps the steady-state codec at zero allocations.
var (
	writerPool = sync.Pool{New: func() any { return new(binWriter) }}
	readerPool = sync.Pool{New: func() any { return new(binReader) }}
)

// AppendBinary appends msg's binary frame to dst and returns the
// extended slice, allocating nothing when dst has capacity. msg is
// one of the wire structs (pointer or value).
//
//tiv:hotpath steady-state encode: every response frame and pooled client body
func AppendBinary(dst []byte, msg any) ([]byte, error) {
	start := len(dst)
	w := writerPool.Get().(*binWriter)
	//lint:tiv allocfree appends into the caller-owned dst, whose capacity the pooled-buffer contract amortizes
	w.b = append(dst, binMagic0, binMagic1, binVersion, 0, 0, 0, 0, 0)
	mt, err := encodeMsg(w, msg)
	out := w.b
	w.b = nil // the caller owns the buffer; never retain it in the pool
	writerPool.Put(w)
	if err != nil {
		return dst, err
	}
	out[start+3] = mt
	binary.LittleEndian.PutUint32(out[start+4:start+8], uint32(len(out)-start-binHeaderLen))
	return out, nil
}

// UnmarshalBinary decodes one binary frame into a freshly allocated
// wire struct, returned as a pointer (*Health, *RankResponse, ...).
func UnmarshalBinary(data []byte) (any, error) {
	mt, payload, err := splitFrame(data)
	if err != nil {
		return nil, err
	}
	var msg any
	switch mt {
	case mtHealth:
		msg = new(Health)
	case mtRankResponse:
		msg = new(RankResponse)
	case mtDetourResponse:
		msg = new(DetourResponse)
	case mtTopResponse:
		msg = new(TopResponse)
	case mtDelayResponse:
		msg = new(DelayResponse)
	case mtAnalysisResponse:
		msg = new(AnalysisResponse)
	case mtChangeSet:
		msg = new(ChangeSet)
	case mtError:
		msg = new(Error)
	case mtHello:
		msg = new(Hello)
	case mtUpdateRequest:
		msg = new(UpdateRequest)
	case mtBatchRequest:
		msg = new(BatchRequest)
	case mtBatchResponse:
		msg = new(BatchResponse)
	default:
		return nil, fmt.Errorf("tivwire: binary frame has unknown message type %d", mt)
	}
	if err := decodePayload(payload, msg); err != nil {
		return nil, err
	}
	return msg, nil
}

// UnmarshalBinaryInto decodes one binary frame into msg (a pointer to
// the matching wire struct), reusing msg's existing slice capacity —
// the steady-state zero-allocation decode path. The frame's message
// type must match msg's type.
//
//tiv:hotpath steady-state decode into reused wire structs
func UnmarshalBinaryInto(data []byte, msg any) error {
	mt, payload, err := splitFrame(data)
	if err != nil {
		return err
	}
	want, ok := msgTypeOf(msg)
	if !ok {
		return fmt.Errorf("tivwire: no binary decoding into %T", msg)
	}
	if mt != want {
		return fmt.Errorf("tivwire: binary frame carries message type %d, want %d for %T", mt, want, msg)
	}
	return decodePayload(payload, msg)
}

// splitFrame validates the header and returns (type, payload).
func splitFrame(data []byte) (byte, []byte, error) {
	if len(data) < binHeaderLen {
		return 0, nil, fmt.Errorf("tivwire: binary frame truncated: %d bytes, want ≥ %d", len(data), binHeaderLen)
	}
	if data[0] != binMagic0 || data[1] != binMagic1 {
		return 0, nil, fmt.Errorf("tivwire: bad binary frame magic %q", data[:2])
	}
	if data[2] != binVersion {
		return 0, nil, fmt.Errorf("tivwire: unsupported binary framing version %d", data[2])
	}
	n := binary.LittleEndian.Uint32(data[4:8])
	if uint64(n) != uint64(len(data)-binHeaderLen) {
		return 0, nil, fmt.Errorf("tivwire: binary frame declares %d payload bytes, carries %d", n, len(data)-binHeaderLen)
	}
	return data[3], data[binHeaderLen:], nil
}

// msgTypeOf maps a wire struct pointer to its frame type code.
func msgTypeOf(msg any) (byte, bool) {
	switch msg.(type) {
	case *Health:
		return mtHealth, true
	case *RankResponse:
		return mtRankResponse, true
	case *DetourResponse:
		return mtDetourResponse, true
	case *TopResponse:
		return mtTopResponse, true
	case *DelayResponse:
		return mtDelayResponse, true
	case *AnalysisResponse:
		return mtAnalysisResponse, true
	case *ChangeSet:
		return mtChangeSet, true
	case *Error:
		return mtError, true
	case *Hello:
		return mtHello, true
	case *UpdateRequest:
		return mtUpdateRequest, true
	case *BatchRequest:
		return mtBatchRequest, true
	case *BatchResponse:
		return mtBatchResponse, true
	}
	return 0, false
}

// encodeMsg writes msg's payload and returns its type code.
func encodeMsg(w *binWriter, msg any) (byte, error) {
	switch m := msg.(type) {
	case *Health:
		encHealth(w, m)
		return mtHealth, nil
	case Health:
		encHealth(w, &m)
		return mtHealth, nil
	case *RankResponse:
		encRank(w, m)
		return mtRankResponse, nil
	case RankResponse:
		encRank(w, &m)
		return mtRankResponse, nil
	case *DetourResponse:
		encDetourResp(w, m)
		return mtDetourResponse, nil
	case DetourResponse:
		encDetourResp(w, &m)
		return mtDetourResponse, nil
	case *TopResponse:
		encTop(w, m)
		return mtTopResponse, nil
	case TopResponse:
		encTop(w, &m)
		return mtTopResponse, nil
	case *DelayResponse:
		encDelay(w, m)
		return mtDelayResponse, nil
	case DelayResponse:
		encDelay(w, &m)
		return mtDelayResponse, nil
	case *AnalysisResponse:
		encAnalysis(w, m)
		return mtAnalysisResponse, nil
	case AnalysisResponse:
		encAnalysis(w, &m)
		return mtAnalysisResponse, nil
	case *ChangeSet:
		encChangeSet(w, m)
		return mtChangeSet, nil
	case ChangeSet:
		encChangeSet(w, &m)
		return mtChangeSet, nil
	case *Error:
		encError(w, m)
		return mtError, nil
	case Error:
		encError(w, &m)
		return mtError, nil
	case *Hello:
		encHello(w, m)
		return mtHello, nil
	case Hello:
		encHello(w, &m)
		return mtHello, nil
	case *UpdateRequest:
		encUpdateReq(w, m)
		return mtUpdateRequest, nil
	case UpdateRequest:
		encUpdateReq(w, &m)
		return mtUpdateRequest, nil
	case *BatchRequest:
		encBatchReq(w, m)
		return mtBatchRequest, nil
	case BatchRequest:
		encBatchReq(w, &m)
		return mtBatchRequest, nil
	case *BatchResponse:
		encBatchResp(w, m)
		return mtBatchResponse, nil
	case BatchResponse:
		encBatchResp(w, &m)
		return mtBatchResponse, nil
	}
	//lint:tiv allocfree unknown-type tail is a programming error, never reached by the wire structs
	return 0, fmt.Errorf("tivwire: no binary encoding for %T", msg)
}

// decodePayload decodes a validated payload into the typed message,
// rejecting malformed primitives and trailing bytes.
func decodePayload(payload []byte, msg any) error {
	r := readerPool.Get().(*binReader)
	r.b, r.off, r.err = payload, 0, nil
	//lint:tiv allocfree open-coded defer closure stays on the stack; pinned by BenchmarkUnmarshalBinaryInto AllocsPerRun
	defer func() {
		r.b, r.err = nil, nil
		readerPool.Put(r)
	}()
	switch m := msg.(type) {
	case *Health:
		decHealth(r, m)
	case *RankResponse:
		decRank(r, m)
	case *DetourResponse:
		decDetourResp(r, m)
	case *TopResponse:
		decTop(r, m)
	case *DelayResponse:
		decDelay(r, m)
	case *AnalysisResponse:
		decAnalysis(r, m)
	case *ChangeSet:
		decChangeSet(r, m)
	case *Error:
		decError(r, m)
	case *Hello:
		decHello(r, m)
	case *UpdateRequest:
		decUpdateReq(r, m)
	case *BatchRequest:
		decBatchReq(r, m)
	case *BatchResponse:
		decBatchResp(r, m)
	default:
		return fmt.Errorf("tivwire: no binary decoding into %T", msg)
	}
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("tivwire: binary frame carries %d trailing bytes", len(r.b)-r.off)
	}
	return nil
}

// binWriter appends payload primitives.
type binWriter struct{ b []byte }

func (w *binWriter) u64(v uint64)  { w.b = binary.AppendUvarint(w.b, v) }
func (w *binWriter) i(v int)       { w.b = binary.AppendVarint(w.b, int64(v)) }
func (w *binWriter) i64(v int64)   { w.b = binary.AppendVarint(w.b, v) }
func (w *binWriter) f64(v float64) { w.b = binary.LittleEndian.AppendUint64(w.b, math.Float64bits(v)) }

func (w *binWriter) bool(v bool) {
	if v {
		w.b = append(w.b, 1)
	} else {
		w.b = append(w.b, 0)
	}
}

func (w *binWriter) str(s string) {
	w.u64(uint64(len(s)))
	w.b = append(w.b, s...)
}

// binReader consumes payload primitives, latching the first failure.
type binReader struct {
	b   []byte
	off int
	err error
}

//tiv:coldpath latches the first decode error; runs at most once per malformed frame
func (r *binReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("tivwire: binary decode: "+format, args...)
	}
}

func (r *binReader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("bad uvarint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *binReader) i64() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail("bad varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *binReader) i() int { return int(r.i64()) }

func (r *binReader) f64() float64 {
	if r.err != nil {
		return 0
	}
	if len(r.b)-r.off < 8 {
		r.fail("truncated float at offset %d", r.off)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v
}

func (r *binReader) bool() bool {
	if r.err != nil {
		return false
	}
	if r.off >= len(r.b) {
		r.fail("truncated bool at offset %d", r.off)
		return false
	}
	c := r.b[r.off]
	r.off++
	if c > 1 {
		r.fail("bad bool byte %d at offset %d", c, r.off-1)
		return false
	}
	return c == 1
}

func (r *binReader) str() string { return r.strInto("") }

// strInto decodes a string, returning prev without allocating when
// the encoded bytes equal it — the decode-into path re-reads the same
// enum-like strings (query kinds, status, error codes) every frame.
func (r *binReader) strInto(prev string) string {
	n := r.u64()
	if r.err != nil {
		return ""
	}
	if uint64(len(r.b)-r.off) < n {
		r.fail("string of %d bytes exceeds payload at offset %d", n, r.off)
		return ""
	}
	b := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	if string(b) == prev { // the comparison itself does not allocate
		return prev
	}
	//lint:tiv allocfree allocates only when the string actually changed; steady-state frames return prev
	return string(b)
}

// count reads a slice length, rejecting counts that cannot fit in the
// remaining payload given the minimum encoded element size — hostile
// frames must not drive allocation.
func (r *binReader) count(minElem int) int {
	n := r.u64()
	if r.err != nil {
		return 0
	}
	if n > uint64((len(r.b)-r.off)/minElem) {
		r.fail("slice count %d exceeds payload at offset %d", n, r.off)
		return 0
	}
	return int(n)
}

// resize returns s with length n, reusing capacity when possible. The
// present-but-empty case must not collapse to nil (nil is a distinct
// wire state, JSON null).
//
//tiv:coldpath grows reused capacity to the working size once; steady state re-slices
func resize[T any](s []T, n int) []T {
	if cap(s) >= n {
		s = s[:n]
		if s == nil {
			return make([]T, 0)
		}
		return s
	}
	return make([]T, n)
}

// encSlice writes a slice field. omitEmpty mirrors the field's JSON
// tag: omitempty fields encode empty-as-absent (JSON drops them), the
// rest preserve the nil/empty distinction.
func encSlice[T any](w *binWriter, s []T, omitEmpty bool, enc func(*binWriter, *T)) {
	present := s != nil
	if omitEmpty {
		present = len(s) > 0
	}
	w.bool(present)
	if !present {
		return
	}
	w.u64(uint64(len(s)))
	for i := range s {
		//lint:tiv allocfree enc is always one of the field codecs above, each scanned hot via its reference edge
		enc(w, &s[i])
	}
}

// decSlice reads a slice field into prev's storage; absent decodes as
// nil.
func decSlice[T any](r *binReader, prev []T, minElem int, dec func(*binReader, *T)) []T {
	if !r.bool() || r.err != nil {
		return nil
	}
	n := r.count(minElem)
	if r.err != nil {
		return nil
	}
	s := resize(prev, n)
	for i := range s {
		//lint:tiv allocfree dec is always one of the field codecs above, each scanned hot via its reference edge
		dec(r, &s[i])
		if r.err != nil {
			return s
		}
	}
	return s
}

func encInt(w *binWriter, v *int) { w.i(*v) }
func decInt(r *binReader, v *int) { *v = r.i() }

func encSelection(w *binWriter, s *Selection) {
	w.i(s.Node)
	w.f64(s.Delay)
	w.f64(s.Severity)
	w.bool(s.Violated)
	w.i(s.Violations)
	w.f64(s.Score)
}

func decSelection(r *binReader, s *Selection) {
	s.Node = r.i()
	s.Delay = r.f64()
	s.Severity = r.f64()
	s.Violated = r.bool()
	s.Violations = r.i()
	s.Score = r.f64()
}

func encEdge(w *binWriter, e *Edge) {
	w.i(e.I)
	w.i(e.J)
	w.f64(e.Severity)
}

func decEdge(r *binReader, e *Edge) {
	e.I = r.i()
	e.J = r.i()
	e.Severity = r.f64()
}

func encUpdate(w *binWriter, u *Update) {
	w.i(u.I)
	w.i(u.J)
	w.f64(u.RTT)
}

func decUpdate(r *binReader, u *Update) {
	u.I = r.i()
	u.J = r.i()
	u.RTT = r.f64()
}

func encHealth(w *binWriter, h *Health) {
	w.str(h.Status)
	w.i(h.N)
	w.bool(h.Live)
	w.u64(h.Epoch)
	w.u64(h.Version)
	w.bool(h.Cache != nil)
	if h.Cache != nil {
		w.u64(h.Cache.Hits)
		w.u64(h.Cache.Misses)
		w.i(h.Cache.Entries)
	}
}

func decHealth(r *binReader, h *Health) {
	h.Status = r.strInto(h.Status)
	h.N = r.i()
	h.Live = r.bool()
	h.Epoch = r.u64()
	h.Version = r.u64()
	if r.bool() {
		if h.Cache == nil {
			h.Cache = new(CacheStats)
		}
		h.Cache.Hits = r.u64()
		h.Cache.Misses = r.u64()
		h.Cache.Entries = r.i()
	} else {
		h.Cache = nil
	}
}

func encRank(w *binWriter, v *RankResponse) {
	w.i(v.Target)
	w.u64(v.Epoch)
	w.bool(v.Truncated)
	encSlice(w, v.Selections, false, encSelection)
}

func decRank(r *binReader, v *RankResponse) {
	v.Target = r.i()
	v.Epoch = r.u64()
	v.Truncated = r.bool()
	v.Selections = decSlice(r, v.Selections, minSelection, decSelection)
}

func encDetour(w *binWriter, d *Detour) {
	w.i(d.I)
	w.i(d.J)
	w.f64(d.Direct)
	w.i(d.Via)
	w.f64(d.ViaDelay)
	w.f64(d.Gain)
}

func decDetour(r *binReader, d *Detour) {
	d.I = r.i()
	d.J = r.i()
	d.Direct = r.f64()
	d.Via = r.i()
	d.ViaDelay = r.f64()
	d.Gain = r.f64()
}

func encDetourResp(w *binWriter, v *DetourResponse) {
	w.u64(v.Epoch)
	encDetour(w, &v.Detour)
}

func decDetourResp(r *binReader, v *DetourResponse) {
	v.Epoch = r.u64()
	decDetour(r, &v.Detour)
}

func encTop(w *binWriter, v *TopResponse) {
	w.u64(v.Epoch)
	encSlice(w, v.Edges, false, encEdge)
}

func decTop(r *binReader, v *TopResponse) {
	v.Epoch = r.u64()
	v.Edges = decSlice(r, v.Edges, minEdge, decEdge)
}

func encDelay(w *binWriter, v *DelayResponse) {
	w.i(v.I)
	w.i(v.J)
	w.f64(v.Delay)
	w.bool(v.OK)
}

func decDelay(r *binReader, v *DelayResponse) {
	v.I = r.i()
	v.J = r.i()
	v.Delay = r.f64()
	v.OK = r.bool()
}

func encAnalysis(w *binWriter, v *AnalysisResponse) {
	w.u64(v.Epoch)
	w.u64(v.Version)
	w.i(v.N)
	w.i64(v.ViolatingTriangles)
	w.i64(v.Triangles)
	w.f64(v.ViolatingTriangleFraction)
}

func decAnalysis(r *binReader, v *AnalysisResponse) {
	v.Epoch = r.u64()
	v.Version = r.u64()
	v.N = r.i()
	v.ViolatingTriangles = r.i64()
	v.Triangles = r.i64()
	v.ViolatingTriangleFraction = r.f64()
}

func encChangeSet(w *binWriter, v *ChangeSet) {
	w.u64(v.Version)
	w.bool(v.Rescan)
	encSlice(w, v.NewlyViolated, true, encEdge)
	encSlice(w, v.Cleared, true, encEdge)
}

func decChangeSet(r *binReader, v *ChangeSet) {
	v.Version = r.u64()
	v.Rescan = r.bool()
	v.NewlyViolated = decSlice(r, v.NewlyViolated, minEdge, decEdge)
	v.Cleared = decSlice(r, v.Cleared, minEdge, decEdge)
}

func encError(w *binWriter, v *Error) {
	w.str(v.Error)
	w.str(v.Code)
	w.f64(v.RetryAfter)
}

func decError(r *binReader, v *Error) {
	v.Error = r.strInto(v.Error)
	v.Code = r.strInto(v.Code)
	v.RetryAfter = r.f64()
}

func encHello(w *binWriter, v *Hello) {
	w.i(v.N)
	w.u64(v.Version)
	w.u64(v.Epoch)
}

func decHello(r *binReader, v *Hello) {
	v.N = r.i()
	v.Version = r.u64()
	v.Epoch = r.u64()
}

func encUpdateReq(w *binWriter, v *UpdateRequest) {
	encSlice(w, v.Updates, false, encUpdate)
}

func decUpdateReq(r *binReader, v *UpdateRequest) {
	v.Updates = decSlice(r, v.Updates, minUpdate, decUpdate)
}

func encQuery(w *binWriter, q *Query) {
	w.str(q.Kind)
	w.i(q.Target)
	w.i(q.K)
	encSlice(w, q.Candidates, false, encInt)
	w.f64(q.Penalty)
	w.bool(q.Exclude)
	w.i(q.I)
	w.i(q.J)
	w.i(q.Scatter.Mod)
	w.i(q.Scatter.Rem)
}

func decQuery(r *binReader, q *Query) {
	q.Kind = r.strInto(q.Kind)
	q.Target = r.i()
	q.K = r.i()
	q.Candidates = decSlice(r, q.Candidates, minInt, decInt)
	q.Penalty = r.f64()
	q.Exclude = r.bool()
	q.I = r.i()
	q.J = r.i()
	q.Scatter.Mod = r.i()
	q.Scatter.Rem = r.i()
}

func encBatchReq(w *binWriter, v *BatchRequest) {
	encSlice(w, v.Queries, false, encQuery)
}

func decBatchReq(r *binReader, v *BatchRequest) {
	v.Queries = decSlice(r, v.Queries, minQuery, decQuery)
}

func encResult(w *binWriter, v *Result) {
	w.str(v.Kind)
	w.bool(v.Err != nil)
	if v.Err != nil {
		encError(w, v.Err)
	}
	w.bool(v.Rank != nil)
	if v.Rank != nil {
		encRank(w, v.Rank)
	}
	w.bool(v.Detour != nil)
	if v.Detour != nil {
		encDetourResp(w, v.Detour)
	}
	w.bool(v.Top != nil)
	if v.Top != nil {
		encTop(w, v.Top)
	}
	w.bool(v.Delay != nil)
	if v.Delay != nil {
		encDelay(w, v.Delay)
	}
	w.bool(v.Analysis != nil)
	if v.Analysis != nil {
		encAnalysis(w, v.Analysis)
	}
}

func decResult(r *binReader, v *Result) {
	v.Kind = r.strInto(v.Kind)
	if r.bool() {
		if v.Err == nil {
			v.Err = new(Error)
		}
		decError(r, v.Err)
	} else {
		v.Err = nil
	}
	if r.bool() {
		if v.Rank == nil {
			v.Rank = new(RankResponse)
		}
		decRank(r, v.Rank)
	} else {
		v.Rank = nil
	}
	if r.bool() {
		if v.Detour == nil {
			v.Detour = new(DetourResponse)
		}
		decDetourResp(r, v.Detour)
	} else {
		v.Detour = nil
	}
	if r.bool() {
		if v.Top == nil {
			v.Top = new(TopResponse)
		}
		decTop(r, v.Top)
	} else {
		v.Top = nil
	}
	if r.bool() {
		if v.Delay == nil {
			v.Delay = new(DelayResponse)
		}
		decDelay(r, v.Delay)
	} else {
		v.Delay = nil
	}
	if r.bool() {
		if v.Analysis == nil {
			v.Analysis = new(AnalysisResponse)
		}
		decAnalysis(r, v.Analysis)
	} else {
		v.Analysis = nil
	}
}

func encBatchResp(w *binWriter, v *BatchResponse) {
	w.u64(v.Epoch)
	encSlice(w, v.Results, false, encResult)
}

func decBatchResp(r *binReader, v *BatchResponse) {
	v.Epoch = r.u64()
	v.Results = decSlice(r, v.Results, minResult, decResult)
}
