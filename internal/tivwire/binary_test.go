package tivwire

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

// wireMessages is one representative of every framed message type,
// deliberately exercising the awkward states: nil vs empty slices,
// absent optional structs, negative ints, zero floats, SSE rescan
// markers, and error envelopes.
func wireMessages() []any {
	return []any{
		&Health{Status: "ok", N: 64, Live: true, Epoch: 9, Version: 12},
		&Health{Status: "degraded", N: 3, Cache: &CacheStats{Hits: 10, Misses: 4, Entries: 2}},
		&RankResponse{Target: 5, Epoch: 2, Truncated: true, Selections: []Selection{
			{Node: 1, Delay: 10.5, Severity: 0.25, Violated: true, Violations: 3, Score: 11},
			{Node: -1, Delay: 0, Severity: 0, Violations: -1, Score: 0},
		}},
		&RankResponse{Target: 0, Selections: []Selection{}}, // present-empty, not null
		&RankResponse{Target: 7},                            // null selections
		&DetourResponse{Epoch: 4, Detour: Detour{I: 1, J: 2, Direct: 30, Via: 17, ViaDelay: 22.5, Gain: 7.5}},
		&DetourResponse{Detour: Detour{I: 0, J: 9, Direct: 5, Via: -1}}, // no detour found
		&TopResponse{Epoch: 1, Edges: []Edge{{I: 0, J: 1, Severity: 9.5}, {I: 4, J: 2, Severity: 0.125}}},
		&TopResponse{Edges: []Edge{}},
		&DelayResponse{I: 3, J: 8, Delay: 41.25, OK: true},
		&DelayResponse{I: 8, J: 3, OK: false},
		&AnalysisResponse{Epoch: 3, Version: 5, N: 100, ViolatingTriangles: 1234, Triangles: 161700, ViolatingTriangleFraction: 1234.0 / 161700},
		&ChangeSet{Version: 7, NewlyViolated: []Edge{{I: 1, J: 2, Severity: 3}}, Cleared: []Edge{{I: 4, J: 5}}},
		&ChangeSet{Version: 8, Rescan: true}, // the SSE resync marker
		&Error{Error: "node 99 out of range", Code: CodeBadRequest},
		&Error{Error: "shard down", Code: CodeUnavailable, RetryAfter: 1.5},
		&Hello{N: 32, Version: 6, Epoch: 6},
		&UpdateRequest{Updates: []Update{{I: 0, J: 1, RTT: 12.5}, {I: 2, J: 3, RTT: 99}}},
		&BatchRequest{Queries: []Query{
			{Kind: "rank", Target: 4, K: 8, Candidates: []int{1, 2, 3}, Penalty: 2, Exclude: true},
			{Kind: "rank", Target: 1, Candidates: []int{}}, // empty candidate set ≠ all nodes
			{Kind: "detour", I: 3, J: 9, Scatter: Scatter{Mod: 3, Rem: 1}},
			{Kind: "analysis"},
		}},
		&BatchResponse{Epoch: 11, Results: []Result{
			{Kind: "rank", Rank: &RankResponse{Target: 4, Epoch: 11, Selections: []Selection{{Node: 2, Score: 1}}}},
			{Kind: "detour", Err: &Error{Error: "node 99 out of range", Code: CodeBadRequest}},
			{Kind: "delay", Delay: &DelayResponse{I: 1, J: 2, Delay: 8, OK: true}},
			{Kind: "analysis", Analysis: &AnalysisResponse{Epoch: 11, N: 32, Triangles: 4960}},
		}},
	}
}

// TestBinaryJSONDifferential proves the two codecs are interchangeable
// at the decoded-struct level: for every message, JSON round trip and
// binary round trip must land on identical structs.
func TestBinaryJSONDifferential(t *testing.T) {
	for _, msg := range wireMessages() {
		t.Run(reflect.TypeOf(msg).Elem().Name(), func(t *testing.T) {
			jsBuf, err := json.Marshal(msg)
			if err != nil {
				t.Fatalf("json encode: %v", err)
			}
			viaJSON := reflect.New(reflect.TypeOf(msg).Elem()).Interface()
			if err := json.Unmarshal(jsBuf, viaJSON); err != nil {
				t.Fatalf("json decode: %v", err)
			}

			binBuf, err := MarshalBinary(msg)
			if err != nil {
				t.Fatalf("binary encode: %v", err)
			}
			viaBinary, err := UnmarshalBinary(binBuf)
			if err != nil {
				t.Fatalf("binary decode: %v", err)
			}

			if !reflect.DeepEqual(viaJSON, viaBinary) {
				t.Errorf("codecs disagree:\n json:   %#v\n binary: %#v", viaJSON, viaBinary)
			}
			// And the typed decode path must agree with the generic one.
			into := reflect.New(reflect.TypeOf(msg).Elem()).Interface()
			if err := UnmarshalBinaryInto(binBuf, into); err != nil {
				t.Fatalf("UnmarshalBinaryInto: %v", err)
			}
			if !reflect.DeepEqual(into, viaBinary) {
				t.Errorf("UnmarshalBinaryInto disagrees with UnmarshalBinary:\n into:    %#v\n generic: %#v", into, viaBinary)
			}
		})
	}
}

// TestBinaryRejectsMangledFrames spot-checks the validation layer:
// short frames, bad magic, bad version, length mismatches, type
// mismatches, trailing bytes.
func TestBinaryRejectsMangledFrames(t *testing.T) {
	frame, err := MarshalBinary(&Hello{N: 8, Version: 1, Epoch: 1})
	if err != nil {
		t.Fatal(err)
	}
	bad := [][]byte{
		nil,
		frame[:4],
		append([]byte("XX"), frame[2:]...),
		append([]byte{'T', 'B', 99}, frame[3:]...),
		frame[:len(frame)-1],                     // truncated payload vs declared length
		append(frame[:len(frame):len(frame)], 0), // extra byte vs declared length
	}
	for i, b := range bad {
		if _, err := UnmarshalBinary(b); err == nil {
			t.Errorf("mangled frame %d decoded without error", i)
		}
	}
	var h Health
	if err := UnmarshalBinaryInto(frame, &h); err == nil {
		t.Error("Hello frame decoded into *Health without error")
	}
	if err := UnmarshalBinaryInto(frame, 42); err == nil {
		t.Error("decode into non-message type did not error")
	}
	if _, err := MarshalBinary(struct{}{}); err == nil {
		t.Error("encoding a non-message type did not error")
	}
}

// TestBinarySteadyStateZeroAlloc pins the pooled traffic-plane
// property: encoding into a reused buffer and decoding into a reused
// struct allocates nothing once capacities are warm (string-free
// messages; decoded strings inherently allocate).
func TestBinarySteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops puts under the race detector; alloc counts are meaningless")
	}
	rank := &RankResponse{Target: 3, Epoch: 9, Selections: []Selection{
		{Node: 1, Delay: 2, Severity: 3, Violated: true, Violations: 4, Score: 5},
		{Node: 6, Delay: 7, Severity: 8, Violations: 9, Score: 10},
	}}
	cs := &ChangeSet{Version: 4, NewlyViolated: []Edge{{I: 1, J: 2, Severity: 3}}, Cleared: []Edge{{I: 9, J: 8, Severity: 7}}}

	var buf []byte
	var intoRank RankResponse
	var intoCS ChangeSet
	round := func() {
		var err error
		buf, err = AppendBinary(buf[:0], rank)
		if err != nil {
			t.Fatal(err)
		}
		if err := UnmarshalBinaryInto(buf, &intoRank); err != nil {
			t.Fatal(err)
		}
		buf, err = AppendBinary(buf[:0], cs)
		if err != nil {
			t.Fatal(err)
		}
		if err := UnmarshalBinaryInto(buf, &intoCS); err != nil {
			t.Fatal(err)
		}
	}
	round() // warm buffer and slice capacities
	if allocs := testing.AllocsPerRun(100, round); allocs != 0 {
		t.Errorf("steady-state round trip allocates %.1f objects/op, want 0", allocs)
	}
}

func BenchmarkBinaryRoundTrip(b *testing.B) {
	rank := &RankResponse{Target: 3, Epoch: 9, Selections: make([]Selection, 16)}
	for i := range rank.Selections {
		rank.Selections[i] = Selection{Node: i, Delay: float64(i), Score: float64(i) * 2}
	}
	var buf []byte
	var into RankResponse
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = AppendBinary(buf[:0], rank)
		if err != nil {
			b.Fatal(err)
		}
		if err := UnmarshalBinaryInto(buf, &into); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJSONRoundTrip(b *testing.B) {
	rank := &RankResponse{Target: 3, Epoch: 9, Selections: make([]Selection, 16)}
	for i := range rank.Selections {
		rank.Selections[i] = Selection{Node: i, Delay: float64(i), Score: float64(i) * 2}
	}
	var into RankResponse
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf, err := json.Marshal(rank)
		if err != nil {
			b.Fatal(err)
		}
		if err := json.Unmarshal(buf, &into); err != nil {
			b.Fatal(err)
		}
	}
}

// FuzzBinaryFrameDecode feeds arbitrary bytes to the frame decoder:
// it must never panic or over-allocate, and anything it accepts must
// re-encode to a stable fixed point (encode(decode(x)) is idempotent
// at the byte level — byte comparison also covers NaN payloads that
// defeat struct equality).
func FuzzBinaryFrameDecode(f *testing.F) {
	for _, msg := range wireMessages() {
		frame, err := MarshalBinary(msg)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
	}
	f.Add([]byte("TB"))
	f.Add([]byte{'T', 'B', 1, mtHealth, 0, 0, 0, 0})
	f.Add([]byte{'T', 'B', 1, mtBatchResponse, 255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := UnmarshalBinary(data)
		if err != nil {
			return
		}
		enc1, err := MarshalBinary(msg)
		if err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v", err)
		}
		msg2, err := UnmarshalBinary(enc1)
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		enc2, err := MarshalBinary(msg2)
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("encode/decode not idempotent:\n first:  %x\n second: %x", enc1, enc2)
		}
	})
}
