// Package tivwire defines the HTTP/JSON wire protocol between the
// tivd daemon (internal/tivd) and its Go client
// (internal/tivclient): request/response bodies, server-sent event
// payloads, and the conversions to and from the in-process tivaware
// types. Both sides import this package, so the protocol has exactly
// one definition.
//
// The protocol is versioned by path prefix (/v1/...); all bodies are
// JSON. Missing delays travel as -1 (delayspace.Missing), never as
// null, so a response is always a flat struct.
package tivwire

import (
	"tivaware/internal/delayspace"
	"tivaware/internal/tiv"
	"tivaware/internal/tivaware"
)

// Health is the GET /healthz response: liveness plus the epoch and
// source-version counters, so operators (and the smoke tests) can
// watch state advance without pulling O(N²) payloads.
type Health struct {
	Status  string `json:"status"` // "ok", or "degraded" when a sharded backend is running with shards down
	N       int    `json:"n"`
	Live    bool   `json:"live"`    // updates and subscriptions accepted
	Epoch   uint64 `json:"epoch"`   // service epoch sequence number
	Version uint64 `json:"version"` // delay-source version the epoch reflects
	// Cache reports the daemon's query-cache counters; absent when the
	// cache is disabled. Load tools diff two readings for a hit rate.
	Cache *CacheStats `json:"cache,omitempty"`
}

// CacheStats are the daemon's epoch-keyed query-cache counters,
// monotone since process start.
type CacheStats struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Entries int    `json:"entries"` // currently resident entries
}

// Selection mirrors tivaware.Selection.
type Selection struct {
	Node       int     `json:"node"`
	Delay      float64 `json:"delay"`
	Severity   float64 `json:"severity"`
	Violated   bool    `json:"violated"`
	Violations int     `json:"violations"` // -1 in sampled-severity mode
	Score      float64 `json:"score"`
}

// FromSelection converts the in-process type.
func FromSelection(s tivaware.Selection) Selection {
	return Selection{Node: s.Node, Delay: s.Delay, Severity: s.Severity,
		Violated: s.Violated, Violations: s.Violations, Score: s.Score}
}

// ToSelection converts back to the in-process type.
func (s Selection) ToSelection() tivaware.Selection {
	return tivaware.Selection{Node: s.Node, Delay: s.Delay, Severity: s.Severity,
		Violated: s.Violated, Violations: s.Violations, Score: s.Score}
}

// RankResponse is the GET /v1/rank (and /v1/closest) response.
type RankResponse struct {
	Target int    `json:"target"`
	Epoch  uint64 `json:"epoch"`
	// Truncated reports that more candidates ranked than the
	// requested (or daemon-capped) k and the tail was cut. Clients
	// needing the full ranking must not treat a truncated response as
	// complete.
	Truncated  bool        `json:"truncated,omitempty"`
	Selections []Selection `json:"selections"`
}

// Detour mirrors tivaware.Detour; Direct is -1 when unmeasured.
type Detour struct {
	I        int     `json:"i"`
	J        int     `json:"j"`
	Direct   float64 `json:"direct"`
	Via      int     `json:"via"` // -1 when no relay improves on the direct edge
	ViaDelay float64 `json:"via_delay"`
	Gain     float64 `json:"gain"`
}

// FromDetour converts the in-process type.
func FromDetour(d tivaware.Detour) Detour {
	return Detour{I: d.I, J: d.J, Direct: d.Direct, Via: d.Via, ViaDelay: d.ViaDelay, Gain: d.Gain}
}

// ToDetour converts back to the in-process type.
func (d Detour) ToDetour() tivaware.Detour {
	return tivaware.Detour{I: d.I, J: d.J, Direct: d.Direct, Via: d.Via, ViaDelay: d.ViaDelay, Gain: d.Gain}
}

// DetourResponse is the GET /v1/detour response.
type DetourResponse struct {
	Epoch  uint64 `json:"epoch"`
	Detour Detour `json:"detour"`
}

// Edge is one edge with an attached value (severity for /v1/top and
// subscription events, matching delayspace.Edge's Delay field).
type Edge struct {
	I        int     `json:"i"`
	J        int     `json:"j"`
	Severity float64 `json:"severity"`
}

// FromEdges converts severity-carrying delayspace edges.
func FromEdges(edges []delayspace.Edge) []Edge {
	out := make([]Edge, len(edges))
	for k, e := range edges {
		out[k] = Edge{I: e.I, J: e.J, Severity: e.Delay}
	}
	return out
}

// ToEdges converts back to severity-carrying delayspace edges.
func ToEdges(edges []Edge) []delayspace.Edge {
	out := make([]delayspace.Edge, len(edges))
	for k, e := range edges {
		out[k] = delayspace.Edge{I: e.I, J: e.J, Delay: e.Severity}
	}
	return out
}

// TopResponse is the GET /v1/top response: the k worst edges by
// severity, most severe first.
type TopResponse struct {
	Epoch uint64 `json:"epoch"`
	Edges []Edge `json:"edges"`
}

// DelayResponse is the GET /v1/delay response.
type DelayResponse struct {
	I     int     `json:"i"`
	J     int     `json:"j"`
	Delay float64 `json:"delay"` // -1 when OK is false
	OK    bool    `json:"ok"`
}

// AnalysisResponse is the GET /v1/analysis response: the aggregate
// triangle statistics (the O(N²) severity field stays server-side;
// use /v1/top or /v1/rank for edge-level data).
type AnalysisResponse struct {
	Epoch                     uint64  `json:"epoch"`
	Version                   uint64  `json:"version"`
	N                         int     `json:"n"`
	ViolatingTriangles        int64   `json:"violating_triangles"`
	Triangles                 int64   `json:"triangles"`
	ViolatingTriangleFraction float64 `json:"violating_triangle_fraction"`
}

// Update is one streamed edge measurement; RTT -1 (delayspace.Missing)
// removes the measurement.
type Update struct {
	I   int     `json:"i"`
	J   int     `json:"j"`
	RTT float64 `json:"rtt"`
}

// UpdateRequest is the POST /v1/update body: one or more updates,
// applied in order as one batch.
type UpdateRequest struct {
	Updates []Update `json:"updates"`
}

// ToUpdates converts to the in-process monitor updates.
func (r UpdateRequest) ToUpdates() []tiv.Update {
	out := make([]tiv.Update, len(r.Updates))
	for k, u := range r.Updates {
		out[k] = tiv.Update{I: u.I, J: u.J, RTT: u.RTT}
	}
	return out
}

// ChangeSet mirrors tiv.ChangeSet: how the violated-edge set moved
// under one applied update or batch. It is both the POST /v1/update
// response and the payload of every "changeset" server-sent event on
// /v1/subscribe.
type ChangeSet struct {
	Version       uint64 `json:"version"` // monitor version after the mutation
	Rescan        bool   `json:"rescan"`
	NewlyViolated []Edge `json:"newly_violated,omitempty"`
	Cleared       []Edge `json:"cleared,omitempty"`
}

// Empty reports whether the change set carries no set deltas.
func (c ChangeSet) Empty() bool {
	return len(c.NewlyViolated) == 0 && len(c.Cleared) == 0
}

// FromChangeSet converts the in-process type.
func FromChangeSet(cs tiv.ChangeSet) ChangeSet {
	return ChangeSet{
		Version:       cs.Version,
		Rescan:        cs.Rescan,
		NewlyViolated: FromEdges(cs.NewlyViolated),
		Cleared:       FromEdges(cs.Cleared),
	}
}

// Error is the body of every non-2xx response: a human-readable
// message plus a machine-readable code from the failure taxonomy
// below, so clients dispatch on Code (retry, resync, give up) instead
// of parsing message strings.
type Error struct {
	Error string `json:"error"`
	// Code classifies the failure; one of the Code* constants. Empty
	// on responses from pre-taxonomy daemons (treat by HTTP status).
	Code string `json:"code,omitempty"`
	// RetryAfter, in seconds, is the server's hint for when a
	// retryable failure is worth retrying; zero means no hint.
	RetryAfter float64 `json:"retry_after,omitempty"`
}

// The failure taxonomy. Retryable vs terminal is the load-bearing
// split: a retryable failure (the backend is temporarily unable to
// answer) is worth retrying — against the same daemon after
// RetryAfter, or immediately against a replica — while a terminal
// failure (the request itself is wrong, or the deployment cannot
// satisfy it) will fail identically everywhere and must surface.
const (
	// CodeBadRequest: malformed or out-of-range request. Terminal.
	CodeBadRequest = "bad_request"
	// CodeMethodNotAllowed: wrong HTTP method. Terminal.
	CodeMethodNotAllowed = "method_not_allowed"
	// CodeNotLive: the daemon serves a static matrix and cannot accept
	// updates or subscriptions. Terminal (until redeployed with -live).
	CodeNotLive = "not_live"
	// CodeDiverged: a sharded backend's replicas disagree; the answer
	// would be unreliable. Terminal for this request (operators must
	// intervene; see the tivshard failure model in DESIGN.md).
	CodeDiverged = "diverged"
	// CodeUnavailable: the backend (or enough of its shards) is
	// temporarily unreachable, shutting down, or out of capacity.
	// Retryable, after RetryAfter if set.
	CodeUnavailable = "unavailable"
	// CodeInternal: an unexpected server-side failure. Retryable (a
	// replica may not share it).
	CodeInternal = "internal"
)

// RetryableCode reports whether a taxonomy code marks a failure worth
// retrying. Unknown and empty codes return false — callers without a
// code should fall back to the HTTP status (5xx retryable).
func RetryableCode(code string) bool {
	switch code {
	case CodeUnavailable, CodeInternal:
		return true
	}
	return false
}

// Hello is the payload of the "hello" server-sent event: the first
// event on every /v1/subscribe stream, carrying the state counters at
// attach time. Reconnecting subscribers compare Version against the
// last change-set version they observed: equality proves the
// violated-edge picture survived the gap intact, anything else
// (updates applied while detached, or a daemon restart that reset the
// counters) means the picture is torn and must be resynced (TopEdges)
// before the new deltas are applied.
type Hello struct {
	N       int    `json:"n"`
	Version uint64 `json:"version"`
	Epoch   uint64 `json:"epoch"`
}
