package tivwire

import (
	"bufio"
	"io"
	"strings"
)

// SSEEvent is one parsed server-sent event from a /v1/subscribe
// stream: the event name, the id line (the shard's monitor version on
// changeset events; informational, the version also travels in the
// payload), and the data lines joined with newlines. Comment frames
// (the subscription handshake, heartbeats) are consumed silently.
type SSEEvent struct {
	Name string
	ID   string
	Data string
}

// SSEScanner incrementally parses a text/event-stream. Both the
// tivclient subscription loop and the fuzz tests run on this one
// parser, so a frame that panics the client would be caught here
// first. Frames are bounded at maxSSEFrame bytes per line; a
// truncated final event (stream ends before the blank-line
// terminator) is discarded, per the SSE convention that an event is
// only complete at its terminator.
type SSEScanner struct {
	sc *bufio.Scanner
}

// maxSSEFrame bounds one stream line; a line longer than this ends
// the stream with bufio.ErrTooLong instead of growing without bound.
const maxSSEFrame = 16 << 20

// NewSSEScanner wraps a stream body.
func NewSSEScanner(r io.Reader) *SSEScanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxSSEFrame)
	return &SSEScanner{sc: sc}
}

// Next returns the next complete event. It returns io.EOF at the end
// of the stream and the underlying read error otherwise; it never
// panics, whatever the stream carries.
func (s *SSEScanner) Next() (SSEEvent, error) {
	var ev SSEEvent
	has := false
	var data strings.Builder
	for s.sc.Scan() {
		line := s.sc.Text()
		switch {
		case line == "":
			if has {
				ev.Data = data.String()
				return ev, nil
			}
			// Comment-only block (handshake, heartbeat): keep going.
			ev, has = SSEEvent{}, false
			data.Reset()
		case strings.HasPrefix(line, ":"):
			// comment
		case strings.HasPrefix(line, "event:"):
			ev.Name = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
			has = true
		case strings.HasPrefix(line, "data:"):
			if data.Len() > 0 {
				data.WriteByte('\n')
			}
			data.WriteString(strings.TrimSpace(strings.TrimPrefix(line, "data:")))
			has = true
		case strings.HasPrefix(line, "id:"):
			ev.ID = strings.TrimSpace(strings.TrimPrefix(line, "id:"))
			has = true
		default:
			// Unknown field: ignored, per the SSE spec.
		}
	}
	if err := s.sc.Err(); err != nil {
		return SSEEvent{}, err
	}
	return SSEEvent{}, io.EOF
}
