//go:build !race

package tivwire

const raceEnabled = false
