package tivd

import (
	"context"

	"tivaware/internal/delayspace"
	"tivaware/internal/tiv"
	"tivaware/internal/tivaware"
)

// Backend is the query-and-update surface the HTTP server serves. Two
// implementations exist: the in-process tivaware.Service (via
// ServiceBackend — one daemon, one matrix) and tivshard.Gateway (a
// scatter-gather front over K shard daemons). Both speak through the
// same handlers, so a client cannot tell a gateway from a monolithic
// daemon by the wire protocol.
//
// Query methods return the epoch sequence number the answer reflects
// (stamped into the response bodies); for a gateway it is the gateway
// generation counter, see tivshard. The mod/rem pairs restrict relay
// and edge scans to a residue class of node ids (0 means
// unrestricted), the scatter primitive shard daemons answer for their
// gateway — see tivaware.QueryOptions.Mod.
//
// The signatures reference only tivaware/tiv/delayspace types, so an
// implementation never needs to import this package.
type Backend interface {
	// N returns the node count.
	N() int
	// Live reports whether updates and subscriptions are accepted.
	Live() bool
	// Health returns the current epoch and delay-source version.
	Health(ctx context.Context) (epoch, version uint64, err error)
	// Rank scores candidates for the target, best first.
	Rank(ctx context.Context, target int, candidates []int, opts tivaware.QueryOptions) ([]tivaware.Selection, uint64, error)
	// ClosestNode returns the best-ranked candidate.
	ClosestNode(ctx context.Context, target int, opts tivaware.QueryOptions) (tivaware.Selection, uint64, error)
	// DetourPath finds the best one-hop detour for (i, j) over relays
	// in the (mod, rem) residue class.
	DetourPath(ctx context.Context, i, j, mod, rem int) (tivaware.Detour, uint64, error)
	// TopEdges returns the k worst edges owned by the (mod, rem) class.
	TopEdges(ctx context.Context, k, mod, rem int) ([]delayspace.Edge, uint64, error)
	// Delay returns the delay estimate for (i, j).
	Delay(ctx context.Context, i, j int) (float64, bool, error)
	// QueryBatch answers a vector of typed queries against one pinned
	// epoch (returned alongside); per-query failures land in
	// Result.Err, the call-level error is whole-batch.
	QueryBatch(ctx context.Context, queries []tivaware.Query) ([]tivaware.Result, uint64, error)
	// CacheVersion returns the backend's logical state token, cheap
	// enough for every request. Equal token pairs guarantee identical
	// query answers — the coherence contract of the server's
	// epoch-keyed cache. For a service it is the source version pair;
	// for a gateway the generation counter (see tivshard.Backend).
	CacheVersion() (uint64, uint64)
	// Analysis returns the aggregate triangle statistics (only the
	// integer totals need to be populated) plus epoch and version.
	Analysis(ctx context.Context) (tiv.Analysis, uint64, uint64, error)
	// ApplyBatch applies edge measurements as one batch.
	ApplyBatch(ctx context.Context, updates []tiv.Update) (tiv.ChangeSet, error)
	// Subscribe registers fn for violated-edge change sets.
	Subscribe(fn func(tiv.ChangeSet)) (cancel func(), err error)
}

// serviceBackend adapts a tivaware.Service: every query pins one View
// so the response body and its epoch stamp are mutually consistent.
type serviceBackend struct {
	svc *tivaware.Service
}

// ServiceBackend exposes an in-process service as a Backend.
func ServiceBackend(svc *tivaware.Service) Backend { return serviceBackend{svc} }

func (b serviceBackend) N() int     { return b.svc.N() }
func (b serviceBackend) Live() bool { return b.svc.Live() }

func (b serviceBackend) Health(ctx context.Context) (uint64, uint64, error) {
	v, err := b.svc.View(ctx)
	if err != nil {
		return 0, 0, err
	}
	return v.Seq(), v.Version(), nil
}

func (b serviceBackend) Rank(ctx context.Context, target int, candidates []int, opts tivaware.QueryOptions) ([]tivaware.Selection, uint64, error) {
	v, err := b.svc.View(ctx)
	if err != nil {
		return nil, 0, err
	}
	sels, err := v.Rank(ctx, target, candidates, opts)
	return sels, v.Seq(), err
}

func (b serviceBackend) ClosestNode(ctx context.Context, target int, opts tivaware.QueryOptions) (tivaware.Selection, uint64, error) {
	v, err := b.svc.View(ctx)
	if err != nil {
		return tivaware.Selection{}, 0, err
	}
	sel, err := v.ClosestNode(ctx, target, opts)
	return sel, v.Seq(), err
}

func (b serviceBackend) DetourPath(ctx context.Context, i, j, mod, rem int) (tivaware.Detour, uint64, error) {
	v, err := b.svc.View(ctx)
	if err != nil {
		return tivaware.Detour{}, 0, err
	}
	d, err := v.DetourPathMod(ctx, i, j, mod, rem)
	return d, v.Seq(), err
}

func (b serviceBackend) TopEdges(ctx context.Context, k, mod, rem int) ([]delayspace.Edge, uint64, error) {
	v, err := b.svc.View(ctx)
	if err != nil {
		return nil, 0, err
	}
	edges, err := v.TopEdgesMod(k, mod, rem)
	return edges, v.Seq(), err
}

func (b serviceBackend) Delay(ctx context.Context, i, j int) (float64, bool, error) {
	v, err := b.svc.View(ctx)
	if err != nil {
		return 0, false, err
	}
	d, ok := v.Delay(i, j)
	return d, ok, nil
}

func (b serviceBackend) Analysis(ctx context.Context) (tiv.Analysis, uint64, uint64, error) {
	v, err := b.svc.View(ctx)
	if err != nil {
		return tiv.Analysis{}, 0, 0, err
	}
	an, err := v.Analysis()
	return an, v.Seq(), v.Version(), err
}

func (b serviceBackend) QueryBatch(ctx context.Context, queries []tivaware.Query) ([]tivaware.Result, uint64, error) {
	v, err := b.svc.View(ctx)
	if err != nil {
		return nil, 0, err
	}
	res, err := v.QueryBatch(ctx, queries)
	return res, v.Seq(), err
}

func (b serviceBackend) CacheVersion() (uint64, uint64) { return b.svc.Versions() }

func (b serviceBackend) ApplyBatch(_ context.Context, updates []tiv.Update) (tiv.ChangeSet, error) {
	return b.svc.ApplyBatch(updates)
}

func (b serviceBackend) Subscribe(fn func(tiv.ChangeSet)) (func(), error) {
	return b.svc.Subscribe(fn)
}
