package tivd

import (
	"context"
	"fmt"

	"tivaware/internal/tivframe"
	"tivaware/internal/tivwire"
)

// The framed transport's request surface. A framed daemon answers the
// same three mutating-free message families the HTTP endpoints do —
// batched queries, update batches, and health pings — through the
// exact same cores (resolveBatch, applyWire, healthWire), so the
// epoch-keyed cache, the request coalescing, and the failure taxonomy
// cannot drift between transports. SSE subscriptions stay on HTTP:
// a one-response-per-request envelope is the wrong shape for an
// unbounded server-push stream.

// FrameHandler adapts the daemon to tivframe: callers run it with
// tivframe.NewServer(srv.FrameHandler(), opts) over any raw TCP or
// unix listener.
func (s *Server) FrameHandler() tivframe.Handler { return frameHandler{s} }

type frameHandler struct{ s *Server }

// ServeFrame answers one framed request: *tivwire.BatchRequest (the
// query path), *tivwire.UpdateRequest (the write path), or
// *tivwire.Hello (the health ping). Anything else — including decoded
// messages that are responses, not requests — is a bad request.
func (h frameHandler) ServeFrame(ctx context.Context, msg any) any {
	switch m := msg.(type) {
	case *tivwire.BatchRequest:
		resp, err := h.s.resolveBatch(ctx, m)
		if err != nil {
			return frameError(err)
		}
		return resp
	case *tivwire.UpdateRequest:
		cs, err := h.s.applyWire(ctx, m)
		if err != nil {
			return frameError(err)
		}
		return &cs
	case *tivwire.Hello:
		hh, err := h.s.healthWire(ctx)
		if err != nil {
			return frameError(err)
		}
		return &hh
	default:
		e := envelope(tivwire.CodeBadRequest, fmt.Errorf("unsupported frame request %T", msg))
		return &e
	}
}

// frameError renders a core error as the wire envelope the HTTP path
// would have written (status travels as the taxonomy code; frames
// have no status line).
func frameError(err error) *tivwire.Error {
	_, e := errorEnvelope(err)
	return &e
}
