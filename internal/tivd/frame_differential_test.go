package tivd_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"tivaware/internal/synth"
	"tivaware/internal/tivaware"
	"tivaware/internal/tivclient"
	"tivaware/internal/tivd"
	"tivaware/internal/tivframe"
	"tivaware/internal/tivwire"
)

// The framed-transport differential suite: one daemon, served over
// HTTP and over frames simultaneously, must answer the full query
// surface identically on every transport — HTTP/JSON, HTTP/binary,
// and framed — and the framed batch path must be BIT-exact against
// the HTTP binary batch path (the response payloads are the same TB
// frame, compared byte for byte).

// startFramedDaemon serves svc over both transports and returns the
// HTTP base URL and the framed address.
func startFramedDaemon(t *testing.T, svc *tivaware.Service) (url, frameAddr string) {
	t.Helper()
	srv, err := tivd.New(svc, tivd.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fsrv := tivframe.NewServer(srv.FrameHandler(), tivframe.Options{})
	go fsrv.Serve(ln)
	t.Cleanup(func() {
		fsrv.Abort()
		srv.Close()
		ts.Close()
	})
	return ts.URL, ln.Addr().String()
}

// diffService builds the shared synthetic space with measurement
// holes, so skipped-candidate and unmeasured-edge paths differ too.
func diffService(t *testing.T, live bool) *tivaware.Service {
	t.Helper()
	cfg := synth.DS2Like(42, 11)
	cfg.MissingFrac = 0.08
	sp, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := tivaware.NewFromMatrix(sp.Matrix, tivaware.Options{Live: live, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

// frameCorpus is the full single-shot corpus the transports are
// compared over.
func frameCorpus(n int) []tivaware.Query {
	var qs []tivaware.Query
	opts := []tivaware.Query{
		{},
		{SeverityPenalty: 2.5},
		{SeverityPenalty: 1, ExcludeViolated: true},
		{Scatter: tivaware.Scatter{Mod: 3, Rem: 1}},
	}
	for _, target := range []int{0, 5, n - 1} {
		for _, o := range opts {
			q := o
			q.Kind = tivaware.KindRank
			q.Target = target
			qs = append(qs, q)
			q.Kind = tivaware.KindClosest
			qs = append(qs, q)
			kq := o
			kq.Kind = tivaware.KindRank
			kq.Target = target
			kq.K = 4
			qs = append(qs, kq)
		}
	}
	qs = append(qs,
		tivaware.Query{Kind: tivaware.KindDetour, I: 0, J: 1},
		tivaware.Query{Kind: tivaware.KindDetour, I: 2, J: n - 1, Scatter: tivaware.Scatter{Mod: 2, Rem: 0}},
		tivaware.Query{Kind: tivaware.KindTop, K: 10},
		tivaware.Query{Kind: tivaware.KindTop, K: 5, Scatter: tivaware.Scatter{Mod: 2, Rem: 1}},
		tivaware.Query{Kind: tivaware.KindDelay, I: 0, J: 1},
		tivaware.Query{Kind: tivaware.KindDelay, I: 3, J: n - 2},
		tivaware.Query{Kind: tivaware.KindAnalysis},
		// Error surfaces must agree across transports too.
		tivaware.Query{Kind: tivaware.KindRank, Target: n + 5},
		tivaware.Query{Kind: tivaware.KindDelay, I: -1, J: 2},
	)
	return qs
}

// TestFramedAgreesWithHTTPSingles runs every single-shot method over
// the HTTP/JSON, HTTP/binary, and framed clients and requires exact
// agreement, successes and failures alike.
func TestFramedAgreesWithHTTPSingles(t *testing.T) {
	svc := diffService(t, false)
	url, frameAddr := startFramedDaemon(t, svc)
	n := svc.N()

	jsonC := tivclient.New(url, tivclient.Options{})
	binC := tivclient.New(url, tivclient.Options{Binary: true})
	frameC := tivclient.New(url, tivclient.Options{FrameAddr: frameAddr})
	t.Cleanup(func() { frameC.Close() })
	clients := []struct {
		name string
		c    *tivclient.Client
	}{{"json", jsonC}, {"binary", binC}, {"frame", frameC}}

	ctx := context.Background()
	check := func(t *testing.T, label string, call func(c *tivclient.Client) (any, error)) {
		t.Helper()
		want, wantErr := call(jsonC)
		for _, cl := range clients[1:] {
			got, gotErr := call(cl.c)
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("%s over %s: err = %v, json err = %v", label, cl.name, gotErr, wantErr)
			}
			if gotErr != nil {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s over %s:\n got %#v\nwant %#v", label, cl.name, got, want)
			}
		}
	}

	for _, q := range frameCorpus(n) {
		q := q
		opts := tivaware.QueryOptions{
			SeverityPenalty: q.SeverityPenalty,
			ExcludeViolated: q.ExcludeViolated,
			Mod:             q.Scatter.Mod,
			Rem:             q.Scatter.Rem,
		}
		switch q.Kind {
		case tivaware.KindRank:
			if q.K > 0 {
				check(t, "KClosest", func(c *tivclient.Client) (any, error) {
					return c.KClosest(ctx, q.Target, q.K, opts)
				})
			} else {
				check(t, "Rank", func(c *tivclient.Client) (any, error) {
					return c.Rank(ctx, q.Target, nil, opts)
				})
			}
		case tivaware.KindClosest:
			check(t, "ClosestNode", func(c *tivclient.Client) (any, error) {
				return c.ClosestNode(ctx, q.Target, opts)
			})
		case tivaware.KindDetour:
			check(t, "DetourPathMod", func(c *tivclient.Client) (any, error) {
				return c.DetourPathMod(ctx, q.I, q.J, q.Scatter.Mod, q.Scatter.Rem)
			})
		case tivaware.KindTop:
			check(t, "TopEdgesMod", func(c *tivclient.Client) (any, error) {
				return c.TopEdgesMod(ctx, q.K, q.Scatter.Mod, q.Scatter.Rem)
			})
		case tivaware.KindDelay:
			check(t, "Delay", func(c *tivclient.Client) (any, error) {
				type dr struct {
					D  float64
					OK bool
				}
				d, ok, err := c.Delay(ctx, q.I, q.J)
				return dr{d, ok}, err
			})
		case tivaware.KindAnalysis:
			check(t, "Analysis", func(c *tivclient.Client) (any, error) {
				return c.Analysis(ctx)
			})
		}
	}

	check(t, "Healthz", func(c *tivclient.Client) (any, error) {
		h, err := c.Healthz(ctx)
		h.Cache = nil // counters advance between transports by design
		return h, err
	})
}

// TestFramedAgreesWithHTTPBatch scatters the whole corpus as batches
// through all three transports and requires identical result vectors.
func TestFramedAgreesWithHTTPBatch(t *testing.T) {
	svc := diffService(t, false)
	url, frameAddr := startFramedDaemon(t, svc)
	corpus := frameCorpus(svc.N())

	jsonC := tivclient.New(url, tivclient.Options{})
	binC := tivclient.New(url, tivclient.Options{Binary: true})
	frameC := tivclient.New(url, tivclient.Options{FrameAddr: frameAddr})
	t.Cleanup(func() { frameC.Close() })

	ctx := context.Background()
	batches := [][]tivaware.Query{
		corpus,       // everything at once
		corpus[:1],   // batch of one
		corpus[3:10], // a slice in the middle
	}
	for bi, batch := range batches {
		want, err := jsonC.QueryBatch(ctx, batch)
		if err != nil {
			t.Fatal(err)
		}
		for _, cl := range []struct {
			name string
			c    *tivclient.Client
		}{{"binary", binC}, {"frame", frameC}} {
			got, err := cl.c.QueryBatch(ctx, batch)
			if err != nil {
				t.Fatalf("batch %d over %s: %v", bi, cl.name, err)
			}
			if len(got) != len(want) {
				t.Fatalf("batch %d over %s: %d results, want %d", bi, cl.name, len(got), len(want))
			}
			for i := range got {
				gi, wi := got[i], want[i]
				// Per-query errors compare by presence and message: the
				// typed wrappers differ per transport, the surfaced
				// failure must not.
				if (gi.Err == nil) != (wi.Err == nil) {
					t.Fatalf("batch %d query %d over %s: err = %v, want %v", bi, i, cl.name, gi.Err, wi.Err)
				}
				gi.Err, wi.Err = nil, nil
				if !reflect.DeepEqual(gi, wi) {
					t.Fatalf("batch %d query %d over %s:\n got %#v\nwant %#v", bi, i, cl.name, gi, wi)
				}
			}
		}
	}
}

// TestFramedBatchBitExact is the literal claim: the TB frame a framed
// QueryBatch answers with is byte-identical to the body the HTTP
// binary batch endpoint writes for the same request.
func TestFramedBatchBitExact(t *testing.T) {
	svc := diffService(t, false)
	url, frameAddr := startFramedDaemon(t, svc)
	req := &tivwire.BatchRequest{Queries: tivwire.FromQueries(frameCorpus(svc.N()))}

	// HTTP binary: the raw response body is one TB frame.
	body, err := tivwire.AppendBinary(nil, req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest("POST", url+"/v1/batch", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", tivwire.BinaryContentType)
	hreq.Header.Set("Accept", tivwire.BinaryContentType)
	hresp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	httpFrame, err := io.ReadAll(hresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP batch: status %d: %s", hresp.StatusCode, httpFrame)
	}

	// Framed: decode the response, then re-encode it. The binary codec
	// is canonical (field order and widths are fixed), so the re-encoded
	// frame equals the transported one iff the decoded content does.
	conn, err := tivframe.Dial(context.Background(), frameAddr, tivframe.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var bresp tivwire.BatchResponse
	if err := conn.Call(context.Background(), req, &bresp); err != nil {
		t.Fatal(err)
	}
	framedFrame, err := tivwire.AppendBinary(nil, &bresp)
	if err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(framedFrame, httpFrame) {
		t.Fatalf("framed batch response is not bit-exact against HTTP binary:\nframed %d bytes, HTTP %d bytes", len(framedFrame), len(httpFrame))
	}
}

// TestFramedUpdatesAgree applies the identical update stream over
// frames and over HTTP to twin daemons and requires identical change
// sets and identical post-apply analysis.
func TestFramedUpdatesAgree(t *testing.T) {
	svcHTTP := diffService(t, true)
	svcFrame := diffService(t, true)
	urlHTTP, _ := startFramedDaemon(t, svcHTTP)
	urlFrame, frameAddr := startFramedDaemon(t, svcFrame)

	httpC := tivclient.New(urlHTTP, tivclient.Options{Binary: true})
	frameC := tivclient.New(urlFrame, tivclient.Options{FrameAddr: frameAddr})
	t.Cleanup(func() { frameC.Close() })

	ctx := context.Background()
	batches := [][]tivwire.Update{
		{{I: 0, J: 1, RTT: 500}},
		{{I: 2, J: 3, RTT: 1}, {I: 4, J: 5, RTT: 900}},
		{{I: 0, J: 1, RTT: 500}}, // idempotent re-apply
	}
	for bi, batch := range batches {
		want, err := httpC.ApplyBatch(ctx, batch)
		if err != nil {
			t.Fatal(err)
		}
		got, err := frameC.ApplyBatch(ctx, batch)
		if err != nil {
			t.Fatalf("framed ApplyBatch %d: %v", bi, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("batch %d change sets diverged:\n got %#v\nwant %#v", bi, got, want)
		}
	}
	// Out-of-range updates fail with the same taxonomy code.
	_, wantErr := httpC.ApplyBatch(ctx, []tivwire.Update{{I: -1, J: 2, RTT: 5}})
	_, gotErr := frameC.ApplyBatch(ctx, []tivwire.Update{{I: -1, J: 2, RTT: 5}})
	if wantErr == nil || gotErr == nil {
		t.Fatalf("out-of-range update: http err %v, framed err %v", wantErr, gotErr)
	}
	var wantE, gotE *tivclient.Error
	if !errors.As(wantErr, &wantE) || !errors.As(gotErr, &gotE) || wantE.Code != gotE.Code {
		t.Fatalf("update error codes diverged: http %v, framed %v", wantErr, gotErr)
	}

	wantA, err := httpC.Analysis(ctx)
	if err != nil {
		t.Fatal(err)
	}
	gotA, err := frameC.Analysis(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotA, wantA) {
		t.Fatalf("post-apply analysis diverged:\n got %#v\nwant %#v", gotA, wantA)
	}
}
