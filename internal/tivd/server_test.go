package tivd_test

import (
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"tivaware/internal/delayspace"
	"tivaware/internal/tivaware"
	"tivaware/internal/tivclient"
	"tivaware/internal/tivd"
	"tivaware/internal/tivwire"
)

// tivMatrix is the canonical hand-checkable TIV matrix (edge (0,1)
// violated; best detour 0→2→1 = 30, gain 70).
func tivMatrix() *delayspace.Matrix {
	m := delayspace.New(4)
	m.Set(0, 1, 100)
	m.Set(0, 2, 10)
	m.Set(1, 2, 20)
	m.Set(0, 3, 40)
	m.Set(1, 3, 40)
	m.Set(2, 3, 45)
	return m
}

// startDaemon serves svc over a test HTTP server and returns a
// connected client.
func startDaemon(t *testing.T, svc *tivaware.Service, opts tivd.Options) (*tivclient.Client, *tivd.Server) {
	t.Helper()
	srv, err := tivd.New(svc, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		srv.Close()
		ts.Close()
	})
	return tivclient.New(ts.URL, tivclient.Options{}), srv
}

func TestDaemonQueryRoundTrip(t *testing.T) {
	m := tivMatrix()
	svc, err := tivaware.NewFromMatrix(m, tivaware.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	client, _ := startDaemon(t, svc, tivd.Options{})
	ctx := context.Background()

	h, err := client.Healthz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.N != 4 || h.Live || h.Epoch == 0 {
		t.Errorf("healthz = %+v, want ok/4 nodes/batch/nonzero epoch", h)
	}

	// The networked answers must equal the in-process ones, shape for
	// shape: Client and Service both satisfy tivaware.Querier.
	opts := tivaware.QueryOptions{SeverityPenalty: 2}
	for _, q := range []struct {
		name   string
		remote tivaware.Querier
	}{{"remote", client}, {"in-process", svc}} {
		ranked, err := q.remote.Rank(ctx, 0, nil, opts)
		if err != nil {
			t.Fatalf("%s Rank: %v", q.name, err)
		}
		if len(ranked) != 3 || ranked[0].Node != 2 {
			t.Fatalf("%s Rank = %+v", q.name, ranked)
		}
	}
	want, err := svc.Rank(ctx, 0, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := client.Rank(ctx, 0, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	for k := range want {
		if got[k].Node != want[k].Node || got[k].Violated != want[k].Violated ||
			got[k].Violations != want[k].Violations ||
			math.Abs(got[k].Score-want[k].Score) > 1e-12 ||
			math.Abs(got[k].Severity-want[k].Severity) > 1e-12 {
			t.Errorf("rank[%d]: remote %+v, in-process %+v", k, got[k], want[k])
		}
	}

	top2, err := client.KClosest(ctx, 0, 2, tivaware.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(top2) != 2 || top2[0].Node != 2 || top2[1].Node != 3 {
		t.Errorf("KClosest = %+v", top2)
	}

	best, err := client.ClosestNode(ctx, 0, tivaware.QueryOptions{ExcludeViolated: true})
	if err != nil {
		t.Fatal(err)
	}
	if best.Node != 2 || best.Violated {
		t.Errorf("ClosestNode = %+v", best)
	}

	d, err := client.DetourPath(ctx, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Via != 2 || d.ViaDelay != 30 || d.Gain != 70 || d.Direct != 100 || !d.Beneficial() {
		t.Errorf("DetourPath = %+v", d)
	}

	top, err := client.TopEdges(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 1 || top[0].I != 0 || top[0].J != 1 || top[0].Delay <= 0 {
		t.Errorf("TopEdges = %+v, want the violated edge (0,1)", top)
	}

	delay, ok, err := client.Delay(ctx, 0, 2)
	if err != nil || !ok || delay != 10 {
		t.Errorf("Delay(0,2) = %g,%v,%v, want 10,true,nil", delay, ok, err)
	}
	if _, ok, err := client.Delay(ctx, 1, 1); err != nil || ok {
		// The diagonal is measured by definition; use an unmeasured
		// check on a holey pair instead below. Delay(1,1) is (0,true).
		_ = ok
	}

	an, err := client.Analysis(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Edge (0,1) is violated by both witnesses 2 and 3: two violating
	// triples out of C(4,3) = 4.
	if an.ViolatingTriangles != 2 || an.N != 4 || an.Triangles != 4 {
		t.Errorf("Analysis = %+v", an)
	}

	// Batch daemons reject updates and subscriptions.
	if _, err := client.ApplyUpdate(ctx, 0, 1, 50); err == nil {
		t.Error("ApplyUpdate on a batch daemon should error")
	}
	if err := client.Subscribe(ctx, nil, func(tivwire.ChangeSet) {}); err == nil {
		t.Error("Subscribe on a batch daemon should error")
	}
}

func TestDaemonUpdateAndSubscribeRoundTrip(t *testing.T) {
	m := tivMatrix()
	m.Set(0, 1, 25) // start violation-free (10+20 = 30 > 25)
	svc, err := tivaware.NewFromMatrix(m, tivaware.Options{Live: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	client, _ := startDaemon(t, svc, tivd.Options{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	h, err := client.Healthz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Live {
		t.Fatal("live daemon reports live=false")
	}

	// Subscribe first, handshake-synchronized, then push an update
	// through the wire and expect its change set on the stream.
	ready := make(chan struct{})
	events := make(chan tivwire.ChangeSet, 16)
	var wg sync.WaitGroup
	wg.Add(1)
	var subErr error
	go func() {
		defer wg.Done()
		subErr = client.Subscribe(ctx, ready, func(cs tivwire.ChangeSet) { events <- cs })
	}()
	select {
	case <-ready:
	case <-time.After(5 * time.Second):
		t.Fatal("subscription handshake timed out")
	}

	cs, err := client.ApplyUpdate(ctx, 0, 1, 100) // violate edge (0,1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.NewlyViolated) != 1 || cs.NewlyViolated[0].I != 0 || cs.NewlyViolated[0].J != 1 {
		t.Fatalf("update response = %+v, want edge (0,1) newly violated", cs)
	}

	select {
	case ev := <-events:
		if len(ev.NewlyViolated) != 1 || ev.NewlyViolated[0].I != 0 || ev.NewlyViolated[0].J != 1 {
			t.Errorf("subscription event = %+v, want edge (0,1) newly violated", ev)
		}
		if ev.Version != cs.Version {
			t.Errorf("event version %d != update response version %d", ev.Version, cs.Version)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("subscription event did not arrive")
	}

	// The daemon's epoch advanced and its analysis reflects the update.
	an, err := client.Analysis(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if an.ViolatingTriangles != 2 {
		t.Errorf("post-update analysis = %+v, want 2 violating triangles", an)
	}
	if an.Epoch <= h.Epoch {
		t.Errorf("epoch did not advance across the update: %d then %d", h.Epoch, an.Epoch)
	}

	// Clear the violation through a batch; the stream reports it.
	if _, err := client.ApplyBatch(ctx, []tivwire.Update{{I: 0, J: 1, RTT: 25}}); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-events:
		if len(ev.Cleared) != 1 {
			t.Errorf("clear event = %+v, want edge (0,1) cleared", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("clear event did not arrive")
	}

	// Cancelling the context shuts the stream down cleanly.
	cancel()
	wg.Wait()
	if subErr != nil {
		t.Errorf("Subscribe after cancel: %v", subErr)
	}
}

func TestDaemonValidationErrors(t *testing.T) {
	svc, err := tivaware.NewFromMatrix(tivMatrix(), tivaware.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	client, srv := startDaemon(t, svc, tivd.Options{MaxRankK: 8})
	ctx := context.Background()

	if _, err := client.Rank(ctx, 99, nil, tivaware.QueryOptions{}); err == nil {
		t.Error("out-of-range target should error")
	}
	if _, err := client.Rank(ctx, 0, []int{1, 1}, tivaware.QueryOptions{}); err == nil {
		t.Error("duplicate candidates should error")
	}
	if _, err := client.KClosest(ctx, 0, 99, tivaware.QueryOptions{}); err == nil {
		t.Error("k beyond MaxRankK should error")
	}
	if _, err := client.KClosest(ctx, 0, 0, tivaware.QueryOptions{}); err == nil {
		t.Error("k = 0 should error")
	}
	if _, err := client.DetourPath(ctx, 1, 1); err == nil {
		t.Error("diagonal detour should error")
	}
	if _, _, err := client.Delay(ctx, 0, 99); err == nil {
		t.Error("out-of-range delay pair should error")
	}

	// Wrong methods are rejected with Allow headers.
	resp, err := http.Get(client.BaseURL() + "/v1/update")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/update = %d, want 405", resp.StatusCode)
	}
	_ = srv
}

// TestClientEmptyCandidatesParity pins Querier parity for an
// explicitly empty candidate set: the wire cannot express it (an
// absent parameter means all nodes), so the client must reproduce
// the Service's semantics locally instead of silently ranking
// everything.
func TestClientEmptyCandidatesParity(t *testing.T) {
	svc, err := tivaware.NewFromMatrix(tivMatrix(), tivaware.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	client, _ := startDaemon(t, svc, tivd.Options{})
	ctx := context.Background()
	empty := tivaware.QueryOptions{Candidates: []int{}}

	for _, q := range []struct {
		name string
		q    tivaware.Querier
	}{{"in-process", svc}, {"remote", client}} {
		ranked, err := q.q.Rank(ctx, 0, []int{}, tivaware.QueryOptions{})
		if err != nil || len(ranked) != 0 {
			t.Errorf("%s Rank with empty candidates = %v, %v; want empty, nil", q.name, ranked, err)
		}
		ranked, err = q.q.KClosest(ctx, 0, 2, empty)
		if err != nil || len(ranked) != 0 {
			t.Errorf("%s KClosest with empty candidates = %v, %v; want empty, nil", q.name, ranked, err)
		}
		if _, err := q.q.ClosestNode(ctx, 0, empty); err == nil {
			t.Errorf("%s ClosestNode with empty candidates should error", q.name)
		}
	}
}

// TestRankTruncationIsSignalled: a daemon cap below the candidate
// count must surface as an explicit error from Client.Rank, never a
// silently shortened ranking.
func TestRankTruncationIsSignalled(t *testing.T) {
	svc, err := tivaware.NewFromMatrix(tivMatrix(), tivaware.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	client, _ := startDaemon(t, svc, tivd.Options{MaxRankK: 2}) // 3 candidates rank for node 0
	ctx := context.Background()
	if _, err := client.Rank(ctx, 0, nil, tivaware.QueryOptions{}); err == nil {
		t.Error("truncated Rank should error")
	}
	// KClosest within the cap still works and is explicitly bounded.
	top2, err := client.KClosest(ctx, 0, 2, tivaware.QueryOptions{})
	if err != nil || len(top2) != 2 {
		t.Errorf("KClosest(0,2) under cap = %v, %v", top2, err)
	}
}

// TestCloseRacesSubscribe: a Subscribe arriving while the server
// shuts down must either be rejected or have its stream cancelled —
// never survive Close and hang Shutdown.
func TestCloseRacesSubscribe(t *testing.T) {
	m := tivMatrix()
	svc, err := tivaware.NewFromMatrix(m, tivaware.Options{Live: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 20; round++ {
		srv, err := tivd.New(svc, tivd.Options{})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		client := tivclient.New(ts.URL, tivclient.Options{})
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		done := make(chan struct{})
		go func() {
			defer close(done)
			// Outcome is irrelevant (rejected or cancelled); only
			// termination matters.
			_ = client.Subscribe(ctx, nil, func(tivwire.ChangeSet) {})
		}()
		srv.Close() // race against the subscription registering
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("subscription survived Server.Close")
		}
		cancel()
		ts.Close()
	}
}
