package tivd

import (
	"context"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"tivaware/internal/tivaware"
	"tivaware/internal/tivwire"
)

// The epoch-keyed hot-query cache. Epochs are immutable and keyed by
// the backend's version pair (Backend.CacheVersion): equal versions
// guarantee identical answers, so every cache key embeds the pair and
// the cache needs no invalidation — an update moves the version,
// every old key simply stops being generated, and stale entries age
// out of the LRU. Concurrent identical misses coalesce behind one
// backend computation (the thundering-herd guard for hot keys).
//
// Entries are stored as decoded wire results, not encoded bytes, so
// one entry serves both the JSON and binary codecs and the batch and
// single-shot paths; re-encoding a hit is a few microseconds against
// the O(N) scan a miss costs.

// queryCache is a fixed-capacity LRU keyed by canonical query key
// (version pair included) with per-key singleflight coalescing.
type queryCache struct {
	cap int

	mu      sync.Mutex
	entries map[string]*cacheEntry
	head    *cacheEntry // most recent
	tail    *cacheEntry // least recent
	flights map[string]*cacheFlight

	hits   atomic.Uint64
	misses atomic.Uint64
}

// cacheEntry is one resident result on the LRU list.
type cacheEntry struct {
	key        string
	val        *tivwire.Result
	epoch      uint64
	prev, next *cacheEntry
}

// cacheFlight is one in-progress computation concurrent callers wait
// on; the fields are written once before done closes.
type cacheFlight struct {
	done  chan struct{}
	val   *tivwire.Result
	epoch uint64
	err   error
}

func newQueryCache(capacity int) *queryCache {
	return &queryCache{
		cap:     capacity,
		entries: make(map[string]*cacheEntry, capacity),
		flights: make(map[string]*cacheFlight),
	}
}

// stats returns the cache counters for /healthz.
func (c *queryCache) stats() *tivwire.CacheStats {
	c.mu.Lock()
	n := len(c.entries)
	c.mu.Unlock()
	return &tivwire.CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load(), Entries: n}
}

// get returns the cached result for key, bumping its recency. The
// returned result is shared and must not be mutated.
func (c *queryCache) get(key string) (*tivwire.Result, uint64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		return nil, 0, false
	}
	c.bumpLocked(e)
	c.hits.Add(1)
	return e.val, e.epoch, true
}

// put inserts a computed result (evicting the least-recent entry at
// capacity). Callers only put results whose key version pair was
// re-validated after the compute, so a stored entry can never witness
// a state its key predates.
func (c *queryCache) put(key string, val *tivwire.Result, epoch uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.insertLocked(key, val, epoch)
}

// do returns the result for key, computing it at most once across
// concurrent callers. compute runs on exactly one caller (the rest
// wait for its outcome or their own ctx); it returns the result, its
// epoch stamp, whether the result may be stored (version unchanged
// across the compute, no per-query error), and the whole-call error.
func (c *queryCache) do(ctx context.Context, key string, compute func() (*tivwire.Result, uint64, bool, error)) (*tivwire.Result, uint64, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.bumpLocked(e)
		c.mu.Unlock()
		c.hits.Add(1)
		return e.val, e.epoch, nil
	}
	if fl, ok := c.flights[key]; ok {
		c.mu.Unlock()
		select {
		case <-fl.done:
			if fl.err != nil {
				return nil, 0, fl.err
			}
			c.hits.Add(1) // coalesced: answered without a backend call
			return fl.val, fl.epoch, nil
		case <-ctx.Done():
			return nil, 0, ctx.Err()
		}
	}
	fl := &cacheFlight{done: make(chan struct{})}
	c.flights[key] = fl
	c.mu.Unlock()
	c.misses.Add(1)

	val, epoch, store, err := compute()
	fl.val, fl.epoch, fl.err = val, epoch, err

	c.mu.Lock()
	delete(c.flights, key)
	if err == nil && store {
		c.insertLocked(key, val, epoch)
	}
	c.mu.Unlock()
	close(fl.done)
	return val, epoch, err
}

// bumpLocked moves e to the head of the recency list.
func (c *queryCache) bumpLocked(e *cacheEntry) {
	if c.head == e {
		return
	}
	c.unlinkLocked(e)
	c.linkFrontLocked(e)
}

func (c *queryCache) unlinkLocked(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *queryCache) linkFrontLocked(e *cacheEntry) {
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *queryCache) insertLocked(key string, val *tivwire.Result, epoch uint64) {
	if e, ok := c.entries[key]; ok {
		e.val, e.epoch = val, epoch
		c.bumpLocked(e)
		return
	}
	for len(c.entries) >= c.cap && c.tail != nil {
		evict := c.tail
		c.unlinkLocked(evict)
		delete(c.entries, evict.key)
	}
	e := &cacheEntry{key: key, val: val, epoch: epoch}
	c.entries[key] = e
	c.linkFrontLocked(e)
}

// cacheableKind reports whether results of this kind enter the cache:
// every read but delay (an O(1) lookup that would only churn the LRU).
func cacheableKind(kind tivaware.QueryKind) bool {
	switch kind {
	case tivaware.KindRank, tivaware.KindClosest, tivaware.KindDetour, tivaware.KindTop, tivaware.KindAnalysis:
		return true
	}
	return false
}

// canonicalKey renders a query and the version pair it will be
// answered under into the cache key. Canonicalization makes key
// equality match answer equality: floats are rendered exactly ('b'),
// unordered candidate lists are sorted (ranking is order-independent),
// and nil candidates ("every node") stay distinct from an empty list.
func canonicalKey(q tivaware.Query, qv, av uint64) string {
	b := make([]byte, 0, 64)
	b = strconv.AppendUint(b, qv, 16)
	b = append(b, '.')
	b = strconv.AppendUint(b, av, 16)
	b = append(b, '|')
	b = append(b, q.Kind...)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(q.Target), 10)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(q.K), 10)
	b = append(b, '|')
	b = strconv.AppendFloat(b, q.SeverityPenalty, 'b', -1, 64)
	b = append(b, '|')
	if q.ExcludeViolated {
		b = append(b, '1')
	} else {
		b = append(b, '0')
	}
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(q.I), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(q.J), 10)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(q.Scatter.Mod), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(q.Scatter.Rem), 10)
	b = append(b, '|')
	if q.Candidates == nil {
		b = append(b, '*')
	} else {
		cands := q.Candidates
		if !sort.IntsAreSorted(cands) {
			cands = append([]int(nil), cands...)
			sort.Ints(cands)
		}
		for i, c := range cands {
			if i > 0 {
				b = append(b, ',')
			}
			b = strconv.AppendInt(b, int64(c), 10)
		}
	}
	return string(b)
}
