package tivd

import (
	"context"
	"encoding/json"
	"io"
	"net/http"

	"tivaware/internal/tivaware"
	"tivaware/internal/tivwire"
)

// The unified query path. Every read endpoint — the single-shot GETs
// and POST /v1/batch — funnels through resolveWire, so the epoch-keyed
// cache, the request coalescing, and the error taxonomy behave
// identically no matter how a query arrives. A single-shot GET is
// served as a batch of one against the same machinery, which is what
// makes the cache coherent across paths: both produce the same
// canonical key for the same effective query.

// maxBodyBytes caps request bodies (update and batch): large enough
// for the biggest sane batch, small enough to bound a hostile post.
const maxBodyBytes = 16 << 20

// decodeBody reads and decodes a request body in the codec its
// Content-Type declares: the compact binary framing when negotiated,
// JSON otherwise.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if sendsBinary(r) {
		data, err := io.ReadAll(body)
		if err != nil {
			return err
		}
		return tivwire.UnmarshalBinaryInto(data, v)
	}
	return json.NewDecoder(body).Decode(v)
}

// normalizeQuery applies the daemon's defaults and caps so the cache
// key reflects the effective query, not its spelling: a rank with no
// k and a rank with k equal to the cap are the same computation and
// must share an entry. Returns the client-fault error for
// out-of-range parameters.
func (s *Server) normalizeQuery(q *tivaware.Query) error {
	switch q.Kind {
	case tivaware.KindRank, tivaware.KindClosest:
		max := s.opts.maxRankK()
		if q.Kind == tivaware.KindClosest {
			q.K = 1
			return nil
		}
		if q.K == 0 {
			q.K = max
		}
		if q.K < 0 || q.K > max {
			return badRequestf("parameter k: %d outside [1,%d]", q.K, max)
		}
	case tivaware.KindTop:
		if q.K == 0 {
			q.K = 10
		}
		if q.K < 0 || q.K > s.opts.maxRankK() {
			return badRequestf("parameter k: %d outside [1,%d]", q.K, s.opts.maxRankK())
		}
	}
	return nil
}

// computeWire answers one query through the backend's batch path and
// renders it to its wire shape. The whole-call error is a backend
// failure (no epoch pinned); per-query failures land in Result.Err as
// taxonomy envelopes.
func (s *Server) computeWire(ctx context.Context, q tivaware.Query) (*tivwire.Result, uint64, error) {
	res, epoch, err := s.b.QueryBatch(ctx, []tivaware.Query{q})
	if err != nil {
		return nil, 0, err
	}
	if len(res) != 1 {
		return nil, 0, internalErrorf("backend answered %d results for 1 query", len(res))
	}
	wr := tivwire.FromResult(q, res[0], epoch, func(err error) tivwire.Error {
		_, e := resultEnvelope(q.Kind, err)
		return e
	})
	return &wr, epoch, nil
}

// resolveWire answers one query, consulting the epoch-keyed cache for
// cacheable kinds. The double version read brackets the computation:
// the key embeds the versions observed before, and the entry is
// stored only if the versions still hold after — so a stored entry
// can never describe a state its key predates. Failed results are
// never cached (they may be transient).
func (s *Server) resolveWire(ctx context.Context, q tivaware.Query) (*tivwire.Result, uint64, error) {
	if s.cache == nil || !cacheableKind(q.Kind) {
		return s.computeWire(ctx, q)
	}
	qv, av := s.b.CacheVersion()
	key := canonicalKey(q, qv, av)
	return s.cache.do(ctx, key, func() (*tivwire.Result, uint64, bool, error) {
		wr, epoch, err := s.computeWire(ctx, q)
		if err != nil {
			return nil, 0, false, err
		}
		qv2, av2 := s.b.CacheVersion()
		return wr, epoch, wr.Err == nil && qv2 == qv && av2 == av, nil
	})
}

// serveQuery is the single-shot tail shared by the GET endpoints:
// normalize, resolve through the cache, unwrap the one payload the
// kind produces.
func (s *Server) serveQuery(w http.ResponseWriter, r *http.Request, q tivaware.Query) {
	if err := s.normalizeQuery(&q); err != nil {
		serviceError(w, r, err)
		return
	}
	wr, _, err := s.resolveWire(r.Context(), q)
	if err != nil {
		serviceError(w, r, err)
		return
	}
	writeWireResult(w, r, wr)
}

// writeWireResult writes the payload (or error envelope) a resolved
// wire result carries, exactly as the kind's endpoint would.
func writeWireResult(w http.ResponseWriter, r *http.Request, wr *tivwire.Result) {
	switch {
	case wr.Err != nil:
		writeMsg(w, r, statusForCode(wr.Err.Code), *wr.Err)
	case wr.Rank != nil:
		writeMsg(w, r, http.StatusOK, *wr.Rank)
	case wr.Detour != nil:
		writeMsg(w, r, http.StatusOK, *wr.Detour)
	case wr.Top != nil:
		writeMsg(w, r, http.StatusOK, *wr.Top)
	case wr.Delay != nil:
		writeMsg(w, r, http.StatusOK, *wr.Delay)
	case wr.Analysis != nil:
		writeMsg(w, r, http.StatusOK, *wr.Analysis)
	default:
		writeError(w, r, http.StatusServiceUnavailable, tivwire.CodeInternal, "query %q produced no payload", wr.Kind)
	}
}

// handleBatch answers POST /v1/batch: a vector of heterogeneous typed
// queries in one round trip. Cache hits are served from the resident
// entries; all misses go to the backend as ONE QueryBatch call (the
// request-coalescing win a gateway turns into one scatter per shard
// per batch). Per-query failures — unknown kinds, out-of-range
// parameters, analysis divergence — land in the aligned Results
// vector; only a malformed request or a whole-backend failure fails
// the call.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	var req tivwire.BatchRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, r, http.StatusBadRequest, tivwire.CodeBadRequest, "decoding body: %v", err)
		return
	}
	resp, err := s.resolveBatch(r.Context(), &req)
	if err != nil {
		serviceError(w, r, err)
		return
	}
	writeMsg(w, r, http.StatusOK, *resp)
}

// resolveBatch answers one decoded batch request — the transport-free
// core shared by POST /v1/batch and the framed listener, so the
// cache, coalescing, and taxonomy behavior cannot drift between
// transports. A returned error is a whole-call failure already typed
// for errorEnvelope (reqError or a backend error); per-query failures
// land in the aligned Results vector.
func (s *Server) resolveBatch(ctx context.Context, req *tivwire.BatchRequest) (*tivwire.BatchResponse, error) {
	if len(req.Queries) == 0 {
		return nil, badRequestf("empty batch")
	}
	if max := s.opts.maxBatch(); len(req.Queries) > max {
		return nil, badRequestf("batch of %d queries exceeds limit %d", len(req.Queries), max)
	}

	queries := tivwire.ToQueries(req.Queries)
	results := make([]tivwire.Result, len(queries))

	// Normalize every query first (the cache key must see effective
	// parameters); a bad query fails alone, never the batch.
	valid := make([]bool, len(queries))
	for i := range queries {
		if err := s.normalizeQuery(&queries[i]); err != nil {
			e := envelope(tivwire.CodeBadRequest, err)
			results[i] = tivwire.Result{Kind: string(queries[i].Kind), Err: &e}
			continue
		}
		valid[i] = true
	}

	// Partition valid queries into cache hits and misses under one
	// version-pair reading.
	var qv, av uint64
	var keys []string
	if s.cache != nil {
		qv, av = s.b.CacheVersion()
		keys = make([]string, len(queries))
	}
	var epoch uint64
	missIdx := make([]int, 0, len(queries))
	for i := range queries {
		if !valid[i] {
			continue
		}
		if s.cache != nil && cacheableKind(queries[i].Kind) {
			keys[i] = canonicalKey(queries[i], qv, av)
			if val, e, ok := s.cache.get(keys[i]); ok {
				results[i] = *val
				if e > epoch {
					epoch = e
				}
				continue
			}
			s.cache.misses.Add(1)
		}
		missIdx = append(missIdx, i)
	}

	// One backend round trip answers every miss against one pinned
	// epoch.
	if len(missIdx) > 0 {
		miss := make([]tivaware.Query, len(missIdx))
		for k, i := range missIdx {
			miss[k] = queries[i]
		}
		res, e, err := s.b.QueryBatch(ctx, miss)
		if err != nil {
			return nil, err
		}
		if len(res) != len(miss) {
			return nil, internalErrorf("backend answered %d results for %d queries", len(res), len(miss))
		}
		epoch = e
		// Store successes only if the version pair survived the
		// computation — otherwise the key would lie about the state the
		// entry reflects.
		store := false
		if s.cache != nil {
			qv2, av2 := s.b.CacheVersion()
			store = qv2 == qv && av2 == av
		}
		for k, i := range missIdx {
			q := miss[k]
			wr := tivwire.FromResult(q, res[k], e, func(err error) tivwire.Error {
				_, env := resultEnvelope(q.Kind, err)
				return env
			})
			results[i] = wr
			if store && wr.Err == nil && keys[i] != "" {
				stored := wr
				s.cache.put(keys[i], &stored, e)
			}
		}
	}

	return &tivwire.BatchResponse{Epoch: epoch, Results: results}, nil
}
