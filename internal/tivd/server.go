// Package tivd implements the HTTP server behind the tivd daemon:
// the first network surface of the TIV-aware service layer. It
// exposes a tivaware.Service over HTTP/JSON so remote clients query
// triangle-violation state instead of recomputing O(N³) analyses
// locally — the deployment shape the distributed-triangle literature
// assumes (nodes query triangle state over the network).
//
// Endpoints (wire types in internal/tivwire; client in
// internal/tivclient):
//
//	GET  /healthz        liveness + epoch/version counters
//	GET  /v1/rank        ?target=&k=&penalty=&exclude=&candidates=&mod=&rem=
//	GET  /v1/closest     ?target=&penalty=&exclude=&candidates=&mod=&rem=
//	GET  /v1/detour      ?i=&j=&mod=&rem=
//	GET  /v1/top         ?k=&mod=&rem=
//	GET  /v1/delay       ?i=&j=
//	GET  /v1/analysis    aggregate triangle statistics
//	POST /v1/update      apply edge measurements (live services only)
//	POST /v1/batch       answer a vector of typed queries in one round trip
//	GET  /v1/subscribe   SSE stream of violated-edge change sets
//
// The optional mod/rem pair restricts a query to one residue class of
// node ids — the scatter primitive a tivshard gateway uses to fan one
// query out over its shards (see tivaware.QueryOptions.Scatter). The
// server itself serves any Backend: an in-process tivaware.Service or
// a tivshard.Gateway, so gateways re-export this exact protocol.
//
// Every endpoint speaks two codecs: JSON (the default) and the
// compact binary framing (tivwire.BinaryContentType), negotiated per
// request — Accept selects the response codec, Content-Type the
// request-body codec. SSE streams stay JSON (they are line-oriented
// by design). /v1/batch answers all its queries against one pinned
// epoch, and read queries flow through an epoch-keyed hot-query cache
// with request coalescing (see cache.go); both are transparent at the
// protocol level.
//
// Queries run lock-free against the service's current epoch, so the
// daemon serves concurrent requests at full GOMAXPROCS without a
// global lock; updates serialize through the service's copy-on-write
// path like any other writer.
package tivd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"tivaware/internal/tiv"
	"tivaware/internal/tivaware"
	"tivaware/internal/tivwire"
)

// Options configures a Server. The zero value is valid.
type Options struct {
	// MaxRankK caps the k accepted by /v1/rank and /v1/top so one
	// request cannot demand an O(N²)-sized response; zero means 4096.
	MaxRankK int
	// SubscribeBuffer is the per-connection event buffer. A subscriber
	// that falls further behind than this has its connection closed
	// (dropping events silently would hand the client a torn picture
	// of the violated-edge set). Zero means 256.
	SubscribeBuffer int
	// MaxBatch caps the query count of one POST /v1/batch request;
	// zero means 256.
	MaxBatch int
	// CacheEntries bounds the epoch-keyed query cache (entries, not
	// bytes; see cache.go). Zero means 4096; negative disables the
	// cache entirely.
	CacheEntries int
}

func (o Options) maxRankK() int {
	if o.MaxRankK > 0 {
		return o.MaxRankK
	}
	return 4096
}

func (o Options) subscribeBuffer() int {
	if o.SubscribeBuffer > 0 {
		return o.SubscribeBuffer
	}
	return 256
}

func (o Options) maxBatch() int {
	if o.MaxBatch > 0 {
		return o.MaxBatch
	}
	return 256
}

func (o Options) cacheEntries() int {
	if o.CacheEntries > 0 {
		return o.CacheEntries
	}
	if o.CacheEntries < 0 {
		return 0
	}
	return 4096
}

// Server serves one Backend — an in-process tivaware.Service or a
// tivshard.Gateway — over HTTP. Construct with New or NewBackend,
// mount via Handler.
type Server struct {
	b     Backend
	opts  Options
	mux   *http.ServeMux
	cache *queryCache // nil when disabled

	// Subscriber bookkeeping so Close can end SSE streams.
	subMu     sync.Mutex
	subSeq    int
	subCancel map[int]context.CancelFunc
	closed    atomic.Bool
}

// New builds a server over an in-process service.
func New(svc *tivaware.Service, opts Options) (*Server, error) {
	if svc == nil {
		return nil, fmt.Errorf("tivd: nil service")
	}
	return NewBackend(ServiceBackend(svc), opts)
}

// NewBackend builds a server over any Backend (tivshard gateways use
// this path); the wire surface is identical either way.
func NewBackend(b Backend, opts Options) (*Server, error) {
	if b == nil {
		return nil, fmt.Errorf("tivd: nil backend")
	}
	s := &Server{b: b, opts: opts, mux: http.NewServeMux(), subCancel: make(map[int]context.CancelFunc)}
	if n := opts.cacheEntries(); n > 0 {
		s.cache = newQueryCache(n)
	}
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/v1/batch", s.handleBatch)
	s.mux.HandleFunc("/v1/rank", s.handleRank)
	s.mux.HandleFunc("/v1/closest", s.handleClosest)
	s.mux.HandleFunc("/v1/detour", s.handleDetour)
	s.mux.HandleFunc("/v1/top", s.handleTop)
	s.mux.HandleFunc("/v1/delay", s.handleDelay)
	s.mux.HandleFunc("/v1/analysis", s.handleAnalysis)
	s.mux.HandleFunc("/v1/update", s.handleUpdate)
	s.mux.HandleFunc("/v1/subscribe", s.handleSubscribe)
	return s, nil
}

// Handler returns the HTTP handler to mount.
func (s *Server) Handler() http.Handler { return s.mux }

// Close ends all active subscription streams. In-flight plain
// requests finish on their own (delegate their lifecycle to
// http.Server.Shutdown).
func (s *Server) Close() {
	s.closed.Store(true)
	s.subMu.Lock()
	cancels := make([]context.CancelFunc, 0, len(s.subCancel))
	for _, c := range s.subCancel {
		cancels = append(cancels, c)
	}
	s.subMu.Unlock()
	for _, c := range cancels {
		c()
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// acceptsBinary reports whether the request negotiated the compact
// binary response framing via Accept.
func acceptsBinary(r *http.Request) bool {
	return r != nil && strings.Contains(r.Header.Get("Accept"), tivwire.BinaryContentType)
}

// sendsBinary reports whether the request body is binary-framed.
func sendsBinary(r *http.Request) bool {
	return strings.HasPrefix(r.Header.Get("Content-Type"), tivwire.BinaryContentType)
}

// writeMsg writes one wire message in the codec the request
// negotiated: binary when Accept names it, JSON otherwise. Error
// envelopes flow through here too, so a binary client never has to
// parse JSON mid-stream.
func writeMsg(w http.ResponseWriter, r *http.Request, status int, v any) {
	if acceptsBinary(r) {
		if b, err := tivwire.MarshalBinary(v); err == nil {
			w.Header().Set("Content-Type", tivwire.BinaryContentType)
			w.WriteHeader(status)
			_, _ = w.Write(b)
			return
		}
	}
	writeJSON(w, status, v)
}

// writeError writes the structured error envelope: a human-readable
// message plus the machine-readable taxonomy code (tivwire.Code*).
// Retryable codes carry the default retry-after hint.
func writeError(w http.ResponseWriter, r *http.Request, status int, code string, format string, args ...any) {
	writeMsg(w, r, status, envelope(code, fmt.Errorf(format, args...)))
}

// envelope builds the wire error envelope for one taxonomy code.
func envelope(code string, err error) tivwire.Error {
	e := tivwire.Error{Error: err.Error(), Code: code}
	if tivwire.RetryableCode(code) {
		e.RetryAfter = defaultRetryAfter
	}
	return e
}

// reqError is a daemon-born error that already knows its taxonomy
// code: request-decode failures (bad_request) and broken backend
// contracts (internal). errorEnvelope routes it by WireCode and the
// envelope message is exactly the underlying error text, so retyping
// a bare fmt.Errorf into a reqError never changes what the client
// reads — it only proves the code was chosen rather than defaulted.
type reqError struct {
	code string
	err  error
}

func (e *reqError) Error() string    { return e.err.Error() }
func (e *reqError) Unwrap() error    { return e.err }
func (e *reqError) WireCode() string { return e.code }

// badRequestf builds the client-fault taxonomy error for a malformed
// or out-of-range request parameter.
func badRequestf(format string, args ...any) error {
	return &reqError{code: tivwire.CodeBadRequest, err: fmt.Errorf(format, args...)}
}

// internalErrorf builds the daemon-fault taxonomy error for a broken
// backend contract.
func internalErrorf(format string, args ...any) error {
	return &reqError{code: tivwire.CodeInternal, err: fmt.Errorf(format, args...)}
}

// errNotLive is the typed refusal a read-only daemon answers updates
// with.
func errNotLive() error {
	return &reqError{code: tivwire.CodeNotLive, err: errors.New("updates require a live service (tivd -live)")}
}

// defaultRetryAfter is the retry hint (seconds) attached to every
// retryable error envelope: long enough for a transient stall to
// clear, short enough that clients re-probe a recovering backend
// promptly.
const defaultRetryAfter = 0.5

// errorEnvelope maps a backend error onto an HTTP status and taxonomy
// envelope. Errors that carry their own code (via WireCode — gateway
// backends classify shard failures) win; context expiry means the
// backend could not answer in time (unavailable, retryable);
// everything else the query path produces is a validation failure —
// the client's fault. Gateway backends wrap shard errors, so the
// context check must unwrap.
func errorEnvelope(err error) (int, tivwire.Error) {
	var wc interface{ WireCode() string }
	if errors.As(err, &wc) {
		code := wc.WireCode()
		return statusForCode(code), envelope(code, err)
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return http.StatusServiceUnavailable, envelope(tivwire.CodeUnavailable, err)
	}
	return http.StatusBadRequest, envelope(tivwire.CodeBadRequest, err)
}

// resultEnvelope is errorEnvelope specialized per query kind: an
// analysis failure without its own code means the backend's replicas
// disagree (or the deployment cannot produce exact counts) — the
// wire's diverged conflict, not a bad request.
func resultEnvelope(kind tivaware.QueryKind, err error) (int, tivwire.Error) {
	if kind == tivaware.KindAnalysis {
		var wc interface{ WireCode() string }
		if !errors.As(err, &wc) && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			return http.StatusConflict, envelope(tivwire.CodeDiverged, err)
		}
	}
	return errorEnvelope(err)
}

// statusForCode maps a taxonomy code to its HTTP status.
func statusForCode(code string) int {
	switch code {
	case tivwire.CodeUnavailable, tivwire.CodeInternal:
		return http.StatusServiceUnavailable
	case tivwire.CodeDiverged, tivwire.CodeNotLive:
		return http.StatusConflict
	case tivwire.CodeMethodNotAllowed:
		return http.StatusMethodNotAllowed
	}
	return http.StatusBadRequest
}

// serviceError writes a backend error through the taxonomy mapping.
func serviceError(w http.ResponseWriter, r *http.Request, err error) {
	status, e := errorEnvelope(err)
	writeMsg(w, r, status, e)
}

func requireMethod(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method != method {
		w.Header().Set("Allow", method)
		writeError(w, r, http.StatusMethodNotAllowed, tivwire.CodeMethodNotAllowed, "method %s not allowed", r.Method)
		return false
	}
	return true
}

func intParam(r *http.Request, name string, def int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, badRequestf("parameter %s: %v", name, err)
	}
	return v, nil
}

func floatParam(r *http.Request, name string, def float64) (float64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return 0, badRequestf("parameter %s: %v", name, err)
	}
	return v, nil
}

// queryOptions decodes the shared selection parameters: penalty,
// exclude, candidates (comma-separated node ids), and the mod/rem
// residue-class restriction sharded gateways scatter with.
func queryOptions(r *http.Request) (tivaware.QueryOptions, error) {
	var opts tivaware.QueryOptions
	penalty, err := floatParam(r, "penalty", 0)
	if err != nil {
		return opts, err
	}
	opts.SeverityPenalty = penalty
	if opts.Scatter.Mod, opts.Scatter.Rem, err = residueParams(r); err != nil {
		return opts, err
	}
	switch raw := r.URL.Query().Get("exclude"); raw {
	case "", "false", "0":
	case "true", "1":
		opts.ExcludeViolated = true
	default:
		return opts, badRequestf("parameter exclude: want true or false, have %q", raw)
	}
	if raw := r.URL.Query().Get("candidates"); raw != "" {
		for _, f := range strings.Split(raw, ",") {
			c, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return opts, badRequestf("parameter candidates: %v", err)
			}
			opts.Candidates = append(opts.Candidates, c)
		}
	}
	return opts, nil
}

// residueParams decodes the mod/rem residue-class restriction
// (validated downstream by the query layer).
func residueParams(r *http.Request) (mod, rem int, err error) {
	if mod, err = intParam(r, "mod", 0); err != nil {
		return 0, 0, err
	}
	if rem, err = intParam(r, "rem", 0); err != nil {
		return 0, 0, err
	}
	return mod, rem, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	h, err := s.healthWire(r.Context())
	if err != nil {
		serviceError(w, r, err)
		return
	}
	writeMsg(w, r, http.StatusOK, h)
}

// healthWire builds the health report — the transport-free core
// shared by GET /healthz and the framed listener's Hello ping.
func (s *Server) healthWire(ctx context.Context) (tivwire.Health, error) {
	epoch, version, err := s.b.Health(ctx)
	if err != nil {
		return tivwire.Health{}, err
	}
	// Backends that track partial failure (the tivshard gateway)
	// surface it here: "degraded" while any shard is down, "ok"
	// otherwise. Plain services are always "ok" when they answer.
	status := "ok"
	if st, ok := s.b.(interface{ Status() string }); ok {
		status = st.Status()
	}
	h := tivwire.Health{
		Status:  status,
		N:       s.b.N(),
		Live:    s.b.Live(),
		Epoch:   epoch,
		Version: version,
	}
	if s.cache != nil {
		h.Cache = s.cache.stats()
	}
	return h, nil
}

func (s *Server) handleRank(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	target, err := intParam(r, "target", -1)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, tivwire.CodeBadRequest, "%v", err)
		return
	}
	k, err := intParam(r, "k", s.opts.maxRankK())
	if err != nil {
		writeError(w, r, http.StatusBadRequest, tivwire.CodeBadRequest, "%v", err)
		return
	}
	if k <= 0 || k > s.opts.maxRankK() {
		writeError(w, r, http.StatusBadRequest, tivwire.CodeBadRequest, "parameter k: %d outside [1,%d]", k, s.opts.maxRankK())
		return
	}
	opts, err := queryOptions(r)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, tivwire.CodeBadRequest, "%v", err)
		return
	}
	s.serveQuery(w, r, tivaware.Query{
		Kind:            tivaware.KindRank,
		Target:          target,
		K:               k,
		Candidates:      opts.Candidates,
		SeverityPenalty: opts.SeverityPenalty,
		ExcludeViolated: opts.ExcludeViolated,
		Scatter:         opts.Scatter,
	})
}

func (s *Server) handleClosest(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	target, err := intParam(r, "target", -1)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, tivwire.CodeBadRequest, "%v", err)
		return
	}
	opts, err := queryOptions(r)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, tivwire.CodeBadRequest, "%v", err)
		return
	}
	s.serveQuery(w, r, tivaware.Query{
		Kind:            tivaware.KindClosest,
		Target:          target,
		Candidates:      opts.Candidates,
		SeverityPenalty: opts.SeverityPenalty,
		ExcludeViolated: opts.ExcludeViolated,
		Scatter:         opts.Scatter,
	})
}

func (s *Server) handleDetour(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	i, err := intParam(r, "i", -1)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, tivwire.CodeBadRequest, "%v", err)
		return
	}
	j, err := intParam(r, "j", -1)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, tivwire.CodeBadRequest, "%v", err)
		return
	}
	mod, rem, err := residueParams(r)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, tivwire.CodeBadRequest, "%v", err)
		return
	}
	s.serveQuery(w, r, tivaware.Query{
		Kind:    tivaware.KindDetour,
		I:       i,
		J:       j,
		Scatter: tivaware.Scatter{Mod: mod, Rem: rem},
	})
}

func (s *Server) handleTop(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	k, err := intParam(r, "k", 10)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, tivwire.CodeBadRequest, "%v", err)
		return
	}
	if k <= 0 || k > s.opts.maxRankK() {
		writeError(w, r, http.StatusBadRequest, tivwire.CodeBadRequest, "parameter k: %d outside [1,%d]", k, s.opts.maxRankK())
		return
	}
	mod, rem, err := residueParams(r)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, tivwire.CodeBadRequest, "%v", err)
		return
	}
	s.serveQuery(w, r, tivaware.Query{
		Kind:    tivaware.KindTop,
		K:       k,
		Scatter: tivaware.Scatter{Mod: mod, Rem: rem},
	})
}

func (s *Server) handleDelay(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	i, err := intParam(r, "i", -1)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, tivwire.CodeBadRequest, "%v", err)
		return
	}
	j, err := intParam(r, "j", -1)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, tivwire.CodeBadRequest, "%v", err)
		return
	}
	if i < 0 || j < 0 || i >= s.b.N() || j >= s.b.N() {
		writeError(w, r, http.StatusBadRequest, tivwire.CodeBadRequest, "pair (%d,%d) out of range [0,%d)", i, j, s.b.N())
		return
	}
	d, ok, err := s.b.Delay(r.Context(), i, j)
	if err != nil {
		serviceError(w, r, err)
		return
	}
	if !ok {
		d = -1
	}
	writeMsg(w, r, http.StatusOK, tivwire.DelayResponse{I: i, J: j, Delay: d, OK: ok})
}

func (s *Server) handleAnalysis(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	s.serveQuery(w, r, tivaware.Query{Kind: tivaware.KindAnalysis})
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	if !s.b.Live() {
		serviceError(w, r, errNotLive())
		return
	}
	var req tivwire.UpdateRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, r, http.StatusBadRequest, tivwire.CodeBadRequest, "decoding body: %v", err)
		return
	}
	cs, err := s.applyWire(r.Context(), &req)
	if err != nil {
		serviceError(w, r, err)
		return
	}
	writeMsg(w, r, http.StatusOK, cs)
}

// applyWire applies one decoded update batch — the transport-free
// core shared by POST /v1/update and the framed listener. Errors are
// typed for errorEnvelope, so both transports answer the identical
// envelope.
func (s *Server) applyWire(ctx context.Context, req *tivwire.UpdateRequest) (tivwire.ChangeSet, error) {
	if !s.b.Live() {
		return tivwire.ChangeSet{}, errNotLive()
	}
	if len(req.Updates) == 0 {
		return tivwire.ChangeSet{}, badRequestf("empty update batch")
	}
	cs, err := s.b.ApplyBatch(ctx, req.ToUpdates())
	if err != nil {
		return tivwire.ChangeSet{}, err
	}
	return tivwire.FromChangeSet(cs), nil
}

// handleSubscribe streams violated-edge change sets as server-sent
// events: one "changeset" event per non-empty ChangeSet, id = monitor
// version. The subscription rides the service's Subscribe fan-out;
// events are forwarded through a buffered channel so a slow client
// never blocks the updating goroutine — a client that falls behind
// the buffer is disconnected (it can reconnect and resync from
// /v1/top) rather than silently fed a torn violated-edge picture.
func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	if !s.b.Live() {
		writeError(w, r, http.StatusConflict, tivwire.CodeNotLive, "subscriptions require a live service (tivd -live)")
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, r, http.StatusInternalServerError, tivwire.CodeInternal, "streaming unsupported by this connection")
		return
	}
	ctx, stop := context.WithCancel(r.Context())
	defer stop()
	// Register and re-check closed under the same lock Close takes:
	// either Close's snapshot sees this registration and cancels it,
	// or this handler sees closed and rejects — a stream can never
	// slip past Close and hang http.Server.Shutdown.
	s.subMu.Lock()
	if s.closed.Load() {
		s.subMu.Unlock()
		writeError(w, r, http.StatusServiceUnavailable, tivwire.CodeUnavailable, "server shutting down")
		return
	}
	id := s.subSeq
	s.subSeq++
	s.subCancel[id] = stop
	s.subMu.Unlock()
	defer func() {
		s.subMu.Lock()
		delete(s.subCancel, id)
		s.subMu.Unlock()
	}()

	events := make(chan tiv.ChangeSet, s.opts.subscribeBuffer())
	var overflow atomic.Bool
	cancel, err := s.b.Subscribe(func(cs tiv.ChangeSet) {
		select {
		case events <- cs:
		default:
			// Too far behind: mark and wake the writer to disconnect.
			if overflow.CompareAndSwap(false, true) {
				stop()
			}
		}
	})
	if err != nil {
		serviceError(w, r, err)
		return
	}
	defer cancel()

	// The hello counters are read AFTER the subscription is live, so
	// every change set this stream will NOT deliver (applied before
	// registration) has version ≤ hello.Version — the invariant
	// reconnecting clients rely on for version-gap detection (a
	// reconnect hello equal to the last delivered version proves no
	// delta was missed).
	epoch, version, herr := s.b.Health(ctx)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	// An initial comment line confirms the stream is open before any
	// event arrives (clients use it as the subscription handshake).
	fmt.Fprintf(w, ": subscribed n=%d\n\n", s.b.N())
	if herr == nil {
		if payload, err := json.Marshal(tivwire.Hello{N: s.b.N(), Version: version, Epoch: epoch}); err == nil {
			fmt.Fprintf(w, "event: hello\ndata: %s\n\n", payload)
		}
	}
	flusher.Flush()

	for {
		select {
		case <-ctx.Done():
			if overflow.Load() {
				// Best effort: tell the client why before closing.
				fmt.Fprint(w, "event: overflow\ndata: {}\n\n")
				flusher.Flush()
			}
			return
		case cs := <-events:
			payload, err := json.Marshal(tivwire.FromChangeSet(cs))
			if err != nil {
				return
			}
			fmt.Fprintf(w, "id: %d\nevent: changeset\ndata: %s\n\n", cs.Version, payload)
			flusher.Flush()
		}
	}
}
