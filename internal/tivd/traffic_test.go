package tivd_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"tivaware/internal/synth"
	"tivaware/internal/tivaware"
	"tivaware/internal/tivclient"
	"tivaware/internal/tivd"
	"tivaware/internal/tivwire"
)

// newHTTPServer serves h for the test's lifetime, returning its URL.
func newHTTPServer(t *testing.T, h http.Handler) string {
	t.Helper()
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return ts.URL
}

func readJSON(r io.Reader, v any) error { return json.NewDecoder(r).Decode(v) }

// synthService builds a live 40-node service with deterministic
// analysis (one worker ⇒ bit-reproducible severities).
func synthService(t *testing.T) *tivaware.Service {
	t.Helper()
	sp, err := synth.Generate(synth.DS2Like(40, 3))
	if err != nil {
		t.Fatal(err)
	}
	svc, err := tivaware.NewFromMatrix(sp.Matrix, tivaware.Options{Live: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

// trafficQueries is a mixed batch covering every query kind plus a
// per-query failure (rank target out of range).
func trafficQueries(n int) []tivaware.Query {
	return []tivaware.Query{
		{Kind: tivaware.KindRank, Target: 0, K: 3},
		{Kind: tivaware.KindRank, Target: 1, K: 5, SeverityPenalty: 2.5},
		{Kind: tivaware.KindRank, Target: 2, K: 4, ExcludeViolated: true, SeverityPenalty: 1},
		{Kind: tivaware.KindClosest, Target: 3},
		{Kind: tivaware.KindDetour, I: 0, J: 5},
		{Kind: tivaware.KindTop, K: 7},
		{Kind: tivaware.KindDelay, I: 1, J: 4},
		{Kind: tivaware.KindAnalysis},
		{Kind: tivaware.KindRank, Target: n + 100, K: 2}, // per-query error
	}
}

// TestBatchMatchesSingles proves POST /v1/batch answers exactly what
// the per-endpoint surface answers, for JSON and binary framing, on
// both a cold and a cache-hot pass.
func TestBatchMatchesSingles(t *testing.T) {
	svc := synthService(t)
	n := svc.N()
	for _, binary := range []bool{false, true} {
		name := map[bool]string{false: "json", true: "binary"}[binary]
		t.Run(name, func(t *testing.T) {
			srv, err := tivd.New(svc, tivd.Options{})
			if err != nil {
				t.Fatal(err)
			}
			ts := newTestServer(t, srv)
			client := tivclient.New(ts, tivclient.Options{Binary: binary})
			ctx := context.Background()

			for pass := 0; pass < 2; pass++ { // second pass is cache-hot
				queries := trafficQueries(n)
				results, err := client.QueryBatch(ctx, queries)
				if err != nil {
					t.Fatalf("pass %d: QueryBatch: %v", pass, err)
				}
				if len(results) != len(queries) {
					t.Fatalf("pass %d: %d results for %d queries", pass, len(results), len(queries))
				}
				for qi, q := range queries {
					res := results[qi]
					if res.Kind != q.Kind {
						t.Errorf("pass %d query %d: kind %q, want %q", pass, qi, res.Kind, q.Kind)
					}
					switch q.Kind {
					case tivaware.KindRank:
						single, err := client.KClosest(ctx, q.Target, q.K, tivaware.QueryOptions{
							SeverityPenalty: q.SeverityPenalty, ExcludeViolated: q.ExcludeViolated,
						})
						if err != nil {
							if res.Err == nil {
								t.Errorf("pass %d query %d: single errored (%v), batch did not", pass, qi, err)
							}
							continue
						}
						if res.Err != nil {
							t.Errorf("pass %d query %d: batch errored (%v), single did not", pass, qi, res.Err)
							continue
						}
						if !reflect.DeepEqual(res.Selections, single) {
							t.Errorf("pass %d query %d: batch rank diverges from single:\n batch:  %v\n single: %v", pass, qi, res.Selections, single)
						}
					case tivaware.KindClosest:
						single, err := client.ClosestNode(ctx, q.Target, tivaware.QueryOptions{})
						if err != nil {
							t.Fatalf("pass %d query %d: %v", pass, qi, err)
						}
						if len(res.Selections) != 1 || !reflect.DeepEqual(res.Selections[0], single) {
							t.Errorf("pass %d query %d: batch closest %v, single %v", pass, qi, res.Selections, single)
						}
					case tivaware.KindDetour:
						single, err := client.DetourPath(ctx, q.I, q.J)
						if err != nil {
							t.Fatalf("pass %d query %d: %v", pass, qi, err)
						}
						if !reflect.DeepEqual(res.Detour, single) {
							t.Errorf("pass %d query %d: batch detour %+v, single %+v", pass, qi, res.Detour, single)
						}
					case tivaware.KindTop:
						single, err := client.TopEdges(ctx, q.K)
						if err != nil {
							t.Fatalf("pass %d query %d: %v", pass, qi, err)
						}
						if !reflect.DeepEqual(res.Edges, single) {
							t.Errorf("pass %d query %d: batch top %v, single %v", pass, qi, res.Edges, single)
						}
					case tivaware.KindDelay:
						d, ok, err := client.Delay(ctx, q.I, q.J)
						if err != nil {
							t.Fatalf("pass %d query %d: %v", pass, qi, err)
						}
						if res.Delay != d || res.DelayOK != ok {
							t.Errorf("pass %d query %d: batch delay (%v,%v), single (%v,%v)", pass, qi, res.Delay, res.DelayOK, d, ok)
						}
					case tivaware.KindAnalysis:
						single, err := client.Analysis(ctx)
						if err != nil {
							t.Fatalf("pass %d query %d: %v", pass, qi, err)
						}
						a := res.Analysis
						if a.N != single.N || a.ViolatingTriangles != single.ViolatingTriangles ||
							a.Triangles != single.Triangles || a.Version != single.Version {
							t.Errorf("pass %d query %d: batch analysis %+v, single %+v", pass, qi, a, single)
						}
					}
				}
			}
			// The second pass must have hit the cache.
			h, err := client.Healthz(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if h.Cache == nil || h.Cache.Hits == 0 {
				t.Errorf("cache-hot pass recorded no hits: %+v", h.Cache)
			}
		})
	}
}

// newTestServer serves srv and returns its base URL.
func newTestServer(t *testing.T, srv *tivd.Server) string {
	t.Helper()
	ts := newHTTPServer(t, srv.Handler())
	t.Cleanup(srv.Close)
	return ts
}

// TestBinaryJSONEndpointParity runs every endpoint (and the error
// envelope path) through a JSON client and a binary client and
// requires decoded-struct equality. The two clients talk to twin
// daemons over identical matrices so that write traffic (updates)
// can be compared too, in lockstep.
func TestBinaryJSONEndpointParity(t *testing.T) {
	mk := func(binary bool) *tivclient.Client {
		svc := synthService(t) // same seed ⇒ identical twin
		srv, err := tivd.New(svc, tivd.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return tivclient.New(newTestServer(t, srv), tivclient.Options{Binary: binary})
	}
	js := mk(false)
	bin := mk(true)
	ctx := context.Background()

	check := func(name string, a, b any, errA, errB error) {
		t.Helper()
		if (errA == nil) != (errB == nil) {
			t.Fatalf("%s: json err=%v binary err=%v", name, errA, errB)
		}
		if errA != nil {
			var ea, eb *tivclient.Error
			if !errors.As(errA, &ea) || !errors.As(errB, &eb) {
				t.Fatalf("%s: errors not typed: %v / %v", name, errA, errB)
			}
			if ea.Code != eb.Code || ea.Status != eb.Status || ea.Message != eb.Message {
				t.Errorf("%s: error envelopes diverge:\n json:   %+v\n binary: %+v", name, ea, eb)
			}
			return
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: codecs disagree:\n json:   %#v\n binary: %#v", name, a, b)
		}
	}

	hj, err1 := js.Healthz(ctx)
	hb, err2 := bin.Healthz(ctx)
	check("healthz", hj, hb, err1, err2)

	rj, err1 := js.KClosest(ctx, 0, 5, tivaware.QueryOptions{SeverityPenalty: 2})
	rb, err2 := bin.KClosest(ctx, 0, 5, tivaware.QueryOptions{SeverityPenalty: 2})
	check("rank", rj, rb, err1, err2)

	cj, err1 := js.ClosestNode(ctx, 1, tivaware.QueryOptions{})
	cb, err2 := bin.ClosestNode(ctx, 1, tivaware.QueryOptions{})
	check("closest", cj, cb, err1, err2)

	dj, err1 := js.DetourPath(ctx, 0, 3)
	db, err2 := bin.DetourPath(ctx, 0, 3)
	check("detour", dj, db, err1, err2)

	tj, err1 := js.TopEdges(ctx, 5)
	tb, err2 := bin.TopEdges(ctx, 5)
	check("top", tj, tb, err1, err2)

	dlj, okj, err1 := js.Delay(ctx, 2, 3)
	dlb, okb, err2 := bin.Delay(ctx, 2, 3)
	check("delay", [2]any{dlj, okj}, [2]any{dlb, okb}, err1, err2)

	aj, err1 := js.Analysis(ctx)
	ab, err2 := bin.Analysis(ctx)
	check("analysis", aj, ab, err1, err2)

	uj, err1 := js.ApplyUpdate(ctx, 0, 1, 42.5)
	ub, err2 := bin.ApplyUpdate(ctx, 0, 1, 42.5)
	check("update", uj, ub, err1, err2)

	// Error envelopes: out-of-range target through both codecs.
	_, err1 = js.KClosest(ctx, 10_000, 3, tivaware.QueryOptions{})
	_, err2 = bin.KClosest(ctx, 10_000, 3, tivaware.QueryOptions{})
	check("rank-error", nil, nil, err1, err2)
	_, _, err1 = js.Delay(ctx, -1, 2)
	_, _, err2 = bin.Delay(ctx, -1, 2)
	check("delay-error", nil, nil, err1, err2)
	// Per-query error envelopes inside a batch (unknown kind).
	bj, err1 := js.QueryBatch(ctx, []tivaware.Query{{Kind: "nonsense"}})
	bb, err2 := bin.QueryBatch(ctx, []tivaware.Query{{Kind: "nonsense"}})
	if err1 != nil || err2 != nil {
		t.Fatalf("batch call errors: %v / %v", err1, err2)
	}
	check("batch-unknown-kind", nil, nil, bj[0].Err, bb[0].Err)
}

// TestMixedNegotiation sends a JSON body with a binary Accept: the
// request codec and response codec negotiate independently.
func TestMixedNegotiation(t *testing.T) {
	svc := synthService(t)
	srv, err := tivd.New(svc, tivd.Options{})
	if err != nil {
		t.Fatal(err)
	}
	url := newTestServer(t, srv)

	body := []byte(`{"queries":[{"kind":"closest","target":0}]}`)
	req, err := http.NewRequest("POST", url+"/v1/batch", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", tivwire.BinaryContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != tivwire.BinaryContentType {
		t.Fatalf("response Content-Type %q, want %q", ct, tivwire.BinaryContentType)
	}
	var br tivwire.BatchResponse
	if err := tivwire.UnmarshalBinaryInto(raw, &br); err != nil {
		t.Fatalf("binary response did not decode: %v", err)
	}
	if len(br.Results) != 1 || br.Results[0].Rank == nil {
		t.Fatalf("unexpected batch response: %+v", br)
	}
}

// TestDeprecatedResidueOptions proves the deprecated QueryOptions
// Mod/Rem spelling answers identically to the typed Scatter, one
// round trip per residue-aware endpoint.
func TestDeprecatedResidueOptions(t *testing.T) {
	svc := synthService(t)
	srv, err := tivd.New(svc, tivd.Options{})
	if err != nil {
		t.Fatal(err)
	}
	url := newTestServer(t, srv)
	client := tivclient.New(url, tivclient.Options{})
	ctx := context.Background()

	deprecated := tivaware.QueryOptions{Mod: 2, Rem: 1}
	typed := tivaware.QueryOptions{Scatter: tivaware.Scatter{Mod: 2, Rem: 1}}

	rd, err := client.KClosest(ctx, 0, 4, deprecated)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := client.KClosest(ctx, 0, 4, typed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rd, rt) {
		t.Errorf("rank: deprecated Mod/Rem diverges from Scatter:\n old: %v\n new: %v", rd, rt)
	}

	cd, err := client.ClosestNode(ctx, 3, deprecated)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := client.ClosestNode(ctx, 3, typed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cd, ct) {
		t.Errorf("closest: deprecated Mod/Rem diverges from Scatter: %v vs %v", cd, ct)
	}

	// Detour and top take residues as explicit ints on the client; the
	// typed path is the batch Query.Scatter. Equality across the two
	// spellings proves the server folds them into one code path.
	dm, err := client.DetourPathMod(ctx, 0, 5, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	results, err := client.QueryBatch(ctx, []tivaware.Query{
		{Kind: tivaware.KindDetour, I: 0, J: 5, Scatter: tivaware.Scatter{Mod: 2, Rem: 1}},
		{Kind: tivaware.KindTop, K: 6, Scatter: tivaware.Scatter{Mod: 2, Rem: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil || !reflect.DeepEqual(results[0].Detour, dm) {
		t.Errorf("detour: mod/rem params diverge from typed Scatter: %+v vs %+v (err %v)", results[0].Detour, dm, results[0].Err)
	}
	tm, err := client.TopEdgesMod(ctx, 6, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if results[1].Err != nil || !reflect.DeepEqual(results[1].Edges, tm) {
		t.Errorf("top: mod/rem params diverge from typed Scatter: %v vs %v (err %v)", results[1].Edges, tm, results[1].Err)
	}
}

// TestQueryCacheCoherence exercises the epoch-keyed cache: hits on
// repeats, invalidation by version change (never stale answers), and
// the disable switch.
func TestQueryCacheCoherence(t *testing.T) {
	svc := synthService(t)
	srv, err := tivd.New(svc, tivd.Options{})
	if err != nil {
		t.Fatal(err)
	}
	url := newTestServer(t, srv)
	client := tivclient.New(url, tivclient.Options{})
	ctx := context.Background()

	h0, err := client.Healthz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h0.Cache == nil {
		t.Fatal("cache enabled by default but healthz reports none")
	}

	before, err := client.TopEdges(ctx, 5)
	if err != nil {
		t.Fatal(err)
	}
	again, err := client.TopEdges(ctx, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, again) {
		t.Fatalf("repeat query diverged: %v vs %v", before, again)
	}
	h1, err := client.Healthz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h1.Cache.Hits == h0.Cache.Hits {
		t.Errorf("repeat of an identical query recorded no cache hit: %+v", h1.Cache)
	}

	// Perturb the edge currently at the top: the next read must see
	// the new world, not the cached epoch's.
	worst := before[0]
	if _, err := client.ApplyUpdate(ctx, worst.I, worst.J, 0.001); err != nil {
		t.Fatal(err)
	}
	after, err := client.TopEdges(ctx, 5)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(before, after) {
		t.Errorf("top edges unchanged after updating edge (%d,%d): stale cache", worst.I, worst.J)
	}
	for _, e := range after {
		if e.I == worst.I && e.J == worst.J {
			t.Errorf("updated edge (%d,%d) still listed: %+v", worst.I, worst.J, after)
		}
	}

	// Disabled cache: no stats in healthz, queries still work.
	srv2, err := tivd.New(svc, tivd.Options{CacheEntries: -1})
	if err != nil {
		t.Fatal(err)
	}
	url2 := newTestServer(t, srv2)
	client2 := tivclient.New(url2, tivclient.Options{})
	h2, err := client2.Healthz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h2.Cache != nil {
		t.Errorf("cache disabled but healthz reports %+v", h2.Cache)
	}
	if _, err := client2.TopEdges(ctx, 3); err != nil {
		t.Fatal(err)
	}
}

// TestBatchLimitsAndEpochPin covers the request-size guard and the
// single-epoch contract: every payload in a batch response carries
// the response's pinned epoch.
func TestBatchLimitsAndEpochPin(t *testing.T) {
	svc := synthService(t)
	srv, err := tivd.New(svc, tivd.Options{MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	url := newTestServer(t, srv)
	client := tivclient.New(url, tivclient.Options{})
	ctx := context.Background()

	over := make([]tivaware.Query, 5)
	for i := range over {
		over[i] = tivaware.Query{Kind: tivaware.KindClosest, Target: i}
	}
	_, err = client.QueryBatch(ctx, over)
	var ce *tivclient.Error
	if !errors.As(err, &ce) || ce.Code != tivwire.CodeBadRequest {
		t.Fatalf("oversized batch: got %v, want %s envelope", err, tivwire.CodeBadRequest)
	}

	// Raw batch response: payload epochs all equal the pinned epoch.
	body := []byte(`{"queries":[{"kind":"rank","target":0,"k":2},{"kind":"top","k":3},{"kind":"analysis"}]}`)
	resp, err := http.Post(url+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var br tivwire.BatchResponse
	if err := readJSON(resp.Body, &br); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || len(br.Results) != 3 {
		t.Fatalf("status %d, results %+v", resp.StatusCode, br.Results)
	}
	if br.Results[0].Rank.Epoch != br.Epoch || br.Results[1].Top.Epoch != br.Epoch || br.Results[2].Analysis.Epoch != br.Epoch {
		t.Errorf("payload epochs not pinned to batch epoch %d: %d/%d/%d", br.Epoch,
			br.Results[0].Rank.Epoch, br.Results[1].Top.Epoch, br.Results[2].Analysis.Epoch)
	}
}
